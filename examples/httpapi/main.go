// HTTP API walkthrough: run the market server in-process and drive it
// the way external sellers and buyers would, over JSON HTTP with
// HMAC-signed bids (the false-name-bidding deterrent of Section 2.1).
//
// The same endpoints are served by `cmd/marketd`; this example embeds the
// market behind net/http so it runs self-contained.
//
// Run with: go run ./examples/httpapi
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	shield "github.com/datamarket/shield"
)

func main() {
	// An in-process stand-in for `marketd -auth`: the handler wires the
	// market and verifier exactly like the binary does.
	m, err := shield.NewMarket(shield.MarketConfig{
		Engine: shield.EngineConfig{
			Candidates: shield.LinearGrid(10, 150, 15),
			EpochSize:  4,
			MinBid:     1,
		},
		Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	verifier := shield.NewBidVerifier(nil)
	ts := httptest.NewServer(shield.NewMarketHandler(m, verifier))
	defer ts.Close()

	// Seller onboarding.
	mustPost(ts.URL+"/v1/sellers", map[string]any{"id": "geodata-co"})
	mustPost(ts.URL+"/v1/datasets", map[string]any{"seller": "geodata-co", "id": "road-network"})
	mustPost(ts.URL+"/v1/datasets", map[string]any{"seller": "geodata-co", "id": "traffic-feed"})

	// Buyer registration returns the signing credential (once).
	resp := mustPost(ts.URL+"/v1/buyers", map[string]any{"id": "navtech"})
	secret := resp["credential"].(string)
	fmt.Println("navtech enrolled; credential issued")

	// Bids must be signed: amount in integer micros, monotonic nonce.
	cred := shield.BidCredential{BuyerID: "navtech", Secret: secret}
	signed, err := shield.SignBid(cred, "road-network", 120_000_000, 1)
	if err != nil {
		log.Fatal(err)
	}
	out := mustPost(ts.URL+"/v1/bids", map[string]any{
		"buyer": "navtech", "dataset": "road-network",
		"amount_micros": signed.AmountMicros, "nonce": signed.Nonce, "mac": signed.MAC,
	})
	fmt.Printf("signed bid of 120: allocated=%v price_paid=%v\n", out["allocated"], out["price_paid"])

	// An unsigned bid is refused.
	code := postStatus(ts.URL+"/v1/bids", map[string]any{
		"buyer": "navtech", "dataset": "road-network", "amount": 120.0,
	})
	fmt.Printf("unsigned bid: HTTP %d (signature required)\n", code)

	// Replaying the signature is refused too.
	code = postStatus(ts.URL+"/v1/bids", map[string]any{
		"buyer": "navtech", "dataset": "road-network",
		"amount_micros": signed.AmountMicros, "nonce": signed.Nonce, "mac": signed.MAC,
	})
	fmt.Printf("replayed bid:  HTTP %d (nonce consumed)\n", code)

	// Batch bidding: several signed bids in one request. Each entry
	// succeeds or fails on its own — here a fresh buyer bids on both
	// datasets plus one that does not exist, and the response carries one
	// result per entry with a stable error code on the failed slot.
	resp = mustPost(ts.URL+"/v1/buyers", map[string]any{"id": "fleetai"})
	fleetCred := shield.BidCredential{BuyerID: "fleetai", Secret: resp["credential"].(string)}
	var batch []map[string]any
	for i, ds := range []string{"road-network", "traffic-feed", "no-such-dataset"} {
		s, err := shield.SignBid(fleetCred, ds, 130_000_000, uint64(i+1))
		if err != nil {
			log.Fatal(err)
		}
		batch = append(batch, map[string]any{
			"buyer": "fleetai", "dataset": ds,
			"amount_micros": s.AmountMicros, "nonce": s.Nonce, "mac": s.MAC,
		})
	}
	out = mustPost(ts.URL+"/v1/bids/batch", map[string]any{"bids": batch})
	for i, r := range out["results"].([]any) {
		res := r.(map[string]any)
		if env, ok := res["error"].(map[string]any); ok {
			fmt.Printf("batch bid %d on %s: error code=%s\n", i, batch[i]["dataset"], env["code"])
			continue
		}
		fmt.Printf("batch bid %d on %s: allocated=%v price_paid=%v\n",
			i, batch[i]["dataset"], res["allocated"], res["price_paid"])
	}

	// The seller can watch its compensation accrue.
	var bal map[string]float64
	mustGet(ts.URL+"/v1/sellers/geodata-co/balance", &bal)
	fmt.Printf("geodata-co balance: %.2f\n", bal["balance"])
}

func mustPost(url string, body any) map[string]any {
	buf, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode >= 400 {
		log.Fatalf("POST %s: %d %v", url, resp.StatusCode, out)
	}
	return out
}

func postStatus(url string, body any) int {
	buf, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func mustGet(url string, dst any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		log.Fatal(err)
	}
}
