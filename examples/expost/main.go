// Ex-post trading: buying data you cannot value in advance.
//
// An exploratory data-science team doesn't know what a dataset is worth
// until after using it — data is an experience good (Section 8 of the
// paper). The ex-post arbiter grants the dataset first and accepts
// payment after use. Honest payments at or above the recorded posting
// price settle cleanly; under-payments are collected as-is but cost the
// buyer a Time-Shield wait on its *next* request, and chronic
// under-payers lose the ex-post option until surcharges on later ex-ante
// wins repay their balance.
//
// Run with: go run ./examples/expost
package main

import (
	"fmt"
	"log"

	shield "github.com/datamarket/shield"
)

func main() {
	a, err := shield.NewExPostArbiter(shield.ExPostConfig{
		Engine: shield.EngineConfig{
			Candidates:    shield.LinearGrid(10, 150, 15),
			EpochSize:     4,
			BidsPerPeriod: 1,
			MinBid:        1,
			MaxWaitEpochs: 6,
		},
		Seed:             21,
		DeactivateBelow:  -80 * shield.Micro,
		RecoveryFraction: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := a.AddDataset("satellite-imagery"); err != nil {
		log.Fatal(err)
	}
	for _, b := range []string{"honest-lab", "stingy-lab"} {
		if err := a.RegisterBuyer(b); err != nil {
			log.Fatal(err)
		}
	}

	// Warm the posting price with regular ex-ante demand so grants are
	// recorded against a learned price rather than the initial draw.
	if err := a.RegisterBuyer("warmup"); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := a.Bid("warmup", "satellite-imagery", 90+float64(i%4)*10); err == nil {
			a.Tick()
		} else {
			waitOut(a, "warmup")
		}
	}

	// The honest lab explores five datasets' worth of imagery, learning a
	// different valuation each time, and always reports it truthfully.
	fmt.Println("honest-lab:")
	for _, learned := range []float64{90, 120, 75, 110, 95} {
		waitOut(a, "honest-lab")
		g, err := a.Request("honest-lab", "satellite-imagery")
		if err != nil {
			log.Fatal(err)
		}
		res, err := a.Pay(g, learned)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  used data, learned value %5.0f -> charged %s, wait %d\n",
			learned, res.Charged, res.WaitPeriods)
		a.Tick()
	}
	bal, _ := a.Balance("honest-lab")
	fmt.Printf("  balance: %s\n\n", bal)

	// The stingy lab always reports a token payment.
	fmt.Println("stingy-lab:")
	for i := 0; i < 5; i++ {
		g, err := a.Request("stingy-lab", "satellite-imagery")
		if err != nil {
			fmt.Printf("  request refused: %v\n", err)
			a.Tick()
			continue
		}
		res, err := a.Pay(g, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  paid 5 -> wait %d period(s), deactivated=%v\n",
			res.WaitPeriods, res.Deactivated)
		a.Tick()
	}
	bal, _ = a.Balance("stingy-lab")
	dis, _ := a.Disabled("stingy-lab")
	fmt.Printf("  balance: %s, ex-post disabled: %v\n\n", bal, dis)

	fmt.Printf("arbiter revenue: %s\n", a.Revenue())
	fmt.Println("under-payment is self-defeating: waits starve access and")
	fmt.Println("the ex-post option disappears until the debt is repaid.")
}

// waitOut advances the clock until the buyer's Time-Shield wait expires.
func waitOut(a *shield.ExPostArbiter, buyer string) {
	for {
		w, err := a.WaitRemaining(buyer)
		if err != nil || w == 0 {
			return
		}
		a.Tick()
	}
}
