// Strategic buyers vs the shields.
//
// The same dataset is sold in two market sessions. In the first, ten
// truthful buyers bid their valuations. In the second, most buyers
// strategize: they low-ball at 20% of their valuation to drive the price
// down, planning to bid truthfully only at their last opportunity
// (Section 4.1 of the paper). Time-Shield makes each losing low-ball
// costly — the buyer is locked out for a wait-period — and cautious
// buyers abandon the strategy after their first wait (the behavior shift
// the paper's user study documents in RQ5).
//
// Run with: go run ./examples/strategic
package main

import (
	"fmt"
	"log"

	shield "github.com/datamarket/shield"
)

func newMarket(seed uint64) *shield.Market {
	m, err := shield.NewMarket(shield.MarketConfig{
		Engine: shield.EngineConfig{
			Candidates:    shield.LinearGrid(5, 150, 30),
			EpochSize:     4,
			BidsPerPeriod: 5, // several buyers bid per period
			MinBid:        1,
			MaxWaitEpochs: 16,
		},
		Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := m.RegisterSeller("weather-co"); err != nil {
		log.Fatal(err)
	}
	if err := m.UploadDataset("weather-co", "hourly-weather"); err != nil {
		log.Fatal(err)
	}
	return m
}

func run(title string, strategic bool) {
	m := newMarket(7)
	valuations := []float64{95, 110, 88, 102, 97, 105, 92, 99, 120, 85}

	var parts []shield.Participant
	for i, v := range valuations {
		id := shield.BuyerID(fmt.Sprintf("buyer-%02d", i))
		if err := m.RegisterBuyer(id); err != nil {
			log.Fatal(err)
		}
		var s shield.BuyerStrategy
		if strategic && i%5 != 0 { // 80% strategic
			// beta = 0.2, cautious: turns truthful after a wait.
			s = shield.NewStrategicBuyer(v, 0.2, 1, true)
		} else {
			s = shield.NewTruthfulBuyer(v)
		}
		parts = append(parts, shield.Participant{ID: id, Strategy: s, Deadline: 24})
	}

	res, err := shield.RunSession(m, "hourly-weather", parts, 25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", title)
	fmt.Printf("  revenue  %s\n", res.Revenue)
	fmt.Printf("  winners  %d / %d buyers\n", res.Winners, len(parts))
	var surplus float64
	for _, u := range res.Utility {
		surplus += u
	}
	fmt.Printf("  buyer surplus %.1f\n\n", surplus)
}

func main() {
	run("all buyers truthful:", false)
	run("80% strategic low-ballers (Time-Shield active):", true)

	fmt.Println("Time-Shield locks strategic losers out, and cautious")
	fmt.Println("buyers switch to truthful bids after their first wait,")
	fmt.Println("so the market keeps most of its revenue under attack.")
}
