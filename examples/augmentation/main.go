// Training-data augmentation: the paper's motivating scenario.
//
// A data analyst needs an integrated dataset — city weather joined with
// ride demand — to train a forecasting model. Preparing it by hand would
// take a week, so the market is only useful if the analyst gets the data
// before that deadline (the deadline-patience utility of Equation 1).
//
// Two sellers upload the raw datasets; the arbiter composes the joined
// product. Bids on the combined dataset propagate demand to the
// constituents (Figure 1 of the paper), and the sale price is split
// exactly between the two sellers through the provenance graph.
//
// Run with: go run ./examples/augmentation
package main

import (
	"fmt"
	"log"

	shield "github.com/datamarket/shield"
)

func main() {
	m, err := shield.NewMarket(shield.MarketConfig{
		Engine: shield.EngineConfig{
			Candidates:    shield.LinearGrid(10, 300, 30),
			EpochSize:     4,
			BidsPerPeriod: 2,
			MinBid:        1,
		},
		Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Step 1 (Fig. 1): sellers share datasets with the arbiter.
	for seller, dataset := range map[shield.SellerID]shield.DatasetID{
		"metro-weather": "city-weather-2025",
		"ride-hail-inc": "ride-demand-2025",
	} {
		if err := m.RegisterSeller(seller); err != nil {
			log.Fatal(err)
		}
		if err := m.UploadDataset(seller, dataset); err != nil {
			log.Fatal(err)
		}
	}

	// Step 3 (Fig. 1): the arbiter combines them into the product the
	// analyst actually needs.
	if err := m.ComposeDataset("weather-x-demand", "city-weather-2025", "ride-demand-2025"); err != nil {
		log.Fatal(err)
	}

	// The analyst values the integrated dataset at 240 (a week of manual
	// integration work saved) and must obtain it within 7 periods.
	const valuation = 240.0
	const deadline = 7
	if err := m.RegisterBuyer("analyst"); err != nil {
		log.Fatal(err)
	}

	// Background demand warms up the price of the combined product.
	for i := 0; i < 12; i++ {
		id := shield.BuyerID(fmt.Sprintf("other-%d", i))
		if err := m.RegisterBuyer(id); err != nil {
			log.Fatal(err)
		}
		if _, err := m.SubmitBid(id, "weather-x-demand", 150+float64(i%5)*20); err != nil {
			log.Fatal(err)
		}
		if i%2 == 1 {
			m.Tick()
		}
	}

	// The analyst bids truthfully each period until winning or the
	// deadline passes.
	for t := m.Period(); t <= deadline; t = m.Tick() {
		d, err := m.SubmitBid("analyst", "weather-x-demand", valuation)
		if err != nil {
			fmt.Printf("period %d: cannot bid (%v)\n", t, err)
			continue
		}
		if !d.Allocated {
			fmt.Printf("period %d: lost, must wait %d period(s)\n", t, d.WaitPeriods)
			continue
		}
		fmt.Printf("period %d: analyst bought weather-x-demand for %s\n", t, d.PricePaid)
		utility := shield.Utility(valuation, d.PricePaid.Float(), true, t, deadline)
		fmt.Printf("  analyst utility (Eq. 1): %.1f\n\n", utility)
		break
	}

	// The provenance graph splits the revenue exactly between sellers.
	fmt.Println("seller compensation:")
	for _, s := range []shield.SellerID{"metro-weather", "ride-hail-inc"} {
		bal, err := m.SellerBalance(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s %s\n", s, bal)
	}
	fmt.Printf("market revenue:  %s\n", m.Revenue())
	fmt.Printf("transactions:    %d\n", len(m.Transactions()))
}
