// Quickstart: price a single dataset with the protected pricing engine.
//
// A stream of buyers bids for one dataset. The engine groups bids into
// epochs (Epoch-Shield), samples each posting price from multiplicative
// weights (Uncertainty-Shield), and assigns losing buyers a wait-period
// (Time-Shield). Winners pay the posting price, not their bid.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	shield "github.com/datamarket/shield"
)

func main() {
	engine, err := shield.NewEngine(shield.EngineConfig{
		// Candidate posting prices: the experts of the multiplicative
		// weights learner.
		Candidates: shield.LinearGrid(10, 150, 15),
		// Epoch-Shield: reprice only after every 5 bids.
		EpochSize: 5,
		// Time-Shield bookkeeping: one bid arrives per market period.
		BidsPerPeriod: 1,
		MinBid:        1,
		Seed:          42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A morning of bids: most buyers value the dataset near 100.
	bids := []float64{95, 110, 88, 102, 97, 105, 92, 99, 120, 85,
		101, 96, 93, 108, 98, 91, 104, 100, 89, 107}

	fmt.Println("bid    outcome")
	fmt.Println("-----  -------")
	for _, b := range bids {
		d := engine.SubmitBid(b)
		if d.Allocated {
			fmt.Printf("%5.0f  won, paid %.1f\n", b, d.Price)
		} else {
			fmt.Printf("%5.0f  lost, waits %d period(s)\n", b, d.Wait)
		}
	}

	fmt.Printf("\nafter %d bids in %d epochs:\n", engine.Bids(), engine.Epochs())
	fmt.Printf("  revenue          %.1f\n", engine.Revenue())
	fmt.Printf("  allocations      %d\n", engine.Allocations())
	fmt.Printf("  most likely price %.1f (learned from demand)\n", engine.MostLikelyPrice())

	// The revenue-optimal fixed price in hindsight, for comparison
	// (Equation 2 of the paper).
	p, r := shield.OptimalPrice(bids)
	fmt.Printf("  hindsight optimum: price %.1f -> revenue %.1f\n", p, r)
}
