package shield_test

import (
	"bytes"
	"fmt"
	"log"

	shield "github.com/datamarket/shield"
)

// ExampleNewEngine prices one dataset with the protected engine: epochs
// shield against low bids, losing buyers receive Time-Shield waits, and
// the price itself is sampled (Uncertainty-Shield).
func ExampleNewEngine() {
	engine, err := shield.NewEngine(shield.EngineConfig{
		Candidates: shield.LinearGrid(10, 100, 10),
		EpochSize:  4,
		MinBid:     1,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	d := engine.SubmitBid(500) // far above every candidate: wins
	fmt.Println("allocated:", d.Allocated)
	d = engine.SubmitBid(0.5) // below the floor: loses and waits
	fmt.Println("allocated:", d.Allocated, "waits:", d.Wait > 0)
	// Output:
	// allocated: true
	// allocated: false waits: true
}

// ExampleOptimalPrice computes the paper's Equation 2: the revenue
// optimal single posting price for a known bid vector.
func ExampleOptimalPrice() {
	price, revenue := shield.OptimalPrice([]float64{10, 20, 30})
	fmt.Println(price, revenue)
	// Output: 20 40
}

// ExampleNewMarket walks the full Figure 1 flow: a seller shares a
// dataset, a buyer bids, the winner pays the posting price and the
// seller is compensated.
func ExampleNewMarket() {
	m, err := shield.NewMarket(shield.MarketConfig{
		Engine: shield.EngineConfig{
			Candidates: shield.LinearGrid(10, 100, 10),
			EpochSize:  4,
			MinBid:     1,
		},
		Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	_ = m.RegisterSeller("acme")
	_ = m.UploadDataset("acme", "sales")
	_ = m.RegisterBuyer("bob")
	d, err := m.SubmitBid("bob", "sales", 500)
	if err != nil {
		log.Fatal(err)
	}
	bal, _ := m.SellerBalance("acme")
	fmt.Println("allocated:", d.Allocated, "seller paid:", bal == d.PricePaid)
	// Output: allocated: true seller paid: true
}

// ExampleUtility evaluates Equation 1: utility is the valuation-price
// gap, but only for winners within their deadline.
func ExampleUtility() {
	fmt.Println(shield.Utility(100, 60, true, 3, 5))  // won in time
	fmt.Println(shield.Utility(100, 60, true, 9, 5))  // too late
	fmt.Println(shield.Utility(100, 60, false, 3, 5)) // lost
	// Output:
	// 40
	// 0
	// 0
}

// ExampleSignBid binds a bid to a buyer identity so false-name bidding
// fails verification.
func ExampleSignBid() {
	v := shield.NewBidVerifier(nil) // deterministic keys: tests only
	cred, err := v.Enroll("alice")
	if err != nil {
		log.Fatal(err)
	}
	bid, err := shield.SignBid(cred, "weather", 120_000_000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("own name verifies:", v.Verify(bid) == nil)
	forged := bid
	forged.BuyerID = "mallory"
	fmt.Println("false name verifies:", v.Verify(forged) == nil)
	// Output:
	// own name verifies: true
	// false name verifies: false
}

// ExampleGenerateValuations builds the paper's AR(1) workload and
// applies the strategic-buyer transform <PCT, beta, H>.
func ExampleGenerateValuations() {
	r := shield.NewRNG(7)
	vals, err := shield.GenerateValuations(shield.ARConfig{
		AR: 0.1, Sigma: 0.01, Mean: 100, Floor: 1, N: 10,
	}, r)
	if err != nil {
		log.Fatal(err)
	}
	stream, err := shield.TransformStrategic(vals, shield.StrategicConfig{
		PCT: 1, Beta: 0.25, Horizon: 3, Floor: 1,
	}, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("buyers:", len(vals), "bids:", len(stream))
	// Output: buyers: 10 bids: 30
}

// ExampleRunSession drives adaptive buyer strategies through the full
// market loop: strategic low-ballers face Time-Shield waits while
// truthful buyers trade normally.
func ExampleRunSession() {
	m, err := shield.NewMarket(shield.MarketConfig{
		Engine: shield.EngineConfig{
			Candidates:    shield.LinearGrid(10, 100, 10),
			EpochSize:     4,
			BidsPerPeriod: 2,
			MinBid:        1,
		},
		Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	_ = m.RegisterSeller("s")
	_ = m.UploadDataset("s", "d")
	_ = m.RegisterBuyer("honest")
	_ = m.RegisterBuyer("schemer")
	res, err := shield.RunSession(m, "d", []shield.Participant{
		{ID: "honest", Strategy: shield.NewTruthfulBuyer(95), Deadline: 9},
		{ID: "schemer", Strategy: shield.NewStrategicBuyer(95, 0.2, 1, true), Deadline: 9},
	}, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("revenue raised:", res.Revenue > 0)
	// Output: revenue raised: true
}

// ExampleNewJournaledMarket persists every market operation to an event
// log and rebuilds the exact state from it.
func ExampleNewJournaledMarket() {
	cfg := shield.MarketConfig{
		Engine: shield.EngineConfig{
			Candidates: shield.LinearGrid(10, 100, 10),
			EpochSize:  4,
			MinBid:     1,
		},
		Seed: 4,
	}
	var logBuf bytes.Buffer
	jm, err := shield.NewJournaledMarket(cfg, &logBuf)
	if err != nil {
		log.Fatal(err)
	}
	_ = jm.RegisterSeller("s")
	_ = jm.UploadDataset("s", "d")
	_ = jm.RegisterBuyer("b")
	d, _ := jm.SubmitBid("b", "d", 500)
	_ = jm.Close()

	restored, err := shield.RestoreMarket(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("replay matches:", restored.Revenue() == d.PricePaid)
	// Output: replay matches: true
}
