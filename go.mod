module github.com/datamarket/shield

go 1.23
