package shield_test

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	shield "github.com/datamarket/shield"
)

// The facade tests exercise the public API exactly as a downstream user
// would, without touching internal packages.

func TestQuickstartFlow(t *testing.T) {
	engine, err := shield.NewEngine(shield.EngineConfig{
		Candidates: shield.LinearGrid(1, 200, 40),
		EpochSize:  8,
		MinBid:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	win := engine.SubmitBid(1000)
	if !win.Allocated || win.Price <= 0 {
		t.Fatalf("high bid decision = %+v", win)
	}
	lose := engine.SubmitBid(0.5)
	if lose.Allocated {
		t.Fatal("sub-floor bid won")
	}
	if lose.Wait <= 0 {
		t.Fatal("loser got no Time-Shield wait")
	}
}

func TestMarketFlow(t *testing.T) {
	m, err := shield.NewMarket(shield.MarketConfig{
		Engine: shield.EngineConfig{
			Candidates: shield.LinearGrid(10, 100, 10),
			EpochSize:  4,
			MinBid:     1,
		},
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterSeller("acme"); err != nil {
		t.Fatal(err)
	}
	if err := m.UploadDataset("acme", "sales-2025"); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterBuyer("bob"); err != nil {
		t.Fatal(err)
	}
	d, err := m.SubmitBid("bob", "sales-2025", 500)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Allocated {
		t.Fatal("high bid lost")
	}
	bal, err := m.SellerBalance("acme")
	if err != nil || bal != d.PricePaid {
		t.Fatalf("seller balance %v, %v", bal, err)
	}
}

func TestSessionWithStrategies(t *testing.T) {
	m, err := shield.NewMarket(shield.MarketConfig{
		Engine: shield.EngineConfig{
			Candidates:    shield.LinearGrid(10, 100, 10),
			EpochSize:     4,
			BidsPerPeriod: 2,
			MinBid:        1,
		},
		Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterSeller("s"); err != nil {
		t.Fatal(err)
	}
	if err := m.UploadDataset("s", "d"); err != nil {
		t.Fatal(err)
	}
	for _, id := range []shield.BuyerID{"t1", "t2", "strat"} {
		if err := m.RegisterBuyer(id); err != nil {
			t.Fatal(err)
		}
	}
	res, err := shield.RunSession(m, "d", []shield.Participant{
		{ID: "t1", Strategy: shield.NewTruthfulBuyer(95), Deadline: 19},
		{ID: "t2", Strategy: shield.NewTruthfulBuyer(90), Deadline: 19},
		{ID: "strat", Strategy: shield.NewStrategicBuyer(95, 0.2, 1, true), Deadline: 19},
	}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Revenue <= 0 {
		t.Fatal("no revenue")
	}
}

func TestWorkloadGeneration(t *testing.T) {
	r := shield.NewRNG(7)
	vals, err := shield.GenerateValuations(shield.ARConfig{
		AR: 0.1, Sigma: 0.01, Mean: 100, Floor: 1, N: 50,
	}, r)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := shield.TransformStrategic(vals, shield.StrategicConfig{
		PCT: 0.5, Beta: 0.25, Horizon: 4, Floor: 1,
	}, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) < len(vals) {
		t.Fatalf("stream shorter than series: %d < %d", len(stream), len(vals))
	}
	p, rev := shield.OptimalPrice(vals)
	if p <= 0 || rev <= 0 {
		t.Fatalf("OptimalPrice = %v, %v", p, rev)
	}
	if got := shield.PostedRevenue(vals, p); got != rev {
		t.Fatalf("PostedRevenue(opt) = %v, want %v", got, rev)
	}
}

func TestExPostFlow(t *testing.T) {
	a, err := shield.NewExPostArbiter(shield.ExPostConfig{
		Engine: shield.EngineConfig{
			Candidates:    shield.LinearGrid(10, 100, 10),
			EpochSize:     4,
			MinBid:        1,
			MaxWaitEpochs: 4,
		},
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddDataset("d"); err != nil {
		t.Fatal(err)
	}
	if err := a.RegisterBuyer("b"); err != nil {
		t.Fatal(err)
	}
	g, err := a.Request("b", "d")
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Pay(g, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Charged <= 0 || res.WaitPeriods != 0 {
		t.Fatalf("generous settle = %+v", res)
	}
}

func TestLaplacePricer(t *testing.T) {
	p, err := shield.NewLaplacePricer(shield.LaplaceConfig{
		Epsilon: 1, MinBid: 0, MaxBid: 200, EpochSize: 4, InitialPrice: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		p.ObserveBid(80)
	}
	if price := p.PostingPrice(); price < 0 || price > 200 {
		t.Fatalf("DP price %v out of range", price)
	}
}

func TestPanelAndStats(t *testing.T) {
	panel := shield.NewPanel(0, 42)
	rows, err := panel.Table1(500)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Mean <= 0 {
		t.Fatalf("Table1 = %+v", rows)
	}
	s := shield.Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Median != 2.5 {
		t.Fatalf("Summarize = %+v", s)
	}
}

func TestMoneyHelpers(t *testing.T) {
	m := shield.MoneyFromFloat(1.5)
	if m != 3*shield.Micro/2 {
		t.Fatalf("MoneyFromFloat = %v", m)
	}
	if shield.Utility(100, 60, true, 1, 5) != 40 {
		t.Fatal("Utility")
	}
}

func TestJournaledMarketFacade(t *testing.T) {
	var buf bytes.Buffer
	cfg := shield.MarketConfig{
		Engine: shield.EngineConfig{
			Candidates: shield.LinearGrid(10, 100, 10),
			EpochSize:  4,
			MinBid:     1,
		},
		Seed: 5,
	}
	jm, err := shield.NewJournaledMarket(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := jm.RegisterSeller("s"); err != nil {
		t.Fatal(err)
	}
	if err := jm.UploadDataset("s", "d"); err != nil {
		t.Fatal(err)
	}
	if err := jm.RegisterBuyer("b"); err != nil {
		t.Fatal(err)
	}
	d, err := jm.SubmitBid("b", "d", 500)
	if err != nil || !d.Allocated {
		t.Fatalf("bid: %+v, %v", d, err)
	}
	if err := jm.Close(); err != nil {
		t.Fatal(err)
	}
	restored, err := shield.RestoreMarket(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Revenue() != jm.Revenue() {
		t.Fatalf("restored revenue %v != %v", restored.Revenue(), jm.Revenue())
	}
}

func TestOpenJournaledMarketFacade(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.log")
	cfg := shield.MarketConfig{
		Engine: shield.EngineConfig{
			Candidates: shield.LinearGrid(10, 100, 10),
			EpochSize:  4,
			MinBid:     1,
		},
		Seed: 5,
	}
	jm, replayed, err := shield.OpenJournaledMarket(cfg, path)
	if err != nil || replayed != 0 {
		t.Fatalf("open: %v, replayed %d", err, replayed)
	}
	if err := jm.RegisterSeller("s"); err != nil {
		t.Fatal(err)
	}
	if err := jm.Close(); err != nil {
		t.Fatal(err)
	}
	_, replayed, err = shield.OpenJournaledMarket(cfg, path)
	if err != nil || replayed != 1 {
		t.Fatalf("reopen: %v, replayed %d", err, replayed)
	}
}

func TestMarketHandlerFacade(t *testing.T) {
	m, err := shield.NewMarket(shield.MarketConfig{
		Engine: shield.EngineConfig{
			Candidates: shield.LinearGrid(10, 100, 10),
			EpochSize:  4,
			MinBid:     1,
		},
		Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(shield.NewMarketHandler(m, nil))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
}

func TestPatienceFacade(t *testing.T) {
	if shield.DeadlinePatience(3, 5) != 1 || shield.DeadlinePatience(6, 5) != 0 {
		t.Error("DeadlinePatience")
	}
	if shield.LinearDecayPatience(0, 9) != 1 {
		t.Error("LinearDecayPatience")
	}
	exp := shield.ExpDecayPatience(2)
	if got := exp(2, 10); got < 0.49 || got > 0.51 {
		t.Errorf("ExpDecayPatience = %v", got)
	}
	if shield.UtilityWith(shield.DeadlinePatience, 100, 60, true, 1, 5) != 40 {
		t.Error("UtilityWith")
	}
}

func TestSnapshotAndCompactFacade(t *testing.T) {
	cfg := shield.MarketConfig{
		Engine: shield.EngineConfig{
			Candidates: shield.LinearGrid(10, 100, 10),
			EpochSize:  4,
			MinBid:     1,
		},
		Seed: 6,
	}
	m, err := shield.NewMarket(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterSeller("s"); err != nil {
		t.Fatal(err)
	}
	if err := m.UploadDataset("s", "d"); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterBuyer("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SubmitBid("b", "d", 500); err != nil {
		t.Fatal(err)
	}
	restored, err := shield.RestoreMarketSnapshot(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if restored.Revenue() != m.Revenue() {
		t.Fatalf("snapshot revenue %v vs %v", restored.Revenue(), m.Revenue())
	}

	// Journal + compact through the facade.
	var log bytes.Buffer
	jm, err := shield.NewJournaledMarket(cfg, &log)
	if err != nil {
		t.Fatal(err)
	}
	if err := jm.RegisterSeller("s"); err != nil {
		t.Fatal(err)
	}
	if err := jm.Close(); err != nil {
		t.Fatal(err)
	}
	var compacted bytes.Buffer
	if err := shield.CompactJournal(bytes.NewReader(log.Bytes()), &compacted); err != nil {
		t.Fatal(err)
	}
	if _, err := shield.RestoreMarket(bytes.NewReader(compacted.Bytes())); err != nil {
		t.Fatal(err)
	}
}
