package main

import (
	"net"
	"net/http/httptest"
	"testing"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/httpapi"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/rng"
	"github.com/datamarket/shield/internal/timeseries"
	"github.com/datamarket/shield/internal/wire"
)

func genStream(t *testing.T, n int) []timeseries.Bid {
	t.Helper()
	r := rng.New(3)
	vals, err := timeseries.GenerateValuations(timeseries.ARConfig{
		AR: 0.1, Sigma: 0.01, Mean: 50, Floor: 1, N: n,
	}, r)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := timeseries.Transform(vals, timeseries.StrategicConfig{
		PCT: 0.5, Beta: 0.25, Horizon: 4, Floor: 1,
	}, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	return stream
}

func driveMarket(t *testing.T) *market.Market {
	t.Helper()
	m, err := market.New(market.Config{
		Engine: core.Config{
			Candidates:    auction.LinearGrid(10, 100, 10),
			EpochSize:     4,
			BidsPerPeriod: 8,
			MinBid:        1,
		},
		Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestDriveOverBothTransports replays a small generated stream against
// a live server on each transport: setup, open-loop dispatch, ticks and
// the summary path must all complete without a transport error.
func TestDriveOverBothTransports(t *testing.T) {
	stream := genStream(t, 40)

	httpSrv := httptest.NewServer(httpapi.NewServer(driveMarket(t)).Routes())
	t.Cleanup(httpSrv.Close)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() { _ = wire.NewServer(driveMarket(t)).Serve(l) }()

	for name, target := range map[string]string{
		"http": httpSrv.URL,
		"wire": "wire://" + l.Addr().String(),
	} {
		cfg := driveConfig{
			target:    target,
			dataset:   "d",
			seller:    "s",
			tickEvery: 8,
			workers:   2,
		}
		if err := drive(cfg, stream); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// A second run hits duplicate registrations; setup must shrug
		// them off.
		cfg.rate = 2000
		if err := drive(cfg, stream[:10]); err != nil {
			t.Fatalf("%s rerun: %v", name, err)
		}
	}
}
