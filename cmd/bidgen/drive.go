package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/datamarket/shield/internal/apierr"
	api "github.com/datamarket/shield/internal/client"
	"github.com/datamarket/shield/internal/loadrig"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/timeseries"
)

// driveConfig parameterizes -target mode: replay the generated stream
// against a live marketd instead of printing CSV.
type driveConfig struct {
	target    string  // client.Dial string: http://..., wire://..., host:port
	rate      float64 // bids per second; <= 0 drives closed-loop, as fast as workers allow
	dataset   string  // dataset every bid targets
	seller    string  // seller registered to own the dataset
	tickEvery int     // advance the market period every N bids (0 = never)
	workers   int     // concurrent in-flight bids
}

// job is one bid with its open-loop scheduled send time (zero in
// closed-loop mode).
type job struct {
	bid timeseries.Bid
	due time.Time
}

// drive replays stream open-loop on a loadrig.Pacer schedule: bids are
// dispatched at -rate regardless of how fast the server answers, and
// latency is measured from each bid's scheduled send time — not from
// the moment a worker picked it up — so a server slowdown surfaces as
// queueing delay in the tail percentiles instead of silently reducing
// the offered load (coordinated omission; see internal/loadrig). With
// rate <= 0 it degenerates to a closed loop saturating the worker pool,
// measuring from actual send.
func drive(cfg driveConfig, stream []timeseries.Bid) error {
	cl, err := api.Dial(cfg.target)
	if err != nil {
		return err
	}
	defer cl.Close()
	ctx := context.Background()

	if err := setup(ctx, cl, cfg, stream); err != nil {
		return err
	}

	if cfg.workers <= 0 {
		cfg.workers = 4
	}
	var (
		won, lost, failed, ticks atomic.Int64
		sent                     atomic.Int64
		mu                       sync.Mutex
		latencies                = make([]time.Duration, 0, len(stream))
	)
	jobs := make(chan job, len(stream))
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				buyer := market.BuyerID(fmt.Sprintf("gen-%d", j.bid.Buyer))
				start := j.due
				if start.IsZero() {
					start = time.Now()
				}
				d, err := cl.SubmitBid(ctx, buyer, market.DatasetID(cfg.dataset), j.bid.Amount)
				elapsed := time.Since(start)
				mu.Lock()
				latencies = append(latencies, elapsed)
				mu.Unlock()
				switch {
				case err != nil:
					failed.Add(1)
				case d.Allocated:
					won.Add(1)
				default:
					lost.Add(1)
				}
				if n := sent.Add(1); cfg.tickEvery > 0 && n%int64(cfg.tickEvery) == 0 {
					if _, err := cl.Tick(ctx); err == nil {
						ticks.Add(1)
					}
				}
			}
		}()
	}

	begin := time.Now()
	if cfg.rate > 0 {
		pacer, err := loadrig.NewPacer(cfg.rate)
		if err != nil {
			return err
		}
		// The channel holds the whole stream, so the dispatcher never
		// blocks on busy workers: falling behind ages the scheduled
		// times in the queue instead of shifting the schedule.
		for _, b := range stream {
			jobs <- job{bid: b, due: pacer.Next()}
		}
	} else {
		for _, b := range stream {
			jobs <- job{bid: b}
		}
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(begin)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	fmt.Fprintf(os.Stderr, "bidgen: drove %d bids in %v (%.1f bids/s): %d won, %d lost, %d errors, %d ticks\n",
		len(stream), elapsed.Round(time.Millisecond), float64(len(stream))/elapsed.Seconds(),
		won.Load(), lost.Load(), failed.Load(), ticks.Load())
	fmt.Fprintf(os.Stderr, "bidgen: latency p50 %v p99 %v max %v (from scheduled send with -rate)\n",
		pct(0.50).Round(time.Microsecond), pct(0.99).Round(time.Microsecond), pct(1.0).Round(time.Microsecond))
	return nil
}

// setup registers the seller, the dataset and every buyer the stream
// references. Duplicate-id failures are ignored so repeated runs
// against a long-lived server keep working.
func setup(ctx context.Context, cl api.Client, cfg driveConfig, stream []timeseries.Bid) error {
	ignoreDup := func(err error) error {
		var e *apierr.APIError
		if errors.As(err, &e) && e.Code == apierr.CodeDuplicateID {
			return nil
		}
		return err
	}
	if err := ignoreDup(cl.RegisterSeller(ctx, market.SellerID(cfg.seller))); err != nil {
		return fmt.Errorf("registering seller: %w", err)
	}
	if err := ignoreDup(cl.UploadDataset(ctx, market.SellerID(cfg.seller), market.DatasetID(cfg.dataset))); err != nil {
		return fmt.Errorf("uploading dataset: %w", err)
	}
	seen := make(map[int]bool)
	for _, b := range stream {
		if seen[b.Buyer] {
			continue
		}
		seen[b.Buyer] = true
		id := market.BuyerID(fmt.Sprintf("gen-%d", b.Buyer))
		if _, err := cl.RegisterBuyer(ctx, id); err != nil {
			if err = ignoreDup(err); err != nil {
				return fmt.Errorf("registering buyer %s: %w", id, err)
			}
		}
	}
	return nil
}
