// Command bidgen emits simulated bid streams as CSV: the AR(1) valuation
// process of the paper's Section 7.2.1, optionally run through the
// strategic-buyer transform <PCT, beta, H>. Useful for feeding external
// tools or replaying workloads against a live marketd.
//
// Usage:
//
//	bidgen -n 250 -ar 0.1 -sigma 0.01 -mean 100 > truthful.csv
//	bidgen -n 250 -pct 0.5 -beta 0.25 -horizon 4 -seed 7 > attack.csv
//
// Output columns: index, buyer, valuation, bid, strategic, final.
//
// With -target the stream is driven against a live marketd instead of
// printed: bidgen registers the seller, dataset and buyers, then
// submits every bid open-loop at -rate bids per second (0 = as fast as
// -workers allow) and reports throughput and latency percentiles on
// stderr. The target accepts every scheme shield.Dial does, so the
// same workload runs over HTTP ("http://host:8080") or the binary wire
// protocol ("wire://host:9090"):
//
//	bidgen -n 10000 -target wire://localhost:9090 -rate 5000 -tick-every 100
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"github.com/datamarket/shield/internal/rng"
	"github.com/datamarket/shield/internal/timeseries"
)

func main() {
	var (
		n       = flag.Int("n", 250, "number of buyers (series points)")
		ar      = flag.Float64("ar", 0.1, "AR(1) coefficient in [0, 1)")
		sigma   = flag.Float64("sigma", 0.01, "AR(1) innovation stddev")
		mean    = flag.Float64("mean", 100, "mean valuation")
		scale   = flag.Float64("scale", 0, "latent-to-valuation scale (0 = default)")
		floor   = flag.Float64("floor", 1, "valuation/bid floor")
		pct     = flag.Float64("pct", 0, "fraction of strategic buyers")
		beta    = flag.Float64("beta", 0, "strategic bid multiplier (0 = bid the floor)")
		horizon = flag.Int("horizon", 4, "strategic horizon H (total opportunities)")
		seed    = flag.Uint64("seed", 2022, "generator seed")

		target    = flag.String("target", "", "drive the stream against a live marketd (http://..., wire://... or host:port) instead of printing CSV")
		rate      = flag.Float64("rate", 0, "offered load in bids/second with -target (0 = closed loop)")
		dataset   = flag.String("dataset", "bidgen", "dataset every driven bid targets")
		seller    = flag.String("seller", "bidgen-seller", "seller registered to own -dataset")
		tickEvery = flag.Int("tick-every", 0, "advance the market period every N driven bids (0 = never)")
		workers   = flag.Int("workers", 4, "concurrent in-flight bids with -target")
	)
	flag.Parse()

	r := rng.New(*seed)
	vals, err := timeseries.GenerateValuations(timeseries.ARConfig{
		AR: *ar, Sigma: *sigma, Mean: *mean, Scale: *scale, Floor: *floor, N: *n,
	}, r)
	if err != nil {
		log.Fatalf("bidgen: %v", err)
	}
	stream, err := timeseries.Transform(vals, timeseries.StrategicConfig{
		PCT: *pct, Beta: *beta, Horizon: *horizon, Floor: *floor,
	}, r.Split())
	if err != nil {
		log.Fatalf("bidgen: %v", err)
	}

	if *target != "" {
		err := drive(driveConfig{
			target:    *target,
			rate:      *rate,
			dataset:   *dataset,
			seller:    *seller,
			tickEvery: *tickEvery,
			workers:   *workers,
		}, stream)
		if err != nil {
			log.Fatalf("bidgen: %v", err)
		}
		return
	}

	w := csv.NewWriter(os.Stdout)
	if err := w.Write([]string{"index", "buyer", "valuation", "bid", "strategic", "final"}); err != nil {
		log.Fatalf("bidgen: %v", err)
	}
	for i, b := range stream {
		rec := []string{
			strconv.Itoa(i),
			strconv.Itoa(b.Buyer),
			fmt.Sprintf("%g", b.Valuation),
			fmt.Sprintf("%g", b.Amount),
			strconv.FormatBool(b.Strategic),
			strconv.FormatBool(b.Final),
		}
		if err := w.Write(rec); err != nil {
			log.Fatalf("bidgen: %v", err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		log.Fatalf("bidgen: %v", err)
	}
}
