// Command shieldload is the cluster-in-process load rig: it boots a
// real marketd-equivalent server — HTTP and wire transports over one
// journaled, group-commit market with full telemetry — inside this
// process, seeds a catalog, and drives thousands of concurrent
// persona-driven client connections at an open-loop target rate.
// Latency is measured from each operation's scheduled send time
// (coordinated omission cannot hide queueing delay), cross-checked
// against the server's own latency histograms, and the run is gated on
// a declarative SLO plus the market's whole-system invariants: money
// conservation and journal-replay fidelity. A violated gate exits
// nonzero naming the violation, so `make slo-smoke` fails CI on a
// latency or correctness regression.
//
// Usage:
//
//	shieldload [-transport both] [-clients 1024] [-rate 4000] [-ops 16000]
//	           [-bid-fraction 0.8] [-tick-every 400] [-seed 2022]
//	           [-datasets 16] [-group-commit=true] [-fsync] [-trace-sample 1]
//	           [-store] [-compact-every 2000] [-segment-records 4096]
//	           [-followers 2] [-replica-fraction 0.1] [-replica-kill]
//	           [-slo 'bid.p99<250ms,error_rate<0.1%,replica.lag<2s']
//	           [-inject 'bid=2.5s'] [-json BENCH_7.json] [-q]
//
// -slo is a comma-separated list of clauses over the measured report:
// per-class latency bounds (bid.p99<5ms, query.p999<20ms, bid.max<1s),
// error-rate ceilings (error_rate<0.1%, bid.error_rate<0.5%), a
// throughput floor (throughput>=3000), and server-side stage bounds
// (bid.fsync.p99<2ms, bid.queue_wait.p99<5ms) read from the server's
// own shield_stage_seconds histograms — so a gate can distinguish "the
// disk got slow" from "the market got slow". Business rejections —
// Time-Shield waits, per-period bid limits — are the market working as
// designed and never count toward error rates.
//
// -inject adds an artificial latency to every recorded sample of an op
// class ('bid=2.5s'). It exists so the gate can be proven to fail: the
// mutation-canary test injects a regression and asserts shieldload
// exits nonzero naming the violated clause.
//
// -store backs the rig with a segmented journal store (the marketd
// -journal-dir configuration): rotated segment files, snapshot
// checkpoints every -compact-every committed records, and background
// compaction deleting covered segments — all while bids are measured
// against the SLO, so a checkpoint pause that stalls the commit path
// shows up as a bid.p99 violation. The post-run invariant check
// recovers the store from disk (checkpoint + tail segments) and pins
// it byte-identical to the live state.
//
// -followers boots N read replicas beside the leader, each streaming
// the committed command log over the wire protocol and serving reads on
// its own HTTP listener; -replica-fraction routes that share of ops to
// them as the "replica" class, and -replica-kill drops one follower's
// replication connection at the schedule's midpoint to prove catch-up
// under load. A replica.lag<2s clause bounds the worst staleness any
// follower showed (sampled at 25ms), and the post-run invariants pin
// every follower snapshot byte-identical to the leader's.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"time"

	"github.com/datamarket/shield/internal/journal"
	"github.com/datamarket/shield/internal/loadrig"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// artifact is the -json schema (BENCH_7.json under make bench-save).
type artifact struct {
	GeneratedAt string                `json:"generated_at"`
	GoVersion   string                `json:"go_version"`
	Transport   string                `json:"transport"`
	Clients     int                   `json:"clients"`
	TargetRate  float64               `json:"target_rate"`
	Ops         int                   `json:"ops"`
	Seed        uint64                `json:"seed"`
	Throughput  float64               `json:"throughput_ops_per_sec"`
	DurationSec float64               `json:"duration_sec"`
	Errors      int                   `json:"errors"`
	Classes     map[string]classStats `json:"classes"`
	ServerP99   map[string]float64    `json:"server_quantiles_sec"`
	// ServerStages is the server-side bid-path decomposition (queue
	// wait vs fsync vs apply), keyed by stage class.
	ServerStages map[string]loadrig.StageStats `json:"server_stages,omitempty"`
	// ReplicaMaxLagSec is the worst replication staleness any follower
	// showed during the run (absent without -followers).
	ReplicaMaxLagSec float64  `json:"replica_max_lag_sec,omitempty"`
	Invariants       string   `json:"invariants"`
	SLO              string   `json:"slo,omitempty"`
	Violations       []string `json:"violations,omitempty"`
}

// classStats is one op class in the artifact, latencies in seconds.
type classStats struct {
	Count   int     `json:"count"`
	Errors  int     `json:"errors"`
	Rejects int     `json:"rejects"`
	Won     int     `json:"won,omitempty"`
	Lost    int     `json:"lost,omitempty"`
	P50     float64 `json:"p50_sec"`
	P99     float64 `json:"p99_sec"`
	P999    float64 `json:"p999_sec"`
	Max     float64 `json:"max_sec"`
}

// run is main minus the process exit, for tests: 0 = gate passed,
// 1 = SLO or invariant violation, 2 = usage or setup failure.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("shieldload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		transport    = fs.String("transport", loadrig.TransportBoth, "http, wire, or both (clients split evenly)")
		clients      = fs.Int("clients", 1024, "concurrent client connections")
		rate         = fs.Float64("rate", 4000, "open-loop offered load, ops/second across all clients")
		ops          = fs.Int("ops", 16000, "total operations to schedule")
		bidFraction  = fs.Float64("bid-fraction", 0.8, "fraction of ops that are bids (rest are reads)")
		tickEvery    = fs.Int("tick-every", 400, "advance the market period every N ops (0 = never)")
		seed         = fs.Uint64("seed", 2022, "scenario seed (workload replays bit-identically)")
		datasets     = fs.Int("datasets", 16, "catalog size to seed")
		groupCommit  = fs.Bool("group-commit", true, "journal group commit (the production configuration)")
		fsync        = fs.Bool("fsync", false, "fsync every journal flush (durable production configuration)")
		traceSample  = fs.Int("trace-sample", 0, "trace every Nth request (0 = tracing off; 1 = every request)")
		sloSpec      = fs.String("slo", "", "SLO gate, e.g. 'bid.p99<250ms,error_rate<0.1%' (empty = report only)")
		inject       = fs.String("inject", "", "artificial latency per op class, e.g. 'bid=2.5s' (gate self-test)")
		jsonOut      = fs.String("json", "", "also write the report as a JSON artifact")
		quiet        = fs.Bool("q", false, "suppress the report table (violations still print)")
		timeout      = fs.Duration("timeout", 5*time.Second, "per-operation deadline")
		store        = fs.Bool("store", false, "back the rig with a segmented journal store (marketd -journal-dir equivalent)")
		compactEvery = fs.Int64("compact-every", 0, "store mode: snapshot-checkpoint and compact every N committed records (default 10000; negative disables)")
		segRecords   = fs.Int64("segment-records", 0, "store mode: records per segment before rotation (default 65536)")
		followers    = fs.Int("followers", 0, "read replicas to boot beside the leader")
		replicaFrac  = fs.Float64("replica-fraction", 0, "fraction of ops served by replicas (carved from the read share; needs -followers)")
		replicaKill  = fs.Bool("replica-kill", false, "drop follower 0's replication connection at the schedule midpoint (needs -followers)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	slo, err := loadrig.ParseSLO(*sloSpec)
	if err != nil {
		fmt.Fprintf(stderr, "shieldload: %v\n", err)
		return 2
	}
	injected, err := parseInject(*inject)
	if err != nil {
		fmt.Fprintf(stderr, "shieldload: %v\n", err)
		return 2
	}

	rig, err := loadrig.StartRig(loadrig.RigConfig{
		Datasets:    *datasets,
		Buyers:      *clients,
		Seed:        *seed,
		GroupCommit: *groupCommit,
		Fsync:       *fsync,
		TraceSample: *traceSample,
		Followers:   *followers,
		Store:       *store,
		StoreConfig: journal.StoreConfig{
			SegmentRecords:  *segRecords,
			CheckpointEvery: *compactEvery,
		},
	})
	if err != nil {
		fmt.Fprintf(stderr, "shieldload: %v\n", err)
		return 2
	}
	defer rig.Close()

	rep, err := loadrig.Run(rig, loadrig.Scenario{
		Transport:       *transport,
		Clients:         *clients,
		Rate:            *rate,
		Ops:             *ops,
		BidFraction:     *bidFraction,
		TickEvery:       *tickEvery,
		Seed:            *seed,
		Timeout:         *timeout,
		InjectLatency:   injected,
		ReplicaFraction: *replicaFrac,
		KillFollower:    *replicaKill,
	})
	if err != nil {
		fmt.Fprintf(stderr, "shieldload: %v\n", err)
		return 2
	}

	code := 0
	inv, invErr := rig.CheckInvariants()
	if invErr != nil {
		fmt.Fprintf(stderr, "shieldload: INVARIANT VIOLATED: %v\n", invErr)
		inv = invErr.Error()
		code = 1
	}
	rep.Invariants = inv

	violations := slo.Evaluate(rep)
	if !*quiet {
		fmt.Fprint(stdout, rep)
		if invErr == nil {
			fmt.Fprintf(stdout, "invariants: %s\n", inv)
		}
	}
	for _, v := range violations {
		fmt.Fprintf(stderr, "shieldload: SLO %s\n", v)
		code = 1
	}
	if code == 0 && *sloSpec != "" {
		fmt.Fprintf(stdout, "SLO satisfied: %s\n", *sloSpec)
	}

	if *jsonOut != "" {
		if err := writeArtifact(*jsonOut, rep, *transport, *clients, *rate, *ops, *seed, *sloSpec, violations); err != nil {
			fmt.Fprintf(stderr, "shieldload: %v\n", err)
			if code == 0 {
				code = 2
			}
		} else {
			fmt.Fprintf(stdout, "shieldload: wrote %s\n", *jsonOut)
		}
	}
	return code
}

// parseInject parses 'class=dur[,class=dur]' fault-injection specs.
func parseInject(spec string) (map[string]time.Duration, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	out := map[string]time.Duration{}
	for _, term := range strings.Split(spec, ",") {
		class, val, ok := strings.Cut(strings.TrimSpace(term), "=")
		if !ok || class == "" {
			return nil, fmt.Errorf("bad -inject term %q (want class=duration)", term)
		}
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("bad -inject duration in %q", term)
		}
		out[class] = d
	}
	return out, nil
}

func writeArtifact(path string, rep *loadrig.Report, transport string, clients int, rate float64, ops int, seed uint64, slo string, violations []loadrig.Violation) error {
	art := artifact{
		GeneratedAt:      time.Now().UTC().Format(time.RFC3339),
		Transport:        transport,
		Clients:          clients,
		TargetRate:       rate,
		Ops:              ops,
		Seed:             seed,
		Throughput:       rep.Throughput,
		DurationSec:      rep.Duration.Seconds(),
		Errors:           rep.Errors,
		Classes:          map[string]classStats{},
		ServerP99:        rep.ServerQuantiles,
		ServerStages:     rep.ServerStages,
		ReplicaMaxLagSec: rep.ReplicaMaxLag,
		Invariants:       rep.Invariants,
		SLO:              slo,
	}
	if v, err := exec.Command("go", "version").Output(); err == nil {
		art.GoVersion = strings.TrimSpace(string(v))
	}
	for name, st := range rep.Classes {
		art.Classes[name] = classStats{
			Count: st.Count, Errors: st.Errors, Rejects: st.Rejects,
			Won: st.Won, Lost: st.Lost,
			P50: st.P50.Seconds(), P99: st.P99.Seconds(),
			P999: st.P999.Seconds(), Max: st.Max.Seconds(),
		}
	}
	for _, v := range violations {
		art.Violations = append(art.Violations, v.String())
	}
	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
