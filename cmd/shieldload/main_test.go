package main

import (
	"bytes"
	"strings"
	"testing"
)

// small keeps test runs quick while still driving both transports
// concurrently through the full rig.
var small = []string{
	"-clients", "48", "-rate", "3000", "-ops", "1500", "-tick-every", "300",
}

func TestRunGatePasses(t *testing.T) {
	var out, errOut bytes.Buffer
	args := append([]string{"-slo", "bid.p99<10s,query.p99<10s,error_rate<0.1%"}, small...)
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "SLO satisfied") {
		t.Errorf("stdout missing SLO confirmation:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "money conserved") {
		t.Errorf("stdout missing invariant summary:\n%s", out.String())
	}
}

// TestRunMutationCanary proves the gate can fail: injecting an
// artificial latency regression into the bid class must exit nonzero
// and name the violated clause on stderr.
func TestRunMutationCanary(t *testing.T) {
	var out, errOut bytes.Buffer
	args := append([]string{
		"-slo", "bid.p99<250ms,query.p99<10s",
		"-inject", "bid=2.5s",
	}, small...)
	code := run(args, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d with injected regression, want 1\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errOut.String())
	}
	if !strings.Contains(errOut.String(), "bid.p99<250ms violated") {
		t.Errorf("stderr does not name the violated clause:\n%s", errOut.String())
	}
	if strings.Contains(errOut.String(), "query.p99") {
		t.Errorf("untouched class reported as violated:\n%s", errOut.String())
	}
}

// TestRunStoreGate drives the -compact-every scenario: the rig backed
// by the segmented store, checkpointing and compacting under load,
// must hold the bid.p99 SLO and pass the store-recovery invariant.
func TestRunStoreGate(t *testing.T) {
	var out, errOut bytes.Buffer
	args := append([]string{
		"-store", "-compact-every", "300", "-segment-records", "128",
		"-slo", "bid.p99<10s,error_rate<0.1%",
	}, small...)
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "checkpointed recovery rebuilds live state") {
		t.Errorf("stdout missing store recovery invariant:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "SLO satisfied") {
		t.Errorf("stdout missing SLO confirmation:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-slo", "bid.p42<5ms"},
		{"-inject", "bid=oops"},
		{"-transport", "carrier-pigeon", "-clients", "4", "-ops", "10"},
	} {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("run(%v) exit %d, want 2\nstderr:\n%s", args, code, errOut.String())
		}
	}
}

func TestRunWritesArtifact(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	var out, errOut bytes.Buffer
	args := append([]string{"-json", path, "-q"}, small...)
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "wrote "+path) {
		t.Errorf("stdout missing artifact confirmation:\n%s", out.String())
	}
}
