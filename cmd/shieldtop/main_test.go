package main

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// expositionFrame renders a canned /metrics body with the given bid
// counts, so consecutive polls show a rate.
func expositionFrame(bids int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP shield_wire_request_seconds Wire request latency.\n")
	fmt.Fprintf(&b, "# TYPE shield_wire_request_seconds histogram\n")
	cum := 0
	for i, le := range []string{"0.001", "0.01", "+Inf"} {
		cum = bids * (i + 1) / 3
		if le == "+Inf" {
			cum = bids
		}
		ex := ""
		if le == "0.01" {
			ex = ` # {trace_id="req-00bidtail"} 0.004 1000.000`
		}
		fmt.Fprintf(&b, "shield_wire_request_seconds_bucket{op=\"bid\",status=\"ok\",le=%q} %d%s\n", le, cum, ex)
	}
	fmt.Fprintf(&b, "shield_wire_request_seconds_sum{op=\"bid\",status=\"ok\"} %g\n", float64(bids)*0.002)
	fmt.Fprintf(&b, "shield_wire_request_seconds_count{op=\"bid\",status=\"ok\"} %d\n", bids)

	fmt.Fprintf(&b, "# HELP shield_stage_seconds Write-path stage latency.\n")
	fmt.Fprintf(&b, "# TYPE shield_stage_seconds histogram\n")
	for _, stage := range []string{"group_commit.fsync", "apply"} {
		fmt.Fprintf(&b, "shield_stage_seconds_bucket{stage=%q,le=\"0.001\"} %d # {trace_id=\"req-%s\"} 0.0004 1000.000\n", stage, bids, stage[:5])
		fmt.Fprintf(&b, "shield_stage_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", stage, bids)
		fmt.Fprintf(&b, "shield_stage_seconds_sum{stage=%q} %g\n", stage, float64(bids)*0.0004)
		fmt.Fprintf(&b, "shield_stage_seconds_count{stage=%q} %d\n", stage, bids)
	}

	fmt.Fprintf(&b, "# HELP shield_journal_group_records Records per flushed group.\n")
	fmt.Fprintf(&b, "# TYPE shield_journal_group_records histogram\n")
	fmt.Fprintf(&b, "shield_journal_group_records_bucket{le=\"+Inf\"} 10\n")
	fmt.Fprintf(&b, "shield_journal_group_records_sum 52\n")
	fmt.Fprintf(&b, "shield_journal_group_records_count 10\n")

	fmt.Fprintf(&b, "# HELP shield_runtime_goroutines Live goroutines.\n")
	fmt.Fprintf(&b, "# TYPE shield_runtime_goroutines gauge\n")
	fmt.Fprintf(&b, "shield_runtime_goroutines 42\n")
	fmt.Fprintf(&b, "# HELP shield_wire_connections Open wire connections.\n")
	fmt.Fprintf(&b, "# TYPE shield_wire_connections gauge\n")
	fmt.Fprintf(&b, "shield_wire_connections 16\n")
	return b.String()
}

const cannedTraces = `{"dropped":3,"traces":[
  {"id":"req-00000001","name":"wire.bid","start":"2026-08-08T12:00:00Z","duration_us":1800,
   "spans":[{"name":"wire.read","start_us":0,"duration_us":20},
            {"name":"group_commit.fsync","start_us":100,"duration_us":900}]}
]}`

// TestDashboardRendersCannedServer drives two refresh frames against a
// canned server and checks every panel: rates from count deltas,
// quantiles, the stage table with its tail exemplars, group-commit and
// runtime summaries, and the trace list.
func TestDashboardRendersCannedServer(t *testing.T) {
	var polls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.Header.Get("Authorization"); got != "Bearer sesame" {
			t.Errorf("poll sent Authorization %q", got)
		}
		switch r.URL.Path {
		case "/metrics":
			// First poll sees 300 bids, second 500 → 200 bids over the
			// 100ms interval = ~2000/s.
			n := 300
			if polls.Add(1) > 1 {
				n = 500
			}
			fmt.Fprint(w, expositionFrame(n))
		case "/debug/traces":
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, cannedTraces)
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	var out, errw strings.Builder
	code := run([]string{
		"-addr", srv.URL, "-token", "sesame",
		"-interval", "100ms", "-n", "2", "-plain",
	}, &out, &errw)
	if code != 0 {
		t.Fatalf("run = %d, stderr:\n%s", code, errw.String())
	}
	got := out.String()

	for _, want := range []string{
		"wire.bid",            // op class row
		"2000/s",              // rate from the 200-bid delta over 100ms
		"group_commit.fsync",  // stage table row
		"req-group",           // fsync stage's tail exemplar (req-<stage[:5]>)
		"mean group 5.2",      // 52 records / 10 flushes
		"42 goroutines",       // runtime panel
		"wire=16",             // connection gauge
		"recent traces",       // trace panel header
		"req-00000001",        // the canned trace
		"group_commit.fsync=", // its stage summary
		"3 evicted",           // ring drop count
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("dashboard output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "\x1b[2J") {
		t.Fatal("-plain frame still clears the screen")
	}
}

// TestRunFailsOnUnreachableServer pins the exit code contract.
func TestRunFailsOnUnreachableServer(t *testing.T) {
	var out, errw strings.Builder
	code := run([]string{"-addr", "http://127.0.0.1:1", "-n", "1"}, &out, &errw)
	if code != 1 {
		t.Fatalf("run against dead server = %d, want 1", code)
	}
	if !strings.Contains(errw.String(), "shieldtop:") {
		t.Fatalf("no error line on stderr: %q", errw.String())
	}
}

// TestQuantileInterpolation pins the bucket math the p50/p99 columns
// rest on.
func TestQuantileInterpolation(t *testing.T) {
	h := &hist{
		buckets: []bucket{{le: 0.001, cum: 50}, {le: 0.01, cum: 90}, {le: math.Inf(1), cum: 100}},
		count:   100,
	}
	if got := h.quantile(0.50); math.Abs(got-0.001) > 1e-9 {
		t.Fatalf("p50 = %v, want 0.001 (rank 50 closes the first bucket)", got)
	}
	// Rank 99 falls past the last finite bucket: clamp to its edge.
	if got := h.quantile(0.99); got != 0.01 {
		t.Fatalf("p99 = %v, want clamp to 0.01", got)
	}
	// Rank 75 is 25/40 of the way through the second bucket.
	want := 0.001 + (0.01-0.001)*25/40
	if got := h.quantile(0.75); math.Abs(got-want) > 1e-9 {
		t.Fatalf("p75 = %v, want %v", got, want)
	}
}

// TestParseExemplarLine pins the exemplar-suffix parsing the stage
// table's trace links come from.
func TestParseExemplarLine(t *testing.T) {
	s, err := parseSampleLine(`shield_stage_seconds_bucket{stage="group_commit.fsync",le="0.002"} 7 # {trace_id="req-00000042"} 0.0015 1722000000.123`)
	if err != nil {
		t.Fatal(err)
	}
	if s.labels["stage"] != "group_commit.fsync" || s.value != 7 || s.exemplar != "req-00000042" {
		t.Fatalf("parsed %+v", s)
	}
	snap := parseExposition(expositionFrame(300), time.Now())
	series := snap.hists["shield_stage_seconds"]
	if len(series) != 2 {
		t.Fatalf("parsed %d stage series, want 2", len(series))
	}
}
