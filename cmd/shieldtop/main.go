// Command shieldtop is a live terminal dashboard for a running shield
// server (marketd or the shieldload rig): it polls GET /metrics and
// GET /debug/traces on an interval and renders, per refresh frame,
//
//   - per-op-class request rates (from count deltas between polls) and
//     p50/p99 latency estimates for both transports,
//   - the durable write path's stage breakdown (wire.read, decode,
//     group_commit.queue_wait/append/fsync, apply, publish, ack.flush)
//     with each stage's tail-bucket exemplar — the request ID an
//     operator can paste into /debug/traces?id= to see that exact op's
//     full breakdown,
//   - group-commit health (mean group size, leader wait p99, fsync
//     p99),
//   - process self-metrics (goroutines, heap, GC, open connections),
//   - the most recent sampled traces.
//
// Usage:
//
//	shieldtop [-addr http://localhost:8080] [-token secret]
//	          [-interval 2s] [-n 0] [-plain]
//
// -token sends the operator bearer token (required when the server was
// started with -auth or -operator-token). -n bounds the number of
// refresh frames (0 = run until interrupted). -plain disables the ANSI
// clear between frames, so output appends — useful for logs and pipes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/datamarket/shield/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run polls and renders n frames (0 = forever). Returns 0 when every
// poll succeeded, 1 otherwise.
func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("shieldtop", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		addr     = fs.String("addr", "http://localhost:8080", "server base URL (serves /metrics and /debug/traces)")
		token    = fs.String("token", "", "operator bearer token")
		interval = fs.Duration("interval", 2*time.Second, "poll interval")
		frames   = fs.Int("n", 0, "number of refresh frames to render (0 = until interrupted)")
		plain    = fs.Bool("plain", false, "append frames instead of clearing the screen")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}

	a := &app{
		base:   strings.TrimSuffix(*addr, "/"),
		token:  *token,
		client: &http.Client{Timeout: 10 * time.Second},
	}

	var prev *snapshot
	failed := false
	for i := 0; *frames == 0 || i < *frames; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		cur, err := a.scrape()
		if err != nil {
			fmt.Fprintf(errw, "shieldtop: %v\n", err)
			failed = true
			continue
		}
		traces, dropped, trErr := a.traces()
		if !*plain {
			fmt.Fprint(out, "\x1b[H\x1b[2J")
		}
		render(out, a.base, prev, cur, *interval)
		renderTraces(out, traces, dropped, trErr)
		prev = cur
	}
	if failed {
		return 1
	}
	return 0
}

// app holds the polling target.
type app struct {
	base   string
	token  string
	client *http.Client
}

func (a *app) get(path string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodGet, a.base+path, nil)
	if err != nil {
		return nil, err
	}
	if a.token != "" {
		req.Header.Set("Authorization", "Bearer "+a.token)
	}
	resp, err := a.client.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("GET %s: HTTP %d", path, resp.StatusCode)
	}
	return resp, nil
}

// scrape fetches and parses one /metrics exposition.
func (a *app) scrape() (*snapshot, error) {
	resp, err := a.get("/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return parseExposition(string(raw), time.Now()), nil
}

// traces fetches the recent sampled traces, best-effort: a server run
// without tracing still gets the metrics panels.
func (a *app) traces() ([]obs.TraceSnapshot, uint64, error) {
	resp, err := a.get("/debug/traces")
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	var out struct {
		Dropped uint64              `json:"dropped"`
		Traces  []obs.TraceSnapshot `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, 0, err
	}
	return out.Traces, out.Dropped, nil
}

// stageOrder is the durable bid path in execution order; stages the
// server never observed are skipped, unknown extra stages are appended
// alphabetically.
var stageOrder = []string{
	"http.parse", "wire.read", "decode",
	"group_commit.queue_wait", "group_commit.append", "group_commit.fsync",
	"journal.append", "journal.fsync",
	"shard.lock_wait", "apply", "publish", "ack.flush",
}

// render writes one dashboard frame.
func render(w io.Writer, base string, prev, cur *snapshot, interval time.Duration) {
	fmt.Fprintf(w, "shieldtop — %s — %s\n\n", base, cur.at.Format("15:04:05"))

	renderClasses(w, prev, cur, interval)
	renderStages(w, cur)
	renderGroupCommit(w, cur)
	renderRuntime(w, cur)
}

// classRow is one op class in the rate table, merged across statuses.
type classRow struct {
	name   string
	all    hist
	errors float64
}

// classRows merges a request-latency family's per-status series into
// per-class rows. classOf maps a series' labels to the row name and
// errOf says whether the series counts as errors.
func classRows(s *snapshot, family string, classOf func(map[string]string) string, errOf func(map[string]string) bool) map[string]*classRow {
	rows := map[string]*classRow{}
	for _, h := range s.histograms(family) {
		name := classOf(h.labels)
		row := rows[name]
		if row == nil {
			row = &classRow{name: name}
			rows[name] = row
		}
		row.all.merge(h)
		if errOf(h.labels) {
			row.errors += h.count
		}
	}
	return rows
}

func allClassRows(s *snapshot) map[string]*classRow {
	rows := classRows(s, "shield_http_request_seconds",
		func(l map[string]string) string { return l["route"] },
		func(l map[string]string) bool { return l["status"] >= "400" })
	// Business rejections — Time-Shield waits, per-period bid limits —
	// are the market working as designed, not errors (same bucketing as
	// the load rig's gate).
	rejection := map[string]bool{"ok": true, "blocked_until": true, "bid_too_soon": true, "already_acquired": true}
	for name, row := range classRows(s, "shield_wire_request_seconds",
		func(l map[string]string) string { return "wire." + l["op"] },
		func(l map[string]string) bool { return !rejection[l["status"]] }) {
		rows[name] = row
	}
	return rows
}

func renderClasses(w io.Writer, prev, cur *snapshot, interval time.Duration) {
	rows := allClassRows(cur)
	if len(rows) == 0 {
		fmt.Fprintf(w, "no request histograms yet (no traffic, or wrong -addr?)\n\n")
		return
	}
	var prevRows map[string]*classRow
	if prev != nil {
		prevRows = allClassRows(prev)
	}
	names := make([]string, 0, len(rows))
	for n := range rows {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-28s %9s %10s %10s %10s %7s\n", "op class", "rate", "p50", "p99", "total", "errors")
	for _, n := range names {
		row := rows[n]
		rate := "-"
		if pr, ok := prevRows[n]; ok && interval > 0 {
			rate = fmt.Sprintf("%.0f/s", (row.all.count-pr.all.count)/interval.Seconds())
		}
		fmt.Fprintf(w, "%-28s %9s %10s %10s %10.0f %7.0f\n",
			n, rate, fmtSec(row.all.quantile(0.50)), fmtSec(row.all.quantile(0.99)),
			row.all.count, row.errors)
	}
	fmt.Fprintln(w)
}

func renderStages(w io.Writer, cur *snapshot) {
	series := cur.hists["shield_stage_seconds"]
	if len(series) == 0 {
		return
	}
	byStage := map[string]*hist{}
	var extra []string
	for _, h := range series {
		byStage[h.labels["stage"]] = h
	}
	known := map[string]bool{}
	for _, s := range stageOrder {
		known[s] = true
	}
	for s := range byStage {
		if !known[s] {
			extra = append(extra, s)
		}
	}
	sort.Strings(extra)
	fmt.Fprintf(w, "%-28s %10s %10s %10s   %s\n", "write-path stage", "count", "p50", "p99", "tail exemplar")
	for _, s := range append(append([]string{}, stageOrder...), extra...) {
		h, ok := byStage[s]
		if !ok || h.count == 0 {
			continue
		}
		fmt.Fprintf(w, "%-28s %10.0f %10s %10s   %s\n",
			s, h.count, fmtSec(h.quantile(0.50)), fmtSec(h.quantile(0.99)), h.tailExemplar())
	}
	fmt.Fprintln(w)
}

func renderGroupCommit(w io.Writer, cur *snapshot) {
	var parts []string
	if gs := cur.histograms("shield_journal_group_records"); len(gs) == 1 && gs[0].count > 0 {
		parts = append(parts, fmt.Sprintf("mean group %.1f records over %.0f flushes",
			gs[0].sum/gs[0].count, gs[0].count))
	}
	if lw := cur.histograms("shield_journal_group_leader_wait_seconds"); len(lw) == 1 && lw[0].count > 0 {
		parts = append(parts, "leader wait p99 "+fmtSec(lw[0].quantile(0.99)))
	}
	if fs := cur.histograms("shield_journal_fsync_seconds"); len(fs) == 1 && fs[0].count > 0 {
		parts = append(parts, "fsync p99 "+fmtSec(fs[0].quantile(0.99)))
	}
	if len(parts) > 0 {
		fmt.Fprintf(w, "group commit: %s\n", strings.Join(parts, ", "))
	}
}

func renderRuntime(w io.Writer, cur *snapshot) {
	var parts []string
	if v, ok := cur.scalar("shield_runtime_goroutines"); ok {
		parts = append(parts, fmt.Sprintf("%.0f goroutines", v))
	}
	if v, ok := cur.scalar("shield_runtime_heap_bytes"); ok {
		parts = append(parts, fmt.Sprintf("heap %.1f MiB", v/(1<<20)))
	}
	if v, ok := cur.scalar("shield_runtime_gc_pause_seconds_total"); ok {
		cycles, _ := cur.scalar("shield_runtime_gc_cycles_total")
		parts = append(parts, fmt.Sprintf("GC pause %s over %.0f cycles",
			fmtSec(v), cycles))
	}
	conns := []string{}
	if v, ok := cur.scalar("shield_http_connections"); ok {
		conns = append(conns, fmt.Sprintf("http=%.0f", v))
	}
	if v, ok := cur.scalar("shield_wire_connections"); ok {
		conns = append(conns, fmt.Sprintf("wire=%.0f", v))
	}
	if len(conns) > 0 {
		parts = append(parts, "conns "+strings.Join(conns, " "))
	}
	if len(parts) > 0 {
		fmt.Fprintf(w, "runtime: %s\n", strings.Join(parts, ", "))
	}
}

// renderTraces shows the most recent sampled traces, newest first.
func renderTraces(w io.Writer, traces []obs.TraceSnapshot, dropped uint64, err error) {
	if err != nil {
		fmt.Fprintf(w, "\ntraces unavailable: %v\n", err)
		return
	}
	if len(traces) == 0 {
		return
	}
	const show = 8
	fmt.Fprintf(w, "\nrecent traces (%d in ring, %d evicted):\n", len(traces), dropped)
	for i, ts := range traces {
		if i == show {
			fmt.Fprintf(w, "  ... %d more\n", len(traces)-show)
			break
		}
		fmt.Fprintf(w, "  %-16s %-24s %10s  %s\n",
			ts.ID, ts.Name, time.Duration(ts.DurationUS)*time.Microsecond, ts.StageSummary())
	}
}

// fmtSec renders a seconds value as a rounded duration.
func fmtSec(sec float64) string {
	d := time.Duration(sec * float64(time.Second))
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}
