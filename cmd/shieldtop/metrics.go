package main

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// sample is one parsed line of the Prometheus text exposition, plus the
// trace ID from an OpenMetrics-style exemplar suffix when the line
// carries one.
type sample struct {
	name     string
	labels   map[string]string
	value    float64
	exemplar string
}

// bucket is one cumulative histogram bucket.
type bucket struct {
	le       float64
	cum      float64
	exemplar string
}

// hist is one reassembled histogram series (family + label set minus
// le), with buckets in ascending le order.
type hist struct {
	labels  map[string]string
	buckets []bucket
	sum     float64
	count   float64
}

// snapshot is one /metrics scrape, indexed for the dashboard: scalar
// series (counters, gauges) by rendered series name, histograms by
// family name then label key.
type snapshot struct {
	at      time.Time
	scalars map[string]float64
	hists   map[string]map[string]*hist
}

// scalar returns a counter/gauge value by its rendered series name,
// e.g. "shield_runtime_goroutines" or a labeled form.
func (s *snapshot) scalar(name string) (float64, bool) {
	v, ok := s.scalars[name]
	return v, ok
}

// histograms returns the family's series sorted by label key, so render
// order is stable across refreshes.
func (s *snapshot) histograms(family string) []*hist {
	m := s.hists[family]
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*hist, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

// quantile estimates the p-quantile in the histogram's native unit by
// linear interpolation inside the first bucket whose cumulative count
// reaches rank p*count. The +Inf bucket clamps to the last finite edge.
func (h *hist) quantile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := p * h.count
	lower, prevCum := 0.0, 0.0
	for _, b := range h.buckets {
		if b.cum >= target {
			if math.IsInf(b.le, 1) {
				return lower
			}
			inBucket := b.cum - prevCum
			if inBucket <= 0 {
				return b.le
			}
			return lower + (b.le-lower)*(target-prevCum)/inBucket
		}
		if !math.IsInf(b.le, 1) {
			lower = b.le
		}
		prevCum = b.cum
	}
	return lower
}

// tailExemplar returns the trace ID on the highest-le bucket that
// carries one — the request that explains the distribution's tail.
func (h *hist) tailExemplar() string {
	for i := len(h.buckets) - 1; i >= 0; i-- {
		if h.buckets[i].exemplar != "" {
			return h.buckets[i].exemplar
		}
	}
	return ""
}

// merge folds other into h: bucket-by-bucket cumulative counts (both
// sides share the registry's fixed bucket layout), sums and counts.
// Used to collapse per-status series into one per-op-class histogram.
func (h *hist) merge(other *hist) {
	h.sum += other.sum
	h.count += other.count
	if len(h.buckets) == 0 {
		h.buckets = append([]bucket(nil), other.buckets...)
		return
	}
	for i := range h.buckets {
		if i < len(other.buckets) {
			h.buckets[i].cum += other.buckets[i].cum
			if other.buckets[i].exemplar != "" {
				h.buckets[i].exemplar = other.buckets[i].exemplar
			}
		}
	}
}

// parseExposition parses the dialect internal/obs emits — Prometheus
// text format plus "# {trace_id=\"...\"} value ts" bucket exemplars —
// into an indexed snapshot. Unparseable lines are skipped: a live
// dashboard degrades, it does not crash.
func parseExposition(text string, at time.Time) *snapshot {
	snap := &snapshot{at: at, scalars: map[string]float64{}, hists: map[string]map[string]*hist{}}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			continue
		}
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			family := strings.TrimSuffix(s.name, "_bucket")
			le, err := parseLe(s.labels["le"])
			if err != nil {
				continue
			}
			delete(s.labels, "le")
			h := snap.histSeries(family, s.labels)
			h.buckets = append(h.buckets, bucket{le: le, cum: s.value, exemplar: s.exemplar})
		case strings.HasSuffix(s.name, "_sum"):
			snap.histSeries(strings.TrimSuffix(s.name, "_sum"), s.labels).sum = s.value
		case strings.HasSuffix(s.name, "_count"):
			snap.histSeries(strings.TrimSuffix(s.name, "_count"), s.labels).count = s.value
		default:
			snap.scalars[seriesName(s.name, s.labels)] = s.value
		}
	}
	for _, m := range snap.hists {
		for _, h := range m {
			sort.Slice(h.buckets, func(i, j int) bool { return h.buckets[i].le < h.buckets[j].le })
		}
	}
	return snap
}

// histSeries finds or creates the histogram for (family, labels).
func (s *snapshot) histSeries(family string, labels map[string]string) *hist {
	m := s.hists[family]
	if m == nil {
		m = map[string]*hist{}
		s.hists[family] = m
	}
	key := labelKey(labels)
	h := m[key]
	if h == nil {
		h = &hist{labels: labels}
		m[key] = h
	}
	return h
}

func labelKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte('\xff')
	}
	return b.String()
}

func seriesName(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseSampleLine parses one sample:
//
//	name[{labels}] value [# {trace_id="..."} value timestamp]
func parseSampleLine(line string) (sample, error) {
	s := sample{labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return s, fmt.Errorf("no name in %q", line)
	}
	s.name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.labels, rest = labels, tail
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return s, fmt.Errorf("no value in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.value = v
	if len(fields) >= 2 && fields[1] == "#" {
		ex, _, err := parseLabels(strings.TrimSpace(strings.TrimPrefix(strings.Join(fields[1:], " "), "#")))
		if err == nil {
			s.exemplar = ex["trace_id"]
		}
	}
	return s, nil
}

// parseLabels parses a leading {k="v",...} group and returns the rest
// of the line after the closing brace.
func parseLabels(in string) (map[string]string, string, error) {
	if in == "" || in[0] != '{' {
		return nil, "", fmt.Errorf("no label block in %q", in)
	}
	out := map[string]string{}
	i := 1
	for {
		if i >= len(in) {
			return nil, "", fmt.Errorf("unterminated labels in %q", in)
		}
		if in[i] == '}' {
			return out, in[i+1:], nil
		}
		eq := strings.IndexByte(in[i:], '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("no = in labels of %q", in)
		}
		key := in[i : i+eq]
		i += eq + 1
		if i >= len(in) || in[i] != '"' {
			return nil, "", fmt.Errorf("unquoted label value in %q", in)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(in) {
				return nil, "", fmt.Errorf("unterminated label value in %q", in)
			}
			c := in[i]
			if c == '\\' && i+1 < len(in) {
				switch in[i+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(in[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		out[key] = val.String()
		if i < len(in) && in[i] == ',' {
			i++
		}
	}
}
