// Command marketd serves a protected data market over a JSON HTTP API:
// sellers upload datasets, the arbiter prices them with the
// shielded multiplicative-weights algorithm, buyers bid and receive
// immediate allocation decisions or Time-Shield waits.
//
// Usage:
//
//	marketd [-addr :8080] [-epoch 8] [-candidates 40] [-min 1] [-max 200]
//	        [-seed 2022] [-shards 16] [-journal market.log] [-fsync] [-auth]
//
// With -journal, every successful operation is appended to an event log
// and the full market state is rebuilt from it on restart; -fsync
// additionally syncs the log to disk after every record, trading append
// latency for zero data loss on power failure (without it a crash of the
// machine — not just the process — can lose recently buffered events;
// recovery still works either way, replaying the longest durable prefix).
// With -auth, buyer registration returns an HMAC credential and every bid
// must be signed with it (false-name bidding deterrence; see
// internal/auth).
//
// See internal/httpapi for the endpoint list.
package main

import (
	"context"
	"crypto/rand"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/auth"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/httpapi"
	"github.com/datamarket/shield/internal/journal"
	"github.com/datamarket/shield/internal/market"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		epoch       = flag.Int("epoch", 8, "Epoch-Shield size E (bids per price update)")
		candidates  = flag.Int("candidates", 40, "number of posting-price candidates")
		minPrice    = flag.Float64("min", 1, "lowest candidate price (also the bid floor)")
		maxPrice    = flag.Float64("max", 200, "highest candidate price")
		bpp         = flag.Int("bpp", 1, "expected bids per market period (Time-Shield conversion)")
		seed        = flag.Uint64("seed", 2022, "pricing randomness seed")
		shards      = flag.Int("shards", market.DefaultShards, "lock shards for concurrent bidding (pricing is shard-count independent)")
		journalPath = flag.String("journal", "", "event-journal file (created, or replayed if present)")
		fsync       = flag.Bool("fsync", false, "fsync the journal after every record (durable across power loss, slower appends)")
		compact     = flag.Bool("compact", false, "compact the journal (snapshot head) before serving")
		useAuth     = flag.Bool("auth", false, "require HMAC-signed bids")
	)
	flag.Parse()

	cfg := market.Config{
		Engine: core.Config{
			Candidates:    auction.LinearGrid(*minPrice, *maxPrice, *candidates),
			EpochSize:     *epoch,
			BidsPerPeriod: *bpp,
			MinBid:        *minPrice,
		},
		Seed:   *seed,
		Shards: *shards,
	}

	var srvHandler *httpapi.Server
	closeJournal := func() error { return nil }
	switch {
	case *journalPath == "":
		m, err := market.New(cfg)
		if err != nil {
			log.Fatalf("marketd: %v", err)
		}
		srvHandler = httpapi.NewServer(m)
	default:
		if *compact {
			if err := journal.CompactFile(*journalPath); err != nil {
				log.Fatalf("marketd: compacting %s: %v", *journalPath, err)
			}
			log.Printf("marketd: compacted %s", *journalPath)
		}
		var opts []journal.Option
		if *fsync {
			opts = append(opts, journal.WithFsync())
		}
		jm, replayed, err := journal.OpenFile(cfg, *journalPath, opts...)
		if err != nil {
			log.Fatalf("marketd: %v", err)
		}
		closeJournal = jm.Close
		if replayed > 0 {
			log.Printf("marketd: replayed %d events from %s", replayed, *journalPath)
		}
		srvHandler = httpapi.NewJournaled(jm)
	}

	if *useAuth {
		srvHandler = srvHandler.WithAuth(auth.NewVerifier(func() ([]byte, error) {
			key := make([]byte, 32)
			_, err := rand.Read(key)
			return key, err
		}))
		log.Printf("marketd: HMAC bid signing required")
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           srvHandler.Routes(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	// Graceful shutdown: stop accepting requests, drain in-flight ones,
	// then close the journal — Close syncs the log to disk, so a clean
	// SIGTERM never loses events even without -fsync.
	done := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("marketd: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("marketd: shutdown: %v", err)
		}
		close(done)
	}()

	log.Printf("marketd: listening on %s (E=%d, %d candidates in [%g, %g])",
		*addr, *epoch, *candidates, *minPrice, *maxPrice)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
	if *journalPath != "" {
		if err := closeJournal(); err != nil {
			log.Fatalf("marketd: closing journal: %v", err)
		}
		log.Printf("marketd: journal %s closed cleanly", *journalPath)
	}
}
