// Command marketd serves a protected data market over a JSON HTTP API:
// sellers upload datasets, the arbiter prices them with the
// shielded multiplicative-weights algorithm, buyers bid and receive
// immediate allocation decisions or Time-Shield waits.
//
// Usage:
//
//	marketd [-addr :8080] [-epoch 8] [-candidates 40] [-min 1] [-max 200]
//	        [-seed 2022] [-shards 16] [-journal market.log] [-fsync] [-auth]
//	        [-journal-dir market.d] [-checkpoint-every 10000]
//	        [-retain-segments 0] [-segment-bytes 8388608]
//	        [-group-commit] [-group-commit-window 0s] [-wire-addr :9090]
//	        [-follow wire://leader:9090] [-max-lag 5s]
//	        [-operator-token secret] [-trace-sample 1] [-slow-op 50ms]
//	        [-debug-addr 127.0.0.1:6060]
//
// With -journal, every successful operation is appended to an event log
// and the full market state is rebuilt from it on restart; -fsync
// additionally syncs the log to disk after every record, trading append
// latency for zero data loss on power failure (without it a crash of the
// machine — not just the process — can lose recently buffered events;
// recovery still works either way, replaying the longest durable prefix).
//
// -journal-dir selects the segmented store instead: the log rotates
// across sealed segment files, a snapshot checkpoint lands every
// -checkpoint-every records, restart replays only the records past the
// newest checkpoint, and checkpoint-covered segments are deleted in the
// background (-retain-segments spares; negative keeps all). Giving both
// -journal and -journal-dir migrates the flat log into the directory
// once, verbatim, then serves from the store (the flat file is left in
// place). /readyz on a store-backed daemon reports the
// segment/checkpoint inventory. With -follow, -journal-dir gives the
// replica a local store so a cold restart resumes from its own disk
// instead of re-downloading a leader snapshot.
// -group-commit coalesces concurrent journal appends into one write and
// one fsync without weakening the per-acknowledgment durability
// guarantee; -group-commit-window bounds how long a group leader waits
// for followers (see journal.WithGroupCommit).
// With -auth, buyer registration returns an HMAC credential and every bid
// must be signed with it (false-name bidding deterrence; see
// internal/auth).
//
// -wire-addr starts a second listener speaking the binary wire protocol
// (internal/wire): persistent connections, pipelined length-prefixed
// frames, the same market semantics and error codes as the JSON API at a
// fraction of the per-bid cost. Clients connect with
// shield.Dial("wire://host:port") or marketctl -server wire://host:port.
// The wire protocol carries no bid signatures, so -wire-addr refuses to
// start under -auth.
//
// A journaled daemon with -wire-addr is also a replication leader: read
// replicas started with
//
//	marketd -follow wire://leader:9090 -addr :8081
//
// catch up from a state snapshot, then apply the leader's committed
// command stream live. A replica serves every read endpoint from its
// local state, answers all writes with 403 read_only_replica, reports
// its staleness on /readyz (applied_seq, leader_seq, lag_seconds) and
// as shield_replica_* gauges, and reconnects with backoff when the
// leader goes away. -max-lag bounds how stale a replica may grow before
// /readyz turns 503 and a load balancer should rotate it out.
//
// The daemon is fully instrumented (see internal/obs): every request
// gets an ID and a structured log line, bids leave sampled lifecycle
// traces (-trace-sample records 1 in N; 0 disables), and /metrics
// serves the shared registry plus process self-metrics (goroutines,
// heap, GC pauses, open connections). -slow-op logs a structured
// warning with the full per-stage breakdown (wire.read, decode,
// group_commit.fsync, apply, ...) for every sampled request slower
// than the threshold. With -auth the operator endpoints
// (/metrics, /debug/traces, dataset stats) require the bearer token
// from -operator-token; if -auth is set without a token one is
// generated and logged at startup so the operator surface never silently
// opens. -debug-addr starts a second, operator-only listener with
// net/http/pprof plus the same metrics and trace endpoints, ungated —
// bind it to localhost.
//
// See internal/httpapi for the endpoint list.
package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/auth"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/httpapi"
	"github.com/datamarket/shield/internal/journal"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/obs"
	"github.com/datamarket/shield/internal/replica"
	"github.com/datamarket/shield/internal/wire"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		epoch       = flag.Int("epoch", 8, "Epoch-Shield size E (bids per price update)")
		candidates  = flag.Int("candidates", 40, "number of posting-price candidates")
		minPrice    = flag.Float64("min", 1, "lowest candidate price (also the bid floor)")
		maxPrice    = flag.Float64("max", 200, "highest candidate price")
		bpp         = flag.Int("bpp", 1, "expected bids per market period (Time-Shield conversion)")
		seed        = flag.Uint64("seed", 2022, "pricing randomness seed")
		shards      = flag.Int("shards", market.DefaultShards, "lock shards for concurrent bidding (pricing is shard-count independent)")
		journalPath = flag.String("journal", "", "flat event-journal file (created, or replayed if present); with -journal-dir it is instead the one-time migration source")
		journalDir  = flag.String("journal-dir", "", "segmented journal directory: rotated segment files plus snapshot checkpoints, recovery replays only the tail past the newest checkpoint")
		ckptEvery   = flag.Int64("checkpoint-every", 0, "with -journal-dir: write a snapshot checkpoint every N committed records (0 = default 10000, negative disables)")
		retainSegs  = flag.Int("retain-segments", 0, "with -journal-dir: checkpoint-covered sealed segments to keep beyond what recovery needs (negative keeps all)")
		segBytes    = flag.Int64("segment-bytes", 0, "with -journal-dir: rotate the active segment at this size (0 = default 8 MiB)")
		fsync       = flag.Bool("fsync", false, "fsync the journal after every record (durable across power loss, slower appends)")
		compact     = flag.Bool("compact", false, "compact the journal (snapshot head) before serving")
		useAuth     = flag.Bool("auth", false, "require HMAC-signed bids")
		opToken     = flag.String("operator-token", "", "bearer token for operator endpoints (auto-generated with -auth when empty)")
		traceSample = flag.Int("trace-sample", 1, "record 1 in N bid-lifecycle traces (0 disables tracing)")
		slowOp      = flag.Duration("slow-op", 0, "log a structured stage breakdown for sampled requests slower than this (0 disables)")
		debugAddr   = flag.String("debug-addr", "", "operator-only debug listener with pprof, metrics and traces (off when empty; bind to localhost)")
		wireAddr    = flag.String("wire-addr", "", "binary wire-protocol listener (off when empty; incompatible with -auth)")
		groupCommit = flag.Bool("group-commit", false, "coalesce concurrent journal appends into one write (and one fsync with -fsync)")
		gcWindow    = flag.Duration("group-commit-window", 0, "how long a group leader waits for followers with -group-commit (0 batches only what is already queued)")
		follow      = flag.String("follow", "", "run as a read replica of the leader at wire://host:port (read-only HTTP; incompatible with -journal, -wire-addr and -auth)")
		maxLag      = flag.Duration("max-lag", replica.DefaultMaxLag, "with -follow: /readyz turns 503 when the replica has not proven currency for this long")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	slog.SetDefault(logger)

	if *wireAddr != "" && *useAuth {
		// The wire protocol carries no bid signatures; serving it beside
		// an auth-gated HTTP API would silently bypass -auth.
		logger.Error("marketd: -wire-addr is incompatible with -auth (the wire protocol has no bid signing)")
		os.Exit(1)
	}
	if *follow != "" && (*journalPath != "" || *wireAddr != "" || *useAuth) {
		// A replica owns no flat journal (its state is the leader's),
		// serves no wire protocol, and cannot enroll buyers (writes are
		// rejected). -journal-dir is the exception: a follower uses it as
		// its local store, for cold restarts without a leader snapshot.
		logger.Error("marketd: -follow is incompatible with -journal, -wire-addr and -auth")
		os.Exit(1)
	}
	if *compact && *journalDir != "" {
		// Store compaction is continuous (checkpoints retire covered
		// segments); a one-shot -compact only makes sense on a flat file.
		logger.Error("marketd: -compact applies to -journal only; -journal-dir compacts continuously")
		os.Exit(1)
	}

	if *traceSample < 0 {
		logger.Error("marketd: bad -trace-sample (want a non-negative integer)", "value", *traceSample)
		os.Exit(1)
	}
	// One Telemetry for the whole process: the API server, the market,
	// the journal and the debug listener all share its registry and
	// trace ring. The tracer inherits the pricing seed so sampled trace
	// sequences are reproducible run to run.
	tel := &obs.Telemetry{
		Registry: obs.NewRegistry(),
		Tracer:   obs.NewTracer(256, *traceSample, *seed),
	}
	obs.RegisterRuntimeMetrics(tel.Registry)
	if *slowOp > 0 {
		// Every sampled request slower than -slow-op logs its full stage
		// breakdown (wire.read=... group_commit.fsync=... apply=...), so
		// a tail-latency spike names the stage that caused it without a
		// second scrape. Coverage follows the sampling rate.
		tel.Tracer.OnSlow(*slowOp, func(ts obs.TraceSnapshot) {
			logger.Warn("marketd: slow op",
				"id", ts.ID,
				"op", ts.Name,
				"elapsed", time.Duration(ts.DurationUS)*time.Microsecond,
				"stages", ts.StageSummary(),
			)
		})
	}

	cfg := market.Config{
		Engine: core.Config{
			Candidates:    auction.LinearGrid(*minPrice, *maxPrice, *candidates),
			EpochSize:     *epoch,
			BidsPerPeriod: *bpp,
			MinBid:        *minPrice,
		},
		Seed:   *seed,
		Shards: *shards,
	}

	storeCfg := journal.StoreConfig{
		SegmentBytes:    *segBytes,
		CheckpointEvery: *ckptEvery,
		RetainSegments:  *retainSegs,
	}
	var srvHandler *httpapi.Server
	var backend wire.Backend
	var jm *journal.Market
	var follower *replica.Follower
	closeJournal := func() error { return nil }
	switch {
	case *follow != "":
		target, ok := strings.CutPrefix(*follow, "wire://")
		if !ok || target == "" {
			logger.Error("marketd: -follow must be wire://host:port", "value", *follow)
			os.Exit(1)
		}
		f, err := replica.Start(replica.Config{
			Dial:      func() (net.Conn, error) { return net.Dial("tcp", target) },
			Name:      "marketd",
			MaxLag:    *maxLag,
			Telemetry: tel,
			Dir:       *journalDir,
			Store:     storeCfg,
		})
		if err != nil {
			logger.Error("marketd: starting follower", "leader", *follow, "err", err)
			os.Exit(1)
		}
		follower = f
		srvHandler = httpapi.NewReplica(f)
		if *journalDir != "" {
			logger.Info("marketd: replica persists locally", "dir", *journalDir)
		}
		logger.Info("marketd: read replica following leader", "leader", *follow, "max_lag", *maxLag)
	case *journalPath == "" && *journalDir == "":
		m, err := market.New(cfg)
		if err != nil {
			logger.Error("marketd: building market", "err", err)
			os.Exit(1)
		}
		srvHandler = httpapi.NewServer(m)
		backend = m
	default:
		if *compact {
			if err := journal.CompactFile(*journalPath); err != nil {
				logger.Error("marketd: compacting journal", "path", *journalPath, "err", err)
				os.Exit(1)
			}
			logger.Info("marketd: compacted journal", "path", *journalPath)
		}
		opts := []journal.Option{journal.WithTelemetry(tel)}
		if *fsync {
			opts = append(opts, journal.WithFsync())
		}
		if *groupCommit {
			opts = append(opts, journal.WithGroupCommit(*gcWindow))
		}
		var (
			opened   *journal.Market
			replayed int
			err      error
		)
		if *journalDir != "" {
			// Segmented store; a -journal path alongside names a flat log
			// to absorb as segment 0 if the directory is still empty.
			storeCfg.MigrateFlat = *journalPath
			opened, replayed, err = journal.OpenStore(cfg, *journalDir, storeCfg, opts...)
		} else {
			opened, replayed, err = journal.OpenFile(cfg, *journalPath, opts...)
		}
		if err != nil {
			logger.Error("marketd: opening journal", "path", *journalPath, "dir", *journalDir, "err", err)
			os.Exit(1)
		}
		jm = opened
		closeJournal = jm.Close
		if replayed > 0 {
			logger.Info("marketd: replayed journal", "events", replayed, "path", *journalPath, "dir", *journalDir)
		}
		if st := jm.Store(); st != nil {
			inv := st.Inventory()
			logger.Info("marketd: segmented journal open", "dir", *journalDir,
				"segments", len(inv.Segments), "checkpoints", len(inv.Checkpoints),
				"last_seq", inv.LastSeq, "last_checkpoint", inv.LastCheckpoint)
		}
		srvHandler = httpapi.NewJournaled(jm)
		backend = jm
	}
	srvHandler = srvHandler.WithTelemetry(tel).WithLogger(logger)

	if *useAuth {
		srvHandler = srvHandler.WithAuth(auth.NewVerifier(func() ([]byte, error) {
			key := make([]byte, 32)
			_, err := rand.Read(key)
			return key, err
		}))
		logger.Info("marketd: HMAC bid signing required")
		if *opToken == "" {
			// Never leave the operator surface silently locked (or,
			// worse, open): mint a token and tell the operator.
			raw := make([]byte, 16)
			if _, err := rand.Read(raw); err != nil {
				logger.Error("marketd: generating operator token", "err", err)
				os.Exit(1)
			}
			*opToken = hex.EncodeToString(raw)
			logger.Info("marketd: generated operator token", "token", *opToken)
		}
	}
	if *opToken != "" {
		srvHandler = srvHandler.WithOperatorToken(*opToken)
	}

	if *debugAddr != "" {
		go serveDebug(*debugAddr, tel, logger)
	}

	// The wire listener shares the HTTP handler's backend, so state,
	// journaling and telemetry are identical over either transport.
	var wireListener net.Listener
	if *wireAddr != "" {
		l, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			logger.Error("marketd: wire listener", "addr", *wireAddr, "err", err)
			os.Exit(1)
		}
		wireListener = l
		ws := wire.NewServer(backend).WithTelemetry(tel)
		if jm != nil {
			// A journaled leader with a wire listener is a replication
			// source: followers subscribe to the committed command stream
			// over the same port (kind=replicate frames). The feed must
			// attach before any traffic so it never misses a commit.
			feed, err := replica.NewFeed(jm, 0)
			if err != nil {
				logger.Error("marketd: building replication feed", "err", err)
				os.Exit(1)
			}
			ws = ws.WithReplication(feed)
			logger.Info("marketd: replication enabled", "addr", *wireAddr)
		}
		go func() {
			logger.Info("marketd: wire protocol listening", "addr", *wireAddr)
			if err := ws.Serve(l); err != nil && !errors.Is(err, net.ErrClosed) {
				logger.Error("marketd: wire serve", "err", err)
			}
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           srvHandler.Routes(),
		ReadHeaderTimeout: 5 * time.Second,
		ConnState: httpapi.ConnCountHook(tel.Registry.Gauge("shield_http_connections",
			"Open HTTP connections.")),
	}
	// Graceful shutdown: stop accepting requests, drain in-flight ones,
	// then close the journal — Close syncs the log to disk, so a clean
	// SIGTERM never loses events even without -fsync.
	done := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		logger.Info("marketd: shutting down")
		if wireListener != nil {
			_ = wireListener.Close()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("marketd: shutdown", "err", err)
		}
		close(done)
	}()

	logger.Info("marketd: listening", "addr", *addr,
		"epoch", *epoch, "candidates", *candidates, "min", *minPrice, "max", *maxPrice)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		logger.Error("marketd: serve", "err", err)
		os.Exit(1)
	}
	<-done
	if follower != nil {
		follower.Close()
	}
	if jm != nil {
		if err := closeJournal(); err != nil {
			logger.Error("marketd: closing journal", "path", *journalPath, "dir", *journalDir, "err", err)
			os.Exit(1)
		}
		logger.Info("marketd: journal closed cleanly", "path", *journalPath, "dir", *journalDir)
	}
}

// serveDebug runs the operator-only debug listener: net/http/pprof on
// an explicit mux (never the default mux), plus the process's metrics
// and trace ring. It is ungated — reachable only on debugAddr, which
// the operator should bind to localhost or a management network.
func serveDebug(addr string, tel *obs.Telemetry, logger *slog.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = tel.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("GET /debug/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"dropped": tel.Tracer.Dropped(),
			"traces":  tel.Tracer.Recent(64),
		})
	})
	logger.Info("marketd: debug listener", "addr", addr)
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		logger.Error("marketd: debug listener", "err", err)
	}
}
