// Command shieldstorm runs the deterministic model-based torture
// harness (internal/torture) from the command line: a seeded workload
// replays against a sequential reference model and real journaled
// markets at several shard counts, checking decision equivalence,
// canonical snapshot equality, journal replayability and ledger
// invariants at every step. Failures print a one-line reproduction
// command and exit non-zero.
//
// Usage:
//
//	shieldstorm -seed 1 -ops 100000
//	shieldstorm -seed 1 -seeds 16 -ops 250000     # nightly soak
//	shieldstorm -seed 7 -ops 100000 -shards 1,2,8 # custom shard matrix
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/datamarket/shield/internal/torture"
)

func main() {
	var (
		seed       = flag.Uint64("seed", 1, "first workload seed")
		seeds      = flag.Int("seeds", 1, "number of consecutive seeds to run")
		ops        = flag.Int("ops", 100_000, "operations per seed")
		shards     = flag.String("shards", "", "comma-separated shard counts (default 1,4,16)")
		checkEvery = flag.Int("check-every", 0, "ops between full-state checkpoints (default ops/16)")
		verbose    = flag.Bool("v", false, "print per-checkpoint progress")
	)
	flag.Parse()

	var shardCounts []int
	if *shards != "" {
		for _, part := range strings.Split(*shards, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "shieldstorm: bad -shards entry %q\n", part)
				os.Exit(2)
			}
			shardCounts = append(shardCounts, n)
		}
	}

	for s := *seed; s < *seed+uint64(*seeds); s++ {
		cfg := torture.Config{
			Seed:       s,
			Ops:        *ops,
			Shards:     shardCounts,
			CheckEvery: *checkEvery,
		}
		if *verbose {
			cfg.Logf = func(format string, args ...any) {
				fmt.Printf("seed %d: "+format+"\n", append([]any{s}, args...)...)
			}
		}
		start := time.Now()
		rep, err := torture.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("seed %d: PASS %d ops in %v — %d allocations, revenue %s, %d rejections, %d checkpoints\n",
			s, rep.Ops, time.Since(start).Round(time.Millisecond),
			rep.Allocations, rep.Revenue, rep.Rejections, rep.Checkpoints)
		if *verbose {
			kinds := make([]string, 0, len(rep.OpCounts))
			for k := range rep.OpCounts {
				kinds = append(kinds, k)
			}
			sort.Strings(kinds)
			var parts []string
			for _, k := range kinds {
				parts = append(parts, fmt.Sprintf("%s=%d", k, rep.OpCounts[k]))
			}
			fmt.Printf("seed %d: mix %s\n", s, strings.Join(parts, " "))
		}
	}
}
