// Command shieldstorm runs the deterministic model-based torture
// harness (internal/torture) from the command line: a seeded workload
// replays against a sequential reference model and real journaled
// markets at several shard counts, checking decision equivalence,
// canonical snapshot equality, journal replayability and ledger
// invariants at every step. Failures print a one-line reproduction
// command and exit non-zero.
//
// Usage:
//
// With -store the fleet gains a segmented-store twin: a replica whose
// journal is a directory of rotated segment files with snapshot
// checkpoints and background compaction. The twin joins every
// differential check, runs seeded crash-cut recovery drills mid-run,
// and -disk-ceiling-mb turns the run into a bounded-footprint gate:
// if compaction ever lets the store directory grow past the ceiling,
// the run fails with a repro line.
//
//	shieldstorm -seed 1 -ops 100000
//	shieldstorm -seed 1 -seeds 16 -ops 250000     # nightly soak
//	shieldstorm -seed 7 -ops 100000 -shards 1,2,8 # custom shard matrix
//	shieldstorm -seed 1 -ops 10000000 -store -checkpoint-every 500000 -disk-ceiling-mb 1024
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/datamarket/shield/internal/journal"
	"github.com/datamarket/shield/internal/torture"
)

func main() {
	var (
		seed       = flag.Uint64("seed", 1, "first workload seed")
		seeds      = flag.Int("seeds", 1, "number of consecutive seeds to run")
		ops        = flag.Int("ops", 100_000, "operations per seed")
		shards     = flag.String("shards", "", "comma-separated shard counts (default 1,4,16)")
		checkEvery = flag.Int("check-every", 0, "ops between full-state checkpoints (default ops/16)")
		verbose    = flag.Bool("v", false, "print per-checkpoint progress")

		store      = flag.Bool("store", false, "add a segmented-store twin to the fleet")
		storeDir   = flag.String("store-dir", "", "store twin directory (default a temp dir, removed after the run)")
		segRecords = flag.Int64("segment-records", 0, "store twin: records per segment before rotation (default 65536)")
		ckptEvery  = flag.Int64("checkpoint-every", 0, "store twin: commands between snapshot checkpoints (default 10000; negative disables)")
		retainSegs = flag.Int("retain-segments", 0, "store twin: covered sealed segments to keep (default 0; negative keeps all)")
		crashCuts  = flag.Int("crash-cuts", 0, "store twin: seeded mid-run crash-cut recovery drills (default 2; negative disables)")
		ceilingMB  = flag.Int64("disk-ceiling-mb", 0, "store twin: fail if the store directory exceeds this many MiB (0 = unbounded)")
	)
	flag.Parse()

	var shardCounts []int
	if *shards != "" {
		for _, part := range strings.Split(*shards, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "shieldstorm: bad -shards entry %q\n", part)
				os.Exit(2)
			}
			shardCounts = append(shardCounts, n)
		}
	}

	for s := *seed; s < *seed+uint64(*seeds); s++ {
		cfg := torture.Config{
			Seed:       s,
			Ops:        *ops,
			Shards:     shardCounts,
			CheckEvery: *checkEvery,
		}
		if *store || *storeDir != "" {
			dir := *storeDir
			if dir == "" {
				tmp, err := os.MkdirTemp("", "shieldstorm-store-*")
				if err != nil {
					fmt.Fprintln(os.Stderr, "shieldstorm:", err)
					os.Exit(2)
				}
				defer os.RemoveAll(tmp)
				dir = tmp
			}
			// One subdirectory per seed: a store directory is a
			// journal, and each seed is a fresh history.
			cfg.StoreDir = filepath.Join(dir, fmt.Sprintf("seed-%d", s))
			if err := os.MkdirAll(cfg.StoreDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "shieldstorm:", err)
				os.Exit(2)
			}
			cfg.Store = journal.StoreConfig{
				SegmentRecords:  *segRecords,
				CheckpointEvery: *ckptEvery,
				RetainSegments:  *retainSegs,
			}
			cfg.StoreCrashCuts = *crashCuts
			cfg.StoreDiskCeilingBytes = *ceilingMB << 20
		}
		if *verbose {
			cfg.Logf = func(format string, args ...any) {
				fmt.Printf("seed %d: "+format+"\n", append([]any{s}, args...)...)
			}
		}
		start := time.Now()
		rep, err := torture.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("seed %d: PASS %d ops in %v — %d allocations, revenue %s, %d rejections, %d checkpoints\n",
			s, rep.Ops, time.Since(start).Round(time.Millisecond),
			rep.Allocations, rep.Revenue, rep.Rejections, rep.Checkpoints)
		if cfg.StoreDir != "" {
			fmt.Printf("seed %d: store twin %d segments, %d snapshot checkpoints, %d crash cuts, disk peak %.1f MiB\n",
				s, rep.StoreSegments, rep.StoreCheckpoints, rep.StoreCrashCuts,
				float64(rep.StoreDiskPeak)/(1<<20))
		}
		if *verbose {
			kinds := make([]string, 0, len(rep.OpCounts))
			for k := range rep.OpCounts {
				kinds = append(kinds, k)
			}
			sort.Strings(kinds)
			var parts []string
			for _, k := range kinds {
				parts = append(parts, fmt.Sprintf("%s=%d", k, rep.OpCounts[k]))
			}
			fmt.Printf("seed %d: mix %s\n", s, strings.Join(parts, " "))
		}
	}
}
