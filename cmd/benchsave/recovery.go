// The segmented-store recovery measurement (BENCH_10.json): build two
// checkpointed stores an order of magnitude apart in history length,
// time cold recovery (newest checkpoint + tail-segment replay) on
// each, and record the ratio. With the same checkpoint cadence both
// stores replay the same bounded tail, so recovery cost must track the
// tail, not the history — the larger store recovering within 2x of the
// smaller one is the artifact's headline claim.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/journal"
	"github.com/datamarket/shield/internal/market"
)

// recoveryRatioBound is the O(tail) acceptance bound: a store with 10x
// the history must cold-recover within this factor of the smaller one.
const recoveryRatioBound = 2.0

// recoveryArtifact is the BENCH_10.json schema.
type recoveryArtifact struct {
	GeneratedAt     string          `json:"generated_at"`
	GoVersion       string          `json:"go_version"`
	CheckpointEvery int64           `json:"checkpoint_every"`
	Small           recoveryMeasure `json:"small"`
	Large           recoveryMeasure `json:"large"`
	// RecoveryRatio is large recovery time over small recovery time;
	// O(history) recovery would put it near the command-count ratio,
	// O(tail) recovery near 1.
	RecoveryRatio float64 `json:"recovery_ratio"`
	RatioBound    float64 `json:"ratio_bound"`
	WithinBound   bool    `json:"within_bound"`
}

// recoveryMeasure is one store's build + cold-recovery measurement.
type recoveryMeasure struct {
	Commands      int64   `json:"commands"`
	BuildSec      float64 `json:"build_sec"`
	RecoverSec    float64 `json:"recover_sec"`
	TailReplayed  int64   `json:"tail_records_replayed"`
	Segments      int     `json:"segments"`
	Checkpoints   int     `json:"checkpoints"`
	DiskBytes     int64   `json:"disk_bytes"`
	RecoveredSeq  int64   `json:"recovered_seq"`
	RecoverRounds int     `json:"recover_rounds"`
}

// writeRecoveryArtifact builds the two stores, measures cold recovery
// on each (best of rounds, so a cold page cache or GC pause cannot
// fake a regression), and writes the artifact. Over-bound ratios warn
// rather than fail: single-run wall-clock ratios on shared hardware
// are evidence, not a verdict.
func writeRecoveryArtifact(path, generatedAt, goVersion string, small, large, ckptEvery int64) error {
	scratch, err := os.MkdirTemp("", "benchsave-recovery-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)

	art := recoveryArtifact{
		GeneratedAt:     generatedAt,
		GoVersion:       goVersion,
		CheckpointEvery: ckptEvery,
		RatioBound:      recoveryRatioBound,
	}
	if art.Small, err = measureRecovery(filepath.Join(scratch, "small"), small, ckptEvery); err != nil {
		return fmt.Errorf("recovery artifact (small store): %w", err)
	}
	if art.Large, err = measureRecovery(filepath.Join(scratch, "large"), large, ckptEvery); err != nil {
		return fmt.Errorf("recovery artifact (large store): %w", err)
	}
	if art.Small.RecoverSec > 0 {
		art.RecoveryRatio = art.Large.RecoverSec / art.Small.RecoverSec
	}
	art.WithinBound = art.RecoveryRatio <= recoveryRatioBound

	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchsave: wrote %s (recovery %d cmds %.1fms vs %d cmds %.1fms, ratio %.2fx, bound %.0fx)\n",
		path, art.Small.Commands, art.Small.RecoverSec*1e3,
		art.Large.Commands, art.Large.RecoverSec*1e3,
		art.RecoveryRatio, recoveryRatioBound)
	if !art.WithinBound {
		fmt.Printf("benchsave: WARNING: recovery ratio %.2fx exceeds the %.0fx O(tail) bound\n",
			art.RecoveryRatio, recoveryRatioBound)
	}
	return nil
}

// measureRecovery builds a store of n commands (upload/withdraw cycles
// of one dataset: journaled, deterministic, and state-neutral — unlike
// ticks, whose per-period pricing state would make checkpoints grow
// with history and contaminate the O(tail) measurement), then times
// RecoverDir over several rounds and keeps the fastest.
//
// The background checkpoint cadence is asynchronous, so where the last
// checkpoint lands relative to the final record varies run to run —
// enough to swing a small store's tail between 0 and a full interval.
// To compare like with like, the build pins both stores to the same
// tail: a synchronous Store.Checkpoint at n - ckptEvery/2 commands,
// then exactly ckptEvery/2 more (below the cadence trigger, so no
// background checkpoint interferes).
func measureRecovery(dir string, n, ckptEvery int64) (recoveryMeasure, error) {
	m := recoveryMeasure{Commands: n, RecoverRounds: 3}
	cfg := market.Config{
		Engine: core.Config{
			Candidates: auction.LinearGrid(10, 100, 10),
			EpochSize:  8,
			MinBid:     1,
		},
		Seed: 10,
	}
	start := time.Now()
	// Checkpointing runs in manual mode: the one synchronous
	// Store.Checkpoint below is the only checkpoint either store gets,
	// so the measured tail is exactly the records appended after it —
	// the background cadence (and the final checkpoint a clean Close
	// takes when the cadence is enabled) would erase the pinned tails.
	// Segments still rotate on the cadence interval so recovery's
	// scan-to-position inside the segment holding the checkpoint seq is
	// bounded by the same constant in both stores; with the default
	// 65536-record segments the small store would keep its whole
	// history in one segment and pay a scan the compacted large store
	// does not.
	jm, _, err := journal.OpenStore(cfg, dir, journal.StoreConfig{
		CheckpointEvery: -1,
		SegmentRecords:  ckptEvery,
	})
	if err != nil {
		return m, err
	}
	const seller = market.SellerID("bench-seller")
	const dataset = market.DatasetID("bench-ds")
	if err := jm.RegisterSeller(seller); err != nil {
		_ = jm.Close()
		return m, err
	}
	tail := ckptEvery / 2
	if tail >= n {
		tail = n / 2
	}
	cycle := func(i int64) error {
		if i%2 == 0 {
			return jm.UploadDataset(seller, dataset)
		}
		return jm.WithdrawDataset(seller, dataset)
	}
	for i := int64(0); i < n-tail; i++ {
		if err := cycle(i); err != nil {
			_ = jm.Close()
			return m, err
		}
	}
	if err := jm.Store().Checkpoint(); err != nil {
		_ = jm.Close()
		return m, err
	}
	for i := n - tail; i < n; i++ {
		if err := cycle(i); err != nil {
			_ = jm.Close()
			return m, err
		}
	}
	lastSeq := jm.LastSeq()
	if err := jm.Close(); err != nil {
		return m, err
	}
	m.BuildSec = time.Since(start).Seconds()

	inv, err := journal.InspectDir(dir)
	if err != nil {
		return m, err
	}
	m.Segments = len(inv.Segments)
	m.Checkpoints = len(inv.Checkpoints)
	m.DiskBytes = inv.TotalBytes
	m.TailReplayed = lastSeq - inv.LastCheckpoint

	best := time.Duration(0)
	for r := 0; r < m.RecoverRounds; r++ {
		t0 := time.Now()
		_, seq, _, err := journal.RecoverDir(dir)
		d := time.Since(t0)
		if err != nil {
			return m, err
		}
		if seq != lastSeq {
			return m, fmt.Errorf("recovery reached seq %d, store closed at %d", seq, lastSeq)
		}
		m.RecoveredSeq = seq
		if best == 0 || d < best {
			best = d
		}
	}
	m.RecoverSec = best.Seconds()
	return m, nil
}
