// Command benchsave runs the hot-path benchmark suite — journal
// durability modes and transport comparisons — and records the results
// as a JSON artifact (BENCH_6.json by default) so performance claims in
// the docs stay tied to a reproducible measurement.
//
// Usage:
//
//	benchsave [-out BENCH_6.json] [-benchtime 1s] [-count 1]
//	          [-rig-out BENCH_7.json] [-rig-clients 1024]
//	          [-rig-rate 4000] [-rig-ops 16000]
//	          [-trace-out BENCH_8.json]
//	          [-recovery-out BENCH_10.json] [-recovery-small 100000]
//	          [-recovery-large 1000000] [-recovery-checkpoint-every 10000]
//
// The artifact records ns/op, B/op and allocs/op per benchmark plus the
// two derived headline ratios: group-commit speedup over per-record
// fsync, and wire-protocol speedup over HTTP per bid.
//
// After the microbenchmarks, benchsave runs the cluster-in-process load
// rig (cmd/shieldload) and records its whole-system measurement —
// open-loop tail latencies per op class, achieved throughput, server
// histogram quantiles, and the invariant summary — as a second artifact
// (-rig-out, BENCH_7.json by default; empty skips the rig).
//
// -trace-out records the tracing overhead on the wire bid path as a
// third artifact (BENCH_8.json by default; empty skips it): the
// per-request delta between BenchmarkWireBidPathInstrumented (metrics
// hot, tracing off — the PR-7 shape of the server) and
// BenchmarkWireBidPathTraced (every request carries a sampled trace
// field: span breakdown, exemplars, ring commit). These drive the
// server-side handle path directly — no loopback socket — because the
// socket term is identical in both variants and subtracting two
// socket-bound measurements drowns a sub-microsecond delta in
// scheduler noise. The budget is 2x the PR-3 instrumentation figure
// (~260 ns/bid → 520 ns). An over-budget measurement still writes the
// artifact but prints a warning — single-run nanosecond deltas on
// shared CI hardware are evidence, not a verdict.
//
// -recovery-out records the segmented store's bounded-tail recovery
// claim as a fourth artifact (BENCH_10.json by default; empty skips
// it): two checkpointed stores an order of magnitude apart in history
// length are built and cold-recovered, and with the same checkpoint
// cadence the larger store must recover within 2x of the smaller one —
// O(tail), not O(history).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"
)

// result is one benchmark's parsed measurement.
type result struct {
	Name          string  `json:"name"`
	Iterations    int64   `json:"iterations"`
	NsPerOp       float64 `json:"ns_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp   int64   `json:"allocs_per_op,omitempty"`
	RequestsPerOp float64 `json:"requests_per_op,omitempty"`
}

// artifact is the BENCH_6.json schema.
type artifact struct {
	GeneratedAt string            `json:"generated_at"`
	GoVersion   string            `json:"go_version"`
	Benchtime   string            `json:"benchtime"`
	Results     []result          `json:"results"`
	Speedups    map[string]string `json:"speedups"`
}

// suites maps a package path to the benchmarks captured from it.
var suites = []struct {
	pkg     string
	pattern string
}{
	{"./internal/journal/", "^BenchmarkBidAppendFsync"},
	{"./internal/wire/", "^BenchmarkTransport|^BenchmarkWireBidPath"},
}

func main() {
	var (
		out       = flag.String("out", "BENCH_6.json", "artifact path")
		benchtime = flag.String("benchtime", "1s", "go test -benchtime per benchmark")
		count     = flag.Int("count", 1, "go test -count (last measurement wins)")

		rigOut     = flag.String("rig-out", "BENCH_7.json", "load-rig artifact path (empty = skip the rig)")
		rigClients = flag.Int("rig-clients", 1024, "load-rig concurrent client connections")
		rigRate    = flag.Float64("rig-rate", 4000, "load-rig open-loop rate, ops/second")
		rigOps     = flag.Int("rig-ops", 16000, "load-rig total operations")

		traceOut = flag.String("trace-out", "BENCH_8.json", "tracing-overhead artifact path (empty = skip)")

		recoveryOut   = flag.String("recovery-out", "BENCH_10.json", "segmented-store recovery artifact path (empty = skip)")
		recoverySmall = flag.Int64("recovery-small", 100_000, "commands in the smaller recovery store")
		recoveryLarge = flag.Int64("recovery-large", 1_000_000, "commands in the larger recovery store")
		recoveryCkpt  = flag.Int64("recovery-checkpoint-every", 10_000, "checkpoint cadence for both recovery stores")
	)
	flag.Parse()

	art := artifact{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Benchtime:   *benchtime,
		Speedups:    map[string]string{},
	}
	if v, err := exec.Command("go", "version").Output(); err == nil {
		art.GoVersion = strings.TrimSpace(string(v))
	}

	byName := map[string]result{}
	for _, s := range suites {
		cmd := exec.Command("go", "test", "-run", "xxx",
			"-bench", s.pattern, "-benchmem",
			"-benchtime", *benchtime, "-count", strconv.Itoa(*count), s.pkg)
		cmd.Stderr = os.Stderr
		outBytes, err := cmd.Output()
		if err != nil {
			log.Fatalf("benchsave: %s: %v", s.pkg, err)
		}
		os.Stdout.Write(outBytes)
		for _, r := range parse(outBytes) {
			byName[r.Name] = r
			art.Results = append(art.Results, r)
		}
	}

	ratio := func(label, slow, fast string) {
		a, okA := byName[slow]
		b, okB := byName[fast]
		if okA && okB && b.NsPerOp > 0 {
			art.Speedups[label] = fmt.Sprintf("%.1fx", a.NsPerOp/b.NsPerOp)
		}
	}
	ratio("group_commit_vs_per_record_fsync",
		"BenchmarkBidAppendFsyncPerRecord", "BenchmarkBidAppendFsyncGroupCommit")
	ratio("group_commit_window_vs_per_record_fsync",
		"BenchmarkBidAppendFsyncPerRecord", "BenchmarkBidAppendFsyncGroupCommitWindow")
	ratio("wire_vs_http_single_bid",
		"BenchmarkTransportHTTPBid", "BenchmarkTransportWireBid")
	ratio("wire_vs_http_batch",
		"BenchmarkTransportHTTPBatch", "BenchmarkTransportWireBatch")

	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		log.Fatalf("benchsave: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatalf("benchsave: %v", err)
	}
	fmt.Printf("benchsave: wrote %s (%d results)\n", *out, len(art.Results))

	if *traceOut != "" {
		if err := writeTraceArtifact(*traceOut, art.GeneratedAt, art.GoVersion, *benchtime, byName); err != nil {
			log.Fatalf("benchsave: %v", err)
		}
	}

	if *recoveryOut != "" {
		if err := writeRecoveryArtifact(*recoveryOut, art.GeneratedAt, art.GoVersion,
			*recoverySmall, *recoveryLarge, *recoveryCkpt); err != nil {
			log.Fatalf("benchsave: %v", err)
		}
	}

	if *rigOut != "" {
		// The rig artifact's schema lives with cmd/shieldload; running
		// the binary (rather than importing internal/loadrig here)
		// keeps the measurement identical to what `make slo-smoke`
		// gates on.
		rig := exec.Command("go", "run", "./cmd/shieldload",
			"-clients", strconv.Itoa(*rigClients),
			"-rate", strconv.FormatFloat(*rigRate, 'g', -1, 64),
			"-ops", strconv.Itoa(*rigOps),
			"-json", *rigOut)
		rig.Stdout = os.Stdout
		rig.Stderr = os.Stderr
		if err := rig.Run(); err != nil {
			log.Fatalf("benchsave: load rig: %v", err)
		}
	}
}

// tracingBudgetNs is the ceiling on acceptable tracing overhead per
// wire bid: 2x the PR-3 metrics-instrumentation figure (~260 ns/bid,
// EXPERIMENTS.md X8). Full-pipeline tracing that costs much more than
// the instrument set it extends is mismeasuring the system.
const tracingBudgetNs = 520

// traceArtifact is the BENCH_8.json schema: the cost of full-pipeline
// tracing on the server-side wire bid path, as the per-request delta
// between the traced and tracing-off (PR-7 baseline) bid-path
// benchmarks. Each benchmark op is one bid plus one tick
// (requests_per_op), every request fully traced in the traced variant.
type traceArtifact struct {
	GeneratedAt         string  `json:"generated_at"`
	GoVersion           string  `json:"go_version"`
	Benchtime           string  `json:"benchtime"`
	InstrumentedNsPerOp float64 `json:"instrumented_ns_per_op"`
	TracedNsPerOp       float64 `json:"traced_ns_per_op"`
	RequestsPerOp       float64 `json:"requests_per_op"`
	OverheadNsPerBid    float64 `json:"tracing_overhead_ns_per_bid"`
	BudgetNsPerBid      float64 `json:"budget_ns_per_bid"`
	WithinBudget        bool    `json:"within_budget"`
}

// writeTraceArtifact derives the tracing-overhead artifact from the
// already-captured bid-path benchmarks.
func writeTraceArtifact(path, generatedAt, goVersion, benchtime string, byName map[string]result) error {
	base, okBase := byName["BenchmarkWireBidPathInstrumented"]
	traced, okTraced := byName["BenchmarkWireBidPathTraced"]
	if !okBase || !okTraced {
		return fmt.Errorf("tracing artifact needs BenchmarkWireBidPathInstrumented and BenchmarkWireBidPathTraced (have %v, %v)", okBase, okTraced)
	}
	requests := traced.RequestsPerOp
	if requests <= 0 {
		requests = 1
	}
	art := traceArtifact{
		GeneratedAt:         generatedAt,
		GoVersion:           goVersion,
		Benchtime:           benchtime,
		InstrumentedNsPerOp: base.NsPerOp,
		TracedNsPerOp:       traced.NsPerOp,
		RequestsPerOp:       requests,
		OverheadNsPerBid:    (traced.NsPerOp - base.NsPerOp) / requests,
		BudgetNsPerBid:      tracingBudgetNs,
	}
	art.WithinBudget = art.OverheadNsPerBid <= tracingBudgetNs
	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchsave: wrote %s (tracing overhead %.0f ns/bid, budget %d)\n",
		path, art.OverheadNsPerBid, tracingBudgetNs)
	if !art.WithinBudget {
		fmt.Printf("benchsave: WARNING: tracing overhead %.0f ns/bid exceeds the %d ns budget\n",
			art.OverheadNsPerBid, tracingBudgetNs)
	}
	return nil
}

// parse extracts benchmark lines from `go test -bench` output. A line
// looks like:
//
//	BenchmarkTransportWireBid-8   76797   15677 ns/op   858 B/op   21 allocs/op
func parse(out []byte) []result {
	var rs []result
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
		r := result{Name: name}
		var err error
		if r.Iterations, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue
		}
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				r.NsPerOp, _ = strconv.ParseFloat(val, 64)
			case "B/op":
				r.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				r.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "requests/op":
				r.RequestsPerOp, _ = strconv.ParseFloat(val, 64)
			}
		}
		rs = append(rs, r)
	}
	return rs
}
