// Command marketctl is the command-line client for marketd.
//
// Usage:
//
//	marketctl [-server http://localhost:8080] <command> [args]
//
// The -server flag accepts an HTTP base URL or a binary wire-protocol
// target ("wire://host:port" or bare "host:port", see marketd
// -wire-addr). Market commands work over either transport; metrics and
// health are HTTP-only.
//
// Commands:
//
//	register-seller <id>
//	register-buyer  <id>                   prints the signing credential when
//	                                       the server requires signed bids
//	upload   <seller> <dataset>
//	withdraw <seller> <dataset>
//	compose  <dataset> <part> [<part>...]
//	bid      <buyer> <dataset> <amount>    sign with -credential and -nonce
//	bid-batch <buyer>:<dataset>:<amount> [...]
//	                                       one request, one result per bid;
//	                                       with -credential each bid is signed
//	                                       using nonce, nonce+1, ...
//	tick
//	datasets
//	stats    <dataset>
//	balance  <seller>
//	wait     <buyer> <dataset>
//	transactions
//	metrics                                requires -token when the server
//	                                       runs with auth
//	health                                 liveness + readiness; exits
//	                                       nonzero when the server is
//	                                       unready (e.g. poisoned journal)
//	journal-info <journal-dir>             offline: segment/checkpoint
//	                                       inventory of a segmented
//	                                       journal directory (marketd
//	                                       -journal-dir), with the
//	                                       recovery replay summary
//
// Examples:
//
//	marketctl register-seller acme
//	marketctl upload acme sales-2025
//	marketctl register-buyer bob
//	marketctl bid bob sales-2025 120.5
//	marketctl bid-batch bob:sales-2025:120.5 alice:ads-2025:80
//	marketctl -credential deadbeef... -nonce 3 bid bob sales-2025 120.5
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	var (
		server     = flag.String("server", "http://localhost:8080", "marketd base URL")
		credential = flag.String("credential", "", "hex signing secret for signed bids")
		nonce      = flag.Uint64("nonce", 0, "bid nonce (must strictly increase per buyer)")
		token      = flag.String("token", "", "operator bearer token (metrics, stats and traces under auth)")
	)
	flag.Parse()
	c := &client{base: *server, credential: *credential, nonce: *nonce, token: *token}
	if err := run(c, flag.Args(), os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "marketctl:", err)
		os.Exit(1)
	}
}
