package main

import (
	"fmt"
	"strings"
	"testing"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/journal"
	"github.com/datamarket/shield/internal/market"
)

// TestJournalInfoCLI: journal-info inspects a store directory offline
// and prints the segment/checkpoint inventory with a recovery summary.
func TestJournalInfoCLI(t *testing.T) {
	cfg := market.Config{
		Engine: core.Config{
			Candidates: auction.LinearGrid(10, 100, 10),
			EpochSize:  4,
			MinBid:     1,
		},
		Seed: 8,
	}
	dir := t.TempDir()
	jm, _, err := journal.OpenStore(cfg, dir,
		journal.StoreConfig{SegmentRecords: 8, CheckpointEvery: 12, RetainSegments: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := jm.RegisterBuyer(market.BuyerID(fmt.Sprintf("b%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := jm.Close(); err != nil {
		t.Fatal(err)
	}

	out := runCmd(t, &client{}, "journal-info", dir)
	for _, want := range []string{"segments (", "checkpoints (", "00000000.seg", "recovery: restore checkpoint"} {
		if !strings.Contains(out, want) {
			t.Fatalf("journal-info output missing %q:\n%s", want, out)
		}
	}
	inv, err := journal.InspectDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, fmt.Sprintf("seqs %d..%d", inv.FirstSeq, inv.LastSeq)) {
		t.Fatalf("journal-info seq range missing:\n%s", out)
	}
	if inv.LastCheckpoint == 0 || !strings.Contains(out, fmt.Sprintf("newest checkpoint %d", inv.LastCheckpoint)) {
		t.Fatalf("journal-info checkpoint %d missing:\n%s", inv.LastCheckpoint, out)
	}

	// A missing directory is a plain error, not a panic.
	if err := run(&client{}, []string{"journal-info", dir + "-nope"}, &strings.Builder{}); err == nil {
		t.Fatal("journal-info on a missing directory succeeded")
	}
}
