package main

import (
	"fmt"
	"io"

	"github.com/datamarket/shield/internal/journal"
)

// journalInfo prints a segmented journal directory's inventory: one
// line per segment (base seq, record count, bytes, sealed/active,
// whether the newest checkpoint covers it) and one per checkpoint,
// plus the recovery summary an operator actually wants — where replay
// would start and how many records it would touch.
func journalInfo(dir string, out io.Writer) error {
	inv, err := journal.InspectDir(dir)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "journal %s\n", inv.Dir)
	fmt.Fprintf(out, "  seqs %d..%d, newest checkpoint %d, %d bytes on disk\n",
		inv.FirstSeq, inv.LastSeq, inv.LastCheckpoint, inv.TotalBytes)
	fmt.Fprintf(out, "  segments (%d):\n", len(inv.Segments))
	for _, s := range inv.Segments {
		state := "active"
		if s.Sealed {
			state = "sealed"
		}
		covered := ""
		if s.Covered {
			covered = ", covered"
		}
		fmt.Fprintf(out, "    %s  base %d, %d records, %d bytes (%s%s)\n",
			s.Name, s.Base, s.Records, s.Bytes, state, covered)
	}
	fmt.Fprintf(out, "  checkpoints (%d):\n", len(inv.Checkpoints))
	for _, c := range inv.Checkpoints {
		fmt.Fprintf(out, "    %s  seq %d, %d bytes\n", c.Name, c.Seq, c.Bytes)
	}
	tail := inv.LastSeq - inv.LastCheckpoint
	if tail < 0 {
		tail = 0
	}
	fmt.Fprintf(out, "  recovery: restore checkpoint %d, replay %d tail records\n",
		inv.LastCheckpoint, tail)
	return nil
}
