package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/auth"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/httpapi"
	"github.com/datamarket/shield/internal/market"
)

func testClient(t *testing.T, withAuth bool) *client {
	t.Helper()
	m := market.MustNew(market.Config{
		Engine: core.Config{
			Candidates: auction.LinearGrid(10, 100, 10),
			EpochSize:  4,
			MinBid:     1,
		},
		Seed: 8,
	})
	srv := httpapi.NewServer(m)
	if withAuth {
		srv = srv.WithAuth(auth.NewVerifier(nil))
	}
	ts := httptest.NewServer(srv.Routes())
	t.Cleanup(ts.Close)
	return &client{base: ts.URL}
}

func runCmd(t *testing.T, c *client, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(c, args, &sb); err != nil {
		t.Fatalf("%v: %v", args, err)
	}
	return sb.String()
}

func TestFullLifecycleViaCLI(t *testing.T) {
	c := testClient(t, false)
	if out := runCmd(t, c, "register-seller", "acme"); !strings.Contains(out, "registered") {
		t.Fatalf("register-seller: %q", out)
	}
	runCmd(t, c, "upload", "acme", "sales")
	runCmd(t, c, "upload", "acme", "ads")
	if out := runCmd(t, c, "compose", "combo", "sales", "ads"); !strings.Contains(out, "combo") {
		t.Fatalf("compose: %q", out)
	}
	runCmd(t, c, "register-buyer", "bob")
	if out := runCmd(t, c, "bid", "bob", "sales", "500"); !strings.Contains(out, "won") {
		t.Fatalf("bid: %q", out)
	}
	if out := runCmd(t, c, "bid", "bob", "combo", "2"); !strings.Contains(out, "lost") || !strings.Contains(out, "wait") {
		t.Fatalf("losing bid: %q", out)
	}
	if out := runCmd(t, c, "wait", "bob", "combo"); strings.TrimSpace(out) == "0" {
		t.Fatalf("wait: %q", out)
	}
	if out := runCmd(t, c, "tick"); !strings.Contains(out, "period 1") {
		t.Fatalf("tick: %q", out)
	}
	if out := runCmd(t, c, "datasets"); !strings.Contains(out, "sales") || !strings.Contains(out, "combo") {
		t.Fatalf("datasets: %q", out)
	}
	if out := runCmd(t, c, "stats", "sales"); !strings.Contains(out, "allocations") {
		t.Fatalf("stats: %q", out)
	}
	if out := runCmd(t, c, "balance", "acme"); strings.TrimSpace(out) == "0.000000" {
		t.Fatalf("balance: %q", out)
	}
	if out := runCmd(t, c, "transactions"); !strings.Contains(out, "bob") {
		t.Fatalf("transactions: %q", out)
	}
}

func TestSignedBidViaCLI(t *testing.T) {
	c := testClient(t, true)
	runCmd(t, c, "register-seller", "s")
	runCmd(t, c, "upload", "s", "d")
	out := runCmd(t, c, "register-buyer", "bob")
	if !strings.Contains(out, "credential") {
		t.Fatalf("no credential in %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	fields := strings.Fields(lines[len(lines)-1])
	secret := fields[len(fields)-1]

	// Unsigned bid fails against an auth server.
	var sb strings.Builder
	if err := run(c, []string{"bid", "bob", "d", "500"}, &sb); err == nil {
		t.Fatal("unsigned bid accepted")
	}

	// Signed bid succeeds.
	signed := &client{base: c.base, credential: secret, nonce: 1}
	if out := runCmd(t, signed, "bid", "bob", "d", "500"); !strings.Contains(out, "won") {
		t.Fatalf("signed bid: %q", out)
	}
	// Reusing the nonce fails.
	var sb2 strings.Builder
	if err := run(signed, []string{"bid", "bob", "d", "400"}, &sb2); err == nil || !strings.Contains(err.Error(), "auth") {
		t.Fatalf("nonce reuse: %v", err)
	}
}

func TestCLIUsageErrors(t *testing.T) {
	c := testClient(t, false)
	cases := [][]string{
		{},
		{"register-seller"},
		{"register-buyer"},
		{"upload", "only-one"},
		{"compose", "x"},
		{"bid", "b", "d"},
		{"bid", "b", "d", "not-a-number"},
		{"bid", "b", "d", "-5"},
		{"stats"},
		{"balance"},
		{"wait", "b"},
		{"warp-speed"},
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(c, args, &sb); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
}

func TestServerErrorsSurface(t *testing.T) {
	c := testClient(t, false)
	var sb strings.Builder
	err := run(c, []string{"balance", "ghost"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "unknown seller") {
		t.Fatalf("server error not surfaced: %v", err)
	}
	err = run(c, []string{"bid", "nobody", "nothing", "5"}, &sb)
	if err == nil {
		t.Fatal("bid by unknown buyer accepted")
	}
}

func TestWithdrawViaCLI(t *testing.T) {
	c := testClient(t, false)
	runCmd(t, c, "register-seller", "s")
	runCmd(t, c, "upload", "s", "d")
	if out := runCmd(t, c, "withdraw", "s", "d"); !strings.Contains(out, "withdrawn") {
		t.Fatalf("withdraw: %q", out)
	}
	var sb strings.Builder
	if err := run(c, []string{"withdraw", "s", "d"}, &sb); err == nil {
		t.Fatal("double withdraw accepted")
	}
	if err := run(c, []string{"withdraw", "s"}, &sb); err == nil {
		t.Fatal("usage error accepted")
	}
}

func TestMetricsViaCLI(t *testing.T) {
	c := testClient(t, false)
	out := runCmd(t, c, "metrics")
	if !strings.Contains(out, "shield_market_revenue_units") {
		t.Fatalf("metrics output: %q", out)
	}
	var sb strings.Builder
	if err := run(c, []string{"metrics", "extra"}, &sb); err == nil {
		t.Fatal("usage error accepted")
	}
}

func TestBidBatchViaCLI(t *testing.T) {
	c := testClient(t, false)
	runCmd(t, c, "register-seller", "s")
	runCmd(t, c, "upload", "s", "d1")
	runCmd(t, c, "upload", "s", "d2")
	runCmd(t, c, "register-buyer", "bob")
	runCmd(t, c, "register-buyer", "alice")

	out := runCmd(t, c, "bid-batch", "bob:d1:500", "alice:d2:2", "ghost:d1:10")
	if !strings.Contains(out, "won") {
		t.Fatalf("no winning row: %q", out)
	}
	if !strings.Contains(out, "lost") || !strings.Contains(out, "wait") {
		t.Fatalf("no losing row: %q", out)
	}
	if !strings.Contains(out, "unknown_buyer") {
		t.Fatalf("no error code row: %q", out)
	}

	var sb strings.Builder
	if err := run(c, []string{"bid-batch"}, &sb); err == nil {
		t.Fatal("empty batch accepted")
	}
	if err := run(c, []string{"bid-batch", "malformed"}, &sb); err == nil {
		t.Fatal("malformed spec accepted")
	}
	if err := run(c, []string{"bid-batch", "b:d:not-a-number"}, &sb); err == nil {
		t.Fatal("bad amount accepted")
	}
}

func TestSignedBidBatchViaCLI(t *testing.T) {
	c := testClient(t, true)
	runCmd(t, c, "register-seller", "s")
	runCmd(t, c, "upload", "s", "d1")
	runCmd(t, c, "upload", "s", "d2")
	out := runCmd(t, c, "register-buyer", "bob")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	fields := strings.Fields(lines[len(lines)-1])
	secret := fields[len(fields)-1]

	signed := &client{base: c.base, credential: secret, nonce: 1}
	res := runCmd(t, signed, "bid-batch", "bob:d1:500", "bob:d2:500")
	if strings.Count(res, "won") != 2 {
		t.Fatalf("signed batch: %q", res)
	}

	// Unsigned batch entries against an auth server fail in place.
	res = runCmd(t, c, "bid-batch", "bob:d1:500")
	if !strings.Contains(res, "unauthorized") {
		t.Fatalf("unsigned batch entry: %q", res)
	}
}

func TestHealthCommand(t *testing.T) {
	c := testClient(t, false)
	out := runCmd(t, c, "health")
	if !strings.Contains(out, "live:  ok") || !strings.Contains(out, "ready: ready") {
		t.Fatalf("health output: %q", out)
	}
}

func TestOperatorTokenFlag(t *testing.T) {
	m := market.MustNew(market.Config{
		Engine: core.Config{
			Candidates: auction.LinearGrid(10, 100, 10),
			EpochSize:  4,
			MinBid:     1,
		},
		Seed: 8,
	})
	srv := httpapi.NewServer(m).WithAuth(auth.NewVerifier(nil)).WithOperatorToken("op-secret")
	ts := httptest.NewServer(srv.Routes())
	t.Cleanup(ts.Close)

	// Without the token the operator endpoints refuse.
	var sb strings.Builder
	if err := run(&client{base: ts.URL}, []string{"metrics"}, &sb); err == nil {
		t.Fatal("metrics without token succeeded under auth")
	}
	// With it they serve.
	out := runCmd(t, &client{base: ts.URL, token: "op-secret"}, "metrics")
	if !strings.Contains(out, "shield_market_revenue_units") {
		t.Fatalf("metrics with token: %q", out)
	}
}
