package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"github.com/datamarket/shield/internal/auth"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/render"
)

// client talks to a marketd server.
type client struct {
	base       string
	credential string
	nonce      uint64
	// token, when set, is sent as a bearer token on every request —
	// the operator endpoints (metrics, stats, traces) require it when
	// the server runs with auth.
	token string
	// httpClient is swappable in tests; nil selects http.DefaultClient.
	httpClient *http.Client
}

func (c *client) http() *http.Client {
	if c.httpClient != nil {
		return c.httpClient
	}
	return http.DefaultClient
}

// call performs one JSON round-trip; a non-2xx status becomes an error
// carrying the server's error message.
func (c *client) call(method, path string, body, dst any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		// The server replies with the versioned envelope
		// {"error":{"code":"...","message":"..."}}; older servers sent a
		// bare string, so both shapes are accepted.
		var e struct {
			Error json.RawMessage `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && len(e.Error) > 0 {
			var env struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			}
			if json.Unmarshal(e.Error, &env) == nil && env.Message != "" {
				if env.Code != "" {
					return fmt.Errorf("server: %s [%s] (HTTP %d)", env.Message, env.Code, resp.StatusCode)
				}
				return fmt.Errorf("server: %s (HTTP %d)", env.Message, resp.StatusCode)
			}
			var msg string
			if json.Unmarshal(e.Error, &msg) == nil && msg != "" {
				return fmt.Errorf("server: %s (HTTP %d)", msg, resp.StatusCode)
			}
		}
		return fmt.Errorf("server: HTTP %d", resp.StatusCode)
	}
	if dst == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(dst)
}

// run dispatches one marketctl command.
func run(c *client, args []string, out io.Writer) error {
	if len(args) == 0 {
		return errors.New("no command (see marketctl -h)")
	}
	cmd, rest := args[0], args[1:]
	need := func(n int, usage string) error {
		if len(rest) != n {
			return fmt.Errorf("usage: marketctl %s", usage)
		}
		return nil
	}
	switch cmd {
	case "register-seller":
		if err := need(1, "register-seller <id>"); err != nil {
			return err
		}
		if err := c.call("POST", "/v1/sellers", map[string]string{"id": rest[0]}, nil); err != nil {
			return err
		}
		fmt.Fprintf(out, "seller %s registered\n", rest[0])
		return nil

	case "register-buyer":
		if err := need(1, "register-buyer <id>"); err != nil {
			return err
		}
		var resp map[string]string
		if err := c.call("POST", "/v1/buyers", map[string]string{"id": rest[0]}, &resp); err != nil {
			return err
		}
		fmt.Fprintf(out, "buyer %s registered\n", rest[0])
		if cred := resp["credential"]; cred != "" {
			fmt.Fprintf(out, "credential (store securely, shown once): %s\n", cred)
		}
		return nil

	case "upload":
		if err := need(2, "upload <seller> <dataset>"); err != nil {
			return err
		}
		if err := c.call("POST", "/v1/datasets", map[string]string{"seller": rest[0], "id": rest[1]}, nil); err != nil {
			return err
		}
		fmt.Fprintf(out, "dataset %s uploaded by %s\n", rest[1], rest[0])
		return nil

	case "withdraw":
		if err := need(2, "withdraw <seller> <dataset>"); err != nil {
			return err
		}
		if err := c.call("DELETE", "/v1/datasets/"+rest[1]+"?seller="+rest[0], nil, nil); err != nil {
			return err
		}
		fmt.Fprintf(out, "dataset %s withdrawn by %s\n", rest[1], rest[0])
		return nil

	case "compose":
		if len(rest) < 2 {
			return errors.New("usage: marketctl compose <dataset> <part> [<part>...]")
		}
		body := map[string]any{"id": rest[0], "constituents": rest[1:]}
		if err := c.call("POST", "/v1/datasets/compose", body, nil); err != nil {
			return err
		}
		fmt.Fprintf(out, "dataset %s composed from %v\n", rest[0], rest[1:])
		return nil

	case "bid":
		if err := need(3, "bid <buyer> <dataset> <amount>"); err != nil {
			return err
		}
		amount, err := strconv.ParseFloat(rest[2], 64)
		if err != nil || amount <= 0 {
			return fmt.Errorf("bad amount %q", rest[2])
		}
		body := map[string]any{"buyer": rest[0], "dataset": rest[1], "amount": amount}
		if c.credential != "" {
			micros := int64(market.FromFloat(amount))
			signed, err := auth.Sign(auth.Credential{BuyerID: rest[0], Secret: c.credential}, rest[1], micros, c.nonce)
			if err != nil {
				return err
			}
			body = map[string]any{
				"buyer": rest[0], "dataset": rest[1],
				"amount_micros": signed.AmountMicros,
				"nonce":         signed.Nonce,
				"mac":           signed.MAC,
			}
		}
		var resp struct {
			Allocated   bool    `json:"allocated"`
			PricePaid   float64 `json:"price_paid"`
			WaitPeriods int     `json:"wait_periods"`
		}
		if err := c.call("POST", "/v1/bids", body, &resp); err != nil {
			return err
		}
		if resp.Allocated {
			fmt.Fprintf(out, "won: %s acquired %s for %.6f\n", rest[0], rest[1], resp.PricePaid)
		} else {
			fmt.Fprintf(out, "lost: %s must wait %d period(s) before bidding on %s again\n",
				rest[0], resp.WaitPeriods, rest[1])
		}
		return nil

	case "bid-batch":
		if len(rest) == 0 {
			return errors.New("usage: marketctl bid-batch <buyer>:<dataset>:<amount> [...]")
		}
		var bids []map[string]any
		nonce := c.nonce
		for _, spec := range rest {
			parts := strings.SplitN(spec, ":", 3)
			if len(parts) != 3 {
				return fmt.Errorf("bad bid spec %q (want <buyer>:<dataset>:<amount>)", spec)
			}
			buyer, dataset := parts[0], parts[1]
			amount, err := strconv.ParseFloat(parts[2], 64)
			if err != nil || amount <= 0 {
				return fmt.Errorf("bad amount %q in bid spec %q", parts[2], spec)
			}
			entry := map[string]any{"buyer": buyer, "dataset": dataset, "amount": amount}
			if c.credential != "" {
				micros := int64(market.FromFloat(amount))
				signed, err := auth.Sign(auth.Credential{BuyerID: buyer, Secret: c.credential}, dataset, micros, nonce)
				if err != nil {
					return err
				}
				nonce++
				entry = map[string]any{
					"buyer": buyer, "dataset": dataset,
					"amount_micros": signed.AmountMicros,
					"nonce":         signed.Nonce,
					"mac":           signed.MAC,
				}
			}
			bids = append(bids, entry)
		}
		var resp struct {
			Results []struct {
				Allocated   bool    `json:"allocated"`
				PricePaid   float64 `json:"price_paid"`
				WaitPeriods int     `json:"wait_periods"`
				Error       *struct {
					Code    string `json:"code"`
					Message string `json:"message"`
				} `json:"error"`
			} `json:"results"`
		}
		if err := c.call("POST", "/v1/bids/batch", map[string]any{"bids": bids}, &resp); err != nil {
			return err
		}
		t := render.NewTable("bid", "outcome", "detail")
		for i, res := range resp.Results {
			switch {
			case res.Error != nil:
				t.AddRowf(rest[i], "error", fmt.Sprintf("%s [%s]", res.Error.Message, res.Error.Code))
			case res.Allocated:
				t.AddRowf(rest[i], "won", fmt.Sprintf("paid %.6f", res.PricePaid))
			default:
				t.AddRowf(rest[i], "lost", fmt.Sprintf("wait %d period(s)", res.WaitPeriods))
			}
		}
		return t.Render(out)

	case "tick":
		if err := need(0, "tick"); err != nil {
			return err
		}
		var resp map[string]int
		if err := c.call("POST", "/v1/tick", map[string]any{}, &resp); err != nil {
			return err
		}
		fmt.Fprintf(out, "period %d\n", resp["period"])
		return nil

	case "datasets":
		if err := need(0, "datasets"); err != nil {
			return err
		}
		var ds []string
		if err := c.call("GET", "/v1/datasets", nil, &ds); err != nil {
			return err
		}
		for _, d := range ds {
			fmt.Fprintln(out, d)
		}
		return nil

	case "stats":
		if err := need(1, "stats <dataset>"); err != nil {
			return err
		}
		var stats market.DatasetStats
		if err := c.call("GET", "/v1/datasets/"+rest[0]+"/stats", nil, &stats); err != nil {
			return err
		}
		t := render.NewTable("metric", "value")
		t.AddRowf("bids", stats.Bids)
		t.AddRowf("allocations", stats.Allocations)
		t.AddRowf("epochs", stats.Epochs)
		t.AddRowf("revenue", stats.Revenue)
		t.AddRowf("posting price", stats.PostingPrice)
		t.AddRowf("most likely price", stats.MostLikelyPrice)
		return t.Render(out)

	case "balance":
		if err := need(1, "balance <seller>"); err != nil {
			return err
		}
		var resp map[string]float64
		if err := c.call("GET", "/v1/sellers/"+rest[0]+"/balance", nil, &resp); err != nil {
			return err
		}
		fmt.Fprintf(out, "%.6f\n", resp["balance"])
		return nil

	case "wait":
		if err := need(2, "wait <buyer> <dataset>"); err != nil {
			return err
		}
		var resp map[string]int
		if err := c.call("GET", "/v1/buyers/"+rest[0]+"/wait?dataset="+rest[1], nil, &resp); err != nil {
			return err
		}
		fmt.Fprintf(out, "%d\n", resp["wait_periods"])
		return nil

	case "metrics":
		if err := need(0, "metrics"); err != nil {
			return err
		}
		req, err := http.NewRequest("GET", c.base+"/metrics", nil)
		if err != nil {
			return err
		}
		if c.token != "" {
			req.Header.Set("Authorization", "Bearer "+c.token)
		}
		resp, err := c.http().Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 400 {
			return fmt.Errorf("server: HTTP %d", resp.StatusCode)
		}
		_, err = io.Copy(out, resp.Body)
		return err

	case "health":
		if err := need(0, "health"); err != nil {
			return err
		}
		// Raw requests rather than call(): /readyz answers 503 with a
		// plain status body, not the error envelope, and the reason
		// must survive into the output.
		check := func(path string) (int, map[string]string, error) {
			resp, err := c.http().Get(c.base + path)
			if err != nil {
				return 0, nil, err
			}
			defer resp.Body.Close()
			var body map[string]string
			_ = json.NewDecoder(resp.Body).Decode(&body)
			return resp.StatusCode, body, nil
		}
		liveCode, live, err := check("/healthz")
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "live:  %s (HTTP %d)\n", live["status"], liveCode)
		readyCode, ready, err := check("/readyz")
		if err != nil {
			return err
		}
		if reason := ready["reason"]; reason != "" {
			fmt.Fprintf(out, "ready: %s (HTTP %d): %s\n", ready["status"], readyCode, reason)
		} else {
			fmt.Fprintf(out, "ready: %s (HTTP %d)\n", ready["status"], readyCode)
		}
		if liveCode != http.StatusOK || readyCode != http.StatusOK {
			return errors.New("server is not healthy")
		}
		return nil

	case "transactions":
		if err := need(0, "transactions"); err != nil {
			return err
		}
		var txs []market.Transaction
		if err := c.call("GET", "/v1/transactions", nil, &txs); err != nil {
			return err
		}
		t := render.NewTable("seq", "buyer", "dataset", "price", "period")
		for _, tx := range txs {
			t.AddRowf(tx.Seq, string(tx.Buyer), string(tx.Dataset), tx.Price.Float(), tx.Period)
		}
		return t.Render(out)

	default:
		return fmt.Errorf("unknown command %q (see marketctl -h)", cmd)
	}
}
