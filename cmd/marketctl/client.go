package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"github.com/datamarket/shield/internal/apierr"
	api "github.com/datamarket/shield/internal/client"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/render"
)

// client holds marketctl's connection settings; run turns it into a
// typed internal/client.Client per invocation. It survives as a plain
// struct (rather than the typed client directly) so flags and tests
// can populate it field by field.
type client struct {
	base       string
	credential string
	nonce      uint64
	// token, when set, is sent as a bearer token on every request —
	// the operator endpoints (metrics, stats, traces) require it when
	// the server runs with auth.
	token string
	// httpClient is swappable in tests; nil selects http.DefaultClient.
	httpClient *http.Client
}

func (c *client) http() *http.Client {
	if c.httpClient != nil {
		return c.httpClient
	}
	return http.DefaultClient
}

// dial builds the typed client for the configured target. Every scheme
// internal/client accepts works here, so -server can point at the
// binary wire port ("wire://host:port") as well as the HTTP API.
func (c *client) dial() (api.Client, error) {
	var opts []api.Option
	if c.credential != "" {
		opts = append(opts, api.WithCredential(c.credential, c.nonce))
	}
	if c.token != "" {
		opts = append(opts, api.WithOperatorToken(c.token))
	}
	if c.httpClient != nil {
		opts = append(opts, api.WithHTTPDoer(c.httpClient))
	}
	return api.Dial(c.base, opts...)
}

// decorate rewrites a server-reported failure into the CLI's
// "server: <message> [<code>]" shape; transport errors pass through.
func decorate(err error) error {
	var e *apierr.APIError
	if errors.As(err, &e) {
		return fmt.Errorf("server: %s [%s]", e.Message, e.Code)
	}
	return err
}

// run dispatches one marketctl command.
func run(c *client, args []string, out io.Writer) error {
	if len(args) == 0 {
		return errors.New("no command (see marketctl -h)")
	}
	cmd, rest := args[0], args[1:]
	need := func(n int, usage string) error {
		if len(rest) != n {
			return fmt.Errorf("usage: marketctl %s", usage)
		}
		return nil
	}

	// metrics and health speak raw HTTP: the Prometheus exposition and
	// the health endpoints sit outside the typed API on purpose.
	switch cmd {
	case "metrics":
		if err := need(0, "metrics"); err != nil {
			return err
		}
		return c.metrics(out)
	case "health":
		if err := need(0, "health"); err != nil {
			return err
		}
		return c.health(out)
	case "journal-info":
		// Offline: inspects a segmented journal directory on local disk,
		// no server required.
		if err := need(1, "journal-info <journal-dir>"); err != nil {
			return err
		}
		return journalInfo(rest[0], out)
	}

	cl, err := c.dial()
	if err != nil {
		return err
	}
	defer cl.Close()
	ctx := context.Background()

	switch cmd {
	case "register-seller":
		if err := need(1, "register-seller <id>"); err != nil {
			return err
		}
		if err := cl.RegisterSeller(ctx, market.SellerID(rest[0])); err != nil {
			return decorate(err)
		}
		fmt.Fprintf(out, "seller %s registered\n", rest[0])
		return nil

	case "register-buyer":
		if err := need(1, "register-buyer <id>"); err != nil {
			return err
		}
		cred, err := cl.RegisterBuyer(ctx, market.BuyerID(rest[0]))
		if err != nil {
			return decorate(err)
		}
		fmt.Fprintf(out, "buyer %s registered\n", rest[0])
		if cred != "" {
			fmt.Fprintf(out, "credential (store securely, shown once): %s\n", cred)
		}
		return nil

	case "upload":
		if err := need(2, "upload <seller> <dataset>"); err != nil {
			return err
		}
		if err := cl.UploadDataset(ctx, market.SellerID(rest[0]), market.DatasetID(rest[1])); err != nil {
			return decorate(err)
		}
		fmt.Fprintf(out, "dataset %s uploaded by %s\n", rest[1], rest[0])
		return nil

	case "withdraw":
		if err := need(2, "withdraw <seller> <dataset>"); err != nil {
			return err
		}
		if err := cl.WithdrawDataset(ctx, market.SellerID(rest[0]), market.DatasetID(rest[1])); err != nil {
			return decorate(err)
		}
		fmt.Fprintf(out, "dataset %s withdrawn by %s\n", rest[1], rest[0])
		return nil

	case "compose":
		if len(rest) < 2 {
			return errors.New("usage: marketctl compose <dataset> <part> [<part>...]")
		}
		parts := make([]market.DatasetID, len(rest)-1)
		for i, p := range rest[1:] {
			parts[i] = market.DatasetID(p)
		}
		if err := cl.ComposeDataset(ctx, market.DatasetID(rest[0]), parts...); err != nil {
			return decorate(err)
		}
		fmt.Fprintf(out, "dataset %s composed from %v\n", rest[0], rest[1:])
		return nil

	case "bid":
		if err := need(3, "bid <buyer> <dataset> <amount>"); err != nil {
			return err
		}
		amount, err := strconv.ParseFloat(rest[2], 64)
		if err != nil || amount <= 0 {
			return fmt.Errorf("bad amount %q", rest[2])
		}
		d, err := cl.SubmitBid(ctx, market.BuyerID(rest[0]), market.DatasetID(rest[1]), amount)
		if err != nil {
			return decorate(err)
		}
		if d.Allocated {
			fmt.Fprintf(out, "won: %s acquired %s for %.6f\n", rest[0], rest[1], d.PricePaid.Float())
		} else {
			fmt.Fprintf(out, "lost: %s must wait %d period(s) before bidding on %s again\n",
				rest[0], d.WaitPeriods, rest[1])
		}
		return nil

	case "bid-batch":
		if len(rest) == 0 {
			return errors.New("usage: marketctl bid-batch <buyer>:<dataset>:<amount> [...]")
		}
		reqs := make([]market.BidRequest, len(rest))
		for i, spec := range rest {
			parts := strings.SplitN(spec, ":", 3)
			if len(parts) != 3 {
				return fmt.Errorf("bad bid spec %q (want <buyer>:<dataset>:<amount>)", spec)
			}
			amount, err := strconv.ParseFloat(parts[2], 64)
			if err != nil || amount <= 0 {
				return fmt.Errorf("bad amount %q in bid spec %q", parts[2], spec)
			}
			reqs[i] = market.BidRequest{
				Buyer:   market.BuyerID(parts[0]),
				Dataset: market.DatasetID(parts[1]),
				Amount:  amount,
			}
		}
		results, err := cl.SubmitBids(ctx, reqs)
		if err != nil {
			return decorate(err)
		}
		t := render.NewTable("bid", "outcome", "detail")
		for i, res := range results {
			var e *apierr.APIError
			switch {
			case errors.As(res.Err, &e):
				t.AddRowf(rest[i], "error", fmt.Sprintf("%s [%s]", e.Message, e.Code))
			case res.Err != nil:
				t.AddRowf(rest[i], "error", res.Err.Error())
			case res.Decision.Allocated:
				t.AddRowf(rest[i], "won", fmt.Sprintf("paid %.6f", res.Decision.PricePaid.Float()))
			default:
				t.AddRowf(rest[i], "lost", fmt.Sprintf("wait %d period(s)", res.Decision.WaitPeriods))
			}
		}
		return t.Render(out)

	case "tick":
		if err := need(0, "tick"); err != nil {
			return err
		}
		period, err := cl.Tick(ctx)
		if err != nil {
			return decorate(err)
		}
		fmt.Fprintf(out, "period %d\n", period)
		return nil

	case "datasets":
		if err := need(0, "datasets"); err != nil {
			return err
		}
		ds, err := cl.Datasets(ctx)
		if err != nil {
			return decorate(err)
		}
		for _, d := range ds {
			fmt.Fprintln(out, string(d))
		}
		return nil

	case "stats":
		if err := need(1, "stats <dataset>"); err != nil {
			return err
		}
		stats, err := cl.Stats(ctx, market.DatasetID(rest[0]))
		if err != nil {
			return decorate(err)
		}
		t := render.NewTable("metric", "value")
		t.AddRowf("bids", stats.Bids)
		t.AddRowf("allocations", stats.Allocations)
		t.AddRowf("epochs", stats.Epochs)
		t.AddRowf("revenue", stats.Revenue)
		t.AddRowf("posting price", stats.PostingPrice)
		t.AddRowf("most likely price", stats.MostLikelyPrice)
		return t.Render(out)

	case "balance":
		if err := need(1, "balance <seller>"); err != nil {
			return err
		}
		bal, err := cl.SellerBalance(ctx, market.SellerID(rest[0]))
		if err != nil {
			return decorate(err)
		}
		fmt.Fprintf(out, "%.6f\n", bal.Float())
		return nil

	case "wait":
		if err := need(2, "wait <buyer> <dataset>"); err != nil {
			return err
		}
		w, err := cl.WaitRemaining(ctx, market.BuyerID(rest[0]), market.DatasetID(rest[1]))
		if err != nil {
			return decorate(err)
		}
		fmt.Fprintf(out, "%d\n", w)
		return nil

	case "transactions":
		if err := need(0, "transactions"); err != nil {
			return err
		}
		txs, err := cl.Transactions(ctx)
		if err != nil {
			return decorate(err)
		}
		t := render.NewTable("seq", "buyer", "dataset", "price", "period")
		for _, tx := range txs {
			t.AddRowf(tx.Seq, string(tx.Buyer), string(tx.Dataset), tx.Price.Float(), tx.Period)
		}
		return t.Render(out)

	default:
		return fmt.Errorf("unknown command %q (see marketctl -h)", cmd)
	}
}

// metrics streams the raw Prometheus exposition.
func (c *client) metrics(out io.Writer) error {
	req, err := http.NewRequest("GET", c.base+"/metrics", nil)
	if err != nil {
		return err
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return fmt.Errorf("server: HTTP %d", resp.StatusCode)
	}
	_, err = io.Copy(out, resp.Body)
	return err
}

// health reports liveness and readiness, exiting nonzero when either
// check fails. Raw requests rather than the typed client: /readyz
// answers 503 with a plain status body, not the error envelope, and
// the reason must survive into the output.
func (c *client) health(out io.Writer) error {
	check := func(path string) (int, map[string]string, error) {
		resp, err := c.http().Get(c.base + path)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		var body map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&body)
		return resp.StatusCode, body, nil
	}
	liveCode, live, err := check("/healthz")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "live:  %s (HTTP %d)\n", live["status"], liveCode)
	readyCode, ready, err := check("/readyz")
	if err != nil {
		return err
	}
	if reason := ready["reason"]; reason != "" {
		fmt.Fprintf(out, "ready: %s (HTTP %d): %s\n", ready["status"], readyCode, reason)
	} else {
		fmt.Fprintf(out, "ready: %s (HTTP %d)\n", ready["status"], readyCode)
	}
	if liveCode != http.StatusOK || readyCode != http.StatusOK {
		return errors.New("server is not healthy")
	}
	return nil
}
