package main

import (
	"fmt"
	"io"
	"os"

	"github.com/datamarket/shield/internal/experiments"
	"github.com/datamarket/shield/internal/render"
)

func runTable1(o experiments.Options, csv string, out io.Writer) error {
	rows, err := experiments.Table1(o)
	if err != nil {
		return err
	}
	t := render.NewTable("valuation", "mean", "std", "median", "p-value")
	var raw [][]float64
	for _, r := range rows {
		t.AddRowf(r.Valuation, r.Mean, r.Std, r.Median, r.P)
		raw = append(raw, []float64{r.Valuation, r.Mean, r.Std, r.Median, r.P})
	}
	if err := t.Render(out); err != nil {
		return err
	}
	return writeCSV(csv, []string{"valuation", "mean", "std", "median", "p"}, raw)
}

func figLeak(fn func(experiments.Options) (experiments.LeakFigure, error)) func(experiments.Options, string, io.Writer) error {
	return func(o experiments.Options, csv string, out io.Writer) error {
		fig, err := fn(o)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "bid histograms over [0, %g], %d participants\n", 2*fig.Valuation, len(fig.Study.NoLeak))
		h0 := fig.Arms[fig.ArmOrder[0]]
		t := render.NewTable(append([]string{"bin"}, fig.ArmOrder...)...)
		var raw [][]float64
		for i := range h0.Counts {
			row := []any{fmt.Sprintf("%.0f", h0.BinCenter(i))}
			rawRow := []float64{h0.BinCenter(i)}
			for _, arm := range fig.ArmOrder {
				c := fig.Arms[arm].Counts[i]
				row = append(row, c)
				rawRow = append(rawRow, float64(c))
			}
			t.AddRowf(row...)
			raw = append(raw, rawRow)
		}
		if err := t.Render(out); err != nil {
			return err
		}
		fmt.Fprintf(out, "Wilcoxon: Past<NoLeak p=%.4g | Random<NoLeak p=%.4g | Random>Past p=%.4g\n",
			fig.Study.PastVsNoLeak.P, fig.Study.RandomVsNoLeak.P, fig.Study.RandomVsPast.P)
		fmt.Fprintf(out, "normality (No-leak): D'Agostino-Pearson p=%.4g, Shapiro-Francia p=%.4g\n",
			fig.Study.NormalityK2.P, fig.Study.NormalitySF.P)
		return writeCSV(csv, append([]string{"bin"}, fig.ArmOrder...), raw)
	}
}

func runFig2c(o experiments.Options, csv string, out io.Writer) error {
	s, err := experiments.Fig2c(o)
	if err != nil {
		return err
	}
	t := render.NewTable("hour", "NW-p25", "NW-median", "NW-p75", "W-p25", "W-median", "W-p75", "p (W>NW)")
	var raw [][]float64
	for h := 0; h < s.Hours; h++ {
		t.AddRowf(h+1, s.NWp25[h], s.NWp50[h], s.NWp75[h], s.Wp25[h], s.Wp50[h], s.Wp75[h], s.HourlyP[h])
		raw = append(raw, []float64{float64(h + 1), s.NWp25[h], s.NWp50[h], s.NWp75[h], s.Wp25[h], s.Wp50[h], s.Wp75[h], s.HourlyP[h]})
	}
	if err := t.Render(out); err != nil {
		return err
	}
	return writeCSV(csv, []string{"hour", "nw_p25", "nw_p50", "nw_p75", "w_p25", "w_p50", "w_p75", "p"}, raw)
}

func figBox(fn func(experiments.Options) (experiments.BoxSeries, error), measure string) func(experiments.Options, string, io.Writer) error {
	return func(o experiments.Options, csv string, out io.Writer) error {
		bs, err := fn(o)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s by %s (mean [p25 median p75] of %s)\n", measure, bs.XLabel, measure)
		header := append([]string{bs.XLabel}, bs.Order...)
		t := render.NewTable(header...)
		var raw [][]float64
		for i, x := range bs.Xs {
			row := []any{x}
			rawRow := make([]float64, 0, len(bs.Order)+1)
			rawRow = append(rawRow, float64(i))
			for _, g := range bs.Order {
				s := bs.Groups[g][i]
				row = append(row, fmt.Sprintf("%.3f [%.2f %.2f %.2f]", s.Mean, s.P25, s.Median, s.P75))
				rawRow = append(rawRow, s.Mean)
			}
			t.AddRowf(row...)
			raw = append(raw, rawRow)
		}
		if err := t.Render(out); err != nil {
			return err
		}
		// One box strip per group at the final x position, for shape.
		last := len(bs.Xs) - 1
		fmt.Fprintf(out, "distribution at %s=%s:\n", bs.XLabel, bs.Xs[last])
		for _, g := range bs.Order {
			fmt.Fprintf(out, "  %-8s |%s| 0..1\n", g, render.BoxStrip(bs.Groups[g][last], 0, 1, 50))
		}
		return writeCSV(csv, append([]string{bs.XLabel}, bs.Order...), raw)
	}
}

func figHeat(fn func(experiments.Options) (experiments.HeatmapResult, error)) func(experiments.Options, string, io.Writer) error {
	return func(o experiments.Options, csv string, out io.Writer) error {
		hm, err := fn(o)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "normalized revenue, PCT=%.1f\n", hm.PCT)
		rows := make([]string, len(hm.Horizons))
		for i, h := range hm.Horizons {
			rows[i] = fmt.Sprintf("H=%d", h)
		}
		cols := make([]string, len(hm.Betas))
		for i, b := range hm.Betas {
			cols[i] = experiments.BetaLabel(b)
		}
		heat := &render.Heatmap{
			RowLabel: "horizon", ColLabel: "beta",
			Rows: rows, Cols: cols, Values: hm.Values,
		}
		if err := heat.Render(out); err != nil {
			return err
		}
		var raw [][]float64
		for i, h := range hm.Horizons {
			row := append([]float64{float64(h)}, hm.Values[i]...)
			raw = append(raw, row)
		}
		return writeCSV(csv, append([]string{"horizon"}, cols...), raw)
	}
}

func runExPost(o experiments.Options, csv string, out io.Writer) error {
	res, err := experiments.X2ExPost(o)
	if err != nil {
		return err
	}
	t := render.NewTable("arm", "revenue", "grants")
	t.AddRowf("ex-ante (truthful bids)", res.ExAnteRevenue, res.Rounds)
	t.AddRowf("ex-post honest", res.HonestRevenue, res.HonestGrants)
	t.AddRowf(fmt.Sprintf("ex-post under-reporting (%.0f%%)", res.CheatFraction*100), res.CheatRevenue, res.CheatGrants)
	if err := t.Render(out); err != nil {
		return err
	}
	fmt.Fprintf(out, "under-reporter lost the ex-post option: %v\n", res.CheatDeactivated)
	return writeCSV(csv, []string{"arm", "revenue", "grants"}, [][]float64{
		{0, res.ExAnteRevenue, float64(res.Rounds)},
		{1, res.HonestRevenue, float64(res.HonestGrants)},
		{2, res.CheatRevenue, float64(res.CheatGrants)},
	})
}

func runWaitPeriods(o experiments.Options, csv string, out io.Writer) error {
	res, err := experiments.X3WaitPeriods(o)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "engine warmed to most-likely price %.1f\n", res.WarmPrice)
	t := render.NewTable("losing bid", "Bound wait", "Stable wait")
	var raw [][]float64
	for i, b := range res.Bids {
		t.AddRowf(b, res.Bound[i], res.Stable[i])
		raw = append(raw, []float64{b, float64(res.Bound[i]), float64(res.Stable[i])})
	}
	if err := t.Render(out); err != nil {
		return err
	}
	return writeCSV(csv, []string{"bid", "bound", "stable"}, raw)
}

func runInterleaving(o experiments.Options, csv string, out io.Writer) error {
	res, err := experiments.X4Interleaving(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "fraction of E=8 epochs whose Eq. 2 optimum collapses below 25% of the mean valuation")
	t := render.NewTable("PCT", "interleaved", "burst")
	var raw [][]float64
	for i, pct := range res.PCTs {
		t.AddRowf(fmt.Sprintf("%.1f", pct), res.Interleaved[i], res.Burst[i])
		raw = append(raw, []float64{pct, res.Interleaved[i], res.Burst[i]})
	}
	if err := t.Render(out); err != nil {
		return err
	}
	return writeCSV(csv, []string{"pct", "interleaved", "burst"}, raw)
}

func runBestResponse(o experiments.Options, csv string, out io.Writer) error {
	res, err := experiments.X7BestResponse(o)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "mean per-buyer utility by strategy group, %d sessions per arm\n", res.Sessions)
	t := render.NewTable("arm", "truthful", "strategic", "strategic wins", "revenue")
	t.AddRowf("no Time-Shield", res.TruthfulUtilityNoShield, res.StrategicUtilityNoShield,
		res.StrategicWinsNoShield, res.RevenueNoShield)
	t.AddRowf("Time-Shield (stubborn)", res.TruthfulUtilityShield, res.StrategicUtilityShield,
		res.StrategicWinsShield, res.RevenueShield)
	t.AddRowf("Time-Shield + RQ5 reaction", res.TruthfulUtilityCautious, res.StrategicUtilityCautious,
		res.StrategicWinsCautious, res.RevenueCautious)
	if err := t.Render(out); err != nil {
		return err
	}
	fmt.Fprintf(out, "strategic advantage: %.2f without waits, %.2f with, %.2f once buyers react (Claim 2 + RQ5)\n",
		res.StrategicAdvantageNoShield(), res.StrategicAdvantageShield(), res.StrategicAdvantageCautious())
	return writeCSV(csv, []string{"arm", "truthful", "strategic", "wins", "revenue"}, [][]float64{
		{0, res.TruthfulUtilityNoShield, res.StrategicUtilityNoShield, float64(res.StrategicWinsNoShield), res.RevenueNoShield},
		{1, res.TruthfulUtilityShield, res.StrategicUtilityShield, float64(res.StrategicWinsShield), res.RevenueShield},
		{2, res.TruthfulUtilityCautious, res.StrategicUtilityCautious, float64(res.StrategicWinsCautious), res.RevenueCautious},
	})
}

func runIntegration(o experiments.Options, csv string, out io.Writer) error {
	res, err := experiments.MarketIntegration(o)
	if err != nil {
		return err
	}
	t := render.NewTable("metric", "value")
	t.AddRowf("revenue", res.Revenue)
	t.AddRowf("transactions", res.Transactions)
	var total float64
	for s, b := range res.SellerBalances {
		t.AddRowf("balance "+s, b)
		total += b
	}
	t.AddRowf("balances sum", total)
	if err := t.Render(out); err != nil {
		return err
	}
	return writeCSV(csv, []string{"revenue", "transactions"}, [][]float64{{res.Revenue, float64(res.Transactions)}})
}

func writeCSV(path string, header []string, rows [][]float64) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render.WriteCSV(f, header, rows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
