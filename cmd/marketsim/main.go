// Command marketsim regenerates the paper's tables and figures.
//
// Usage:
//
//	marketsim -exp fig3b [-series 100] [-panel 50] [-seed 2022] [-csv out/]
//	marketsim -exp all
//	marketsim -list
//
// Each experiment prints an ASCII rendering of the corresponding paper
// artifact; -csv additionally writes the raw numbers for external
// replotting.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/datamarket/shield/internal/experiments"
)

type experiment struct {
	id    string
	about string
	run   func(experiments.Options, string, io.Writer) error
}

func experimentList() []experiment {
	return []experiment{
		{"table1", "Table 1: user-study RQ1 bid statistics", runTable1},
		{"fig2a", "Figure 2a: bid distributions under leaks, v=500", figLeak(experiments.Fig2a)},
		{"fig2b", "Figure 2b: bid distributions under leaks, v=1500", figLeak(experiments.Fig2b)},
		{"fig2c", "Figure 2c: multi-round bids with/without Time-Shield", runFig2c},
		{"fig3a", "Figure 3a: Opt vs MW across AR parameterizations", figBox(experiments.Fig3a, "normalized revenue")},
		{"fig3b", "Figure 3b: Epoch-Shield revenue vs PCT", figBox(experiments.Fig3b, "normalized revenue")},
		{"fig3c", "Figure 3c: Epoch-Shield social surplus vs PCT", figBox(experiments.Fig3c, "normalized surplus")},
		{"fig4a", "Figure 4a: Uncertainty-Shield draw rules", figBox(experiments.Fig4a, "normalized revenue")},
		{"fig4b", "Figure 4b: Time-Shield (beta) revenue vs PCT", figBox(experiments.Fig4b, "normalized revenue")},
		{"fig4c", "Figure 4c: Time-Shield (beta) surplus vs PCT", figBox(experiments.Fig4c, "normalized surplus")},
		{"fig5a", "Figure 5a: update algorithms vs PCT", figBox(experiments.Fig5a, "normalized revenue")},
		{"fig5b", "Figure 5b: revenue heatmap, PCT=0.5", figHeat(experiments.Fig5b)},
		{"fig5c", "Figure 5c: revenue heatmap, PCT=0.9", figHeat(experiments.Fig5c)},
		{"dpablation", "X1: MW vs Laplace-DP across epsilon", figBox(experiments.X1DPAblation, "normalized revenue")},
		{"expost", "X2: ex-post honest vs under-reporting buyers", runExPost},
		{"waitperiod", "X3: Bound vs Stable wait-periods", runWaitPeriods},
		{"interleave", "X4: concurrent vs bursty strategic bidding", runInterleaving},
		{"adaptivegrid", "X5: fixed vs adaptive candidate grids", figBox(experiments.X5AdaptiveGrid, "normalized revenue")},
		{"drift", "X6: drift tracking (fixed-share, regrid)", figBox(experiments.X6DriftTracking, "normalized revenue")},
		{"bestresponse", "X7: buyer utility by strategy, waits on/off (Claim 2)", runBestResponse},
		{"integration", "Market substrate ledger smoke test", runIntegration},
	}
}

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id (or 'all')")
		series = flag.Int("series", 0, "random series per configuration (0 = paper's 100)")
		panel  = flag.Int("panel", 0, "user-study panel size (0 = paper's 50)")
		seed   = flag.Uint64("seed", 0, "base seed (0 = 2022)")
		csvDir = flag.String("csv", "", "directory to write raw CSV data (optional)")
		list   = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	exps := experimentList()
	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range exps {
			fmt.Printf("  %-12s %s\n", e.id, e.about)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opts := experiments.Options{Series: *series, Panel: *panel, Seed: *seed}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}

	ids := map[string]experiment{}
	var order []string
	for _, e := range exps {
		ids[e.id] = e
		order = append(order, e.id)
	}
	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		for _, id := range strings.Split(*exp, ",") {
			if _, ok := ids[strings.TrimSpace(id)]; !ok {
				fatal(fmt.Errorf("unknown experiment %q (use -list)", id))
			}
			selected = append(selected, strings.TrimSpace(id))
		}
	}
	sort.SliceStable(selected, func(i, j int) bool {
		return indexOf(order, selected[i]) < indexOf(order, selected[j])
	})

	for _, id := range selected {
		e := ids[id]
		fmt.Printf("== %s — %s ==\n", e.id, e.about)
		if err := e.run(opts, csvPath(*csvDir, e.id), os.Stdout); err != nil {
			fatal(fmt.Errorf("%s: %w", e.id, err))
		}
		fmt.Println()
	}
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return len(xs)
}

func csvPath(dir, id string) string {
	if dir == "" {
		return ""
	}
	return dir + string(os.PathSeparator) + id + ".csv"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "marketsim:", err)
	os.Exit(1)
}
