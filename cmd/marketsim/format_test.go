package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/datamarket/shield/internal/experiments"
)

// quick keeps formatter tests fast; output structure is scale-invariant.
func quickOpts() experiments.Options {
	return experiments.Options{Series: 6, Panel: 50, Seed: 2022}
}

func TestEveryExperimentFormats(t *testing.T) {
	dir := t.TempDir()
	for _, e := range experimentList() {
		e := e
		t.Run(e.id, func(t *testing.T) {
			var sb strings.Builder
			csv := filepath.Join(dir, e.id+".csv")
			if err := e.run(quickOpts(), csv, &sb); err != nil {
				t.Fatalf("%s: %v", e.id, err)
			}
			out := sb.String()
			if len(strings.TrimSpace(out)) == 0 {
				t.Fatalf("%s produced no output", e.id)
			}
			// Every experiment renders at least one table separator.
			if !strings.Contains(out, "--") {
				t.Errorf("%s output has no table:\n%s", e.id, out)
			}
			// The CSV sidecar exists and has a header plus data.
			data, err := os.ReadFile(csv)
			if err != nil {
				t.Fatalf("%s csv: %v", e.id, err)
			}
			lines := strings.Split(strings.TrimSpace(string(data)), "\n")
			if len(lines) < 2 {
				t.Errorf("%s csv has %d lines", e.id, len(lines))
			}
			if !strings.Contains(lines[0], ",") {
				t.Errorf("%s csv header %q", e.id, lines[0])
			}
		})
	}
}

func TestExperimentIDsUniqueAndListed(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experimentList() {
		if seen[e.id] {
			t.Errorf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
		if e.about == "" || e.run == nil {
			t.Errorf("experiment %q incomplete", e.id)
		}
	}
	for _, want := range []string{
		"table1", "fig2a", "fig2b", "fig2c", "fig3a", "fig3b", "fig3c",
		"fig4a", "fig4b", "fig4c", "fig5a", "fig5b", "fig5c",
		"dpablation", "expost", "waitperiod", "interleave",
		"adaptivegrid", "drift", "integration",
	} {
		if !seen[want] {
			t.Errorf("experiment %q missing from list", want)
		}
	}
}

func TestFormattersWithoutCSV(t *testing.T) {
	// Empty csv path must be a no-op, not an error.
	var sb strings.Builder
	if err := runTable1(quickOpts(), "", &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "valuation") {
		t.Fatalf("table1 output: %q", sb.String())
	}
}

func TestCSVPathHelper(t *testing.T) {
	if csvPath("", "x") != "" {
		t.Error("empty dir should yield empty path")
	}
	if p := csvPath("out", "fig1"); !strings.Contains(p, "fig1.csv") {
		t.Errorf("csvPath = %q", p)
	}
	if indexOf([]string{"a", "b"}, "b") != 1 || indexOf([]string{"a"}, "z") != 1 {
		t.Error("indexOf broken")
	}
}
