// Command metricslint is the CI gate for the /metrics contract: it
// boots the full instrumented stack in-process (journaled group-commit
// market, HTTP and wire transports, tracing at sampling 1, runtime
// self-metrics), drives real traffic through both transports so every
// histogram family carries observations and bucket exemplars, scrapes
// GET /metrics over HTTP, and lints the exposition with
// obs.LintExposition:
//
//   - every family matches the shield_[a-z0-9_]+ naming convention,
//   - the text is format-conformant (HELP/TYPE blocks, contiguous
//     families, no duplicate series, monotone cumulative buckets,
//     +Inf == _count),
//   - exemplars appear only on _bucket lines, parse, and fit inside
//     their bucket.
//
// A clean exposition exits 0; any problem prints one line per finding
// and exits 1, failing `make ci`. This is the check that keeps a
// renamed or malformed metric from silently breaking dashboards and
// the scrape pipeline.
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"github.com/datamarket/shield/internal/loadrig"
	"github.com/datamarket/shield/internal/obs"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr))
}

// run is main minus the process exit: 0 = clean exposition, 1 = lint
// problems, 2 = setup failure.
func run(stdout, stderr io.Writer) int {
	rig, err := loadrig.StartRig(loadrig.RigConfig{
		Datasets:    4,
		Buyers:      16,
		GroupCommit: true,
		Fsync:       true,
		TraceSample: 1,
	})
	if err != nil {
		fmt.Fprintf(stderr, "metricslint: %v\n", err)
		return 2
	}
	defer rig.Close()
	// The rig instruments the market, journal and both transports;
	// runtime self-metrics are marketd's extra families, registered here
	// so the lint covers the daemon's full scrape surface.
	obs.RegisterRuntimeMetrics(rig.Tel.Registry)

	// Real traffic over both transports populates every request and
	// stage histogram — with sampling 1, each gets bucket exemplars,
	// which is the part of the dialect most worth linting.
	if _, err := loadrig.Run(rig, loadrig.Scenario{
		Transport: loadrig.TransportBoth,
		Clients:   8,
		Rate:      4000,
		Ops:       400,
		TickEvery: 100,
		Seed:      2022,
	}); err != nil {
		fmt.Fprintf(stderr, "metricslint: driving traffic: %v\n", err)
		return 2
	}

	resp, err := http.Get(rig.HTTPAddr + "/metrics")
	if err != nil {
		fmt.Fprintf(stderr, "metricslint: scraping: %v\n", err)
		return 2
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintf(stderr, "metricslint: reading scrape: %v\n", err)
		return 2
	}
	exposition := string(raw)

	if problems := obs.LintExposition(exposition); len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(stderr, "metricslint: %s\n", p)
		}
		fmt.Fprintf(stderr, "metricslint: %d problems in %d families\n",
			len(problems), strings.Count(exposition, "# TYPE "))
		return 1
	}
	fmt.Fprintf(stdout, "metricslint: OK — %d families, %d exemplars, %d bytes\n",
		strings.Count(exposition, "# TYPE "),
		strings.Count(exposition, "# {trace_id="),
		len(exposition))
	return 0
}
