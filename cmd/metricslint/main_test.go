package main

import (
	"strings"
	"testing"
)

// TestLintPassesOnLiveStack runs the whole gate: instrumented rig,
// traffic over both transports, HTTP scrape, lint. A conformant
// exposition with exemplars present exits 0.
func TestLintPassesOnLiveStack(t *testing.T) {
	var out, errw strings.Builder
	if code := run(&out, &errw); code != 0 {
		t.Fatalf("metricslint = %d\nstderr:\n%s", code, errw.String())
	}
	got := out.String()
	if !strings.Contains(got, "metricslint: OK") {
		t.Fatalf("no OK line: %q", got)
	}
	// The gate is only meaningful if the traffic actually produced
	// exemplars to lint.
	if strings.Contains(got, " 0 exemplars") {
		t.Fatalf("scrape carried no exemplars — sampling wiring broke: %q", got)
	}
}
