// Benchmark harness: one benchmark per paper table/figure (see DESIGN.md
// for the experiment index). Each benchmark regenerates its artifact and
// reports the figure's headline quantities as custom metrics, so a bench
// run doubles as a shape check of the reproduction:
//
//	go test -bench=. -benchmem
//
// Benchmarks run at reduced series counts (the bench scale) so the whole
// suite completes quickly; `cmd/marketsim` regenerates everything at the
// paper's full 100-series scale.
package shield_test

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	shield "github.com/datamarket/shield"
	"github.com/datamarket/shield/internal/experiments"
)

// benchOpts is the reduced scale used by the benchmark harness.
func benchOpts() experiments.Options {
	return experiments.Options{Series: 25, Panel: 50, Seed: 2022}
}

func BenchmarkTable1_UserStudyRQ1(b *testing.B) {
	var mean500 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		mean500 = rows[0].Mean
	}
	b.ReportMetric(mean500, "mean-bid@v=500")
}

func BenchmarkFig2a_LeakDistributions500(b *testing.B) {
	var drop float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig2a(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		drop = fig.Study.MeanDropPast
	}
	b.ReportMetric(drop, "mean-bid-drop-under-leak")
}

func BenchmarkFig2b_LeakDistributions1500(b *testing.B) {
	var drop float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig2b(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		drop = fig.Study.MeanDropPast
	}
	b.ReportMetric(drop, "mean-bid-drop-under-leak")
}

func BenchmarkFig2c_TimeShieldUserStudy(b *testing.B) {
	var lift float64
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig2c(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		lift = s.Wp50[0] - s.NWp50[0]
	}
	b.ReportMetric(lift, "median-opening-bid-lift")
}

func BenchmarkFig3a_ARSensitivity(b *testing.B) {
	var mwOverOpt float64
	for i := 0; i < b.N; i++ {
		bs, err := experiments.Fig3a(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		mwOverOpt = bs.Groups["MW"][0].Mean / bs.Groups["Opt"][0].Mean
	}
	b.ReportMetric(mwOverOpt, "MW/Opt@AR=0.1")
}

func BenchmarkFig3b_EpochShieldRevenue(b *testing.B) {
	var protection float64
	for i := 0; i < b.N; i++ {
		bs, err := experiments.Fig3b(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := len(bs.Xs) - 1
		protection = bs.Groups["E=16"][last].Mean / maxf(bs.Groups["E=1"][last].Mean, 1e-9)
	}
	b.ReportMetric(protection, "E16/E1-revenue@PCT=0.9")
}

func BenchmarkFig3c_EpochShieldSurplus(b *testing.B) {
	var surplus float64
	for i := 0; i < b.N; i++ {
		bs, err := experiments.Fig3c(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		surplus = bs.Groups["E=16"][len(bs.Xs)-1].Mean
	}
	b.ReportMetric(surplus, "E16-surplus@PCT=0.9")
}

func BenchmarkFig4a_UncertaintyShield(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		bs, err := experiments.Fig4a(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		// Overhead of Uncertainty-Shield: MW relative to MW-Max at E=8.
		gap = bs.Groups["MW"][3].Mean / maxf(bs.Groups["MW-Max"][3].Mean, 1e-9)
	}
	b.ReportMetric(gap, "MW/MW-Max@E=8")
}

func BenchmarkFig4b_TimeShieldRevenue(b *testing.B) {
	var betaGain float64
	for i := 0; i < b.N; i++ {
		bs, err := experiments.Fig4b(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := len(bs.Xs) - 1
		betaGain = bs.Groups["0.75"][last].Mean / maxf(bs.Groups["min"][last].Mean, 1e-9)
	}
	b.ReportMetric(betaGain, "beta0.75/min-revenue@PCT=0.9")
}

func BenchmarkFig4c_TimeShieldSurplus(b *testing.B) {
	var s float64
	for i := 0; i < b.N; i++ {
		bs, err := experiments.Fig4c(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		s = bs.Groups["0.75"][len(bs.Xs)-1].Mean
	}
	b.ReportMetric(s, "beta0.75-surplus@PCT=0.9")
}

func BenchmarkFig5a_UpdateAlgorithms(b *testing.B) {
	var mwOverAvg float64
	for i := 0; i < b.N; i++ {
		bs, err := experiments.Fig5a(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		mwOverAvg = bs.Groups["MW"][0].Mean / maxf(bs.Groups["avg"][0].Mean, 1e-9)
	}
	b.ReportMetric(mwOverAvg, "MW/avg-revenue@PCT=0")
}

func BenchmarkFig5b_HeatmapPCT50(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		hm, err := experiments.Fig5b(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		worst = minCell(hm.Values)
	}
	b.ReportMetric(worst, "worst-cell@PCT=0.5")
}

func BenchmarkFig5c_HeatmapPCT90(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		hm, err := experiments.Fig5c(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		worst = minCell(hm.Values)
	}
	b.ReportMetric(worst, "worst-cell@PCT=0.9")
}

func BenchmarkX1_DPAblation(b *testing.B) {
	var mwOverDP float64
	for i := 0; i < b.N; i++ {
		bs, err := experiments.X1DPAblation(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		mwOverDP = bs.Groups["MW"][0].Mean / maxf(bs.Groups["DP-Laplace"][0].Mean, 1e-9)
	}
	b.ReportMetric(mwOverDP, "MW/DP-revenue@eps=0.1")
}

func BenchmarkX2_ExPost(b *testing.B) {
	var honestOverCheat float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.X2ExPost(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		honestOverCheat = res.HonestRevenue / maxf(res.CheatRevenue, 1e-9)
	}
	b.ReportMetric(honestOverCheat, "honest/cheat-revenue")
}

func BenchmarkX3_WaitPeriod(b *testing.B) {
	var deepWait float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.X3WaitPeriods(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		deepWait = float64(res.Bound[0])
	}
	b.ReportMetric(deepWait, "bound-wait@bid=10")
}

func BenchmarkMarketIntegration(b *testing.B) {
	var revenue float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.MarketIntegration(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		revenue = res.Revenue
	}
	b.ReportMetric(revenue, "market-revenue")
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minCell(values [][]float64) float64 {
	m := 1.0
	for _, row := range values {
		for _, v := range row {
			if v < m {
				m = v
			}
		}
	}
	return m
}

func BenchmarkX4_Interleaving(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.X4Interleaving(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.PCTs) - 1
		gap = res.Interleaved[last] - res.Burst[last]
	}
	b.ReportMetric(gap, "collapse-frac-gap@PCT=0.9")
}

func BenchmarkX5_AdaptiveGrid(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		bs, err := experiments.X5AdaptiveGrid(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		gain = bs.Groups["adaptive"][0].Mean / maxf(bs.Groups["fixed"][0].Mean, 1e-9)
	}
	b.ReportMetric(gain, "adaptive/fixed-revenue@n=4")
}

func BenchmarkX6_DriftTracking(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		bs, err := experiments.X6DriftTracking(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		gain = bs.Groups["MW+share"][2].Mean / maxf(bs.Groups["MW"][2].Mean, 1e-9)
	}
	b.ReportMetric(gain, "share/plain-revenue@AR=0.99")
}

func BenchmarkX7_BestResponse(b *testing.B) {
	var advGap float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.X7BestResponse(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		advGap = res.StrategicAdvantageNoShield() - res.StrategicAdvantageShield()
	}
	b.ReportMetric(advGap, "strategic-edge-removed-by-waits")
}

// BenchmarkMarketParallel measures concurrent bid throughput against the
// sharded market arbiter: every goroutine bids on a rotation of 64
// datasets with a fresh buyer per rotation, so each bid is a winning bid
// exercising the full path (engine, accounts, ledger, payout). Run with
// -cpu 1,2,4,... on a multicore machine to see throughput scale with
// parallelism; the shards=1 variant is the unsharded baseline the
// speedup should be measured against (with a single shard every bid
// serializes on one lock regardless of GOMAXPROCS).
func BenchmarkMarketParallel(b *testing.B) {
	for _, shards := range []int{1, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			const numDatasets = 64
			m, datasets := benchMarket(b, numDatasets, shards)
			// Pre-register every buyer the run can need: registration
			// takes the registry write lock (a full bid barrier), which
			// belongs in setup, not in the measured hot path.
			buyers := make([]shield.BuyerID, b.N/numDatasets+runtime.GOMAXPROCS(0)+1)
			for i := range buyers {
				buyers[i] = shield.BuyerID(fmt.Sprintf("buyer-%d", i))
				if err := m.RegisterBuyer(buyers[i]); err != nil {
					b.Fatal(err)
				}
			}
			var buyerSeq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				var buyer shield.BuyerID
				i := numDatasets // force a fresh buyer on the first iteration
				for pb.Next() {
					if i == numDatasets {
						buyer = buyers[buyerSeq.Add(1)-1]
						i = 0
					}
					if _, err := m.SubmitBid(buyer, datasets[i], 150); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
			b.StopTimer()
			var bids, contention int64
			for _, sh := range m.ShardStats() {
				bids += sh.Bids
				contention += sh.Contention
			}
			if bids > 0 {
				b.ReportMetric(float64(contention)/float64(bids), "contention/bid")
			}
		})
	}
}

// BenchmarkMarketBatchBids measures the batch entry point: one
// SubmitBids call per iteration carrying a fresh buyer's bids across all
// 64 datasets, fanned out internally across the shards.
func BenchmarkMarketBatchBids(b *testing.B) {
	const numDatasets = 64
	m, datasets := benchMarket(b, numDatasets, 0)
	var buyerSeq atomic.Int64
	reqs := make([]shield.BidRequest, numDatasets)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buyer := shield.BuyerID(fmt.Sprintf("buyer-%d", buyerSeq.Add(1)))
		if err := m.RegisterBuyer(buyer); err != nil {
			b.Fatal(err)
		}
		for j, ds := range datasets {
			reqs[j] = shield.BidRequest{Buyer: buyer, Dataset: ds, Amount: 150}
		}
		for _, res := range m.SubmitBids(reqs) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	}
}

// benchMarket builds a market with n base datasets for the concurrency
// benchmarks (shards <= 0 selects the default shard count).
func benchMarket(b *testing.B, n, shards int) (*shield.Market, []shield.DatasetID) {
	b.Helper()
	m, err := shield.NewMarket(shield.MarketConfig{
		Engine: shield.EngineConfig{
			Candidates: shield.LinearGrid(1, 100, 40),
			EpochSize:  8,
			MinBid:     1,
		},
		Seed:   2022,
		Shards: shards,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.RegisterSeller("bench-seller"); err != nil {
		b.Fatal(err)
	}
	datasets := make([]shield.DatasetID, n)
	for i := range datasets {
		datasets[i] = shield.DatasetID(fmt.Sprintf("ds-%03d", i))
		if err := m.UploadDataset("bench-seller", datasets[i]); err != nil {
			b.Fatal(err)
		}
	}
	return m, datasets
}
