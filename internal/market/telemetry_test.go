package market

import (
	"testing"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/obs"
)

func benchConfig() Config {
	return Config{
		Engine: core.Config{
			Candidates:    auction.LinearGrid(10, 100, 10),
			EpochSize:     8,
			BidsPerPeriod: 1000,
			MinBid:        1,
		},
		Seed:   42,
		Shards: 8,
	}
}

// runBids drives n bid attempts through a losing-bid/tick loop. Engines
// are deterministic in their seeds, so the instrumented and
// uninstrumented variants execute the identical operation sequence —
// the only difference is the telemetry hot path.
func runBids(tb testing.TB, m *Market, n int) []Decision {
	tb.Helper()
	out := make([]Decision, 0, n)
	for i := 0; i < n; i++ {
		for {
			d, err := m.SubmitBid("b", "d", 5)
			if err == nil {
				out = append(out, d)
				break
			}
			m.Tick()
		}
		m.Tick()
	}
	return out
}

func setupBenchMarket(tb testing.TB, instrument bool) *Market {
	tb.Helper()
	m := MustNew(benchConfig())
	if instrument {
		m.Instrument(obs.NewTelemetry())
	}
	for _, err := range []error{
		m.RegisterSeller("s"),
		m.UploadDataset("s", "d"),
		m.RegisterBuyer("b"),
	} {
		if err != nil {
			tb.Fatal(err)
		}
	}
	return m
}

// TestInstrumentationPreservesDecisions: telemetry must be an observer,
// never an actor — the same bid sequence yields bit-identical decisions
// with and without instruments bound.
func TestInstrumentationPreservesDecisions(t *testing.T) {
	plain := runBids(t, setupBenchMarket(t, false), 200)
	instr := runBids(t, setupBenchMarket(t, true), 200)
	if len(plain) != len(instr) {
		t.Fatalf("decision counts differ: %d vs %d", len(plain), len(instr))
	}
	for i := range plain {
		if plain[i] != instr[i] {
			t.Fatalf("decision %d differs: %+v vs %+v", i, plain[i], instr[i])
		}
	}
}

// BenchmarkBidUninstrumented is the baseline for the telemetry overhead
// guard; compare with BenchmarkBidInstrumented (see EXPERIMENTS.md).
func BenchmarkBidUninstrumented(b *testing.B) {
	m := setupBenchMarket(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	runBids(b, m, b.N)
}

// BenchmarkBidInstrumented is the same workload with the full metric
// set bound (shard lock-wait and price-evaluate histograms on the bid
// path). The delta against BenchmarkBidUninstrumented is the per-bid
// cost of telemetry.
func BenchmarkBidInstrumented(b *testing.B) {
	m := setupBenchMarket(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	runBids(b, m, b.N)
}
