package market

import (
	"testing"

	"github.com/datamarket/shield/internal/command"
)

// winOn drives bids on a dataset until one wins, ticking between
// periods. The grid tops out at 100, so a 150 bid wins as soon as the
// buyer is not blocked.
func winOn(t *testing.T, m *Market, buyer BuyerID, dataset DatasetID) {
	t.Helper()
	for i := 0; i < 200; i++ {
		d, err := m.SubmitBid(buyer, dataset, 150)
		if err == nil && d.Allocated {
			return
		}
		m.Tick()
	}
	t.Fatalf("no win on %s after 200 periods", dataset)
}

func TestTransactionsDefensiveCopy(t *testing.T) {
	m := setupBasic(t)
	winOn(t, m, "carol", "weather")
	winOn(t, m, "carol", "traffic")

	txs := m.Transactions()
	if len(txs) != 2 {
		t.Fatalf("transactions = %+v, want 2", txs)
	}
	for i, tx := range txs {
		if tx.Seq != i+1 {
			t.Fatalf("transactions not in sequence order: %+v", txs)
		}
	}
	// Mutating the returned slice must not leak into market state.
	txs[0].Buyer = "mallory"
	txs[1].Price = 0
	again := m.Transactions()
	if again[0].Buyer != "carol" || again[1].Price == 0 {
		t.Fatalf("caller mutation leaked into the market: %+v", again)
	}
}

func TestDatasetsDefensiveCopy(t *testing.T) {
	m := setupBasic(t)
	ds := m.Datasets()
	ds[0] = "mallory"
	again := m.Datasets()
	if again[0] == "mallory" {
		t.Fatal("caller mutation leaked into the market")
	}
}

// TestApplyCommandsMatchesWrappers drives the same history through the
// typed wrappers and through Market.Apply with explicit commands; the
// canonical snapshots must be identical — the wrappers are sugar over
// the command core, not a second implementation.
func TestApplyCommandsMatchesWrappers(t *testing.T) {
	viaWrappers := setupBasic(t)
	if _, err := viaWrappers.SubmitBid("carol", "weather", 55); err != nil {
		t.Fatal(err)
	}
	viaWrappers.Tick()

	viaApply := testMarket(t)
	for _, cmd := range []command.Command{
		command.RegisterSeller{Seller: "alice"},
		command.RegisterSeller{Seller: "bob"},
		command.RegisterBuyer{Buyer: "carol"},
		command.UploadDataset{Seller: "alice", Dataset: "weather"},
		command.UploadDataset{Seller: "bob", Dataset: "traffic"},
		command.ComposeDataset{Dataset: "weather+traffic", Constituents: []command.DatasetID{"weather", "traffic"}},
		command.SubmitBid{Buyer: "carol", Dataset: "weather", Amount: 55},
		command.Tick{},
	} {
		if _, err := viaApply.Apply(cmd); err != nil {
			t.Fatalf("apply %q: %v", cmd.Op(), err)
		}
	}

	a, err := viaWrappers.Snapshot().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	b, err := viaApply.Snapshot().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("wrapper-driven and command-driven markets diverged")
	}
}
