package market

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Canonical returns the snapshot's canonical JSON encoding. Two markets
// are in identical states exactly when their snapshots' canonical
// encodings are byte-identical: encoding/json sorts map keys, every
// numeric field is either integer micro-currency or a deterministic
// float64, and engine snapshots embed the full RNG state. Crash-recovery
// and determinism tests compare states through this encoding.
func (s Snapshot) Canonical() ([]byte, error) {
	return json.Marshal(s)
}

// Equal reports whether two snapshots describe the same market state.
func (s Snapshot) Equal(other Snapshot) bool {
	a, err := s.Canonical()
	if err != nil {
		return false
	}
	b, err := other.Canonical()
	if err != nil {
		return false
	}
	return bytes.Equal(a, b)
}

// Diff returns "" when the snapshots are equal, otherwise a short
// description naming the top-level sections that differ — precise enough
// to aim a failing recovery test without dumping two full states.
func (s Snapshot) Diff(other Snapshot) string {
	a, err := s.Canonical()
	if err != nil {
		return fmt.Sprintf("left snapshot not encodable: %v", err)
	}
	b, err := other.Canonical()
	if err != nil {
		return fmt.Sprintf("right snapshot not encodable: %v", err)
	}
	if bytes.Equal(a, b) {
		return ""
	}
	var am, bm map[string]json.RawMessage
	if json.Unmarshal(a, &am) != nil || json.Unmarshal(b, &bm) != nil {
		return "snapshots differ (undecodable sections)"
	}
	keys := make(map[string]bool, len(am)+len(bm))
	for k := range am {
		keys[k] = true
	}
	for k := range bm {
		keys[k] = true
	}
	var diffs []string
	for k := range keys {
		if !bytes.Equal(am[k], bm[k]) {
			diffs = append(diffs, k)
		}
	}
	sort.Strings(diffs)
	return "snapshots differ in: " + strings.Join(diffs, ", ")
}
