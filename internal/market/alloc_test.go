package market

import (
	"testing"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/command"
	"github.com/datamarket/shield/internal/core"
)

// These assertions pin the zero-alloc audit of the bid hot path: the
// market-shell work around command.Apply — shard resolution, lock-set
// construction, and copy-on-write view publication — must not allocate
// for the common case (a bid on a base dataset). X9 measured the view
// publication at ~540 ns and +3 allocs per bid before the audit; the
// seqlock stats cells, the inline FNV hash, and the stack lock-set
// buffer bring the shell's own contribution to zero.

// allocMarket builds an uninstrumented market with one base dataset and
// one registered buyer that has already bid once (so every map the bid
// path touches is warm).
func allocMarket(t testing.TB) *Market {
	t.Helper()
	m := MustNew(benchConfig())
	if err := m.RegisterSeller("s"); err != nil {
		t.Fatal(err)
	}
	if err := m.UploadDataset("s", "d"); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterBuyer("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SubmitBid("b", "d", 5); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPublishBidZeroAlloc asserts the per-bid view publication — the
// seqlock stats-cell store for a losing bid on a base dataset — does
// not allocate. (A winning bid additionally republishes the books and
// the buyer view; sales are orders of magnitude rarer than bids and
// keep their copy-on-write allocations.)
func TestPublishBidZeroAlloc(t *testing.T) {
	m := allocMarket(t)
	ev := command.Event{
		Kind:    command.EvBidDecided,
		Buyer:   "b",
		Dataset: "d",
		Amount:  5,
	}
	if n := testing.AllocsPerRun(200, func() { m.publishBid(ev) }); n != 0 {
		t.Fatalf("publishBid allocates %.1f times per losing bid, want 0", n)
	}
}

// TestLockPathZeroAlloc asserts shard resolution and lock-set
// construction for a base dataset allocate nothing: the FNV hash is a
// pure function and the lock set lives in the caller's stack buffer.
func TestLockPathZeroAlloc(t *testing.T) {
	m := allocMarket(t)
	n := testing.AllocsPerRun(200, func() {
		var buf [maxStackLocks]int
		locked := m.lockSet("d", nil, buf[:0])
		m.lockShards(locked)
		m.unlockShards(locked)
	})
	if n != 0 {
		t.Fatalf("lock path allocates %.1f times per bid, want 0", n)
	}
}

// TestBidHotPathSteadyStateAllocs drives whole losing bids — cadence
// check, engine evaluation, view publication — through SubmitBid and
// asserts the steady state is allocation-free per bid. Wait periods are
// disabled (computeWaitPeriod clones the learner by design — that is
// core pricing work, not shell overhead) and the epoch is larger than
// the measured bid count so no epoch-boundary price update lands inside
// the measurement. Each run pays one Tick (its event slice is the only
// tolerated allocation) and then bids once per buyer.
func TestBidHotPathSteadyStateAllocs(t *testing.T) {
	const buyers = 64
	cfg := Config{
		Engine: core.Config{
			Candidates:         auction.LinearGrid(10, 100, 10),
			EpochSize:          1 << 20,
			BidsPerPeriod:      buyers,
			MinBid:             1,
			DisableWaitPeriods: true,
		},
		Seed:   42,
		Shards: 8,
	}
	m := MustNew(cfg)
	if err := m.RegisterSeller("s"); err != nil {
		t.Fatal(err)
	}
	if err := m.UploadDataset("s", "d"); err != nil {
		t.Fatal(err)
	}
	ids := make([]BuyerID, buyers)
	for i := range ids {
		ids[i] = BuyerID(string(rune('A'+i%26)) + string(rune('a'+i/26)))
		if err := m.RegisterBuyer(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Warm every per-buyer map: one losing bid each.
	for _, id := range ids {
		if _, err := m.SubmitBid(id, "d", 5); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		m.Tick()
		for _, id := range ids {
			if _, err := m.SubmitBid(id, "d", 5); err != nil {
				t.Fatal(err)
			}
		}
	})
	// Budget: 1 for the Tick's event slice plus slack for the engine's
	// amortized epoch-slice growth. Anything above ~2 means a per-bid
	// allocation crept back into the shell.
	if allocs > 3 {
		perBid := (allocs - 1) / buyers
		t.Fatalf("hot path allocates %.2f per tick+%d bids (%.3f per bid), want <= 3 per run", allocs, buyers, perBid)
	}
	t.Logf("%.2f allocs per tick+%d-bid run", allocs, buyers)
}
