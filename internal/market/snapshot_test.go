package market

import (
	"encoding/json"
	"fmt"
	"testing"

	"github.com/datamarket/shield/internal/rng"
)

// driveSnapshotMarket exercises a market with a mixed workload.
func driveSnapshotMarket(t *testing.T) *Market {
	t.Helper()
	m := setupBasic(t)
	r := rng.New(17)
	for i := 0; i < 30; i++ {
		buyer := BuyerID(fmt.Sprintf("snap-%d", i))
		if err := m.RegisterBuyer(buyer); err != nil {
			t.Fatal(err)
		}
		for _, ds := range []DatasetID{"weather", "traffic", "weather+traffic"} {
			m.SubmitBid(buyer, ds, r.Uniform(1, 150)) // losing/winning mix; waits ignored
		}
		m.Tick()
	}
	return m
}

func TestSnapshotRoundTripExactState(t *testing.T) {
	live := driveSnapshotMarket(t)
	snap := live.Snapshot()

	// JSON round-trip: the snapshot must survive serialization.
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSnapshot(decoded)
	if err != nil {
		t.Fatal(err)
	}

	if restored.Revenue() != live.Revenue() || restored.Period() != live.Period() {
		t.Fatalf("books differ: revenue %v/%v period %d/%d",
			restored.Revenue(), live.Revenue(), restored.Period(), live.Period())
	}
	lt, rt := live.Transactions(), restored.Transactions()
	if len(lt) != len(rt) {
		t.Fatalf("transactions %d vs %d", len(lt), len(rt))
	}
	for i := range lt {
		if lt[i] != rt[i] {
			t.Fatalf("transaction %d differs", i)
		}
	}
	for _, ds := range []DatasetID{"weather", "traffic", "weather+traffic"} {
		ls, _ := live.Stats(ds)
		rs, _ := restored.Stats(ds)
		if ls != rs {
			t.Fatalf("stats %s: %+v vs %+v", ds, ls, rs)
		}
	}

	// Decision-for-decision equality going forward: randomness included.
	r := rng.New(99)
	for i := 0; i < 60; i++ {
		buyer := BuyerID(fmt.Sprintf("post-%d", i))
		if err := live.RegisterBuyer(buyer); err != nil {
			t.Fatal(err)
		}
		if err := restored.RegisterBuyer(buyer); err != nil {
			t.Fatal(err)
		}
		amount := r.Uniform(1, 150)
		ld, lerr := live.SubmitBid(buyer, "weather+traffic", amount)
		rd, rerr := restored.SubmitBid(buyer, "weather+traffic", amount)
		if ld != rd || (lerr == nil) != (rerr == nil) {
			t.Fatalf("bid %d diverged: %+v/%v vs %+v/%v", i, ld, lerr, rd, rerr)
		}
		live.Tick()
		restored.Tick()
	}
	if live.Revenue() != restored.Revenue() {
		t.Fatalf("post-restore revenue diverged: %v vs %v", live.Revenue(), restored.Revenue())
	}
}

func TestSnapshotIsIsolatedFromLiveMarket(t *testing.T) {
	m := setupBasic(t)
	snap := m.Snapshot()
	// Mutating the market after the snapshot must not change the
	// snapshot.
	if _, err := m.SubmitBid("carol", "weather", 1000); err != nil {
		t.Fatal(err)
	}
	if snap.Revenue != 0 {
		t.Fatalf("snapshot revenue mutated: %v", snap.Revenue)
	}
	restored, err := RestoreSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Revenue() != 0 {
		t.Fatalf("restored revenue %v, want 0", restored.Revenue())
	}
}

func TestRestoreSnapshotValidation(t *testing.T) {
	good := driveSnapshotMarket(t).Snapshot()

	mutate := func(f func(*Snapshot)) Snapshot {
		data, err := json.Marshal(good)
		if err != nil {
			t.Fatal(err)
		}
		var s Snapshot
		if err := json.Unmarshal(data, &s); err != nil {
			t.Fatal(err)
		}
		f(&s)
		return s
	}

	cases := map[string]Snapshot{
		"bad config":     mutate(func(s *Snapshot) { s.Config.Engine.EpochSize = 0 }),
		"negative clock": mutate(func(s *Snapshot) { s.Clock = -1 }),
		"engine without graph node": mutate(func(s *Snapshot) {
			es := s.Engines["weather"]
			s.Engines["phantom"] = es
		}),
		"graph node without engine": mutate(func(s *Snapshot) {
			delete(s.Engines, "weather")
		}),
		"owner without seller": mutate(func(s *Snapshot) {
			s.Owners["weather"] = "ghost"
		}),
		"transaction unknown buyer": mutate(func(s *Snapshot) {
			s.Transactions = append(s.Transactions, Transaction{Buyer: "ghost", Dataset: "weather"})
		}),
		"cyclic graph": mutate(func(s *Snapshot) {
			s.Graph["weather"] = []string{"weather+traffic"}
		}),
	}
	for name, s := range cases {
		if _, err := RestoreSnapshot(s); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// The untouched snapshot still restores.
	if _, err := RestoreSnapshot(good); err != nil {
		t.Fatalf("good snapshot rejected: %v", err)
	}
	// Transactions are history: one referencing a dataset that was
	// withdrawn after the sale must NOT block restore (compaction of a
	// market that sold-then-withdrew a dataset depends on this).
	withdrawn := good
	withdrawn.Transactions = append([]Transaction{}, good.Transactions...)
	withdrawn.Transactions = append(withdrawn.Transactions, Transaction{Buyer: "carol", Dataset: "long-gone"})
	if _, err := RestoreSnapshot(withdrawn); err != nil {
		t.Fatalf("snapshot with withdrawn-dataset transaction rejected: %v", err)
	}
}
