package market

import (
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/core"
)

// BenchmarkReadUnderLoad measures read-endpoint throughput while a bid
// storm occupies the write path: background goroutines hammer SubmitBid
// across every dataset while the benchmark loop calls StatsAll plus a
// point Stats lookup — the exact mix the /metrics scrape and the stats
// endpoints issue. Before the command-core refactor these reads took the
// registry read lock and every shard lock in turn, contending with the
// storm; after it they read immutable copy-on-write shard snapshots and
// touch no locks at all. EXPERIMENTS.md records the before/after deltas.
func BenchmarkReadUnderLoad(b *testing.B) {
	for _, shards := range []int{1, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			m := MustNew(Config{
				Engine: core.Config{
					Candidates: auction.LinearGrid(10, 200, 12),
					EpochSize:  8,
					MinBid:     5,
				},
				Seed:   42,
				Shards: shards,
			})
			if err := m.RegisterSeller("s"); err != nil {
				b.Fatal(err)
			}
			const datasets = 64
			ids := make([]DatasetID, datasets)
			for i := range ids {
				ids[i] = DatasetID(fmt.Sprintf("d%03d", i))
				if err := m.UploadDataset("s", ids[i]); err != nil {
					b.Fatal(err)
				}
			}
			const writers = 4
			for i := 0; i < writers; i++ {
				if err := m.RegisterBuyer(BuyerID(fmt.Sprintf("w%d", i))); err != nil {
					b.Fatal(err)
				}
			}

			// Bid storm: each writer sweeps the datasets with low bids
			// (guaranteed losers, so the storm never runs out of bids to
			// place) until the benchmark stops it. stormOps counts the
			// writers' completed operations: reads that block writers
			// depress it, so it measures the flip side of read latency.
			stop := make(chan struct{})
			done := make(chan struct{})
			var stormOps atomic.Int64
			for i := 0; i < writers; i++ {
				go func(w int) {
					defer func() { done <- struct{}{} }()
					buyer := BuyerID(fmt.Sprintf("w%d", w))
					for n := 0; ; n++ {
						select {
						case <-stop:
							return
						default:
						}
						m.Tick()
						_, _ = m.SubmitBid(buyer, ids[(n+w)%datasets], 1)
						stormOps.Add(2)
					}
				}(i)
			}

			var i atomic.Int64
			b.ResetTimer()
			stormStart := stormOps.Load()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					all := m.StatsAll()
					if len(all) != datasets {
						b.Errorf("StatsAll returned %d datasets, want %d", len(all), datasets)
						return
					}
					n := i.Add(1)
					if _, err := m.Stats(ids[int(n)%datasets]); err != nil {
						b.Error(err)
						return
					}
				}
			})
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(stormOps.Load()-stormStart)/secs, "storm-ops/s")
			}
			b.StopTimer()
			close(stop)
			for i := 0; i < writers; i++ {
				<-done
			}
		})
	}
}
