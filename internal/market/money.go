package market

import "github.com/datamarket/shield/internal/command"

// Money is an amount of market currency in integer micro-units
// (1_000_000 micros = 1 currency unit), aliased from the command core,
// which owns the type since the command-core refactor. Ledgers,
// payments, and balances use Money so that splitting revenue among
// sellers never loses or mints currency to floating-point drift; the
// pricing math (which carries no ledger obligations) stays in float64
// and is quantized at this boundary.
type Money = command.Money

// Micro is the number of Money micro-units per currency unit.
const Micro = command.Micro

// FromFloat converts a float64 currency amount to Money, rounding half
// away from zero. Values beyond the Money range saturate at the int64
// bounds rather than wrapping; NaN converts to zero. See
// command.FromFloat.
func FromFloat(f float64) Money { return command.FromFloat(f) }
