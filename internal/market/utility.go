package market

import "math"

// Utility implements the buyer utility of Equation 1:
//
//	u_i(v_i, b_i, t, d, tau_i) = delta(tau_i, t) * X(b_i, p_t(d)) * (v_i - p_t(d))
//
// where the deadline-patience function delta is 1 while t <= tau and 0
// after, and the allocation decision X is 1 only if the buyer won. A buyer
// who loses, or wins after its private deadline, derives zero utility.
func Utility(valuation, price float64, allocated bool, t, deadline int) float64 {
	if !allocated || t > deadline {
		return 0
	}
	return valuation - price
}

// Surplus is the social-surplus contribution of a single allocation: the
// winner's valuation minus the price paid (Section 3.3 defines buyer
// social surplus as the total utility across buyers). Losing buyers
// contribute zero.
func Surplus(valuation, price float64, allocated bool) float64 {
	if !allocated {
		return 0
	}
	return valuation - price
}

// PatienceFunc maps allocation time and private deadline to a utility
// multiplier in [0, 1]. The paper analyses the deadline step function
// but notes the approach "supports other patience functions, such as
// those that would progressively decrease the utility for the buyer"
// (Section 2.2); these implementations make that concrete.
type PatienceFunc func(t, deadline int) float64

// DeadlinePatience is the paper's delta(tau, t): full utility up to and
// including the deadline, zero after.
func DeadlinePatience(t, deadline int) float64 {
	if t > deadline {
		return 0
	}
	return 1
}

// LinearDecayPatience decays utility linearly from 1 at t=0 to 0 just
// past the deadline: a buyer who sources the dataset late has already
// spent part of the manual-integration effort the market was supposed
// to save.
func LinearDecayPatience(t, deadline int) float64 {
	if t > deadline || t < 0 {
		return 0
	}
	return 1 - float64(t)/float64(deadline+1)
}

// ExpDecayPatience returns a patience function that halves the utility
// every halfLife periods, cut off at the deadline. It panics if
// halfLife < 1.
func ExpDecayPatience(halfLife int) PatienceFunc {
	if halfLife < 1 {
		panic("market: ExpDecayPatience needs halfLife >= 1")
	}
	return func(t, deadline int) float64 {
		if t > deadline || t < 0 {
			return 0
		}
		return math.Pow(0.5, float64(t)/float64(halfLife))
	}
}

// UtilityWith generalizes Equation 1 to an arbitrary patience function:
// u = patience(t, tau) * X * (v - p).
func UtilityWith(patience PatienceFunc, valuation, price float64, allocated bool, t, deadline int) float64 {
	if !allocated {
		return 0
	}
	return patience(t, deadline) * (valuation - price)
}
