// Package market implements the paper's market model (Section 2): buyers,
// sellers, and an arbiter that prices seller-provided datasets with the
// protected pricing algorithm, allocates them to bidding buyers, enforces
// the bid cadence (at most one bid per buyer per period per dataset) and
// the Time-Shield wait-periods, and distributes sale revenue to the
// sellers whose datasets back each product via the provenance graph.
//
// One core.Engine prices each dataset. Derived datasets are combinations
// of base datasets (Figure 1, step 3); a bid on a derived dataset
// propagates as a demand signal to its constituents' engines (step 2).
//
// # Concurrency
//
// The arbiter is sharded by dataset: each dataset's engine lives in one
// of Config.Shards lock shards (FNV hash of the dataset ID), so bids on
// distinct datasets proceed in parallel while bids on the same dataset
// serialize on its shard. A read-mostly registry (sync.RWMutex) guards
// participant accounts, the provenance graph, dataset->shard membership
// and the market clock; registry writers (registration, uploads,
// composition, withdrawal, Tick, Snapshot) take it exclusively, which
// quiesces every in-flight bid and acts as the coordinated all-shard
// lock. Money movement (revenue, transactions, seller balances) is
// guarded by a dedicated ledger mutex and per-buyer account mutexes.
// The lock order is registry -> shards (ascending index) -> buyer
// account -> ledger; see DESIGN.md "Concurrency model".
package market

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/obs"
	"github.com/datamarket/shield/internal/provenance"
)

// Sentinel errors returned by Market operations.
var (
	ErrUnknownBuyer    = errors.New("market: unknown buyer")
	ErrUnknownSeller   = errors.New("market: unknown seller")
	ErrUnknownDataset  = errors.New("market: unknown dataset")
	ErrDuplicateID     = errors.New("market: identifier already registered")
	ErrBadBid          = errors.New("market: bid must be a positive amount")
	ErrBidTooSoon      = errors.New("market: buyer already bid this period")
	ErrWaitActive      = errors.New("market: buyer is in a Time-Shield wait period")
	ErrAlreadyAcquired = errors.New("market: buyer already owns this dataset")
	ErrEmptyID         = errors.New("market: empty identifier")
	ErrDatasetInUse    = errors.New("market: dataset backs derived products")
)

// BuyerID identifies a registered buyer.
type BuyerID string

// SellerID identifies a registered seller.
type SellerID string

// DatasetID identifies a dataset (base or derived).
type DatasetID string

// Transaction records one completed sale.
type Transaction struct {
	Seq     int
	Buyer   BuyerID
	Dataset DatasetID
	Price   Money
	Period  int
}

// Decision is the market's answer to a bid. Unlike core.Decision it hides
// the posting price from losers: a losing buyer learns only its wait.
type Decision struct {
	// Allocated reports whether the buyer won the dataset.
	Allocated bool
	// PricePaid is the posting price charged to a winner (zero for
	// losers).
	PricePaid Money
	// WaitPeriods is the number of periods the buyer must wait before
	// bidding on this dataset again (zero for winners).
	WaitPeriods int
}

// Config configures a Market.
type Config struct {
	// Engine is the pricing-engine template applied to every dataset;
	// each dataset's engine gets a seed derived from Seed and the dataset
	// ID.
	Engine core.Config
	// Seed is the market-level seed.
	Seed uint64
	// Shards is the number of lock shards datasets are partitioned
	// across for concurrent bidding; 0 selects DefaultShards. Shard
	// count never affects pricing, only parallelism.
	Shards int
}

type buyerAccount struct {
	mu           sync.Mutex        // guards all fields below
	lastBid      map[DatasetID]int // last period with a bid per dataset
	blockedUntil map[DatasetID]int // first period allowed to bid again
	acquired     map[DatasetID]bool
	spent        Money
}

type sellerAccount struct {
	balance  Money       // guarded by Market.ledger
	datasets []DatasetID // guarded by Market.reg
}

// Market is the arbiter plus its books. All methods are safe for
// concurrent use; bids on datasets in different shards run in parallel.
type Market struct {
	cfg    Config
	shards []*shard

	// reg guards the registry: participant maps, the provenance graph,
	// dataset ownership, dataset->shard membership, and the clock.
	// Bids hold it for read; structural operations hold it for write,
	// which excludes every in-flight bid (the all-shard coordination
	// point).
	reg     sync.RWMutex
	clock   int
	graph   *provenance.Graph
	owners  map[DatasetID]SellerID // base datasets only
	buyers  map[BuyerID]*buyerAccount
	sellers map[SellerID]*sellerAccount

	// ledger guards money movement: total revenue, the transaction log,
	// and seller balances.
	ledger  sync.Mutex
	txs     []Transaction
	revenue Money

	// tel holds pre-bound hot-path instruments; nil until Instrument is
	// called (before the market serves traffic), so uninstrumented
	// markets pay one pointer check per site.
	tel *telemetry
}

// New builds a Market; the engine template must validate.
func New(cfg Config) (*Market, error) {
	if err := cfg.Engine.Validate(); err != nil {
		return nil, fmt.Errorf("market: engine template: %w", err)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("market: negative shard count %d", cfg.Shards)
	}
	return &Market{
		cfg:     cfg,
		shards:  newShards(cfg.Shards),
		graph:   provenance.NewGraph(),
		owners:  make(map[DatasetID]SellerID),
		buyers:  make(map[BuyerID]*buyerAccount),
		sellers: make(map[SellerID]*sellerAccount),
	}, nil
}

// MustNew is New for static configurations; it panics on config errors.
func MustNew(cfg Config) *Market {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// RegisterBuyer adds a buyer.
func (m *Market) RegisterBuyer(id BuyerID) error {
	if id == "" {
		return ErrEmptyID
	}
	m.reg.Lock()
	defer m.reg.Unlock()
	if _, ok := m.buyers[id]; ok {
		return fmt.Errorf("%w: buyer %s", ErrDuplicateID, id)
	}
	m.buyers[id] = &buyerAccount{
		lastBid:      make(map[DatasetID]int),
		blockedUntil: make(map[DatasetID]int),
		acquired:     make(map[DatasetID]bool),
	}
	return nil
}

// RegisterSeller adds a seller.
func (m *Market) RegisterSeller(id SellerID) error {
	if id == "" {
		return ErrEmptyID
	}
	m.reg.Lock()
	defer m.reg.Unlock()
	if _, ok := m.sellers[id]; ok {
		return fmt.Errorf("%w: seller %s", ErrDuplicateID, id)
	}
	m.sellers[id] = &sellerAccount{}
	return nil
}

// UploadDataset registers a base dataset shared by seller (Figure 1,
// step 1) and starts pricing it.
func (m *Market) UploadDataset(seller SellerID, id DatasetID) error {
	if id == "" {
		return ErrEmptyID
	}
	m.reg.Lock()
	defer m.reg.Unlock()
	acct, ok := m.sellers[seller]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownSeller, seller)
	}
	if err := m.graph.AddBase(string(id)); err != nil {
		return fmt.Errorf("%w: dataset %s", ErrDuplicateID, id)
	}
	m.shardFor(id).engines[id] = m.newEngine(id)
	m.owners[id] = seller
	acct.datasets = append(acct.datasets, id)
	return nil
}

// ComposeDataset registers a derived dataset the arbiter assembled from
// existing datasets (Figure 1, step 3) and starts pricing it. Sale
// revenue will flow to the sellers of the base datasets backing it.
func (m *Market) ComposeDataset(id DatasetID, constituents ...DatasetID) error {
	if id == "" {
		return ErrEmptyID
	}
	m.reg.Lock()
	defer m.reg.Unlock()
	parts := make([]string, len(constituents))
	for i, c := range constituents {
		parts[i] = string(c)
	}
	if err := m.graph.AddDerived(string(id), parts...); err != nil {
		switch {
		case errors.Is(err, provenance.ErrExists):
			return fmt.Errorf("%w: dataset %s", ErrDuplicateID, id)
		case errors.Is(err, provenance.ErrUnknown):
			return fmt.Errorf("%w: %v", ErrUnknownDataset, err)
		default:
			return err
		}
	}
	m.shardFor(id).engines[id] = m.newEngine(id)
	return nil
}

func (m *Market) newEngine(id DatasetID) *core.Engine {
	cfg := m.cfg.Engine
	h := fnv.New64a()
	h.Write([]byte(id))
	cfg.Seed = m.cfg.Seed ^ h.Sum64()
	return core.MustNew(cfg)
}

// Tick advances the market clock by one period and returns the new
// period. Buyers may bid once per period per dataset. Tick takes the
// registry write lock, so it linearizes against every in-flight bid on
// every shard.
func (m *Market) Tick() int {
	m.reg.Lock()
	defer m.reg.Unlock()
	m.clock++
	return m.clock
}

// Period returns the current period.
func (m *Market) Period() int {
	m.reg.RLock()
	defer m.reg.RUnlock()
	return m.clock
}

// SubmitBid places buyer's bid on dataset at the current period. Winners
// pay the posting price immediately; the payment is split across the
// sellers whose base datasets back the product. Losers receive a
// Time-Shield wait and may not bid on this dataset again until it passes.
//
// Bids on datasets in different shards execute concurrently; a bid on a
// derived dataset additionally holds the shards of the leaf engines it
// propagates demand to, so the whole engine interaction is atomic with
// respect to any overlapping bid.
func (m *Market) SubmitBid(buyer BuyerID, dataset DatasetID, amount float64) (Decision, error) {
	return m.SubmitBidCtx(context.Background(), buyer, dataset, amount)
}

// SubmitBidCtx is SubmitBid with request context: when ctx carries an
// obs trace, the bid records shard.lock_wait and price.evaluate spans,
// so one request's trace shows where its time went. The context does
// not cancel the bid — a bid that reached the market always completes
// (partial application would desynchronize engines and books).
func (m *Market) SubmitBidCtx(ctx context.Context, buyer BuyerID, dataset DatasetID, amount float64) (Decision, error) {
	if !(amount > 0) {
		return Decision{}, ErrBadBid
	}
	m.reg.RLock()
	defer m.reg.RUnlock()

	acct, ok := m.buyers[buyer]
	if !ok {
		return Decision{}, fmt.Errorf("%w: %s", ErrUnknownBuyer, buyer)
	}
	primary := m.shardFor(dataset)
	if _, ok := primary.engines[dataset]; !ok {
		return Decision{}, fmt.Errorf("%w: %s", ErrUnknownDataset, dataset)
	}

	// Resolve demand-propagation targets up front so every shard the bid
	// touches can be locked in the global (ascending) order.
	var leaves []string
	if parts, ok := m.graph.Constituents(string(dataset)); ok && len(parts) > 0 {
		leaves, _ = m.graph.Leaves(string(dataset))
	}
	locked := m.lockSet(dataset, leaves)
	endLockSpan := obs.StartSpan(ctx, "shard.lock_wait")
	m.lockShards(locked)
	endLockSpan()
	defer m.unlockShards(locked)

	start := time.Now()
	primary.bids.Add(1)
	defer func() { primary.latencyNs.Add(int64(time.Since(start))) }()

	// The clock is frozen while we hold the registry read lock (Tick
	// needs the write lock), so one read serves the whole bid.
	clock := m.clock

	acct.mu.Lock()
	if acct.acquired[dataset] {
		acct.mu.Unlock()
		return Decision{}, fmt.Errorf("%w: %s", ErrAlreadyAcquired, dataset)
	}
	if last, ok := acct.lastBid[dataset]; ok && last == clock {
		acct.mu.Unlock()
		return Decision{}, fmt.Errorf("%w: period %d", ErrBidTooSoon, clock)
	}
	if until := acct.blockedUntil[dataset]; clock < until {
		acct.mu.Unlock()
		return Decision{}, fmt.Errorf("%w: %d periods remain", ErrWaitActive, until-clock)
	}
	acct.lastBid[dataset] = clock
	acct.mu.Unlock()

	endEvalSpan := obs.StartSpan(ctx, "price.evaluate")
	var evalStart time.Time
	if m.tel != nil {
		evalStart = time.Now()
	}
	d := primary.engines[dataset].SubmitBid(amount)

	// Propagate the demand signal to the constituents of a derived
	// dataset (Figure 1, step 2). Their shards are already held.
	for _, leaf := range leaves {
		if le, ok := m.shardFor(DatasetID(leaf)).engines[DatasetID(leaf)]; ok {
			le.Observe(amount)
		}
	}
	endEvalSpan()
	if m.tel != nil {
		m.tel.priceEval.ObserveSince(evalStart)
	}

	if !d.Allocated {
		acct.mu.Lock()
		acct.blockedUntil[dataset] = clock + d.Wait
		acct.mu.Unlock()
		return Decision{WaitPeriods: d.Wait}, nil
	}

	price := FromFloat(d.Price)
	acct.mu.Lock()
	acct.acquired[dataset] = true
	acct.spent += price
	acct.mu.Unlock()

	m.ledger.Lock()
	m.revenue += price
	m.paySellers(dataset, leaves, price)
	m.txs = append(m.txs, Transaction{
		Seq:     len(m.txs) + 1,
		Buyer:   buyer,
		Dataset: dataset,
		Price:   price,
		Period:  clock,
	})
	m.ledger.Unlock()
	return Decision{Allocated: true, PricePaid: price}, nil
}

// paySellers splits price across the owners of the base datasets backing
// dataset, exactly (no micro lost), deterministically (leaves are sorted).
// leaves may be pre-resolved by the caller (nil means "resolve here").
// Callers must hold the registry (read) lock and the ledger lock.
func (m *Market) paySellers(dataset DatasetID, leaves []string, price Money) {
	if leaves == nil {
		var err error
		leaves, err = m.graph.Leaves(string(dataset))
		if err != nil {
			return
		}
	}
	if len(leaves) == 0 {
		return
	}
	parts := price.Split(len(leaves))
	for i, leaf := range leaves {
		owner, ok := m.owners[DatasetID(leaf)]
		if !ok {
			continue
		}
		if acct, ok := m.sellers[owner]; ok {
			acct.balance += parts[i]
		}
	}
}

// Revenue returns the total revenue raised so far.
func (m *Market) Revenue() Money {
	m.ledger.Lock()
	defer m.ledger.Unlock()
	return m.revenue
}

// Totals returns the market's money books in one consistent view:
// total revenue, the sum of every buyer's spend, and the sum of every
// seller's balance. In a conserving market all three are equal — the
// torture harness (internal/torture) asserts exactly that after every
// operation, so the three sums are gathered under the registry lock
// rather than via per-participant accessor calls that could interleave
// with a concurrent sale.
func (m *Market) Totals() (revenue, spent, balances Money) {
	m.reg.RLock()
	defer m.reg.RUnlock()
	for _, acct := range m.buyers {
		acct.mu.Lock()
		spent += acct.spent
		acct.mu.Unlock()
	}
	m.ledger.Lock()
	revenue = m.revenue
	for _, acct := range m.sellers {
		balances += acct.balance
	}
	m.ledger.Unlock()
	return revenue, spent, balances
}

// SellerBalance returns a seller's accumulated compensation.
func (m *Market) SellerBalance(id SellerID) (Money, error) {
	m.reg.RLock()
	acct, ok := m.sellers[id]
	m.reg.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownSeller, id)
	}
	m.ledger.Lock()
	defer m.ledger.Unlock()
	return acct.balance, nil
}

// BuyerSpend returns the total a buyer has paid.
func (m *Market) BuyerSpend(id BuyerID) (Money, error) {
	m.reg.RLock()
	acct, ok := m.buyers[id]
	m.reg.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownBuyer, id)
	}
	acct.mu.Lock()
	defer acct.mu.Unlock()
	return acct.spent, nil
}

// Owns reports whether the buyer has acquired the dataset.
func (m *Market) Owns(buyer BuyerID, dataset DatasetID) (bool, error) {
	m.reg.RLock()
	acct, ok := m.buyers[buyer]
	m.reg.RUnlock()
	if !ok {
		return false, fmt.Errorf("%w: %s", ErrUnknownBuyer, buyer)
	}
	acct.mu.Lock()
	defer acct.mu.Unlock()
	return acct.acquired[dataset], nil
}

// WaitRemaining returns how many periods remain before the buyer may bid
// on the dataset again (0 when unblocked).
func (m *Market) WaitRemaining(buyer BuyerID, dataset DatasetID) (int, error) {
	m.reg.RLock()
	defer m.reg.RUnlock()
	acct, ok := m.buyers[buyer]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownBuyer, buyer)
	}
	acct.mu.Lock()
	defer acct.mu.Unlock()
	if until := acct.blockedUntil[dataset]; m.clock < until {
		return until - m.clock, nil
	}
	return 0, nil
}

// Transactions returns a copy of the transaction log.
func (m *Market) Transactions() []Transaction {
	m.ledger.Lock()
	defer m.ledger.Unlock()
	out := make([]Transaction, len(m.txs))
	copy(out, m.txs)
	return out
}

// Datasets returns the registered dataset IDs, sorted.
func (m *Market) Datasets() []DatasetID {
	m.reg.RLock()
	defer m.reg.RUnlock()
	var out []DatasetID
	for _, sh := range m.shards {
		for id := range sh.engines {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DatasetStats is a diagnostic snapshot of one dataset's pricing engine.
// It is operator-facing: a deployment must not expose PostingPrice or
// MostLikelyPrice to buyers (that is the leak Uncertainty-Shield guards
// against).
type DatasetStats struct {
	Dataset     DatasetID
	Bids        int
	Allocations int
	Epochs      int
	Revenue     float64
	PostingPrice,
	MostLikelyPrice float64
}

// Stats returns the diagnostic snapshot for a dataset.
func (m *Market) Stats(dataset DatasetID) (DatasetStats, error) {
	m.reg.RLock()
	defer m.reg.RUnlock()
	sh := m.shardFor(dataset)
	eng, ok := sh.engines[dataset]
	if !ok {
		return DatasetStats{}, fmt.Errorf("%w: %s", ErrUnknownDataset, dataset)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return DatasetStats{
		Dataset:         dataset,
		Bids:            eng.Bids(),
		Allocations:     eng.Allocations(),
		Epochs:          eng.Epochs(),
		Revenue:         eng.Revenue(),
		PostingPrice:    eng.PostingPrice(),
		MostLikelyPrice: eng.MostLikelyPrice(),
	}, nil
}

// WithdrawDataset removes a base dataset a seller no longer wants to
// share. Withdrawal is refused while any derived dataset still builds on
// it (those products would silently lose a constituent — the seller must
// wait for the arbiter to retire them) and does not touch money already
// earned. Buyers who purchased the dataset keep it: data is nonrival and
// already delivered.
func (m *Market) WithdrawDataset(seller SellerID, id DatasetID) error {
	m.reg.Lock()
	defer m.reg.Unlock()
	acct, ok := m.sellers[seller]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownSeller, seller)
	}
	owner, ok := m.owners[id]
	if !ok {
		return fmt.Errorf("%w: %s is not a base dataset", ErrUnknownDataset, id)
	}
	if owner != seller {
		return fmt.Errorf("%w: %s does not own %s", ErrUnknownSeller, seller, id)
	}
	deps, err := m.graph.Dependents(string(id))
	if err != nil {
		return err
	}
	for _, d := range deps {
		if d != string(id) {
			return fmt.Errorf("%w: %s is still part of %s", ErrDatasetInUse, id, d)
		}
	}
	if err := m.graph.Remove(string(id)); err != nil {
		return err
	}
	delete(m.shardFor(id).engines, id)
	delete(m.owners, id)
	for i, d := range acct.datasets {
		if d == id {
			acct.datasets = append(acct.datasets[:i], acct.datasets[i+1:]...)
			break
		}
	}
	return nil
}

// SellerDatasets returns the base datasets a seller has uploaded.
func (m *Market) SellerDatasets(id SellerID) ([]DatasetID, error) {
	m.reg.RLock()
	defer m.reg.RUnlock()
	acct, ok := m.sellers[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSeller, id)
	}
	out := make([]DatasetID, len(acct.datasets))
	copy(out, acct.datasets)
	return out, nil
}
