// Package market is the concurrent shell around the deterministic
// command core (internal/command): buyers, sellers, and an arbiter that
// prices seller-provided datasets with the protected pricing algorithm,
// allocates them to bidding buyers, enforces the bid cadence (at most
// one bid per buyer per period per dataset) and the Time-Shield
// wait-periods, and distributes sale revenue to the sellers whose
// datasets back each product via the provenance graph (the paper's
// Section 2 model).
//
// All market rules live in command.Apply — this package adds exactly
// two things on top of the state machine:
//
//   - serialization: lock shards turn concurrent requests into the
//     per-engine-serialized Apply calls the core's contract requires,
//     so bids on distinct datasets proceed in parallel;
//   - lock-free reads: every Apply publishes immutable copy-on-write
//     views of the books, so Stats, StatsAll, Totals, Transactions,
//     Owns and the /metrics collectors read an atomic pointer and take
//     no locks at all.
//
// One core.Engine prices each dataset. Derived datasets are combinations
// of base datasets (Figure 1, step 3); a bid on a derived dataset
// propagates as a demand signal to its constituents' engines (step 2).
//
// # Concurrency
//
// The arbiter is sharded by dataset: each dataset hashes to one of
// Config.Shards lock shards (FNV hash of the dataset ID), so bids on
// distinct datasets proceed in parallel while bids on the same dataset
// serialize on its shard. A read-mostly registry lock (sync.RWMutex)
// spans the whole state machine: bids hold it for read; structural
// commands (registration, uploads, composition, withdrawal, Tick,
// Snapshot) hold it for write, which quiesces every in-flight bid and
// acts as the coordinated all-shard lock. Money movement is race-free
// under the core's own per-buyer account mutexes and ledger mutex.
// The lock order is registry -> shards (ascending index) -> buyer
// account -> ledger -> view publication; see DESIGN.md "Concurrency
// model".
package market

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/datamarket/shield/internal/command"
	"github.com/datamarket/shield/internal/obs"
)

// Sentinel errors returned by Market operations. They are the command
// core's errors re-exported under their historical home: identities
// (errors.Is) and strings are unchanged.
var (
	ErrUnknownBuyer    = command.ErrUnknownBuyer
	ErrUnknownSeller   = command.ErrUnknownSeller
	ErrUnknownDataset  = command.ErrUnknownDataset
	ErrDuplicateID     = command.ErrDuplicateID
	ErrBadBid          = command.ErrBadBid
	ErrBidTooSoon      = command.ErrBidTooSoon
	ErrWaitActive      = command.ErrWaitActive
	ErrAlreadyAcquired = command.ErrAlreadyAcquired
	ErrEmptyID         = command.ErrEmptyID
	ErrDatasetInUse    = command.ErrDatasetInUse
)

// Domain types, aliased from the command core (which owns them since
// the command-core refactor) so existing callers keep compiling
// unchanged.
type (
	// BuyerID identifies a registered buyer.
	BuyerID = command.BuyerID
	// SellerID identifies a registered seller.
	SellerID = command.SellerID
	// DatasetID identifies a dataset (base or derived).
	DatasetID = command.DatasetID
	// Transaction records one completed sale.
	Transaction = command.Transaction
	// Decision is the market's answer to a bid.
	Decision = command.Decision
	// Config configures a Market.
	Config = command.Config
	// DatasetStats is a diagnostic snapshot of one dataset's pricing
	// engine. It is operator-facing: a deployment must not expose
	// PostingPrice or MostLikelyPrice to buyers (that is the leak
	// Uncertainty-Shield guards against).
	DatasetStats = command.DatasetStats
)

// Market is the arbiter plus its books: a concurrent shell around one
// command.State. All methods are safe for concurrent use; bids on
// datasets in different shards run in parallel, and read endpoints
// never block behind writers.
type Market struct {
	cfg    Config
	st     *command.State
	shards []*shard

	// reg is the registry lock spanning the state machine: bids hold it
	// for read (the shared access the core's contract requires),
	// structural commands hold it for write, which excludes every
	// in-flight bid (the all-shard coordination point).
	reg sync.RWMutex

	// vw holds the lock-free read views every Apply publishes.
	vw views

	// tel holds pre-bound hot-path instruments; nil until Instrument is
	// called (before the market serves traffic), so uninstrumented
	// markets pay one pointer check per site.
	tel *telemetry
}

// New builds a Market; the engine template must validate.
func New(cfg Config) (*Market, error) {
	st, err := command.NewState(cfg)
	if err != nil {
		return nil, err
	}
	m := &Market{
		cfg:    cfg,
		st:     st,
		shards: newShards(cfg.Shards),
	}
	m.initViews()
	return m, nil
}

// MustNew is New for static configurations; it panics on config errors.
func MustNew(cfg Config) *Market {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Apply executes one command against the market with the serialization
// its kind requires: bids take the registry read lock plus the shard
// locks of every engine they touch, everything else takes the registry
// write lock. It returns the command core's events. All public
// mutation methods are wrappers around Apply.
func (m *Market) Apply(cmd command.Command) ([]command.Event, error) {
	return m.ApplyCtx(context.Background(), cmd)
}

// ApplyCtx is Apply with request context: when ctx carries an obs
// trace, a bid records shard.lock_wait and price.evaluate spans. The
// context does not cancel the command — a command that reached the
// market always completes (partial application would desynchronize
// engines and books).
func (m *Market) ApplyCtx(ctx context.Context, cmd command.Command) ([]command.Event, error) {
	switch c := cmd.(type) {
	case command.SubmitBid:
		ev, err := m.applyBidCtx(ctx, c)
		if err != nil {
			return nil, err
		}
		return []command.Event{ev}, nil
	case command.BidBatch:
		// A batch replays strictly in order through the same hot path as
		// individual bids; the first failure stops it (a recorded batch
		// contains only bids that succeeded originally, so a failure
		// during replay is a divergence the caller must see).
		evs := make([]command.Event, 0, len(c.Bids))
		for _, b := range c.Bids {
			ev, err := m.applyBidCtx(ctx, b)
			if err != nil {
				return evs, err
			}
			evs = append(evs, ev)
		}
		return evs, nil
	case command.Settle:
		return command.Apply(m.st, cmd) // ErrNotMarket; no state touched
	default:
		m.reg.Lock()
		defer m.reg.Unlock()
		evs, err := command.Apply(m.st, cmd)
		m.publishStructural(evs)
		return evs, err
	}
}

// RegisterBuyer adds a buyer.
func (m *Market) RegisterBuyer(id BuyerID) error {
	_, err := m.Apply(command.RegisterBuyer{Buyer: id})
	return err
}

// RegisterSeller adds a seller.
func (m *Market) RegisterSeller(id SellerID) error {
	_, err := m.Apply(command.RegisterSeller{Seller: id})
	return err
}

// UploadDataset registers a base dataset shared by seller (Figure 1,
// step 1) and starts pricing it.
func (m *Market) UploadDataset(seller SellerID, id DatasetID) error {
	_, err := m.Apply(command.UploadDataset{Seller: seller, Dataset: id})
	return err
}

// ComposeDataset registers a derived dataset the arbiter assembled from
// existing datasets (Figure 1, step 3) and starts pricing it. Sale
// revenue will flow to the sellers of the base datasets backing it.
func (m *Market) ComposeDataset(id DatasetID, constituents ...DatasetID) error {
	_, err := m.Apply(command.ComposeDataset{Dataset: id, Constituents: constituents})
	return err
}

// WithdrawDataset removes a base dataset a seller no longer wants to
// share. Withdrawal is refused while any derived dataset still builds on
// it (those products would silently lose a constituent — the seller must
// wait for the arbiter to retire them) and does not touch money already
// earned. Buyers who purchased the dataset keep it: data is nonrival and
// already delivered.
func (m *Market) WithdrawDataset(seller SellerID, id DatasetID) error {
	_, err := m.Apply(command.WithdrawDataset{Seller: seller, Dataset: id})
	return err
}

// Tick advances the market clock by one period and returns the new
// period. Buyers may bid once per period per dataset. Tick takes the
// registry write lock, so it linearizes against every in-flight bid on
// every shard.
func (m *Market) Tick() int {
	evs, _ := m.Apply(command.Tick{})
	return evs[0].Period
}

// SubmitBid places buyer's bid on dataset at the current period. Winners
// pay the posting price immediately; the payment is split across the
// sellers whose base datasets back the product. Losers receive a
// Time-Shield wait and may not bid on this dataset again until it passes.
//
// Bids on datasets in different shards execute concurrently; a bid on a
// derived dataset additionally holds the shards of the leaf engines it
// propagates demand to, so the whole engine interaction is atomic with
// respect to any overlapping bid.
func (m *Market) SubmitBid(buyer BuyerID, dataset DatasetID, amount float64) (Decision, error) {
	return m.SubmitBidCtx(context.Background(), buyer, dataset, amount)
}

// SubmitBidCtx is SubmitBid with request context: when ctx carries an
// obs trace, the bid records shard.lock_wait and price.evaluate spans,
// so one request's trace shows where its time went. The context does
// not cancel the bid — a bid that reached the market always completes
// (partial application would desynchronize engines and books).
func (m *Market) SubmitBidCtx(ctx context.Context, buyer BuyerID, dataset DatasetID, amount float64) (Decision, error) {
	ev, err := m.applyBidCtx(ctx, command.SubmitBid{Buyer: buyer, Dataset: dataset, Amount: amount})
	if err != nil {
		return Decision{}, err
	}
	return ev.Decision, nil
}

// applyBidCtx is the hot path: it serializes one SubmitBid command into
// the core under the registry read lock plus the shard locks of every
// engine the bid touches, then publishes the read views the bid
// invalidated before the locks are released.
func (m *Market) applyBidCtx(ctx context.Context, c command.SubmitBid) (command.Event, error) {
	if !(c.Amount > 0) {
		return command.Event{}, ErrBadBid
	}
	var applyH, publishH *obs.Histogram
	if m.tel != nil {
		applyH, publishH = m.tel.applyStage, m.tel.publishStage
	}
	m.reg.RLock()
	defer m.reg.RUnlock()

	// Pre-resolve what the bid will touch (and surface unknown-buyer /
	// unknown-dataset errors) before any shard lock is taken, so the
	// lock set is complete and failed lookups never count as shard
	// traffic.
	if !m.st.HasBuyer(c.Buyer) {
		return command.Event{}, fmt.Errorf("%w: %s", ErrUnknownBuyer, c.Buyer)
	}
	leaves, err := m.st.BidLeaves(c.Dataset)
	if err != nil {
		return command.Event{}, err
	}

	// The apply stage covers the whole engine interaction — lock
	// acquisition, pricing, books — up to but excluding view
	// publication, which is its own stage below. Failed pre-resolution
	// above is request validation, not pipeline work, so it stays
	// outside the stage.
	endApply := obs.StageTimer(ctx, applyH, "apply")
	var lockBuf [maxStackLocks]int
	locked := m.lockSet(c.Dataset, leaves, lockBuf[:0])
	endLockSpan := obs.StartSpan(ctx, "shard.lock_wait")
	m.lockShards(locked)
	endLockSpan.End()
	defer m.unlockShards(locked)

	primary := m.shardFor(c.Dataset)
	start := time.Now()
	primary.bids.Add(1)
	defer func() { primary.latencyNs.Add(int64(time.Since(start))) }()

	endEvalSpan := obs.StartSpan(ctx, "price.evaluate")
	var evalStart time.Time
	if m.tel != nil {
		evalStart = time.Now()
	}
	// The scratch buffer is owned by the primary shard, whose lock we
	// hold; the event is copied out by value before the locks drop.
	// ApplyBid (not ApplyInto) keeps the command out of the Command
	// interface — boxing it would allocate on every bid.
	evs, err := command.ApplyBid(m.st, c, primary.evbuf)
	primary.evbuf = evs[:0]
	endEvalSpan.End()
	if m.tel != nil {
		m.tel.priceEval.ObserveSinceTrace(evalStart, obs.ExemplarID(ctx))
	}
	if err != nil {
		endApply.End()
		return command.Event{}, err
	}
	ev := evs[0]
	endApply.End()
	endPublish := obs.StageTimer(ctx, publishH, "publish")
	m.publishBid(ev)
	endPublish.End()
	return ev, nil
}

// Period returns the current period (lock-free).
func (m *Market) Period() int {
	return int(m.vw.clock.Load())
}

// Revenue returns the total revenue raised so far (lock-free).
func (m *Market) Revenue() Money {
	return m.vw.books.Load().revenue
}

// Totals returns the market's money books in one consistent view:
// total revenue, the sum of every buyer's spend, and the sum of every
// seller's balance. In a conserving market all three are equal — the
// torture harness (internal/torture) asserts exactly that after every
// operation. The three sums come from one immutable books view
// published atomically per sale, so the read is both consistent and
// lock-free.
func (m *Market) Totals() (revenue, spent, balances Money) {
	b := m.vw.books.Load()
	return b.revenue, b.spent, b.balances
}

// SellerBalance returns a seller's accumulated compensation.
func (m *Market) SellerBalance(id SellerID) (Money, error) {
	m.reg.RLock()
	defer m.reg.RUnlock()
	return m.st.SellerBalance(id)
}

// BuyerSpend returns the total a buyer has paid (lock-free).
func (m *Market) BuyerSpend(id BuyerID) (Money, error) {
	cell, ok := (*m.vw.buyers.Load())[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownBuyer, id)
	}
	return Money(cell.spent.Load()), nil
}

// Owns reports whether the buyer has acquired the dataset (lock-free).
func (m *Market) Owns(buyer BuyerID, dataset DatasetID) (bool, error) {
	cell, ok := (*m.vw.buyers.Load())[buyer]
	if !ok {
		return false, fmt.Errorf("%w: %s", ErrUnknownBuyer, buyer)
	}
	_, owns := cell.acquired.Load(dataset)
	return owns, nil
}

// WaitRemaining returns how many periods remain before the buyer may bid
// on the dataset again (0 when unblocked).
func (m *Market) WaitRemaining(buyer BuyerID, dataset DatasetID) (int, error) {
	m.reg.RLock()
	defer m.reg.RUnlock()
	return m.st.WaitRemaining(buyer, dataset)
}

// Transactions returns a defensive copy of the transaction log, sorted
// by sequence number (lock-free). Sorting is needed because concurrent
// sales may publish their view updates out of sequence order; the
// sequence numbers themselves are assigned under the core's ledger
// mutex and are gapless.
func (m *Market) Transactions() []Transaction {
	txs := m.vw.books.Load().txs
	out := make([]Transaction, len(txs))
	copy(out, txs)
	sortTransactions(out)
	return out
}

// Datasets returns a fresh slice of the registered dataset IDs, sorted
// (lock-free).
func (m *Market) Datasets() []DatasetID {
	stats := *m.vw.stats.Load()
	out := make([]DatasetID, 0, len(stats))
	for id := range stats {
		out = append(out, id)
	}
	sortDatasetIDs(out)
	return out
}

// Stats returns the diagnostic snapshot for a dataset (lock-free): a
// copy of the immutable per-dataset view published by the last bid that
// touched its engine.
func (m *Market) Stats(dataset DatasetID) (DatasetStats, error) {
	cell, ok := (*m.vw.stats.Load())[dataset]
	if !ok {
		return DatasetStats{}, fmt.Errorf("%w: %s", ErrUnknownDataset, dataset)
	}
	return cell.load(), nil
}

// SellerDatasets returns the base datasets a seller has uploaded.
func (m *Market) SellerDatasets(id SellerID) ([]DatasetID, error) {
	m.reg.RLock()
	defer m.reg.RUnlock()
	return m.st.SellerDatasets(id)
}

// TestPerturbPrices forwards a price perturbation to every current and
// future engine (see command.State.TestPerturbPrices). It exists for
// the torture harness's mutation canary; production code must never
// call it.
func (m *Market) TestPerturbPrices(f func(price float64) float64) {
	m.reg.Lock()
	defer m.reg.Unlock()
	m.st.TestPerturbPrices(f)
}
