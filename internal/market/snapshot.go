package market

import (
	"fmt"

	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/provenance"
)

// BuyerSnapshot is one buyer account's serializable state.
type BuyerSnapshot struct {
	LastBid      map[DatasetID]int  `json:"last_bid,omitempty"`
	BlockedUntil map[DatasetID]int  `json:"blocked_until,omitempty"`
	Acquired     map[DatasetID]bool `json:"acquired,omitempty"`
	Spent        Money              `json:"spent"`
}

// SellerSnapshot is one seller account's serializable state.
type SellerSnapshot struct {
	Balance  Money       `json:"balance"`
	Datasets []DatasetID `json:"datasets,omitempty"`
}

// Snapshot is the market's full serializable state. Restoring it yields
// a market that behaves identically from that point on (engine
// randomness included), so a snapshot plus the journal tail recorded
// after it reconstructs the books exactly.
type Snapshot struct {
	Config       Config                      `json:"config"`
	Clock        int                         `json:"clock"`
	Graph        map[string][]string         `json:"graph"`
	Engines      map[DatasetID]core.Snapshot `json:"engines"`
	Owners       map[DatasetID]SellerID      `json:"owners"`
	Buyers       map[BuyerID]BuyerSnapshot   `json:"buyers"`
	Sellers      map[SellerID]SellerSnapshot `json:"sellers"`
	Transactions []Transaction               `json:"transactions,omitempty"`
	Revenue      Money                       `json:"revenue"`
}

// Snapshot captures the whole market state. It takes the registry write
// lock, quiescing every in-flight bid, so the snapshot is a consistent
// point-in-time view.
func (m *Market) Snapshot() Snapshot {
	m.reg.Lock()
	defer m.reg.Unlock()
	m.ledger.Lock()
	defer m.ledger.Unlock()
	s := Snapshot{
		Config:       m.cfg,
		Clock:        m.clock,
		Graph:        m.graph.Snapshot(),
		Engines:      make(map[DatasetID]core.Snapshot),
		Owners:       make(map[DatasetID]SellerID, len(m.owners)),
		Buyers:       make(map[BuyerID]BuyerSnapshot, len(m.buyers)),
		Sellers:      make(map[SellerID]SellerSnapshot, len(m.sellers)),
		Transactions: make([]Transaction, len(m.txs)),
		Revenue:      m.revenue,
	}
	for _, sh := range m.shards {
		for id, eng := range sh.engines {
			s.Engines[id] = eng.Snapshot()
		}
	}
	for id, owner := range m.owners {
		s.Owners[id] = owner
	}
	for id, acct := range m.buyers {
		bs := BuyerSnapshot{
			LastBid:      make(map[DatasetID]int, len(acct.lastBid)),
			BlockedUntil: make(map[DatasetID]int, len(acct.blockedUntil)),
			Acquired:     make(map[DatasetID]bool, len(acct.acquired)),
			Spent:        acct.spent,
		}
		for k, v := range acct.lastBid {
			bs.LastBid[k] = v
		}
		for k, v := range acct.blockedUntil {
			bs.BlockedUntil[k] = v
		}
		for k, v := range acct.acquired {
			bs.Acquired[k] = v
		}
		s.Buyers[id] = bs
	}
	for id, acct := range m.sellers {
		ss := SellerSnapshot{Balance: acct.balance, Datasets: make([]DatasetID, len(acct.datasets))}
		copy(ss.Datasets, acct.datasets)
		s.Sellers[id] = ss
	}
	copy(s.Transactions, m.txs)
	return s
}

// RestoreSnapshot reconstructs a market from a snapshot, validating
// cross-references (every engine has a graph node, every owner exists,
// every transaction's parties exist).
func RestoreSnapshot(s Snapshot) (*Market, error) {
	if err := s.Config.Engine.Validate(); err != nil {
		return nil, fmt.Errorf("market: snapshot config: %w", err)
	}
	if s.Clock < 0 || s.Revenue < 0 {
		return nil, fmt.Errorf("market: snapshot clock/revenue negative")
	}
	graph, err := provenance.FromSnapshot(s.Graph)
	if err != nil {
		return nil, fmt.Errorf("market: snapshot graph: %w", err)
	}
	if s.Config.Shards < 0 {
		return nil, fmt.Errorf("market: snapshot shard count negative")
	}
	m := &Market{
		cfg:     s.Config,
		shards:  newShards(s.Config.Shards),
		clock:   s.Clock,
		graph:   graph,
		owners:  make(map[DatasetID]SellerID, len(s.Owners)),
		buyers:  make(map[BuyerID]*buyerAccount, len(s.Buyers)),
		sellers: make(map[SellerID]*sellerAccount, len(s.Sellers)),
		txs:     make([]Transaction, len(s.Transactions)),
		revenue: s.Revenue,
	}
	for id, es := range s.Engines {
		if !graph.Contains(string(id)) {
			return nil, fmt.Errorf("market: snapshot engine %s has no graph node", id)
		}
		eng, err := core.RestoreSnapshot(es)
		if err != nil {
			return nil, fmt.Errorf("market: snapshot engine %s: %w", id, err)
		}
		m.shardFor(id).engines[id] = eng
	}
	for id := range s.Graph {
		if _, ok := s.Engines[DatasetID(id)]; !ok {
			return nil, fmt.Errorf("market: snapshot dataset %s has no engine", id)
		}
	}
	for id, owner := range s.Owners {
		if _, ok := s.Sellers[owner]; !ok {
			return nil, fmt.Errorf("market: snapshot dataset %s owned by unknown seller %s", id, owner)
		}
		m.owners[id] = owner
	}
	for id, bs := range s.Buyers {
		acct := &buyerAccount{
			lastBid:      make(map[DatasetID]int, len(bs.LastBid)),
			blockedUntil: make(map[DatasetID]int, len(bs.BlockedUntil)),
			acquired:     make(map[DatasetID]bool, len(bs.Acquired)),
			spent:        bs.Spent,
		}
		for k, v := range bs.LastBid {
			acct.lastBid[k] = v
		}
		for k, v := range bs.BlockedUntil {
			acct.blockedUntil[k] = v
		}
		for k, v := range bs.Acquired {
			acct.acquired[k] = v
		}
		m.buyers[id] = acct
	}
	for id, ss := range s.Sellers {
		acct := &sellerAccount{balance: ss.Balance, datasets: make([]DatasetID, len(ss.Datasets))}
		copy(acct.datasets, ss.Datasets)
		m.sellers[id] = acct
	}
	for i, tx := range s.Transactions {
		// Transactions are history, not live references: a sold dataset
		// may have been withdrawn since (buyers keep delivered data), so
		// only the buyer — who can never deregister — must still exist.
		if _, ok := m.buyers[tx.Buyer]; !ok {
			return nil, fmt.Errorf("market: snapshot transaction %d references unknown buyer %s", i, tx.Buyer)
		}
		m.txs[i] = tx
	}
	return m, nil
}
