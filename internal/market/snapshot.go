package market

import "github.com/datamarket/shield/internal/command"

// Snapshot types, aliased from the command core, which owns the
// serializable state since the command-core refactor. The JSON shape is
// unchanged.
type (
	// BuyerSnapshot is one buyer account's serializable state.
	BuyerSnapshot = command.BuyerSnapshot
	// SellerSnapshot is one seller account's serializable state.
	SellerSnapshot = command.SellerSnapshot
	// Snapshot is the market's full serializable state. Restoring it
	// yields a market that behaves identically from that point on
	// (engine randomness included), so a snapshot plus the journal tail
	// recorded after it reconstructs the books exactly.
	Snapshot = command.Snapshot
)

// Snapshot captures the whole market state. It takes the registry write
// lock, quiescing every in-flight bid, so the snapshot is a consistent
// point-in-time view.
func (m *Market) Snapshot() Snapshot {
	m.reg.Lock()
	defer m.reg.Unlock()
	return m.st.Snapshot()
}

// RestoreSnapshot reconstructs a market from a snapshot, validating
// cross-references (every engine has a graph node, every owner exists,
// every transaction's parties exist).
func RestoreSnapshot(s Snapshot) (*Market, error) {
	st, err := command.RestoreState(s)
	if err != nil {
		return nil, err
	}
	m := &Market{
		cfg:    st.Config(),
		st:     st,
		shards: newShards(st.Config().Shards),
	}
	m.initViews()
	m.rebuildViews()
	return m, nil
}
