package market

import (
	"testing"
	"testing/quick"
)

func TestFromFloatRounding(t *testing.T) {
	cases := []struct {
		in   float64
		want Money
	}{
		{0, 0},
		{1, 1_000_000},
		{1.5, 1_500_000},
		{0.0000005, 1}, // rounds half away from zero
		{-1.25, -1_250_000},
		{-0.0000005, -1},
	}
	for _, c := range cases {
		if got := FromFloat(c.in); got != c.want {
			t.Errorf("FromFloat(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestFloatRoundTrip(t *testing.T) {
	f := func(units int32, micros int32) bool {
		m := Money(units)*Micro + Money(micros%1_000_000)
		return FromFloat(m.Float()) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMoneyString(t *testing.T) {
	cases := []struct {
		in   Money
		want string
	}{
		{0, "0.000000"},
		{1_500_000, "1.500000"},
		{-1_250_000, "-1.250000"},
		{42, "0.000042"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSplitExact(t *testing.T) {
	f := func(raw uint32, nRaw uint8) bool {
		m := Money(raw)
		n := 1 + int(nRaw%10)
		parts := m.Split(n)
		if len(parts) != n {
			return false
		}
		var sum Money
		for _, p := range parts {
			if p < 0 {
				return false
			}
			sum += p
		}
		// Parts differ by at most one micro.
		min, max := parts[0], parts[0]
		for _, p := range parts {
			if p < min {
				min = p
			}
			if p > max {
				max = p
			}
		}
		return sum == m && max-min <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"n=0":      func() { Money(10).Split(0) },
		"negative": func() { Money(-1).Split(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestUtilityEquation1(t *testing.T) {
	// Winner before deadline: v - p.
	if u := Utility(100, 60, true, 3, 5); u != 40 {
		t.Errorf("utility = %v", u)
	}
	// Winner after deadline: 0.
	if u := Utility(100, 60, true, 6, 5); u != 0 {
		t.Errorf("post-deadline utility = %v", u)
	}
	// Loser: 0.
	if u := Utility(100, 60, false, 3, 5); u != 0 {
		t.Errorf("loser utility = %v", u)
	}
	// Deadline boundary is inclusive (delta = 1 when t <= tau).
	if u := Utility(100, 60, true, 5, 5); u != 40 {
		t.Errorf("boundary utility = %v", u)
	}
	// Winning above valuation yields negative utility (overpaying).
	if u := Utility(50, 60, true, 0, 5); u != -10 {
		t.Errorf("overpay utility = %v", u)
	}
}

func TestSurplus(t *testing.T) {
	if s := Surplus(100, 60, true); s != 40 {
		t.Errorf("surplus = %v", s)
	}
	if s := Surplus(100, 60, false); s != 0 {
		t.Errorf("loser surplus = %v", s)
	}
}

func TestPatienceFunctions(t *testing.T) {
	// Deadline step: 1 through the deadline, 0 after.
	if DeadlinePatience(5, 5) != 1 || DeadlinePatience(6, 5) != 0 {
		t.Error("DeadlinePatience step broken")
	}
	// Linear decay: full at t=0, decreasing, 0 past deadline.
	if LinearDecayPatience(0, 9) != 1 {
		t.Errorf("linear at 0 = %v", LinearDecayPatience(0, 9))
	}
	prev := 1.1
	for tt := 0; tt <= 9; tt++ {
		p := LinearDecayPatience(tt, 9)
		if p <= 0 || p >= prev {
			t.Fatalf("linear not strictly decreasing positive at t=%d: %v", tt, p)
		}
		prev = p
	}
	if LinearDecayPatience(10, 9) != 0 || LinearDecayPatience(-1, 9) != 0 {
		t.Error("linear outside range not 0")
	}
	// Exponential decay: halves every halfLife.
	exp := ExpDecayPatience(2)
	if exp(0, 100) != 1 {
		t.Errorf("exp at 0 = %v", exp(0, 100))
	}
	if got := exp(2, 100); got < 0.499 || got > 0.501 {
		t.Errorf("exp at halfLife = %v, want 0.5", got)
	}
	if exp(101, 100) != 0 {
		t.Error("exp past deadline not 0")
	}
}

func TestExpDecayPatiencePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("halfLife 0 accepted")
		}
	}()
	ExpDecayPatience(0)
}

func TestUtilityWith(t *testing.T) {
	// Generalized Equation 1 with linear decay at mid-horizon.
	u := UtilityWith(LinearDecayPatience, 100, 60, true, 5, 9)
	want := (1 - 5.0/10) * 40
	if u != want {
		t.Errorf("UtilityWith = %v, want %v", u, want)
	}
	if UtilityWith(LinearDecayPatience, 100, 60, false, 5, 9) != 0 {
		t.Error("loser utility not 0")
	}
	// With the deadline step it reduces to Utility.
	if UtilityWith(DeadlinePatience, 100, 60, true, 3, 5) != Utility(100, 60, true, 3, 5) {
		t.Error("UtilityWith(DeadlinePatience) != Utility")
	}
}
