package market

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/core"
)

func TestFromFloatRounding(t *testing.T) {
	cases := []struct {
		in   float64
		want Money
	}{
		{0, 0},
		{1, 1_000_000},
		{1.5, 1_500_000},
		{0.0000005, 1}, // rounds half away from zero
		{-1.25, -1_250_000},
		{-0.0000005, -1},
	}
	for _, c := range cases {
		if got := FromFloat(c.in); got != c.want {
			t.Errorf("FromFloat(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestFromFloatOverflowSaturates(t *testing.T) {
	// f*1e6 past the int64 range must clamp, not wrap: Go's float->int
	// conversion is undefined on overflow and produces MinInt64 on amd64,
	// which would turn an absurdly large price into a negative ledger
	// entry.
	const maxMoney = Money(math.MaxInt64)
	const minMoney = Money(math.MinInt64)
	cases := []struct {
		name string
		in   float64
		want Money
	}{
		{"just over max", float64(math.MaxInt64) / float64(Micro) * 1.001, maxMoney},
		{"2^63 units", math.Pow(2, 63), maxMoney},
		{"huge positive", 1e300, maxMoney},
		{"+inf", math.Inf(1), maxMoney},
		{"just under min", -float64(math.MaxInt64) / float64(Micro) * 1.001, minMoney},
		{"huge negative", -1e300, minMoney},
		{"-inf", math.Inf(-1), minMoney},
		{"nan", math.NaN(), 0},
		// Near-boundary values that do fit must still convert normally.
		{"large in range", 9e12, 9e12 * 1_000_000},
		{"large negative in range", -9e12, -9e12 * 1_000_000},
	}
	for _, c := range cases {
		if got := FromFloat(c.in); got != c.want {
			t.Errorf("%s: FromFloat(%v) = %d, want %d", c.name, c.in, got, c.want)
		}
	}
	// The sign must never flip: a non-negative float never becomes
	// negative Money and vice versa, across magnitudes spanning the
	// overflow boundary.
	for exp := 0.0; exp < 310; exp++ {
		f := math.Pow(10, exp)
		if FromFloat(f) < 0 {
			t.Fatalf("FromFloat(1e%v) went negative: %d", exp, FromFloat(f))
		}
		if FromFloat(-f) > 0 {
			t.Fatalf("FromFloat(-1e%v) went positive: %d", exp, FromFloat(-f))
		}
	}
}

func TestFromFloatMonotoneAcrossBoundary(t *testing.T) {
	// Saturation keeps FromFloat monotone: growing inputs never produce
	// shrinking Money.
	inputs := []float64{
		0, 1, 1e6, 1e12, float64(math.MaxInt64) / float64(Micro) * 0.999,
		float64(math.MaxInt64) / float64(Micro) * 1.001, 1e200, math.Inf(1),
	}
	prev := Money(math.MinInt64)
	for _, f := range inputs {
		got := FromFloat(f)
		if got < prev {
			t.Fatalf("FromFloat not monotone: f=%v gave %d after %d", f, got, prev)
		}
		prev = got
	}
}

func TestSplitFractionalCents(t *testing.T) {
	// Epoch-revenue splits that do not divide evenly must distribute the
	// remainder micro-by-micro to the earliest parts and never mint or
	// lose a micro.
	cases := []struct {
		name string
		m    Money
		n    int
		want []Money
	}{
		{"one micro two ways", 1, 2, []Money{1, 0}},
		{"seven micros three ways", 7, 3, []Money{3, 2, 2}},
		{"cent across three sellers", 10_000, 3, []Money{3334, 3333, 3333}},
		{"unit across seven", Micro, 7, []Money{142858, 142857, 142857, 142857, 142857, 142857, 142857}},
		{"zero", 0, 4, []Money{0, 0, 0, 0}},
		{"n exceeds micros", 3, 5, []Money{1, 1, 1, 0, 0}},
	}
	for _, c := range cases {
		got := c.m.Split(c.n)
		if len(got) != len(c.want) {
			t.Fatalf("%s: got %d parts, want %d", c.name, len(got), len(c.want))
		}
		var sum Money
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s: part %d = %d, want %d", c.name, i, got[i], c.want[i])
			}
			sum += got[i]
		}
		if sum != c.m {
			t.Errorf("%s: parts sum to %d, want %d", c.name, sum, c.m)
		}
	}
}

func TestSubmitBidRejectsBadAmounts(t *testing.T) {
	m := MustNew(Config{
		Engine: core.Config{
			Candidates: auction.LinearGrid(10, 100, 8),
			EpochSize:  4,
		},
		Seed: 1,
	})
	if err := m.RegisterBuyer("b"); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterSeller("s"); err != nil {
		t.Fatal(err)
	}
	if err := m.UploadDataset("s", "d"); err != nil {
		t.Fatal(err)
	}
	for _, amount := range []float64{0, -1, -1e300, math.NaN(), math.Inf(-1)} {
		if _, err := m.SubmitBid("b", "d", amount); !errors.Is(err, ErrBadBid) {
			t.Errorf("SubmitBid(amount=%v) err = %v, want ErrBadBid", amount, err)
		}
	}
	// The rejections must leave no trace in the books.
	if rev, spent, bal := m.Totals(); rev != 0 || spent != 0 || bal != 0 {
		t.Errorf("rejected bids moved money: revenue=%d spent=%d balances=%d", rev, spent, bal)
	}
}

func TestFloatRoundTrip(t *testing.T) {
	f := func(units int32, micros int32) bool {
		m := Money(units)*Micro + Money(micros%1_000_000)
		return FromFloat(m.Float()) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMoneyString(t *testing.T) {
	cases := []struct {
		in   Money
		want string
	}{
		{0, "0.000000"},
		{1_500_000, "1.500000"},
		{-1_250_000, "-1.250000"},
		{42, "0.000042"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSplitExact(t *testing.T) {
	f := func(raw uint32, nRaw uint8) bool {
		m := Money(raw)
		n := 1 + int(nRaw%10)
		parts := m.Split(n)
		if len(parts) != n {
			return false
		}
		var sum Money
		for _, p := range parts {
			if p < 0 {
				return false
			}
			sum += p
		}
		// Parts differ by at most one micro.
		min, max := parts[0], parts[0]
		for _, p := range parts {
			if p < min {
				min = p
			}
			if p > max {
				max = p
			}
		}
		return sum == m && max-min <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"n=0":      func() { Money(10).Split(0) },
		"negative": func() { Money(-1).Split(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestUtilityEquation1(t *testing.T) {
	// Winner before deadline: v - p.
	if u := Utility(100, 60, true, 3, 5); u != 40 {
		t.Errorf("utility = %v", u)
	}
	// Winner after deadline: 0.
	if u := Utility(100, 60, true, 6, 5); u != 0 {
		t.Errorf("post-deadline utility = %v", u)
	}
	// Loser: 0.
	if u := Utility(100, 60, false, 3, 5); u != 0 {
		t.Errorf("loser utility = %v", u)
	}
	// Deadline boundary is inclusive (delta = 1 when t <= tau).
	if u := Utility(100, 60, true, 5, 5); u != 40 {
		t.Errorf("boundary utility = %v", u)
	}
	// Winning above valuation yields negative utility (overpaying).
	if u := Utility(50, 60, true, 0, 5); u != -10 {
		t.Errorf("overpay utility = %v", u)
	}
}

func TestSurplus(t *testing.T) {
	if s := Surplus(100, 60, true); s != 40 {
		t.Errorf("surplus = %v", s)
	}
	if s := Surplus(100, 60, false); s != 0 {
		t.Errorf("loser surplus = %v", s)
	}
}

func TestPatienceFunctions(t *testing.T) {
	// Deadline step: 1 through the deadline, 0 after.
	if DeadlinePatience(5, 5) != 1 || DeadlinePatience(6, 5) != 0 {
		t.Error("DeadlinePatience step broken")
	}
	// Linear decay: full at t=0, decreasing, 0 past deadline.
	if LinearDecayPatience(0, 9) != 1 {
		t.Errorf("linear at 0 = %v", LinearDecayPatience(0, 9))
	}
	prev := 1.1
	for tt := 0; tt <= 9; tt++ {
		p := LinearDecayPatience(tt, 9)
		if p <= 0 || p >= prev {
			t.Fatalf("linear not strictly decreasing positive at t=%d: %v", tt, p)
		}
		prev = p
	}
	if LinearDecayPatience(10, 9) != 0 || LinearDecayPatience(-1, 9) != 0 {
		t.Error("linear outside range not 0")
	}
	// Exponential decay: halves every halfLife.
	exp := ExpDecayPatience(2)
	if exp(0, 100) != 1 {
		t.Errorf("exp at 0 = %v", exp(0, 100))
	}
	if got := exp(2, 100); got < 0.499 || got > 0.501 {
		t.Errorf("exp at halfLife = %v, want 0.5", got)
	}
	if exp(101, 100) != 0 {
		t.Error("exp past deadline not 0")
	}
}

func TestExpDecayPatiencePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("halfLife 0 accepted")
		}
	}()
	ExpDecayPatience(0)
}

func TestUtilityWith(t *testing.T) {
	// Generalized Equation 1 with linear decay at mid-horizon.
	u := UtilityWith(LinearDecayPatience, 100, 60, true, 5, 9)
	want := (1 - 5.0/10) * 40
	if u != want {
		t.Errorf("UtilityWith = %v, want %v", u, want)
	}
	if UtilityWith(LinearDecayPatience, 100, 60, false, 5, 9) != 0 {
		t.Error("loser utility not 0")
	}
	// With the deadline step it reduces to Utility.
	if UtilityWith(DeadlinePatience, 100, 60, true, 3, 5) != Utility(100, 60, true, 3, 5) {
		t.Error("UtilityWith(DeadlinePatience) != Utility")
	}
}
