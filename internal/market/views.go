package market

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/datamarket/shield/internal/command"
)

// views holds the market's lock-free read state: immutable
// copy-on-write values behind atomic pointers, republished by every
// Apply before its locks drop. Readers load one pointer and observe a
// consistent value; they never take the registry, shard, account, or
// ledger locks.
//
// Granularity is chosen per write rate:
//
//   - the outer stats and buyers maps change only on structural
//     commands (upload, withdraw, registration), which already hold the
//     registry write lock — cloning the whole map there is rare and
//     safe;
//   - each dataset's stats and each buyer's view live in their own
//     atomic cell, so the per-bid publication (every bid moves a bid
//     counter, possibly a posting price) swaps one small pointer
//     instead of cloning a map of all datasets;
//   - the books (revenue, total spend, total balances, transactions)
//     change only on sales, which are far rarer than bids; one
//     immutable booksView is republished per sale under a dedicated
//     publication mutex.
type views struct {
	clock atomic.Int64

	// stats maps each priced dataset to its diagnostic cell. The outer
	// map is copy-on-write (cloned under the registry write lock on
	// upload/compose/withdraw); each cell is overwritten in place — a
	// seqlock over per-field atomics, so the per-bid publication
	// allocates nothing — under the dataset's shard lock on every bid
	// that touches its engine.
	stats atomic.Pointer[map[DatasetID]*statsCell]

	// buyers maps each registered buyer to its view cell. The outer map
	// is copy-on-write (cloned under the registry write lock on
	// registration); cells are updated in place under the buyer's
	// account mutex, and only when the buyer wins — losing bids touch no
	// buyer-visible read state.
	buyers atomic.Pointer[map[BuyerID]*buyerCell]

	// books is the money view. booksMu serializes publication (an
	// atomic pointer swap alone would lose concurrent sales); readers
	// only Load.
	booksMu sync.Mutex
	books   atomic.Pointer[booksView]
}

// statsCell publishes one dataset's DatasetStats without allocating: a
// seqlock over per-field atomics instead of a freshly heap-allocated
// value behind an atomic pointer. Writers — bid publication under the
// dataset's shard lock, structural publication under the registry
// write lock, rebuild before sharing — are already mutually serialized
// per cell, so the sequence only has to make torn reads detectable:
// store flips it odd, writes every field, flips it even; load retries
// until it reads the same even sequence on both sides of the copy.
type statsCell struct {
	seq atomic.Uint64 // odd while a store is in flight

	bids        atomic.Int64
	allocations atomic.Int64
	epochs      atomic.Int64
	revenue     atomic.Uint64 // float64 bits
	posting     atomic.Uint64 // float64 bits
	mostLikely  atomic.Uint64 // float64 bits

	dataset DatasetID // immutable after creation
}

func newStatsCell(ds DatasetStats) *statsCell {
	c := &statsCell{dataset: ds.Dataset}
	c.store(ds)
	return c
}

func (c *statsCell) store(ds DatasetStats) {
	c.seq.Add(1)
	c.bids.Store(int64(ds.Bids))
	c.allocations.Store(int64(ds.Allocations))
	c.epochs.Store(int64(ds.Epochs))
	c.revenue.Store(math.Float64bits(ds.Revenue))
	c.posting.Store(math.Float64bits(ds.PostingPrice))
	c.mostLikely.Store(math.Float64bits(ds.MostLikelyPrice))
	c.seq.Add(1)
}

func (c *statsCell) load() DatasetStats {
	for {
		s := c.seq.Load()
		if s&1 == 0 {
			ds := DatasetStats{
				Dataset:         c.dataset,
				Bids:            int(c.bids.Load()),
				Allocations:     int(c.allocations.Load()),
				Epochs:          int(c.epochs.Load()),
				Revenue:         math.Float64frombits(c.revenue.Load()),
				PostingPrice:    math.Float64frombits(c.posting.Load()),
				MostLikelyPrice: math.Float64frombits(c.mostLikely.Load()),
			}
			if c.seq.Load() == s {
				return ds
			}
		}
		runtime.Gosched() // a store is in flight; yield and retry
	}
}

// buyerCell is one buyer's lock-free read state. The acquisition set is
// add-only (a win is its only mutation, and withdrawals don't revoke
// ownership), so it lives in a sync.Map grown in place for the buyer's
// lifetime instead of an immutable map re-copied on every win: hot
// buyers accumulate thousands of acquisitions, and an O(own
// acquisitions) copy per sale made long storms quadratic in sales.
// spent holds the absolute total, republished under the buyer's account
// mutex. The two readers (Owns, BuyerSpend) are single-field lookups,
// so no cross-field consistency is needed.
type buyerCell struct {
	acquired sync.Map     // DatasetID → true; add-only
	spent    atomic.Int64 // Money
}

func (c *buyerCell) publish(acquired map[DatasetID]bool, spent Money) {
	for k := range acquired {
		c.acquired.Store(k, true)
	}
	c.spent.Store(int64(spent))
}

// booksView is the immutable money view: the three conservation sums
// and the transaction log. txs grows by appending to the latest view's
// slice under booksMu — older views keep their shorter length and never
// observe the new element, so sharing the backing array is safe.
type booksView struct {
	revenue  Money
	spent    Money
	balances Money
	txs      []Transaction
}

func (m *Market) initViews() {
	stats := make(map[DatasetID]*statsCell)
	buyers := make(map[BuyerID]*buyerCell)
	m.vw.stats.Store(&stats)
	m.vw.buyers.Store(&buyers)
	m.vw.books.Store(&booksView{})
}

// rebuildViews derives every view from the current state. Callers must
// have exclusive access (restore path, before the market is shared).
func (m *Market) rebuildViews() {
	m.vw.clock.Store(int64(m.st.Period()))

	ids := m.st.DatasetIDs()
	stats := make(map[DatasetID]*statsCell, len(ids))
	for _, id := range ids {
		ds, err := m.st.Stats(id)
		if err != nil {
			continue
		}
		stats[id] = newStatsCell(ds)
	}
	m.vw.stats.Store(&stats)

	buyerIDs := m.st.BuyerIDs()
	buyers := make(map[BuyerID]*buyerCell, len(buyerIDs))
	for _, id := range buyerIDs {
		cell := new(buyerCell)
		m.st.InspectBuyer(id, cell.publish)
		buyers[id] = cell
	}
	m.vw.buyers.Store(&buyers)

	revenue, spent, balances := m.st.Totals()
	m.vw.books.Store(&booksView{
		revenue:  revenue,
		spent:    spent,
		balances: balances,
		txs:      m.st.Transactions(),
	})
}

// publishStructural updates the views invalidated by a structural
// command's events. Callers hold the registry write lock, so outer-map
// clones race with nothing.
func (m *Market) publishStructural(evs []command.Event) {
	for _, ev := range evs {
		switch ev.Kind {
		case command.EvTicked:
			m.vw.clock.Store(int64(ev.Period))

		case command.EvBuyerRegistered:
			old := *m.vw.buyers.Load()
			next := make(map[BuyerID]*buyerCell, len(old)+1)
			for k, v := range old {
				next[k] = v
			}
			next[ev.Buyer] = new(buyerCell)
			m.vw.buyers.Store(&next)

		case command.EvDatasetAdded:
			ds, err := m.st.Stats(ev.Dataset)
			if err != nil {
				continue
			}
			old := *m.vw.stats.Load()
			next := make(map[DatasetID]*statsCell, len(old)+1)
			for k, v := range old {
				next[k] = v
			}
			next[ev.Dataset] = newStatsCell(ds)
			m.vw.stats.Store(&next)

		case command.EvDatasetRemoved:
			old := *m.vw.stats.Load()
			next := make(map[DatasetID]*statsCell, len(old))
			for k, v := range old {
				if k != ev.Dataset {
					next[k] = v
				}
			}
			m.vw.stats.Store(&next)
		}
	}
}

// publishBid updates the views invalidated by one decided bid. The
// caller holds the registry read lock and the shard locks of the
// primary dataset and every leaf, which serializes each stats cell's
// publication with every other bid that could touch the same engines.
func (m *Market) publishBid(ev command.Event) {
	m.publishStats(ev.Dataset)
	for _, leaf := range ev.Leaves {
		// A base dataset is its own only leaf; don't publish it twice.
		if DatasetID(leaf) != ev.Dataset {
			m.publishStats(DatasetID(leaf))
		}
	}
	if ev.Tx == nil {
		return
	}

	// A sale: republish the books...
	m.vw.booksMu.Lock()
	old := m.vw.books.Load()
	m.vw.books.Store(&booksView{
		revenue:  old.revenue + ev.Tx.Price,
		spent:    old.spent + ev.Tx.Price,
		balances: old.balances + ev.Paid,
		txs:      append(old.txs, *ev.Tx),
	})
	m.vw.booksMu.Unlock()

	// ...and the winner's cell: the won dataset joins the add-only set
	// and spent is republished as the absolute total — O(1) per sale,
	// independent of how many datasets the buyer already owns.
	// Publication happens under the buyer's account mutex (inside
	// InspectBuyer) so concurrent wins by the same buyer on other shards
	// cannot overwrite this win's spend with a stale total.
	if cell, ok := (*m.vw.buyers.Load())[ev.Buyer]; ok {
		m.st.InspectBuyer(ev.Buyer, func(_ map[DatasetID]bool, spent Money) {
			cell.acquired.Store(ev.Dataset, true)
			cell.spent.Store(int64(spent))
		})
	}
}

// publishStats republishes one dataset's stats cell, in place and
// without allocating (the seqlock store). The caller holds the
// dataset's shard lock (serializing against every other publisher of
// the same cell) and the registry read lock (so the dataset cannot be
// withdrawn mid-publication).
func (m *Market) publishStats(id DatasetID) {
	cell, ok := (*m.vw.stats.Load())[id]
	if !ok {
		return
	}
	ds, err := m.st.Stats(id)
	if err != nil {
		return
	}
	cell.store(ds)
}

func sortDatasetIDs(ids []DatasetID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func sortTransactions(txs []Transaction) {
	sort.Slice(txs, func(i, j int) bool { return txs[i].Seq < txs[j].Seq })
}
