package market

import (
	"fmt"
	"sync"
	"testing"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/core"
)

// TestConcurrentStormConservesMoney is the -race workhorse: G goroutines
// bid (singly and in batches) on D datasets while Tick, ComposeDataset,
// Stats, Snapshot, and every read endpoint run concurrently. Afterwards
// the ledger must balance exactly: total revenue == sum of seller
// balances == sum of buyer spends == sum of transaction prices.
func TestConcurrentStormConservesMoney(t *testing.T) {
	m := MustNew(Config{
		Engine: core.Config{
			Candidates:    auction.LinearGrid(10, 100, 10),
			EpochSize:     4,
			BidsPerPeriod: 1,
			MinBid:        1,
		},
		Seed:   11,
		Shards: 8,
	})

	sellers := []SellerID{"s0", "s1", "s2", "s3"}
	for _, s := range sellers {
		if err := m.RegisterSeller(s); err != nil {
			t.Fatal(err)
		}
	}
	var datasets []DatasetID
	for i := 0; i < 8; i++ {
		id := DatasetID(fmt.Sprintf("d%d", i))
		if err := m.UploadDataset(sellers[i%len(sellers)], id); err != nil {
			t.Fatal(err)
		}
		datasets = append(datasets, id)
	}
	// Two derived products so bids propagate demand across shards.
	if err := m.ComposeDataset("d0+d1", "d0", "d1"); err != nil {
		t.Fatal(err)
	}
	if err := m.ComposeDataset("d2+d3+d4", "d2", "d3", "d4"); err != nil {
		t.Fatal(err)
	}
	datasets = append(datasets, "d0+d1", "d2+d3+d4")

	const buyers = 16
	var buyerIDs []BuyerID
	for i := 0; i < buyers; i++ {
		id := BuyerID(fmt.Sprintf("b%d", i))
		if err := m.RegisterBuyer(id); err != nil {
			t.Fatal(err)
		}
		buyerIDs = append(buyerIDs, id)
	}

	var wg sync.WaitGroup

	// Bidders: half bid one-by-one, half in batches. Cadence and wait
	// errors are expected mid-storm; corruption is not.
	for g, b := range buyerIDs {
		wg.Add(1)
		go func(g int, b BuyerID) {
			defer wg.Done()
			if g%2 == 0 {
				for i := 0; i < 150; i++ {
					ds := datasets[(g*7+i)%len(datasets)]
					amount := float64(5 + (g*13+i*29)%120)
					m.SubmitBid(b, ds, amount)
				}
				return
			}
			for i := 0; i < 15; i++ {
				reqs := make([]BidRequest, 0, len(datasets))
				for j, ds := range datasets {
					reqs = append(reqs, BidRequest{
						Buyer:   b,
						Dataset: ds,
						Amount:  float64(5 + (g*17+i*31+j)%120),
					})
				}
				m.SubmitBids(reqs)
			}
		}(g, b)
	}

	// Clock: periods advance throughout the storm.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			m.Tick()
		}
	}()

	// Composer: the registry keeps changing shape mid-storm.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			id := DatasetID(fmt.Sprintf("storm-%d", i))
			if err := m.ComposeDataset(id, datasets[i%8], datasets[(i+1)%8]); err != nil {
				t.Errorf("compose %s: %v", id, err)
			}
		}
	}()

	// Readers: stats, snapshots, and listings race the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			for _, ds := range datasets {
				m.Stats(ds)
			}
			m.Datasets()
			m.Revenue()
			m.Transactions()
			m.ShardStats()
			m.Period()
			if i%10 == 0 {
				m.Snapshot()
			}
		}
	}()

	wg.Wait()

	revenue := m.Revenue()
	var sellerTotal Money
	for _, s := range sellers {
		bal, err := m.SellerBalance(s)
		if err != nil {
			t.Fatal(err)
		}
		sellerTotal += bal
	}
	if sellerTotal != revenue {
		t.Fatalf("seller balances %v != revenue %v (ledger leak)", sellerTotal, revenue)
	}
	var buyerTotal Money
	for _, b := range buyerIDs {
		spent, err := m.BuyerSpend(b)
		if err != nil {
			t.Fatal(err)
		}
		buyerTotal += spent
	}
	if buyerTotal != revenue {
		t.Fatalf("buyer spends %v != revenue %v", buyerTotal, revenue)
	}
	var txTotal Money
	seen := make(map[int]bool)
	for _, tx := range m.Transactions() {
		txTotal += tx.Price
		if seen[tx.Seq] {
			t.Fatalf("duplicate transaction seq %d", tx.Seq)
		}
		seen[tx.Seq] = true
	}
	if txTotal != revenue {
		t.Fatalf("transaction total %v != revenue %v", txTotal, revenue)
	}
	if revenue <= 0 {
		t.Fatal("storm raised no revenue")
	}

	// Shard counters saw the traffic.
	var shardBids int64
	for _, ss := range m.ShardStats() {
		shardBids += ss.Bids
	}
	if shardBids <= 0 {
		t.Fatal("shard counters recorded no bids")
	}
}

// TestSubmitBidsMatchesSubmitBid pins batch semantics: a batch over
// disjoint (buyer, dataset) pairs must produce exactly the decisions the
// equivalent sequential SubmitBid calls produce on a twin market.
func TestSubmitBidsMatchesSubmitBid(t *testing.T) {
	build := func() *Market {
		m := MustNew(Config{
			Engine: core.Config{
				Candidates:    auction.LinearGrid(10, 100, 10),
				EpochSize:     4,
				BidsPerPeriod: 1,
				MinBid:        1,
			},
			Seed: 21,
		})
		if err := m.RegisterSeller("s"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			if err := m.UploadDataset("s", DatasetID(fmt.Sprintf("d%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 6; i++ {
			if err := m.RegisterBuyer(BuyerID(fmt.Sprintf("b%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		return m
	}
	batch, seq := build(), build()

	var reqs []BidRequest
	for i := 0; i < 6; i++ {
		reqs = append(reqs, BidRequest{
			Buyer:   BuyerID(fmt.Sprintf("b%d", i)),
			Dataset: DatasetID(fmt.Sprintf("d%d", i)),
			Amount:  float64(20 + i*15),
		})
	}
	got := batch.SubmitBids(reqs)
	if len(got) != len(reqs) {
		t.Fatalf("results = %d, want %d", len(got), len(reqs))
	}
	for i, r := range reqs {
		want, werr := seq.SubmitBid(r.Buyer, r.Dataset, r.Amount)
		if got[i].Err != nil || werr != nil {
			t.Fatalf("bid %d errored: batch=%v seq=%v", i, got[i].Err, werr)
		}
		if got[i].Decision != want {
			t.Fatalf("bid %d: batch %+v != sequential %+v", i, got[i].Decision, want)
		}
	}
	if batch.Revenue() != seq.Revenue() {
		t.Fatalf("revenue diverged: %v vs %v", batch.Revenue(), seq.Revenue())
	}

	// Errors surface per-entry without aborting the batch.
	res := batch.SubmitBids([]BidRequest{
		{Buyer: "ghost", Dataset: "d0", Amount: 10},
		{Buyer: "b0", Dataset: "nope", Amount: 10},
		{Buyer: "b0", Dataset: "d1", Amount: -1},
	})
	for i, want := range []error{ErrUnknownBuyer, ErrUnknownDataset, ErrBadBid} {
		if res[i].Err == nil {
			t.Fatalf("entry %d: no error, want %v", i, want)
		}
	}
	if out := batch.SubmitBids(nil); len(out) != 0 {
		t.Fatalf("empty batch returned %d results", len(out))
	}
}
