package market

import (
	"sort"
	"strconv"

	"github.com/datamarket/shield/internal/obs"
)

// telemetry holds the market's pre-bound hot-path instruments. All
// fields are bound once in Instrument, before the market serves
// traffic, so the bid path reads them without synchronization; a nil
// telemetry (the default) costs one pointer check per site.
type telemetry struct {
	// lockWait, indexed by shard, observes every shard-lock
	// acquisition: 0 for uncontended fast-path takes, the measured
	// wait otherwise — so _count is total acquisitions and the upper
	// buckets isolate real contention.
	lockWait []*obs.Histogram
	// priceEval times the engine interaction of one bid: allocation
	// decision, wait-period simulation, demand propagation and the
	// epoch price update.
	priceEval *obs.Histogram
	// batchDepth is the number of batch-submitted bids accepted but
	// not yet decided (worker-pool queue depth).
	batchDepth *obs.Gauge
	// batchSaturated counts batch bids that found every worker busy
	// and had to queue.
	batchSaturated *obs.Counter
	// scrapeErrors counts metric families whose collector failed
	// mid-scrape instead of silently dropping their samples.
	scrapeErrors *obs.Counter
	// applyStage and publishStage are the market's stages on the shared
	// shield_stage_seconds family: applying one bid to the engine state
	// (locks, pricing, books) and publishing the invalidated read views.
	applyStage   *obs.Histogram
	publishStage *obs.Histogram
}

// Instrument registers the market's metric families on t and binds the
// hot-path instruments. Call once, before the market serves traffic
// (registering the same family twice panics by design).
//
// Scrape-time families read market state through StatsAll and
// ShardStats, each of which reads the lock-free copy-on-write views in
// one consistent pass — a dataset withdrawn mid-scrape is either fully
// present or fully absent, never half-reported, and a scrape never
// blocks a bid.
func (m *Market) Instrument(t *obs.Telemetry) {
	r := t.Registry

	tel := &telemetry{
		priceEval: r.Histogram("shield_price_evaluate_seconds",
			"Time inside the pricing engine per bid: allocation, wait simulation, demand propagation, epoch update.",
			obs.LatencyBuckets()),
		batchDepth: r.Gauge("shield_batch_queue_depth",
			"Batch-submitted bids accepted but not yet decided by the worker pool."),
		batchSaturated: r.Counter("shield_batch_pool_saturated_total",
			"Batch bids that found every worker busy and had to queue."),
		scrapeErrors: r.Counter("shield_metrics_scrape_errors_total",
			"Metric families whose collector failed during a scrape (samples would otherwise be silently dropped)."),
		applyStage:   t.Stage("apply"),
		publishStage: t.Stage("publish"),
	}
	lockWaitVec := r.HistogramVec("shield_shard_lock_wait_seconds",
		"Shard-lock acquisition wait per shard (0 for uncontended takes; _count is total acquisitions).",
		obs.LatencyBuckets(), "shard")
	tel.lockWait = make([]*obs.Histogram, len(m.shards))
	for i := range m.shards {
		tel.lockWait[i] = lockWaitVec.With(strconv.Itoa(i))
	}
	r.OnCollectError(func(string) { tel.scrapeErrors.Inc() })

	// Market-level books.
	r.Collect("shield_market_revenue_units", "Total revenue raised across all datasets.",
		obs.KindCounter, func(emit func(float64, ...string)) {
			emit(m.Revenue().Float())
		})
	r.Collect("shield_market_transactions_total", "Completed sales.",
		obs.KindCounter, func(emit func(float64, ...string)) {
			emit(float64(len(m.Transactions())))
		})
	r.Collect("shield_market_period", "Current market period.",
		obs.KindGauge, func(emit func(float64, ...string)) {
			emit(float64(m.Period()))
		})

	// Per-dataset engine diagnostics. Each family scans one consistent
	// StatsAll snapshot; the posting price stays operator-only (the
	// registry is served behind the operator gate).
	perDataset := func(name, help string, kind obs.Kind, value func(DatasetStats) float64) {
		r.Collect(name, help, kind, func(emit func(float64, ...string)) {
			for _, d := range m.StatsAll() {
				emit(value(d), "dataset", string(d.Dataset))
			}
		})
	}
	perDataset("shield_dataset_bids_total", "Bids evaluated per dataset.",
		obs.KindCounter, func(d DatasetStats) float64 { return float64(d.Bids) })
	perDataset("shield_dataset_allocations_total", "Winning bids per dataset.",
		obs.KindCounter, func(d DatasetStats) float64 { return float64(d.Allocations) })
	perDataset("shield_dataset_epochs_total", "Completed pricing epochs per dataset.",
		obs.KindCounter, func(d DatasetStats) float64 { return float64(d.Epochs) })
	perDataset("shield_dataset_revenue_units", "Revenue per dataset.",
		obs.KindCounter, func(d DatasetStats) float64 { return d.Revenue })
	perDataset("shield_dataset_posting_price", "Current posting price per dataset (operator only).",
		obs.KindGauge, func(d DatasetStats) float64 { return d.PostingPrice })

	// Per-shard lock diagnostics.
	perShard := func(name, help string, kind obs.Kind, value func(ShardStats) float64) {
		r.Collect(name, help, kind, func(emit func(float64, ...string)) {
			for _, sh := range m.ShardStats() {
				emit(value(sh), "shard", strconv.Itoa(sh.Shard))
			}
		})
	}
	perShard("shield_shard_datasets", "Datasets currently hashed to each lock shard.",
		obs.KindGauge, func(s ShardStats) float64 { return float64(s.Datasets) })
	perShard("shield_shard_bids_total", "Bids routed through each lock shard.",
		obs.KindCounter, func(s ShardStats) float64 { return float64(s.Bids) })
	perShard("shield_shard_lock_contention_total", "Shard-lock acquisitions that had to wait.",
		obs.KindCounter, func(s ShardStats) float64 { return float64(s.Contention) })
	perShard("shield_shard_bid_latency_seconds_total", "Cumulative wall time inside locked bid sections per shard.",
		obs.KindCounter, func(s ShardStats) float64 { return s.BidLatency.Seconds() })

	m.tel = tel
}

// StatsAll returns the diagnostic snapshot of every dataset, sorted by
// ID, lock-free: one atomic load of the copy-on-write stats view fixes
// the dataset population (a concurrent withdraw or upload is either
// fully reflected or not at all), and each dataset's value is the
// immutable cell published by the last bid that touched its engine
// under that engine's shard lock.
func (m *Market) StatsAll() []DatasetStats {
	stats := *m.vw.stats.Load()
	out := make([]DatasetStats, 0, len(stats))
	for _, cell := range stats {
		out = append(out, cell.load())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dataset < out[j].Dataset })
	return out
}
