package market

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/core"
)

func testMarket(t *testing.T) *Market {
	t.Helper()
	m, err := New(Config{
		Engine: core.Config{
			Candidates:    auction.LinearGrid(10, 100, 10),
			EpochSize:     4,
			BidsPerPeriod: 1,
			MinBid:        1,
		},
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func setupBasic(t *testing.T) *Market {
	t.Helper()
	m := testMarket(t)
	for _, s := range []SellerID{"alice", "bob"} {
		if err := m.RegisterSeller(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.RegisterBuyer("carol"); err != nil {
		t.Fatal(err)
	}
	if err := m.UploadDataset("alice", "weather"); err != nil {
		t.Fatal(err)
	}
	if err := m.UploadDataset("bob", "traffic"); err != nil {
		t.Fatal(err)
	}
	if err := m.ComposeDataset("weather+traffic", "weather", "traffic"); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewRejectsBadEngine(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("bad engine template accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(Config{})
}

func TestRegistrationErrors(t *testing.T) {
	m := testMarket(t)
	if err := m.RegisterBuyer(""); !errors.Is(err, ErrEmptyID) {
		t.Errorf("empty buyer: %v", err)
	}
	if err := m.RegisterSeller(""); !errors.Is(err, ErrEmptyID) {
		t.Errorf("empty seller: %v", err)
	}
	if err := m.RegisterBuyer("b"); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterBuyer("b"); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("dup buyer: %v", err)
	}
	if err := m.RegisterSeller("s"); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterSeller("s"); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("dup seller: %v", err)
	}
	if err := m.UploadDataset("ghost", "d"); !errors.Is(err, ErrUnknownSeller) {
		t.Errorf("unknown seller upload: %v", err)
	}
	if err := m.UploadDataset("s", ""); !errors.Is(err, ErrEmptyID) {
		t.Errorf("empty dataset: %v", err)
	}
	if err := m.UploadDataset("s", "d"); err != nil {
		t.Fatal(err)
	}
	if err := m.UploadDataset("s", "d"); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("dup dataset: %v", err)
	}
	if err := m.ComposeDataset("x", "d", "missing"); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("compose with missing: %v", err)
	}
	if err := m.ComposeDataset("d", "d"); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("compose dup id: %v", err)
	}
}

func TestSubmitBidValidation(t *testing.T) {
	m := setupBasic(t)
	if _, err := m.SubmitBid("carol", "weather", 0); !errors.Is(err, ErrBadBid) {
		t.Errorf("zero bid: %v", err)
	}
	if _, err := m.SubmitBid("carol", "weather", -5); !errors.Is(err, ErrBadBid) {
		t.Errorf("negative bid: %v", err)
	}
	if _, err := m.SubmitBid("ghost", "weather", 10); !errors.Is(err, ErrUnknownBuyer) {
		t.Errorf("unknown buyer: %v", err)
	}
	if _, err := m.SubmitBid("carol", "nope", 10); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("unknown dataset: %v", err)
	}
}

func TestOneBidPerPeriod(t *testing.T) {
	m := setupBasic(t)
	// A sure-lose bid (above floor, below all candidates).
	if _, err := m.SubmitBid("carol", "weather", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SubmitBid("carol", "weather", 2); !errors.Is(err, ErrBidTooSoon) {
		t.Fatalf("second bid same period: %v", err)
	}
	// Bidding on a different dataset in the same period is allowed.
	if _, err := m.SubmitBid("carol", "traffic", 2); err != nil {
		t.Fatalf("different dataset same period: %v", err)
	}
}

func TestWinningBidPaysAndTransfersToSeller(t *testing.T) {
	m := setupBasic(t)
	d, err := m.SubmitBid("carol", "weather", 1000) // above every candidate
	if err != nil {
		t.Fatal(err)
	}
	if !d.Allocated || d.PricePaid <= 0 || d.WaitPeriods != 0 {
		t.Fatalf("decision = %+v", d)
	}
	if rev := m.Revenue(); rev != d.PricePaid {
		t.Fatalf("revenue %v != price %v", rev, d.PricePaid)
	}
	bal, err := m.SellerBalance("alice")
	if err != nil {
		t.Fatal(err)
	}
	if bal != d.PricePaid {
		t.Fatalf("alice balance %v != price %v", bal, d.PricePaid)
	}
	spend, err := m.BuyerSpend("carol")
	if err != nil || spend != d.PricePaid {
		t.Fatalf("carol spend %v, %v", spend, err)
	}
	owns, err := m.Owns("carol", "weather")
	if err != nil || !owns {
		t.Fatalf("Owns = %v, %v", owns, err)
	}
	txs := m.Transactions()
	if len(txs) != 1 || txs[0].Buyer != "carol" || txs[0].Dataset != "weather" || txs[0].Price != d.PricePaid {
		t.Fatalf("transactions = %+v", txs)
	}
	// Re-buying is rejected.
	if _, err := m.SubmitBid("carol", "weather", 1000); !errors.Is(err, ErrAlreadyAcquired) {
		t.Fatalf("rebuy: %v", err)
	}
}

func TestDerivedSaleSplitsAcrossSellers(t *testing.T) {
	m := setupBasic(t)
	d, err := m.SubmitBid("carol", "weather+traffic", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Allocated {
		t.Fatal("high bid lost")
	}
	a, _ := m.SellerBalance("alice")
	b, _ := m.SellerBalance("bob")
	if a+b != d.PricePaid {
		t.Fatalf("split %v + %v != price %v (ledger leak)", a, b, d.PricePaid)
	}
	if diff := a - b; diff < -1 || diff > 1 {
		t.Fatalf("uneven split: %v vs %v", a, b)
	}
}

func TestLosingBidGetsWaitAndIsBlocked(t *testing.T) {
	m := setupBasic(t)
	d, err := m.SubmitBid("carol", "weather", 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Allocated {
		t.Fatal("sub-candidate bid won")
	}
	if d.PricePaid != 0 {
		t.Fatal("loser leaked a price")
	}
	if d.WaitPeriods <= 0 {
		t.Fatalf("wait = %d", d.WaitPeriods)
	}
	rem, err := m.WaitRemaining("carol", "weather")
	if err != nil || rem != d.WaitPeriods {
		t.Fatalf("WaitRemaining = %d, %v", rem, err)
	}
	m.Tick()
	if _, err := m.SubmitBid("carol", "weather", 2); !errors.Is(err, ErrWaitActive) {
		t.Fatalf("bid during wait: %v", err)
	}
	// After the wait elapses the buyer may bid again.
	for i := 1; i < d.WaitPeriods; i++ {
		m.Tick()
	}
	if _, err := m.SubmitBid("carol", "weather", 2); err != nil {
		t.Fatalf("bid after wait: %v", err)
	}
}

func TestTickAdvancesPeriodAndAllowsRebidding(t *testing.T) {
	m := setupBasic(t)
	if m.Period() != 0 {
		t.Fatal("initial period not 0")
	}
	// A winning bid does not block future periods for other datasets.
	if _, err := m.SubmitBid("carol", "weather", 1000); err != nil {
		t.Fatal(err)
	}
	if p := m.Tick(); p != 1 {
		t.Fatalf("Tick = %d", p)
	}
	if _, err := m.SubmitBid("carol", "traffic", 1000); err != nil {
		t.Fatalf("new period bid: %v", err)
	}
}

func TestBidOnDerivedPropagatesDemandToLeaves(t *testing.T) {
	m := setupBasic(t)
	before, err := m.Stats("weather")
	if err != nil {
		t.Fatal(err)
	}
	// Four losing bids on the derived dataset complete one epoch on the
	// leaf engines via propagation (leaf engines see observations).
	for i := 0; i < 4; i++ {
		m.Tick()
		if _, err := m.SubmitBid("carol", "weather+traffic", 2); err != nil {
			// Wait may block; skip blocked periods.
			if errors.Is(err, ErrWaitActive) {
				continue
			}
			t.Fatal(err)
		}
	}
	after, err := m.Stats("weather")
	if err != nil {
		t.Fatal(err)
	}
	if after.Epochs == before.Epochs && after.Bids == before.Bids {
		// Observations do not count as Bids; epochs must have advanced
		// if 4 observations arrived, unless waits blocked bids. Verify at
		// least that the engine is not untouched by checking traffic too.
		t.Skip("all derived bids blocked by waits; nothing to assert")
	}
}

func TestDatasetsSorted(t *testing.T) {
	m := setupBasic(t)
	ds := m.Datasets()
	if len(ds) != 3 {
		t.Fatalf("datasets = %v", ds)
	}
	for i := 1; i < len(ds); i++ {
		if ds[i-1] >= ds[i] {
			t.Fatalf("not sorted: %v", ds)
		}
	}
}

func TestStatsErrors(t *testing.T) {
	m := setupBasic(t)
	if _, err := m.Stats("nope"); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("Stats unknown: %v", err)
	}
	if _, err := m.SellerBalance("nope"); !errors.Is(err, ErrUnknownSeller) {
		t.Fatalf("balance unknown: %v", err)
	}
	if _, err := m.BuyerSpend("nope"); !errors.Is(err, ErrUnknownBuyer) {
		t.Fatalf("spend unknown: %v", err)
	}
	if _, err := m.Owns("nope", "weather"); !errors.Is(err, ErrUnknownBuyer) {
		t.Fatalf("owns unknown: %v", err)
	}
	if _, err := m.WaitRemaining("nope", "weather"); !errors.Is(err, ErrUnknownBuyer) {
		t.Fatalf("wait unknown: %v", err)
	}
	if _, err := m.SellerDatasets("nope"); !errors.Is(err, ErrUnknownSeller) {
		t.Fatalf("seller datasets unknown: %v", err)
	}
	ds, err := m.SellerDatasets("alice")
	if err != nil || len(ds) != 1 || ds[0] != "weather" {
		t.Fatalf("alice datasets = %v, %v", ds, err)
	}
}

func TestLedgerConservation(t *testing.T) {
	// Across many random sales, total revenue must equal the sum of all
	// seller balances exactly (integer money, no leaks).
	m := testMarket(t)
	sellers := []SellerID{"s1", "s2", "s3"}
	for _, s := range sellers {
		if err := m.RegisterSeller(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.UploadDataset("s1", "a"); err != nil {
		t.Fatal(err)
	}
	if err := m.UploadDataset("s2", "b"); err != nil {
		t.Fatal(err)
	}
	if err := m.UploadDataset("s3", "c"); err != nil {
		t.Fatal(err)
	}
	if err := m.ComposeDataset("abc", "a", "b", "c"); err != nil {
		t.Fatal(err)
	}
	if err := m.ComposeDataset("ab", "a", "b"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		buyer := BuyerID(fmt.Sprintf("buyer%d", i))
		if err := m.RegisterBuyer(buyer); err != nil {
			t.Fatal(err)
		}
		for _, ds := range []DatasetID{"a", "b", "c", "ab", "abc"} {
			amount := float64(20 + (i*13)%90)
			if _, err := m.SubmitBid(buyer, ds, amount); err != nil {
				t.Fatal(err)
			}
		}
		m.Tick()
	}
	var total Money
	for _, s := range sellers {
		bal, err := m.SellerBalance(s)
		if err != nil {
			t.Fatal(err)
		}
		total += bal
	}
	if total != m.Revenue() {
		t.Fatalf("seller balances %v != revenue %v", total, m.Revenue())
	}
	if m.Revenue() <= 0 {
		t.Fatal("no revenue raised in 1000 bids")
	}
}

func TestConcurrentBidding(t *testing.T) {
	// Run with -race: concurrent buyers on multiple datasets must not
	// corrupt the ledger.
	m := testMarket(t)
	if err := m.RegisterSeller("s"); err != nil {
		t.Fatal(err)
	}
	for _, ds := range []DatasetID{"a", "b"} {
		if err := m.UploadDataset("s", ds); err != nil {
			t.Fatal(err)
		}
	}
	const buyers = 8
	var wg sync.WaitGroup
	for i := 0; i < buyers; i++ {
		buyer := BuyerID(fmt.Sprintf("b%d", i))
		if err := m.RegisterBuyer(buyer); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(b BuyerID) {
			defer wg.Done()
			for _, ds := range []DatasetID{"a", "b"} {
				m.SubmitBid(b, ds, 1000)
			}
		}(buyer)
	}
	wg.Wait()
	bal, err := m.SellerBalance("s")
	if err != nil {
		t.Fatal(err)
	}
	if bal != m.Revenue() {
		t.Fatalf("balance %v != revenue %v", bal, m.Revenue())
	}
	if len(m.Transactions()) != buyers*2 {
		t.Fatalf("transactions = %d, want %d", len(m.Transactions()), buyers*2)
	}
}

func TestWithdrawDataset(t *testing.T) {
	m := setupBasic(t)
	// Withdrawal refused while the derived product exists.
	if err := m.WithdrawDataset("alice", "weather"); !errors.Is(err, ErrDatasetInUse) {
		t.Fatalf("withdraw with dependents: %v", err)
	}
	// Wrong owner refused.
	if err := m.WithdrawDataset("bob", "weather"); !errors.Is(err, ErrUnknownSeller) {
		t.Fatalf("withdraw by non-owner: %v", err)
	}
	// Derived datasets cannot be withdrawn by sellers.
	if err := m.WithdrawDataset("alice", "weather+traffic"); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("withdraw derived: %v", err)
	}
	// Unknown seller / dataset.
	if err := m.WithdrawDataset("ghost", "weather"); !errors.Is(err, ErrUnknownSeller) {
		t.Fatalf("unknown seller: %v", err)
	}
	if err := m.WithdrawDataset("alice", "nope"); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("unknown dataset: %v", err)
	}

	// A standalone dataset withdraws cleanly, keeping earned money.
	if err := m.UploadDataset("alice", "solo"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SubmitBid("carol", "solo", 1000); err != nil {
		t.Fatal(err)
	}
	balBefore, _ := m.SellerBalance("alice")
	if err := m.WithdrawDataset("alice", "solo"); err != nil {
		t.Fatal(err)
	}
	balAfter, _ := m.SellerBalance("alice")
	if balAfter != balBefore {
		t.Fatalf("withdrawal changed balance: %v -> %v", balBefore, balAfter)
	}
	// The dataset is gone: bids are rejected, listings shrink.
	m.Tick()
	if _, err := m.SubmitBid("carol", "solo", 10); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("bid on withdrawn dataset: %v", err)
	}
	ds, _ := m.SellerDatasets("alice")
	for _, d := range ds {
		if d == "solo" {
			t.Fatal("withdrawn dataset still listed for seller")
		}
	}
	// Buyers keep what they bought.
	owns, err := m.Owns("carol", "solo")
	if err != nil || !owns {
		t.Fatalf("buyer lost purchased dataset: %v %v", owns, err)
	}
}
