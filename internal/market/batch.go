package market

import (
	"context"
	"runtime"
	"sync"
)

// BidRequest is one bid of a batch submitted through SubmitBids.
type BidRequest struct {
	Buyer   BuyerID   `json:"buyer"`
	Dataset DatasetID `json:"dataset"`
	Amount  float64   `json:"amount"`
}

// BidResult is the outcome of one bid of a batch: either a Decision or
// the error the equivalent SubmitBid call would have returned.
type BidResult struct {
	Decision Decision
	Err      error
}

// SubmitBids places a batch of bids, fanning the work out across the
// market's shards with a bounded worker pool: bids on datasets in
// different shards execute in parallel, bids on the same dataset
// serialize on its shard in an unspecified order (batch entries are
// concurrent with each other, exactly as if each had arrived on its own
// goroutine). Results are returned in request order, one per request,
// and one failed bid never aborts the rest of the batch.
func (m *Market) SubmitBids(reqs []BidRequest) []BidResult {
	return m.SubmitBidsCtx(context.Background(), reqs)
}

// SubmitBidsCtx is SubmitBids with request context: the context (and
// any obs trace it carries) is shared by every worker, so a batch
// request's trace accumulates the spans of all its bids. On an
// instrumented market the pool also reports its queue depth (accepted
// bids not yet decided) and saturation (bids that found every worker
// busy).
func (m *Market) SubmitBidsCtx(ctx context.Context, reqs []BidRequest) []BidResult {
	out := make([]BidResult, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	if m.tel != nil {
		m.tel.batchDepth.Add(float64(len(reqs)))
	}
	done := func() {
		if m.tel != nil {
			m.tel.batchDepth.Add(-1)
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers <= 1 {
		for i, r := range reqs {
			out[i].Decision, out[i].Err = m.SubmitBidCtx(ctx, r.Buyer, r.Dataset, r.Amount)
			done()
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				r := reqs[i]
				out[i].Decision, out[i].Err = m.SubmitBidCtx(ctx, r.Buyer, r.Dataset, r.Amount)
				done()
			}
		}()
	}
	for i := range reqs {
		if m.tel == nil {
			idx <- i
			continue
		}
		// A bid that cannot be handed off immediately means every
		// worker is busy: the pool is saturated for this batch shape.
		select {
		case idx <- i:
		default:
			m.tel.batchSaturated.Inc()
			idx <- i
		}
	}
	close(idx)
	wg.Wait()
	return out
}
