package market

import (
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/datamarket/shield/internal/command"
)

// DefaultShards is the number of lock shards a Market partitions its
// datasets across when Config.Shards is zero. Sharding affects only
// concurrency, never pricing: engine seeds derive from the market seed
// and the dataset ID alone, so results are identical for any shard
// count.
const DefaultShards = 16

// shard serializes commands into the core for the datasets that hash to
// it. The shard mutex is what turns concurrent bids into the
// per-engine-serialized Apply calls command.State requires; engine
// ownership itself lives in the core, and membership (which dataset
// hashes where) is a pure function of the dataset ID.
type shard struct {
	mu sync.Mutex

	// evbuf is the shard's event scratch buffer, reused by every bid
	// whose primary dataset hashes here. Guarded by mu.
	evbuf []command.Event

	// Operator counters, updated atomically so metrics reads never take
	// the shard lock.
	bids       atomic.Int64 // bids routed through this shard
	contention atomic.Int64 // lock acquisitions that had to wait
	latencyNs  atomic.Int64 // cumulative nanoseconds inside locked bid sections
}

// newShards builds n shards (n <= 0 selects DefaultShards).
func newShards(n int) []*shard {
	if n <= 0 {
		n = DefaultShards
	}
	out := make([]*shard, n)
	for i := range out {
		out[i] = &shard{}
	}
	return out
}

// shardIndex maps a dataset to its shard by FNV-1a hash.
func (m *Market) shardIndex(id DatasetID) int {
	h := fnv.New64a()
	h.Write([]byte(id))
	return int(h.Sum64() % uint64(len(m.shards)))
}

func (m *Market) shardFor(id DatasetID) *shard {
	return m.shards[m.shardIndex(id)]
}

// lockSet returns the sorted, deduplicated shard indices a bid on
// dataset must hold: the dataset's own shard plus, for derived
// datasets, the shards of every leaf engine the demand signal
// propagates to. Callers must hold the registry read lock.
func (m *Market) lockSet(dataset DatasetID, leaves []string) []int {
	idx := []int{m.shardIndex(dataset)}
	for _, leaf := range leaves {
		idx = append(idx, m.shardIndex(DatasetID(leaf)))
	}
	sort.Ints(idx)
	uniq := idx[:1]
	for _, i := range idx[1:] {
		if i != uniq[len(uniq)-1] {
			uniq = append(uniq, i)
		}
	}
	return uniq
}

// lockShards acquires the given shard indices in ascending order (the
// global shard lock order — see DESIGN.md "Concurrency model"),
// counting contended acquisitions. On an instrumented market every
// acquisition lands in that shard's lock-wait histogram: 0 for
// uncontended fast-path takes, the measured wait otherwise — so the
// histogram count is total acquisitions and the upper buckets isolate
// real contention.
func (m *Market) lockShards(idx []int) {
	for _, i := range idx {
		sh := m.shards[i]
		if sh.mu.TryLock() {
			if m.tel != nil {
				m.tel.lockWait[i].Observe(0)
			}
			continue
		}
		sh.contention.Add(1)
		if m.tel == nil {
			sh.mu.Lock()
			continue
		}
		waitStart := time.Now()
		sh.mu.Lock()
		m.tel.lockWait[i].ObserveSince(waitStart)
	}
}

// unlockShards releases the given shard indices.
func (m *Market) unlockShards(idx []int) {
	for _, i := range idx {
		m.shards[i].mu.Unlock()
	}
}

// ShardStats is an operator-facing snapshot of one lock shard: how many
// datasets hash to it and how its hot path is behaving. It backs the
// per-shard series of the /metrics endpoint.
type ShardStats struct {
	Shard      int           // shard index
	Datasets   int           // datasets currently hashed to this shard
	Bids       int64         // bids routed through this shard
	Contention int64         // shard-lock acquisitions that had to wait
	BidLatency time.Duration // cumulative wall time inside locked bid sections
}

// NumShards returns the number of lock shards.
func (m *Market) NumShards() int { return len(m.shards) }

// ShardStats returns a snapshot of every shard's counters (lock-free:
// membership comes from the stats view, counters are atomics).
func (m *Market) ShardStats() []ShardStats {
	counts := make([]int, len(m.shards))
	for id := range *m.vw.stats.Load() {
		counts[m.shardIndex(id)]++
	}
	out := make([]ShardStats, len(m.shards))
	for i, sh := range m.shards {
		out[i] = ShardStats{
			Shard:      i,
			Datasets:   counts[i],
			Bids:       sh.bids.Load(),
			Contention: sh.contention.Load(),
			BidLatency: time.Duration(sh.latencyNs.Load()),
		}
	}
	return out
}
