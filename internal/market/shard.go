package market

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/datamarket/shield/internal/command"
)

// DefaultShards is the number of lock shards a Market partitions its
// datasets across when Config.Shards is zero. Sharding affects only
// concurrency, never pricing: engine seeds derive from the market seed
// and the dataset ID alone, so results are identical for any shard
// count.
const DefaultShards = 16

// shard serializes commands into the core for the datasets that hash to
// it. The shard mutex is what turns concurrent bids into the
// per-engine-serialized Apply calls command.State requires; engine
// ownership itself lives in the core, and membership (which dataset
// hashes where) is a pure function of the dataset ID.
type shard struct {
	mu sync.Mutex

	// evbuf is the shard's event scratch buffer, reused by every bid
	// whose primary dataset hashes here. Guarded by mu.
	evbuf []command.Event

	// Operator counters, updated atomically so metrics reads never take
	// the shard lock.
	bids       atomic.Int64 // bids routed through this shard
	contention atomic.Int64 // lock acquisitions that had to wait
	latencyNs  atomic.Int64 // cumulative nanoseconds inside locked bid sections
}

// newShards builds n shards (n <= 0 selects DefaultShards).
func newShards(n int) []*shard {
	if n <= 0 {
		n = DefaultShards
	}
	out := make([]*shard, n)
	for i := range out {
		out[i] = &shard{}
	}
	return out
}

// fnv1a hashes a dataset ID with FNV-1a inlined as a pure function.
// hash/fnv's New64a hands back a heap-allocated hash.Hash64, which
// would cost the bid hot path an interface allocation per lookup; the
// constants match hash/fnv exactly, so shard placement is unchanged.
func fnv1a(id DatasetID) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return h
}

// shardIndex maps a dataset to its shard by FNV-1a hash.
func (m *Market) shardIndex(id DatasetID) int {
	return int(fnv1a(id) % uint64(len(m.shards)))
}

func (m *Market) shardFor(id DatasetID) *shard {
	return m.shards[m.shardIndex(id)]
}

// maxStackLocks is the lock-set fan-out the bid path resolves without
// touching the heap: a bid on a base dataset needs one shard, and a
// derived dataset needs one per distinct leaf shard. Larger sets spill
// to an ordinary allocation via append.
const maxStackLocks = 8

// lockSet returns the sorted, deduplicated shard indices a bid on
// dataset must hold: the dataset's own shard plus, for derived
// datasets, the shards of every leaf engine the demand signal
// propagates to. The result is built in buf (the caller passes a
// stack-backed slice of capacity maxStackLocks, so the common fan-outs
// never allocate). Callers must hold the registry read lock.
func (m *Market) lockSet(dataset DatasetID, leaves []string, buf []int) []int {
	idx := append(buf[:0], m.shardIndex(dataset))
	for _, leaf := range leaves {
		idx = append(idx, m.shardIndex(DatasetID(leaf)))
	}
	// Insertion sort: n is the bid's engine fan-out (1 for base
	// datasets, a handful for derived ones) and sort.Ints would cost an
	// interface conversion per call.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	uniq := idx[:1]
	for _, i := range idx[1:] {
		if i != uniq[len(uniq)-1] {
			uniq = append(uniq, i)
		}
	}
	return uniq
}

// lockShards acquires the given shard indices in ascending order (the
// global shard lock order — see DESIGN.md "Concurrency model"),
// counting contended acquisitions. On an instrumented market every
// acquisition lands in that shard's lock-wait histogram: 0 for
// uncontended fast-path takes, the measured wait otherwise — so the
// histogram count is total acquisitions and the upper buckets isolate
// real contention.
func (m *Market) lockShards(idx []int) {
	for _, i := range idx {
		sh := m.shards[i]
		if sh.mu.TryLock() {
			if m.tel != nil {
				m.tel.lockWait[i].Observe(0)
			}
			continue
		}
		sh.contention.Add(1)
		if m.tel == nil {
			sh.mu.Lock()
			continue
		}
		waitStart := time.Now()
		sh.mu.Lock()
		m.tel.lockWait[i].ObserveSince(waitStart)
	}
}

// unlockShards releases the given shard indices.
func (m *Market) unlockShards(idx []int) {
	for _, i := range idx {
		m.shards[i].mu.Unlock()
	}
}

// ShardStats is an operator-facing snapshot of one lock shard: how many
// datasets hash to it and how its hot path is behaving. It backs the
// per-shard series of the /metrics endpoint.
type ShardStats struct {
	Shard      int           // shard index
	Datasets   int           // datasets currently hashed to this shard
	Bids       int64         // bids routed through this shard
	Contention int64         // shard-lock acquisitions that had to wait
	BidLatency time.Duration // cumulative wall time inside locked bid sections
}

// NumShards returns the number of lock shards.
func (m *Market) NumShards() int { return len(m.shards) }

// ShardStats returns a snapshot of every shard's counters (lock-free:
// membership comes from the stats view, counters are atomics).
func (m *Market) ShardStats() []ShardStats {
	counts := make([]int, len(m.shards))
	for id := range *m.vw.stats.Load() {
		counts[m.shardIndex(id)]++
	}
	out := make([]ShardStats, len(m.shards))
	for i, sh := range m.shards {
		out[i] = ShardStats{
			Shard:      i,
			Datasets:   counts[i],
			Bids:       sh.bids.Load(),
			Contention: sh.contention.Load(),
			BidLatency: time.Duration(sh.latencyNs.Load()),
		}
	}
	return out
}
