// Package mw implements the multiplicative weights update method
// (Arora, Hazan, Kale 2012) used by the paper's pricing algorithm: a set of
// experts with weights, costs in [-1, 1], the multiplicative update rule of
// Algorithm 1 lines 21-24, and sampling of an expert proportionally to its
// weight (the randomization Uncertainty-Shield requires).
//
// The regret guarantee the paper appeals to — expected cost not much worse
// than the best expert in hindsight — holds for learning rates eta in
// (0, 1/2]; see RegretBound.
package mw

import (
	"fmt"
	"math"

	"github.com/datamarket/shield/internal/rng"
)

// Expert is one option the learner can play; Value is its payload (for the
// pricing algorithm, a candidate posting price) and Weight its current
// multiplicative weight.
type Expert struct {
	Value  float64
	Weight float64
}

// Learner runs the multiplicative weights method over a fixed expert set.
// It is not safe for concurrent use.
type Learner struct {
	experts []Expert
	eta     float64
	share   float64
	rounds  int

	// cumulative per-expert cost, for regret accounting.
	cumCost []float64
	// cumulative cost actually incurred (expected under draws).
	cumIncurred float64
}

// SetShare enables fixed-share mixing (Herbster-Warmuth): after every
// update a fraction share of the total weight is redistributed uniformly,
// which bounds how concentrated the distribution can get and lets the
// learner track a drifting best expert instead of committing forever to
// a stale one. share must lie in [0, 1); 0 disables mixing (plain MW).
func (l *Learner) SetShare(share float64) {
	if share < 0 || share >= 1 {
		panic(fmt.Sprintf("mw: share %v outside [0, 1)", share))
	}
	l.share = share
}

// Share returns the fixed-share mixing fraction.
func (l *Learner) Share() float64 { return l.share }

// DefaultEta is a conservative default learning rate; the AHK analysis
// requires eta <= 1/2.
const DefaultEta = 0.5

// NewLearner builds a learner with one expert per value, all weights 1
// (Algorithm 1 line 1). It panics on an empty value set or eta outside
// (0, 0.5].
func NewLearner(values []float64, eta float64) *Learner {
	weights := make([]float64, len(values))
	for i := range weights {
		weights[i] = 1
	}
	return NewLearnerWithWeights(values, weights, eta)
}

// NewLearnerWithWeights builds a learner with explicit initial weights —
// used when an adaptive candidate grid transfers learned mass onto a new
// expert set. Weights must be positive and finite; regret accounting
// starts fresh. It panics on invalid input.
func NewLearnerWithWeights(values, weights []float64, eta float64) *Learner {
	if len(values) == 0 {
		panic("mw: NewLearner with no experts")
	}
	if len(weights) != len(values) {
		panic(fmt.Sprintf("mw: %d weights for %d experts", len(weights), len(values)))
	}
	if eta <= 0 || eta > 0.5 {
		panic(fmt.Sprintf("mw: eta %v outside (0, 0.5]", eta))
	}
	l := &Learner{
		experts: make([]Expert, len(values)),
		eta:     eta,
		cumCost: make([]float64, len(values)),
	}
	for i, v := range values {
		w := weights[i]
		if !(w > 0) || math.IsInf(w, 1) {
			panic(fmt.Sprintf("mw: weight[%d] = %v must be positive and finite", i, w))
		}
		l.experts[i] = Expert{Value: v, Weight: w}
	}
	l.renormalize()
	return l
}

// Len returns the number of experts.
func (l *Learner) Len() int { return len(l.experts) }

// Eta returns the learning rate.
func (l *Learner) Eta() float64 { return l.eta }

// Rounds returns how many Update calls have been applied.
func (l *Learner) Rounds() int { return l.rounds }

// Experts returns a copy of the expert set (values and current weights).
func (l *Learner) Experts() []Expert {
	out := make([]Expert, len(l.experts))
	copy(out, l.experts)
	return out
}

// Values returns the expert values in order.
func (l *Learner) Values() []float64 {
	out := make([]float64, len(l.experts))
	for i, e := range l.experts {
		out[i] = e.Value
	}
	return out
}

// Weights returns a copy of the current weights.
func (l *Learner) Weights() []float64 {
	out := make([]float64, len(l.experts))
	for i, e := range l.experts {
		out[i] = e.Weight
	}
	return out
}

// Probabilities returns the current weight distribution normalized to sum
// to one.
func (l *Learner) Probabilities() []float64 {
	out := make([]float64, len(l.experts))
	var total float64
	for _, e := range l.experts {
		total += e.Weight
	}
	if total <= 0 {
		// Degenerate (should not happen with costs in [-1,1]); fall back
		// to uniform so sampling remains well defined.
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i, e := range l.experts {
		out[i] = e.Weight / total
	}
	return out
}

// Draw samples an expert index proportionally to the weights — the
// randomized selection rule that implements Uncertainty-Shield while
// preserving the MW guarantee (Algorithm 1 line 25).
func (l *Learner) Draw(r *rng.RNG) int {
	return r.WeightedIndex(l.Weights())
}

// DrawValue samples an expert and returns its value.
func (l *Learner) DrawValue(r *rng.RNG) float64 {
	return l.experts[l.Draw(r)].Value
}

// ArgMax returns the index of the highest-weight expert (ties break toward
// the lower index). This is the deterministic MW-Max selection rule of
// Figure 4a, which forgoes Uncertainty-Shield.
func (l *Learner) ArgMax() int {
	best := 0
	for i, e := range l.experts {
		if e.Weight > l.experts[best].Weight {
			best = i
		}
	}
	return best
}

// Update applies one round of the multiplicative weights rule. costs[i]
// must lie in [-1, 1]: positive costs shrink weights by (1-eta)^cost,
// negative costs (gains) grow them by (1+eta)^(-cost), exactly the
// two-branch rule of Algorithm 1 lines 21-24. incurred is the cost of the
// expert actually played this round (used only for regret accounting; pass
// 0 if not tracking regret). Update panics if the cost vector length
// mismatches or any cost falls outside [-1, 1].
func (l *Learner) Update(costs []float64, incurred float64) {
	if len(costs) != len(l.experts) {
		panic(fmt.Sprintf("mw: %d costs for %d experts", len(costs), len(l.experts)))
	}
	for i, c := range costs {
		if math.IsNaN(c) || c < -1-1e-9 || c > 1+1e-9 {
			panic(fmt.Sprintf("mw: cost[%d] = %v outside [-1, 1]", i, c))
		}
		if c > 1 {
			c = 1
		}
		if c < -1 {
			c = -1
		}
		if c >= 0 {
			l.experts[i].Weight *= math.Pow(1-l.eta, c)
		} else {
			l.experts[i].Weight *= math.Pow(1+l.eta, -c)
		}
		l.cumCost[i] += c
	}
	l.cumIncurred += incurred
	l.rounds++
	if l.share > 0 {
		var total float64
		for _, e := range l.experts {
			total += e.Weight
		}
		mix := l.share * total / float64(len(l.experts))
		for i := range l.experts {
			l.experts[i].Weight = (1-l.share)*l.experts[i].Weight + mix
		}
	}
	l.renormalize()
}

// renormalize rescales weights so the maximum is 1, preventing underflow
// or overflow over long runs. Rescaling all weights by a constant does not
// change the induced probability distribution, so the algorithm's behavior
// is unaffected.
func (l *Learner) renormalize() {
	maxW := 0.0
	for _, e := range l.experts {
		if e.Weight > maxW {
			maxW = e.Weight
		}
	}
	switch {
	case maxW <= 0 || math.IsInf(maxW, 1):
		// Degenerate: reset to uniform as a last resort.
		for i := range l.experts {
			l.experts[i].Weight = 1
		}
	case maxW > 1e-6 && maxW < 1e6:
		// Comfortably in range; skip the division.
	default:
		for i := range l.experts {
			l.experts[i].Weight /= maxW
		}
	}
}

// BestExpertCumCost returns the minimum cumulative cost across experts —
// the best expert in hindsight.
func (l *Learner) BestExpertCumCost() float64 {
	if len(l.cumCost) == 0 {
		return 0
	}
	best := l.cumCost[0]
	for _, c := range l.cumCost[1:] {
		if c < best {
			best = c
		}
	}
	return best
}

// Regret returns the cumulative incurred cost minus the best expert's
// cumulative cost.
func (l *Learner) Regret() float64 {
	return l.cumIncurred - l.BestExpertCumCost()
}

// RegretBound returns the Arora-Hazan-Kale bound on expected regret after
// the learner's rounds: eta*T + ln(n)/eta, valid for costs in [-1, 1].
func (l *Learner) RegretBound() float64 {
	return l.eta*float64(l.rounds) + math.Log(float64(len(l.experts)))/l.eta
}

// OptimalEta returns the learning rate minimizing the regret bound for a
// horizon of T rounds over n experts: sqrt(ln n / T), clamped to (0, 0.5].
func OptimalEta(n, T int) float64 {
	if n < 2 || T < 1 {
		return DefaultEta
	}
	eta := math.Sqrt(math.Log(float64(n)) / float64(T))
	if eta > 0.5 {
		return 0.5
	}
	if eta <= 0 {
		return DefaultEta
	}
	return eta
}

// Clone returns a deep copy of the learner, used by the wait-period
// simulation to replay hypothetical futures without disturbing live state.
func (l *Learner) Clone() *Learner {
	c := &Learner{
		experts:     make([]Expert, len(l.experts)),
		eta:         l.eta,
		share:       l.share,
		rounds:      l.rounds,
		cumCost:     make([]float64, len(l.cumCost)),
		cumIncurred: l.cumIncurred,
	}
	copy(c.experts, l.experts)
	copy(c.cumCost, l.cumCost)
	return c
}

// Snapshot is the learner's full serializable state.
type Snapshot struct {
	Values      []float64 `json:"values"`
	Weights     []float64 `json:"weights"`
	Eta         float64   `json:"eta"`
	Share       float64   `json:"share,omitempty"`
	Rounds      int       `json:"rounds"`
	CumCost     []float64 `json:"cum_cost"`
	CumIncurred float64   `json:"cum_incurred"`
}

// Snapshot captures the learner state for serialization.
func (l *Learner) Snapshot() Snapshot {
	s := Snapshot{
		Values:      l.Values(),
		Weights:     l.Weights(),
		Eta:         l.eta,
		Share:       l.share,
		Rounds:      l.rounds,
		CumCost:     make([]float64, len(l.cumCost)),
		CumIncurred: l.cumIncurred,
	}
	copy(s.CumCost, l.cumCost)
	return s
}

// Restore reconstructs a learner from a snapshot, validating the same
// invariants the constructors enforce.
func Restore(s Snapshot) (*Learner, error) {
	if len(s.Values) == 0 || len(s.Weights) != len(s.Values) {
		return nil, fmt.Errorf("mw: snapshot has %d values, %d weights", len(s.Values), len(s.Weights))
	}
	if s.Eta <= 0 || s.Eta > 0.5 {
		return nil, fmt.Errorf("mw: snapshot eta %v outside (0, 0.5]", s.Eta)
	}
	if s.Share < 0 || s.Share >= 1 {
		return nil, fmt.Errorf("mw: snapshot share %v outside [0, 1)", s.Share)
	}
	if s.Rounds < 0 {
		return nil, fmt.Errorf("mw: snapshot rounds %d negative", s.Rounds)
	}
	if len(s.CumCost) != len(s.Values) {
		return nil, fmt.Errorf("mw: snapshot has %d cum costs for %d experts", len(s.CumCost), len(s.Values))
	}
	for i, w := range s.Weights {
		if !(w > 0) || math.IsInf(w, 1) || math.IsNaN(w) {
			return nil, fmt.Errorf("mw: snapshot weight[%d] = %v invalid", i, w)
		}
	}
	l := NewLearnerWithWeights(s.Values, s.Weights, s.Eta)
	l.share = s.Share
	l.rounds = s.Rounds
	copy(l.cumCost, s.CumCost)
	l.cumIncurred = s.CumIncurred
	return l, nil
}

// Reset restores all weights to 1 and clears regret accounting.
func (l *Learner) Reset() {
	for i := range l.experts {
		l.experts[i].Weight = 1
	}
	for i := range l.cumCost {
		l.cumCost[i] = 0
	}
	l.cumIncurred = 0
	l.rounds = 0
}
