package mw

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/datamarket/shield/internal/rng"
)

func newTestLearner(t *testing.T, n int) *Learner {
	t.Helper()
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i + 1)
	}
	return NewLearner(values, 0.3)
}

func TestNewLearnerInitialState(t *testing.T) {
	l := newTestLearner(t, 4)
	if l.Len() != 4 || l.Rounds() != 0 {
		t.Fatalf("Len/Rounds = %d/%d", l.Len(), l.Rounds())
	}
	for i, w := range l.Weights() {
		if w != 1 {
			t.Errorf("weight[%d] = %v, want 1", i, w)
		}
	}
	probs := l.Probabilities()
	for _, p := range probs {
		if math.Abs(p-0.25) > 1e-12 {
			t.Errorf("initial probabilities not uniform: %v", probs)
		}
	}
}

func TestNewLearnerPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":   func() { NewLearner(nil, 0.3) },
		"eta=0":   func() { NewLearner([]float64{1}, 0) },
		"eta>0.5": func() { NewLearner([]float64{1}, 0.6) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestUpdateDirection(t *testing.T) {
	l := newTestLearner(t, 2)
	// Expert 0 incurs cost, expert 1 gains.
	l.Update([]float64{1, -1}, 0)
	w := l.Weights()
	if !(w[0] < w[1]) {
		t.Fatalf("cost did not shrink weight: %v", w)
	}
	// Exact factors: (1-0.3)^1 = 0.7 and (1+0.3)^1 = 1.3, then
	// renormalized so max = 1 only if out of range; 1.3 is in range.
	if math.Abs(w[0]-0.7) > 1e-12 || math.Abs(w[1]-1.3) > 1e-12 {
		t.Errorf("weights = %v, want [0.7, 1.3]", w)
	}
}

func TestUpdateZeroCostKeepsWeight(t *testing.T) {
	l := newTestLearner(t, 3)
	l.Update([]float64{0, 0, 0}, 0)
	for i, w := range l.Weights() {
		if w != 1 {
			t.Errorf("weight[%d] = %v after zero-cost round", i, w)
		}
	}
}

func TestUpdatePanics(t *testing.T) {
	l := newTestLearner(t, 2)
	for name, costs := range map[string][]float64{
		"len mismatch": {1},
		"cost>1":       {2, 0},
		"cost<-1":      {0, -2},
		"NaN":          {math.NaN(), 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			l.Update(costs, 0)
		}()
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	r := rng.New(5)
	l := newTestLearner(t, 7)
	f := func(seed uint64) bool {
		costs := make([]float64, 7)
		for i := range costs {
			costs[i] = r.Uniform(-1, 1)
		}
		l.Update(costs, 0)
		var sum float64
		for _, p := range l.Probabilities() {
			if p < 0 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNoUnderflowOverLongRuns(t *testing.T) {
	l := newTestLearner(t, 3)
	// Punish expert 0 relentlessly for many rounds; weights must stay
	// finite and positive, probabilities valid.
	for i := 0; i < 100000; i++ {
		l.Update([]float64{1, 0, -1}, 0)
	}
	for i, w := range l.Weights() {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			t.Fatalf("weight[%d] = %v after long run", i, w)
		}
	}
	probs := l.Probabilities()
	if probs[0] > 1e-12 {
		t.Errorf("punished expert kept probability %v", probs[0])
	}
	if math.Abs(probs[2]-1) > 1e-6 {
		t.Errorf("rewarded expert probability %v, want ~1", probs[2])
	}
}

func TestDrawFollowsWeights(t *testing.T) {
	l := newTestLearner(t, 2)
	// Push expert 1 to dominate.
	for i := 0; i < 20; i++ {
		l.Update([]float64{1, -1}, 0)
	}
	r := rng.New(9)
	counts := [2]int{}
	for i := 0; i < 10000; i++ {
		counts[l.Draw(r)]++
	}
	if counts[1] < 9900 {
		t.Errorf("dominant expert drawn %d/10000", counts[1])
	}
}

func TestDrawValueReturnsExpertValue(t *testing.T) {
	l := NewLearner([]float64{3.5, 7.25}, 0.3)
	r := rng.New(4)
	for i := 0; i < 100; i++ {
		v := l.DrawValue(r)
		if v != 3.5 && v != 7.25 {
			t.Fatalf("DrawValue = %v", v)
		}
	}
}

func TestArgMax(t *testing.T) {
	l := newTestLearner(t, 3)
	l.Update([]float64{0.5, -1, 0}, 0)
	if got := l.ArgMax(); got != 1 {
		t.Errorf("ArgMax = %d, want 1", got)
	}
	// Ties break toward lower index.
	l2 := newTestLearner(t, 3)
	if got := l2.ArgMax(); got != 0 {
		t.Errorf("ArgMax on uniform = %d, want 0", got)
	}
}

func TestRegretBoundHolds(t *testing.T) {
	// Adversarial-ish random costs: expected regret of the sampled play
	// must stay within the AHK bound. We use the expected incurred cost
	// (sum p_i c_i) to avoid sampling noise in the test.
	r := rng.New(17)
	const n, T = 10, 2000
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	l := NewLearner(values, OptimalEta(n, T))
	for round := 0; round < T; round++ {
		costs := make([]float64, n)
		for i := range costs {
			costs[i] = r.Uniform(-1, 1)
		}
		probs := l.Probabilities()
		var expected float64
		for i := range costs {
			expected += probs[i] * costs[i]
		}
		l.Update(costs, expected)
	}
	if reg, bound := l.Regret(), l.RegretBound(); reg > bound {
		t.Errorf("regret %v exceeds bound %v", reg, bound)
	}
}

func TestRegretConvergesToBestExpert(t *testing.T) {
	// One expert is strictly better; MW must concentrate on it.
	r := rng.New(23)
	l := NewLearner([]float64{0, 1, 2, 3}, 0.2)
	for round := 0; round < 3000; round++ {
		costs := make([]float64, 4)
		for i := range costs {
			if i == 2 {
				costs[i] = r.Uniform(-1, -0.5) // expert 2 always gains
			} else {
				costs[i] = r.Uniform(0, 1)
			}
		}
		probs := l.Probabilities()
		var expected float64
		for i := range costs {
			expected += probs[i] * costs[i]
		}
		l.Update(costs, expected)
	}
	if p := l.Probabilities()[2]; p < 0.999 {
		t.Errorf("best expert probability %v, want ~1", p)
	}
}

func TestOptimalEta(t *testing.T) {
	if eta := OptimalEta(10, 100); eta <= 0 || eta > 0.5 {
		t.Errorf("OptimalEta = %v", eta)
	}
	// Tiny horizon clamps at 0.5.
	if eta := OptimalEta(100, 2); eta != 0.5 {
		t.Errorf("OptimalEta clamp = %v", eta)
	}
	// Degenerate inputs fall back to the default.
	if eta := OptimalEta(1, 100); eta != DefaultEta {
		t.Errorf("OptimalEta(1, _) = %v", eta)
	}
	if eta := OptimalEta(10, 0); eta != DefaultEta {
		t.Errorf("OptimalEta(_, 0) = %v", eta)
	}
}

func TestCloneIsolation(t *testing.T) {
	l := newTestLearner(t, 3)
	l.Update([]float64{0.5, 0, -0.5}, 0)
	c := l.Clone()
	c.Update([]float64{1, 1, 1}, 0)
	if l.Rounds() != 1 || c.Rounds() != 2 {
		t.Fatalf("rounds: live %d, clone %d", l.Rounds(), c.Rounds())
	}
	lw, cw := l.Weights(), c.Weights()
	for i := range lw {
		if lw[i] == cw[i] {
			t.Fatalf("clone shares weight state at %d", i)
		}
	}
}

func TestReset(t *testing.T) {
	l := newTestLearner(t, 3)
	l.Update([]float64{1, 0, -1}, 0.5)
	l.Reset()
	if l.Rounds() != 0 || l.Regret() != 0 {
		t.Fatalf("Reset left rounds=%d regret=%v", l.Rounds(), l.Regret())
	}
	for _, w := range l.Weights() {
		if w != 1 {
			t.Fatalf("Reset weights = %v", l.Weights())
		}
	}
}

func TestExpertsCopySemantics(t *testing.T) {
	l := newTestLearner(t, 2)
	ex := l.Experts()
	ex[0].Weight = 999
	if l.Weights()[0] == 999 {
		t.Fatal("Experts() leaked internal state")
	}
	ws := l.Weights()
	ws[0] = 999
	if l.Weights()[0] == 999 {
		t.Fatal("Weights() leaked internal state")
	}
}

func TestValues(t *testing.T) {
	l := NewLearner([]float64{5, 10, 20}, 0.25)
	vs := l.Values()
	if len(vs) != 3 || vs[0] != 5 || vs[2] != 20 {
		t.Fatalf("Values = %v", vs)
	}
	if l.Eta() != 0.25 {
		t.Fatalf("Eta = %v", l.Eta())
	}
}

func BenchmarkUpdate(b *testing.B) {
	values := make([]float64, 50)
	for i := range values {
		values[i] = float64(i)
	}
	l := NewLearner(values, 0.3)
	costs := make([]float64, 50)
	for i := range costs {
		costs[i] = float64(i%3-1) * 0.5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Update(costs, 0)
	}
}

func BenchmarkDraw(b *testing.B) {
	values := make([]float64, 50)
	for i := range values {
		values[i] = float64(i)
	}
	l := NewLearner(values, 0.3)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Draw(r)
	}
}

func TestFixedShareKeepsExplorationMass(t *testing.T) {
	plain := newTestLearner(t, 4)
	shared := newTestLearner(t, 4)
	shared.SetShare(0.05)
	if shared.Share() != 0.05 {
		t.Fatal("Share not recorded")
	}
	// Punish everyone but expert 0 for many rounds.
	costs := []float64{-1, 1, 1, 1}
	for i := 0; i < 200; i++ {
		plain.Update(costs, 0)
		shared.Update(costs, 0)
	}
	pPlain := plain.Probabilities()
	pShared := shared.Probabilities()
	// Plain MW starves the losers to ~0; fixed-share keeps a floor.
	for i := 1; i < 4; i++ {
		if pPlain[i] > 1e-9 {
			t.Fatalf("plain MW kept mass %v on loser %d", pPlain[i], i)
		}
		if pShared[i] < 0.005 {
			t.Fatalf("fixed-share starved loser %d to %v", i, pShared[i])
		}
	}
	if pShared[0] < 0.5 {
		t.Fatalf("fixed-share lost the winner: %v", pShared[0])
	}
}

func TestFixedShareTracksDrift(t *testing.T) {
	// The best expert switches halfway; fixed-share must recover much
	// faster than plain MW.
	recover := func(share float64) int {
		l := newTestLearner(t, 4)
		if share > 0 {
			l.SetShare(share)
		}
		reward := func(best int) {
			costs := make([]float64, 4)
			for i := range costs {
				if i == best {
					costs[i] = -1
				} else {
					costs[i] = 1
				}
			}
			l.Update(costs, 0)
		}
		for i := 0; i < 300; i++ {
			reward(0)
		}
		for i := 0; i < 300; i++ {
			reward(3)
			if l.ArgMax() == 3 {
				return i + 1
			}
		}
		return 301
	}
	plain := recover(0)
	shared := recover(0.05)
	if shared >= plain {
		t.Fatalf("fixed-share recovery %d not faster than plain %d", shared, plain)
	}
	if shared > 10 {
		t.Fatalf("fixed-share took %d rounds to switch", shared)
	}
}

func TestSetSharePanics(t *testing.T) {
	l := newTestLearner(t, 2)
	for _, s := range []float64{-0.1, 1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetShare(%v) did not panic", s)
				}
			}()
			l.SetShare(s)
		}()
	}
}

func TestCloneCopiesShare(t *testing.T) {
	l := newTestLearner(t, 3)
	l.SetShare(0.1)
	if c := l.Clone(); c.Share() != 0.1 {
		t.Fatalf("clone share = %v", c.Share())
	}
}

func TestLearnerSnapshotRoundTrip(t *testing.T) {
	l := newTestLearner(t, 5)
	l.SetShare(0.03)
	r := rng.New(31)
	for i := 0; i < 50; i++ {
		costs := make([]float64, 5)
		for j := range costs {
			costs[j] = r.Uniform(-1, 1)
		}
		l.Update(costs, 0.1)
	}
	snap := l.Snapshot()
	restored, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Rounds() != l.Rounds() || restored.Share() != l.Share() ||
		restored.Eta() != l.Eta() || restored.Regret() != l.Regret() {
		t.Fatalf("metadata differs")
	}
	lp, rp := l.Probabilities(), restored.Probabilities()
	for i := range lp {
		if math.Abs(lp[i]-rp[i]) > 1e-12 {
			t.Fatalf("probability %d differs: %v vs %v", i, lp[i], rp[i])
		}
	}
	// Identical behavior afterwards.
	costs := []float64{1, -1, 0.5, -0.5, 0}
	l.Update(costs, 0)
	restored.Update(costs, 0)
	if l.ArgMax() != restored.ArgMax() {
		t.Fatal("post-restore update diverged")
	}
}

func TestLearnerRestoreValidation(t *testing.T) {
	good := newTestLearner(t, 3).Snapshot()
	cases := map[string]func(*Snapshot){
		"no values":    func(s *Snapshot) { s.Values = nil; s.Weights = nil; s.CumCost = nil },
		"len mismatch": func(s *Snapshot) { s.Weights = s.Weights[:1] },
		"bad eta":      func(s *Snapshot) { s.Eta = 0 },
		"bad share":    func(s *Snapshot) { s.Share = 1 },
		"neg rounds":   func(s *Snapshot) { s.Rounds = -1 },
		"cum mismatch": func(s *Snapshot) { s.CumCost = s.CumCost[:1] },
		"bad weight":   func(s *Snapshot) { s.Weights[0] = math.NaN() },
		"zero weight":  func(s *Snapshot) { s.Weights[0] = 0 },
	}
	for name, mutate := range cases {
		s := good
		s.Values = append([]float64{}, good.Values...)
		s.Weights = append([]float64{}, good.Weights...)
		s.CumCost = append([]float64{}, good.CumCost...)
		mutate(&s)
		if _, err := Restore(s); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := Restore(good); err != nil {
		t.Fatalf("good snapshot rejected: %v", err)
	}
}
