package timeseries

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/datamarket/shield/internal/rng"
	"github.com/datamarket/shield/internal/stats"
)

func testAR() ARConfig {
	return ARConfig{AR: 0.1, Sigma: 0.01, Mean: 100, Floor: 1, N: 250}
}

func TestARConfigValidate(t *testing.T) {
	if err := testAR().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*ARConfig){
		func(c *ARConfig) { c.AR = -0.1 },
		func(c *ARConfig) { c.AR = 1 },
		func(c *ARConfig) { c.Sigma = 0 },
		func(c *ARConfig) { c.Mean = 0 },
		func(c *ARConfig) { c.Scale = -1 },
		func(c *ARConfig) { c.Floor = -1 },
		func(c *ARConfig) { c.Floor = 100 },
		func(c *ARConfig) { c.N = 0 },
		func(c *ARConfig) { c.BurnIn = -1 },
	}
	for i, mutate := range bad {
		cfg := testAR()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGenerateValuationsBasics(t *testing.T) {
	vals, err := GenerateValuations(testAR(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 250 {
		t.Fatalf("len = %d", len(vals))
	}
	for i, v := range vals {
		if v < 1 {
			t.Fatalf("vals[%d] = %v below floor", i, v)
		}
	}
	// Long-run level near Mean: the latent process is mean-zero.
	m := stats.Mean(vals)
	if m < 60 || m > 140 {
		t.Fatalf("mean valuation %v far from 100", m)
	}
	// The series must actually vary.
	if stats.StdDev(vals) < 0.5 {
		t.Fatalf("series nearly constant: std %v", stats.StdDev(vals))
	}
}

func TestGenerateValuationsDeterministic(t *testing.T) {
	a, _ := GenerateValuations(testAR(), rng.New(5))
	b, _ := GenerateValuations(testAR(), rng.New(5))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed series diverged at %d", i)
		}
	}
	c, _ := GenerateValuations(testAR(), rng.New(6))
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > len(a)/10 {
		t.Fatalf("different seeds produced %d/%d identical points", same, len(a))
	}
}

func TestGenerateValuationsRejectsBadConfig(t *testing.T) {
	if _, err := GenerateValuations(ARConfig{}, rng.New(1)); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestHigherARMeansMorePersistence(t *testing.T) {
	// Lag-1 autocorrelation of the valuation series should grow with AR.
	acf := func(ar float64) float64 {
		cfg := testAR()
		cfg.AR = ar
		cfg.N = 5000
		vals, err := GenerateValuations(cfg, rng.New(42))
		if err != nil {
			t.Fatal(err)
		}
		m := stats.Mean(vals)
		var num, den float64
		for i := 1; i < len(vals); i++ {
			num += (vals[i] - m) * (vals[i-1] - m)
		}
		for _, v := range vals {
			den += (v - m) * (v - m)
		}
		return num / den
	}
	low := acf(0.1)
	high := acf(0.9)
	if high <= low+0.3 {
		t.Fatalf("acf(0.9)=%v not clearly above acf(0.1)=%v", high, low)
	}
	if math.Abs(low-0.1) > 0.1 {
		t.Errorf("acf at AR=0.1 is %v, want ~0.1", low)
	}
}

func TestStrategicConfigValidate(t *testing.T) {
	good := StrategicConfig{PCT: 0.5, Beta: 0.25, Horizon: 4, Floor: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []StrategicConfig{
		{PCT: -0.1, Horizon: 1},
		{PCT: 1.1, Horizon: 1},
		{Beta: -0.1, Horizon: 1},
		{Beta: 1.1, Horizon: 1},
		{Horizon: 0},
		{Horizon: 1, Floor: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestTruthfulStream(t *testing.T) {
	vals := []float64{10, 20, 30}
	s := TruthfulStream(vals)
	if len(s) != 3 {
		t.Fatalf("len = %d", len(s))
	}
	for i, b := range s {
		if b.Buyer != i || b.Amount != vals[i] || b.Valuation != vals[i] || !b.Final || b.Strategic {
			t.Fatalf("bid %d = %+v", i, b)
		}
	}
}

func TestTransformPCTZeroIsTruthful(t *testing.T) {
	vals := []float64{10, 20, 30}
	s, err := Transform(vals, StrategicConfig{PCT: 0, Beta: 0.5, Horizon: 4, Floor: 1}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	truth := TruthfulStream(vals)
	if len(s) != len(truth) {
		t.Fatalf("len = %d", len(s))
	}
	for i := range s {
		if s[i] != truth[i] {
			t.Fatalf("bid %d = %+v, want %+v", i, s[i], truth[i])
		}
	}
}

func TestTransformPCTOneExpandsEveryBuyer(t *testing.T) {
	vals := []float64{100, 200}
	s, err := Transform(vals, StrategicConfig{PCT: 1, Beta: 0.25, Horizon: 3, Floor: 1}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 6 { // 2 buyers x 3 opportunities
		t.Fatalf("len = %d, want 6", len(s))
	}
	// Per-buyer order is preserved under interleaving: each buyer's bids
	// appear as low, low, truthful(final).
	wantPerBuyer := map[int][]Bid{
		0: {
			{Buyer: 0, Valuation: 100, Amount: 25, Strategic: true},
			{Buyer: 0, Valuation: 100, Amount: 25, Strategic: true},
			{Buyer: 0, Valuation: 100, Amount: 100, Strategic: true, Final: true},
		},
		1: {
			{Buyer: 1, Valuation: 200, Amount: 50, Strategic: true},
			{Buyer: 1, Valuation: 200, Amount: 50, Strategic: true},
			{Buyer: 1, Valuation: 200, Amount: 200, Strategic: true, Final: true},
		},
	}
	got := map[int][]Bid{}
	for _, b := range s {
		got[b.Buyer] = append(got[b.Buyer], b)
	}
	for buyer, want := range wantPerBuyer {
		if len(got[buyer]) != len(want) {
			t.Fatalf("buyer %d has %d bids", buyer, len(got[buyer]))
		}
		for i := range want {
			if got[buyer][i] != want[i] {
				t.Fatalf("buyer %d bid %d = %+v, want %+v", buyer, i, got[buyer][i], want[i])
			}
		}
	}
}

func TestTransformInterleavesBuyers(t *testing.T) {
	// With many multi-bid buyers, the stream must not be a sequence of
	// per-buyer bursts: some buyer's bids must be separated by another
	// buyer's bid.
	vals := make([]float64, 50)
	for i := range vals {
		vals[i] = 100
	}
	s, err := Transform(vals, StrategicConfig{PCT: 1, Beta: 0.5, Horizon: 4, Floor: 1}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	switches := 0
	for i := 1; i < len(s); i++ {
		if s[i].Buyer != s[i-1].Buyer {
			switches++
		}
	}
	// A pure burst layout has exactly 49 switches; a random interleaving
	// of 200 bids has far more.
	if switches < 100 {
		t.Fatalf("only %d buyer switches in %d bids: stream looks bursty", switches, len(s))
	}
}

func TestTransformBetaZeroBidsFloor(t *testing.T) {
	vals := []float64{100}
	s, err := Transform(vals, StrategicConfig{PCT: 1, Beta: 0, Horizon: 2, Floor: 3}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if s[0].Amount != 3 {
		t.Fatalf("min-bid amount = %v, want floor 3", s[0].Amount)
	}
	if s[1].Amount != 100 || !s[1].Final {
		t.Fatalf("final bid = %+v", s[1])
	}
}

func TestTransformHorizonOneIsTruthfulButMarked(t *testing.T) {
	s, err := Transform([]float64{50}, StrategicConfig{PCT: 1, Beta: 0.1, Horizon: 1}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 1 || s[0].Amount != 50 || !s[0].Strategic || !s[0].Final {
		t.Fatalf("H=1 stream = %+v", s)
	}
}

func TestTransformPCTFraction(t *testing.T) {
	vals := make([]float64, 5000)
	for i := range vals {
		vals[i] = 100
	}
	s, err := Transform(vals, StrategicConfig{PCT: 0.3, Beta: 0.5, Horizon: 2, Floor: 1}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	strategicBuyers := map[int]bool{}
	for _, b := range s {
		if b.Strategic {
			strategicBuyers[b.Buyer] = true
		}
	}
	frac := float64(len(strategicBuyers)) / float64(len(vals))
	if math.Abs(frac-0.3) > 0.03 {
		t.Fatalf("strategic fraction = %v, want ~0.3", frac)
	}
}

func TestTransformInvariants(t *testing.T) {
	// Property: strategic bids never exceed the valuation; every buyer's
	// last bid is truthful; stream length is consistent with horizons.
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		n := 1 + rr.Intn(100)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rr.Uniform(1, 1000)
		}
		cfg := StrategicConfig{
			PCT:     rr.Float64(),
			Beta:    rr.Float64(),
			Horizon: 1 + rr.Intn(8),
			Floor:   rr.Uniform(0, 1),
		}
		s, err := Transform(vals, cfg, rr)
		if err != nil {
			return false
		}
		lastOf := map[int]Bid{}
		for _, b := range s {
			if b.Amount > b.Valuation && b.Amount > cfg.Floor {
				return false
			}
			lastOf[b.Buyer] = b
		}
		for _, b := range lastOf {
			if !b.Final || b.Amount != b.Valuation {
				return false
			}
		}
		return len(lastOf) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAmounts(t *testing.T) {
	s := []Bid{{Amount: 1}, {Amount: 2.5}}
	a := Amounts(s)
	if len(a) != 2 || a[0] != 1 || a[1] != 2.5 {
		t.Fatalf("Amounts = %v", a)
	}
}

func TestPaperARGrid(t *testing.T) {
	g := PaperARGrid()
	if len(g) != 4 || g[0][0] != 0.1 || g[3][0] != 0.999 {
		t.Fatalf("grid = %v", g)
	}
	for _, p := range g {
		if p[1] != 0.01 {
			t.Fatalf("sigma = %v", p[1])
		}
		cfg := testAR()
		cfg.AR, cfg.Sigma = p[0], p[1]
		if err := cfg.Validate(); err != nil {
			t.Fatalf("paper grid point %v invalid: %v", p, err)
		}
	}
}
