// Package timeseries generates the bid workloads of the paper's simulation
// study (Section 7.2.1): autoregressive valuation series — each point is
// one buyer arriving with its private valuation — and the strategic-buyer
// transform governed by the triple <PCT, beta, H>.
package timeseries

import (
	"errors"
	"fmt"

	"github.com/datamarket/shield/internal/rng"
)

// ARConfig parameterizes the AR(1) valuation generator
// x_t = AR*x_{t-1} + e_t, e ~ N(0, Sigma), mapped into valuation units as
// v_t = Mean * (1 + Scale*x_t), clamped at Floor. The paper's grid
// (footnote 8) sweeps (AR, Sigma) over
// (0.1, 0.01), (0.5, 0.01), (0.9, 0.01), (0.999, 0.01).
type ARConfig struct {
	// AR is the autoregressive coefficient in [0, 1).
	AR float64
	// Sigma is the innovation standard deviation, > 0.
	Sigma float64
	// Mean is the long-run valuation level, > 0.
	Mean float64
	// Scale maps the latent AR process into relative valuation swings;
	// 0 selects a default of 20 (a Sigma of 0.01 then yields roughly
	// +-20-60% valuation movement depending on AR).
	Scale float64
	// Floor is the minimum valuation, >= 0 and < Mean.
	Floor float64
	// Ceil is the maximum valuation; 0 selects 2*Mean (the upper end of
	// the slider range the user study allows). Highly persistent series
	// (AR near 1) would otherwise wander arbitrarily far from Mean.
	Ceil float64
	// N is the number of points (buyers) to generate, >= 1. The paper
	// uses 250 points per series.
	N int
	// BurnIn steps are discarded before sampling so series start at the
	// stationary distribution; 0 selects 100.
	BurnIn int
}

// Validate checks an ARConfig.
func (c ARConfig) Validate() error {
	if c.AR < 0 || c.AR >= 1 {
		return fmt.Errorf("timeseries: AR %v outside [0, 1)", c.AR)
	}
	if !(c.Sigma > 0) {
		return fmt.Errorf("timeseries: Sigma %v must be > 0", c.Sigma)
	}
	if !(c.Mean > 0) {
		return fmt.Errorf("timeseries: Mean %v must be > 0", c.Mean)
	}
	if c.Scale < 0 {
		return errors.New("timeseries: Scale must be >= 0")
	}
	if c.Floor < 0 || c.Floor >= c.Mean {
		return errors.New("timeseries: need 0 <= Floor < Mean")
	}
	if c.Ceil != 0 && c.Ceil <= c.Mean {
		return errors.New("timeseries: need Ceil > Mean (or 0 for the default)")
	}
	if c.N < 1 {
		return errors.New("timeseries: N must be >= 1")
	}
	if c.BurnIn < 0 {
		return errors.New("timeseries: BurnIn must be >= 0")
	}
	return nil
}

// GenerateValuations returns a series of N buyer valuations from cfg,
// deterministic in r's state.
func GenerateValuations(cfg ARConfig, r *rng.RNG) ([]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Scale == 0 {
		cfg.Scale = 20
	}
	if cfg.BurnIn == 0 {
		cfg.BurnIn = 100
	}
	if cfg.Ceil == 0 {
		cfg.Ceil = 2 * cfg.Mean
	}
	x := 0.0
	for i := 0; i < cfg.BurnIn; i++ {
		x = cfg.AR*x + r.Normal(0, cfg.Sigma)
	}
	out := make([]float64, cfg.N)
	for i := range out {
		x = cfg.AR*x + r.Normal(0, cfg.Sigma)
		v := cfg.Mean * (1 + cfg.Scale*x)
		if v < cfg.Floor {
			v = cfg.Floor
		}
		if v > cfg.Ceil {
			v = cfg.Ceil
		}
		out[i] = v
	}
	return out, nil
}

// Bid is one submitted bid in a simulated stream.
type Bid struct {
	// Buyer identifies the originating buyer (index into the valuation
	// series).
	Buyer int
	// Valuation is the buyer's private valuation v_i.
	Valuation float64
	// Amount is the submitted bid b_i (<= Valuation for strategic bids).
	Amount float64
	// Strategic reports whether the originating buyer is strategic.
	Strategic bool
	// Final reports that this is the buyer's last bidding opportunity —
	// strategic buyers bid truthfully here (Section 4.1).
	Final bool
}

// StrategicConfig is the paper's <PCT, beta, H> triple describing
// strategic buyers (Section 7.2.1).
type StrategicConfig struct {
	// PCT in [0, 1] is the fraction of buyers acting strategically;
	// 0 is the fully truthful market.
	PCT float64
	// Beta in [0, 1] multiplies the true valuation to form the strategic
	// bid; 0 reproduces the paper's "min" setting, where strategic bids
	// sit at the market floor.
	Beta float64
	// Horizon is H = T_i, the strategic buyer's total bidding
	// opportunities: H-1 low bids followed by one truthful bid. >= 1.
	Horizon int
	// Floor is the lowest admissible bid, used when Beta*v falls below
	// it. >= 0.
	Floor float64
	// Burst disables the random interleaving: each buyer's bids appear
	// consecutively. Used by the interleaving ablation (X4) to show why
	// concurrent bidding is the dangerous regime — bursts of H-1 low
	// bids rarely dominate an epoch larger than the horizon.
	Burst bool
}

// Validate checks a StrategicConfig.
func (c StrategicConfig) Validate() error {
	if c.PCT < 0 || c.PCT > 1 {
		return fmt.Errorf("timeseries: PCT %v outside [0, 1]", c.PCT)
	}
	if c.Beta < 0 || c.Beta > 1 {
		return fmt.Errorf("timeseries: Beta %v outside [0, 1]", c.Beta)
	}
	if c.Horizon < 1 {
		return errors.New("timeseries: Horizon must be >= 1")
	}
	if c.Floor < 0 {
		return errors.New("timeseries: Floor must be >= 0")
	}
	return nil
}

// TruthfulStream turns a valuation series into the ideal stream where
// every buyer bids its valuation once (PCT = 0).
func TruthfulStream(valuations []float64) []Bid {
	out := make([]Bid, len(valuations))
	for i, v := range valuations {
		out[i] = Bid{Buyer: i, Valuation: v, Amount: v, Final: true}
	}
	return out
}

// Transform applies the strategic-buyer transform: each buyer is
// independently strategic with probability PCT; a strategic buyer expands
// into H-1 bids at max(Floor, Beta*v) followed by a truthful bid at v,
// replacing its single point in the stream. Truthful buyers keep their
// single truthful bid. The draw of who is strategic is deterministic in
// r's state.
//
// Buyers bid concurrently: with PCT > 0 the per-buyer bid sequences are
// interleaved uniformly at random (each buyer's own order is preserved),
// so an epoch observes a random mix of low and truthful bids — several
// strategic buyers can dominate an epoch at once, which is exactly the
// condition under which low bids overfit a small-epoch update algorithm
// (Section 3). With PCT = 0 every buyer has a single bid and the stream
// keeps the arrival order of the valuation series, preserving its
// autoregressive structure.
func Transform(valuations []float64, cfg StrategicConfig, r *rng.RNG) ([]Bid, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.PCT == 0 {
		return TruthfulStream(valuations), nil
	}
	seqs := make([][]Bid, len(valuations))
	total := 0
	for i, v := range valuations {
		if !r.Bool(cfg.PCT) {
			seqs[i] = []Bid{{Buyer: i, Valuation: v, Amount: v, Final: true}}
			total++
			continue
		}
		low := cfg.Beta * v
		if low < cfg.Floor {
			low = cfg.Floor
		}
		seq := make([]Bid, 0, cfg.Horizon)
		for k := 0; k < cfg.Horizon-1; k++ {
			seq = append(seq, Bid{Buyer: i, Valuation: v, Amount: low, Strategic: true})
		}
		seq = append(seq, Bid{Buyer: i, Valuation: v, Amount: v, Strategic: true, Final: true})
		seqs[i] = seq
		total += len(seq)
	}
	// Random riffle: shuffle a multiset of buyer indices, then emit each
	// buyer's next bid as its index comes up — a uniformly random
	// interleaving that preserves every buyer's own bid order. With
	// Burst the multiset stays ordered, yielding consecutive per-buyer
	// bursts.
	order := make([]int, 0, total)
	for bi, s := range seqs {
		for range s {
			order = append(order, bi)
		}
	}
	if !cfg.Burst {
		r.ShuffleInts(order)
	}
	out := make([]Bid, 0, total)
	next := make([]int, len(seqs))
	for _, bi := range order {
		out = append(out, seqs[bi][next[bi]])
		next[bi]++
	}
	return out, nil
}

// Amounts projects the bid amounts out of a stream.
func Amounts(stream []Bid) []float64 {
	out := make([]float64, len(stream))
	for i, b := range stream {
		out[i] = b.Amount
	}
	return out
}

// PaperARGrid returns the (AR, Sigma) pairs of footnote 8.
func PaperARGrid() [][2]float64 {
	return [][2]float64{{0.1, 0.01}, {0.5, 0.01}, {0.9, 0.01}, {0.999, 0.01}}
}
