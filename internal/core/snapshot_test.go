package core

import (
	"encoding/json"
	"testing"

	"github.com/datamarket/shield/internal/rng"
)

func TestEngineSnapshotRoundTrip(t *testing.T) {
	cfg := testConfig()
	cfg.EpochSize = 4
	e := MustNew(cfg)
	r := rng.New(21)
	// Leave the engine mid-epoch so the buffer state matters.
	for i := 0; i < 101; i++ {
		e.SubmitBid(r.Uniform(0, 120))
	}

	snap := e.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSnapshot(decoded)
	if err != nil {
		t.Fatal(err)
	}

	if restored.Revenue() != e.Revenue() || restored.Bids() != e.Bids() ||
		restored.Allocations() != e.Allocations() || restored.Epochs() != e.Epochs() {
		t.Fatalf("statistics differ: %+v vs live", restored)
	}
	if restored.PostingPrice() != e.PostingPrice() {
		t.Fatalf("price %v vs %v", restored.PostingPrice(), e.PostingPrice())
	}
	// Bit-identical decisions from here on (epoch buffer, weights and
	// randomness all carried over).
	for i := 0; i < 300; i++ {
		b := r.Uniform(0, 120)
		if d1, d2 := e.SubmitBid(b), restored.SubmitBid(b); d1 != d2 {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, d1, d2)
		}
	}
}

func TestEngineSnapshotWithRegrid(t *testing.T) {
	cfg := regridConfig()
	e := MustNew(cfg)
	for i := 0; i < 4*60; i++ {
		e.SubmitBid(60)
	}
	snap := e.Snapshot()
	restored, err := RestoreSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	// The zoomed grid carries over...
	rc := restored.Config().Candidates
	lc := e.Config().Candidates
	for i := range lc {
		if rc[i] != lc[i] {
			t.Fatalf("candidate %d differs: %v vs %v", i, rc[i], lc[i])
		}
	}
	// ...and keeps regridding identically.
	for i := 0; i < 4*40; i++ {
		if d1, d2 := e.SubmitBid(60), restored.SubmitBid(60); d1 != d2 {
			t.Fatalf("post-restore regrid diverged at %d", i)
		}
	}
	// Reset still restores the ORIGINAL grid.
	restored.Reset()
	rc = restored.Config().Candidates
	for i, c := range cfg.Candidates {
		if rc[i] != c {
			t.Fatalf("Reset after restore lost original grid at %d", i)
		}
	}
}

func TestEngineSnapshotValidation(t *testing.T) {
	e := MustNew(testConfig())
	e.SubmitBid(50)
	good := e.Snapshot()

	mutate := func(f func(*Snapshot)) Snapshot {
		data, _ := json.Marshal(good)
		var s Snapshot
		if err := json.Unmarshal(data, &s); err != nil {
			t.Fatal(err)
		}
		f(&s)
		return s
	}
	cases := map[string]Snapshot{
		"bad config":     mutate(func(s *Snapshot) { s.Config.EpochSize = 0 }),
		"no orig grid":   mutate(func(s *Snapshot) { s.OrigCandidates = nil }),
		"negative bids":  mutate(func(s *Snapshot) { s.Bids = -1 }),
		"overfull epoch": mutate(func(s *Snapshot) { s.Epoch = make([]float64, s.Config.EpochSize) }),
		"learner experts": mutate(func(s *Snapshot) {
			s.Learner.Values = s.Learner.Values[:1]
			s.Learner.Weights = s.Learner.Weights[:1]
			s.Learner.CumCost = s.Learner.CumCost[:1]
		}),
		"bad weight": mutate(func(s *Snapshot) { s.Learner.Weights[0] = -1 }),
		"bad eta":    mutate(func(s *Snapshot) { s.Learner.Eta = 2 }),
	}
	for name, s := range cases {
		if _, err := RestoreSnapshot(s); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := RestoreSnapshot(good); err != nil {
		t.Fatalf("good snapshot rejected: %v", err)
	}
}

func TestRNGSnapshotContinuesStream(t *testing.T) {
	r := rng.New(5)
	for i := 0; i < 1000; i++ {
		r.Uint64()
	}
	r.Normal(0, 1) // prime the Box-Muller spare
	snap := r.Snapshot()
	clone := rng.Restore(snap)
	for i := 0; i < 1000; i++ {
		if a, b := r.Uint64(), clone.Uint64(); a != b {
			t.Fatalf("streams diverged at %d", i)
		}
	}
	if a, b := r.Normal(1, 2), clone.Normal(1, 2); a != b {
		t.Fatal("normal draws diverged (spare not restored)")
	}
}
