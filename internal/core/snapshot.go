package core

import (
	"fmt"

	"github.com/datamarket/shield/internal/mw"
	"github.com/datamarket/shield/internal/rng"
)

// Snapshot is the engine's full serializable state: restoring it yields
// an engine that makes bit-identical decisions from that point on
// (learner weights, randomness stream, epoch buffer and statistics all
// carry over).
type Snapshot struct {
	// Config holds the engine configuration with the CURRENT candidate
	// grid (which may have moved under RegridEvery).
	Config Config `json:"config"`
	// OrigCandidates anchors adaptive regridding and Reset.
	OrigCandidates []float64    `json:"orig_candidates"`
	Learner        mw.Snapshot  `json:"learner"`
	Rand           rng.Snapshot `json:"rand"`
	Price          float64      `json:"price"`
	Epoch          []float64    `json:"epoch"`
	Revenue        float64      `json:"revenue"`
	Bids           int          `json:"bids"`
	Allocations    int          `json:"allocations"`
	Epochs         int          `json:"epochs"`
}

// Snapshot captures the engine state.
func (e *Engine) Snapshot() Snapshot {
	s := Snapshot{
		Config:         e.cfg,
		OrigCandidates: make([]float64, len(e.origCandidates)),
		Learner:        e.learner.Snapshot(),
		Rand:           e.rand.Snapshot(),
		Price:          e.price,
		Epoch:          make([]float64, len(e.epoch)),
		Revenue:        e.revenue,
		Bids:           e.bids,
		Allocations:    e.allocations,
		Epochs:         e.epochs,
	}
	// Config.Candidates is shared internal state; deep-copy it so the
	// snapshot is immune to further regrids.
	cands := make([]float64, len(e.cfg.Candidates))
	copy(cands, e.cfg.Candidates)
	s.Config.Candidates = cands
	copy(s.OrigCandidates, e.origCandidates)
	copy(s.Epoch, e.epoch)
	return s
}

// RestoreSnapshot reconstructs an engine from a snapshot.
func RestoreSnapshot(s Snapshot) (*Engine, error) {
	if err := s.Config.Validate(); err != nil {
		return nil, fmt.Errorf("core: snapshot config: %w", err)
	}
	if len(s.OrigCandidates) < 2 {
		return nil, fmt.Errorf("core: snapshot has %d original candidates", len(s.OrigCandidates))
	}
	if s.Bids < 0 || s.Allocations < 0 || s.Epochs < 0 || s.Revenue < 0 {
		return nil, fmt.Errorf("core: snapshot statistics negative")
	}
	if len(s.Epoch) >= s.Config.EpochSize && s.Config.EpochSize > 0 {
		return nil, fmt.Errorf("core: snapshot epoch buffer holds %d bids for epoch size %d",
			len(s.Epoch), s.Config.EpochSize)
	}
	learner, err := mw.Restore(s.Learner)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot learner: %w", err)
	}
	if learner.Len() != len(s.Config.Candidates) {
		return nil, fmt.Errorf("core: snapshot learner has %d experts for %d candidates",
			learner.Len(), len(s.Config.Candidates))
	}

	cfg := s.Config
	cfg.applyDefaults()
	cands := make([]float64, len(cfg.Candidates))
	copy(cands, cfg.Candidates)
	cfg.Candidates = cands

	minCand := cands[0]
	for _, c := range cands[1:] {
		if c < minCand {
			minCand = c
		}
	}
	orig := make([]float64, len(s.OrigCandidates))
	copy(orig, s.OrigCandidates)
	origLo, origHi := orig[0], orig[0]
	for _, c := range orig[1:] {
		if c < origLo {
			origLo = c
		}
		if c > origHi {
			origHi = c
		}
	}
	e := &Engine{
		cfg:            cfg,
		learner:        learner,
		rand:           rng.Restore(s.Rand),
		minCandidate:   minCand,
		origCandidates: orig,
		origLo:         origLo,
		origHi:         origHi,
		price:          s.Price,
		epoch:          append(make([]float64, 0, cfg.EpochSize), s.Epoch...),
		revenue:        s.Revenue,
		bids:           s.Bids,
		allocations:    s.Allocations,
		epochs:         s.Epochs,
	}
	return e, nil
}
