package core

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/rng"
)

func testConfig() Config {
	return Config{
		Candidates:    auction.LinearGrid(10, 100, 10),
		EpochSize:     4,
		BidsPerPeriod: 1,
		MinBid:        1,
		Seed:          42,
	}
}

func TestConfigValidate(t *testing.T) {
	base := testConfig()
	if err := base.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"one candidate", func(c *Config) { c.Candidates = []float64{5} }, "two"},
		{"zero candidate", func(c *Config) { c.Candidates = []float64{0, 5} }, "positive"},
		{"negative candidate", func(c *Config) { c.Candidates = []float64{-1, 5} }, "positive"},
		{"epoch 0", func(c *Config) { c.EpochSize = 0 }, "epoch"},
		{"eta big", func(c *Config) { c.Eta = 0.9 }, "eta"},
		{"eta negative", func(c *Config) { c.Eta = -0.1 }, "eta"},
		{"neg bids per period", func(c *Config) { c.BidsPerPeriod = -1 }, "BidsPerPeriod"},
		{"neg max wait", func(c *Config) { c.MaxWaitEpochs = -1 }, "MaxWaitEpochs"},
		{"neg min bid", func(c *Config) { c.MinBid = -1 }, "MinBid"},
		{"bad rule", func(c *Config) { c.Rule = DrawRule(9) }, "rule"},
		{"bad wait", func(c *Config) { c.Wait = WaitStrategy(9) }, "wait"},
	}
	for _, c := range cases {
		cfg := testConfig()
		c.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted empty config")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(Config{})
}

func TestInitialPriceIsCandidate(t *testing.T) {
	e := MustNew(testConfig())
	p := e.PostingPrice()
	found := false
	for _, c := range e.Config().Candidates {
		if c == p {
			found = true
		}
	}
	if !found {
		t.Fatalf("initial price %v not among candidates", p)
	}
}

func TestAllocationAndPayment(t *testing.T) {
	e := MustNew(testConfig())
	p := e.PostingPrice()
	d := e.SubmitBid(p + 1)
	if !d.Allocated || d.Price != p || d.Wait != 0 {
		t.Fatalf("winning bid decision = %+v at price %v", d, p)
	}
	if e.Revenue() != p || e.Allocations() != 1 {
		t.Fatalf("revenue/allocations = %v/%d", e.Revenue(), e.Allocations())
	}

	p2 := e.PostingPrice()
	d2 := e.SubmitBid(p2 - 1)
	if d2.Allocated {
		t.Fatal("losing bid allocated")
	}
	if d2.Wait < 0 {
		t.Fatalf("negative wait %d", d2.Wait)
	}
	if e.Revenue() != p {
		t.Fatal("losing bid changed revenue")
	}
}

func TestExactPriceBidWins(t *testing.T) {
	e := MustNew(testConfig())
	p := e.PostingPrice()
	if d := e.SubmitBid(p); !d.Allocated {
		t.Fatal("bid equal to posting price must win (b >= p)")
	}
}

func TestPriceUpdatesOnlyAtEpochBoundaries(t *testing.T) {
	cfg := testConfig()
	cfg.EpochSize = 5
	e := MustNew(cfg)
	initial := e.PostingPrice()
	for i := 0; i < 4; i++ {
		e.SubmitBid(50)
		if e.PostingPrice() != initial {
			t.Fatalf("price moved mid-epoch after %d bids", i+1)
		}
	}
	e.SubmitBid(50)
	if e.Epochs() != 1 {
		t.Fatalf("epochs = %d after E bids", e.Epochs())
	}
}

func TestEpochWithNoPositiveBidsKeepsWeights(t *testing.T) {
	cfg := testConfig()
	cfg.EpochSize = 2
	cfg.Rule = DrawMWMax
	e := MustNew(cfg)
	before := e.Weights()
	e.SubmitBid(0)
	e.SubmitBid(0)
	after := e.Weights()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("weights moved on all-zero epoch: %v -> %v", before, after)
		}
	}
}

func TestLearningConcentratesOnGoodPrice(t *testing.T) {
	// Feed a stationary stream of bids at 60: the revenue-optimal
	// candidate <= 60 (i.e. 60 itself, which is in the grid) must
	// dominate the weights.
	cfg := testConfig()
	cfg.EpochSize = 8
	e := MustNew(cfg)
	for i := 0; i < 8*200; i++ {
		e.SubmitBid(60)
	}
	if got := e.MostLikelyPrice(); got != 60 {
		t.Fatalf("MostLikelyPrice = %v, want 60", got)
	}
	// The 60-price expert should carry nearly all probability mass.
	probs := e.Probabilities()
	idx := -1
	for i, c := range e.Config().Candidates {
		if c == 60 {
			idx = i
		}
	}
	if probs[idx] < 0.99 {
		t.Fatalf("probability on 60 = %v", probs[idx])
	}
}

func TestMWRevenueTracksOptOnStationaryStream(t *testing.T) {
	cfg := testConfig()
	cfg.EpochSize = 8
	e := MustNew(cfg)
	r := rng.New(7)
	var bids []float64
	for i := 0; i < 8*400; i++ {
		b := r.Uniform(40, 80)
		bids = append(bids, b)
		e.SubmitBid(b)
	}
	_, optR := auction.OptimalPrice(bids)
	if ratio := e.Revenue() / optR; ratio < 0.7 {
		t.Fatalf("MW revenue ratio to Opt = %v, want >= 0.7", ratio)
	}
}

func TestDrawRules(t *testing.T) {
	for _, rule := range []DrawRule{DrawMW, DrawMWMax, DrawAdHoc, DrawRandom} {
		cfg := testConfig()
		cfg.Rule = rule
		cfg.EpochSize = 2
		e := MustNew(cfg)
		for i := 0; i < 100; i++ {
			e.SubmitBid(50)
			p := e.PostingPrice()
			ok := false
			for _, c := range cfg.Candidates {
				if c == p {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("%v: price %v not a candidate", rule, p)
			}
		}
	}
}

func TestMWMaxIsDeterministicGivenWeights(t *testing.T) {
	cfg := testConfig()
	cfg.Rule = DrawMWMax
	e1 := MustNew(cfg)
	cfg.Seed = 999 // different randomness must not matter for MW-Max
	e2 := MustNew(cfg)
	for i := 0; i < 200; i++ {
		b := 30 + float64(i%5)*10
		e1.SubmitBid(b)
		e2.SubmitBid(b)
		if e1.PostingPrice() != e2.PostingPrice() {
			t.Fatalf("MW-Max diverged at bid %d", i)
		}
	}
}

func TestAdHocStaysNearArgMax(t *testing.T) {
	cfg := testConfig()
	cfg.Rule = DrawAdHoc
	cfg.AdHocNeighborhood = 1
	cfg.EpochSize = 4
	e := MustNew(cfg)
	// Train toward 60 (index 5 in grid 10..100 step 10).
	for i := 0; i < 4*300; i++ {
		e.SubmitBid(60)
	}
	// Now every drawn price must be within one grid step of the argmax.
	for i := 0; i < 200; i++ {
		e.SubmitBid(60)
		p := e.PostingPrice()
		center := e.MostLikelyPrice()
		if p < center-10-1e-9 || p > center+10+1e-9 {
			t.Fatalf("AdHoc price %v strayed from argmax %v", p, center)
		}
	}
}

func TestRandomRuleIgnoresBids(t *testing.T) {
	cfg := testConfig()
	cfg.Rule = DrawRandom
	cfg.EpochSize = 1
	e := MustNew(cfg)
	seen := map[float64]bool{}
	for i := 0; i < 500; i++ {
		e.SubmitBid(60)
		seen[e.PostingPrice()] = true
	}
	if len(seen) < len(cfg.Candidates)-1 {
		t.Fatalf("Random rule drew only %d distinct prices", len(seen))
	}
}

func TestWinnersNeverWait(t *testing.T) {
	e := MustNew(testConfig())
	r := rng.New(3)
	for i := 0; i < 500; i++ {
		d := e.SubmitBid(r.Uniform(0, 120))
		if d.Allocated && d.Wait != 0 {
			t.Fatalf("winner got wait %d", d.Wait)
		}
		if !d.Allocated && d.Wait < 0 {
			t.Fatalf("negative wait %d", d.Wait)
		}
	}
}

func TestWaitPeriodMonotoneInBidGap(t *testing.T) {
	// A much lower losing bid must wait at least as long as a nearly
	// competitive one (it takes more epochs for the weights to descend).
	for _, ws := range []WaitStrategy{WaitBound, WaitStable} {
		cfg := testConfig()
		cfg.Wait = ws
		cfg.Rule = DrawMWMax
		e := MustNew(cfg)
		// Warm up toward a high price.
		for i := 0; i < 4*30; i++ {
			e.SubmitBid(90)
		}
		high := e.ComputeWaitPeriod(80)
		low := e.ComputeWaitPeriod(15)
		if low < high {
			t.Errorf("%v: wait(15)=%d < wait(80)=%d", ws, low, high)
		}
	}
}

func TestWaitStrategiesConverge(t *testing.T) {
	// Both replay strategies must terminate before the cap for bids at or
	// above the cheapest candidate, and assign the full cap to bids no
	// candidate price can ever reach.
	for _, ws := range []WaitStrategy{WaitBound, WaitStable} {
		cfg := testConfig()
		cfg.Wait = ws
		cfg.Rule = DrawMWMax
		e := MustNew(cfg)
		for i := 0; i < 4*30; i++ {
			e.SubmitBid(90)
		}
		capPeriods := cfg.MaxWaitEpochs * cfg.EpochSize
		if capPeriods == 0 {
			capPeriods = 64 * cfg.EpochSize // default applied by New
		}
		for _, b := range []float64{10, 40, 80} {
			w := e.ComputeWaitPeriod(b)
			if w <= 0 {
				t.Errorf("%v: bid %v got non-positive wait %d", ws, b, w)
			}
			if w >= capPeriods {
				t.Errorf("%v: bid %v hit the simulation cap (%d)", ws, b, w)
			}
		}
		// Below every candidate: never competitive, full cap.
		if w := e.ComputeWaitPeriod(5); w < capPeriods {
			t.Errorf("%v: sub-candidate bid waited only %d < cap %d", ws, w, capPeriods)
		}
	}
}

func TestClaim3BoundWaitNeverHidesAWin(t *testing.T) {
	// Claim 3: with the Bound strategy, if the actual future is the
	// worst-case-for-the-market stream (all bids at the floor), the most
	// likely price first reaches the losing bid exactly when the computed
	// wait expires — never earlier. We run the engine deterministically
	// (MW-Max) and compare the first competitive time with the wait.
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		cfg := testConfig()
		cfg.Rule = DrawMWMax
		cfg.Wait = WaitBound
		cfg.Seed = seed
		cfg.MaxWaitEpochs = 96
		e := MustNew(cfg)
		// Random warmup.
		warm := 1 + rr.Intn(60)
		for i := 0; i < warm; i++ {
			e.SubmitBid(rr.Uniform(30, 100))
		}
		likely := e.MostLikelyPrice()
		if likely <= cfg.Candidates[0] {
			return true // nothing below the cheapest candidate to test
		}
		// A losing, not-yet-competitive bid at or above the cheapest
		// candidate (lower bids can never win at all).
		b := rr.Uniform(cfg.Candidates[0], likely-1e-9)
		w := e.ComputeWaitPeriod(b)
		if w <= 0 || w >= cfg.MaxWaitEpochs*cfg.EpochSize {
			return true // degenerate or capped: nothing to verify
		}
		// Feed the Bound future for w-1 periods (1 bid per period): the
		// bid must not become competitive early.
		for i := 0; i < w-1; i++ {
			e.SubmitBid(cfg.MinBid)
			if b >= e.MostLikelyPrice() {
				return false // would-have-won inside the wait: harm
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWaitCapRespected(t *testing.T) {
	cfg := testConfig()
	cfg.MaxWaitEpochs = 3
	cfg.Rule = DrawMWMax
	e := MustNew(cfg)
	for i := 0; i < 4*50; i++ {
		e.SubmitBid(100)
	}
	// An absurdly low bid cannot wait more than the cap allows.
	w := e.ComputeWaitPeriod(0.5)
	maxPeriods := (3+1)*cfg.EpochSize + 1 // cap epochs + partial first epoch
	if w > maxPeriods {
		t.Fatalf("wait %d beyond cap-implied %d", w, maxPeriods)
	}
}

func TestBidsPerPeriodScalesWait(t *testing.T) {
	mk := func(bpp int) *Engine {
		cfg := testConfig()
		cfg.BidsPerPeriod = bpp
		cfg.Rule = DrawMWMax
		e := MustNew(cfg)
		for i := 0; i < 4*30; i++ {
			e.SubmitBid(90)
		}
		return e
	}
	slow := mk(1)
	fast := mk(8)
	wSlow := slow.ComputeWaitPeriod(20)
	wFast := fast.ComputeWaitPeriod(20)
	if wFast > wSlow {
		t.Fatalf("faster market waits longer: bpp=8 %d > bpp=1 %d", wFast, wSlow)
	}
	if wSlow > 0 && wFast == 0 && wSlow > 8 {
		t.Fatalf("wait collapsed to zero despite long bid count: %d vs %d", wSlow, wFast)
	}
}

func TestResetRestoresInitialBehaviour(t *testing.T) {
	e := MustNew(testConfig())
	var first []Decision
	r := rng.New(5)
	bids := make([]float64, 100)
	for i := range bids {
		bids[i] = r.Uniform(0, 120)
	}
	for _, b := range bids {
		first = append(first, e.SubmitBid(b))
	}
	e.Reset()
	if e.Revenue() != 0 || e.Bids() != 0 || e.Allocations() != 0 || e.Epochs() != 0 {
		t.Fatal("Reset left statistics behind")
	}
	for i, b := range bids {
		if d := e.SubmitBid(b); d != first[i] {
			t.Fatalf("decision %d diverged after Reset: %+v != %+v", i, d, first[i])
		}
	}
}

func TestDeterministicAcrossInstances(t *testing.T) {
	cfg := testConfig()
	e1 := MustNew(cfg)
	e2 := MustNew(cfg)
	r := rng.New(8)
	for i := 0; i < 300; i++ {
		b := r.Uniform(0, 120)
		if d1, d2 := e1.SubmitBid(b), e2.SubmitBid(b); d1 != d2 {
			t.Fatalf("same-seed engines diverged at %d: %+v vs %+v", i, d1, d2)
		}
	}
}

func TestStringers(t *testing.T) {
	if DrawMW.String() != "MW" || DrawMWMax.String() != "MW-Max" ||
		DrawAdHoc.String() != "AdHoc" || DrawRandom.String() != "Random" {
		t.Error("DrawRule strings")
	}
	if DrawRule(9).String() != "unknown" {
		t.Error("unknown DrawRule string")
	}
	if WaitBound.String() != "Bound" || WaitStable.String() != "Stable" {
		t.Error("WaitStrategy strings")
	}
	if WaitStrategy(9).String() != "unknown" {
		t.Error("unknown WaitStrategy string")
	}
}

func TestRevenueNeverExceedsSumOfWinningBids(t *testing.T) {
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		cfg := testConfig()
		cfg.Seed = seed
		cfg.EpochSize = 1 + rr.Intn(8)
		e := MustNew(cfg)
		var winnersSum float64
		for i := 0; i < 200; i++ {
			b := rr.Uniform(0, 150)
			if d := e.SubmitBid(b); d.Allocated {
				if d.Price > b {
					return false // winner paid above its bid
				}
				winnersSum += b
			}
		}
		return e.Revenue() <= winnersSum+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSubmitBid(b *testing.B) {
	cfg := testConfig()
	cfg.EpochSize = 8
	e := MustNew(cfg)
	r := rng.New(1)
	bids := make([]float64, 4096)
	for i := range bids {
		bids[i] = r.Uniform(0, 120)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.SubmitBid(bids[i%len(bids)])
	}
}

func BenchmarkComputeWaitPeriod(b *testing.B) {
	cfg := testConfig()
	e := MustNew(cfg)
	for i := 0; i < 400; i++ {
		e.SubmitBid(90)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ComputeWaitPeriod(20)
	}
}

func TestObserveFeedsEpochWithoutAllocation(t *testing.T) {
	cfg := testConfig()
	cfg.EpochSize = 3
	e := MustNew(cfg)
	before := e.Epochs()
	// Three observations complete an epoch and trigger a price update,
	// but count no bids, allocations or revenue.
	e.Observe(60)
	e.Observe(60)
	e.Observe(60)
	if e.Epochs() != before+1 {
		t.Fatalf("epochs = %d, want %d", e.Epochs(), before+1)
	}
	if e.Bids() != 0 || e.Allocations() != 0 || e.Revenue() != 0 {
		t.Fatalf("observation changed decision statistics: %d/%d/%v",
			e.Bids(), e.Allocations(), e.Revenue())
	}
	// Observations and bids share the epoch buffer.
	e2 := MustNew(cfg)
	e2.Observe(60)
	e2.SubmitBid(60)
	e2.Observe(60)
	if e2.Epochs() != 1 {
		t.Fatalf("mixed epoch did not complete: %d", e2.Epochs())
	}
}

func TestObserveInfluencesLearnedPrice(t *testing.T) {
	cfg := testConfig()
	cfg.EpochSize = 4
	cfg.Rule = DrawMWMax
	e := MustNew(cfg)
	for i := 0; i < 4*100; i++ {
		e.Observe(60)
	}
	if got := e.MostLikelyPrice(); got != 60 {
		t.Fatalf("observations did not teach the engine: likely %v", got)
	}
}
