// Package core implements the paper's primary contribution: the data
// market pricing algorithm (Algorithm 1) that combines the three
// protection techniques.
//
//   - Epoch-Shield (Section 3): the posting price is recomputed only once
//     per epoch of E bids, from revenue comparisons over the whole epoch,
//     so no single strategic low bid reliably moves the price, and buyers
//     cannot observe epoch boundaries.
//   - Time-Shield (Section 4): losing buyers receive a wait-period w_i
//     computed by replaying hypothetical futures against a fork of the
//     learner state (Section 6.2.2, Bound and Stable strategies), chosen
//     so a truthful losing bid could not have won any earlier.
//   - Uncertainty-Shield (Section 5): the next posting price is sampled
//     from the multiplicative-weights distribution rather than chosen
//     deterministically, which both tames boundedly-rational reactions to
//     price leaks and preserves the MW revenue guarantee.
//
// The engine prices a single dataset; the market substrate
// (internal/market) runs one engine per dataset and enforces wait-periods
// and bid cadence.
package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/mw"
	"github.com/datamarket/shield/internal/rng"
)

// DrawRule selects how the engine turns MW weights into the next posting
// price (the Figure 4a comparison).
type DrawRule int

const (
	// DrawMW samples the price proportionally to the expert weights:
	// the paper's choice, implementing Uncertainty-Shield with the MW
	// performance guarantee.
	DrawMW DrawRule = iota
	// DrawMWMax deterministically posts the highest-weight price. Highest
	// revenue in simulation but no Uncertainty-Shield protection.
	DrawMWMax
	// DrawAdHoc samples uniformly from a neighborhood of the
	// highest-weight price: randomized, but ignores the actual weights and
	// so carries no performance guarantee.
	DrawAdHoc
	// DrawRandom samples uniformly from all candidates, severing any link
	// between bids and prices: full protection, no learning.
	DrawRandom
)

// String implements fmt.Stringer.
func (d DrawRule) String() string {
	switch d {
	case DrawMW:
		return "MW"
	case DrawMWMax:
		return "MW-Max"
	case DrawAdHoc:
		return "AdHoc"
	case DrawRandom:
		return "Random"
	default:
		return "unknown"
	}
}

// WaitStrategy selects how compute_wait_period replays hypothetical future
// bids (Section 6.2.2).
type WaitStrategy int

const (
	// WaitBound assumes all future bids arrive at the market's bid floor,
	// the fastest possible route for the losing bid to become competitive;
	// the resulting w_i is the earliest time the bid could win anywhere.
	WaitBound WaitStrategy = iota
	// WaitStable assumes all future bids equal the losing bid itself.
	// For low bids this is the paper's "more conservative" estimate:
	// weights drift toward candidates at or below the bid no faster than
	// the Bound replay drives them to the floor.
	WaitStable
)

// String implements fmt.Stringer.
func (w WaitStrategy) String() string {
	switch w {
	case WaitBound:
		return "Bound"
	case WaitStable:
		return "Stable"
	default:
		return "unknown"
	}
}

// Config configures an Engine.
type Config struct {
	// Candidates is the set P of posting-price candidates; each one is an
	// MW expert. Required, at least two strictly positive values.
	Candidates []float64
	// EpochSize is E, the number of bids per epoch. Required, >= 1.
	EpochSize int
	// Eta is the MW learning rate in (0, 0.5]; 0 selects mw.DefaultEta.
	Eta float64
	// Rule selects the price draw rule; the zero value is the paper's MW
	// sampling.
	Rule DrawRule
	// Wait selects the wait-period replay strategy; the zero value is
	// Bound.
	Wait WaitStrategy
	// BidsPerPeriod converts simulated future bids into buyer time
	// periods for wait-period computation (buyers bid at most once per
	// period, Section 4.1). 0 selects 1.
	BidsPerPeriod int
	// MaxWaitEpochs caps the wait-period simulation: a bid that has not
	// become competitive after this many simulated epochs is assigned the
	// cap (it may simply never become competitive). 0 selects 64.
	MaxWaitEpochs int
	// MinBid is the market's bid floor used by the Bound strategy.
	MinBid float64
	// AdHocNeighborhood is the +-k candidate window for DrawAdHoc;
	// 0 selects 1.
	AdHocNeighborhood int
	// DisableWaitPeriods turns off Time-Shield wait computation: losing
	// decisions carry Wait = 0. Used by simulation replays that feed
	// pre-transformed bid streams (the static strategic transform already
	// encodes buyer timing), where per-loser replay simulation would only
	// cost time. Live markets leave this false.
	DisableWaitPeriods bool
	// RegridEvery, when > 0, re-centers the candidate grid on the
	// current weight mass every RegridEvery epochs: the paper fixes the
	// candidate set P "for the sake of presentation" (Section 6.2); an
	// adaptive grid keeps the same number of experts but concentrates
	// them where demand actually is, improving price resolution on
	// drifting valuation processes. Learned mass transfers to the new
	// grid by nearest-candidate weight; the grid never leaves the
	// original [min, max] candidate range.
	RegridEvery int
	// ShareFraction, when > 0, enables fixed-share weight mixing
	// (Herbster-Warmuth): after every epoch update this fraction of the
	// total weight is redistributed uniformly, so the learner can track
	// a drifting revenue-optimal price instead of committing forever to
	// a stale one. Must lie in [0, 1); typical values are 0.01-0.05.
	ShareFraction float64
	// Seed seeds the engine's private randomness.
	Seed uint64
}

// Decision is the engine's immediate answer to one bid: posting-price
// mechanisms answer before the next price update, so buyer latency (and
// hence deadline utility) is unaffected (Section 6.2.1).
type Decision struct {
	// Allocated reports whether the bid won (bid >= posting price).
	Allocated bool
	// Price is the posting price the bid was evaluated against; winners
	// pay exactly this.
	Price float64
	// Wait is the Time-Shield wait-period in buyer time periods for
	// losing bids (0 for winners): the buyer may not bid again for Wait
	// periods.
	Wait int
}

// Engine prices one dataset online per Algorithm 1. It is not safe for
// concurrent use; the market arbiter serializes access per dataset.
type Engine struct {
	cfg          Config
	learner      *mw.Learner
	rand         *rng.RNG
	minCandidate float64
	// origCandidates and the original grid bounds anchor adaptive
	// regridding and Reset.
	origCandidates []float64
	origLo, origHi float64

	price float64
	epoch []float64

	// running statistics
	revenue     float64
	bids        int
	allocations int
	epochs      int

	// perturb, when non-nil, transforms every drawn posting price before
	// it takes effect (test-only; see TestSetPricePerturb).
	perturb func(price float64) float64
}

// Validate checks a Config, returning a descriptive error for the first
// problem found.
func (c Config) Validate() error {
	if len(c.Candidates) < 2 {
		return errors.New("core: need at least two posting-price candidates")
	}
	for i, p := range c.Candidates {
		if !(p > 0) || math.IsInf(p, 1) || math.IsNaN(p) {
			return fmt.Errorf("core: candidate %d (%v) must be a positive finite price", i, p)
		}
	}
	if c.EpochSize < 1 {
		return errors.New("core: epoch size must be >= 1")
	}
	if c.Eta < 0 || c.Eta > 0.5 {
		return fmt.Errorf("core: eta %v outside [0, 0.5]", c.Eta)
	}
	if c.BidsPerPeriod < 0 {
		return errors.New("core: BidsPerPeriod must be >= 0")
	}
	if c.MaxWaitEpochs < 0 {
		return errors.New("core: MaxWaitEpochs must be >= 0")
	}
	if c.MinBid < 0 {
		return errors.New("core: MinBid must be >= 0")
	}
	if c.RegridEvery < 0 {
		return errors.New("core: RegridEvery must be >= 0")
	}
	if c.ShareFraction < 0 || c.ShareFraction >= 1 {
		return fmt.Errorf("core: ShareFraction %v outside [0, 1)", c.ShareFraction)
	}
	switch c.Rule {
	case DrawMW, DrawMWMax, DrawAdHoc, DrawRandom:
	default:
		return fmt.Errorf("core: unknown draw rule %d", c.Rule)
	}
	switch c.Wait {
	case WaitBound, WaitStable:
	default:
		return fmt.Errorf("core: unknown wait strategy %d", c.Wait)
	}
	return nil
}

func (c *Config) applyDefaults() {
	if c.Eta == 0 {
		c.Eta = mw.DefaultEta
	}
	if c.BidsPerPeriod == 0 {
		c.BidsPerPeriod = 1
	}
	if c.MaxWaitEpochs == 0 {
		c.MaxWaitEpochs = 64
	}
	if c.AdHocNeighborhood == 0 {
		c.AdHocNeighborhood = 1
	}
}

// New builds an Engine from cfg.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	cands := make([]float64, len(cfg.Candidates))
	copy(cands, cfg.Candidates)
	cfg.Candidates = cands
	minCand, maxCand := cands[0], cands[0]
	for _, c := range cands[1:] {
		if c < minCand {
			minCand = c
		}
		if c > maxCand {
			maxCand = c
		}
	}
	orig := make([]float64, len(cands))
	copy(orig, cands)
	e := &Engine{
		cfg:            cfg,
		learner:        mw.NewLearner(cfg.Candidates, cfg.Eta),
		rand:           rng.New(cfg.Seed),
		minCandidate:   minCand,
		origCandidates: orig,
		origLo:         minCand,
		origHi:         maxCand,
		epoch:          make([]float64, 0, cfg.EpochSize),
	}
	if cfg.ShareFraction > 0 {
		e.learner.SetShare(cfg.ShareFraction)
	}
	e.price = e.drawPrice()
	return e, nil
}

// MustNew is New for static configurations; it panics on config errors.
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// PostingPrice returns the price in force for the next bid. The epoch
// boundary itself remains private: callers cannot tell from the price when
// the last update happened.
func (e *Engine) PostingPrice() float64 { return e.price }

// Revenue returns the revenue collected so far.
func (e *Engine) Revenue() float64 { return e.revenue }

// Bids returns the number of bids processed.
func (e *Engine) Bids() int { return e.bids }

// Allocations returns the number of winning bids so far.
func (e *Engine) Allocations() int { return e.allocations }

// Epochs returns the number of completed epochs.
func (e *Engine) Epochs() int { return e.epochs }

// Config returns the engine's configuration (with defaults applied).
func (e *Engine) Config() Config { return e.cfg }

// SubmitBid runs Algorithm 1 lines 4-12 for one incoming bid: the bid is
// evaluated against the current posting price, payment is collected from
// winners, losers receive a Time-Shield wait-period, and the price is
// updated if the bid completed an epoch.
func (e *Engine) SubmitBid(b float64) Decision {
	e.bids++
	e.epoch = append(e.epoch, b)

	d := Decision{Price: e.price}
	if b >= e.price && e.price > 0 {
		d.Allocated = true
		e.allocations++
		e.revenue += e.price
	} else if !e.cfg.DisableWaitPeriods {
		d.Wait = e.computeWaitPeriod(b)
	}
	e.maybeUpdatePrice()
	return d
}

// Observe feeds a demand signal into the engine's current epoch without an
// allocation decision: when a bid targets a derived dataset, the market
// propagates it to the engines of the constituent datasets (Figure 1,
// step 2), so their prices reflect the indirect demand.
func (e *Engine) Observe(b float64) {
	e.epoch = append(e.epoch, b)
	e.maybeUpdatePrice()
}

// maybeUpdatePrice implements update_price (Algorithm 1 lines 13-26):
// when the epoch is complete, score every expert by its relative revenue
// difference on the epoch, apply the MW rule, and draw the next price.
func (e *Engine) maybeUpdatePrice() {
	if len(e.epoch) != e.cfg.EpochSize {
		return
	}
	e.epochs++
	optR := auction.OptimalRevenue(e.epoch)
	if optR > 0 {
		revenue := auction.Revenue(e.epoch, e.price)
		costs := make([]float64, e.learner.Len())
		for i, p := range e.learner.Values() {
			altR := auction.Revenue(e.epoch, p)
			costs[i] = (revenue - altR) / optR
		}
		// The played expert's cost is 0 by construction in this relative
		// formulation, so the incurred-cost argument is 0.
		e.learner.Update(costs, 0)
	}
	e.epoch = e.epoch[:0]
	if e.cfg.RegridEvery > 0 && e.epochs%e.cfg.RegridEvery == 0 {
		e.regrid()
	}
	e.price = e.drawPrice()
}

// regrid re-centers the candidate grid on the current weight mass: the
// new grid spans the weighted mean +- 2 weighted standard deviations of
// the price distribution (clamped to the original range, never narrower
// than one original grid step) using the same number of candidates. Each
// new candidate's weight blends its nearest old candidate's probability
// with a uniform floor, so the learner keeps enough exploration mass to
// correct any transfer error within a few epochs — a pure
// nearest-neighbor transfer would zero out all but the argmax's
// neighbors and let discretization noise compound into price drift.
func (e *Engine) regrid() {
	cands := e.cfg.Candidates
	probs := e.learner.Probabilities()

	var mean float64
	for i, c := range cands {
		mean += probs[i] * c
	}
	var variance float64
	for i, c := range cands {
		d := c - mean
		variance += probs[i] * d * d
	}
	sd := math.Sqrt(variance)

	// Keep a minimum span so the grid cannot collapse to a point, and
	// symmetric margins so the optimum is not pinned to a grid edge.
	minSpan := (e.origHi - e.origLo) / float64(len(cands))
	span := 4 * sd
	if span < minSpan {
		span = minSpan
	}
	lo := mean - span/2
	hi := mean + span/2
	if lo < e.origLo {
		lo = e.origLo
	}
	if hi > e.origHi {
		hi = e.origHi
	}
	if hi-lo < minSpan {
		hi = lo + minSpan
		if hi > e.origHi {
			hi = e.origHi
			lo = hi - minSpan
		}
	}

	newCands := auction.LinearGrid(lo, hi, len(cands))
	newWeights := make([]float64, len(newCands))
	uniform := 1 / float64(len(newCands))
	for i, nc := range newCands {
		nearest := 0
		best := math.Inf(1)
		for j, oc := range cands {
			if d := math.Abs(oc - nc); d < best {
				best = d
				nearest = j
			}
		}
		newWeights[i] = 0.8*probs[nearest] + 0.2*uniform
	}
	e.cfg.Candidates = newCands
	e.minCandidate = lo
	e.learner = mw.NewLearnerWithWeights(newCands, newWeights, e.cfg.Eta)
	if e.cfg.ShareFraction > 0 {
		e.learner.SetShare(e.cfg.ShareFraction)
	}
}

// TestSetPricePerturb installs f (nil to remove) as a transform applied
// to every posting price this engine draws from now on. It exists
// solely as a mutation canary for the model-based torture harness
// (internal/torture): a test injects a deliberate mispricing into the
// live replicas' engines and asserts the differential against the
// unperturbed reference model catches it, proving the reference
// actually discriminates. Production code must never call it, and it is
// not goroutine-safe to flip while the engine is serving bids. The
// price drawn at construction time is unaffected; the perturbation
// first bites at the next epoch redraw.
func (e *Engine) TestSetPricePerturb(f func(price float64) float64) {
	e.perturb = f
}

// drawPrice picks the next posting price according to the configured rule.
func (e *Engine) drawPrice() float64 {
	var p float64
	switch e.cfg.Rule {
	case DrawMWMax:
		p = e.cfg.Candidates[e.learner.ArgMax()]
	case DrawAdHoc:
		k := e.cfg.AdHocNeighborhood
		center := e.learner.ArgMax()
		lo, hi := center-k, center+k
		if lo < 0 {
			lo = 0
		}
		if hi > len(e.cfg.Candidates)-1 {
			hi = len(e.cfg.Candidates) - 1
		}
		p = e.cfg.Candidates[lo+e.rand.Intn(hi-lo+1)]
	case DrawRandom:
		p = e.cfg.Candidates[e.rand.Intn(len(e.cfg.Candidates))]
	default: // DrawMW
		p = e.learner.DrawValue(e.rand)
	}
	if e.perturb != nil {
		p = e.perturb(p)
	}
	return p
}

// ComputeWaitPeriod returns the Time-Shield wait-period (in buyer time
// periods) that would be assigned to a losing bid b right now, without
// recording the bid. Exposed for the wait-period ablation and for the
// ex-post algorithm, which penalizes under-payments on the *next* bid.
func (e *Engine) ComputeWaitPeriod(b float64) int {
	return e.computeWaitPeriod(b)
}

// computeWaitPeriod implements compute_wait_period (Section 6.2.2). It
// forks the learner, completes the current epoch and then replays whole
// synthetic epochs of hypothetical future bids (Bound: all at the bid
// floor; Stable: all equal to b), counting the bids consumed until b
// becomes competitive — at least the most likely posting price (the
// highest-weight expert). The bid count converts to buyer periods at the
// configured arrival rate. Both strategies are optimistic for the buyer,
// so a truthful losing buyer cannot have won before the wait expires
// (Claim 3).
func (e *Engine) computeWaitPeriod(b float64) int {
	sim := e.learner.Clone()
	synthetic := e.cfg.MinBid
	if e.cfg.Wait == WaitStable {
		synthetic = b
	} else if synthetic < e.minCandidate {
		// A synthetic bid below every candidate price earns zero revenue
		// for every expert, so no weights would move and the bid would
		// never become competitive — clamping to the cheapest candidate
		// keeps Bound the fastest-convergence strategy the paper defines.
		synthetic = e.minCandidate
	}

	likely := e.cfg.Candidates[sim.ArgMax()]
	if b >= likely {
		// The bid already matches the most likely price; it lost only to
		// draw randomness. The earliest new opportunity is the next
		// price draw, i.e. the end of the current epoch.
		remaining := e.cfg.EpochSize - len(e.epoch)
		return ceilDiv(remaining, e.cfg.BidsPerPeriod)
	}
	if b < e.minCandidate {
		// No candidate price can ever fall to b: the bid can never become
		// competitive, so waiting cannot cost the buyer an opportunity
		// (Section 4.2) and the wait is the full simulation cap.
		remaining := e.cfg.EpochSize - len(e.epoch)
		return ceilDiv(remaining+e.cfg.MaxWaitEpochs*e.cfg.EpochSize, e.cfg.BidsPerPeriod)
	}

	// Complete the current epoch with synthetic bids, then replay whole
	// synthetic epochs.
	epochBids := make([]float64, len(e.epoch), e.cfg.EpochSize)
	copy(epochBids, e.epoch)
	simulated := 0
	for len(epochBids) < e.cfg.EpochSize {
		epochBids = append(epochBids, synthetic)
		simulated++
	}

	chosen := e.price
	for round := 0; round < e.cfg.MaxWaitEpochs; round++ {
		applyEpoch(sim, epochBids, chosen)
		likely = e.cfg.Candidates[sim.ArgMax()]
		if b >= likely {
			return ceilDiv(simulated, e.cfg.BidsPerPeriod)
		}
		// Subsequent epochs are all-synthetic; the replay plays the most
		// likely price each round (the buyer's best bet, Section 6.2.2).
		if len(epochBids) != e.cfg.EpochSize || epochBids[0] != synthetic {
			epochBids = epochBids[:0]
			for i := 0; i < e.cfg.EpochSize; i++ {
				epochBids = append(epochBids, synthetic)
			}
		}
		chosen = likely
		simulated += e.cfg.EpochSize
	}
	// Never became competitive within the cap: per Section 4.2, waiting
	// cannot harm a buyer whose bid would never have won; return the cap.
	return ceilDiv(simulated, e.cfg.BidsPerPeriod)
}

// applyEpoch applies one MW update round for an epoch of bids priced at
// chosen, mirroring maybeUpdatePrice.
func applyEpoch(l *mw.Learner, epoch []float64, chosen float64) {
	optR := auction.OptimalRevenue(epoch)
	if optR <= 0 {
		// An epoch with no positive bid moves no weights (cost undefined);
		// mirror the live engine and leave the learner unchanged.
		return
	}
	revenue := auction.Revenue(epoch, chosen)
	costs := make([]float64, l.Len())
	for i, p := range l.Values() {
		costs[i] = (revenue - auction.Revenue(epoch, p)) / optR
	}
	l.Update(costs, 0)
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

// Weights exposes a copy of the current expert weights (diagnostics only;
// a deployment must not leak these to buyers).
func (e *Engine) Weights() []float64 { return e.learner.Weights() }

// Probabilities exposes the current price distribution (diagnostics only).
func (e *Engine) Probabilities() []float64 { return e.learner.Probabilities() }

// MostLikelyPrice returns the highest-weight candidate price.
func (e *Engine) MostLikelyPrice() float64 {
	return e.cfg.Candidates[e.learner.ArgMax()]
}

// Reset restores the engine to its initial state (including the original
// candidate grid), replaying the same random stream from the configured
// seed.
func (e *Engine) Reset() {
	if e.cfg.RegridEvery > 0 {
		cands := make([]float64, len(e.origCandidates))
		copy(cands, e.origCandidates)
		e.cfg.Candidates = cands
		e.minCandidate = e.origLo
		e.learner = mw.NewLearner(cands, e.cfg.Eta)
		if e.cfg.ShareFraction > 0 {
			e.learner.SetShare(e.cfg.ShareFraction)
		}
	}
	e.learner.Reset()
	e.rand = rng.New(e.cfg.Seed)
	e.epoch = e.epoch[:0]
	e.revenue = 0
	e.bids = 0
	e.allocations = 0
	e.epochs = 0
	e.price = e.drawPrice()
}
