package core

import (
	"testing"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/rng"
)

func regridConfig() Config {
	cfg := testConfig()
	cfg.RegridEvery = 5
	cfg.EpochSize = 4
	return cfg
}

func TestRegridValidation(t *testing.T) {
	cfg := testConfig()
	cfg.RegridEvery = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative RegridEvery accepted")
	}
}

func TestRegridPreservesCandidateCountAndBounds(t *testing.T) {
	cfg := regridConfig()
	e := MustNew(cfg)
	n := len(cfg.Candidates)
	lo, hi := cfg.Candidates[0], cfg.Candidates[len(cfg.Candidates)-1]
	r := rng.New(3)
	for i := 0; i < 4*100; i++ {
		e.SubmitBid(r.Uniform(40, 80))
		cands := e.Config().Candidates
		if len(cands) != n {
			t.Fatalf("candidate count changed: %d", len(cands))
		}
		for _, c := range cands {
			if c < lo-1e-9 || c > hi+1e-9 {
				t.Fatalf("candidate %v escaped original range [%v, %v]", c, lo, hi)
			}
		}
	}
}

func TestRegridZoomsIntoDemand(t *testing.T) {
	cfg := regridConfig()
	e := MustNew(cfg)
	// Stationary demand at ~60: after many regrids the grid should span
	// a narrow band around 60 rather than the full [10, 100].
	for i := 0; i < 4*200; i++ {
		e.SubmitBid(60)
	}
	cands := e.Config().Candidates
	span := cands[len(cands)-1] - cands[0]
	if span > 50 {
		t.Fatalf("grid span %v did not shrink toward the demand point", span)
	}
	if likely := e.MostLikelyPrice(); likely < 40 || likely > 62 {
		t.Fatalf("most likely price %v strayed from demand at 60", likely)
	}
}

func TestRegridTracksDriftingDemand(t *testing.T) {
	cfg := regridConfig()
	e := MustNew(cfg)
	// Demand drifts from 30 to 90; the adaptive grid must follow.
	for i := 0; i < 4*300; i++ {
		v := 30 + 60*float64(i)/(4*300)
		e.SubmitBid(v)
	}
	if likely := e.MostLikelyPrice(); likely < 60 {
		t.Fatalf("most likely price %v did not follow the drift to ~90", likely)
	}
}

func TestRegridImprovesResolutionOnCoarseGrids(t *testing.T) {
	// With only 6 candidates over [1, 200], a fixed grid prices in steps
	// of ~40; the adaptive grid zooms into the demand region and prices
	// much closer to the optimum. Compare revenue on the same stationary
	// stream.
	run := func(regrid int) float64 {
		cfg := Config{
			Candidates:         auction.LinearGrid(1, 200, 6),
			EpochSize:          4,
			MinBid:             1,
			Seed:               11,
			RegridEvery:        regrid,
			DisableWaitPeriods: true,
		}
		e := MustNew(cfg)
		r := rng.New(5)
		for i := 0; i < 4*250; i++ {
			e.SubmitBid(r.Uniform(55, 75))
		}
		return e.Revenue()
	}
	fixed := run(0)
	adaptive := run(5)
	if adaptive <= fixed {
		t.Fatalf("adaptive grid revenue %v not above fixed %v", adaptive, fixed)
	}
}

func TestRegridResetRestoresOriginalGrid(t *testing.T) {
	cfg := regridConfig()
	e := MustNew(cfg)
	for i := 0; i < 4*100; i++ {
		e.SubmitBid(60)
	}
	moved := e.Config().Candidates
	if moved[0] == cfg.Candidates[0] && moved[len(moved)-1] == cfg.Candidates[len(cfg.Candidates)-1] {
		t.Fatal("grid never moved; regrid not exercised")
	}
	e.Reset()
	restored := e.Config().Candidates
	for i, c := range cfg.Candidates {
		if restored[i] != c {
			t.Fatalf("Reset did not restore candidate %d: %v != %v", i, restored[i], c)
		}
	}
	// And the engine replays identically after reset.
	d1 := e.SubmitBid(60)
	e.Reset()
	d2 := e.SubmitBid(60)
	if d1 != d2 {
		t.Fatalf("post-reset decisions diverged: %+v vs %+v", d1, d2)
	}
}

func TestRegridKeepsWaitMachineryWorking(t *testing.T) {
	cfg := regridConfig()
	cfg.Rule = DrawMWMax
	e := MustNew(cfg)
	for i := 0; i < 4*50; i++ {
		e.SubmitBid(80)
	}
	// A losing bid must still get a sane wait against the zoomed grid.
	w := e.ComputeWaitPeriod(50)
	if w < 0 {
		t.Fatalf("wait = %d", w)
	}
}
