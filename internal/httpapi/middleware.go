package httpapi

import (
	"crypto/subtle"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/datamarket/shield/internal/obs"
)

// WithTelemetry makes the server share t instead of building its own
// private Telemetry on first Routes call. Pass the same value to the
// journal's WithTelemetry option and the daemon's debug mux so one
// registry and one trace ring serve the whole process. Must be called
// before Routes.
func (s *Server) WithTelemetry(t *obs.Telemetry) *Server {
	s.tel = t
	return s
}

// WithLogger routes the structured request log (one line per request:
// id, route, status, elapsed) to l. The default logger discards.
func (s *Server) WithLogger(l *slog.Logger) *Server {
	s.logger = l
	return s
}

// WithOperatorToken gates the operator-facing endpoints — GET /metrics,
// GET /debug/traces and GET /v1/datasets/{id}/stats — behind a bearer
// token: they expose posting prices and per-request traces, exactly the
// information Uncertainty-Shield keeps from buyers. With bid auth
// enabled and no token configured the operator endpoints lock shut
// (fail closed); with neither auth nor a token the server is an open
// development deployment and they stay open.
func (s *Server) WithOperatorToken(token string) *Server {
	s.opToken = token
	return s
}

// ensureTelemetry lazily builds the default Telemetry and instruments
// the market exactly once (family registration panics on duplicates by
// design, so this must not run twice even if Routes is called again).
func (s *Server) ensureTelemetry() {
	s.telOnce.Do(func() {
		if s.tel == nil {
			s.tel = obs.NewTelemetry()
		}
		// A replica server has no fixed market to instrument: the
		// follower's view is swapped wholesale on snapshot catch-up, and
		// the follower registers its own shield_replica_* gauges instead.
		if s.m != nil {
			s.m.Instrument(s.tel)
		}
		s.httpLatency = s.tel.Registry.HistogramVec("shield_http_request_seconds",
			"HTTP request latency by route pattern and status code.",
			obs.LatencyBuckets(), "route", "status")
	})
}

// statusWriter captures the response status for the latency histogram
// and the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument is the outermost middleware: it establishes the request
// ID, echoes it as X-Request-ID, begins the (possibly sampled-out)
// trace, threads both through the request context, and on completion
// records the route/status latency sample (exemplar-stamped when
// sampled) and one structured log line. A request arriving with an
// X-Trace-ID header executes under the caller's propagated ID instead
// of a minted one, and X-Trace-Sampled: 1 continues the caller's
// sampled trace here regardless of the local sampling rate — the
// HTTP-side twin of the wire protocol's v2 trace field. The route
// label is the mux pattern that matched — a bounded set — never the
// raw URL.
func (s *Server) instrument(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var tr *obs.Trace
		id := r.Header.Get("X-Trace-ID")
		if id == "" {
			id = s.tel.Tracer.NewRequestID()
			tr = s.tel.Tracer.Begin(id, r.Method+" "+r.URL.Path)
		} else if r.Header.Get("X-Trace-Sampled") == "1" {
			tr = s.tel.Tracer.Adopt(id, r.Method+" "+r.URL.Path, time.Now())
		}
		ctx := obs.WithRequestTrace(r.Context(), id, tr)
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		r = r.WithContext(ctx)
		mux.ServeHTTP(sw, r)
		// ServeMux writes the matched pattern back onto this request
		// before dispatching (Go 1.22+), so it is readable here.
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		tr.SetName(route)
		s.tel.Tracer.Finish(tr)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		elapsed := time.Since(start)
		s.httpLatency.With(route, strconv.Itoa(sw.status)).ObserveTrace(elapsed.Seconds(), obs.ExemplarID(ctx))
		s.logger.LogAttrs(ctx, slog.LevelInfo, "request",
			slog.String("id", id),
			slog.String("route", route),
			slog.Int("status", sw.status),
			slog.Duration("elapsed", elapsed),
			slog.String("remote", r.RemoteAddr),
		)
	})
}

// operatorOnly enforces the operator gate described at
// WithOperatorToken. Comparison is constant-time; the response never
// distinguishes a wrong token from a missing one.
func (s *Server) operatorOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.verifier == nil && s.opToken == "" {
			h(w, r)
			return
		}
		if s.opToken == "" {
			writeAPIError(w, http.StatusUnauthorized, CodeUnauthorized,
				"operator endpoints locked: no operator token configured")
			return
		}
		tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || subtle.ConstantTimeCompare([]byte(tok), []byte(s.opToken)) != 1 {
			writeAPIError(w, http.StatusUnauthorized, CodeUnauthorized,
				"operator token required")
			return
		}
		h(w, r)
	}
}

// handleHealthz is liveness: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: the market is restored and the journal
// (when there is one) can still persist writes. A poisoned or closed
// journal answers 503 — the daemon serves reads but must be rotated out
// of write traffic. Replicas answer with their staleness alongside the
// verdict (see handleReplicaReadyz).
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.replica != nil {
		s.handleReplicaReadyz(w)
		return
	}
	if s.ready != nil {
		if err := s.ready(); err != nil {
			writeJSON(w, http.StatusServiceUnavailable,
				map[string]string{"status": "unready", "reason": err.Error()})
			return
		}
	}
	if s.store != nil {
		// Segmented journal: the ready body carries the store inventory,
		// so an operator's probe shows segment and checkpoint rollover
		// without a separate tool. The unready body above stays flat.
		inv := s.store.Inventory()
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ready",
			"journal": map[string]any{
				"dir":                 inv.Dir,
				"segments":            len(inv.Segments),
				"checkpoints":         len(inv.Checkpoints),
				"first_seq":           inv.FirstSeq,
				"last_seq":            inv.LastSeq,
				"last_checkpoint_seq": inv.LastCheckpoint,
				"total_bytes":         inv.TotalBytes,
			},
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleTraces serves the most recent completed bid-lifecycle traces,
// newest first, with the count of traces already evicted from the ring.
// With ?id=req-... it instead resolves one request ID to its full
// stage breakdown — the lookup that /metrics histogram exemplars link
// to.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("id"); id != "" {
		snap, ok := s.tel.Tracer.Find(id)
		if !ok {
			writeAPIError(w, http.StatusNotFound, CodeBadRequest,
				"no completed trace for id "+id+" (evicted, unsampled, or never seen)")
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"trace": snap})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"dropped": s.tel.Tracer.Dropped(),
		"traces":  s.tel.Tracer.Recent(64),
	})
}

// ConnCountHook returns an http.Server.ConnState hook that tracks the
// live connection count in g — the HTTP-side twin of the wire server's
// shield_wire_connections gauge. Wire it as srv.ConnState when building
// the daemon's http.Server.
func ConnCountHook(g *obs.Gauge) func(net.Conn, http.ConnState) {
	return func(_ net.Conn, st http.ConnState) {
		switch st {
		case http.StateNew:
			g.Add(1)
		case http.StateClosed, http.StateHijacked:
			g.Add(-1)
		}
	}
}
