package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/market"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	m := market.MustNew(market.Config{
		Engine: core.Config{
			Candidates: auction.LinearGrid(10, 100, 10),
			EpochSize:  4,
			MinBid:     1,
		},
		Seed: 9,
	})
	ts := httptest.NewServer(NewServer(m).Routes())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s response: %v", path, err)
	}
	return resp, out
}

func get(t *testing.T, ts *httptest.Server, path string, dst any) *http.Response {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if dst != nil {
		if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
			t.Fatalf("decoding %s: %v", path, err)
		}
	}
	return resp
}

func TestHealthz(t *testing.T) {
	ts := testServer(t)
	var out map[string]string
	resp := get(t, ts, "/healthz", &out)
	if resp.StatusCode != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("healthz: %d %v", resp.StatusCode, out)
	}
}

func TestFullMarketLifecycle(t *testing.T) {
	ts := testServer(t)

	if resp, _ := post(t, ts, "/v1/sellers", map[string]string{"id": "acme"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register seller: %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts, "/v1/buyers", map[string]string{"id": "bob"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register buyer: %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts, "/v1/datasets", map[string]string{"seller": "acme", "id": "sales"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts, "/v1/datasets", map[string]string{"seller": "acme", "id": "ads"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload 2: %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts, "/v1/datasets/compose", map[string]any{
		"id": "combo", "constituents": []string{"sales", "ads"},
	}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("compose: %d", resp.StatusCode)
	}

	// Winning bid.
	resp, out := post(t, ts, "/v1/bids", map[string]any{"buyer": "bob", "dataset": "sales", "amount": 500.0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bid: %d %v", resp.StatusCode, out)
	}
	if out["allocated"] != true {
		t.Fatalf("high bid not allocated: %v", out)
	}
	price := out["price_paid"].(float64)
	if price <= 0 {
		t.Fatalf("price_paid = %v", price)
	}

	// Seller got paid.
	var bal map[string]float64
	get(t, ts, "/v1/sellers/acme/balance", &bal)
	if bal["balance"] != price {
		t.Fatalf("seller balance %v != price %v", bal["balance"], price)
	}

	// Losing bid on the derived dataset: no price leak, wait assigned.
	resp, out = post(t, ts, "/v1/bids", map[string]any{"buyer": "bob", "dataset": "combo", "amount": 2.0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("losing bid: %d %v", resp.StatusCode, out)
	}
	if out["allocated"] != false {
		t.Fatalf("low bid allocated: %v", out)
	}
	if _, leaked := out["price_paid"]; leaked {
		t.Fatalf("loser response leaked price: %v", out)
	}
	wait := int(out["wait_periods"].(float64))
	if wait <= 0 {
		t.Fatalf("wait_periods = %v", wait)
	}

	// Wait is queryable and enforced.
	var wr map[string]int
	get(t, ts, "/v1/buyers/bob/wait?dataset=combo", &wr)
	if wr["wait_periods"] != wait {
		t.Fatalf("wait remaining %d != %d", wr["wait_periods"], wait)
	}
	post(t, ts, "/v1/tick", map[string]any{})
	resp, _ = post(t, ts, "/v1/bids", map[string]any{"buyer": "bob", "dataset": "combo", "amount": 2.0})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("bid during wait: %d", resp.StatusCode)
	}

	// Transactions listed.
	var txs []market.Transaction
	get(t, ts, "/v1/transactions", &txs)
	if len(txs) != 1 || txs[0].Dataset != "sales" {
		t.Fatalf("transactions: %+v", txs)
	}

	// Datasets listed sorted.
	var ds []string
	get(t, ts, "/v1/datasets", &ds)
	if len(ds) != 3 {
		t.Fatalf("datasets: %v", ds)
	}

	// Stats endpoint.
	var stats market.DatasetStats
	get(t, ts, "/v1/datasets/sales/stats", &stats)
	if stats.Bids != 1 || stats.Allocations != 1 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestErrorMapping(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		path   string
		body   any
		status int
	}{
		{"/v1/bids", map[string]any{"buyer": "ghost", "dataset": "d", "amount": 5.0}, http.StatusNotFound},
		{"/v1/bids", map[string]any{"buyer": "ghost", "dataset": "d", "amount": -5.0}, http.StatusBadRequest},
		{"/v1/sellers", map[string]string{"id": ""}, http.StatusBadRequest},
		{"/v1/datasets", map[string]string{"seller": "ghost", "id": "d"}, http.StatusNotFound},
	}
	for _, c := range cases {
		resp, out := post(t, ts, c.path, c.body)
		if resp.StatusCode != c.status {
			t.Errorf("%s %v: status %d, want %d (%v)", c.path, c.body, resp.StatusCode, c.status, out)
		}
	}
	// Duplicate registration -> conflict.
	post(t, ts, "/v1/sellers", map[string]string{"id": "a"})
	resp, _ := post(t, ts, "/v1/sellers", map[string]string{"id": "a"})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate seller: %d", resp.StatusCode)
	}
	// Unknown fields rejected.
	resp, _ = post(t, ts, "/v1/buyers", map[string]string{"id": "b", "bogus": "x"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: %d", resp.StatusCode)
	}
	// Missing dataset param on wait query.
	post(t, ts, "/v1/buyers", map[string]string{"id": "bb"})
	if resp := get(t, ts, "/v1/buyers/bb/wait", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("wait without dataset: %d", resp.StatusCode)
	}
}

func TestRepeatBuyRejected(t *testing.T) {
	ts := testServer(t)
	post(t, ts, "/v1/sellers", map[string]string{"id": "s"})
	post(t, ts, "/v1/buyers", map[string]string{"id": "b"})
	post(t, ts, "/v1/datasets", map[string]string{"seller": "s", "id": "d"})
	if resp, _ := post(t, ts, "/v1/bids", map[string]any{"buyer": "b", "dataset": "d", "amount": 500.0}); resp.StatusCode != http.StatusOK {
		t.Fatalf("first buy: %d", resp.StatusCode)
	}
	post(t, ts, "/v1/tick", map[string]any{})
	resp, _ := post(t, ts, "/v1/bids", map[string]any{"buyer": "b", "dataset": "d", "amount": 500.0})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("rebuy: %d", resp.StatusCode)
	}
}

func TestConcurrentHTTPBids(t *testing.T) {
	ts := testServer(t)
	post(t, ts, "/v1/sellers", map[string]string{"id": "s"})
	post(t, ts, "/v1/datasets", map[string]string{"seller": "s", "id": "d"})
	const n = 8
	for i := 0; i < n; i++ {
		post(t, ts, "/v1/buyers", map[string]string{"id": fmt.Sprintf("b%d", i)})
	}
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			buf, _ := json.Marshal(map[string]any{
				"buyer": fmt.Sprintf("b%d", i), "dataset": "d", "amount": 500.0,
			})
			resp, err := http.Post(ts.URL+"/v1/bids", "application/json", bytes.NewReader(buf))
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("status %d", resp.StatusCode)
				}
			}
			done <- err
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	var txs []market.Transaction
	get(t, ts, "/v1/transactions", &txs)
	if len(txs) != n {
		t.Fatalf("transactions = %d, want %d", len(txs), n)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := testServer(t)
	post(t, ts, "/v1/sellers", map[string]string{"id": "s"})
	post(t, ts, "/v1/datasets", map[string]string{"seller": "s", "id": "d"})
	post(t, ts, "/v1/buyers", map[string]string{"id": "b"})
	post(t, ts, "/v1/bids", map[string]any{"buyer": "b", "dataset": "d", "amount": 500.0})
	post(t, ts, "/v1/tick", map[string]any{})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"shield_market_transactions_total 1",
		"shield_market_period 1",
		`shield_dataset_bids_total{dataset="d"} 1`,
		`shield_dataset_allocations_total{dataset="d"} 1`,
		"shield_market_revenue_units ",
		"# TYPE shield_dataset_posting_price gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestWithdrawDatasetEndpoint(t *testing.T) {
	ts := testServer(t)
	post(t, ts, "/v1/sellers", map[string]string{"id": "s"})
	post(t, ts, "/v1/datasets", map[string]string{"seller": "s", "id": "a"})
	post(t, ts, "/v1/datasets", map[string]string{"seller": "s", "id": "b"})
	post(t, ts, "/v1/datasets/compose", map[string]any{"id": "ab", "constituents": []string{"a", "b"}})

	del := func(path string) int {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	// In use by the derived product: conflict.
	if code := del("/v1/datasets/a?seller=s"); code != http.StatusConflict {
		t.Fatalf("withdraw in-use: %d", code)
	}
	// Missing seller param.
	if code := del("/v1/datasets/a"); code != http.StatusBadRequest {
		t.Fatalf("withdraw without seller: %d", code)
	}
	// Standalone dataset withdraws.
	post(t, ts, "/v1/datasets", map[string]string{"seller": "s", "id": "solo"})
	if code := del("/v1/datasets/solo?seller=s"); code != http.StatusOK {
		t.Fatalf("withdraw solo: %d", code)
	}
	var ds []string
	get(t, ts, "/v1/datasets", &ds)
	for _, d := range ds {
		if d == "solo" {
			t.Fatal("withdrawn dataset still listed")
		}
	}
}
