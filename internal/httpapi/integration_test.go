package httpapi

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/auth"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/journal"
	"github.com/datamarket/shield/internal/market"
)

func TestAuthRequiredBids(t *testing.T) {
	m := market.MustNew(market.Config{
		Engine: core.Config{
			Candidates: auction.LinearGrid(10, 100, 10),
			EpochSize:  4,
			MinBid:     1,
		},
		Seed: 4,
	})
	verifier := auth.NewVerifier(nil)
	ts := httptest.NewServer(NewServer(m).WithAuth(verifier).Routes())
	t.Cleanup(ts.Close)

	post(t, ts, "/v1/sellers", map[string]string{"id": "s"})
	post(t, ts, "/v1/datasets", map[string]string{"seller": "s", "id": "d"})

	// Registration returns a credential.
	resp, out := post(t, ts, "/v1/buyers", map[string]string{"id": "bob"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d", resp.StatusCode)
	}
	secret, ok := out["credential"].(string)
	if !ok || secret == "" {
		t.Fatalf("no credential issued: %v", out)
	}
	cred := auth.Credential{BuyerID: "bob", Secret: secret}

	// Unsigned bids are rejected.
	resp, _ = post(t, ts, "/v1/bids", map[string]any{"buyer": "bob", "dataset": "d", "amount": 500.0})
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unsigned bid: %d", resp.StatusCode)
	}

	// A correctly signed bid wins.
	signed, err := auth.Sign(cred, "d", 500_000_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	resp, out = post(t, ts, "/v1/bids", map[string]any{
		"buyer": "bob", "dataset": "d",
		"amount_micros": signed.AmountMicros, "nonce": signed.Nonce, "mac": signed.MAC,
	})
	if resp.StatusCode != http.StatusOK || out["allocated"] != true {
		t.Fatalf("signed bid: %d %v", resp.StatusCode, out)
	}

	// Replaying the same signature is rejected.
	resp, _ = post(t, ts, "/v1/bids", map[string]any{
		"buyer": "bob", "dataset": "d",
		"amount_micros": signed.AmountMicros, "nonce": signed.Nonce, "mac": signed.MAC,
	})
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("replayed bid: %d", resp.StatusCode)
	}

	// A signature under the wrong name is rejected.
	post(t, ts, "/v1/buyers", map[string]string{"id": "eve"})
	forged, err := auth.Sign(cred, "d", 400_000_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	resp, _ = post(t, ts, "/v1/bids", map[string]any{
		"buyer": "eve", "dataset": "d",
		"amount_micros": forged.AmountMicros, "nonce": forged.Nonce, "mac": forged.MAC,
	})
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("false-name bid: %d", resp.StatusCode)
	}
}

func TestJournaledServerSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "market.log")
	cfg := market.Config{
		Engine: core.Config{
			Candidates: auction.LinearGrid(10, 100, 10),
			EpochSize:  4,
			MinBid:     1,
		},
		Seed: 6,
	}

	// First life: run a workload through a journaled Server.
	jm, replayed, err := journal.OpenFile(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 0 {
		t.Fatalf("fresh journal replayed %d events", replayed)
	}
	ts := httptest.NewServer(NewJournaled(jm).Routes())
	post(t, ts, "/v1/sellers", map[string]string{"id": "s"})
	post(t, ts, "/v1/datasets", map[string]string{"seller": "s", "id": "d"})
	post(t, ts, "/v1/buyers", map[string]string{"id": "b1"})
	post(t, ts, "/v1/buyers", map[string]string{"id": "b2"})
	if resp, out := post(t, ts, "/v1/bids", map[string]any{"buyer": "b1", "dataset": "d", "amount": 500.0}); resp.StatusCode != http.StatusOK || out["allocated"] != true {
		t.Fatalf("bid 1: %d %v", resp.StatusCode, out)
	}
	post(t, ts, "/v1/tick", map[string]any{})
	var txs1 []market.Transaction
	get(t, ts, "/v1/transactions", &txs1)
	revenue1 := jm.Revenue()
	ts.Close()
	if err := jm.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: restart from the journal and continue.
	jm2, replayed, err := journal.OpenFile(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if replayed == 0 {
		t.Fatal("restart replayed nothing")
	}
	if jm2.Revenue() != revenue1 {
		t.Fatalf("restored revenue %v != %v", jm2.Revenue(), revenue1)
	}
	ts2 := httptest.NewServer(NewJournaled(jm2).Routes())
	t.Cleanup(ts2.Close)
	// The second buyer can still trade after the restart.
	if resp, out := post(t, ts2, "/v1/bids", map[string]any{"buyer": "b2", "dataset": "d", "amount": 500.0}); resp.StatusCode != http.StatusOK || out["allocated"] != true {
		t.Fatalf("post-restart bid: %d %v", resp.StatusCode, out)
	}
	if err := jm2.Close(); err != nil {
		t.Fatal(err)
	}

	// Third life: both lives' events replay cleanly.
	jm3, replayed, err := journal.OpenFile(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	defer jm3.Close()
	if jm3.Revenue() <= revenue1 {
		t.Fatalf("third-life revenue %v not above first-life %v", jm3.Revenue(), revenue1)
	}
	if len(jm3.Transactions()) != 2 {
		t.Fatalf("transactions after two lives: %d", len(jm3.Transactions()))
	}
	_ = replayed

	// Corrupt journals are refused.
	if err := os.WriteFile(path, []byte("{bogus\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := journal.OpenFile(cfg, path); err == nil {
		t.Fatal("corrupt journal accepted")
	}
}
