package httpapi

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/datamarket/shield/internal/apierr"
	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/market"
)

// fakeReplica is a ReplicaSource with scriptable state, standing in for
// internal/replica.Follower (which implements the same signatures; the
// end-to-end pairing is covered by the daemon and load-rig tests).
type fakeReplica struct {
	m        *market.Market
	ready    error
	applied  int64
	leader   int64
	lag      float64
	connstat bool
}

func (f *fakeReplica) Market() *market.Market { return f.m }
func (f *fakeReplica) Ready() error           { return f.ready }
func (f *fakeReplica) Staleness() (int64, int64, float64, bool) {
	return f.applied, f.leader, f.lag, f.connstat
}

func replicaMarket(t *testing.T) *market.Market {
	t.Helper()
	m := market.MustNew(market.Config{
		Engine: core.Config{
			Candidates: auction.LinearGrid(10, 100, 10),
			EpochSize:  4,
			MinBid:     1,
		},
		Seed: 9,
	})
	if err := m.RegisterSeller("acme"); err != nil {
		t.Fatal(err)
	}
	if err := m.UploadDataset("acme", "sales"); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestReplicaServesReads(t *testing.T) {
	src := &fakeReplica{m: replicaMarket(t), applied: 3, leader: 3, connstat: true}
	ts := httptest.NewServer(NewReplica(src).Routes())
	defer ts.Close()

	var datasets []string
	resp := get(t, ts, "/v1/datasets", &datasets)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/datasets on replica: %d", resp.StatusCode)
	}
	if len(datasets) != 1 || datasets[0] != "sales" {
		t.Fatalf("datasets = %v, want [sales]", datasets)
	}

	var period map[string]int
	if resp := get(t, ts, "/v1/period", &period); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/period on replica: %d", resp.StatusCode)
	}
}

func TestReplicaRejectsWrites(t *testing.T) {
	src := &fakeReplica{m: replicaMarket(t), connstat: true}
	ts := httptest.NewServer(NewReplica(src).Routes())
	defer ts.Close()

	for _, tc := range []struct {
		path string
		body any
	}{
		{"/v1/sellers", map[string]string{"id": "s2"}},
		{"/v1/buyers", map[string]string{"id": "b1"}},
		{"/v1/datasets", map[string]string{"seller": "acme", "id": "d2"}},
		{"/v1/bids", map[string]any{"buyer": "b1", "dataset": "sales", "amount": 20}},
		{"/v1/tick", map[string]string{}},
	} {
		resp, out := post(t, ts, tc.path, tc.body)
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("POST %s on replica: status %d, want 403 (%v)", tc.path, resp.StatusCode, out)
		}
		env, _ := out["error"].(map[string]any)
		if env["code"] != apierr.CodeReadOnlyReplica {
			t.Fatalf("POST %s on replica: code %v, want %s", tc.path, env["code"], apierr.CodeReadOnlyReplica)
		}
	}
}

func TestReplicaBatchBidsFailPerSlot(t *testing.T) {
	src := &fakeReplica{m: replicaMarket(t), connstat: true}
	ts := httptest.NewServer(NewReplica(src).Routes())
	defer ts.Close()

	resp, out := post(t, ts, "/v1/bids/batch", map[string]any{
		"bids": []map[string]any{
			{"buyer": "b1", "dataset": "sales", "amount": 20},
			{"buyer": "b2", "dataset": "sales", "amount": 30},
		},
	})
	// The batch endpoint succeeds as a call; each slot carries the
	// read-only rejection.
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch on replica: status %d", resp.StatusCode)
	}
	results, _ := out["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("batch results = %v", out)
	}
	for i, r := range results {
		env, _ := r.(map[string]any)["error"].(map[string]any)
		if env == nil || env["code"] != apierr.CodeReadOnlyReplica {
			t.Fatalf("batch slot %d: %v, want %s", i, r, apierr.CodeReadOnlyReplica)
		}
	}
}

func TestReplicaUnavailableBeforeCatchUp(t *testing.T) {
	src := &fakeReplica{m: nil, ready: apierr.ErrReplicaUnavailable}
	ts := httptest.NewServer(NewReplica(src).Routes())
	defer ts.Close()

	var out map[string]any
	resp := get(t, ts, "/v1/period", &out)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("read before catch-up: status %d, want 503 (%v)", resp.StatusCode, out)
	}
	env, _ := out["error"].(map[string]any)
	if env["code"] != apierr.CodeReplicaUnavailable {
		t.Fatalf("read before catch-up: code %v, want %s", env["code"], apierr.CodeReplicaUnavailable)
	}
}

func TestReplicaReadyzCarriesStaleness(t *testing.T) {
	src := &fakeReplica{m: replicaMarket(t), applied: 41, leader: 44, lag: 0.25, connstat: true}
	ts := httptest.NewServer(NewReplica(src).Routes())
	defer ts.Close()

	var out map[string]any
	if resp := get(t, ts, "/readyz", &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %d (%v)", resp.StatusCode, out)
	}
	if out["status"] != "ready" || out["role"] != "replica" {
		t.Fatalf("readyz body: %v", out)
	}
	if out["applied_seq"] != float64(41) || out["leader_seq"] != float64(44) {
		t.Fatalf("readyz staleness: %v", out)
	}

	// A lagging replica turns unready and says why.
	src.ready = apierr.ErrReplicaUnavailable
	var unready map[string]any
	if resp := get(t, ts, "/readyz", &unready); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unready readyz: %d", resp.StatusCode)
	}
	if unready["status"] != "unready" || unready["reason"] == "" {
		t.Fatalf("unready readyz body: %v", unready)
	}
}
