package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/market"
)

// knownCodes is the closed set of v1 error codes; every rejection the
// API produces must carry one of these.
var knownCodes = map[string]bool{
	CodeDuplicateID:     true,
	CodeUnknownBuyer:    true,
	CodeUnknownSeller:   true,
	CodeUnknownDataset:  true,
	CodeBadBid:          true,
	CodeBidTooSoon:      true,
	CodeBlockedUntil:    true,
	CodeAlreadyAcquired: true,
	CodeDatasetInUse:    true,
	CodeEmptyID:         true,
	CodeUnauthorized:    true,
	CodeBadRequest:      true,
	CodeInternal:        true,
}

// FuzzBidBatchDecode throws arbitrary bodies at POST /v1/bids/batch.
// The contract under test: the handler never panics, never returns a
// 5xx, rejects bad requests with the versioned error envelope and a
// known code, and answers well-formed batches with one result per
// entry where every per-entry rejection again carries a known code.
func FuzzBidBatchDecode(f *testing.F) {
	// Corpus: the payload shapes the endpoint's tests exercise, plus the
	// classic decoder traps.
	seeds := []string{
		`{"bids":[{"buyer":"b1","dataset":"d1","amount":150}]}`,
		`{"bids":[{"buyer":"b1","dataset":"d1","amount":150},{"buyer":"b2","dataset":"d2","amount":150}]}`,
		// Duplicate (buyer, dataset) pairs: the second entry must fail its
		// slot with bid_too_soon, never the whole batch.
		`{"bids":[{"buyer":"b1","dataset":"d1","amount":5},{"buyer":"b1","dataset":"d1","amount":5}]}`,
		// Negative, zero, and absurd amounts.
		`{"bids":[{"buyer":"b1","dataset":"d1","amount":-3}]}`,
		`{"bids":[{"buyer":"b1","dataset":"d1","amount":0}]}`,
		`{"bids":[{"buyer":"b1","dataset":"d1","amount":1e300}]}`,
		// Unknown participants and datasets.
		`{"bids":[{"buyer":"ghost","dataset":"d1","amount":10}]}`,
		`{"bids":[{"buyer":"b1","dataset":"nope","amount":10}]}`,
		`{"bids":[{"buyer":"","dataset":"","amount":10}]}`,
		// Derived dataset target.
		`{"bids":[{"buyer":"b1","dataset":"c1","amount":80}]}`,
		// Malformed JSON and schema violations.
		`{"bids":[`,
		`{"bids":{}}`,
		`{"bids":[{"buyer":1,"dataset":"d1","amount":"x"}]}`,
		`{"bids":[],"extra":true}`,
		`{"bids":[]}`,
		`[]`,
		`null`,
		``,
		`{"bids":[{"buyer":"b1","dataset":"d1","amount":150,"mystery":1}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	m := market.MustNew(market.Config{
		Engine: core.Config{
			Candidates: auction.LinearGrid(10, 100, 10),
			EpochSize:  4,
			MinBid:     1,
		},
		Seed: 9,
	})
	for _, b := range []market.BuyerID{"b1", "b2"} {
		if err := m.RegisterBuyer(b); err != nil {
			f.Fatal(err)
		}
	}
	if err := m.RegisterSeller("s"); err != nil {
		f.Fatal(err)
	}
	for _, d := range []market.DatasetID{"d1", "d2"} {
		if err := m.UploadDataset("s", d); err != nil {
			f.Fatal(err)
		}
	}
	if err := m.ComposeDataset("c1", "d1", "d2"); err != nil {
		f.Fatal(err)
	}
	handler := NewServer(m).Routes()

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/bids/batch", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)

		switch {
		case rec.Code == http.StatusOK:
			var resp struct {
				Results []batchBidResult `json:"results"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("200 response is not a results payload: %v\nbody: %s", err, rec.Body.Bytes())
			}
			if len(resp.Results) == 0 {
				t.Fatalf("200 response with empty results for body %q", body)
			}
			for i, r := range resp.Results {
				if r.Error != nil {
					if !knownCodes[r.Error.Code] {
						t.Errorf("entry %d: unknown error code %q", i, r.Error.Code)
					}
					if r.Error.Message == "" {
						t.Errorf("entry %d: empty error message", i)
					}
					continue
				}
				if r.PricePaid < 0 {
					t.Errorf("entry %d: negative price %v", i, r.PricePaid)
				}
				if r.WaitPeriods < 0 {
					t.Errorf("entry %d: negative wait %d", i, r.WaitPeriods)
				}
			}
		case rec.Code >= 400 && rec.Code < 500:
			var env errorEnvelope
			if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
				t.Fatalf("rejection is not an error envelope: %v\nbody: %s", err, rec.Body.Bytes())
			}
			if !knownCodes[env.Error.Code] {
				t.Errorf("unknown error code %q", env.Error.Code)
			}
			if env.Error.Message == "" {
				t.Error("empty error message in envelope")
			}
		default:
			t.Errorf("status %d for body %q: batch decoding must never 5xx", rec.Code, body)
		}
	})
}
