package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/datamarket/shield/internal/market"
)

// traceRequest posts a bid carrying the propagated trace headers and
// returns the response.
func traceRequest(t *testing.T, ts *httptest.Server, traceID string, sampled bool) *http.Response {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"buyer": "bob", "dataset": "d", "amount": 150.0})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/bids", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-ID", traceID)
	if sampled {
		req.Header.Set("X-Trace-Sampled", "1")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestInboundTraceHeadersAdopted pins the HTTP half of cross-process
// trace propagation: a request carrying X-Trace-ID executes (and
// echoes X-Request-ID) under the caller's ID, a sampled one lands in
// the ring retrievable via /debug/traces?id=, and an unsampled one
// stays out of the ring — the originator's sampling decision is
// authoritative.
func TestInboundTraceHeadersAdopted(t *testing.T) {
	m := market.MustNew(testConfig())
	ts := httptest.NewServer(NewServer(m).Routes())
	defer ts.Close()

	post(t, ts, "/v1/sellers", map[string]string{"id": "s"})
	post(t, ts, "/v1/datasets", map[string]string{"seller": "s", "id": "d"})
	post(t, ts, "/v1/buyers", map[string]string{"id": "bob"})

	resp := traceRequest(t, ts, "req-peer-00000001", true)
	if got := resp.Header.Get("X-Request-ID"); got != "req-peer-00000001" {
		t.Fatalf("X-Request-ID = %q, want the propagated id", got)
	}

	var out struct {
		Trace struct {
			ID    string `json:"id"`
			Name  string `json:"name"`
			Spans []struct {
				Name string `json:"name"`
			} `json:"spans"`
		} `json:"trace"`
	}
	if got := get(t, ts, "/debug/traces?id=req-peer-00000001", &out).StatusCode; got != http.StatusOK {
		t.Fatalf("trace lookup = %d, want 200", got)
	}
	if out.Trace.ID != "req-peer-00000001" || out.Trace.Name != "POST /v1/bids" {
		t.Fatalf("looked-up trace = %+v", out.Trace)
	}
	var names []string
	for _, sp := range out.Trace.Spans {
		names = append(names, sp.Name)
	}
	if !strings.Contains(strings.Join(names, " "), "price.evaluate") {
		t.Fatalf("adopted trace spans %v missing the bid lifecycle", names)
	}

	// Unsampled propagation: the ID is honored, the ring is not touched.
	resp = traceRequest(t, ts, "req-peer-00000002", false)
	if got := resp.Header.Get("X-Request-ID"); got != "req-peer-00000002" {
		t.Fatalf("X-Request-ID = %q, want the propagated id", got)
	}
	var errOut map[string]any
	if got := get(t, ts, "/debug/traces?id=req-peer-00000002", &errOut).StatusCode; got != http.StatusNotFound {
		t.Fatalf("unsampled trace lookup = %d, want 404", got)
	}
}
