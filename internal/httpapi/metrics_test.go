package httpapi

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestMetricsExpositionFormat validates the /metrics output against the
// Prometheus text exposition format rules a scraper actually enforces:
// every sample belongs to a family announced by HELP and TYPE lines,
// all samples of a family are contiguous (no interleaving), no family
// is announced twice, and no series repeats.
func TestMetricsExpositionFormat(t *testing.T) {
	ts := testServer(t)
	post(t, ts, "/v1/sellers", map[string]string{"id": "s"})
	for _, d := range []string{"alpha", "beta", "gamma"} {
		post(t, ts, "/v1/datasets", map[string]string{"seller": "s", "id": d})
	}
	post(t, ts, "/v1/buyers", map[string]string{"id": "b"})
	// Traffic on several datasets so per-dataset families have multiple
	// samples — that is what exposed the interleaving bug.
	for _, d := range []string{"alpha", "beta", "gamma"} {
		post(t, ts, "/v1/bids", map[string]any{"buyer": "b", "dataset": d, "amount": 150.0})
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	validateExposition(t, resp.Body)
}

func validateExposition(t *testing.T, r io.Reader) {
	t.Helper()
	var (
		current  string // family currently open (after HELP/TYPE)
		helped   = map[string]bool{}
		typed    = map[string]bool{}
		closed   = map[string]bool{} // families whose sample block ended
		series   = map[string]bool{}
		samples  = map[string]int{}
		suffixed = map[string]string{} // histogram sample name -> base family
		scanner  = bufio.NewScanner(r)
		metricOf = func(sample string) string {
			name := strings.FieldsFunc(sample, func(r rune) bool { return r == '{' || r == ' ' })[0]
			if base, ok := suffixed[name]; ok {
				return base
			}
			return name
		}
		lineCount int
	)
	for scanner.Scan() {
		line := scanner.Text()
		lineCount++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			name := strings.Fields(line)[2]
			if helped[name] {
				t.Errorf("line %d: duplicate HELP for %s", lineCount, name)
			}
			helped[name] = true
			if current != "" && current != name {
				closed[current] = true
			}
			current = name
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			name, kind := fields[2], fields[3]
			if name != current {
				t.Errorf("line %d: TYPE %s does not follow its HELP (current family %s)", lineCount, name, current)
			}
			if typed[name] {
				t.Errorf("line %d: duplicate TYPE for %s", lineCount, name)
			}
			typed[name] = true
			switch kind {
			case "counter", "gauge":
			case "histogram":
				// Histogram samples carry suffixed names that belong to
				// the base family's contiguous block.
				suffixed[name+"_bucket"] = name
				suffixed[name+"_sum"] = name
				suffixed[name+"_count"] = name
			default:
				t.Errorf("line %d: unexpected metric type %q", lineCount, kind)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := metricOf(line)
		if name != current {
			if closed[name] {
				t.Errorf("line %d: sample for %s outside its contiguous block (family interleaving)", lineCount, name)
			} else {
				t.Errorf("line %d: sample for %s before its HELP/TYPE header", lineCount, name)
			}
			continue
		}
		if !typed[name] {
			t.Errorf("line %d: sample for %s before TYPE", lineCount, name)
		}
		// The series key is name{labels}; label values may contain
		// spaces (route="POST /v1/bids"), so split after the closing
		// brace rather than at the first space.
		key := strings.SplitN(line, " ", 2)[0]
		if brace := strings.LastIndex(line, "}"); strings.Contains(key, "{") && brace >= 0 {
			key = line[:brace+1]
		}
		if series[key] {
			t.Errorf("line %d: duplicate series %s", lineCount, key)
		}
		series[key] = true
		samples[name]++
		var v float64
		rest := strings.TrimSpace(line[len(key):])
		if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
			t.Errorf("line %d: unparseable sample value %q", lineCount, rest)
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}

	// Every announced family carries at least one sample, and the
	// families the dashboard relies on are present.
	for name := range helped {
		if samples[name] == 0 {
			t.Errorf("family %s announced but has no samples", name)
		}
	}
	for _, want := range []string{
		"shield_market_revenue_units",
		"shield_dataset_bids_total",
		"shield_dataset_posting_price",
		"shield_shard_bids_total",
		"shield_shard_lock_contention_total",
		"shield_shard_bid_latency_seconds_total",
		"shield_shard_datasets",
		"shield_shard_lock_wait_seconds",
		"shield_price_evaluate_seconds",
		"shield_http_request_seconds",
		"shield_metrics_scrape_errors_total",
	} {
		if !helped[want] || !typed[want] {
			t.Errorf("family %s missing HELP/TYPE", want)
		}
	}
	if samples["shield_dataset_bids_total"] != 3 {
		t.Errorf("shield_dataset_bids_total samples = %d, want 3", samples["shield_dataset_bids_total"])
	}
}
