package httpapi

import "net/http"

// handleMetrics serves the shared obs registry in the Prometheus text
// exposition format. Every family — market books, per-dataset engine
// diagnostics, shard lock behaviour, HTTP latency, journal durability —
// is registered on the registry by the layer that owns it, and
// WritePrometheus owns ordering and escaping; nothing is hand-written
// here. Like the stats endpoint this is operator-facing: posting prices
// per dataset must not be reachable by buyers, so the route sits behind
// the operator gate when auth is configured.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.tel.Registry.WritePrometheus(w)
}
