package httpapi

import (
	"fmt"
	"net/http"
	"strings"

	"github.com/datamarket/shield/internal/market"
)

// handleMetrics exposes operator metrics in the Prometheus text
// exposition format (no client library needed — the format is plain
// text). Like the stats endpoint, this is operator-facing: posting
// prices per dataset must not be reachable by buyers.
//
// The exposition format requires every sample of a metric family to
// appear contiguously after its HELP/TYPE header, so per-dataset and
// per-shard stats are collected first and then emitted family by
// family, never interleaved per label.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	fmt.Fprintf(w, "# HELP shield_market_revenue_units Total revenue raised across all datasets.\n")
	fmt.Fprintf(w, "# TYPE shield_market_revenue_units counter\n")
	fmt.Fprintf(w, "shield_market_revenue_units %g\n", s.m.Revenue().Float())

	fmt.Fprintf(w, "# HELP shield_market_transactions_total Completed sales.\n")
	fmt.Fprintf(w, "# TYPE shield_market_transactions_total counter\n")
	fmt.Fprintf(w, "shield_market_transactions_total %d\n", len(s.m.Transactions()))

	fmt.Fprintf(w, "# HELP shield_market_period Current market period.\n")
	fmt.Fprintf(w, "# TYPE shield_market_period gauge\n")
	fmt.Fprintf(w, "shield_market_period %d\n", s.m.Period())

	type datasetSample struct {
		label string
		stats market.DatasetStats
	}
	var datasets []datasetSample
	for _, id := range s.m.Datasets() {
		stats, err := s.m.Stats(id)
		if err != nil {
			continue
		}
		datasets = append(datasets, datasetSample{promLabel(string(id)), stats})
	}

	fmt.Fprintf(w, "# HELP shield_dataset_bids_total Bids evaluated per dataset.\n")
	fmt.Fprintf(w, "# TYPE shield_dataset_bids_total counter\n")
	for _, d := range datasets {
		fmt.Fprintf(w, "shield_dataset_bids_total{dataset=%q} %d\n", d.label, d.stats.Bids)
	}
	fmt.Fprintf(w, "# HELP shield_dataset_allocations_total Winning bids per dataset.\n")
	fmt.Fprintf(w, "# TYPE shield_dataset_allocations_total counter\n")
	for _, d := range datasets {
		fmt.Fprintf(w, "shield_dataset_allocations_total{dataset=%q} %d\n", d.label, d.stats.Allocations)
	}
	fmt.Fprintf(w, "# HELP shield_dataset_epochs_total Completed pricing epochs per dataset.\n")
	fmt.Fprintf(w, "# TYPE shield_dataset_epochs_total counter\n")
	for _, d := range datasets {
		fmt.Fprintf(w, "shield_dataset_epochs_total{dataset=%q} %d\n", d.label, d.stats.Epochs)
	}
	fmt.Fprintf(w, "# HELP shield_dataset_revenue_units Revenue per dataset.\n")
	fmt.Fprintf(w, "# TYPE shield_dataset_revenue_units counter\n")
	for _, d := range datasets {
		fmt.Fprintf(w, "shield_dataset_revenue_units{dataset=%q} %g\n", d.label, d.stats.Revenue)
	}
	fmt.Fprintf(w, "# HELP shield_dataset_posting_price Current posting price per dataset (operator only).\n")
	fmt.Fprintf(w, "# TYPE shield_dataset_posting_price gauge\n")
	for _, d := range datasets {
		fmt.Fprintf(w, "shield_dataset_posting_price{dataset=%q} %g\n", d.label, d.stats.PostingPrice)
	}

	shards := s.m.ShardStats()
	fmt.Fprintf(w, "# HELP shield_shard_datasets Datasets currently hashed to each lock shard.\n")
	fmt.Fprintf(w, "# TYPE shield_shard_datasets gauge\n")
	for _, sh := range shards {
		fmt.Fprintf(w, "shield_shard_datasets{shard=\"%d\"} %d\n", sh.Shard, sh.Datasets)
	}
	fmt.Fprintf(w, "# HELP shield_shard_bids_total Bids routed through each lock shard.\n")
	fmt.Fprintf(w, "# TYPE shield_shard_bids_total counter\n")
	for _, sh := range shards {
		fmt.Fprintf(w, "shield_shard_bids_total{shard=\"%d\"} %d\n", sh.Shard, sh.Bids)
	}
	fmt.Fprintf(w, "# HELP shield_shard_lock_contention_total Shard-lock acquisitions that had to wait.\n")
	fmt.Fprintf(w, "# TYPE shield_shard_lock_contention_total counter\n")
	for _, sh := range shards {
		fmt.Fprintf(w, "shield_shard_lock_contention_total{shard=\"%d\"} %d\n", sh.Shard, sh.Contention)
	}
	fmt.Fprintf(w, "# HELP shield_shard_bid_latency_seconds_total Cumulative wall time inside locked bid sections per shard.\n")
	fmt.Fprintf(w, "# TYPE shield_shard_bid_latency_seconds_total counter\n")
	for _, sh := range shards {
		fmt.Fprintf(w, "shield_shard_bid_latency_seconds_total{shard=\"%d\"} %g\n", sh.Shard, sh.BidLatency.Seconds())
	}
}

// promLabel sanitizes a label value for the exposition format (the %q
// above handles quoting; newlines are the remaining hazard).
func promLabel(v string) string {
	v = strings.ReplaceAll(v, "\n", " ")
	return v
}
