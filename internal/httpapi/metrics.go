package httpapi

import (
	"fmt"
	"net/http"
	"strings"
)

// handleMetrics exposes operator metrics in the Prometheus text
// exposition format (no client library needed — the format is plain
// text). Like the stats endpoint, this is operator-facing: posting
// prices per dataset must not be reachable by buyers.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	fmt.Fprintf(w, "# HELP shield_market_revenue_units Total revenue raised across all datasets.\n")
	fmt.Fprintf(w, "# TYPE shield_market_revenue_units counter\n")
	fmt.Fprintf(w, "shield_market_revenue_units %g\n", s.m.Revenue().Float())

	fmt.Fprintf(w, "# HELP shield_market_transactions_total Completed sales.\n")
	fmt.Fprintf(w, "# TYPE shield_market_transactions_total counter\n")
	fmt.Fprintf(w, "shield_market_transactions_total %d\n", len(s.m.Transactions()))

	fmt.Fprintf(w, "# HELP shield_market_period Current market period.\n")
	fmt.Fprintf(w, "# TYPE shield_market_period gauge\n")
	fmt.Fprintf(w, "shield_market_period %d\n", s.m.Period())

	fmt.Fprintf(w, "# HELP shield_dataset_bids_total Bids evaluated per dataset.\n")
	fmt.Fprintf(w, "# TYPE shield_dataset_bids_total counter\n")
	fmt.Fprintf(w, "# HELP shield_dataset_allocations_total Winning bids per dataset.\n")
	fmt.Fprintf(w, "# TYPE shield_dataset_allocations_total counter\n")
	fmt.Fprintf(w, "# HELP shield_dataset_epochs_total Completed pricing epochs per dataset.\n")
	fmt.Fprintf(w, "# TYPE shield_dataset_epochs_total counter\n")
	fmt.Fprintf(w, "# HELP shield_dataset_revenue_units Revenue per dataset.\n")
	fmt.Fprintf(w, "# TYPE shield_dataset_revenue_units counter\n")
	fmt.Fprintf(w, "# HELP shield_dataset_posting_price Current posting price per dataset (operator only).\n")
	fmt.Fprintf(w, "# TYPE shield_dataset_posting_price gauge\n")
	for _, id := range s.m.Datasets() {
		stats, err := s.m.Stats(id)
		if err != nil {
			continue
		}
		label := promLabel(string(id))
		fmt.Fprintf(w, "shield_dataset_bids_total{dataset=%q} %d\n", label, stats.Bids)
		fmt.Fprintf(w, "shield_dataset_allocations_total{dataset=%q} %d\n", label, stats.Allocations)
		fmt.Fprintf(w, "shield_dataset_epochs_total{dataset=%q} %d\n", label, stats.Epochs)
		fmt.Fprintf(w, "shield_dataset_revenue_units{dataset=%q} %g\n", label, stats.Revenue)
		fmt.Fprintf(w, "shield_dataset_posting_price{dataset=%q} %g\n", label, stats.PostingPrice)
	}
}

// promLabel sanitizes a label value for the exposition format (the %q
// above handles quoting; newlines are the remaining hazard).
func promLabel(v string) string {
	v = strings.ReplaceAll(v, "\n", " ")
	return v
}
