package httpapi

import (
	"context"
	"io"
	"log/slog"
	"net/http"

	"github.com/datamarket/shield/internal/apierr"
	"github.com/datamarket/shield/internal/market"
)

// ReplicaSource is the state a read-replica server serves from: a
// follower that maintains a local market by applying the leader's
// replicated command stream (internal/replica.Follower implements it).
// Market may return nil before the first catch-up completes; the server
// answers such reads with CodeReplicaUnavailable rather than a panic.
type ReplicaSource interface {
	// Market returns the follower's current read view, or nil while no
	// state has been restored yet.
	Market() *market.Market
	// Ready reports whether the replica should receive read traffic:
	// non-nil when it has no state, has diverged, or its staleness
	// exceeds the configured bound.
	Ready() error
	// Staleness reports the follower's applied seq, its best knowledge
	// of the leader's seq, seconds since it last proved currency, and
	// whether the replication stream is currently connected.
	Staleness() (applied, leader int64, lagSeconds float64, connected bool)
}

// NewReplica builds a read-only Server over a replication follower.
// Every read endpoint serves from the follower's local market — no
// round-trip to the leader — and every mutating endpoint (including
// /v1/tick) answers CodeReadOnlyReplica with 403. /readyz reports the
// follower's staleness alongside its readiness so load balancers can
// rotate a lagging replica out of the read pool.
func NewReplica(src ReplicaSource) *Server {
	return &Server{
		replica: src,
		mut:     readOnlyMutator{},
		tick:    func() (int, error) { return 0, apierr.ErrReadOnlyReplica },
		ready:   src.Ready,
		logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
}

// market resolves the read view for this request. On the leader that is
// the fixed market the server was built over; on a replica it is the
// follower's current view, which does not exist until the first
// catch-up completes (and is swapped wholesale when a reconnect falls
// back to snapshot mode — resolve once per request, never cache).
func (s *Server) market() (*market.Market, error) {
	if s.replica == nil {
		return s.m, nil
	}
	if m := s.replica.Market(); m != nil {
		return m, nil
	}
	return nil, apierr.ErrReplicaUnavailable
}

// readOnlyMutator rejects every write with the replica sentinel; the
// generic error path classifies it to CodeReadOnlyReplica / 403.
type readOnlyMutator struct{}

func (readOnlyMutator) RegisterBuyer(market.BuyerID) error   { return apierr.ErrReadOnlyReplica }
func (readOnlyMutator) RegisterSeller(market.SellerID) error { return apierr.ErrReadOnlyReplica }
func (readOnlyMutator) UploadDataset(market.SellerID, market.DatasetID) error {
	return apierr.ErrReadOnlyReplica
}
func (readOnlyMutator) WithdrawDataset(market.SellerID, market.DatasetID) error {
	return apierr.ErrReadOnlyReplica
}
func (readOnlyMutator) ComposeDataset(market.DatasetID, ...market.DatasetID) error {
	return apierr.ErrReadOnlyReplica
}
func (readOnlyMutator) SubmitBidCtx(context.Context, market.BuyerID, market.DatasetID, float64) (market.Decision, error) {
	return market.Decision{}, apierr.ErrReadOnlyReplica
}
func (readOnlyMutator) SubmitBidsCtx(_ context.Context, reqs []market.BidRequest) []market.BidResult {
	out := make([]market.BidResult, len(reqs))
	for i := range out {
		out[i].Err = apierr.ErrReadOnlyReplica
	}
	return out
}

// handleReplicaReadyz is /readyz on a replica: the usual ready/unready
// verdict plus the staleness numbers operators alert on. The same
// numbers are exported as shield_replica_* gauges; this endpoint is the
// per-instance view a load balancer's health check reads.
func (s *Server) handleReplicaReadyz(w http.ResponseWriter) {
	applied, leader, lag, connected := s.replica.Staleness()
	body := map[string]any{
		"role":        "replica",
		"applied_seq": applied,
		"leader_seq":  leader,
		"lag_seconds": lag,
		"connected":   connected,
	}
	if err := s.replica.Ready(); err != nil {
		body["status"] = "unready"
		body["reason"] = err.Error()
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	body["status"] = "ready"
	writeJSON(w, http.StatusOK, body)
}
