package httpapi

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/auth"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/journal"
	"github.com/datamarket/shield/internal/market"
)

func testConfig() market.Config {
	return market.Config{
		Engine: core.Config{
			Candidates: auction.LinearGrid(10, 100, 10),
			EpochSize:  4,
			MinBid:     1,
		},
		Seed: 9,
	}
}

// operatorGet issues a GET with an optional bearer token.
func operatorGet(t *testing.T, ts *httptest.Server, path, token string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

var operatorPaths = []string{"/metrics", "/debug/traces", "/v1/datasets/x/stats"}

// TestOperatorEndpointsGated pins the operator-gate contract: with bid
// auth enabled, /metrics, /debug/traces and /v1/datasets/{id}/stats
// require the configured bearer token (posting prices and traces are
// exactly what the shield keeps from buyers).
func TestOperatorEndpointsGated(t *testing.T) {
	m := market.MustNew(testConfig())
	srv := NewServer(m).WithAuth(auth.NewVerifier(nil)).WithOperatorToken("sekrit")
	ts := httptest.NewServer(srv.Routes())
	defer ts.Close()

	for _, path := range operatorPaths {
		if got := operatorGet(t, ts, path, "").StatusCode; got != http.StatusUnauthorized {
			t.Errorf("GET %s without token = %d, want 401", path, got)
		}
		if got := operatorGet(t, ts, path, "wrong").StatusCode; got != http.StatusUnauthorized {
			t.Errorf("GET %s with wrong token = %d, want 401", path, got)
		}
		if got := operatorGet(t, ts, path, "sekrit").StatusCode; got == http.StatusUnauthorized {
			t.Errorf("GET %s with operator token = 401, want authorized", path)
		}
	}
	// Public endpoints stay open under auth.
	if got := operatorGet(t, ts, "/healthz", "").StatusCode; got != http.StatusOK {
		t.Errorf("GET /healthz under auth = %d, want 200", got)
	}
}

// TestOperatorEndpointsFailClosed: auth on but no operator token
// configured means the operator endpoints lock shut rather than open.
func TestOperatorEndpointsFailClosed(t *testing.T) {
	m := market.MustNew(testConfig())
	ts := httptest.NewServer(NewServer(m).WithAuth(auth.NewVerifier(nil)).Routes())
	defer ts.Close()
	for _, path := range operatorPaths {
		if got := operatorGet(t, ts, path, "anything").StatusCode; got != http.StatusUnauthorized {
			t.Errorf("GET %s with auth and no operator token = %d, want 401", path, got)
		}
	}
}

// TestOperatorEndpointsOpenWithoutAuth: a development deployment with
// neither bid auth nor a token keeps the operator endpoints open.
func TestOperatorEndpointsOpenWithoutAuth(t *testing.T) {
	ts := testServer(t)
	for _, path := range []string{"/metrics", "/debug/traces"} {
		if got := operatorGet(t, ts, path, "").StatusCode; got != http.StatusOK {
			t.Errorf("GET %s without auth = %d, want 200", path, got)
		}
	}
}

// failAfterWriter passes through n writes, then fails every write.
type failAfterWriter struct {
	n int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk gone")
	}
	w.n--
	return len(p), nil
}

// TestReadyz pins the readiness contract: an unjournaled server is
// always ready; a journaled server goes unready (503) the moment its
// journal writer is poisoned, while liveness stays 200.
func TestReadyz(t *testing.T) {
	ts := testServer(t)
	var out map[string]string
	if resp := get(t, ts, "/readyz", &out); resp.StatusCode != http.StatusOK || out["status"] != "ready" {
		t.Fatalf("unjournaled readyz: %d %v", resp.StatusCode, out)
	}

	// Journaled server whose sink dies after the genesis record.
	jm, err := journal.NewMarket(testConfig(), &failAfterWriter{n: 1})
	if err != nil {
		t.Fatal(err)
	}
	jts := httptest.NewServer(NewJournaled(jm).Routes())
	defer jts.Close()
	if resp := get(t, jts, "/readyz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("journaled readyz before poison = %d, want 200", resp.StatusCode)
	}
	// This write poisons the journal: the market mutates but the append
	// fails, so the daemon must stop taking writes.
	post(t, jts, "/v1/sellers", map[string]string{"id": "s"})
	var unready map[string]string
	if resp := get(t, jts, "/readyz", &unready); resp.StatusCode != http.StatusServiceUnavailable || unready["status"] != "unready" {
		t.Fatalf("journaled readyz after poison: %d %v", resp.StatusCode, unready)
	}
	if resp := get(t, jts, "/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after poison = %d, want 200 (liveness is not readiness)", resp.StatusCode)
	}
}

// TestReadyzStoreInventory: a server over a segmented journal reports
// the store's segment/checkpoint inventory in its ready body.
func TestReadyzStoreInventory(t *testing.T) {
	jm, _, err := journal.OpenStore(testConfig(), t.TempDir(),
		journal.StoreConfig{SegmentRecords: 4, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer jm.Close()
	for i := 0; i < 10; i++ {
		if err := jm.RegisterBuyer(market.BuyerID(fmt.Sprintf("b%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	jts := httptest.NewServer(NewJournaled(jm).Routes())
	defer jts.Close()
	var out map[string]any
	if resp := get(t, jts, "/readyz", &out); resp.StatusCode != http.StatusOK || out["status"] != "ready" {
		t.Fatalf("store-backed readyz: %d %v", resp.StatusCode, out)
	}
	inv, ok := out["journal"].(map[string]any)
	if !ok {
		t.Fatalf("ready body has no journal inventory: %v", out)
	}
	if segs, _ := inv["segments"].(float64); segs < 2 {
		t.Fatalf("inventory reports %v segments, want >= 2 after rotation", inv["segments"])
	}
	if last, _ := inv["last_seq"].(float64); int64(last) != jm.LastSeq() {
		t.Fatalf("inventory last_seq %v, market at %d", inv["last_seq"], jm.LastSeq())
	}
}

// TestRequestIDHeader: every response carries the minted request ID.
func TestRequestIDHeader(t *testing.T) {
	ts := testServer(t)
	resp := get(t, ts, "/v1/datasets", nil)
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("response missing X-Request-ID")
	}
}

// TestBidTraceRetrievable is the telemetry layer's acceptance test: a
// single bid through the HTTP API of a journaled (fsynced) server
// yields a retrievable trace whose spans name every stage of the bid
// lifecycle, and the journal record carries the same request ID so a
// log line, a journal event and a trace all join on it.
func TestBidTraceRetrievable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "market.journal")
	jm, _, err := journal.OpenFile(testConfig(), path, journal.WithFsync())
	if err != nil {
		t.Fatal(err)
	}
	defer jm.Close()
	ts := httptest.NewServer(NewJournaled(jm).Routes())
	defer ts.Close()

	post(t, ts, "/v1/sellers", map[string]string{"id": "s"})
	post(t, ts, "/v1/datasets", map[string]string{"seller": "s", "id": "d"})
	post(t, ts, "/v1/buyers", map[string]string{"id": "bob"})
	resp, _ := post(t, ts, "/v1/bids", map[string]any{"buyer": "bob", "dataset": "d", "amount": 150.0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bid: %d", resp.StatusCode)
	}
	bidID := resp.Header.Get("X-Request-ID")
	if bidID == "" {
		t.Fatal("bid response missing X-Request-ID")
	}

	// The journal event for the bid records the request ID.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	events, err := journal.Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var bidEvent *journal.Event
	for i := range events {
		if events[i].Op == journal.OpBid {
			bidEvent = &events[i]
		}
	}
	if bidEvent == nil {
		t.Fatal("no bid event journaled")
	}
	if bidEvent.Trace != bidID {
		t.Fatalf("journal event trace = %q, want %q", bidEvent.Trace, bidID)
	}

	// The trace is retrievable and carries the lifecycle spans.
	var out struct {
		Traces []struct {
			ID    string `json:"id"`
			Name  string `json:"name"`
			Spans []struct {
				Name string `json:"name"`
			} `json:"spans"`
		} `json:"traces"`
	}
	get(t, ts, "/debug/traces", &out)
	var spans []string
	for _, tr := range out.Traces {
		if tr.ID != bidID {
			continue
		}
		if tr.Name != "POST /v1/bids" {
			t.Errorf("trace name = %q, want POST /v1/bids", tr.Name)
		}
		for _, sp := range tr.Spans {
			spans = append(spans, sp.Name)
		}
	}
	for _, want := range []string{"http.parse", "shard.lock_wait", "price.evaluate", "journal.append", "journal.fsync"} {
		if !slices.Contains(spans, want) {
			t.Errorf("trace %s missing span %q (got %v)", bidID, want, spans)
		}
	}
}
