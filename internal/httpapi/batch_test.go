package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/auth"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/journal"
	"github.com/datamarket/shield/internal/market"
)

// postBatch posts a batch request and decodes the results array.
func postBatch(t *testing.T, ts *httptest.Server, bids []map[string]any) (*http.Response, []map[string]any) {
	t.Helper()
	resp, raw := post(t, ts, "/v1/bids/batch", map[string]any{"bids": bids})
	var results []map[string]any
	if arr, ok := raw["results"].([]any); ok {
		for _, e := range arr {
			results = append(results, e.(map[string]any))
		}
	}
	return resp, results
}

func TestBidBatchEndpoint(t *testing.T) {
	ts := testServer(t)
	post(t, ts, "/v1/sellers", map[string]string{"id": "s"})
	for _, d := range []string{"d1", "d2", "d3"} {
		post(t, ts, "/v1/datasets", map[string]string{"seller": "s", "id": d})
	}
	for _, b := range []string{"b1", "b2"} {
		post(t, ts, "/v1/buyers", map[string]string{"id": b})
	}

	resp, results := postBatch(t, ts, []map[string]any{
		{"buyer": "b1", "dataset": "d1", "amount": 150.0},
		{"buyer": "b2", "dataset": "d2", "amount": 150.0},
		{"buyer": "ghost", "dataset": "d3", "amount": 150.0},
		{"buyer": "b1", "dataset": "nope", "amount": 150.0},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, want 200", resp.StatusCode)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4", len(results))
	}
	for i := 0; i < 2; i++ {
		if results[i]["allocated"] != true {
			t.Fatalf("entry %d not allocated: %v", i, results[i])
		}
		if results[i]["error"] != nil {
			t.Fatalf("entry %d carries error: %v", i, results[i])
		}
	}
	for i, wantCode := range map[int]string{2: CodeUnknownBuyer, 3: CodeUnknownDataset} {
		env, ok := results[i]["error"].(map[string]any)
		if !ok {
			t.Fatalf("entry %d has no error envelope: %v", i, results[i])
		}
		if env["code"] != wantCode {
			t.Fatalf("entry %d code = %v, want %s", i, env["code"], wantCode)
		}
		if env["message"] == "" {
			t.Fatalf("entry %d has empty message", i)
		}
	}

	// Empty and oversized batches are rejected whole.
	resp, raw := post(t, ts, "/v1/bids/batch", map[string]any{"bids": []any{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d, want 400", resp.StatusCode)
	}
	if env := raw["error"].(map[string]any); env["code"] != CodeBadRequest {
		t.Fatalf("empty batch code = %v", env["code"])
	}
	big := make([]map[string]any, maxBatchBids+1)
	for i := range big {
		big[i] = map[string]any{"buyer": "b1", "dataset": "d1", "amount": 1.0}
	}
	resp, _ = postBatch(t, ts, big)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch status = %d, want 400", resp.StatusCode)
	}
}

func TestBidBatchAuth(t *testing.T) {
	m := market.MustNew(market.Config{
		Engine: core.Config{
			Candidates: auction.LinearGrid(10, 100, 10),
			EpochSize:  4,
			MinBid:     1,
		},
		Seed: 12,
	})
	verifier := auth.NewVerifier(nil)
	ts := httptest.NewServer(NewServer(m).WithAuth(verifier).Routes())
	t.Cleanup(ts.Close)

	post(t, ts, "/v1/sellers", map[string]string{"id": "s"})
	post(t, ts, "/v1/datasets", map[string]string{"seller": "s", "id": "d"})
	_, out := post(t, ts, "/v1/buyers", map[string]string{"id": "bob"})
	cred := auth.Credential{BuyerID: "bob", Secret: out["credential"].(string)}

	signed, err := auth.Sign(cred, "d", 150_000_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	resp, results := postBatch(t, ts, []map[string]any{
		{"buyer": "bob", "dataset": "d",
			"amount_micros": signed.AmountMicros, "nonce": signed.Nonce, "mac": signed.MAC},
		{"buyer": "bob", "dataset": "d", "amount": 99.0}, // unsigned
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("signed batch status = %d", resp.StatusCode)
	}
	if results[0]["allocated"] != true {
		t.Fatalf("signed entry lost: %v", results[0])
	}
	env, ok := results[1]["error"].(map[string]any)
	if !ok || env["code"] != CodeUnauthorized {
		t.Fatalf("unsigned entry = %v, want unauthorized envelope", results[1])
	}
}

// TestBidBatchJournaled drives batches through a journaled server and
// confirms the market restored from the log matches the live one.
func TestBidBatchJournaled(t *testing.T) {
	path := filepath.Join(t.TempDir(), "market.log")
	cfg := market.Config{
		Engine: core.Config{
			Candidates: auction.LinearGrid(10, 100, 10),
			EpochSize:  4,
			MinBid:     1,
		},
		Seed: 13,
	}
	jm, _, err := journal.OpenFile(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewJournaled(jm).Routes())
	t.Cleanup(ts.Close)

	post(t, ts, "/v1/sellers", map[string]string{"id": "s"})
	post(t, ts, "/v1/datasets", map[string]string{"seller": "s", "id": "d1"})
	post(t, ts, "/v1/datasets", map[string]string{"seller": "s", "id": "d2"})
	for i := 0; i < 4; i++ {
		post(t, ts, "/v1/buyers", map[string]string{"id": fmt.Sprintf("b%d", i)})
	}
	resp, results := postBatch(t, ts, []map[string]any{
		{"buyer": "b0", "dataset": "d1", "amount": 150.0},
		{"buyer": "b1", "dataset": "d2", "amount": 150.0},
		{"buyer": "b2", "dataset": "d1", "amount": 2.0},
		{"buyer": "ghost", "dataset": "d2", "amount": 150.0}, // not journaled
	})
	if resp.StatusCode != http.StatusOK || len(results) != 4 {
		t.Fatalf("batch: %d, %d results", resp.StatusCode, len(results))
	}
	if err := jm.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	restored, err := journal.Restore(f)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Revenue() != jm.Revenue() {
		t.Fatalf("restored revenue %v != live %v", restored.Revenue(), jm.Revenue())
	}
	lt, rt := jm.Transactions(), restored.Transactions()
	if len(lt) != len(rt) {
		t.Fatalf("transactions: %d vs %d", len(lt), len(rt))
	}
	for i := range lt {
		if lt[i] != rt[i] {
			t.Fatalf("transaction %d: %+v vs %+v", i, lt[i], rt[i])
		}
	}
}

// TestErrorEnvelope pins the versioned error shape across handlers.
func TestErrorEnvelope(t *testing.T) {
	ts := testServer(t)
	post(t, ts, "/v1/sellers", map[string]string{"id": "s"})
	post(t, ts, "/v1/datasets", map[string]string{"seller": "s", "id": "d"})
	post(t, ts, "/v1/buyers", map[string]string{"id": "b"})

	cases := []struct {
		name     string
		status   int
		code     string
		exercise func() (*http.Response, map[string]any)
	}{
		{"duplicate seller", http.StatusConflict, CodeDuplicateID, func() (*http.Response, map[string]any) {
			return post(t, ts, "/v1/sellers", map[string]string{"id": "s"})
		}},
		{"unknown dataset", http.StatusNotFound, CodeUnknownDataset, func() (*http.Response, map[string]any) {
			return post(t, ts, "/v1/bids", map[string]any{"buyer": "b", "dataset": "nope", "amount": 10.0})
		}},
		{"unknown buyer", http.StatusNotFound, CodeUnknownBuyer, func() (*http.Response, map[string]any) {
			return post(t, ts, "/v1/bids", map[string]any{"buyer": "ghost", "dataset": "d", "amount": 10.0})
		}},
		{"bad bid", http.StatusBadRequest, CodeBadBid, func() (*http.Response, map[string]any) {
			return post(t, ts, "/v1/bids", map[string]any{"buyer": "b", "dataset": "d", "amount": -5.0})
		}},
		{"empty id", http.StatusBadRequest, CodeEmptyID, func() (*http.Response, map[string]any) {
			return post(t, ts, "/v1/buyers", map[string]string{"id": ""})
		}},
		{"malformed json", http.StatusBadRequest, CodeBadRequest, func() (*http.Response, map[string]any) {
			return post(t, ts, "/v1/sellers", map[string]any{"bogus": 1})
		}},
	}
	for _, tc := range cases {
		resp, raw := tc.exercise()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
		var env struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		}
		buf, _ := json.Marshal(raw["error"])
		if err := json.Unmarshal(buf, &env); err != nil {
			t.Errorf("%s: error field is not an envelope: %v", tc.name, raw)
			continue
		}
		if env.Code != tc.code {
			t.Errorf("%s: code = %q, want %q", tc.name, env.Code, tc.code)
		}
		if env.Message == "" {
			t.Errorf("%s: empty message", tc.name)
		}
	}

	// Bid-cadence codes: a second bid in the same period is bid_too_soon,
	// and a losing bid's wait block is blocked_until.
	post(t, ts, "/v1/bids", map[string]any{"buyer": "b", "dataset": "d", "amount": 2.0})
	resp, raw := post(t, ts, "/v1/bids", map[string]any{"buyer": "b", "dataset": "d", "amount": 2.0})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second bid in period: %d", resp.StatusCode)
	}
	if env := raw["error"].(map[string]any); env["code"] != CodeBidTooSoon {
		t.Fatalf("second bid code = %v, want %s", env["code"], CodeBidTooSoon)
	}
	post(t, ts, "/v1/tick", map[string]any{})
	resp, raw = post(t, ts, "/v1/bids", map[string]any{"buyer": "b", "dataset": "d", "amount": 2.0})
	if resp.StatusCode == http.StatusTooManyRequests {
		if env := raw["error"].(map[string]any); env["code"] != CodeBlockedUntil {
			t.Fatalf("wait-blocked bid code = %v, want %s", env["code"], CodeBlockedUntil)
		}
	}
}
