// Package httpapi exposes a market.Market over a JSON HTTP API — the
// implementation behind cmd/marketd, importable so embedders and tests
// can serve the market in-process. Writes can be routed through the
// event journal (NewJournaled) and bids can be required to carry HMAC
// signatures (WithAuth).
package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"

	"github.com/datamarket/shield/internal/auth"
	"github.com/datamarket/shield/internal/journal"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/obs"
)

// mutator is the write interface shared by market.Market and the
// journaling wrapper journal.Market. Bids take the request context so
// the obs trace and request ID ride into the shard-lock, pricing and
// journal layers.
type mutator interface {
	RegisterBuyer(market.BuyerID) error
	RegisterSeller(market.SellerID) error
	UploadDataset(market.SellerID, market.DatasetID) error
	WithdrawDataset(market.SellerID, market.DatasetID) error
	ComposeDataset(market.DatasetID, ...market.DatasetID) error
	SubmitBidCtx(context.Context, market.BuyerID, market.DatasetID, float64) (market.Decision, error)
	SubmitBidsCtx(context.Context, []market.BidRequest) []market.BidResult
}

// Server exposes a market.Market over a JSON HTTP API.
//
//	POST   /v1/sellers            {"id": "acme"}
//	POST   /v1/buyers             {"id": "bob"}
//	POST   /v1/datasets           {"seller": "acme", "id": "sales"}
//	POST   /v1/datasets/compose   {"id": "combo", "constituents": ["a","b"]}
//	DELETE /v1/datasets/{id}?seller=acme
//	POST   /v1/bids               {"buyer": "bob", "dataset": "sales", "amount": 120.5}
//	POST   /v1/bids/batch         {"bids": [{"buyer": "bob", "dataset": "sales", "amount": 120.5}, ...]}
//	POST   /v1/tick               {}
//	GET    /v1/period
//	GET    /v1/datasets
//	GET    /v1/datasets/{id}/stats
//	GET    /v1/sellers/{id}/balance
//	GET    /v1/buyers/{id}/wait?dataset=sales
//	GET    /v1/transactions
//	GET    /metrics
//	GET    /debug/traces
//	GET    /healthz
//	GET    /readyz
//
// Losing bidders receive only their wait-period: the posting price is
// never disclosed to them (that is the leak Uncertainty-Shield guards
// against). The stats, metrics and traces endpoints are operator-facing
// and sit behind the bearer-token gate (WithOperatorToken) whenever bid
// auth or a token is configured.
//
// Every request is instrumented: the server mints a request ID (echoed
// as X-Request-ID), records a sampled bid-lifecycle trace, measures
// per-route/per-status latency into the shared obs registry, and emits
// one structured log line (WithLogger).
//
// Every error response carries the versioned envelope
// {"error":{"code":"...","message":"..."}} with a stable machine-readable
// code (see errors.go).
type Server struct {
	m    *market.Market // reads (leader mode; nil on a replica)
	mut  mutator        // writes (possibly journaled; read-only on a replica)
	tick func() (int, error)
	// replica, when set, makes this a read-replica server: reads resolve
	// through the follower's current view (see market()), writes are
	// rejected, and /readyz carries staleness.
	replica ReplicaSource
	// verifier, when set, requires every bid to carry a valid HMAC
	// binding it to an enrolled buyer (false-name bidding deterrence,
	// Section 2.1 of the paper). Buyer registration then returns the
	// credential secret.
	verifier *auth.Verifier
	// ready, when set, gates /readyz (journaled servers report their
	// writer's health here).
	ready func() error
	// store, when set, is the segmented journal store behind this
	// server; /readyz's ready body then carries its segment/checkpoint
	// inventory.
	store *journal.Store

	tel         *obs.Telemetry
	telOnce     sync.Once
	httpLatency *obs.Vec[*obs.Histogram]
	logger      *slog.Logger
	opToken     string
}

func NewServer(m *market.Market) *Server {
	return &Server{
		m: m, mut: m,
		tick:   func() (int, error) { return m.Tick(), nil },
		logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
}

// NewJournaled routes writes through the journaling wrapper; /readyz
// reports the journal writer's health, plus the store's
// segment/checkpoint inventory when the journal is segmented.
func NewJournaled(jm *journal.Market) *Server {
	return &Server{
		m: jm.Market, mut: jm,
		tick:   jm.Tick,
		ready:  jm.Healthy,
		store:  jm.Store(),
		logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
}

// WithAuth enables bid signing.
func (s *Server) WithAuth(v *auth.Verifier) *Server {
	s.verifier = v
	return s
}

// Routes builds the instrumented handler: the route table wrapped in
// the request middleware (request IDs, tracing, latency metrics,
// logging). The first call binds the server's telemetry — the shared
// one from WithTelemetry, or a private default — and registers the
// market's metric families on it.
func (s *Server) Routes() http.Handler {
	s.ensureTelemetry()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.operatorOnly(s.handleMetrics))
	mux.HandleFunc("GET /debug/traces", s.operatorOnly(s.handleTraces))
	mux.HandleFunc("POST /v1/sellers", s.handleRegisterSeller)
	mux.HandleFunc("POST /v1/buyers", s.handleRegisterBuyer)
	mux.HandleFunc("POST /v1/datasets", s.handleUploadDataset)
	mux.HandleFunc("POST /v1/datasets/compose", s.handleComposeDataset)
	mux.HandleFunc("DELETE /v1/datasets/{id}", s.handleWithdrawDataset)
	mux.HandleFunc("POST /v1/bids", s.handleBid)
	mux.HandleFunc("POST /v1/bids/batch", s.handleBidBatch)
	mux.HandleFunc("POST /v1/tick", s.handleTick)
	mux.HandleFunc("GET /v1/period", s.handlePeriod)
	mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	mux.HandleFunc("GET /v1/datasets/{id}/stats", s.operatorOnly(s.handleDatasetStats))
	mux.HandleFunc("GET /v1/sellers/{id}/balance", s.handleSellerBalance)
	mux.HandleFunc("GET /v1/buyers/{id}/wait", s.handleBuyerWait)
	mux.HandleFunc("GET /v1/transactions", s.handleTransactions)
	return s.instrument(mux)
}

type idRequest struct {
	ID string `json:"id"`
}

func (s *Server) handleRegisterSeller(w http.ResponseWriter, r *http.Request) {
	var req idRequest
	if !decode(w, r, &req) {
		return
	}
	if err := s.mut.RegisterSeller(market.SellerID(req.ID)); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": req.ID})
}

func (s *Server) handleRegisterBuyer(w http.ResponseWriter, r *http.Request) {
	var req idRequest
	if !decode(w, r, &req) {
		return
	}
	if err := s.mut.RegisterBuyer(market.BuyerID(req.ID)); err != nil {
		writeError(w, err)
		return
	}
	resp := map[string]string{"id": req.ID}
	if s.verifier != nil {
		cred, err := s.verifier.Enroll(req.ID)
		if err != nil {
			writeError(w, err)
			return
		}
		// The credential secret is issued exactly once, at enrollment.
		resp["credential"] = cred.Secret
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleUploadDataset(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Seller string `json:"seller"`
		ID     string `json:"id"`
	}
	if !decode(w, r, &req) {
		return
	}
	if err := s.mut.UploadDataset(market.SellerID(req.Seller), market.DatasetID(req.ID)); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": req.ID})
}

// handleWithdrawDataset removes a base dataset; the owning seller must
// be passed as ?seller= and withdrawal fails while derived products
// still build on the dataset.
func (s *Server) handleWithdrawDataset(w http.ResponseWriter, r *http.Request) {
	seller := r.URL.Query().Get("seller")
	if seller == "" {
		writeAPIError(w, http.StatusBadRequest, CodeBadRequest, "missing seller query parameter")
		return
	}
	if err := s.mut.WithdrawDataset(market.SellerID(seller), market.DatasetID(r.PathValue("id"))); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"withdrawn": r.PathValue("id")})
}

func (s *Server) handleComposeDataset(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID           string   `json:"id"`
		Constituents []string `json:"constituents"`
	}
	if !decode(w, r, &req) {
		return
	}
	parts := make([]market.DatasetID, len(req.Constituents))
	for i, c := range req.Constituents {
		parts[i] = market.DatasetID(c)
	}
	if err := s.mut.ComposeDataset(market.DatasetID(req.ID), parts...); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": req.ID})
}

type bidResponse struct {
	Allocated   bool    `json:"allocated"`
	PricePaid   float64 `json:"price_paid,omitempty"`
	WaitPeriods int     `json:"wait_periods,omitempty"`
}

func (s *Server) handleBid(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Buyer   string  `json:"buyer"`
		Dataset string  `json:"dataset"`
		Amount  float64 `json:"amount"`
		// Signature fields, required when the Server runs with -auth:
		// the amount is then taken from AmountMicros (MACs cover a
		// canonical integer encoding).
		AmountMicros int64  `json:"amount_micros,omitempty"`
		Nonce        uint64 `json:"nonce,omitempty"`
		MAC          string `json:"mac,omitempty"`
	}
	if !decode(w, r, &req) {
		return
	}
	amount := req.Amount
	if s.verifier != nil {
		if req.MAC == "" {
			writeAPIError(w, http.StatusUnauthorized, CodeUnauthorized,
				"auth: bid must be signed (amount_micros, nonce, mac)")
			return
		}
		err := s.verifier.Verify(auth.SignedBid{
			BuyerID:      req.Buyer,
			Dataset:      req.Dataset,
			AmountMicros: req.AmountMicros,
			Nonce:        req.Nonce,
			MAC:          req.MAC,
		})
		if err != nil {
			writeAPIError(w, http.StatusUnauthorized, CodeUnauthorized, err.Error())
			return
		}
		amount = market.Money(req.AmountMicros).Float()
	}
	d, err := s.mut.SubmitBidCtx(r.Context(), market.BuyerID(req.Buyer), market.DatasetID(req.Dataset), amount)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, bidResponse{
		Allocated:   d.Allocated,
		PricePaid:   d.PricePaid.Float(),
		WaitPeriods: d.WaitPeriods,
	})
}

// maxBatchBids bounds one batch request; larger workloads should split
// across requests rather than hold a connection for an unbounded batch.
const maxBatchBids = 1024

// batchBidEntry is one bid of a POST /v1/bids/batch request. Signature
// fields follow the same rules as the single-bid endpoint: required when
// the server runs with auth, in which case AmountMicros is the bid.
type batchBidEntry struct {
	Buyer        string  `json:"buyer"`
	Dataset      string  `json:"dataset"`
	Amount       float64 `json:"amount"`
	AmountMicros int64   `json:"amount_micros,omitempty"`
	Nonce        uint64  `json:"nonce,omitempty"`
	MAC          string  `json:"mac,omitempty"`
}

// batchBidResult mirrors bidResponse with a per-entry error envelope:
// one rejected bid never fails the batch, it fails its slot.
type batchBidResult struct {
	Allocated   bool      `json:"allocated"`
	PricePaid   float64   `json:"price_paid,omitempty"`
	WaitPeriods int       `json:"wait_periods,omitempty"`
	Error       *APIError `json:"error,omitempty"`
}

// handleBidBatch submits a batch of bids in one request. The response
// carries one result per request entry, in order; the call returns 200
// even when individual bids fail (their slots carry error envelopes).
func (s *Server) handleBidBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Bids []batchBidEntry `json:"bids"`
	}
	if !decode(w, r, &req) {
		return
	}
	if len(req.Bids) == 0 {
		writeAPIError(w, http.StatusBadRequest, CodeBadRequest, "batch must contain at least one bid")
		return
	}
	if len(req.Bids) > maxBatchBids {
		writeAPIError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("batch exceeds %d bids", maxBatchBids))
		return
	}

	results := make([]batchBidResult, len(req.Bids))
	// Verify signatures first (when auth is on), so only authenticated
	// bids reach the market; rejected entries fail in place.
	reqs := make([]market.BidRequest, 0, len(req.Bids))
	slots := make([]int, 0, len(req.Bids))
	for i, b := range req.Bids {
		amount := b.Amount
		if s.verifier != nil {
			if b.MAC == "" {
				results[i].Error = &APIError{Code: CodeUnauthorized,
					Message: "auth: bid must be signed (amount_micros, nonce, mac)"}
				continue
			}
			err := s.verifier.Verify(auth.SignedBid{
				BuyerID:      b.Buyer,
				Dataset:      b.Dataset,
				AmountMicros: b.AmountMicros,
				Nonce:        b.Nonce,
				MAC:          b.MAC,
			})
			if err != nil {
				results[i].Error = &APIError{Code: CodeUnauthorized, Message: err.Error()}
				continue
			}
			amount = market.Money(b.AmountMicros).Float()
		}
		reqs = append(reqs, market.BidRequest{
			Buyer:   market.BuyerID(b.Buyer),
			Dataset: market.DatasetID(b.Dataset),
			Amount:  amount,
		})
		slots = append(slots, i)
	}
	for j, res := range s.mut.SubmitBidsCtx(r.Context(), reqs) {
		i := slots[j]
		if res.Err != nil {
			code, _ := classify(res.Err)
			results[i].Error = &APIError{Code: code, Message: res.Err.Error()}
			continue
		}
		results[i] = batchBidResult{
			Allocated:   res.Decision.Allocated,
			PricePaid:   res.Decision.PricePaid.Float(),
			WaitPeriods: res.Decision.WaitPeriods,
		}
	}
	writeJSON(w, http.StatusOK, map[string][]batchBidResult{"results": results})
}

func (s *Server) handleTick(w http.ResponseWriter, _ *http.Request) {
	period, err := s.tick()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"period": period})
}

func (s *Server) handlePeriod(w http.ResponseWriter, _ *http.Request) {
	m, err := s.market()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"period": m.Period()})
}

func (s *Server) handleListDatasets(w http.ResponseWriter, _ *http.Request) {
	m, err := s.market()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, m.Datasets())
}

func (s *Server) handleDatasetStats(w http.ResponseWriter, r *http.Request) {
	m, err := s.market()
	if err != nil {
		writeError(w, err)
		return
	}
	stats, err := m.Stats(market.DatasetID(r.PathValue("id")))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, stats)
}

func (s *Server) handleSellerBalance(w http.ResponseWriter, r *http.Request) {
	m, err := s.market()
	if err != nil {
		writeError(w, err)
		return
	}
	bal, err := m.SellerBalance(market.SellerID(r.PathValue("id")))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{"balance": bal.Float()})
}

func (s *Server) handleBuyerWait(w http.ResponseWriter, r *http.Request) {
	dataset := r.URL.Query().Get("dataset")
	if dataset == "" {
		writeAPIError(w, http.StatusBadRequest, CodeBadRequest, "missing dataset query parameter")
		return
	}
	m, err := s.market()
	if err != nil {
		writeError(w, err)
		return
	}
	wait, err := m.WaitRemaining(market.BuyerID(r.PathValue("id")), market.DatasetID(dataset))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"wait_periods": wait})
}

func (s *Server) handleTransactions(w http.ResponseWriter, _ *http.Request) {
	m, err := s.market()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, m.Transactions())
}

func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	defer obs.StartSpan(r.Context(), "http.parse").End()
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeAPIError(w, http.StatusBadRequest, CodeBadRequest, "bad request: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
