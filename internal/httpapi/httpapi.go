// Package httpapi exposes a market.Market over a JSON HTTP API — the
// implementation behind cmd/marketd, importable so embedders and tests
// can serve the market in-process. Writes can be routed through the
// event journal (NewJournaled) and bids can be required to carry HMAC
// signatures (WithAuth).
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"github.com/datamarket/shield/internal/auth"
	"github.com/datamarket/shield/internal/journal"
	"github.com/datamarket/shield/internal/market"
)

// mutator is the write interface shared by market.Market and the
// journaling wrapper journal.Market.
type mutator interface {
	RegisterBuyer(market.BuyerID) error
	RegisterSeller(market.SellerID) error
	UploadDataset(market.SellerID, market.DatasetID) error
	WithdrawDataset(market.SellerID, market.DatasetID) error
	ComposeDataset(market.DatasetID, ...market.DatasetID) error
	SubmitBid(market.BuyerID, market.DatasetID, float64) (market.Decision, error)
}

// Server exposes a market.Market over a JSON HTTP API.
//
//	POST   /v1/sellers            {"id": "acme"}
//	POST   /v1/buyers             {"id": "bob"}
//	POST   /v1/datasets           {"seller": "acme", "id": "sales"}
//	POST   /v1/datasets/compose   {"id": "combo", "constituents": ["a","b"]}
//	DELETE /v1/datasets/{id}?seller=acme
//	POST   /v1/bids               {"buyer": "bob", "dataset": "sales", "amount": 120.5}
//	POST   /v1/tick               {}
//	GET    /v1/datasets
//	GET    /v1/datasets/{id}/stats
//	GET    /v1/sellers/{id}/balance
//	GET    /v1/buyers/{id}/wait?dataset=sales
//	GET    /v1/transactions
//	GET    /metrics
//	GET    /healthz
//
// Losing bidders receive only their wait-period: the posting price is
// never disclosed to them (that is the leak Uncertainty-Shield guards
// against). The stats and metrics endpoints are operator-facing and
// should not be reachable by buyers in a real deployment.
type Server struct {
	m    *market.Market // reads
	mut  mutator        // writes (possibly journaled)
	tick func() (int, error)
	// verifier, when set, requires every bid to carry a valid HMAC
	// binding it to an enrolled buyer (false-name bidding deterrence,
	// Section 2.1 of the paper). Buyer registration then returns the
	// credential secret.
	verifier *auth.Verifier
}

func NewServer(m *market.Market) *Server {
	return &Server{m: m, mut: m, tick: func() (int, error) { return m.Tick(), nil }}
}

// NewJournaled routes writes through the journaling wrapper.
func NewJournaled(jm *journal.Market) *Server {
	return &Server{m: jm.Market, mut: jm, tick: jm.Tick}
}

// WithAuth enables bid signing.
func (s *Server) WithAuth(v *auth.Verifier) *Server {
	s.verifier = v
	return s
}

func (s *Server) Routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/sellers", s.handleRegisterSeller)
	mux.HandleFunc("POST /v1/buyers", s.handleRegisterBuyer)
	mux.HandleFunc("POST /v1/datasets", s.handleUploadDataset)
	mux.HandleFunc("POST /v1/datasets/compose", s.handleComposeDataset)
	mux.HandleFunc("DELETE /v1/datasets/{id}", s.handleWithdrawDataset)
	mux.HandleFunc("POST /v1/bids", s.handleBid)
	mux.HandleFunc("POST /v1/tick", s.handleTick)
	mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	mux.HandleFunc("GET /v1/datasets/{id}/stats", s.handleDatasetStats)
	mux.HandleFunc("GET /v1/sellers/{id}/balance", s.handleSellerBalance)
	mux.HandleFunc("GET /v1/buyers/{id}/wait", s.handleBuyerWait)
	mux.HandleFunc("GET /v1/transactions", s.handleTransactions)
	return mux
}

type idRequest struct {
	ID string `json:"id"`
}

func (s *Server) handleRegisterSeller(w http.ResponseWriter, r *http.Request) {
	var req idRequest
	if !decode(w, r, &req) {
		return
	}
	if err := s.mut.RegisterSeller(market.SellerID(req.ID)); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": req.ID})
}

func (s *Server) handleRegisterBuyer(w http.ResponseWriter, r *http.Request) {
	var req idRequest
	if !decode(w, r, &req) {
		return
	}
	if err := s.mut.RegisterBuyer(market.BuyerID(req.ID)); err != nil {
		writeError(w, err)
		return
	}
	resp := map[string]string{"id": req.ID}
	if s.verifier != nil {
		cred, err := s.verifier.Enroll(req.ID)
		if err != nil {
			writeError(w, err)
			return
		}
		// The credential secret is issued exactly once, at enrollment.
		resp["credential"] = cred.Secret
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleUploadDataset(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Seller string `json:"seller"`
		ID     string `json:"id"`
	}
	if !decode(w, r, &req) {
		return
	}
	if err := s.mut.UploadDataset(market.SellerID(req.Seller), market.DatasetID(req.ID)); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": req.ID})
}

// handleWithdrawDataset removes a base dataset; the owning seller must
// be passed as ?seller= and withdrawal fails while derived products
// still build on the dataset.
func (s *Server) handleWithdrawDataset(w http.ResponseWriter, r *http.Request) {
	seller := r.URL.Query().Get("seller")
	if seller == "" {
		http.Error(w, `{"error":"missing seller query parameter"}`, http.StatusBadRequest)
		return
	}
	if err := s.mut.WithdrawDataset(market.SellerID(seller), market.DatasetID(r.PathValue("id"))); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"withdrawn": r.PathValue("id")})
}

func (s *Server) handleComposeDataset(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID           string   `json:"id"`
		Constituents []string `json:"constituents"`
	}
	if !decode(w, r, &req) {
		return
	}
	parts := make([]market.DatasetID, len(req.Constituents))
	for i, c := range req.Constituents {
		parts[i] = market.DatasetID(c)
	}
	if err := s.mut.ComposeDataset(market.DatasetID(req.ID), parts...); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": req.ID})
}

type bidResponse struct {
	Allocated   bool    `json:"allocated"`
	PricePaid   float64 `json:"price_paid,omitempty"`
	WaitPeriods int     `json:"wait_periods,omitempty"`
}

func (s *Server) handleBid(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Buyer   string  `json:"buyer"`
		Dataset string  `json:"dataset"`
		Amount  float64 `json:"amount"`
		// Signature fields, required when the Server runs with -auth:
		// the amount is then taken from AmountMicros (MACs cover a
		// canonical integer encoding).
		AmountMicros int64  `json:"amount_micros,omitempty"`
		Nonce        uint64 `json:"nonce,omitempty"`
		MAC          string `json:"mac,omitempty"`
	}
	if !decode(w, r, &req) {
		return
	}
	amount := req.Amount
	if s.verifier != nil {
		if req.MAC == "" {
			writeJSON(w, http.StatusUnauthorized, map[string]string{
				"error": "auth: bid must be signed (amount_micros, nonce, mac)",
			})
			return
		}
		err := s.verifier.Verify(auth.SignedBid{
			BuyerID:      req.Buyer,
			Dataset:      req.Dataset,
			AmountMicros: req.AmountMicros,
			Nonce:        req.Nonce,
			MAC:          req.MAC,
		})
		if err != nil {
			writeJSON(w, http.StatusUnauthorized, map[string]string{"error": err.Error()})
			return
		}
		amount = market.Money(req.AmountMicros).Float()
	}
	d, err := s.mut.SubmitBid(market.BuyerID(req.Buyer), market.DatasetID(req.Dataset), amount)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, bidResponse{
		Allocated:   d.Allocated,
		PricePaid:   d.PricePaid.Float(),
		WaitPeriods: d.WaitPeriods,
	})
}

func (s *Server) handleTick(w http.ResponseWriter, _ *http.Request) {
	period, err := s.tick()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"period": period})
}

func (s *Server) handleListDatasets(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.m.Datasets())
}

func (s *Server) handleDatasetStats(w http.ResponseWriter, r *http.Request) {
	stats, err := s.m.Stats(market.DatasetID(r.PathValue("id")))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, stats)
}

func (s *Server) handleSellerBalance(w http.ResponseWriter, r *http.Request) {
	bal, err := s.m.SellerBalance(market.SellerID(r.PathValue("id")))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{"balance": bal.Float()})
}

func (s *Server) handleBuyerWait(w http.ResponseWriter, r *http.Request) {
	dataset := r.URL.Query().Get("dataset")
	if dataset == "" {
		http.Error(w, `{"error":"missing dataset query parameter"}`, http.StatusBadRequest)
		return
	}
	wait, err := s.m.WaitRemaining(market.BuyerID(r.PathValue("id")), market.DatasetID(dataset))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"wait_periods": wait})
}

func (s *Server) handleTransactions(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.m.Transactions())
}

func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, "bad request: "+err.Error()), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps market errors to HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, market.ErrUnknownBuyer),
		errors.Is(err, market.ErrUnknownSeller),
		errors.Is(err, market.ErrUnknownDataset):
		status = http.StatusNotFound
	case errors.Is(err, market.ErrDuplicateID),
		errors.Is(err, market.ErrAlreadyAcquired),
		errors.Is(err, market.ErrDatasetInUse):
		status = http.StatusConflict
	case errors.Is(err, market.ErrBadBid),
		errors.Is(err, market.ErrEmptyID),
		errors.Is(err, auth.ErrEmptyID):
		status = http.StatusBadRequest
	case errors.Is(err, auth.ErrDuplicate):
		status = http.StatusConflict
	case errors.Is(err, market.ErrBidTooSoon),
		errors.Is(err, market.ErrWaitActive):
		status = http.StatusTooManyRequests
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
