// Error-envelope contract test: every v1 endpoint that can fail must
// answer with the versioned envelope {"error":{"code":"...","message":
// "..."}} — exactly those two fields — carrying a code from the stable
// set the shield facade re-exports. It lives in the external test
// package so the expected codes can be spelled as shield.ErrCode*,
// which pins the facade re-exports to the wire values at the same time.
package httpapi_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	shield "github.com/datamarket/shield"
	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/auth"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/httpapi"
	"github.com/datamarket/shield/internal/market"
)

// contractServer builds a fresh market with sellers acme (datasets
// "base", "other", and derived "combo" = base+other) and buyers bob and
// eve, so every table case starts from the same known state.
func contractServer(t *testing.T, withAuth bool) *httptest.Server {
	t.Helper()
	m := market.MustNew(market.Config{
		Engine: core.Config{
			Candidates: auction.LinearGrid(10, 100, 10),
			EpochSize:  4,
			MinBid:     1,
		},
		Seed: 11,
	})
	srv := httpapi.NewServer(m)
	if withAuth {
		srv = srv.WithAuth(auth.NewVerifier(nil))
	}
	ts := httptest.NewServer(srv.Routes())
	t.Cleanup(ts.Close)
	for _, step := range []struct{ path, body string }{
		{"/v1/sellers", `{"id":"acme"}`},
		{"/v1/datasets", `{"seller":"acme","id":"base"}`},
		{"/v1/datasets", `{"seller":"acme","id":"other"}`},
		{"/v1/datasets/compose", `{"id":"combo","constituents":["base","other"]}`},
		{"/v1/buyers", `{"id":"bob"}`},
		{"/v1/buyers", `{"id":"eve"}`},
	} {
		resp := do(t, ts, "POST", step.path, step.body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("setup %s: status %d", step.path, resp.StatusCode)
		}
	}
	return ts
}

func do(t *testing.T, ts *httptest.Server, method, path, body string) *http.Response {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("{}")
	} else {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// decodeEnvelope strictly decodes an error envelope: unknown fields at
// either level, or a missing code/message, fail the test — the envelope
// shape itself is the contract.
func decodeEnvelope(t *testing.T, resp *http.Response) (code, message string) {
	t.Helper()
	defer resp.Body.Close()
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	dec := json.NewDecoder(resp.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		t.Fatalf("response is not a bare error envelope: %v", err)
	}
	if dec.More() {
		t.Fatal("trailing data after error envelope")
	}
	if env.Error.Code == "" {
		t.Fatal("error envelope missing code")
	}
	if env.Error.Message == "" {
		t.Fatal("error envelope missing message")
	}
	return env.Error.Code, env.Error.Message
}

func TestErrorEnvelopeContract(t *testing.T) {
	// Each case runs against its own fresh server; setup holds the
	// requests that drive the market into the failing state.
	cases := []struct {
		name       string
		setup      []struct{ method, path, body string }
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{
			name:       "sellers duplicate",
			method:     "POST",
			path:       "/v1/sellers",
			body:       `{"id":"acme"}`,
			wantStatus: http.StatusConflict,
			wantCode:   shield.ErrCodeDuplicateID,
		},
		{
			name:       "sellers empty id",
			method:     "POST",
			path:       "/v1/sellers",
			body:       `{"id":""}`,
			wantStatus: http.StatusBadRequest,
			wantCode:   shield.ErrCodeEmptyID,
		},
		{
			name:       "sellers malformed json",
			method:     "POST",
			path:       "/v1/sellers",
			body:       `{"id":`,
			wantStatus: http.StatusBadRequest,
			wantCode:   shield.ErrCodeBadRequest,
		},
		{
			name:       "sellers unknown field rejected",
			method:     "POST",
			path:       "/v1/sellers",
			body:       `{"id":"new","extra":true}`,
			wantStatus: http.StatusBadRequest,
			wantCode:   shield.ErrCodeBadRequest,
		},
		{
			name:       "buyers duplicate",
			method:     "POST",
			path:       "/v1/buyers",
			body:       `{"id":"bob"}`,
			wantStatus: http.StatusConflict,
			wantCode:   shield.ErrCodeDuplicateID,
		},
		{
			name:       "buyers empty id",
			method:     "POST",
			path:       "/v1/buyers",
			body:       `{"id":""}`,
			wantStatus: http.StatusBadRequest,
			wantCode:   shield.ErrCodeEmptyID,
		},
		{
			name:       "datasets unknown seller",
			method:     "POST",
			path:       "/v1/datasets",
			body:       `{"seller":"ghost","id":"d"}`,
			wantStatus: http.StatusNotFound,
			wantCode:   shield.ErrCodeUnknownSeller,
		},
		{
			name:       "datasets duplicate",
			method:     "POST",
			path:       "/v1/datasets",
			body:       `{"seller":"acme","id":"base"}`,
			wantStatus: http.StatusConflict,
			wantCode:   shield.ErrCodeDuplicateID,
		},
		{
			name:       "compose unknown constituent",
			method:     "POST",
			path:       "/v1/datasets/compose",
			body:       `{"id":"c2","constituents":["base","ghost"]}`,
			wantStatus: http.StatusNotFound,
			wantCode:   shield.ErrCodeUnknownDataset,
		},
		{
			name:       "compose duplicate",
			method:     "POST",
			path:       "/v1/datasets/compose",
			body:       `{"id":"combo","constituents":["base","other"]}`,
			wantStatus: http.StatusConflict,
			wantCode:   shield.ErrCodeDuplicateID,
		},
		{
			name:       "withdraw missing seller param",
			method:     "DELETE",
			path:       "/v1/datasets/base",
			wantStatus: http.StatusBadRequest,
			wantCode:   shield.ErrCodeBadRequest,
		},
		{
			name:       "withdraw unknown seller",
			method:     "DELETE",
			path:       "/v1/datasets/base?seller=ghost",
			wantStatus: http.StatusNotFound,
			wantCode:   shield.ErrCodeUnknownSeller,
		},
		{
			name:       "withdraw unknown dataset",
			method:     "DELETE",
			path:       "/v1/datasets/ghost?seller=acme",
			wantStatus: http.StatusNotFound,
			wantCode:   shield.ErrCodeUnknownDataset,
		},
		{
			name:       "withdraw composed-upon base",
			method:     "DELETE",
			path:       "/v1/datasets/base?seller=acme",
			wantStatus: http.StatusConflict,
			wantCode:   shield.ErrCodeDatasetInUse,
		},
		{
			name:       "bid unknown buyer",
			method:     "POST",
			path:       "/v1/bids",
			body:       `{"buyer":"ghost","dataset":"base","amount":50}`,
			wantStatus: http.StatusNotFound,
			wantCode:   shield.ErrCodeUnknownBuyer,
		},
		{
			name:       "bid unknown dataset",
			method:     "POST",
			path:       "/v1/bids",
			body:       `{"buyer":"bob","dataset":"ghost","amount":50}`,
			wantStatus: http.StatusNotFound,
			wantCode:   shield.ErrCodeUnknownDataset,
		},
		{
			name:       "bid non-positive amount",
			method:     "POST",
			path:       "/v1/bids",
			body:       `{"buyer":"bob","dataset":"base","amount":0}`,
			wantStatus: http.StatusBadRequest,
			wantCode:   shield.ErrCodeBadBid,
		},
		{
			name: "bid twice in one period",
			setup: []struct{ method, path, body string }{
				// Sure-lose bid: above MinBid, below every grid candidate.
				{"POST", "/v1/bids", `{"buyer":"bob","dataset":"base","amount":2}`},
			},
			method:     "POST",
			path:       "/v1/bids",
			body:       `{"buyer":"bob","dataset":"base","amount":2}`,
			wantStatus: http.StatusTooManyRequests,
			wantCode:   shield.ErrCodeBidTooSoon,
		},
		{
			name: "bid during wait period",
			setup: []struct{ method, path, body string }{
				{"POST", "/v1/bids", `{"buyer":"bob","dataset":"base","amount":2}`},
				{"POST", "/v1/tick", ""},
			},
			method:     "POST",
			path:       "/v1/bids",
			body:       `{"buyer":"bob","dataset":"base","amount":2}`,
			wantStatus: http.StatusTooManyRequests,
			wantCode:   shield.ErrCodeBlockedUntil,
		},
		{
			name: "bid on already acquired dataset",
			setup: []struct{ method, path, body string }{
				// Above every grid candidate: allocated immediately.
				{"POST", "/v1/bids", `{"buyer":"bob","dataset":"base","amount":10000}`},
			},
			method:     "POST",
			path:       "/v1/bids",
			body:       `{"buyer":"bob","dataset":"base","amount":10000}`,
			wantStatus: http.StatusConflict,
			wantCode:   shield.ErrCodeAlreadyAcquired,
		},
		{
			name:       "batch empty",
			method:     "POST",
			path:       "/v1/bids/batch",
			body:       `{"bids":[]}`,
			wantStatus: http.StatusBadRequest,
			wantCode:   shield.ErrCodeBadRequest,
		},
		{
			name:       "batch malformed json",
			method:     "POST",
			path:       "/v1/bids/batch",
			body:       `{"bids":`,
			wantStatus: http.StatusBadRequest,
			wantCode:   shield.ErrCodeBadRequest,
		},
		{
			name:       "stats unknown dataset",
			method:     "GET",
			path:       "/v1/datasets/ghost/stats",
			wantStatus: http.StatusNotFound,
			wantCode:   shield.ErrCodeUnknownDataset,
		},
		{
			name:       "balance unknown seller",
			method:     "GET",
			path:       "/v1/sellers/ghost/balance",
			wantStatus: http.StatusNotFound,
			wantCode:   shield.ErrCodeUnknownSeller,
		},
		{
			name:       "wait missing dataset param",
			method:     "GET",
			path:       "/v1/buyers/bob/wait",
			wantStatus: http.StatusBadRequest,
			wantCode:   shield.ErrCodeBadRequest,
		},
		{
			name:       "wait unknown buyer",
			method:     "GET",
			path:       "/v1/buyers/ghost/wait?dataset=base",
			wantStatus: http.StatusNotFound,
			wantCode:   shield.ErrCodeUnknownBuyer,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := contractServer(t, false)
			for _, s := range tc.setup {
				resp := do(t, ts, s.method, s.path, s.body)
				resp.Body.Close()
				if resp.StatusCode >= 400 {
					t.Fatalf("setup %s %s: status %d", s.method, s.path, resp.StatusCode)
				}
			}
			resp := do(t, ts, tc.method, tc.path, tc.body)
			if resp.StatusCode != tc.wantStatus {
				resp.Body.Close()
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				resp.Body.Close()
				t.Fatalf("Content-Type = %q", ct)
			}
			code, msg := decodeEnvelope(t, resp)
			if code != tc.wantCode {
				t.Fatalf("code = %q (%s), want %q", code, msg, tc.wantCode)
			}
		})
	}
}

// TestErrorEnvelopeContractAuth covers the unauthorized code, which only
// exists on servers running with bid signing.
func TestErrorEnvelopeContractAuth(t *testing.T) {
	ts := contractServer(t, true)

	resp := do(t, ts, "POST", "/v1/bids", `{"buyer":"bob","dataset":"base","amount":50}`)
	if resp.StatusCode != http.StatusUnauthorized {
		resp.Body.Close()
		t.Fatalf("unsigned bid status = %d, want 401", resp.StatusCode)
	}
	if code, _ := decodeEnvelope(t, resp); code != shield.ErrCodeUnauthorized {
		t.Fatalf("unsigned bid code = %q", code)
	}

	// Batch entries fail in their slot with the same envelope shape.
	resp = do(t, ts, "POST", "/v1/bids/batch",
		`{"bids":[{"buyer":"bob","dataset":"base","amount":50}]}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, want 200 (per-slot errors)", resp.StatusCode)
	}
	var out struct {
		Results []struct {
			Allocated bool `json:"allocated"`
			Error     *struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || out.Results[0].Error == nil {
		t.Fatalf("batch results = %+v", out.Results)
	}
	if out.Results[0].Error.Code != shield.ErrCodeUnauthorized {
		t.Fatalf("batch slot code = %q", out.Results[0].Error.Code)
	}
}

// TestBatchSlotErrorsUseContractCodes asserts per-slot batch errors
// carry the same stable codes as the single-bid endpoint.
func TestBatchSlotErrorsUseContractCodes(t *testing.T) {
	ts := contractServer(t, false)
	resp := do(t, ts, "POST", "/v1/bids/batch", `{"bids":[
		{"buyer":"ghost","dataset":"base","amount":50},
		{"buyer":"bob","dataset":"ghost","amount":50},
		{"buyer":"bob","dataset":"base","amount":0},
		{"buyer":"eve","dataset":"base","amount":2}
	]}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	var out struct {
		Results []struct {
			Allocated   bool    `json:"allocated"`
			WaitPeriods int     `json:"wait_periods"`
			PricePaid   float64 `json:"price_paid"`
			Error       *struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(out.Results))
	}
	wantCodes := []string{
		shield.ErrCodeUnknownBuyer,
		shield.ErrCodeUnknownDataset,
		shield.ErrCodeBadBid,
	}
	for i, want := range wantCodes {
		if out.Results[i].Error == nil {
			t.Fatalf("slot %d: no error, want %s", i, want)
		}
		if out.Results[i].Error.Code != want {
			t.Fatalf("slot %d code = %q, want %q", i, out.Results[i].Error.Code, want)
		}
	}
	// The one valid (sure-lose) bid succeeded in place.
	last := out.Results[3]
	if last.Error != nil {
		t.Fatalf("valid slot errored: %+v", last.Error)
	}
	if last.Allocated || last.WaitPeriods <= 0 {
		t.Fatalf("valid sure-lose slot = %+v", last)
	}
	if last.PricePaid != 0 {
		t.Fatal("losing batch slot leaked a price")
	}
}
