package httpapi

import (
	"net/http"

	"github.com/datamarket/shield/internal/apierr"
)

// Stable machine-readable error codes. Every error response carries one
// in the versioned envelope {"error":{"code":"...","message":"..."}};
// clients should branch on the code, never on the message text. The
// codes live in internal/apierr (they are shared with the binary wire
// transport) and stay re-exported here and from the shield facade, so
// existing callers compile unchanged.
const (
	CodeDuplicateID     = apierr.CodeDuplicateID
	CodeUnknownBuyer    = apierr.CodeUnknownBuyer
	CodeUnknownSeller   = apierr.CodeUnknownSeller
	CodeUnknownDataset  = apierr.CodeUnknownDataset
	CodeBadBid          = apierr.CodeBadBid
	CodeBidTooSoon      = apierr.CodeBidTooSoon
	CodeBlockedUntil    = apierr.CodeBlockedUntil
	CodeAlreadyAcquired = apierr.CodeAlreadyAcquired
	CodeDatasetInUse    = apierr.CodeDatasetInUse
	CodeEmptyID         = apierr.CodeEmptyID
	CodeUnauthorized    = apierr.CodeUnauthorized
	CodeBadRequest      = apierr.CodeBadRequest
	CodeInternal        = apierr.CodeInternal

	CodeReadOnlyReplica    = apierr.CodeReadOnlyReplica
	CodeReplicaUnavailable = apierr.CodeReplicaUnavailable
)

// APIError is the body of the "error" envelope field.
type APIError = apierr.APIError

type errorEnvelope struct {
	Error APIError `json:"error"`
}

// classify maps an error to its stable code and HTTP status.
func classify(err error) (code string, status int) {
	return apierr.Classify(err)
}

// writeError maps market and auth errors to HTTP statuses and writes
// the versioned error envelope.
func writeError(w http.ResponseWriter, err error) {
	code, status := classify(err)
	writeJSON(w, status, errorEnvelope{Error: APIError{Code: code, Message: err.Error()}})
}

// writeAPIError writes an envelope with an explicit code, for errors
// that do not originate from a market/auth sentinel (malformed JSON,
// missing query parameters, unsigned bids).
func writeAPIError(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, errorEnvelope{Error: APIError{Code: code, Message: message}})
}
