package httpapi

import (
	"errors"
	"net/http"

	"github.com/datamarket/shield/internal/auth"
	"github.com/datamarket/shield/internal/market"
)

// Stable machine-readable error codes. Every error response carries one
// in the versioned envelope {"error":{"code":"...","message":"..."}};
// clients should branch on the code, never on the message text. The
// codes are part of the v1 API contract and are re-exported from the
// shield facade.
const (
	CodeDuplicateID     = "duplicate_id"
	CodeUnknownBuyer    = "unknown_buyer"
	CodeUnknownSeller   = "unknown_seller"
	CodeUnknownDataset  = "unknown_dataset"
	CodeBadBid          = "bad_bid"
	CodeBidTooSoon      = "bid_too_soon"
	CodeBlockedUntil    = "blocked_until"
	CodeAlreadyAcquired = "already_acquired"
	CodeDatasetInUse    = "dataset_in_use"
	CodeEmptyID         = "empty_id"
	CodeUnauthorized    = "unauthorized"
	CodeBadRequest      = "bad_request"
	CodeInternal        = "internal"
)

// APIError is the body of the "error" envelope field.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorEnvelope struct {
	Error APIError `json:"error"`
}

// classify maps an error to its stable code and HTTP status.
func classify(err error) (code string, status int) {
	switch {
	case errors.Is(err, market.ErrUnknownBuyer), errors.Is(err, auth.ErrUnknownBuyer):
		return CodeUnknownBuyer, http.StatusNotFound
	case errors.Is(err, market.ErrUnknownSeller):
		return CodeUnknownSeller, http.StatusNotFound
	case errors.Is(err, market.ErrUnknownDataset):
		return CodeUnknownDataset, http.StatusNotFound
	case errors.Is(err, market.ErrDuplicateID), errors.Is(err, auth.ErrDuplicate):
		return CodeDuplicateID, http.StatusConflict
	case errors.Is(err, market.ErrAlreadyAcquired):
		return CodeAlreadyAcquired, http.StatusConflict
	case errors.Is(err, market.ErrDatasetInUse):
		return CodeDatasetInUse, http.StatusConflict
	case errors.Is(err, market.ErrBadBid):
		return CodeBadBid, http.StatusBadRequest
	case errors.Is(err, market.ErrEmptyID), errors.Is(err, auth.ErrEmptyID):
		return CodeEmptyID, http.StatusBadRequest
	case errors.Is(err, market.ErrBidTooSoon):
		return CodeBidTooSoon, http.StatusTooManyRequests
	case errors.Is(err, market.ErrWaitActive):
		return CodeBlockedUntil, http.StatusTooManyRequests
	case errors.Is(err, auth.ErrBadSignature), errors.Is(err, auth.ErrReplay):
		return CodeUnauthorized, http.StatusUnauthorized
	default:
		return CodeInternal, http.StatusInternalServerError
	}
}

// writeError maps market and auth errors to HTTP statuses and writes
// the versioned error envelope.
func writeError(w http.ResponseWriter, err error) {
	code, status := classify(err)
	writeJSON(w, status, errorEnvelope{Error: APIError{Code: code, Message: err.Error()}})
}

// writeAPIError writes an envelope with an explicit code, for errors
// that do not originate from a market/auth sentinel (malformed JSON,
// missing query parameters, unsigned bids).
func writeAPIError(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, errorEnvelope{Error: APIError{Code: code, Message: message}})
}
