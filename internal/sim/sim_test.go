package sim

import (
	"math"
	"testing"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/dp"
	"github.com/datamarket/shield/internal/timeseries"
)

func testEngineConfig() core.Config {
	// The candidate grid spans the whole bid range, floor included: a
	// strategic floor bid must be able to drag the learned price down
	// (that is the attack Epoch-Shield defends against), so the floor
	// itself has to be a candidate posting price.
	return core.Config{
		Candidates:    auction.LinearGrid(1, 200, 25),
		EpochSize:     8,
		BidsPerPeriod: 1,
		MinBid:        1,
	}
}

func testSpec() Spec {
	return Spec{
		AR:        timeseries.ARConfig{AR: 0.1, Sigma: 0.01, Mean: 100, Floor: 1, N: 250},
		Strategic: timeseries.StrategicConfig{PCT: 0, Beta: 0, Horizon: 1, Floor: 1},
		Series:    5,
		BaseSeed:  11,
	}
}

func TestReplayFixedPrice(t *testing.T) {
	p := StreamPricerAdapter{P: auction.FixedPricer{P: 50}}
	stream := []timeseries.Bid{
		{Buyer: 0, Valuation: 60, Amount: 60, Final: true},
		{Buyer: 1, Valuation: 40, Amount: 40, Final: true},
		{Buyer: 2, Valuation: 80, Amount: 80, Final: true},
	}
	res := Replay(p, stream, true)
	if res.Bids != 3 || res.Allocations != 2 {
		t.Fatalf("result = %+v", res)
	}
	if res.Revenue != 100 {
		t.Fatalf("revenue = %v, want 100", res.Revenue)
	}
	if res.Surplus != (60-50)+(80-50) {
		t.Fatalf("surplus = %v, want 40", res.Surplus)
	}
}

func TestReplaySkipWon(t *testing.T) {
	p := StreamPricerAdapter{P: auction.FixedPricer{P: 50}}
	// Buyer 0 wins at its first bid; later bids must be dropped.
	stream := []timeseries.Bid{
		{Buyer: 0, Valuation: 100, Amount: 100},
		{Buyer: 0, Valuation: 100, Amount: 100, Final: true},
	}
	res := Replay(p, stream, true)
	if res.Bids != 1 || res.Allocations != 1 || res.Revenue != 50 {
		t.Fatalf("skipWon result = %+v", res)
	}
	p.Reset()
	res = Replay(p, stream, false)
	if res.Bids != 2 || res.Allocations != 2 || res.Revenue != 100 {
		t.Fatalf("keep result = %+v", res)
	}
}

func TestEnginePricerAdapts(t *testing.T) {
	cfg := testEngineConfig()
	cfg.Seed = 1
	e := core.MustNew(cfg)
	p := EnginePricer{E: e}
	alloc, price := p.Decide(1000)
	if !alloc || price <= 0 {
		t.Fatalf("Decide = %v, %v", alloc, price)
	}
	p.Reset()
	if e.Bids() != 0 {
		t.Fatal("Reset did not reach engine")
	}
}

func TestRunProducesSamplesPerFactory(t *testing.T) {
	results, err := Run(testSpec(), map[string]PricerFactory{
		"mw":  EngineFactory(testEngineConfig()),
		"opt": OptFactory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results keys = %d", len(results))
	}
	for name, rs := range results {
		if len(rs) != 5 {
			t.Fatalf("%s: %d samples", name, len(rs))
		}
		for i, r := range rs {
			if r.Bids == 0 {
				t.Fatalf("%s sample %d saw no bids", name, i)
			}
			if r.Revenue < 0 || r.Surplus < -1e9 {
				t.Fatalf("%s sample %d = %+v", name, i, r)
			}
		}
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(testSpec(), nil); err == nil {
		t.Fatal("no factories accepted")
	}
	spec := testSpec()
	spec.Series = -1
	if _, err := Run(spec, map[string]PricerFactory{"opt": OptFactory()}); err == nil {
		t.Fatal("negative series accepted")
	}
	spec = testSpec()
	spec.AR.Mean = 0 // invalid generator config must surface
	if _, err := Run(spec, map[string]PricerFactory{"opt": OptFactory()}); err == nil {
		t.Fatal("bad AR config accepted")
	}
	spec = testSpec()
	spec.Strategic.Horizon = 0
	if _, err := Run(spec, map[string]PricerFactory{"opt": OptFactory()}); err == nil {
		t.Fatal("bad strategic config accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	factories := map[string]PricerFactory{"mw": EngineFactory(testEngineConfig())}
	a, err := Run(testSpec(), factories)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testSpec(), factories)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a["mw"] {
		if a["mw"][i] != b["mw"][i] {
			t.Fatalf("sample %d diverged: %+v vs %+v", i, a["mw"][i], b["mw"][i])
		}
	}
}

func TestOptDominatesOnTruthfulStreams(t *testing.T) {
	// On truthful streams, the offline optimal fixed price should collect
	// at least as much revenue as any online baseline, per series, up to
	// the skip-after-win interaction (winners leave the stream, which can
	// only reduce later revenue for Opt too). Compare means with a small
	// tolerance.
	spec := testSpec()
	spec.Series = 10
	results, err := Run(spec, map[string]PricerFactory{
		"opt": OptFactory(),
		"avg": EpochSummaryFactory(8, auction.AvgSummary, 100),
		"mw":  EngineFactory(testEngineConfig()),
	})
	if err != nil {
		t.Fatal(err)
	}
	mean := func(name string) float64 {
		var s float64
		for _, r := range results[name] {
			s += r.Revenue
		}
		return s / float64(len(results[name]))
	}
	opt := mean("opt")
	if opt <= 0 {
		t.Fatal("Opt raised nothing")
	}
	for _, name := range []string{"avg", "mw"} {
		if m := mean(name); m > opt*1.05 {
			t.Errorf("%s mean revenue %v exceeds Opt %v", name, m, opt)
		}
	}
}

func TestStrategicBuyersHurtRevenue(t *testing.T) {
	// The core claim of RQ6/RQ8: low strategic bids reduce revenue, more
	// so for small epochs. Check PCT=0.9 < PCT=0 revenue for E=1.
	mk := func(pct float64) float64 {
		spec := testSpec()
		spec.Series = 10
		spec.Strategic = timeseries.StrategicConfig{PCT: pct, Beta: 0, Horizon: 4, Floor: 1}
		cfg := testEngineConfig()
		cfg.EpochSize = 1
		results, err := Run(spec, map[string]PricerFactory{"mw": EngineFactory(cfg)})
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for _, r := range results["mw"] {
			s += r.Revenue
		}
		return s / float64(len(results["mw"]))
	}
	honest := mk(0)
	attacked := mk(0.9)
	if attacked >= honest {
		t.Fatalf("strategic attack did not reduce revenue: %v >= %v", attacked, honest)
	}
}

func TestLargerEpochResistsAttackBetter(t *testing.T) {
	// Epoch-Shield's central claim (Figure 3b): under heavy attack,
	// larger epochs retain more revenue than E=1.
	mk := func(epoch int) float64 {
		spec := testSpec()
		spec.Series = 15
		spec.Strategic = timeseries.StrategicConfig{PCT: 0.9, Beta: 0, Horizon: 4, Floor: 1}
		cfg := testEngineConfig()
		cfg.EpochSize = epoch
		results, err := Run(spec, map[string]PricerFactory{"mw": EngineFactory(cfg)})
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for _, r := range results["mw"] {
			s += r.Revenue
		}
		return s / float64(len(results["mw"]))
	}
	small := mk(1)
	large := mk(16)
	if large <= small {
		t.Fatalf("E=16 revenue %v <= E=1 revenue %v under attack", large, small)
	}
}

func TestProjectionsAndNormalization(t *testing.T) {
	rs := []Result{{Revenue: 10, Surplus: 5}, {Revenue: 20, Surplus: 2}}
	if rev := Revenues(rs); rev[0] != 10 || rev[1] != 20 {
		t.Fatalf("Revenues = %v", rev)
	}
	if sur := Surpluses(rs); sur[0] != 5 || sur[1] != 2 {
		t.Fatalf("Surpluses = %v", sur)
	}
	norm := NormalizeAcross(map[string][]float64{
		"a": {10, 20},
		"b": {40},
	})
	if norm["b"][0] != 1 || norm["a"][1] != 0.5 || norm["a"][0] != 0.25 {
		t.Fatalf("NormalizeAcross = %v", norm)
	}
	sums := SummarizeAll(map[string][]float64{"a": {1, 2, 3}})
	if sums["a"].N != 3 || math.Abs(sums["a"].Mean-2) > 1e-12 {
		t.Fatalf("SummarizeAll = %+v", sums)
	}
}

func TestDPFactoryRuns(t *testing.T) {
	spec := testSpec()
	spec.Series = 3
	results, err := Run(spec, map[string]PricerFactory{
		"dp": DPFactory(dp.Config{
			Epsilon: 1, MinBid: 0, MaxBid: 300, EpochSize: 8, InitialPrice: 100,
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results["dp"] {
		if r.Bids == 0 {
			t.Fatal("dp pricer saw no bids")
		}
	}
}

func TestRandomPricerFactoryRuns(t *testing.T) {
	spec := testSpec()
	spec.Series = 3
	results, err := Run(spec, map[string]PricerFactory{
		"random": RandomPricerFactory(auction.LinearGrid(10, 200, 20), 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results["random"] {
		if r.Bids == 0 {
			t.Fatal("random pricer saw no bids")
		}
	}
}
