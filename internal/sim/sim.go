// Package sim is the simulation harness for the paper's evaluation
// (Sections 7.2-7.3): it replays transformed bid streams through pricing
// engines and baselines behind one interface, measures revenue and buyer
// social surplus, and aggregates across the paper's 100 random series per
// configuration into the percentile boxes the figures report.
package sim

import (
	"errors"
	"fmt"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/rng"
	"github.com/datamarket/shield/internal/stats"
	"github.com/datamarket/shield/internal/timeseries"
)

// Pricer is the uniform interface the harness sweeps over: the paper's
// MW engine, the avg/p50/Random/AdHoc baselines, the DP mechanism, and
// the offline Opt all fit it.
type Pricer interface {
	// Decide evaluates one bid, returning the allocation decision and the
	// posting price it was evaluated against, and updates internal state.
	Decide(bid float64) (allocated bool, price float64)
	// Reset restores the initial state (same randomness).
	Reset()
}

// EnginePricer adapts a core.Engine to Pricer.
type EnginePricer struct{ E *core.Engine }

// Decide implements Pricer.
func (p EnginePricer) Decide(bid float64) (bool, float64) {
	d := p.E.SubmitBid(bid)
	return d.Allocated, d.Price
}

// Reset implements Pricer.
func (p EnginePricer) Reset() { p.E.Reset() }

// StreamPricerAdapter adapts an auction.StreamPricer (avg, p50, Random,
// Opt, the DP mechanism) to Pricer using posting-price semantics: bids at
// or above the current positive price win and pay it; every bid is then
// observed.
type StreamPricerAdapter struct{ P auction.StreamPricer }

// Decide implements Pricer.
func (a StreamPricerAdapter) Decide(bid float64) (bool, float64) {
	price := a.P.PostingPrice()
	allocated := price > 0 && bid >= price
	a.P.ObserveBid(bid)
	return allocated, price
}

// Reset implements Pricer.
func (a StreamPricerAdapter) Reset() { a.P.Reset() }

// Result measures one replay.
type Result struct {
	// Revenue is the total raised from winning bids.
	Revenue float64
	// Surplus is the buyer social surplus: sum of (valuation - price)
	// over allocations (Section 3.3).
	Surplus float64
	// Allocations counts winning bids; Bids counts submitted bids.
	Allocations, Bids int
}

// Replay runs stream through p. When skipWon is true (the realistic
// setting), a buyer who has already won stops bidding: its remaining
// stream entries are dropped, since a buyer needs the dataset only once.
func Replay(p Pricer, stream []timeseries.Bid, skipWon bool) Result {
	var res Result
	var won map[int]bool
	if skipWon {
		won = make(map[int]bool)
	}
	for _, b := range stream {
		if skipWon && won[b.Buyer] {
			continue
		}
		allocated, price := p.Decide(b.Amount)
		res.Bids++
		if allocated {
			res.Allocations++
			res.Revenue += price
			res.Surplus += market.Surplus(b.Valuation, price, true)
			if skipWon {
				won[b.Buyer] = true
			}
		}
	}
	return res
}

// Spec describes one simulated market configuration: the valuation
// process, the strategic transform, and how many independent series to
// aggregate. The paper uses 100 series of 250 points.
type Spec struct {
	AR        timeseries.ARConfig
	Strategic timeseries.StrategicConfig
	// Series is the number of random series (0 selects 100).
	Series int
	// BaseSeed derives the per-series generator and transform seeds.
	BaseSeed uint64
	// SkipWon controls Replay's skip-after-win behavior (default true via
	// Run; set KeepWonBids to replay every bid).
	KeepWonBids bool
	// Window truncates each transformed stream to at most this many bids
	// (0 keeps the whole stream). The paper measures fixed-length
	// observation windows of an ongoing market: strategic buyers fill
	// the window with low bids and many of their truthful final bids fall
	// beyond it — that displacement, not the low bids' sale value, is
	// how strategizing starves revenue.
	Window int
}

// PricerFactory builds a fresh pricer for one series. seed is unique per
// (factory, series) pair; hindsight is the full bid stream the pricer
// will face, supplied so the Opt baseline can compute the optimal fixed
// posting price in hindsight — online pricers must ignore it.
type PricerFactory func(seed uint64, hindsight []float64) Pricer

// Run generates Spec.Series random series, replays each through every
// factory's pricer, and returns per-factory sample slices of Results in
// series order. Every factory faces the identical stream for a given
// series index.
func Run(spec Spec, factories map[string]PricerFactory) (map[string][]Result, error) {
	if len(factories) == 0 {
		return nil, errors.New("sim: no pricer factories")
	}
	series := spec.Series
	if series == 0 {
		series = 100
	}
	if series < 1 {
		return nil, errors.New("sim: Series must be >= 1")
	}
	out := make(map[string][]Result, len(factories))
	for name := range factories {
		out[name] = make([]Result, 0, series)
	}
	for s := 0; s < series; s++ {
		seed := spec.BaseSeed + uint64(s)*2654435761
		genR := rng.New(seed)
		vals, err := timeseries.GenerateValuations(spec.AR, genR)
		if err != nil {
			return nil, fmt.Errorf("sim: series %d: %w", s, err)
		}
		stream, err := timeseries.Transform(vals, spec.Strategic, genR.Split())
		if err != nil {
			return nil, fmt.Errorf("sim: series %d: %w", s, err)
		}
		if spec.Window > 0 && len(stream) > spec.Window {
			// A window is a stationary snapshot of an ongoing market:
			// the buyers observed mid-window are at arbitrary phases of
			// their bidding plans (some started before the window, some
			// finish after it). Shuffle fully before truncating so the
			// window composition matches the steady-state bid mix rather
			// than the transient where every buyer has just arrived.
			shuf := rng.New(seed ^ 0x9e3779b97f4a7c15)
			shuffleBids(stream, shuf)
			stream = stream[:spec.Window]
		}
		hindsight := timeseries.Amounts(stream)
		for name, mk := range factories {
			p := mk(seed, hindsight)
			out[name] = append(out[name], Replay(p, stream, !spec.KeepWonBids))
		}
	}
	return out, nil
}

// shuffleBids is a Fisher-Yates shuffle over a bid stream.
func shuffleBids(s []timeseries.Bid, r *rng.RNG) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Revenues projects the revenue samples out of results.
func Revenues(rs []Result) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.Revenue
	}
	return out
}

// Surpluses projects the surplus samples out of results.
func Surpluses(rs []Result) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.Surplus
	}
	return out
}

// NormalizeAcross rescales every sample in the map by the single largest
// sample across all keys, mirroring the paper's "normalized to the
// maximum value" presentation. It returns a new map.
func NormalizeAcross(samples map[string][]float64) map[string][]float64 {
	var max float64
	for _, xs := range samples {
		if m := stats.Max(xs); m > max {
			max = m
		}
	}
	out := make(map[string][]float64, len(samples))
	for k, xs := range samples {
		out[k] = stats.NormalizeBy(xs, max)
	}
	return out
}

// SummarizeAll computes the box-plot summary per key.
func SummarizeAll(samples map[string][]float64) map[string]stats.Summary {
	out := make(map[string]stats.Summary, len(samples))
	for k, xs := range samples {
		out[k] = stats.Summarize(xs)
	}
	return out
}
