package sim

import (
	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/dp"
)

// EngineFactory returns a factory producing the paper's MW engine from a
// config template; the per-series seed overrides cfg.Seed, and wait
// computation is disabled (static replays encode buyer timing already).
func EngineFactory(cfg core.Config) PricerFactory {
	return func(seed uint64, _ []float64) Pricer {
		c := cfg
		c.Seed = seed
		c.DisableWaitPeriods = true
		return EnginePricer{E: core.MustNew(c)}
	}
}

// RuleFactory is EngineFactory with a draw-rule override (the Figure 4a
// comparison: MW vs MW-Max vs AdHoc vs Random).
func RuleFactory(cfg core.Config, rule core.DrawRule) PricerFactory {
	cfg.Rule = rule
	return EngineFactory(cfg)
}

// EpochSummaryFactory returns a factory for the avg/p50/optimal-per-epoch
// baselines of Section 7.3.1.
func EpochSummaryFactory(epochSize int, summarize auction.SummaryFunc, initial float64) PricerFactory {
	return func(uint64, []float64) Pricer {
		return StreamPricerAdapter{P: auction.NewEpochPricer(epochSize, summarize, initial)}
	}
}

// RandomPricerFactory returns a factory for the price-ignoring Random
// baseline drawing uniformly from candidates.
func RandomPricerFactory(candidates []float64, epochSize int) PricerFactory {
	return func(seed uint64, _ []float64) Pricer {
		return StreamPricerAdapter{P: auction.NewRandomPricer(candidates, epochSize, seed)}
	}
}

// OptFactory returns the offline-optimal fixed posting price baseline
// ("Opt"): Equation 2 applied to the full stream in hindsight.
func OptFactory() PricerFactory {
	return func(_ uint64, hindsight []float64) Pricer {
		return StreamPricerAdapter{P: auction.OfflineOptimalPricer(hindsight)}
	}
}

// DPFactory returns the Laplace-mechanism pricer of Section 6.3; the
// per-series seed overrides cfg.Seed.
func DPFactory(cfg dp.Config) PricerFactory {
	return func(seed uint64, _ []float64) Pricer {
		c := cfg
		c.Seed = seed
		return StreamPricerAdapter{P: dp.MustNew(c)}
	}
}
