// Package expost implements the ex-post algorithm of Section 8: trading
// data as an experience good, where buyers learn their valuation only
// after using a dataset and pay afterwards.
//
// The arbiter grants a dataset to an eligible returning buyer, privately
// recording the posting price p_a in force at allocation time. The buyer
// later reports a payment P:
//
//   - P >= p_a: the arbiter charges exactly p_a — the buyer caused no
//     revenue loss (and never overpays the posted price);
//   - P <  p_a: the arbiter collects P, books the shortfall against the
//     buyer's revenue balance, and computes a Time-Shield wait from how
//     long a bid of P would need to become competitive; the wait applies
//     the next time the buyer requests any dataset.
//
// Buyers whose balance falls below a threshold lose the ex-post option
// (Section 8.3) and recover it by paying a hidden surcharge fraction on
// subsequent ex-ante wins until the balance reaches zero. Requesting a
// dataset while a wait is active extends the wait — the deterrent against
// the risk-seeking pattern Section 8.2 describes.
package expost

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/market"
)

// Sentinel errors.
var (
	ErrUnknownBuyer   = errors.New("expost: unknown buyer")
	ErrUnknownDataset = errors.New("expost: unknown dataset")
	ErrUnknownGrant   = errors.New("expost: unknown or settled grant")
	ErrDuplicateID    = errors.New("expost: identifier already registered")
	ErrWaitActive     = errors.New("expost: wait period active")
	ErrDisabled       = errors.New("expost: ex-post option disabled for buyer")
	ErrBadPayment     = errors.New("expost: payment must be >= 0")
	ErrBadBid         = errors.New("expost: bid must be > 0")
	ErrEmptyID        = errors.New("expost: empty identifier")
)

// Config configures the ex-post arbiter.
type Config struct {
	// Engine is the pricing-engine template per dataset.
	Engine core.Config
	// Seed derives per-dataset engine seeds.
	Seed uint64
	// DeactivateBelow is the (negative) balance at which the ex-post
	// option switches off; 0 selects -100 currency units.
	DeactivateBelow market.Money
	// RecoveryFraction of the outstanding debt is surcharged on each
	// subsequent ex-ante win; 0 selects 0.25. Must stay in (0, 1].
	RecoveryFraction float64
}

// GrantID identifies an outstanding ex-post grant.
type GrantID int

type grant struct {
	buyer   string
	dataset string
	pa      market.Money // posting price at allocation time (private)
	settled bool
}

type buyerState struct {
	balance      market.Money
	blockedUntil int
	disabled     bool
	grants       int
	settled      int
}

// PayResult reports the settlement of a grant.
type PayResult struct {
	// Charged is what the arbiter actually collected.
	Charged market.Money
	// WaitPeriods is the Time-Shield penalty applied to the buyer's next
	// request (0 when the payment covered the posting price).
	WaitPeriods int
	// Deactivated reports that this settlement pushed the buyer's
	// balance below the threshold, disabling the ex-post option.
	Deactivated bool
}

// BidResult reports an ex-ante bid through the ex-post arbiter.
type BidResult struct {
	Allocated bool
	// Charged includes any recovery surcharge on top of the posting
	// price.
	Charged market.Money
	// Surcharge is the recovery portion of Charged.
	Surcharge market.Money
	// Reactivated reports that the surcharge brought the balance back to
	// zero or above, re-enabling the ex-post option.
	Reactivated bool
	// WaitPeriods is the Time-Shield wait for losing bids.
	WaitPeriods int
}

// Arbiter runs the ex-post market. Safe for concurrent use.
type Arbiter struct {
	mu sync.Mutex

	cfg     Config
	clock   int
	engines map[string]*core.Engine
	buyers  map[string]*buyerState
	grants  map[GrantID]*grant
	nextID  GrantID
	revenue market.Money
}

// New builds an Arbiter.
func New(cfg Config) (*Arbiter, error) {
	if err := cfg.Engine.Validate(); err != nil {
		return nil, fmt.Errorf("expost: engine template: %w", err)
	}
	if cfg.DeactivateBelow == 0 {
		cfg.DeactivateBelow = -100 * market.Micro
	}
	if cfg.DeactivateBelow > 0 {
		return nil, errors.New("expost: DeactivateBelow must be negative")
	}
	if cfg.RecoveryFraction == 0 {
		cfg.RecoveryFraction = 0.25
	}
	if cfg.RecoveryFraction < 0 || cfg.RecoveryFraction > 1 {
		return nil, errors.New("expost: RecoveryFraction outside (0, 1]")
	}
	return &Arbiter{
		cfg:     cfg,
		engines: make(map[string]*core.Engine),
		buyers:  make(map[string]*buyerState),
		grants:  make(map[GrantID]*grant),
		nextID:  1,
	}, nil
}

// MustNew is New for static configurations; it panics on config errors.
func MustNew(cfg Config) *Arbiter {
	a, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// AddDataset starts pricing a dataset.
func (a *Arbiter) AddDataset(id string) error {
	if id == "" {
		return ErrEmptyID
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.engines[id]; ok {
		return fmt.Errorf("%w: dataset %s", ErrDuplicateID, id)
	}
	cfg := a.cfg.Engine
	h := fnv.New64a()
	h.Write([]byte(id))
	cfg.Seed = a.cfg.Seed ^ h.Sum64()
	a.engines[id] = core.MustNew(cfg)
	return nil
}

// RegisterBuyer adds a returning buyer eligible for ex-post trading.
func (a *Arbiter) RegisterBuyer(id string) error {
	if id == "" {
		return ErrEmptyID
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.buyers[id]; ok {
		return fmt.Errorf("%w: buyer %s", ErrDuplicateID, id)
	}
	a.buyers[id] = &buyerState{}
	return nil
}

// Tick advances the period clock.
func (a *Arbiter) Tick() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.clock++
	return a.clock
}

// Request grants dataset to buyer under the ex-post option. The posting
// price at grant time is recorded privately; the buyer pays after use via
// Pay. Requesting during an active wait extends the wait (the
// risk-seeking deterrent) and fails.
func (a *Arbiter) Request(buyer, dataset string) (GrantID, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	bs, ok := a.buyers[buyer]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownBuyer, buyer)
	}
	eng, ok := a.engines[dataset]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownDataset, dataset)
	}
	if a.clock < bs.blockedUntil {
		// Deterrent: trying to consume the penalty on a throwaway
		// request extends it.
		remaining := bs.blockedUntil - a.clock
		bs.blockedUntil += remaining
		return 0, fmt.Errorf("%w: %d periods remain (extended)", ErrWaitActive, 2*remaining)
	}
	if bs.disabled {
		return 0, fmt.Errorf("%w: %s", ErrDisabled, buyer)
	}
	id := a.nextID
	a.nextID++
	a.grants[id] = &grant{
		buyer:   buyer,
		dataset: dataset,
		pa:      market.FromFloat(eng.PostingPrice()),
	}
	bs.grants++
	return id, nil
}

// Pay settles a grant with the buyer's reported payment (their learned
// valuation of the data).
func (a *Arbiter) Pay(id GrantID, payment float64) (PayResult, error) {
	if payment < 0 {
		return PayResult{}, ErrBadPayment
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	g, ok := a.grants[id]
	if !ok || g.settled {
		return PayResult{}, ErrUnknownGrant
	}
	bs := a.buyers[g.buyer]
	eng := a.engines[g.dataset]
	g.settled = true
	bs.settled++

	pay := market.FromFloat(payment)
	var res PayResult
	if pay >= g.pa {
		// No revenue loss: collect exactly the posting price (buyers
		// never pay above the posted price, as in the ex-ante market).
		res.Charged = g.pa
		a.revenue += g.pa
		eng.Observe(g.pa.Float())
		return res, nil
	}

	res.Charged = pay
	a.revenue += pay
	bs.balance += pay - g.pa
	// The wait is computed "as usual": the time a bid equal to the
	// payment would need to become competitive (Section 8.2).
	res.WaitPeriods = eng.ComputeWaitPeriod(payment)
	bs.blockedUntil = a.clock + res.WaitPeriods
	eng.Observe(payment)
	if bs.balance < a.cfg.DeactivateBelow {
		bs.disabled = true
		res.Deactivated = true
	}
	return res, nil
}

// Bid places a standard ex-ante bid through the ex-post arbiter. Winning
// buyers with outstanding debt pay a hidden surcharge that amortizes the
// balance (Section 8.3); reaching zero re-enables the ex-post option.
func (a *Arbiter) Bid(buyer, dataset string, amount float64) (BidResult, error) {
	if !(amount > 0) {
		return BidResult{}, ErrBadBid
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	bs, ok := a.buyers[buyer]
	if !ok {
		return BidResult{}, fmt.Errorf("%w: %s", ErrUnknownBuyer, buyer)
	}
	eng, ok := a.engines[dataset]
	if !ok {
		return BidResult{}, fmt.Errorf("%w: %s", ErrUnknownDataset, dataset)
	}
	if a.clock < bs.blockedUntil {
		remaining := bs.blockedUntil - a.clock
		bs.blockedUntil += remaining
		return BidResult{}, fmt.Errorf("%w: %d periods remain (extended)", ErrWaitActive, 2*remaining)
	}
	d := eng.SubmitBid(amount)
	if !d.Allocated {
		bs.blockedUntil = a.clock + d.Wait
		return BidResult{WaitPeriods: d.Wait}, nil
	}
	price := market.FromFloat(d.Price)
	var res BidResult
	res.Allocated = true
	res.Charged = price
	a.revenue += price
	if bs.balance < 0 {
		debt := -bs.balance
		surcharge := market.FromFloat(a.cfg.RecoveryFraction * debt.Float())
		if surcharge > debt {
			surcharge = debt
		}
		res.Surcharge = surcharge
		res.Charged += surcharge
		a.revenue += surcharge
		bs.balance += surcharge
		if bs.disabled && bs.balance >= 0 {
			bs.disabled = false
			res.Reactivated = true
		}
	}
	return res, nil
}

// Balance returns a buyer's revenue balance (<= 0; debts are negative).
func (a *Arbiter) Balance(buyer string) (market.Money, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	bs, ok := a.buyers[buyer]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownBuyer, buyer)
	}
	return bs.balance, nil
}

// Disabled reports whether the buyer's ex-post option is currently off.
func (a *Arbiter) Disabled(buyer string) (bool, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	bs, ok := a.buyers[buyer]
	if !ok {
		return false, fmt.Errorf("%w: %s", ErrUnknownBuyer, buyer)
	}
	return bs.disabled, nil
}

// WaitRemaining returns the periods left on the buyer's global wait.
func (a *Arbiter) WaitRemaining(buyer string) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	bs, ok := a.buyers[buyer]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownBuyer, buyer)
	}
	if a.clock < bs.blockedUntil {
		return bs.blockedUntil - a.clock, nil
	}
	return 0, nil
}

// Revenue returns the total collected so far.
func (a *Arbiter) Revenue() market.Money {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.revenue
}
