package expost

import (
	"errors"
	"testing"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/market"
)

func testArbiter(t *testing.T) *Arbiter {
	t.Helper()
	a, err := New(Config{
		Engine: core.Config{
			Candidates:    auction.LinearGrid(10, 100, 10),
			EpochSize:     4,
			BidsPerPeriod: 1,
			MinBid:        1,
			MaxWaitEpochs: 8,
		},
		Seed:             5,
		DeactivateBelow:  -50 * market.Micro,
		RecoveryFraction: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddDataset("d"); err != nil {
		t.Fatal(err)
	}
	if err := a.AddDataset("d2"); err != nil {
		t.Fatal(err)
	}
	if err := a.RegisterBuyer("b"); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	good := core.Config{Candidates: auction.LinearGrid(10, 100, 10), EpochSize: 4}
	if _, err := New(Config{Engine: good, DeactivateBelow: 5}); err == nil {
		t.Fatal("positive DeactivateBelow accepted")
	}
	if _, err := New(Config{Engine: good, RecoveryFraction: 2}); err == nil {
		t.Fatal("RecoveryFraction > 1 accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(Config{})
}

func TestRegistrationErrors(t *testing.T) {
	a := testArbiter(t)
	if err := a.AddDataset(""); !errors.Is(err, ErrEmptyID) {
		t.Errorf("empty dataset: %v", err)
	}
	if err := a.AddDataset("d"); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("dup dataset: %v", err)
	}
	if err := a.RegisterBuyer(""); !errors.Is(err, ErrEmptyID) {
		t.Errorf("empty buyer: %v", err)
	}
	if err := a.RegisterBuyer("b"); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("dup buyer: %v", err)
	}
	if _, err := a.Request("ghost", "d"); !errors.Is(err, ErrUnknownBuyer) {
		t.Errorf("unknown buyer: %v", err)
	}
	if _, err := a.Request("b", "ghost"); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("unknown dataset: %v", err)
	}
	if _, err := a.Pay(999, 10); !errors.Is(err, ErrUnknownGrant) {
		t.Errorf("unknown grant: %v", err)
	}
	if _, err := a.Pay(1, -1); !errors.Is(err, ErrBadPayment) {
		t.Errorf("bad payment: %v", err)
	}
	if _, err := a.Bid("b", "d", 0); !errors.Is(err, ErrBadBid) {
		t.Errorf("bad bid: %v", err)
	}
	if _, err := a.Bid("ghost", "d", 10); !errors.Is(err, ErrUnknownBuyer) {
		t.Errorf("bid unknown buyer: %v", err)
	}
	if _, err := a.Bid("b", "ghost", 10); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("bid unknown dataset: %v", err)
	}
	if _, err := a.Balance("ghost"); !errors.Is(err, ErrUnknownBuyer) {
		t.Errorf("balance unknown: %v", err)
	}
	if _, err := a.Disabled("ghost"); !errors.Is(err, ErrUnknownBuyer) {
		t.Errorf("disabled unknown: %v", err)
	}
	if _, err := a.WaitRemaining("ghost"); !errors.Is(err, ErrUnknownBuyer) {
		t.Errorf("wait unknown: %v", err)
	}
}

func TestGenerousPaymentChargesPostingPrice(t *testing.T) {
	a := testArbiter(t)
	g, err := a.Request("b", "d")
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Pay(g, 1e6) // far above any posting price
	if err != nil {
		t.Fatal(err)
	}
	if res.WaitPeriods != 0 || res.Deactivated {
		t.Fatalf("generous payment penalized: %+v", res)
	}
	if res.Charged <= 0 || res.Charged > 100*market.Micro {
		t.Fatalf("charged %v outside candidate range", res.Charged)
	}
	if bal, _ := a.Balance("b"); bal != 0 {
		t.Fatalf("balance %v after full payment", bal)
	}
	if a.Revenue() != res.Charged {
		t.Fatalf("revenue %v != charged %v", a.Revenue(), res.Charged)
	}
	// Settling twice fails.
	if _, err := a.Pay(g, 50); !errors.Is(err, ErrUnknownGrant) {
		t.Fatalf("double settle: %v", err)
	}
}

func TestUnderpaymentBooksDebtAndWait(t *testing.T) {
	a := testArbiter(t)
	g, err := a.Request("b", "d")
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Pay(g, 1) // far below any candidate price
	if err != nil {
		t.Fatal(err)
	}
	if res.Charged != 1*market.Micro {
		t.Fatalf("charged %v, want the payment itself", res.Charged)
	}
	if res.WaitPeriods <= 0 {
		t.Fatal("no wait assigned for underpayment")
	}
	bal, _ := a.Balance("b")
	if bal >= 0 {
		t.Fatalf("balance %v not negative", bal)
	}
	// The wait blocks the next request on ANY dataset.
	if _, err := a.Request("b", "d2"); !errors.Is(err, ErrWaitActive) {
		t.Fatalf("request during wait: %v", err)
	}
	// ...and trying extends the wait (risk-seeking deterrent).
	w1, _ := a.WaitRemaining("b")
	if _, err := a.Request("b", "d2"); !errors.Is(err, ErrWaitActive) {
		t.Fatalf("request during wait: %v", err)
	}
	w2, _ := a.WaitRemaining("b")
	if w2 <= w1 {
		t.Fatalf("wait not extended: %d -> %d", w1, w2)
	}
}

func TestDeactivationAndRecovery(t *testing.T) {
	a := testArbiter(t)
	// Underpay repeatedly until the option switches off.
	deactivated := false
	for i := 0; i < 20 && !deactivated; i++ {
		// Clear any pending wait first.
		for {
			if w, _ := a.WaitRemaining("b"); w == 0 {
				break
			}
			a.Tick()
		}
		g, err := a.Request("b", "d")
		if errors.Is(err, ErrDisabled) {
			deactivated = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.Pay(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		deactivated = res.Deactivated
	}
	if !deactivated {
		t.Fatal("ex-post option never deactivated despite chronic underpayment")
	}
	if dis, _ := a.Disabled("b"); !dis {
		t.Fatal("Disabled not reporting deactivation")
	}
	// Requests are refused while disabled.
	for {
		if w, _ := a.WaitRemaining("b"); w == 0 {
			break
		}
		a.Tick()
	}
	if _, err := a.Request("b", "d"); !errors.Is(err, ErrDisabled) {
		t.Fatalf("request while disabled: %v", err)
	}
	// Winning ex-ante bids pay surcharges until the balance recovers.
	reactivated := false
	for i := 0; i < 64 && !reactivated; i++ {
		for {
			if w, _ := a.WaitRemaining("b"); w == 0 {
				break
			}
			a.Tick()
		}
		res, err := a.Bid("b", "d", 1000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Allocated {
			continue
		}
		if res.Surcharge < 0 {
			t.Fatalf("negative surcharge: %+v", res)
		}
		reactivated = res.Reactivated
		a.Tick()
	}
	if !reactivated {
		bal, _ := a.Balance("b")
		t.Fatalf("never reactivated; balance %v", bal)
	}
	if bal, _ := a.Balance("b"); bal < 0 {
		t.Fatalf("balance %v still negative after reactivation", bal)
	}
	if dis, _ := a.Disabled("b"); dis {
		t.Fatal("still disabled after reactivation")
	}
}

func TestLosingExAnteBidGetsWait(t *testing.T) {
	a := testArbiter(t)
	res, err := a.Bid("b", "d", 2) // above floor, below all candidates
	if err != nil {
		t.Fatal(err)
	}
	if res.Allocated {
		t.Fatal("sub-candidate bid won")
	}
	if res.WaitPeriods <= 0 {
		t.Fatal("no wait for losing bid")
	}
	if _, err := a.Bid("b", "d", 2); !errors.Is(err, ErrWaitActive) {
		t.Fatalf("bid during wait: %v", err)
	}
}

func TestHonestExPostMatchesExAnteRevenueShape(t *testing.T) {
	// Section 8.2's goal: with honest buyers the ex-post market raises
	// revenue comparable to ex-ante. Run both flows over the same
	// valuations and compare totals loosely.
	valuations := []float64{60, 75, 90, 55, 80, 70, 65, 85, 95, 50}

	exAnte := testArbiter(t)
	if err := exAnte.RegisterBuyer("flow"); err != nil {
		t.Fatal(err)
	}
	var revA market.Money
	for _, v := range valuations {
		res, err := exAnte.Bid("flow", "d", v)
		if err == nil && res.Allocated {
			revA += res.Charged
		}
		// Clear waits between buyers.
		for {
			if w, _ := exAnte.WaitRemaining("flow"); w == 0 {
				break
			}
			exAnte.Tick()
		}
	}

	exPost := testArbiter(t)
	if err := exPost.RegisterBuyer("flow"); err != nil {
		t.Fatal(err)
	}
	var revP market.Money
	for _, v := range valuations {
		g, err := exPost.Request("flow", "d")
		if err != nil {
			for {
				if w, _ := exPost.WaitRemaining("flow"); w == 0 {
					break
				}
				exPost.Tick()
			}
			continue
		}
		res, err := exPost.Pay(g, v) // honest: pay the learned valuation
		if err != nil {
			t.Fatal(err)
		}
		revP += res.Charged
		for {
			if w, _ := exPost.WaitRemaining("flow"); w == 0 {
				break
			}
			exPost.Tick()
		}
	}
	if revP <= 0 || revA <= 0 {
		t.Fatalf("revenues: ex-ante %v, ex-post %v", revA, revP)
	}
	// Honest ex-post should land within a factor ~3 of ex-ante here
	// (every request is granted, so ex-post can even collect more).
	ratio := revP.Float() / revA.Float()
	if ratio < 0.3 || ratio > 3.5 {
		t.Fatalf("ex-post/ex-ante revenue ratio %v out of range", ratio)
	}
}

func TestTickAndWaitClearing(t *testing.T) {
	a := testArbiter(t)
	if a.Tick() != 1 {
		t.Fatal("Tick")
	}
	if w, _ := a.WaitRemaining("b"); w != 0 {
		t.Fatalf("fresh buyer wait = %d", w)
	}
}
