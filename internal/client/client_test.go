package client

import (
	"context"
	"errors"
	"net"
	"net/http/httptest"
	"testing"

	"github.com/datamarket/shield/internal/apierr"
	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/httpapi"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/wire"
)

func testMarket(t *testing.T) *market.Market {
	t.Helper()
	m, err := market.New(market.Config{
		Engine: core.Config{
			Candidates:    auction.LinearGrid(10, 100, 10),
			EpochSize:     4,
			BidsPerPeriod: 8,
			MinBid:        1,
		},
		Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// transports returns one client per transport, each backed by its own
// identically-seeded market, so the parity test can drive the same
// operation sequence through both and compare everything.
func transports(t *testing.T) map[string]Client {
	t.Helper()
	out := make(map[string]Client)

	httpSrv := httptest.NewServer(httpapi.NewServer(testMarket(t)).Routes())
	t.Cleanup(httpSrv.Close)
	hc, err := Dial(httpSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	out["http"] = hc

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() { _ = wire.NewServer(testMarket(t)).Serve(l) }()
	wc, err := Dial("wire://" + l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wc.Close() })
	out["wire"] = wc

	return out
}

// TestTransportParity drives the identical lifecycle through both
// transports against identically-seeded markets and requires identical
// decisions, stats, balances, transactions, and error codes + messages.
func TestTransportParity(t *testing.T) {
	ctx := context.Background()
	type outcome struct {
		decisions []market.Decision
		errs      []string
		codes     []string
		stats     market.DatasetStats
		balance   market.Money
		txs       []market.Transaction
		period    int
		datasets  []market.DatasetID
	}
	results := make(map[string]outcome)

	for name, c := range transports(t) {
		var o outcome
		if err := c.Ping(ctx); err != nil {
			t.Fatalf("%s: ping: %v", name, err)
		}
		if err := c.RegisterSeller(ctx, "s"); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := c.UploadDataset(ctx, "s", "d1"); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := c.UploadDataset(ctx, "s", "d2"); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := c.ComposeDataset(ctx, "combo", "d1", "d2"); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := c.RegisterBuyer(ctx, "b"); err != nil {
			t.Fatalf("%s: %v", name, err)
		}

		record := func(d market.Decision, err error) {
			o.decisions = append(o.decisions, d)
			var api *apierr.APIError
			switch {
			case err == nil:
				o.errs = append(o.errs, "")
				o.codes = append(o.codes, "")
			case errors.As(err, &api):
				o.errs = append(o.errs, api.Message)
				o.codes = append(o.codes, api.Code)
			default:
				t.Fatalf("%s: error %v is not an APIError", name, err)
			}
		}
		record(c.SubmitBid(ctx, "b", "d1", 95))
		record(c.SubmitBid(ctx, "b", "d1", 95))    // same period or already acquired
		record(c.SubmitBid(ctx, "ghost", "d2", 5)) // unknown buyer
		record(c.SubmitBid(ctx, "b", "ghost", 5))  // unknown dataset
		record(c.SubmitBid(ctx, "b", "d2", -3))    // bad bid
		if _, err := c.Tick(ctx); err != nil {
			t.Fatalf("%s: tick: %v", name, err)
		}
		record(c.SubmitBid(ctx, "b", "combo", 2)) // low bid on derived

		batch, err := c.SubmitBids(ctx, []market.BidRequest{
			{Buyer: "b", Dataset: "d2", Amount: 60},
			{Buyer: "ghost", Dataset: "d2", Amount: 60},
		})
		if err != nil {
			t.Fatalf("%s: batch: %v", name, err)
		}
		for _, res := range batch {
			record(res.Decision, res.Err)
		}

		if o.period, err = c.Period(ctx); err != nil {
			t.Fatalf("%s: period: %v", name, err)
		}
		if o.datasets, err = c.Datasets(ctx); err != nil {
			t.Fatalf("%s: datasets: %v", name, err)
		}
		if o.stats, err = c.Stats(ctx, "d1"); err != nil {
			t.Fatalf("%s: stats: %v", name, err)
		}
		if o.balance, err = c.SellerBalance(ctx, "s"); err != nil {
			t.Fatalf("%s: balance: %v", name, err)
		}
		if o.txs, err = c.Transactions(ctx); err != nil {
			t.Fatalf("%s: transactions: %v", name, err)
		}
		results[name] = o
	}

	h, w := results["http"], results["wire"]
	if len(h.decisions) != len(w.decisions) {
		t.Fatalf("decision counts differ: http %d, wire %d", len(h.decisions), len(w.decisions))
	}
	for i := range h.decisions {
		if h.decisions[i] != w.decisions[i] {
			t.Errorf("decision %d: http %+v, wire %+v", i, h.decisions[i], w.decisions[i])
		}
		if h.errs[i] != w.errs[i] {
			t.Errorf("error %d: http %q, wire %q", i, h.errs[i], w.errs[i])
		}
		if h.codes[i] != w.codes[i] {
			t.Errorf("code %d: http %q, wire %q", i, h.codes[i], w.codes[i])
		}
	}
	if h.period != w.period {
		t.Errorf("period: http %d, wire %d", h.period, w.period)
	}
	if len(h.datasets) != len(w.datasets) {
		t.Errorf("datasets: http %v, wire %v", h.datasets, w.datasets)
	}
	if h.stats != w.stats {
		t.Errorf("stats: http %+v, wire %+v", h.stats, w.stats)
	}
	if h.balance != w.balance {
		t.Errorf("balance: http %v, wire %v", h.balance, w.balance)
	}
	if len(h.txs) != len(w.txs) {
		t.Fatalf("transactions: http %v, wire %v", h.txs, w.txs)
	}
	for i := range h.txs {
		if h.txs[i] != w.txs[i] {
			t.Errorf("tx %d: http %+v, wire %+v", i, h.txs[i], w.txs[i])
		}
	}
}

func TestDialSchemes(t *testing.T) {
	if _, err := Dial("wire://127.0.0.1:1", WithOperatorToken("x")); err == nil {
		t.Fatal("HTTP options accepted on wire target")
	}
	c, err := Dial("http://example.invalid")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.(*httpClient); !ok {
		t.Fatalf("http dial returned %T", c)
	}
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("bare addr with no listener dialed successfully")
	}
}
