package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync/atomic"

	"github.com/datamarket/shield/internal/apierr"
	"github.com/datamarket/shield/internal/auth"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/obs"
)

// httpDoer is the slice of *http.Client the transport uses.
type httpDoer interface {
	Do(req *http.Request) (*http.Response, error)
}

// httpClient is the HTTP/JSON transport: one typed method per v1
// endpoint, the versioned error envelope decoded back into
// *apierr.APIError.
type httpClient struct {
	base       string
	doer       httpDoer
	credential string
	nonce      atomic.Uint64
	token      string
}

// NewHTTP returns a Client over the HTTP/JSON API at base (e.g.
// "http://localhost:8080").
func NewHTTP(base string, opts ...Option) Client {
	var cfg options
	for _, o := range opts {
		o(&cfg)
	}
	return newHTTP(base, cfg)
}

func newHTTP(base string, cfg options) *httpClient {
	c := &httpClient{
		base:       base,
		doer:       cfg.httpClient,
		credential: cfg.credential,
		token:      cfg.token,
	}
	if c.doer == nil {
		c.doer = http.DefaultClient
	}
	// nonce stores the next value to use, pre-decremented by Add.
	c.nonce.Store(cfg.nonce - 1)
	return c
}

// do performs one JSON round-trip. A non-2xx response decodes the
// {"error":{code,message}} envelope into an *apierr.APIError; an
// envelope-less failure becomes a plain error carrying the status.
func (c *httpClient) do(ctx context.Context, method, path string, body, dst any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	// A context carrying an obs request ID propagates the trace the same
	// way the wire transport's v2 trace field does: the server executes
	// (and journals) under the caller's ID, continuing a sampled trace.
	if id := obs.RequestIDFrom(ctx); id != "" {
		req.Header.Set("X-Trace-ID", id)
		if obs.TraceFrom(ctx) != nil {
			req.Header.Set("X-Trace-Sampled", "1")
		}
	}
	resp, err := c.doer.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e struct {
			Error *apierr.APIError `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != nil && e.Error.Message != "" {
			return e.Error
		}
		return fmt.Errorf("client: HTTP %d from %s %s", resp.StatusCode, method, path)
	}
	if dst == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(dst)
}

// bidBody builds one bid's request body, signing it when the client
// holds a credential.
func (c *httpClient) bidBody(buyer market.BuyerID, dataset market.DatasetID, amount float64) (map[string]any, error) {
	if c.credential == "" {
		return map[string]any{"buyer": string(buyer), "dataset": string(dataset), "amount": amount}, nil
	}
	micros := int64(market.FromFloat(amount))
	signed, err := auth.Sign(auth.Credential{BuyerID: string(buyer), Secret: c.credential},
		string(dataset), micros, c.nonce.Add(1))
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"buyer": string(buyer), "dataset": string(dataset),
		"amount_micros": signed.AmountMicros,
		"nonce":         signed.Nonce,
		"mac":           signed.MAC,
	}, nil
}

func (c *httpClient) RegisterBuyer(ctx context.Context, id market.BuyerID) (string, error) {
	var resp map[string]string
	if err := c.do(ctx, "POST", "/v1/buyers", map[string]string{"id": string(id)}, &resp); err != nil {
		return "", err
	}
	return resp["credential"], nil
}

func (c *httpClient) RegisterSeller(ctx context.Context, id market.SellerID) error {
	return c.do(ctx, "POST", "/v1/sellers", map[string]string{"id": string(id)}, nil)
}

func (c *httpClient) UploadDataset(ctx context.Context, seller market.SellerID, id market.DatasetID) error {
	return c.do(ctx, "POST", "/v1/datasets",
		map[string]string{"seller": string(seller), "id": string(id)}, nil)
}

func (c *httpClient) ComposeDataset(ctx context.Context, id market.DatasetID, constituents ...market.DatasetID) error {
	parts := make([]string, len(constituents))
	for i, p := range constituents {
		parts[i] = string(p)
	}
	return c.do(ctx, "POST", "/v1/datasets/compose",
		map[string]any{"id": string(id), "constituents": parts}, nil)
}

func (c *httpClient) WithdrawDataset(ctx context.Context, seller market.SellerID, id market.DatasetID) error {
	return c.do(ctx, "DELETE",
		"/v1/datasets/"+url.PathEscape(string(id))+"?seller="+url.QueryEscape(string(seller)), nil, nil)
}

// httpDecision is the JSON decision shape shared by /v1/bids and batch
// entries.
type httpDecision struct {
	Allocated   bool             `json:"allocated"`
	PricePaid   float64          `json:"price_paid"`
	WaitPeriods int              `json:"wait_periods"`
	Error       *apierr.APIError `json:"error"`
}

func (d httpDecision) decision() market.Decision {
	return market.Decision{
		Allocated:   d.Allocated,
		PricePaid:   market.FromFloat(d.PricePaid),
		WaitPeriods: d.WaitPeriods,
	}
}

func (c *httpClient) SubmitBid(ctx context.Context, buyer market.BuyerID, dataset market.DatasetID, amount float64) (market.Decision, error) {
	body, err := c.bidBody(buyer, dataset, amount)
	if err != nil {
		return market.Decision{}, err
	}
	var resp httpDecision
	if err := c.do(ctx, "POST", "/v1/bids", body, &resp); err != nil {
		return market.Decision{}, err
	}
	return resp.decision(), nil
}

func (c *httpClient) SubmitBids(ctx context.Context, reqs []market.BidRequest) ([]market.BidResult, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	bids := make([]map[string]any, len(reqs))
	for i, r := range reqs {
		body, err := c.bidBody(r.Buyer, r.Dataset, r.Amount)
		if err != nil {
			return nil, err
		}
		bids[i] = body
	}
	var resp struct {
		Results []httpDecision `json:"results"`
	}
	if err := c.do(ctx, "POST", "/v1/bids/batch", map[string]any{"bids": bids}, &resp); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(reqs) {
		return nil, fmt.Errorf("client: batch returned %d results for %d bids", len(resp.Results), len(reqs))
	}
	out := make([]market.BidResult, len(reqs))
	for i, r := range resp.Results {
		if r.Error != nil {
			out[i].Err = r.Error
			continue
		}
		out[i].Decision = r.decision()
	}
	return out, nil
}

func (c *httpClient) Tick(ctx context.Context) (int, error) {
	var resp map[string]int
	if err := c.do(ctx, "POST", "/v1/tick", map[string]any{}, &resp); err != nil {
		return 0, err
	}
	return resp["period"], nil
}

func (c *httpClient) Period(ctx context.Context) (int, error) {
	var resp map[string]int
	if err := c.do(ctx, "GET", "/v1/period", nil, &resp); err != nil {
		return 0, err
	}
	return resp["period"], nil
}

func (c *httpClient) Datasets(ctx context.Context) ([]market.DatasetID, error) {
	var ids []string
	if err := c.do(ctx, "GET", "/v1/datasets", nil, &ids); err != nil {
		return nil, err
	}
	out := make([]market.DatasetID, len(ids))
	for i, id := range ids {
		out[i] = market.DatasetID(id)
	}
	return out, nil
}

func (c *httpClient) Stats(ctx context.Context, dataset market.DatasetID) (market.DatasetStats, error) {
	var st market.DatasetStats
	if err := c.do(ctx, "GET", "/v1/datasets/"+url.PathEscape(string(dataset))+"/stats", nil, &st); err != nil {
		return market.DatasetStats{}, err
	}
	return st, nil
}

func (c *httpClient) SellerBalance(ctx context.Context, id market.SellerID) (market.Money, error) {
	var resp map[string]float64
	if err := c.do(ctx, "GET", "/v1/sellers/"+url.PathEscape(string(id))+"/balance", nil, &resp); err != nil {
		return 0, err
	}
	return market.FromFloat(resp["balance"]), nil
}

func (c *httpClient) WaitRemaining(ctx context.Context, buyer market.BuyerID, dataset market.DatasetID) (int, error) {
	var resp map[string]int
	path := "/v1/buyers/" + url.PathEscape(string(buyer)) + "/wait?dataset=" + url.QueryEscape(string(dataset))
	if err := c.do(ctx, "GET", path, nil, &resp); err != nil {
		return 0, err
	}
	return resp["wait_periods"], nil
}

func (c *httpClient) Transactions(ctx context.Context) ([]market.Transaction, error) {
	var txs []market.Transaction
	if err := c.do(ctx, "GET", "/v1/transactions", nil, &txs); err != nil {
		return nil, err
	}
	return txs, nil
}

func (c *httpClient) Ping(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, "GET", c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.doer.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: health check returned HTTP %d", resp.StatusCode)
	}
	return nil
}

// Close is a no-op: the HTTP transport holds no persistent connection
// of its own.
func (c *httpClient) Close() error { return nil }
