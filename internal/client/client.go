// Package client is the unified typed client for a marketd server: one
// Client interface with two interchangeable transports — the HTTP/JSON
// API and the binary wire protocol (internal/wire). Programs written
// against Client switch transports with a dial string; the semantics,
// the typed results, and the error contract are identical either way.
//
// # Errors
//
// Every server-reported failure surfaces as an *apierr.APIError: Code
// is the machine-readable value from the closed shield.ErrCode* set and
// Error() returns the server-side error's exact message. Both
// transports produce the same codes and the same messages for the same
// operations; clients branch on the code, never the text. Transport
// failures (connection refused, timeouts) pass through unwrapped, with
// one refinement on the wire transport: once its stream fails — the
// server hung up mid-pipeline, a deadline expired, the frames
// desynchronized — every in-flight and subsequent call returns an error
// wrapping ErrConnClosed (and the causing context error, when there was
// one), so pools can detect a dead connection and redial.
//
// # Dialing
//
//	c, err := client.Dial("http://localhost:8080")  // HTTP/JSON
//	c, err := client.Dial("wire://localhost:9090")  // binary wire protocol
//	c, err := client.Dial("localhost:9090")         // bare host:port -> wire
package client

import (
	"context"
	"fmt"
	"strings"

	"github.com/datamarket/shield/internal/market"
)

// Client is the typed surface of a marketd server, transport-agnostic.
// Implementations are safe for concurrent use.
type Client interface {
	// RegisterBuyer adds a buyer account. When the server requires
	// signed bids it returns the buyer's signing credential (shown
	// exactly once); otherwise credential is empty. The wire transport
	// never returns a credential (wire deployments run without bid
	// auth).
	RegisterBuyer(ctx context.Context, id market.BuyerID) (credential string, err error)
	// RegisterSeller adds a seller account.
	RegisterSeller(ctx context.Context, id market.SellerID) error
	// UploadDataset registers a base dataset shared by seller.
	UploadDataset(ctx context.Context, seller market.SellerID, id market.DatasetID) error
	// ComposeDataset registers a derived dataset assembled from
	// existing datasets.
	ComposeDataset(ctx context.Context, id market.DatasetID, constituents ...market.DatasetID) error
	// WithdrawDataset removes a base dataset no derived product uses.
	WithdrawDataset(ctx context.Context, seller market.SellerID, id market.DatasetID) error

	// SubmitBid places one bid and returns the market's decision.
	SubmitBid(ctx context.Context, buyer market.BuyerID, dataset market.DatasetID, amount float64) (market.Decision, error)
	// SubmitBids places a batch in one request and returns per-entry
	// results in request order; one failed bid never aborts the rest.
	SubmitBids(ctx context.Context, reqs []market.BidRequest) ([]market.BidResult, error)
	// Tick advances the market period and returns the new period.
	Tick(ctx context.Context) (int, error)

	// Period returns the current market period.
	Period(ctx context.Context) (int, error)
	// Datasets returns the ids of all priced datasets.
	Datasets(ctx context.Context) ([]market.DatasetID, error)
	// Stats returns one dataset's diagnostic snapshot. Operator-facing:
	// under HTTP auth it requires the operator token.
	Stats(ctx context.Context, dataset market.DatasetID) (market.DatasetStats, error)
	// SellerBalance returns a seller's accumulated revenue.
	SellerBalance(ctx context.Context, id market.SellerID) (market.Money, error)
	// WaitRemaining returns the periods left of a Time-Shield wait for
	// buyer on dataset (zero when the buyer may bid).
	WaitRemaining(ctx context.Context, buyer market.BuyerID, dataset market.DatasetID) (int, error)
	// Transactions returns the completed-sale log in sequence order.
	Transactions(ctx context.Context) ([]market.Transaction, error)

	// Ping verifies the server is reachable and serving.
	Ping(ctx context.Context) error
	// Close releases the transport's resources. The client is unusable
	// afterwards.
	Close() error
}

// Dial connects to target and returns a client on the transport its
// scheme selects: "http://" or "https://" for the JSON API, "wire://"
// or a bare "host:port" for the binary wire protocol. Options apply to
// the HTTP transport; dialing a wire target with HTTP-only options set
// is an error.
func Dial(target string, opts ...Option) (Client, error) {
	var cfg options
	for _, o := range opts {
		o(&cfg)
	}
	if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
		return newHTTP(target, cfg), nil
	}
	if addr, ok := strings.CutPrefix(target, "wire://"); ok {
		target = addr
	}
	if cfg.credential != "" || cfg.token != "" || cfg.httpClient != nil {
		return nil, fmt.Errorf("client: HTTP options are not supported on the wire transport (target %q)", target)
	}
	return DialWire(target)
}

// options collects the HTTP transport's dial options.
type options struct {
	credential string
	nonce      uint64
	token      string
	httpClient httpDoer
}

// Option configures the HTTP transport at Dial time.
type Option func(*options)

// WithCredential makes the HTTP transport sign every bid with the hex
// secret, starting at nonce (nonces must strictly increase per buyer;
// the client increments from there). Servers running without bid auth
// ignore signatures.
func WithCredential(secret string, nonce uint64) Option {
	return func(o *options) { o.credential = secret; o.nonce = nonce }
}

// WithOperatorToken sends token as a bearer token on every request,
// unlocking the operator endpoints (stats, metrics) under auth.
func WithOperatorToken(token string) Option {
	return func(o *options) { o.token = token }
}

// WithHTTPDoer swaps the underlying HTTP client (tests, custom
// transports). The default is http.DefaultClient.
func WithHTTPDoer(d httpDoer) Option {
	return func(o *options) { o.httpClient = d }
}
