package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/datamarket/shield/internal/obs"
)

// TestHTTPClientPropagatesTraceHeaders pins the HTTP transport's half
// of cross-process tracing: a context carrying an obs request ID sends
// X-Trace-ID (plus X-Trace-Sampled when a trace rides the context),
// and a bare context sends neither header.
func TestHTTPClientPropagatesTraceHeaders(t *testing.T) {
	type seen struct{ id, sampled string }
	headers := make(chan seen, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		headers <- seen{r.Header.Get("X-Trace-ID"), r.Header.Get("X-Trace-Sampled")}
		w.Write([]byte(`{"period":0}`))
	}))
	defer srv.Close()
	c, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}

	tel := obs.NewTelemetry()
	id := tel.Tracer.NewRequestID()
	tr := tel.Tracer.Begin(id, "client")
	ctx := obs.WithTrace(obs.WithRequestID(context.Background(), id), tr)
	if _, err := c.Period(ctx); err != nil {
		t.Fatal(err)
	}
	if got := <-headers; got.id != id || got.sampled != "1" {
		t.Fatalf("sampled request sent headers %+v, want id=%s sampled=1", got, id)
	}

	// Request ID without a trace: propagate the ID, not the sampled bit.
	ctx = obs.WithRequestID(context.Background(), "req-x")
	if _, err := c.Period(ctx); err != nil {
		t.Fatal(err)
	}
	if got := <-headers; got.id != "req-x" || got.sampled != "" {
		t.Fatalf("unsampled request sent headers %+v, want id=req-x and no sampled bit", got)
	}

	if _, err := c.Period(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := (<-headers); got.id != "" || got.sampled != "" {
		t.Fatalf("bare context sent trace headers %+v", got)
	}
}
