package client

import (
	"context"

	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/wire"
)

// ErrConnClosed is the wire transport's dead-connection sentinel: every
// call on a wire client whose stream has failed returns an error
// wrapping it. Re-exported so client users never import the transport
// package to branch on it.
var ErrConnClosed = wire.ErrConnClosed

// wireClient is the binary-protocol transport: a thin adapter over
// wire.Conn that satisfies Client. The conn serializes round trips;
// open several clients for connection-level parallelism.
type wireClient struct {
	conn *wire.Conn
}

// DialWire returns a Client speaking the wire protocol to addr
// ("host:port").
func DialWire(addr string) (Client, error) {
	conn, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &wireClient{conn: conn}, nil
}

// NewWire wraps an already-dialed wire connection as a Client.
func NewWire(conn *wire.Conn) Client {
	return &wireClient{conn: conn}
}

// RegisterBuyer never returns a credential: the wire protocol serves
// deployments without bid auth (marketd refuses -auth with -wire-addr).
func (c *wireClient) RegisterBuyer(ctx context.Context, id market.BuyerID) (string, error) {
	return "", c.conn.RegisterBuyer(ctx, id)
}

func (c *wireClient) RegisterSeller(ctx context.Context, id market.SellerID) error {
	return c.conn.RegisterSeller(ctx, id)
}

func (c *wireClient) UploadDataset(ctx context.Context, seller market.SellerID, id market.DatasetID) error {
	return c.conn.UploadDataset(ctx, seller, id)
}

func (c *wireClient) ComposeDataset(ctx context.Context, id market.DatasetID, constituents ...market.DatasetID) error {
	return c.conn.ComposeDataset(ctx, id, constituents...)
}

func (c *wireClient) WithdrawDataset(ctx context.Context, seller market.SellerID, id market.DatasetID) error {
	return c.conn.WithdrawDataset(ctx, seller, id)
}

func (c *wireClient) SubmitBid(ctx context.Context, buyer market.BuyerID, dataset market.DatasetID, amount float64) (market.Decision, error) {
	return c.conn.SubmitBid(ctx, buyer, dataset, amount)
}

func (c *wireClient) SubmitBids(ctx context.Context, reqs []market.BidRequest) ([]market.BidResult, error) {
	return c.conn.SubmitBids(ctx, reqs)
}

func (c *wireClient) Tick(ctx context.Context) (int, error) {
	return c.conn.Tick(ctx)
}

func (c *wireClient) Period(ctx context.Context) (int, error) {
	return c.conn.Period(ctx)
}

func (c *wireClient) Datasets(ctx context.Context) ([]market.DatasetID, error) {
	return c.conn.Datasets(ctx)
}

func (c *wireClient) Stats(ctx context.Context, dataset market.DatasetID) (market.DatasetStats, error) {
	return c.conn.Stats(ctx, dataset)
}

func (c *wireClient) SellerBalance(ctx context.Context, id market.SellerID) (market.Money, error) {
	return c.conn.SellerBalance(ctx, id)
}

func (c *wireClient) WaitRemaining(ctx context.Context, buyer market.BuyerID, dataset market.DatasetID) (int, error) {
	return c.conn.WaitRemaining(ctx, buyer, dataset)
}

func (c *wireClient) Transactions(ctx context.Context) ([]market.Transaction, error) {
	return c.conn.Transactions(ctx)
}

func (c *wireClient) Ping(ctx context.Context) error {
	return c.conn.Ping(ctx)
}

func (c *wireClient) Close() error { return c.conn.Close() }
