package stats

import (
	"errors"
	"math"
	"sort"
)

// Alternative selects the alternative hypothesis of a test.
type Alternative int

const (
	// TwoSided tests for any difference in location.
	TwoSided Alternative = iota
	// Less tests whether the first sample (or the sample median) is below
	// the second sample (or the hypothesized median).
	Less
	// Greater tests whether the first sample is above the second.
	Greater
)

// String implements fmt.Stringer.
func (a Alternative) String() string {
	switch a {
	case TwoSided:
		return "two-sided"
	case Less:
		return "less"
	case Greater:
		return "greater"
	default:
		return "unknown"
	}
}

// TestResult is the outcome of a hypothesis test.
type TestResult struct {
	// Statistic is the test statistic (W+, the sum of positive ranks, for
	// the Wilcoxon tests; K² for D'Agostino-Pearson; W' for
	// Shapiro-Francia).
	Statistic float64
	// Z is the standardized statistic when the p-value comes from a normal
	// approximation, zero otherwise.
	Z float64
	// P is the p-value under the selected alternative.
	P float64
	// N is the effective sample size after discarding zero differences.
	N int
}

// ErrAllZero reports that every paired difference was zero, so the Wilcoxon
// statistic is undefined.
var ErrAllZero = errors.New("stats: all differences are zero")

// ErrTooFew reports an insufficient sample for the requested test.
var ErrTooFew = errors.New("stats: sample too small")

// WilcoxonSignedRank performs the paired Wilcoxon signed-rank test on xs
// and ys, the test the paper uses for its within-subjects comparisons.
// Zero differences are discarded (Wilcoxon's original treatment, matching
// scipy's default "wilcox" mode) and tied absolute differences receive
// average ranks with the usual variance correction. The p-value uses the
// normal approximation with continuity correction, accurate for the
// paper's n = 50 panels.
func WilcoxonSignedRank(xs, ys []float64, alt Alternative) (TestResult, error) {
	if len(xs) != len(ys) {
		return TestResult{}, errors.New("stats: paired samples differ in length")
	}
	diffs := make([]float64, 0, len(xs))
	for i := range xs {
		if d := xs[i] - ys[i]; d != 0 {
			diffs = append(diffs, d)
		}
	}
	return wilcoxonFromDiffs(diffs, alt)
}

// WilcoxonOneSample tests whether the median of xs equals m (the 1-sample
// Wilcoxon test used for RQ1): it ranks the non-zero deviations xs[i]-m.
func WilcoxonOneSample(xs []float64, m float64, alt Alternative) (TestResult, error) {
	diffs := make([]float64, 0, len(xs))
	for _, x := range xs {
		if d := x - m; d != 0 {
			diffs = append(diffs, d)
		}
	}
	return wilcoxonFromDiffs(diffs, alt)
}

func wilcoxonFromDiffs(diffs []float64, alt Alternative) (TestResult, error) {
	n := len(diffs)
	if n == 0 {
		return TestResult{}, ErrAllZero
	}
	if n < 5 {
		return TestResult{}, ErrTooFew
	}

	type absDiff struct {
		abs float64
		pos bool
	}
	ad := make([]absDiff, n)
	for i, d := range diffs {
		ad[i] = absDiff{math.Abs(d), d > 0}
	}
	sort.Slice(ad, func(i, j int) bool { return ad[i].abs < ad[j].abs })

	// Average ranks over ties; accumulate the tie correction term.
	ranks := make([]float64, n)
	var tieCorrection float64
	for i := 0; i < n; {
		j := i
		for j < n && ad[j].abs == ad[i].abs {
			j++
		}
		avg := float64(i+j+1) / 2 // ranks are 1-based: positions i+1..j
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		t := float64(j - i)
		if t > 1 {
			tieCorrection += t*t*t - t
		}
		i = j
	}

	var wPlus float64
	for i, r := range ranks {
		if ad[i].pos {
			wPlus += r
		}
	}

	nf := float64(n)
	mean := nf * (nf + 1) / 4
	variance := nf*(nf+1)*(2*nf+1)/24 - tieCorrection/48
	if variance <= 0 {
		return TestResult{}, ErrAllZero
	}
	sd := math.Sqrt(variance)

	// Continuity correction toward the mean.
	z := func(corr float64) float64 { return (wPlus - mean + corr) / sd }
	res := TestResult{Statistic: wPlus, N: n}
	switch alt {
	case TwoSided:
		var zz float64
		if wPlus > mean {
			zz = z(-0.5)
		} else {
			zz = z(+0.5)
		}
		res.Z = zz
		res.P = math.Min(1, 2*NormalSF(math.Abs(zz)))
	case Greater:
		res.Z = z(-0.5)
		res.P = NormalSF(res.Z)
	case Less:
		res.Z = z(+0.5)
		res.P = NormalCDF(res.Z)
	}
	return res, nil
}
