package stats

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/datamarket/shield/internal/rng"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEqual(m, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", m)
	}
	// Sample variance with n-1: sum of squared devs = 32, / 7.
	if v := Variance(xs); !almostEqual(v, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", v, 32.0/7)
	}
	if s := StdDev(xs); !almostEqual(s, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %v", s)
	}
}

func TestEmptyInputs(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) not NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of singleton not NaN")
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(nil) not NaN")
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("Min/Max(nil) not NaN")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 9 {
		t.Errorf("Min/Max/Sum = %v/%v/%v", Min(xs), Max(xs), Sum(xs))
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75}, {75, 3.25},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("Percentile mutated input: %v", xs)
	}
}

func TestMedianOddEven(t *testing.T) {
	if m := Median([]float64{9, 1, 5}); m != 5 {
		t.Errorf("odd median = %v", m)
	}
	if m := Median([]float64{1, 9}); m != 5 {
		t.Errorf("even median = %v", m)
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i) // 0..100
	}
	s := Summarize(xs)
	if s.N != 101 || s.Median != 50 || s.P25 != 25 || s.P75 != 75 || s.P1 != 1 || s.P99 != 99 {
		t.Errorf("Summary = %+v", s)
	}
	if !almostEqual(s.Mean, 50, 1e-9) {
		t.Errorf("Summary mean = %v", s.Mean)
	}
}

func TestPercentileBounds(t *testing.T) {
	r := rng.New(1)
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		n := 1 + rr.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Uniform(-100, 100)
		}
		p := r.Uniform(0, 100)
		v := Percentile(xs, p)
		return v >= Min(xs)-1e-9 && v <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPercentileMonotoneInP(t *testing.T) {
	r := rng.New(77)
	xs := make([]float64, 40)
	for i := range xs {
		xs[i] = r.Uniform(0, 1000)
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 100; p += 2.5 {
		v := Percentile(xs, p)
		if v < prev-1e-9 {
			t.Fatalf("percentile not monotone at p=%v: %v < %v", p, v, prev)
		}
		prev = v
	}
}

func TestSkewnessSymmetricNearZero(t *testing.T) {
	r := rng.New(5)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = r.Normal(0, 1)
	}
	if sk := Skewness(xs); math.Abs(sk) > 0.05 {
		t.Errorf("normal skewness = %v, want ~0", sk)
	}
	if ku := ExcessKurtosis(xs); math.Abs(ku) > 0.1 {
		t.Errorf("normal excess kurtosis = %v, want ~0", ku)
	}
}

func TestSkewnessSign(t *testing.T) {
	rightSkewed := []float64{1, 1, 1, 2, 2, 3, 10, 20}
	if sk := Skewness(rightSkewed); sk <= 0 {
		t.Errorf("right-skewed data has skewness %v", sk)
	}
	leftSkewed := []float64{-20, -10, -3, -2, -2, -1, -1, -1}
	if sk := Skewness(leftSkewed); sk >= 0 {
		t.Errorf("left-skewed data has skewness %v", sk)
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4, 8})
	want := []float64{0.25, 0.5, 1}
	for i := range want {
		if !almostEqual(out[i], want[i], 1e-12) {
			t.Errorf("Normalize[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	// Non-positive max: copy through.
	out = Normalize([]float64{-1, 0})
	if out[0] != -1 || out[1] != 0 {
		t.Errorf("Normalize with non-positive max = %v", out)
	}
}

func TestNormalizeBy(t *testing.T) {
	out := NormalizeBy([]float64{3, 6}, 6)
	if !almostEqual(out[0], 0.5, 1e-12) || !almostEqual(out[1], 1, 1e-12) {
		t.Errorf("NormalizeBy = %v", out)
	}
	out = NormalizeBy([]float64{3, 6}, 0)
	if out[0] != 3 || out[1] != 6 {
		t.Errorf("NormalizeBy zero denom = %v", out)
	}
}

func TestPercentilesSorted(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	ps := PercentilesSorted(xs, 0, 50, 100)
	if ps[0] != 1 || ps[1] != 2.5 || ps[2] != 4 {
		t.Errorf("PercentilesSorted = %v", ps)
	}
	// Input is sorted afterwards by contract.
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			t.Errorf("input not sorted: %v", xs)
		}
	}
}
