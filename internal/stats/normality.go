package stats

import (
	"math"
	"sort"
)

// DAgostinoPearson performs the D'Agostino-Pearson K² omnibus normality
// test, combining standardized skewness and kurtosis into a chi-squared
// statistic with two degrees of freedom. The paper uses it (with Shapiro's
// test) to reject normality of the user-study bids before choosing
// nonparametric tests. Requires n >= 20 for the kurtosis approximation.
func DAgostinoPearson(xs []float64) (TestResult, error) {
	n := len(xs)
	if n < 20 {
		return TestResult{}, ErrTooFew
	}
	zs, okS := skewnessZ(xs)
	zk, okK := kurtosisZ(xs)
	if !okS || !okK {
		return TestResult{}, ErrAllZero
	}
	k2 := zs*zs + zk*zk
	return TestResult{Statistic: k2, P: ChiSquareSF(k2, 2), N: n}, nil
}

// skewnessZ is D'Agostino's skewness test transformation to an
// approximately standard normal statistic.
func skewnessZ(xs []float64) (float64, bool) {
	n := float64(len(xs))
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0, false
	}
	g1 := m3 / math.Pow(m2, 1.5)
	y := g1 * math.Sqrt((n+1)*(n+3)/(6*(n-2)))
	beta2 := 3 * (n*n + 27*n - 70) * (n + 1) * (n + 3) /
		((n - 2) * (n + 5) * (n + 7) * (n + 9))
	w2 := -1 + math.Sqrt(2*(beta2-1))
	delta := 1 / math.Sqrt(math.Log(math.Sqrt(w2)))
	alpha := math.Sqrt(2 / (w2 - 1))
	if y == 0 {
		return 0, true
	}
	return delta * math.Log(y/alpha+math.Sqrt((y/alpha)*(y/alpha)+1)), true
}

// kurtosisZ is the Anscombe-Glynn kurtosis test transformation.
func kurtosisZ(xs []float64) (float64, bool) {
	n := float64(len(xs))
	m := Mean(xs)
	var m2, m4 float64
	for _, x := range xs {
		d := x - m
		d2 := d * d
		m2 += d2
		m4 += d2 * d2
	}
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return 0, false
	}
	b2 := m4 / (m2 * m2)
	eb2 := 3 * (n - 1) / (n + 1)
	vb2 := 24 * n * (n - 2) * (n - 3) / ((n + 1) * (n + 1) * (n + 3) * (n + 5))
	x := (b2 - eb2) / math.Sqrt(vb2)
	sqrtBeta1 := 6 * (n*n - 5*n + 2) / ((n + 7) * (n + 9)) *
		math.Sqrt(6*(n+3)*(n+5)/(n*(n-2)*(n-3)))
	a := 6 + 8/sqrtBeta1*(2/sqrtBeta1+math.Sqrt(1+4/(sqrtBeta1*sqrtBeta1)))
	term := (1 - 2/a) / (1 + x*math.Sqrt(2/(a-4)))
	if term <= 0 {
		// Extreme kurtosis; the cube root of a non-positive value would be
		// complex, so clamp to a large z in the appropriate direction.
		return math.Copysign(12, x), true
	}
	z := (1 - 2/(9*a) - math.Cbrt(term)) / math.Sqrt(2/(9*a))
	return z, true
}

// ShapiroFrancia performs the Shapiro-Francia W' normality test, the
// standard large-n surrogate for Shapiro-Wilk (the two agree closely for
// n >= 30; the paper's panels have n = 50). The p-value uses the Royston
// (1993) log-normal approximation, valid for 5 <= n <= 5000.
func ShapiroFrancia(xs []float64) (TestResult, error) {
	n := len(xs)
	if n < 5 {
		return TestResult{}, ErrTooFew
	}
	if n > 5000 {
		return TestResult{}, ErrTooFew
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	if sorted[0] == sorted[n-1] {
		return TestResult{}, ErrAllZero
	}

	// Blom scores: expected normal order statistics m_i.
	m := make([]float64, n)
	for i := 0; i < n; i++ {
		m[i] = NormalQuantile((float64(i+1) - 0.375) / (float64(n) + 0.25))
	}

	// W' = corr(x, m)^2.
	mx := Mean(sorted)
	mm := Mean(m)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx := sorted[i] - mx
		dy := m[i] - mm
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	w := sxy * sxy / (sxx * syy)

	// Royston's normalizing transformation of ln(1 - W').
	nu := math.Log(float64(n))
	u1 := math.Log(nu) - nu
	u2 := math.Log(nu) + 2/nu
	mu := -1.2725 + 1.0521*u1
	sigma := 1.0308 - 0.26758*u2
	if sigma <= 0 {
		sigma = 1e-6
	}
	z := (math.Log(1-w) - mu) / sigma
	return TestResult{Statistic: w, Z: z, P: NormalSF(z), N: n}, nil
}
