package stats

import (
	"errors"
	"math"
	"testing"

	"github.com/datamarket/shield/internal/rng"
)

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1.959963985, 0.975},
		{-1.959963985, 0.025},
		{1, 0.841344746},
		{-2.326347874, 0.01},
	}
	for _, c := range cases {
		if got := NormalCDF(c.z); !almostEqual(got, c.want, 1e-6) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.z, got, c.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.025, 0.1, 0.3, 0.5, 0.7, 0.9, 0.975, 0.99, 0.999} {
		z := NormalQuantile(p)
		if got := NormalCDF(z); !almostEqual(got, p, 1e-9) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("quantile at 0/1 not infinite")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) {
		t.Error("quantile outside [0,1] not NaN")
	}
}

func TestChiSquareSFKnownValues(t *testing.T) {
	// P(X > 5.991) = 0.05 for k=2; P(X > 9.210) = 0.01 for k=2.
	if got := ChiSquareSF(5.991464547, 2); !almostEqual(got, 0.05, 1e-6) {
		t.Errorf("ChiSquareSF(5.99, 2) = %v", got)
	}
	if got := ChiSquareSF(9.210340372, 2); !almostEqual(got, 0.01, 1e-6) {
		t.Errorf("ChiSquareSF(9.21, 2) = %v", got)
	}
	if got := ChiSquareSF(0, 2); got != 1 {
		t.Errorf("ChiSquareSF(0, 2) = %v", got)
	}
	// k=2 is exponential(1/2): P(X > x) = exp(-x/2).
	for _, x := range []float64{0.5, 1, 3, 10} {
		if got, want := ChiSquareSF(x, 2), math.Exp(-x/2); !almostEqual(got, want, 1e-9) {
			t.Errorf("ChiSquareSF(%v, 2) = %v, want %v", x, got, want)
		}
	}
}

func TestWilcoxonSignedRankAgainstReference(t *testing.T) {
	// Hand-checked example. Diffs after dropping the zero pair:
	// 15,-7,5,20,-9,17,-12,5,-10 (n=9); W+ = 27, W- = 18;
	// mean = 22.5, var = 71.125 (one tie pair), sd = 8.43365;
	// z = (27-22.5-0.5)/sd = 0.47429, two-sided p = 0.63529 with the
	// continuity correction (scipy without correction reports 0.5936).
	x := []float64{125, 115, 130, 140, 140, 115, 140, 125, 140, 135}
	y := []float64{110, 122, 125, 120, 140, 124, 123, 137, 135, 145}
	res, err := WilcoxonSignedRank(x, y, TwoSided)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 9 {
		t.Errorf("N = %d, want 9", res.N)
	}
	if res.Statistic != 27 {
		t.Errorf("W+ = %v, want 27", res.Statistic)
	}
	if !almostEqual(res.P, 0.63529, 1e-4) {
		t.Errorf("p = %v, want ~0.63529", res.P)
	}
	if !almostEqual(res.Z, 0.47429, 1e-4) {
		t.Errorf("z = %v, want ~0.47429", res.Z)
	}
}

func TestWilcoxonDetectsShift(t *testing.T) {
	r := rng.New(101)
	n := 50
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = r.Normal(0, 1)
		y[i] = x[i] + 1.0 + r.Normal(0, 0.2) // strong positive shift of y
	}
	res, err := WilcoxonSignedRank(x, y, TwoSided)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-4 {
		t.Errorf("clear shift not detected: p = %v", res.P)
	}
	// One-sided: x < y should be significant, x > y should not.
	lt, _ := WilcoxonSignedRank(x, y, Less)
	gt, _ := WilcoxonSignedRank(x, y, Greater)
	if lt.P > 1e-4 {
		t.Errorf("Less p = %v, want tiny", lt.P)
	}
	if gt.P < 0.99 {
		t.Errorf("Greater p = %v, want ~1", gt.P)
	}
}

func TestWilcoxonNoShiftLargeP(t *testing.T) {
	r := rng.New(303)
	n := 60
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = r.Normal(10, 2)
		y[i] = x[i] + r.Normal(0, 1) // symmetric differences
	}
	res, err := WilcoxonSignedRank(x, y, TwoSided)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.01 {
		t.Errorf("no-shift data rejected: p = %v", res.P)
	}
}

func TestWilcoxonOneSample(t *testing.T) {
	r := rng.New(55)
	n := 50
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Normal(100, 10)
	}
	// True median: p should be large.
	res, err := WilcoxonOneSample(xs, 100, TwoSided)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.05 {
		t.Errorf("true-median test rejected: p = %v", res.P)
	}
	// Far-off median: p should be tiny.
	res, err = WilcoxonOneSample(xs, 120, TwoSided)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Errorf("off-median test not rejected: p = %v", res.P)
	}
}

func TestWilcoxonErrors(t *testing.T) {
	if _, err := WilcoxonSignedRank([]float64{1, 2}, []float64{1}, TwoSided); err == nil {
		t.Error("length mismatch not reported")
	}
	same := []float64{1, 2, 3, 4, 5, 6}
	if _, err := WilcoxonSignedRank(same, same, TwoSided); !errors.Is(err, ErrAllZero) {
		t.Errorf("all-zero differences: err = %v", err)
	}
	if _, err := WilcoxonOneSample([]float64{1, 2, 3}, 0, TwoSided); !errors.Is(err, ErrTooFew) {
		t.Errorf("tiny sample: err = %v", err)
	}
}

func TestWilcoxonHandlesTies(t *testing.T) {
	// Many tied absolute differences must not produce NaN or panic.
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y := []float64{2, 3, 4, 5, 4, 5, 6, 7} // diffs: -1 x4, +1 x4
	res, err := WilcoxonSignedRank(x, y, TwoSided)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.P) || res.P < 0.5 {
		t.Errorf("balanced tied diffs: p = %v, want large", res.P)
	}
}

func TestDAgostinoPearsonNormalVsUniform(t *testing.T) {
	r := rng.New(909)
	n := 500
	normal := make([]float64, n)
	uniform := make([]float64, n)
	for i := 0; i < n; i++ {
		normal[i] = r.Normal(0, 1)
		uniform[i] = r.Float64()
	}
	resN, err := DAgostinoPearson(normal)
	if err != nil {
		t.Fatal(err)
	}
	if resN.P < 0.01 {
		t.Errorf("normal sample rejected by K²: p = %v", resN.P)
	}
	resU, err := DAgostinoPearson(uniform)
	if err != nil {
		t.Fatal(err)
	}
	if resU.P > 0.01 {
		t.Errorf("uniform sample not rejected by K²: p = %v", resU.P)
	}
}

func TestDAgostinoPearsonSmallSample(t *testing.T) {
	if _, err := DAgostinoPearson(make([]float64, 10)); !errors.Is(err, ErrTooFew) {
		t.Errorf("err = %v, want ErrTooFew", err)
	}
}

func TestShapiroFranciaNormalVsBimodal(t *testing.T) {
	r := rng.New(111)
	n := 50
	normal := make([]float64, n)
	bimodal := make([]float64, n)
	for i := 0; i < n; i++ {
		normal[i] = r.Normal(0, 1)
		if i%2 == 0 {
			bimodal[i] = r.Normal(-4, 0.3)
		} else {
			bimodal[i] = r.Normal(4, 0.3)
		}
	}
	resN, err := ShapiroFrancia(normal)
	if err != nil {
		t.Fatal(err)
	}
	if resN.P < 0.01 {
		t.Errorf("normal sample rejected by Shapiro-Francia: p = %v", resN.P)
	}
	if resN.Statistic < 0.9 || resN.Statistic > 1 {
		t.Errorf("W' = %v for normal data", resN.Statistic)
	}
	resB, err := ShapiroFrancia(bimodal)
	if err != nil {
		t.Fatal(err)
	}
	if resB.P > 0.01 {
		t.Errorf("bimodal sample not rejected: p = %v", resB.P)
	}
}

func TestShapiroFranciaDegenerate(t *testing.T) {
	if _, err := ShapiroFrancia([]float64{5, 5, 5, 5, 5, 5}); !errors.Is(err, ErrAllZero) {
		t.Errorf("constant sample: err = %v", err)
	}
	if _, err := ShapiroFrancia([]float64{1, 2}); !errors.Is(err, ErrTooFew) {
		t.Errorf("tiny sample: err = %v", err)
	}
}

func TestHistogramBinning(t *testing.T) {
	xs := []float64{0, 0.5, 1, 4.9, 5, 9.99, 10, -3, 42}
	h := NewHistogram(xs, 0, 10, 10)
	if h.Total != len(xs) {
		t.Errorf("Total = %d", h.Total)
	}
	// -3 clamps to bin 0; 10 and 42 clamp into last bin.
	if h.Counts[0] != 4 { // 0, 0.5, -3 -> bin0? 0 and 0.5 and -3 => 3... plus 1? bin0 covers [0,1): 0, 0.5, -3 = 3
		// recompute: bins width 1: bin0:[0,1) holds 0, 0.5, -3(clamped) = 3; bin1 holds 1; bin4 holds 4.9; bin5 holds 5; bin9 holds 9.99, 10(clamped), 42(clamped) = 3
		t.Logf("counts = %v", h.Counts)
	}
	if h.Counts[0] != 3 || h.Counts[1] != 1 || h.Counts[4] != 1 || h.Counts[5] != 1 || h.Counts[9] != 3 {
		t.Errorf("counts = %v", h.Counts)
	}
	fr := h.Fractions()
	var sum float64
	for _, f := range fr {
		sum += f
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Errorf("fractions sum to %v", sum)
	}
	if got := h.BinCenter(0); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("BinCenter(0) = %v", got)
	}
}

func TestHistogramMode(t *testing.T) {
	xs := []float64{1, 1.1, 1.2, 5, 9}
	h := NewHistogram(xs, 0, 10, 10)
	if m := h.Mode(); !almostEqual(m, 1.5, 1e-12) {
		t.Errorf("Mode = %v, want 1.5", m)
	}
	empty := NewHistogram(nil, 0, 1, 4)
	if !math.IsNaN(empty.Mode()) {
		t.Error("empty histogram Mode not NaN")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(nil, 0, 1, 0) },
		func() { NewHistogram(nil, 1, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAlternativeString(t *testing.T) {
	if TwoSided.String() != "two-sided" || Less.String() != "less" || Greater.String() != "greater" {
		t.Error("Alternative String broken")
	}
	if Alternative(99).String() != "unknown" {
		t.Error("unknown Alternative String broken")
	}
}
