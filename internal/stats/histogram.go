package stats

import "math"

// Histogram is a fixed-width binning of a sample, used to present the bid
// distributions of Figures 2a/2b.
type Histogram struct {
	// Lo is the left edge of the first bin; Width the bin width.
	Lo, Width float64
	// Counts[i] counts observations in [Lo + i*Width, Lo + (i+1)*Width),
	// with the final bin closed on the right.
	Counts []int
	// Total is the number of binned observations.
	Total int
}

// NewHistogram bins xs into bins equal-width buckets spanning [lo, hi].
// Observations outside [lo, hi] are clamped into the edge bins so that a
// histogram over a known support (e.g. the paper's bid range [0, 2v])
// never loses mass. It panics if bins <= 0 or hi <= lo.
func NewHistogram(xs []float64, lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: NewHistogram with bins <= 0")
	}
	if hi <= lo {
		panic("stats: NewHistogram with hi <= lo")
	}
	h := &Histogram{Lo: lo, Width: (hi - lo) / float64(bins), Counts: make([]int, bins)}
	for _, x := range xs {
		i := int(math.Floor((x - lo) / h.Width))
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
		h.Total++
	}
	return h
}

// Fractions returns each bin's share of the total mass (zeros when empty).
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	if h.Total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.Total)
	}
	return out
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.Width
}

// Mode returns the center of the most populated bin (the first such bin on
// ties), or NaN when the histogram is empty.
func (h *Histogram) Mode() float64 {
	if h.Total == 0 {
		return math.NaN()
	}
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.BinCenter(best)
}
