// Package stats implements the statistical machinery the paper's evaluation
// relies on: descriptive statistics and percentiles for the simulation box
// plots, and the hypothesis tests used in the user study (Wilcoxon
// signed-rank for paired and one-sample comparisons, D'Agostino-Pearson K²
// and Shapiro-Francia for normality).
//
// Everything is implemented from scratch on the standard library; p-values
// for the rank tests use the standard normal approximation with tie and
// zero corrections, which is the same regime SciPy operates in at the
// paper's sample sizes (n = 50).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance, or NaN when fewer
// than two observations are supplied.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the smallest element, or NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element, or NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks, matching numpy.percentile's default.
// It returns NaN for empty input and does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return xs[0]
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// PercentilesSorted sorts xs once and evaluates each requested percentile,
// returning them in the same order. It modifies xs.
func PercentilesSorted(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sort.Float64s(xs)
	for i, p := range ps {
		out[i] = percentileSorted(xs, p)
	}
	return out
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary holds the five-number box-plot summary the paper's simulation
// figures report (1st, 25th, 50th, 75th and 99th percentiles) together with
// the mean and sample size.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	P1     float64
	P25    float64
	Median float64
	P75    float64
	P99    float64
}

// Summarize computes a Summary of xs. It does not modify xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Mean: Mean(xs), Std: StdDev(xs)}
	if len(xs) == 0 {
		nan := math.NaN()
		s.P1, s.P25, s.Median, s.P75, s.P99 = nan, nan, nan, nan, nan
		return s
	}
	buf := make([]float64, len(xs))
	copy(buf, xs)
	ps := PercentilesSorted(buf, 1, 25, 50, 75, 99)
	s.P1, s.P25, s.Median, s.P75, s.P99 = ps[0], ps[1], ps[2], ps[3], ps[4]
	return s
}

// Skewness returns the adjusted Fisher-Pearson sample skewness (g1 with the
// bias correction), NaN for n < 3 or zero variance.
func Skewness(xs []float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return math.NaN()
	}
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return math.NaN()
	}
	g1 := m3 / math.Pow(m2, 1.5)
	return g1 * math.Sqrt(n*(n-1)) / (n - 2)
}

// ExcessKurtosis returns the sample excess kurtosis with bias correction
// (the G2 statistic), NaN for n < 4 or zero variance.
func ExcessKurtosis(xs []float64) float64 {
	n := float64(len(xs))
	if n < 4 {
		return math.NaN()
	}
	m := Mean(xs)
	var m2, m4 float64
	for _, x := range xs {
		d := x - m
		d2 := d * d
		m2 += d2
		m4 += d2 * d2
	}
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return math.NaN()
	}
	g2 := m4/(m2*m2) - 3
	return ((n+1)*g2 + 6) * (n - 1) / ((n - 2) * (n - 3))
}

// Normalize scales xs so its maximum is 1, returning a new slice. If the
// maximum is not positive the values are returned unchanged (copied). This
// mirrors the paper's "normalized to the maximum value" presentation.
func Normalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	m := Max(xs)
	if !(m > 0) {
		copy(out, xs)
		return out
	}
	for i, x := range xs {
		out[i] = x / m
	}
	return out
}

// NormalizeBy divides each element by denom, returning a new slice. A
// non-positive denom yields a copy of xs.
func NormalizeBy(xs []float64, denom float64) []float64 {
	out := make([]float64, len(xs))
	if !(denom > 0) {
		copy(out, xs)
		return out
	}
	for i, x := range xs {
		out[i] = x / denom
	}
	return out
}
