package stats

import "math"

// NormalCDF returns P(Z <= z) for a standard normal Z.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalSF returns the standard normal survival function P(Z > z).
func NormalSF(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// NormalQuantile returns the z such that P(Z <= z) = p for a standard
// normal Z, computed with the Acklam rational approximation refined by one
// Halley step. It returns ±Inf at p = 0, 1 and NaN outside [0, 1].
func NormalQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}

	// Coefficients for the central and tail rational approximations.
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}

	const plow, phigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}

	// One Halley refinement step brings the error near machine precision.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// ChiSquareSF returns the survival function P(X > x) of a chi-squared
// distribution with k degrees of freedom, via the regularized upper
// incomplete gamma function.
func ChiSquareSF(x float64, k int) float64 {
	if x <= 0 {
		return 1
	}
	return regularizedGammaQ(float64(k)/2, x/2)
}

// regularizedGammaQ computes Q(a, x) = Γ(a, x)/Γ(a) using the series
// expansion for x < a+1 and the continued fraction otherwise (Numerical
// Recipes style, stdlib math only).
func regularizedGammaQ(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - regularizedGammaPSeries(a, x)
	}
	return regularizedGammaQCF(a, x)
}

func regularizedGammaPSeries(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-15
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func regularizedGammaQCF(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-15
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
