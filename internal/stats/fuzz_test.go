package stats

import (
	"math"
	"testing"
)

func decodeSample(data []byte) []float64 {
	xs := make([]float64, 0, len(data))
	for i, b := range data {
		xs = append(xs, float64(int(b)-128)*(1+float64(i%5))/3)
	}
	return xs
}

func FuzzDescriptiveNeverNonsense(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte("statistics"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			data = data[:512]
		}
		xs := decodeSample(data)
		s := Summarize(xs)
		if len(xs) == 0 {
			return
		}
		// Percentile ordering must hold on any input.
		if !(s.P1 <= s.P25+1e-9 && s.P25 <= s.Median+1e-9 &&
			s.Median <= s.P75+1e-9 && s.P75 <= s.P99+1e-9) {
			t.Fatalf("percentile ordering broken: %+v", s)
		}
		if s.Mean < Min(xs)-1e-9 || s.Mean > Max(xs)+1e-9 {
			t.Fatalf("mean %v outside [min, max]", s.Mean)
		}
		if len(xs) >= 2 && (math.IsNaN(s.Std) || s.Std < 0) {
			t.Fatalf("bad std %v", s.Std)
		}
	})
}

func FuzzWilcoxonBounds(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			data = data[:256]
		}
		xs := decodeSample(data)
		for _, alt := range []Alternative{TwoSided, Less, Greater} {
			res, err := WilcoxonOneSample(xs, 0, alt)
			if err != nil {
				continue // degenerate samples must error, not panic
			}
			if math.IsNaN(res.P) || res.P < 0 || res.P > 1 {
				t.Fatalf("p-value %v out of [0, 1]", res.P)
			}
		}
		if res, err := ShapiroFrancia(xs); err == nil {
			if math.IsNaN(res.P) || res.P < 0 || res.P > 1 {
				t.Fatalf("Shapiro-Francia p %v out of [0, 1]", res.P)
			}
		}
		if res, err := DAgostinoPearson(xs); err == nil {
			if math.IsNaN(res.P) || res.P < 0 || res.P > 1 {
				t.Fatalf("K2 p %v out of [0, 1]", res.P)
			}
		}
	})
}
