package experiments

import (
	"fmt"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/dp"
	"github.com/datamarket/shield/internal/expost"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/rng"
	"github.com/datamarket/shield/internal/sim"
	"github.com/datamarket/shield/internal/timeseries"
)

// X1DPAblation compares the paper's MW algorithm against the Section 6.3
// Laplace-mechanism alternative across privacy budgets epsilon, on
// truthful streams: lower epsilon means stronger protection and noisier
// prices, hence lower revenue; MW's revenue is the protection-for-free
// reference the paper argues for.
func X1DPAblation(o Options) (BoxSeries, error) {
	o = o.withDefaults()
	epsilons := []float64{0.1, 0.5, 1, 5, 10, 100}
	xs := make([]string, len(epsilons))
	for i, e := range epsilons {
		xs[i] = fmt.Sprintf("eps=%g", e)
	}
	col := newBoxCollector("epsilon", xs, []string{"MW", "DP-Laplace"})
	for i, eps := range epsilons {
		results, err := sim.Run(truthfulSpec(o, 0.1, 0.01), map[string]sim.PricerFactory{
			"MW": sim.EngineFactory(engineConfig(8)),
			"DP-Laplace": sim.DPFactory(dp.Config{
				Epsilon:      eps,
				MinBid:       0,
				MaxBid:       maxPrice,
				EpochSize:    8,
				InitialPrice: meanValuation,
			}),
		})
		if err != nil {
			return BoxSeries{}, err
		}
		col.add("MW", i, sim.Revenues(results["MW"]))
		col.add("DP-Laplace", i, sim.Revenues(results["DP-Laplace"]))
	}
	return col.finish(), nil
}

// ExPostResult summarizes the Section 8 ablation: the same stream of
// returning buyers trading ex-post, once reporting honestly and once
// under-reporting, plus the ex-ante reference.
type ExPostResult struct {
	// Rounds is the number of buyer arrivals simulated per arm.
	Rounds int
	// ExAnteRevenue is the revenue of the standard ex-ante market.
	ExAnteRevenue float64
	// HonestRevenue is ex-post revenue when buyers pay their learned
	// valuation.
	HonestRevenue float64
	// CheatRevenue is ex-post revenue when buyers report only
	// CheatFraction of their valuation.
	CheatRevenue float64
	// CheatFraction is the under-reporting factor.
	CheatFraction float64
	// HonestGrants and CheatGrants count datasets actually obtained:
	// Time-Shield waits and deactivation starve under-reporters.
	HonestGrants, CheatGrants int
	// CheatDeactivated reports whether the under-reporter lost the
	// ex-post option at least once.
	CheatDeactivated bool
}

// X2ExPost runs the ex-post ablation.
func X2ExPost(o Options) (ExPostResult, error) {
	o = o.withDefaults()
	const rounds = 200
	const cheatFraction = 0.3

	valuations := make([]float64, rounds)
	r := rng.New(o.Seed)
	for i := range valuations {
		v := r.Normal(meanValuation, 20)
		if v < bidFloor {
			v = bidFloor
		}
		valuations[i] = v
	}

	engCfg := engineConfig(8)
	engCfg.MaxWaitEpochs = 8

	// Ex-ante reference: one returning buyer bidding truthfully.
	exAnte := expost.MustNew(expost.Config{Engine: engCfg, Seed: o.Seed})
	if err := exAnte.AddDataset("d"); err != nil {
		return ExPostResult{}, err
	}
	if err := exAnte.RegisterBuyer("b"); err != nil {
		return ExPostResult{}, err
	}
	for _, v := range valuations {
		if _, err := exAnte.Bid("b", "d", v); err != nil {
			// Wait active: skip forward.
			exAnte.Tick()
		}
		exAnte.Tick()
	}

	runExPost := func(payFraction float64) (float64, int, bool, error) {
		a := expost.MustNew(expost.Config{Engine: engCfg, Seed: o.Seed})
		if err := a.AddDataset("d"); err != nil {
			return 0, 0, false, err
		}
		if err := a.RegisterBuyer("b"); err != nil {
			return 0, 0, false, err
		}
		grants := 0
		deactivated := false
		for _, v := range valuations {
			g, err := a.Request("b", "d")
			if err != nil {
				a.Tick()
				continue
			}
			grants++
			res, err := a.Pay(g, payFraction*v)
			if err != nil {
				return 0, 0, false, err
			}
			if res.Deactivated {
				deactivated = true
			}
			a.Tick()
		}
		return a.Revenue().Float(), grants, deactivated, nil
	}

	honestRev, honestGrants, _, err := runExPost(1)
	if err != nil {
		return ExPostResult{}, err
	}
	cheatRev, cheatGrants, cheatDeact, err := runExPost(cheatFraction)
	if err != nil {
		return ExPostResult{}, err
	}
	return ExPostResult{
		Rounds:           rounds,
		ExAnteRevenue:    exAnte.Revenue().Float(),
		HonestRevenue:    honestRev,
		CheatRevenue:     cheatRev,
		CheatFraction:    cheatFraction,
		HonestGrants:     honestGrants,
		CheatGrants:      cheatGrants,
		CheatDeactivated: cheatDeact,
	}, nil
}

// WaitPeriodResult is the Section 6.2.2 ablation: Time-Shield wait
// lengths assigned to losing bids of varying depth, under the Bound and
// Stable replay strategies, on an engine warmed to a stationary stream.
type WaitPeriodResult struct {
	// Bids are the losing bid levels probed.
	Bids []float64
	// Bound and Stable are the wait-periods assigned per bid.
	Bound, Stable []int
	// WarmPrice is the most likely price after warmup.
	WarmPrice float64
}

// X3WaitPeriods runs the wait-period ablation.
func X3WaitPeriods(o Options) (WaitPeriodResult, error) {
	o = o.withDefaults()
	warm := func(ws core.WaitStrategy) *core.Engine {
		cfg := engineConfig(8)
		cfg.Rule = core.DrawMWMax
		cfg.Wait = ws
		cfg.MaxWaitEpochs = 256
		cfg.Seed = o.Seed
		e := core.MustNew(cfg)
		for i := 0; i < 8*30; i++ {
			e.SubmitBid(0.9 * meanValuation)
		}
		return e
	}
	bound := warm(core.WaitBound)
	stable := warm(core.WaitStable)
	res := WaitPeriodResult{WarmPrice: bound.MostLikelyPrice()}
	for _, frac := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8} {
		b := frac * meanValuation
		res.Bids = append(res.Bids, b)
		res.Bound = append(res.Bound, bound.ComputeWaitPeriod(b))
		res.Stable = append(res.Stable, stable.ComputeWaitPeriod(b))
	}
	return res, nil
}

// InterleavingResult is the X4 ablation output: per PCT, the fraction of
// E=8 epochs whose Equation-2 revenue optimum collapses to a low price
// (below 25% of the mean valuation), when strategic buyers bid
// concurrently (interleaved) versus in per-buyer bursts.
type InterleavingResult struct {
	PCTs []float64
	// Interleaved and Burst are mean collapsed-epoch fractions per PCT.
	Interleaved, Burst []float64
}

// X4Interleaving measures the mechanism behind the reproduction's
// interleaving decision (DESIGN.md §4): low bids harm a small-epoch
// update algorithm only when they dominate whole epochs, which happens
// under concurrent bidding but almost never when each buyer's H-1 low
// bids arrive as a burst shorter than the epoch.
func X4Interleaving(o Options) (InterleavingResult, error) {
	o = o.withDefaults()
	res := InterleavingResult{PCTs: PCTGrid()}
	const epochSize = 8
	collapseThreshold := 0.25 * meanValuation

	collapsedFrac := func(pct float64, burst bool) (float64, error) {
		var total float64
		for s := 0; s < o.Series; s++ {
			seed := o.Seed + uint64(s)*2654435761
			genR := rng.New(seed)
			vals, err := timeseries.GenerateValuations(arConfig(0.1, 0.01), genR)
			if err != nil {
				return 0, err
			}
			scfg := timeseries.StrategicConfig{
				PCT: pct, Beta: 0, Horizon: defaultH, Floor: bidFloor, Burst: burst,
			}
			stream, err := timeseries.Transform(vals, scfg, genR.Split())
			if err != nil {
				return 0, err
			}
			amounts := timeseries.Amounts(stream)
			epochs, collapsed := 0, 0
			for i := 0; i+epochSize <= len(amounts); i += epochSize {
				p, _ := auction.OptimalPrice(amounts[i : i+epochSize])
				epochs++
				if p < collapseThreshold {
					collapsed++
				}
			}
			if epochs > 0 {
				total += float64(collapsed) / float64(epochs)
			}
		}
		return total / float64(o.Series), nil
	}

	for _, pct := range res.PCTs {
		il, err := collapsedFrac(pct, false)
		if err != nil {
			return InterleavingResult{}, err
		}
		bu, err := collapsedFrac(pct, true)
		if err != nil {
			return InterleavingResult{}, err
		}
		res.Interleaved = append(res.Interleaved, il)
		res.Burst = append(res.Burst, bu)
	}
	return res, nil
}

// X5AdaptiveGrid compares the fixed candidate grid (the paper's setting)
// against the adaptive re-gridding extension on truthful streams, as the
// candidate budget shrinks: with few experts a fixed grid prices in
// coarse steps, while the adaptive grid zooms into the demand region and
// recovers most of the lost resolution. The paper fixes P "for the sake
// of presentation"; this ablation quantifies what a deployment gains by
// not fixing it.
func X5AdaptiveGrid(o Options) (BoxSeries, error) {
	o = o.withDefaults()
	budgets := []int{4, 6, 8, 16, 40}
	xs := make([]string, len(budgets))
	for i, n := range budgets {
		xs[i] = fmt.Sprintf("n=%d", n)
	}
	// Concentrated demand (valuations ~100 +- 5) against the full
	// [1, 200] candidate range: this is the regime where grid resolution
	// matters — a coarse fixed grid has no candidate near the demand
	// point, an adaptive one zooms onto it. With a generous budget,
	// fixed and adaptive tie (the n=40 column shows convergence). The
	// stream is longer than the paper's windows (1000 bids, E=4) because
	// zooming needs a few dozen regrids to amortize.
	spec := truthfulSpec(o, 0.1, 0.01)
	spec.AR.Scale = 5
	spec.AR.N = 1000
	col := newBoxCollector("candidates", xs, []string{"fixed", "adaptive"})
	for i, n := range budgets {
		cfg := engineConfig(4)
		cfg.Candidates = auction.LinearGrid(bidFloor, maxPrice, n)
		adaptive := cfg
		adaptive.RegridEvery = 4
		results, err := sim.Run(spec, map[string]sim.PricerFactory{
			"fixed":    sim.EngineFactory(cfg),
			"adaptive": sim.EngineFactory(adaptive),
		})
		if err != nil {
			return BoxSeries{}, err
		}
		col.add("fixed", i, sim.Revenues(results["fixed"]))
		col.add("adaptive", i, sim.Revenues(results["adaptive"]))
	}
	return col.finish(), nil
}

// X6DriftTracking compares drift-tracking mechanisms on persistent
// (high-AR) valuation processes, where the revenue-optimal price moves
// over time: plain MW (commits to stale experts), fixed-share mixing
// (Herbster-Warmuth: keeps a weight floor so switches are fast), the
// adaptive grid, and both combined. Longer 1000-bid streams let drift
// actually unfold.
func X6DriftTracking(o Options) (BoxSeries, error) {
	o = o.withDefaults()
	ars := []float64{0.5, 0.9, 0.99, 0.999}
	xs := make([]string, len(ars))
	for i, ar := range ars {
		xs[i] = fmt.Sprintf("AR=%.3g", ar)
	}
	order := []string{"MW", "MW+share", "MW+regrid", "MW+both"}
	col := newBoxCollector("AR", xs, order)
	col.perX = true // raw revenue scales differ per AR process
	base := engineConfig(4)
	variants := map[string]func() core.Config{
		"MW": func() core.Config { return base },
		"MW+share": func() core.Config {
			c := base
			c.ShareFraction = 0.02
			return c
		},
		"MW+regrid": func() core.Config {
			c := base
			c.RegridEvery = 8
			return c
		},
		"MW+both": func() core.Config {
			c := base
			c.ShareFraction = 0.02
			c.RegridEvery = 8
			return c
		},
	}
	for i, ar := range ars {
		spec := truthfulSpec(o, ar, 0.01)
		spec.AR.N = 1000
		factories := make(map[string]sim.PricerFactory, len(variants))
		for name, mk := range variants {
			factories[name] = sim.EngineFactory(mk())
		}
		results, err := sim.Run(spec, factories)
		if err != nil {
			return BoxSeries{}, err
		}
		for name, rs := range results {
			col.add(name, i, sim.Revenues(rs))
		}
	}
	return col.finish(), nil
}

// MarketIntegration is a smoke experiment over the full market substrate:
// buyers with deadlines trading three datasets (one derived) through the
// arbiter, verifying ledger conservation end to end. It returns the
// market's final books.
type MarketIntegrationResult struct {
	Revenue        float64
	SellerBalances map[string]float64
	Transactions   int
}

// MarketIntegration runs the smoke experiment.
func MarketIntegration(o Options) (MarketIntegrationResult, error) {
	o = o.withDefaults()
	m := market.MustNew(market.Config{Engine: engineConfig(4), Seed: o.Seed})
	for _, s := range []market.SellerID{"s1", "s2"} {
		if err := m.RegisterSeller(s); err != nil {
			return MarketIntegrationResult{}, err
		}
	}
	if err := m.UploadDataset("s1", "a"); err != nil {
		return MarketIntegrationResult{}, err
	}
	if err := m.UploadDataset("s2", "b"); err != nil {
		return MarketIntegrationResult{}, err
	}
	if err := m.ComposeDataset("ab", "a", "b"); err != nil {
		return MarketIntegrationResult{}, err
	}
	r := rng.New(o.Seed)
	for i := 0; i < 150; i++ {
		buyer := market.BuyerID(fmt.Sprintf("buyer-%d", i))
		if err := m.RegisterBuyer(buyer); err != nil {
			return MarketIntegrationResult{}, err
		}
		for _, ds := range []market.DatasetID{"a", "b", "ab"} {
			amount := r.Normal(meanValuation, 25)
			if amount < bidFloor {
				amount = bidFloor
			}
			if _, err := m.SubmitBid(buyer, ds, amount); err != nil {
				return MarketIntegrationResult{}, err
			}
		}
		m.Tick()
	}
	res := MarketIntegrationResult{
		Revenue:        m.Revenue().Float(),
		SellerBalances: make(map[string]float64),
		Transactions:   len(m.Transactions()),
	}
	for _, s := range []market.SellerID{"s1", "s2"} {
		bal, err := m.SellerBalance(s)
		if err != nil {
			return MarketIntegrationResult{}, err
		}
		res.SellerBalances[string(s)] = bal.Float()
	}
	return res, nil
}
