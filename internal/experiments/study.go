package experiments

import (
	"github.com/datamarket/shield/internal/stats"
	"github.com/datamarket/shield/internal/userstudy"
)

// Table1 reproduces Table 1 (RQ1): descriptive statistics of panel bids
// at valuations 500 and 1500 with the one-sample Wilcoxon test.
func Table1(o Options) ([]userstudy.Table1Row, error) {
	o = o.withDefaults()
	return userstudy.NewPanel(o.Panel, o.Seed).Table1(500, 1500)
}

// LeakFigure is the Figure 2a/2b payload: the three bid distributions
// (No-leak, Past, Random) as histograms over the slider range [0, 2v],
// plus the underlying study with its statistical tests.
type LeakFigure struct {
	Valuation float64
	// Arms maps arm name to its histogram (16 bins over [0, 2v]).
	Arms map[string]*stats.Histogram
	// ArmOrder is the presentation order.
	ArmOrder []string
	// Study carries the raw bids and test results.
	Study userstudy.LeakStudy
}

func leakFigure(o Options, v float64) (LeakFigure, error) {
	o = o.withDefaults()
	// Mix the valuation into the panel seed: the study controls for the
	// price effect by asking about different price magnitudes, so the
	// two figures should not share a bit-identical draw sequence.
	study, err := userstudy.NewPanel(o.Panel, o.Seed^uint64(v)*2654435761).RunLeakStudy(v)
	if err != nil {
		return LeakFigure{}, err
	}
	const bins = 16
	return LeakFigure{
		Valuation: v,
		Arms: map[string]*stats.Histogram{
			"No-leak": stats.NewHistogram(study.NoLeak, 0, 2*v, bins),
			"Past":    stats.NewHistogram(study.Past, 0, 2*v, bins),
			"Random":  stats.NewHistogram(study.Random, 0, 2*v, bins),
		},
		ArmOrder: []string{"No-leak", "Past", "Random"},
		Study:    study,
	}, nil
}

// Fig2a reproduces Figure 2a: bid distributions at valuation 500 under
// the No-leak, Past, and Random interventions (RQ1-RQ3).
func Fig2a(o Options) (LeakFigure, error) { return leakFigure(o, 500) }

// Fig2b reproduces Figure 2b: the same at valuation 1500.
func Fig2b(o Options) (LeakFigure, error) { return leakFigure(o, 1500) }

// Fig2c reproduces Figure 2c: multi-round bid plans at valuation 2000
// over 4 hours, with (W) and without (NW) Time-Shield, reduced to
// p25/median/p75 curves (RQ4-RQ5).
func Fig2c(o Options) (userstudy.TimeShieldStudy, error) {
	o = o.withDefaults()
	return userstudy.NewPanel(o.Panel, o.Seed).RunTimeShieldStudy(2000, 4)
}
