// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 7) plus the design-choice ablations DESIGN.md
// calls out. Each experiment is a pure function of an Options value, so
// the CLI (cmd/marketsim), the benchmark harness (bench_test.go), and
// EXPERIMENTS.md all regenerate identical numbers.
package experiments

import (
	"fmt"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/stats"
	"github.com/datamarket/shield/internal/timeseries"
)

// Options controls experiment scale; the zero value reproduces the
// paper's settings.
type Options struct {
	// Series is the number of random series per configuration
	// (0 selects the paper's 100).
	Series int
	// Panel is the user-study panel size (0 selects the paper's 50).
	Panel int
	// Seed seeds everything (0 selects 2022).
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Series == 0 {
		o.Series = 100
	}
	if o.Panel == 0 {
		o.Panel = 50
	}
	if o.Seed == 0 {
		o.Seed = 2022
	}
	return o
}

// Simulation-wide constants: valuations fluctuate around 100 with the
// market's minimum admissible bid at 1 — an artificially low bid is
// nearly worthless to sell to. The posting-price candidates span the
// whole bid range, floor included, so concurrent low bids can drag a
// small-epoch update algorithm to the floor (the overfitting attack of
// Section 3 that Epoch-Shield defends against). Every simulated series is
// a fixed 250-bid observation window: strategic buyers displace truthful
// demand out of the window, which is how strategizing starves revenue
// even when the pricing holds firm.
const (
	meanValuation = 100
	bidFloor      = 1
	maxPrice      = 200
	numCandidates = 40
	defaultH      = 4
	window        = 250
)

// candidates returns the standard posting-price candidate grid.
func candidates() []float64 {
	return auction.LinearGrid(bidFloor, maxPrice, numCandidates)
}

// engineConfig returns the standard MW engine template at epoch size E.
func engineConfig(epoch int) core.Config {
	return core.Config{
		Candidates:    candidates(),
		EpochSize:     epoch,
		BidsPerPeriod: 1,
		MinBid:        bidFloor,
	}
}

// arConfig returns the valuation process at the given AR coefficient.
func arConfig(ar, sigma float64) timeseries.ARConfig {
	return timeseries.ARConfig{
		AR:    ar,
		Sigma: sigma,
		Mean:  meanValuation,
		Floor: bidFloor,
		N:     250,
	}
}

// PCTGrid is the strategic-buyer-ratio sweep used by Figures 3b, 3c, 4b,
// 4c and 5a.
func PCTGrid() []float64 {
	return []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
}

// EpochGrid is the epoch-size sweep of Figures 3b/3c and 4a.
func EpochGrid() []int { return []int{1, 2, 4, 8, 16} }

// BetaGrid is the strategic-bid sweep of Figures 4b/4c ("min" is beta=0:
// bids at the floor).
func BetaGrid() []float64 { return []float64{0, 0.25, 0.5, 0.75} }

// BetaLabel renders a beta value as the paper labels it.
func BetaLabel(beta float64) string {
	if beta == 0 {
		return "min"
	}
	return fmt.Sprintf("%.2g", beta)
}

// BoxSeries is a family of box-plot summaries over a common x-axis: one
// labeled group per algorithm/configuration, one Summary per x position,
// computed from samples normalized to the maximum across the whole
// figure (the paper's presentation).
type BoxSeries struct {
	// XLabel names the x-axis; Xs are its positions in order.
	XLabel string
	Xs     []string
	// Order lists group names in presentation order.
	Order []string
	// Groups maps group name to one Summary per x position.
	Groups map[string][]stats.Summary
}

// cell identifies one (group, x) sample vector during collection.
type cell struct {
	group string
	x     int
}

// boxCollector gathers raw samples and normalizes at the end. With perX
// set, samples normalize to the maximum at their own x position (used
// when x positions have incomparable raw scales, e.g. different AR
// processes in Figure 3a); otherwise one global maximum normalizes the
// whole figure.
type boxCollector struct {
	xlabel  string
	xs      []string
	order   []string
	perX    bool
	samples map[cell][]float64
}

func newBoxCollector(xlabel string, xs []string, order []string) *boxCollector {
	return &boxCollector{
		xlabel:  xlabel,
		xs:      xs,
		order:   order,
		samples: make(map[cell][]float64),
	}
}

func (b *boxCollector) add(group string, x int, samples []float64) {
	b.samples[cell{group, x}] = samples
}

// finish normalizes samples and summarizes.
func (b *boxCollector) finish() BoxSeries {
	maxAt := func(x int) float64 {
		var max float64
		for _, g := range b.order {
			if m := stats.Max(b.samples[cell{g, x}]); m > max {
				max = m
			}
		}
		return max
	}
	var globalMax float64
	if !b.perX {
		for x := range b.xs {
			if m := maxAt(x); m > globalMax {
				globalMax = m
			}
		}
	}
	out := BoxSeries{
		XLabel: b.xlabel,
		Xs:     b.xs,
		Order:  b.order,
		Groups: make(map[string][]stats.Summary, len(b.order)),
	}
	for _, g := range b.order {
		sums := make([]stats.Summary, len(b.xs))
		for x := range b.xs {
			denom := globalMax
			if b.perX {
				denom = maxAt(x)
			}
			sums[x] = stats.Summarize(stats.NormalizeBy(b.samples[cell{g, x}], denom))
		}
		out.Groups[g] = sums
	}
	return out
}

// HeatmapResult is a Figure 5b/5c style grid of normalized mean revenue
// over horizon x strategic-bid.
type HeatmapResult struct {
	PCT      float64
	Horizons []int
	Betas    []float64
	// Values[h][b] is the mean revenue for Horizons[h] x Betas[b],
	// normalized to the maximum cell.
	Values [][]float64
}
