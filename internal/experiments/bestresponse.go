package experiments

import (
	"fmt"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/buyers"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/rng"
	"github.com/datamarket/shield/internal/stats"
)

// BestResponseResult is the X7 output: realized buyer utility by
// strategy group in a mixed adaptive market, with Time-Shield waits on
// and off. It is the utility-side check of the paper's Claim 2: waiting
// removes allocation opportunities, so strategizing stops paying.
type BestResponseResult struct {
	// Sessions is the number of independent market sessions per arm.
	Sessions int
	// TruthfulUtility and StrategicUtility are mean per-buyer utilities
	// for each arm.
	TruthfulUtilityNoShield, StrategicUtilityNoShield float64
	TruthfulUtilityShield, StrategicUtilityShield     float64
	// TruthfulUtilityCautious and StrategicUtilityCautious are the third
	// arm: Time-Shield active AND buyers react to it behaviorally by
	// turning truthful after their first wait (the RQ5 finding).
	TruthfulUtilityCautious, StrategicUtilityCautious float64
	// StrategicWins* count strategic buyers who obtained the dataset.
	StrategicWinsNoShield, StrategicWinsShield, StrategicWinsCautious int
	// Revenue* are mean market revenues per arm.
	RevenueNoShield, RevenueShield, RevenueCautious float64
}

// StrategicAdvantageNoShield is the mean utility edge of strategizing
// without Time-Shield.
func (r BestResponseResult) StrategicAdvantageNoShield() float64 {
	return r.StrategicUtilityNoShield - r.TruthfulUtilityNoShield
}

// StrategicAdvantageShield is the edge with Time-Shield active.
func (r BestResponseResult) StrategicAdvantageShield() float64 {
	return r.StrategicUtilityShield - r.TruthfulUtilityShield
}

// StrategicAdvantageCautious is the edge when buyers also react to
// Time-Shield behaviorally (RQ5).
func (r BestResponseResult) StrategicAdvantageCautious() float64 {
	return r.StrategicUtilityCautious - r.TruthfulUtilityCautious
}

// X7BestResponse runs mixed adaptive markets — half truthful, half
// strategic low-ballers bidding 20% of value until their last chance —
// through the full market substrate (wait enforcement included), with
// Time-Shield on and off. Strategic buyers profit from price dips they
// catch while waiting costs nothing; once losing low bids trigger waits,
// the dips they can catch shrink with their remaining opportunities.
func X7BestResponse(o Options) (BestResponseResult, error) {
	o = o.withDefaults()
	const (
		buyersPerSide = 10
		periods       = 20
		deadline      = periods - 1
		meanV         = 100.0
		sdV           = 15.0
	)
	res := BestResponseResult{Sessions: o.Series}

	run := func(seed uint64, disableWaits, cautious bool) (tu, su, rev float64, wins int, err error) {
		m, err := market.New(market.Config{
			Engine: core.Config{
				Candidates:         auction.LinearGrid(10, 150, 15),
				EpochSize:          4,
				BidsPerPeriod:      buyersPerSide, // ~half the crowd bids per period
				MinBid:             1,
				MaxWaitEpochs:      16,
				DisableWaitPeriods: disableWaits,
			},
			Seed: seed,
		})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		if err := m.RegisterSeller("s"); err != nil {
			return 0, 0, 0, 0, err
		}
		if err := m.UploadDataset("s", "d"); err != nil {
			return 0, 0, 0, 0, err
		}
		valR := rng.New(seed ^ 0xabcdef)
		var parts []buyers.Participant
		var truthfulIDs, strategicIDs []market.BuyerID
		for i := 0; i < buyersPerSide; i++ {
			v := valR.Normal(meanV, sdV)
			if v < 20 {
				v = 20
			}
			tid := market.BuyerID(fmt.Sprintf("truthful-%d", i))
			sid := market.BuyerID(fmt.Sprintf("strategic-%d", i))
			if err := m.RegisterBuyer(tid); err != nil {
				return 0, 0, 0, 0, err
			}
			if err := m.RegisterBuyer(sid); err != nil {
				return 0, 0, 0, 0, err
			}
			parts = append(parts,
				buyers.Participant{ID: tid, Strategy: buyers.NewTruthful(v), Deadline: deadline},
				buyers.Participant{ID: sid, Strategy: buyers.NewStrategic(v, 0.2, 1, cautious), Deadline: deadline},
			)
			truthfulIDs = append(truthfulIDs, tid)
			strategicIDs = append(strategicIDs, sid)
		}
		session, err := buyers.RunSession(m, "d", parts, periods)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		for _, id := range truthfulIDs {
			tu += session.Utility[id]
		}
		for _, id := range strategicIDs {
			su += session.Utility[id]
			if owns, _ := m.Owns(id, "d"); owns {
				wins++
			}
		}
		return tu / buyersPerSide, su / buyersPerSide, session.Revenue.Float(), wins, nil
	}

	var tuN, suN, revN, tuS, suS, revS, tuC, suC, revC []float64
	for s := 0; s < o.Series; s++ {
		seed := o.Seed + uint64(s)*7919
		tu, su, rev, wins, err := run(seed, true, false) // waits disabled
		if err != nil {
			return BestResponseResult{}, err
		}
		tuN = append(tuN, tu)
		suN = append(suN, su)
		revN = append(revN, rev)
		res.StrategicWinsNoShield += wins

		tu, su, rev, wins, err = run(seed, false, false) // Time-Shield, stubborn buyers
		if err != nil {
			return BestResponseResult{}, err
		}
		tuS = append(tuS, tu)
		suS = append(suS, su)
		revS = append(revS, rev)
		res.StrategicWinsShield += wins

		tu, su, rev, wins, err = run(seed, false, true) // Time-Shield + RQ5 reaction
		if err != nil {
			return BestResponseResult{}, err
		}
		tuC = append(tuC, tu)
		suC = append(suC, su)
		revC = append(revC, rev)
		res.StrategicWinsCautious += wins
	}
	res.TruthfulUtilityNoShield = stats.Mean(tuN)
	res.StrategicUtilityNoShield = stats.Mean(suN)
	res.RevenueNoShield = stats.Mean(revN)
	res.TruthfulUtilityShield = stats.Mean(tuS)
	res.StrategicUtilityShield = stats.Mean(suS)
	res.RevenueShield = stats.Mean(revS)
	res.TruthfulUtilityCautious = stats.Mean(tuC)
	res.StrategicUtilityCautious = stats.Mean(suC)
	res.RevenueCautious = stats.Mean(revC)
	return res, nil
}
