package experiments

import (
	"math"
	"testing"

	"github.com/datamarket/shield/internal/stats"
)

// quick returns small-scale options so the full suite stays fast; shape
// assertions hold at this scale too.
func quick() Options { return Options{Series: 12, Panel: 50, Seed: 2022} }

func meanOf(sums []stats.Summary) float64 {
	var s float64
	for _, x := range sums {
		s += x.Mean
	}
	return s / float64(len(sums))
}

func TestTable1Shape(t *testing.T) {
	rows, err := Table1(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Valuation != 500 || rows[1].Valuation != 1500 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.Mean < 0.8*r.Valuation || r.Mean > r.Valuation {
			t.Errorf("v=%v: mean %v", r.Valuation, r.Mean)
		}
		if r.P < 0.05 {
			t.Errorf("v=%v: near-truthfulness rejected, p=%v", r.Valuation, r.P)
		}
	}
}

func TestFig2aShape(t *testing.T) {
	fig, err := Fig2a(quick())
	if err != nil {
		t.Fatal(err)
	}
	if fig.Valuation != 500 || len(fig.ArmOrder) != 3 {
		t.Fatalf("fig = %+v", fig)
	}
	for _, arm := range fig.ArmOrder {
		h := fig.Arms[arm]
		if h == nil || h.Total != 50 {
			t.Fatalf("arm %s histogram missing or wrong size", arm)
		}
	}
	// The paper's visual: Past mass sits lower than No-leak mass.
	if fig.Arms["Past"].Mode() >= fig.Arms["No-leak"].Mode() {
		t.Errorf("Past mode %v not below No-leak mode %v",
			fig.Arms["Past"].Mode(), fig.Arms["No-leak"].Mode())
	}
	if fig.Study.PastVsNoLeak.P > 0.01 {
		t.Errorf("leak effect not significant: p=%v", fig.Study.PastVsNoLeak.P)
	}
}

func TestFig2bScales(t *testing.T) {
	fig, err := Fig2b(quick())
	if err != nil {
		t.Fatal(err)
	}
	if fig.Valuation != 1500 {
		t.Fatalf("valuation = %v", fig.Valuation)
	}
}

func TestFig2cShape(t *testing.T) {
	s, err := Fig2c(quick())
	if err != nil {
		t.Fatal(err)
	}
	if s.Hours != 4 || s.Valuation != 2000 {
		t.Fatalf("study = %+v", s)
	}
	for h := 0; h < 3; h++ {
		if s.Wp50[h] <= s.NWp50[h] {
			t.Errorf("hour %d: W median not above NW", h)
		}
	}
	if s.HourlyP[3] < 0.05 {
		t.Errorf("final hour differs: p=%v", s.HourlyP[3])
	}
}

func TestFig3aShape(t *testing.T) {
	bs, err := Fig3a(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(bs.Xs) != 4 || len(bs.Order) != 2 {
		t.Fatalf("series = %+v", bs)
	}
	// Opt dominates MW at every AR point; both are reasonably high and
	// not too sensitive to AR (the paper's conclusion).
	for i := range bs.Xs {
		opt := bs.Groups["Opt"][i].Mean
		mw := bs.Groups["MW"][i].Mean
		if mw > opt*1.02 {
			t.Errorf("%s: MW %v above Opt %v", bs.Xs[i], mw, opt)
		}
		if mw < 0.4 {
			t.Errorf("%s: MW mean %v collapsed", bs.Xs[i], mw)
		}
	}
	// Per-x normalization: the top sample at each AR point is 1, so the
	// P99 of the dominant group sits near 1 everywhere.
	for i := range bs.Xs {
		if p99 := bs.Groups["Opt"][i].P99; p99 < 0.9 || p99 > 1+1e-9 {
			t.Errorf("%s: Opt P99 = %v, want ~1", bs.Xs[i], p99)
		}
	}
}

func TestFig3bEpochShieldProtects(t *testing.T) {
	bs, err := Fig3b(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(bs.Xs) != 10 || len(bs.Order) != 5 {
		t.Fatalf("series shape: %d xs, %d groups", len(bs.Xs), len(bs.Order))
	}
	// At PCT=0 (truthful), E=1 revenue >= E=16 revenue (protection costs
	// revenue, Claim 1).
	e1 := bs.Groups["E=1"]
	e16 := bs.Groups["E=16"]
	if e1[0].Mean < e16[0].Mean*0.95 {
		t.Errorf("truthful market: E=1 %v unexpectedly below E=16 %v", e1[0].Mean, e16[0].Mean)
	}
	// At PCT=0.9, the ordering flips decisively: big epochs protect.
	last := len(bs.Xs) - 1
	if e16[last].Mean <= e1[last].Mean {
		t.Errorf("under attack: E=16 %v not above E=1 %v", e16[last].Mean, e1[last].Mean)
	}
	// E=1 must collapse substantially from its truthful level.
	if e1[last].Mean > 0.6*e1[0].Mean {
		t.Errorf("E=1 did not collapse: %v -> %v", e1[0].Mean, e1[last].Mean)
	}
}

func TestFig3cSurplusStable(t *testing.T) {
	bs, err := Fig3c(quick())
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports large-epoch surplus similar across PCT. In our
	// window model some decline is expected (strategic buyers displace
	// truthful demand out of the observation window; see EXPERIMENTS.md)
	// but the surplus must not collapse, and must stay positive.
	e16 := bs.Groups["E=16"]
	first, last := e16[0].Mean, e16[len(e16)-1].Mean
	if first <= 0 {
		t.Fatal("no surplus at PCT=0")
	}
	if last < 0.2*first {
		t.Errorf("E=16 surplus collapsed: %v -> %v", first, last)
	}
	for i, s := range e16 {
		if s.Mean < 0 {
			t.Errorf("negative surplus at %s", bs.Xs[i])
		}
	}
}

func TestFig4aRuleOrdering(t *testing.T) {
	bs, err := Fig4a(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Paper ordering per epoch size: MW-Max >= MW >= Random, and MW is
	// the best randomized rule (>= AdHoc and Random).
	for i, x := range bs.Xs {
		mwMax := bs.Groups["MW-Max"][i].Mean
		mw := bs.Groups["MW"][i].Mean
		adhoc := bs.Groups["AdHoc"][i].Mean
		random := bs.Groups["Random"][i].Mean
		if mw > mwMax*1.05 {
			t.Errorf("%s: MW %v above MW-Max %v", x, mw, mwMax)
		}
		if random > mw {
			t.Errorf("%s: Random %v above MW %v", x, random, mw)
		}
		if adhoc > mwMax*1.05 {
			t.Errorf("%s: AdHoc %v above MW-Max %v", x, adhoc, mwMax)
		}
	}
	// Averaged across epoch sizes, MW beats AdHoc (the paper's claim).
	if meanOf(bs.Groups["MW"]) <= meanOf(bs.Groups["AdHoc"]) {
		t.Errorf("MW mean %v not above AdHoc %v",
			meanOf(bs.Groups["MW"]), meanOf(bs.Groups["AdHoc"]))
	}
}

func TestFig4bHigherBetaHigherRevenue(t *testing.T) {
	bs, err := Fig4b(quick())
	if err != nil {
		t.Fatal(err)
	}
	// At high PCT, higher beta must earn more revenue (Time-Shield's
	// indirect effect).
	last := len(bs.Xs) - 1
	min := bs.Groups["min"][last].Mean
	b75 := bs.Groups["0.75"][last].Mean
	if b75 <= min {
		t.Errorf("PCT=0.9: beta=0.75 %v not above min %v", b75, min)
	}
	// Revenue falls as PCT grows for the min attack.
	if bs.Groups["min"][last].Mean >= bs.Groups["min"][0].Mean {
		t.Errorf("min attack did not reduce revenue across PCT")
	}
}

func TestFig4cSurplusRuns(t *testing.T) {
	bs, err := Fig4c(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(bs.Groups) != 4 {
		t.Fatalf("groups = %d", len(bs.Groups))
	}
}

func TestFig5aMWTracksOptWhileBaselinesCollapse(t *testing.T) {
	bs, err := Fig5a(quick())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's claim: "the performance of avg and p50 drops
	// dramatically... the performance of MW remains close to the
	// optimal, Opt, throughout the experiment."
	for i, x := range bs.Xs {
		mw := bs.Groups["MW"][i].Mean
		opt := bs.Groups["Opt"][i].Mean
		if mw < 0.7*opt {
			t.Errorf("%s: MW %v not close to Opt %v", x, mw, opt)
		}
		if mw > opt*1.05 {
			t.Errorf("%s: MW %v above Opt %v", x, mw, opt)
		}
	}
	// On the truthful market MW beats the naive update algorithms (it
	// adapts to the unknown bid distribution better).
	if mw0, avg0 := bs.Groups["MW"][0].Mean, bs.Groups["avg"][0].Mean; mw0 <= avg0 {
		t.Errorf("PCT=0: MW %v not above avg %v", mw0, avg0)
	}
	if mw0, p500 := bs.Groups["MW"][0].Mean, bs.Groups["p50"][0].Mean; mw0 <= p500 {
		t.Errorf("PCT=0: MW %v not above p50 %v", mw0, p500)
	}
	// avg and p50 collapse hard relative to their truthful level.
	last := len(bs.Xs) - 1
	if avg := bs.Groups["avg"][last].Mean; avg > 0.7*bs.Groups["avg"][0].Mean {
		t.Errorf("avg did not collapse: %v -> %v", bs.Groups["avg"][0].Mean, avg)
	}
	if p50 := bs.Groups["p50"][last].Mean; p50 > 0.7*bs.Groups["p50"][0].Mean {
		t.Errorf("p50 did not collapse: %v -> %v", bs.Groups["p50"][0].Mean, p50)
	}
}

func TestFig5HeatmapsShape(t *testing.T) {
	hm, err := Fig5b(quick())
	if err != nil {
		t.Fatal(err)
	}
	if hm.PCT != 0.5 || len(hm.Horizons) != 8 || len(hm.Betas) != 5 {
		t.Fatalf("heatmap = %+v", hm)
	}
	var max float64
	for _, row := range hm.Values {
		for _, v := range row {
			if v < 0 || v > 1+1e-9 {
				t.Fatalf("cell %v outside [0,1]", v)
			}
			if v > max {
				max = v
			}
		}
	}
	if math.Abs(max-1) > 1e-9 {
		t.Fatalf("heatmap max = %v", max)
	}
	// Monotonicity in beta at the longest horizon: higher beta, more
	// revenue.
	lastRow := hm.Values[len(hm.Values)-1]
	if lastRow[0] >= lastRow[len(lastRow)-1] {
		t.Errorf("H=8: min beta %v not below beta=0.9 %v", lastRow[0], lastRow[len(lastRow)-1])
	}
}

func TestFig5cHarsherThanFig5b(t *testing.T) {
	b, err := Fig5b(quick())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Fig5c(quick())
	if err != nil {
		t.Fatal(err)
	}
	// More strategic buyers: the worst cell at PCT=0.9 is at most the
	// worst at PCT=0.5 (both normalized to their own max).
	worst := func(h HeatmapResult) float64 {
		w := math.Inf(1)
		for _, row := range h.Values {
			for _, v := range row {
				if v < w {
					w = v
				}
			}
		}
		return w
	}
	if worst(c) > worst(b)+0.05 {
		t.Errorf("PCT=0.9 worst cell %v above PCT=0.5 worst %v", worst(c), worst(b))
	}
}

func TestX1DPAblationShape(t *testing.T) {
	bs, err := X1DPAblation(quick())
	if err != nil {
		t.Fatal(err)
	}
	dp := bs.Groups["DP-Laplace"]
	// DP revenue rises with epsilon (less noise).
	if dp[0].Mean >= dp[len(dp)-1].Mean {
		t.Errorf("DP revenue not increasing in epsilon: %v -> %v",
			dp[0].Mean, dp[len(dp)-1].Mean)
	}
	// MW is roughly flat and beats DP at small epsilon.
	mw := bs.Groups["MW"]
	if mw[0].Mean <= dp[0].Mean {
		t.Errorf("MW %v not above DP %v at eps=0.1", mw[0].Mean, dp[0].Mean)
	}
}

func TestX2ExPostShape(t *testing.T) {
	res, err := X2ExPost(quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.HonestRevenue <= 0 || res.ExAnteRevenue <= 0 {
		t.Fatalf("revenues: %+v", res)
	}
	// Under-reporting yields less revenue than honesty.
	if res.CheatRevenue >= res.HonestRevenue {
		t.Errorf("cheat revenue %v >= honest %v", res.CheatRevenue, res.HonestRevenue)
	}
	// Waits/deactivation starve the cheater of grants.
	if res.CheatGrants >= res.HonestGrants {
		t.Errorf("cheat grants %d >= honest grants %d", res.CheatGrants, res.HonestGrants)
	}
}

func TestX3WaitPeriodsShape(t *testing.T) {
	res, err := X3WaitPeriods(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bids) != 8 || len(res.Bound) != 8 || len(res.Stable) != 8 {
		t.Fatalf("result = %+v", res)
	}
	// Deeper losing bids never wait less (monotone non-increasing in
	// bid).
	for i := 1; i < len(res.Bids); i++ {
		if res.Bound[i] > res.Bound[i-1] {
			t.Errorf("Bound wait increased with bid: %v", res.Bound)
		}
		if res.Stable[i] > res.Stable[i-1] {
			t.Errorf("Stable wait increased with bid: %v", res.Stable)
		}
	}
	for i := range res.Bids {
		if res.Bound[i] <= 0 || res.Stable[i] <= 0 {
			t.Errorf("non-positive wait at %v", res.Bids[i])
		}
	}
}

func TestMarketIntegrationLedger(t *testing.T) {
	res, err := MarketIntegration(quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.Revenue <= 0 || res.Transactions == 0 {
		t.Fatalf("result = %+v", res)
	}
	var total float64
	for _, b := range res.SellerBalances {
		total += b
	}
	if math.Abs(total-res.Revenue) > 1e-6 {
		t.Fatalf("seller balances %v != revenue %v", total, res.Revenue)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Series != 100 || o.Panel != 50 || o.Seed != 2022 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestGrids(t *testing.T) {
	if len(PCTGrid()) != 10 || PCTGrid()[0] != 0 || PCTGrid()[9] != 0.9 {
		t.Fatalf("PCTGrid = %v", PCTGrid())
	}
	if len(EpochGrid()) != 5 {
		t.Fatalf("EpochGrid = %v", EpochGrid())
	}
	if BetaLabel(0) != "min" || BetaLabel(0.5) != "0.5" {
		t.Fatalf("BetaLabel broken")
	}
}

func TestX4InterleavingMechanism(t *testing.T) {
	res, err := X4Interleaving(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PCTs) != 10 || len(res.Interleaved) != 10 || len(res.Burst) != 10 {
		t.Fatalf("result shape: %+v", res)
	}
	// No strategic buyers: no collapsed epochs either way.
	if res.Interleaved[0] > 0.01 || res.Burst[0] > 0.01 {
		t.Errorf("collapsed epochs at PCT=0: %v / %v", res.Interleaved[0], res.Burst[0])
	}
	last := len(res.PCTs) - 1
	// Concurrent bidding lets low bids dominate a meaningful share of
	// epochs at high PCT...
	if res.Interleaved[last] < 0.1 {
		t.Errorf("interleaved collapse fraction %v too small at PCT=0.9", res.Interleaved[last])
	}
	// ...while bursts shorter than the epoch almost never do.
	if res.Burst[last] > res.Interleaved[last]/2 {
		t.Errorf("burst collapse %v not clearly below interleaved %v",
			res.Burst[last], res.Interleaved[last])
	}
	// Monotone-ish growth in PCT for the interleaved curve.
	if res.Interleaved[last] <= res.Interleaved[3] {
		t.Errorf("interleaved collapse not growing: %v", res.Interleaved)
	}
}

func TestX5AdaptiveGridHelpsCoarseBudgets(t *testing.T) {
	bs, err := X5AdaptiveGrid(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(bs.Xs) != 5 || len(bs.Order) != 2 {
		t.Fatalf("shape: %+v", bs.Xs)
	}
	// With a tight candidate budget the adaptive grid must beat fixed.
	if ad, fx := bs.Groups["adaptive"][0].Mean, bs.Groups["fixed"][0].Mean; ad <= fx {
		t.Errorf("n=4: adaptive %v not above fixed %v", ad, fx)
	}
	if ad, fx := bs.Groups["adaptive"][1].Mean, bs.Groups["fixed"][1].Mean; ad <= fx {
		t.Errorf("n=6: adaptive %v not above fixed %v", ad, fx)
	}
	// With a generous budget the two converge (within 15%).
	last := len(bs.Xs) - 1
	ad, fx := bs.Groups["adaptive"][last].Mean, bs.Groups["fixed"][last].Mean
	if ad < 0.85*fx || fx < 0.85*ad {
		t.Errorf("n=40: adaptive %v and fixed %v did not converge", ad, fx)
	}
}

func TestX6FixedShareHelpsUnderDrift(t *testing.T) {
	bs, err := X6DriftTracking(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(bs.Xs) != 4 || len(bs.Order) != 4 {
		t.Fatalf("shape: %v / %v", bs.Xs, bs.Order)
	}
	// Under strong persistence the optimal price drifts: fixed-share must
	// beat plain MW.
	idx99 := 2 // AR=0.99
	share := bs.Groups["MW+share"][idx99].Mean
	plain := bs.Groups["MW"][idx99].Mean
	if share <= plain {
		t.Errorf("AR=0.99: MW+share %v not above MW %v", share, plain)
	}
	// On a nearly stationary process plain MW is not meaningfully worse
	// than its drift-tracking variants (the mixing tax stays small).
	if plain0, share0 := bs.Groups["MW"][0].Mean, bs.Groups["MW+share"][0].Mean; share0 < 0.85*plain0 {
		t.Errorf("AR=0.5: share tax too large: %v vs %v", share0, plain0)
	}
}

func TestX7TimeShieldRemovesStrategicAdvantage(t *testing.T) {
	res, err := X7BestResponse(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Without Time-Shield, strategizing costs nothing: the strategic
	// group's utility is at least competitive with the truthful group's.
	advNo := res.StrategicAdvantageNoShield()
	advShield := res.StrategicAdvantageShield()
	// Claim 2's empirical content: waits shrink the strategic edge.
	if advShield >= advNo {
		t.Errorf("Time-Shield did not reduce the strategic advantage: %v -> %v", advNo, advShield)
	}
	// Waits starve strategic buyers of allocation opportunities.
	if res.StrategicWinsShield >= res.StrategicWinsNoShield {
		t.Errorf("strategic wins did not drop under Time-Shield: %d -> %d",
			res.StrategicWinsNoShield, res.StrategicWinsShield)
	}
	if res.RevenueShield <= 0 || res.RevenueNoShield <= 0 {
		t.Fatalf("revenues: %+v", res)
	}
}

func TestX7BehavioralChannelDominates(t *testing.T) {
	res, err := X7BestResponse(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Once buyers react to Time-Shield the way the user study documents
	// (RQ5: truthful after the first wait), the strategic edge collapses
	// far below the no-shield level.
	if res.StrategicAdvantageCautious() > 0.5*res.StrategicAdvantageNoShield() {
		t.Errorf("RQ5 reaction left edge %v vs no-shield %v",
			res.StrategicAdvantageCautious(), res.StrategicAdvantageNoShield())
	}
	// And the market recovers revenue relative to the stubborn arm.
	if res.RevenueCautious < res.RevenueShield {
		t.Errorf("revenue with reacting buyers %v below stubborn arm %v",
			res.RevenueCautious, res.RevenueShield)
	}
}
