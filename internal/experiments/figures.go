package experiments

import (
	"fmt"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/sim"
	"github.com/datamarket/shield/internal/stats"
	"github.com/datamarket/shield/internal/timeseries"
)

// truthfulSpec returns a PCT=0 spec at the default AR point.
func truthfulSpec(o Options, ar, sigma float64) sim.Spec {
	return sim.Spec{
		AR:        arConfig(ar, sigma),
		Strategic: timeseries.StrategicConfig{PCT: 0, Beta: 0, Horizon: 1, Floor: bidFloor},
		Series:    o.Series,
		BaseSeed:  o.Seed,
	}
}

// strategicSpec returns a spec with the given strategic triple, measured
// over the standard 250-bid observation window.
func strategicSpec(o Options, pct, beta float64, horizon int) sim.Spec {
	return sim.Spec{
		AR:        arConfig(0.1, 0.01),
		Strategic: timeseries.StrategicConfig{PCT: pct, Beta: beta, Horizon: horizon, Floor: bidFloor},
		Series:    o.Series,
		BaseSeed:  o.Seed,
		Window:    window,
	}
}

// Fig3a reproduces Figure 3a: normalized revenue of the offline-optimal
// posting price (Opt) and the MW engine across the paper's AR
// parameterizations (footnote 8), on truthful streams.
func Fig3a(o Options) (BoxSeries, error) {
	o = o.withDefaults()
	grid := timeseries.PaperARGrid()
	xs := make([]string, len(grid))
	for i, p := range grid {
		xs[i] = fmt.Sprintf("AR=%.3g", p[0])
	}
	col := newBoxCollector("AR", xs, []string{"Opt", "MW"})
	// Different AR coefficients produce valuation series with wildly
	// different total value (AR=0.999 wanders far from the mean), so
	// normalize within each AR point rather than across the figure.
	col.perX = true
	for i, p := range grid {
		results, err := sim.Run(truthfulSpec(o, p[0], p[1]), map[string]sim.PricerFactory{
			"Opt": sim.OptFactory(),
			"MW":  sim.EngineFactory(engineConfig(8)),
		})
		if err != nil {
			return BoxSeries{}, err
		}
		col.add("Opt", i, sim.Revenues(results["Opt"]))
		col.add("MW", i, sim.Revenues(results["MW"]))
	}
	return col.finish(), nil
}

// fig3 runs the Epoch-Shield sweep of Figures 3b/3c: epoch sizes against
// growing PCT with strategic buyers bidding the minimum over horizon H.
func fig3(o Options, measure func([]sim.Result) []float64) (BoxSeries, error) {
	o = o.withDefaults()
	pcts := PCTGrid()
	xs := make([]string, len(pcts))
	for i, p := range pcts {
		xs[i] = fmt.Sprintf("%.1f", p)
	}
	epochs := EpochGrid()
	order := make([]string, len(epochs))
	factories := make(map[string]sim.PricerFactory, len(epochs))
	for i, e := range epochs {
		name := fmt.Sprintf("E=%d", e)
		order[i] = name
		factories[name] = sim.EngineFactory(engineConfig(e))
	}
	col := newBoxCollector("PCT", xs, order)
	for i, pct := range pcts {
		results, err := sim.Run(strategicSpec(o, pct, 0, defaultH), factories)
		if err != nil {
			return BoxSeries{}, err
		}
		for name, rs := range results {
			col.add(name, i, measure(rs))
		}
	}
	return col.finish(), nil
}

// Fig3b reproduces Figure 3b: normalized revenue of epoch sizes
// E in {1,2,4,8,16} as PCT grows (strategic buyers bid the minimum).
func Fig3b(o Options) (BoxSeries, error) { return fig3(o, sim.Revenues) }

// Fig3c reproduces Figure 3c: normalized social surplus for the same
// sweep.
func Fig3c(o Options) (BoxSeries, error) { return fig3(o, sim.Surpluses) }

// Fig4a reproduces Figure 4a: normalized revenue of the draw rules — MW
// (the paper's Uncertainty-Shield implementation), MW-Max (deterministic,
// no protection), AdHoc (random neighborhood of the argmax), and Random —
// across epoch sizes on truthful streams.
func Fig4a(o Options) (BoxSeries, error) {
	o = o.withDefaults()
	epochs := EpochGrid()
	xs := make([]string, len(epochs))
	for i, e := range epochs {
		xs[i] = fmt.Sprintf("E=%d", e)
	}
	order := []string{"MW-Max", "MW", "AdHoc", "Random"}
	col := newBoxCollector("epoch", xs, order)
	// AdHoc must randomize over a neighborhood wide enough to provide
	// protection comparable to MW's weight-proportional sampling — a
	// +-1-step neighborhood would be predictable (no Uncertainty-Shield
	// at all). Width 6 of the 40-candidate grid (+-15% of the price
	// range) is the fair comparison.
	adhoc := engineConfig(0) // epoch filled per sweep point below
	adhoc.AdHocNeighborhood = 6
	for i, e := range epochs {
		adhocCfg := adhoc
		adhocCfg.EpochSize = e
		results, err := sim.Run(truthfulSpec(o, 0.1, 0.01), map[string]sim.PricerFactory{
			"MW-Max": sim.RuleFactory(engineConfig(e), core.DrawMWMax),
			"MW":     sim.RuleFactory(engineConfig(e), core.DrawMW),
			"AdHoc":  sim.RuleFactory(adhocCfg, core.DrawAdHoc),
			"Random": sim.RuleFactory(engineConfig(e), core.DrawRandom),
		})
		if err != nil {
			return BoxSeries{}, err
		}
		for name, rs := range results {
			col.add(name, i, sim.Revenues(rs))
		}
	}
	return col.finish(), nil
}

// fig4bc runs the Time-Shield sweep of Figures 4b/4c: E=8, strategic-bid
// beta against growing PCT.
func fig4bc(o Options, measure func([]sim.Result) []float64) (BoxSeries, error) {
	o = o.withDefaults()
	pcts := PCTGrid()
	xs := make([]string, len(pcts))
	for i, p := range pcts {
		xs[i] = fmt.Sprintf("%.1f", p)
	}
	betas := BetaGrid()
	order := make([]string, len(betas))
	for i, b := range betas {
		order[i] = BetaLabel(b)
	}
	col := newBoxCollector("PCT", xs, order)
	for i, pct := range pcts {
		for _, beta := range betas {
			results, err := sim.Run(strategicSpec(o, pct, beta, defaultH), map[string]sim.PricerFactory{
				"MW": sim.EngineFactory(engineConfig(8)),
			})
			if err != nil {
				return BoxSeries{}, err
			}
			col.add(BetaLabel(beta), i, measure(results["MW"]))
		}
	}
	return col.finish(), nil
}

// Fig4b reproduces Figure 4b: normalized revenue for different strategic
// bids beta as PCT increases (E=8). Time-Shield's effect is equivalent to
// raising beta, which raises revenue.
func Fig4b(o Options) (BoxSeries, error) { return fig4bc(o, sim.Revenues) }

// Fig4c reproduces Figure 4c: normalized social surplus for the same
// sweep.
func Fig4c(o Options) (BoxSeries, error) { return fig4bc(o, sim.Surpluses) }

// Fig5a reproduces Figure 5a: normalized revenue of the update
// algorithms avg, p50 (median), MW, and Opt as PCT increases.
func Fig5a(o Options) (BoxSeries, error) {
	o = o.withDefaults()
	pcts := PCTGrid()
	xs := make([]string, len(pcts))
	for i, p := range pcts {
		xs[i] = fmt.Sprintf("%.1f", p)
	}
	order := []string{"Opt", "MW", "avg", "p50"}
	col := newBoxCollector("PCT", xs, order)
	for i, pct := range pcts {
		results, err := sim.Run(strategicSpec(o, pct, 0, defaultH), map[string]sim.PricerFactory{
			"Opt": sim.OptFactory(),
			"MW":  sim.EngineFactory(engineConfig(8)),
			"avg": sim.EpochSummaryFactory(8, auction.AvgSummary, meanValuation),
			"p50": sim.EpochSummaryFactory(8, auction.MedianSummary, meanValuation),
		})
		if err != nil {
			return BoxSeries{}, err
		}
		for name, rs := range results {
			col.add(name, i, sim.Revenues(rs))
		}
	}
	return col.finish(), nil
}

// fig5Heatmap runs the horizon x beta revenue heat map at one PCT.
func fig5Heatmap(o Options, pct float64) (HeatmapResult, error) {
	o = o.withDefaults()
	horizons := []int{1, 2, 3, 4, 5, 6, 7, 8}
	betas := []float64{0, 0.25, 0.5, 0.75, 0.9}
	res := HeatmapResult{
		PCT:      pct,
		Horizons: horizons,
		Betas:    betas,
		Values:   make([][]float64, len(horizons)),
	}
	var max float64
	for hi, h := range horizons {
		res.Values[hi] = make([]float64, len(betas))
		for bi, beta := range betas {
			results, err := sim.Run(strategicSpec(o, pct, beta, h), map[string]sim.PricerFactory{
				"MW": sim.EngineFactory(engineConfig(8)),
			})
			if err != nil {
				return HeatmapResult{}, err
			}
			mean := stats.Mean(sim.Revenues(results["MW"]))
			res.Values[hi][bi] = mean
			if mean > max {
				max = mean
			}
		}
	}
	if max > 0 {
		for hi := range res.Values {
			for bi := range res.Values[hi] {
				res.Values[hi][bi] /= max
			}
		}
	}
	return res, nil
}

// Fig5b reproduces Figure 5b: normalized revenue as a function of
// horizon and strategic bid at PCT=0.5.
func Fig5b(o Options) (HeatmapResult, error) { return fig5Heatmap(o, 0.5) }

// Fig5c reproduces Figure 5c: the same at PCT=0.9.
func Fig5c(o Options) (HeatmapResult, error) { return fig5Heatmap(o, 0.9) }
