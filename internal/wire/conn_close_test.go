package wire

import (
	"context"
	"errors"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/datamarket/shield/internal/market"
)

// stallServer accepts wire connections, completes the handshake, then
// reads and discards frames without ever answering — a server that
// hangs mid-pipeline.
func stallServer(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				var hello [4]byte
				if _, err := io.ReadFull(conn, hello[:]); err != nil {
					return
				}
				answer := [4]byte{magic[0], magic[1], magic[2], Version}
				if _, err := conn.Write(answer[:]); err != nil {
					return
				}
				buf := make([]byte, 4<<10)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	return l.Addr().String()
}

// TestConnDeadlineBoundsStalledCall proves an in-flight request against
// a stalled server returns within its context deadline with an error
// that is both ErrConnClosed and context.DeadlineExceeded.
func TestConnDeadlineBoundsStalledCall(t *testing.T) {
	c, err := Dial(stallServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.SubmitBid(ctx, "b", "d", 10)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("bid against a stalled server succeeded")
	}
	if elapsed > 3*time.Second {
		t.Fatalf("call took %v, want bounded by the 100ms deadline", elapsed)
	}
	if !errors.Is(err, ErrConnClosed) {
		t.Errorf("error %v does not wrap ErrConnClosed", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v does not wrap context.DeadlineExceeded", err)
	}
	// The connection is sticky-dead with the same typed error.
	if err := c.Ping(context.Background()); !errors.Is(err, ErrConnClosed) {
		t.Errorf("follow-up call error %v, want sticky ErrConnClosed", err)
	}
}

// TestConnCancelInterruptsStalledCall proves cancellation of a
// deadline-less context interrupts an in-flight call promptly — the
// watcher path — without leaking its goroutine.
func TestConnCancelInterruptsStalledCall(t *testing.T) {
	c, err := Dial(stallServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The second connection backs the pre-canceled-context check below;
	// dialed up front so the server goroutines it spawns are part of the
	// goroutine baseline.
	c2, err := Dial(stallServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err = c.Ping(ctx)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("ping against a stalled server succeeded")
	}
	if elapsed > 3*time.Second {
		t.Fatalf("call took %v, want prompt return after the 50ms cancel", elapsed)
	}
	if !errors.Is(err, ErrConnClosed) || !errors.Is(err, context.Canceled) {
		t.Errorf("error %v, want ErrConnClosed wrapping context.Canceled", err)
	}
	// An already-dead context never touches the stream and does not
	// kill the connection.
	dead, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if err := c2.Ping(dead); !errors.Is(err, context.Canceled) || errors.Is(err, ErrConnClosed) {
		t.Errorf("pre-canceled context error %v, want bare context.Canceled", err)
	}

	// No watcher goroutines survive the calls.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines grew from %d to %d: watcher leak", before, n)
	}
}

// TestConnServerClosesMidPipeline hammers one shared connection from
// many goroutines while the server answers a few requests and then
// hangs up. Every in-flight and queued request must return promptly
// with an error wrapping ErrConnClosed (or a decided result), and no
// goroutine may be left behind.
func TestConnServerClosesMidPipeline(t *testing.T) {
	m := testMarket(t)
	if err := m.RegisterSeller("s"); err != nil {
		t.Fatal(err)
	}
	if err := m.UploadDataset("s", "d"); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterBuyer("b"); err != nil {
		t.Fatal(err)
	}
	s := NewServer(m)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		// Serve normally for a moment, then hang up mid-pipeline.
		go func() {
			time.Sleep(30 * time.Millisecond)
			conn.Close()
		}()
		_ = s.ServeConn(conn)
	}()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const callers = 32
	errs := make(chan error, callers)
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			for {
				if _, err := c.SubmitBid(ctx, "b", market.DatasetID("d"), 10); err != nil {
					var decided bool
					// Market-level rejections keep the connection alive;
					// keep going until the stream itself dies.
					if !errors.Is(err, ErrConnClosed) {
						decided = true
					}
					if !decided {
						errs <- err
						return
					}
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("callers still blocked 10s after the server hung up")
	}
	close(errs)
	n := 0
	for err := range errs {
		n++
		if !errors.Is(err, ErrConnClosed) {
			t.Errorf("caller error %v does not wrap ErrConnClosed", err)
		}
	}
	if n != callers {
		t.Errorf("%d callers reported a typed error, want %d", n, callers)
	}
}
