package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/journal"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/obs"
)

// TestHandshakeNegotiatesMinVersion drives raw hellos at the server and
// checks the answer is the smaller of the two sides' versions: a v1
// client still connects to this v2 server (and the connection runs v1
// framing), a from-the-future client is answered with our version, and
// a version-0 hello is refused.
func TestHandshakeNegotiatesMinVersion(t *testing.T) {
	cases := []struct {
		hello      byte
		want       byte
		refused    bool
		frameWorks bool
	}{
		{hello: 1, want: 1, frameWorks: true},
		{hello: Version, want: Version, frameWorks: true},
		{hello: Version + 5, want: Version, frameWorks: true},
		{hello: 0, want: 0, refused: true},
	}
	for _, tc := range cases {
		s := NewServer(testMarket(t))
		clientEnd, serverEnd := net.Pipe()
		errc := make(chan error, 1)
		go func() { errc <- s.ServeConn(serverEnd) }()

		hello := [4]byte{'S', 'H', 'W', tc.hello}
		if _, err := clientEnd.Write(hello[:]); err != nil {
			t.Fatal(err)
		}
		var answer [4]byte
		if _, err := io.ReadFull(clientEnd, answer[:]); err != nil {
			t.Fatalf("hello v%d: reading answer: %v", tc.hello, err)
		}
		if answer[3] != tc.want {
			t.Fatalf("hello v%d: server answered v%d, want v%d", tc.hello, answer[3], tc.want)
		}
		if tc.refused {
			if err := <-errc; !errors.Is(err, ErrHandshake) {
				t.Fatalf("hello v%d: server returned %v, want ErrHandshake", tc.hello, err)
			}
			clientEnd.Close()
			continue
		}
		// The negotiated connection must serve a plain v1 ping frame
		// regardless of which version was agreed (v1 framing is a subset
		// of v2).
		var req []byte
		req = binary.AppendUvarint(req, 1)
		req = append(req, kindQuery, qPing)
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(req)))
		if _, err := clientEnd.Write(append(hdr[:], req...)); err != nil {
			t.Fatal(err)
		}
		var respHdr [4]byte
		if _, err := io.ReadFull(clientEnd, respHdr[:]); err != nil {
			t.Fatalf("hello v%d: ping got no response: %v", tc.hello, err)
		}
		resp := make([]byte, binary.LittleEndian.Uint32(respHdr[:]))
		if _, err := io.ReadFull(clientEnd, resp); err != nil {
			t.Fatal(err)
		}
		r := &payloadReader{data: resp}
		if id := r.uvarint(); id != 1 || r.byte() != statusOK || !r.done() {
			t.Fatalf("hello v%d: ping response %x malformed", tc.hello, resp)
		}
		clientEnd.Close()
		<-errc
	}
}

// TestClientDowngradesAgainstV1Server fakes an old server that answers
// version 1 and asserts the client both records the downgrade and stops
// emitting the trace field — a v1 peer would misparse it as body bytes.
func TestClientDowngradesAgainstV1Server(t *testing.T) {
	clientEnd, serverEnd := net.Pipe()
	defer serverEnd.Close()

	kindSeen := make(chan byte, 1)
	go func() {
		var hello [4]byte
		if _, err := io.ReadFull(serverEnd, hello[:]); err != nil {
			return
		}
		answer := [4]byte{'S', 'H', 'W', 1}
		if _, err := serverEnd.Write(answer[:]); err != nil {
			return
		}
		var hdr [4]byte
		if _, err := io.ReadFull(serverEnd, hdr[:]); err != nil {
			return
		}
		payload := make([]byte, binary.LittleEndian.Uint32(hdr[:]))
		if _, err := io.ReadFull(serverEnd, payload); err != nil {
			return
		}
		r := &payloadReader{data: payload}
		id := r.uvarint()
		kindSeen <- r.byte()
		// Answer the ping so the round trip completes.
		var resp []byte
		resp = binary.AppendUvarint(resp, id)
		resp = append(resp, statusOK)
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(resp)))
		serverEnd.Write(append(hdr[:], resp...))
	}()

	c, err := NewConn(clientEnd)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if v := c.ProtocolVersion(); v != 1 {
		t.Fatalf("negotiated version %d, want 1", v)
	}

	// A context that would earn the trace field on a v2 connection.
	tel := obs.NewTelemetry()
	id := tel.Tracer.NewRequestID()
	tr := tel.Tracer.Begin(id, "client")
	ctx := obs.WithTrace(obs.WithRequestID(context.Background(), id), tr)
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping over downgraded connection: %v", err)
	}
	if kind := <-kindSeen; kind&kindTraceFlag != 0 {
		t.Fatalf("client sent the v2 trace flag (kind %#x) on a v1 connection", kind)
	}
}

// TestTracePropagatesAcrossWire sends a sampled request through an
// instrumented server and checks the server's ring holds a trace under
// the client's request ID, decomposed into the wire stages.
func TestTracePropagatesAcrossWire(t *testing.T) {
	m := testMarket(t)
	if err := m.RegisterSeller("s"); err != nil {
		t.Fatal(err)
	}
	if err := m.UploadDataset("s", "d"); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterBuyer("b"); err != nil {
		t.Fatal(err)
	}
	serverTel := obs.NewTelemetry()
	c := pipeClient(t, NewServer(m).WithTelemetry(serverTel))

	clientTel := obs.NewTelemetry()
	id := clientTel.Tracer.NewRequestID()
	tr := clientTel.Tracer.Begin(id, "client.bid")
	ctx := obs.WithTrace(obs.WithRequestID(context.Background(), id), tr)
	if _, err := c.SubmitBid(ctx, "b", "d", 5); err != nil {
		t.Fatal(err)
	}
	clientTel.Tracer.Finish(tr)

	// ServeConn finishes the trace after flushing the response, which
	// races with the client observing the response; wait briefly.
	var snap obs.TraceSnapshot
	ok := false
	for i := 0; i < 100 && !ok; i++ {
		snap, ok = serverTel.Tracer.Find(id)
		if !ok {
			time.Sleep(time.Millisecond)
		}
	}
	if !ok {
		t.Fatalf("server ring has no trace for propagated id %s", id)
	}
	if !strings.HasPrefix(snap.Name, "wire.") {
		t.Fatalf("server trace named %q, want wire.<op>", snap.Name)
	}
	stages := map[string]bool{}
	for _, s := range snap.Spans {
		stages[s.Name] = true
	}
	for _, want := range []string{"wire.read", "decode"} {
		if !stages[want] {
			t.Fatalf("server trace spans %v missing %q", snap.Spans, want)
		}
	}

	// An unsampled context (request ID, no trace) must not occupy a
	// server ring slot: the originator's sampling decision is
	// authoritative for propagated IDs.
	plainID := "req-unsampled-1"
	ctx = obs.WithRequestID(context.Background(), plainID)
	_, _ = c.SubmitBid(ctx, "b", "d", 5) // a wait-blocked bid still crosses the server
	time.Sleep(5 * time.Millisecond)
	if _, found := serverTel.Tracer.Find(plainID); found {
		t.Fatal("server traced a request whose originator did not sample it")
	}
}

// TestWireJournalCarriesPropagatedTrace closes the wire journaling gap
// end to end: a command driven over the wire against a journaled,
// instrumented backend lands in the journal stamped with the client's
// request ID — and an uninstrumented server keeps journal records
// trace-free, which is what keeps torture's wire twin byte-identical.
func TestWireJournalCarriesPropagatedTrace(t *testing.T) {
	run := func(t *testing.T, instrument bool, wantTrace string) {
		dir := t.TempDir()
		path := filepath.Join(dir, "journal.log")
		cfg := market.Config{
			Engine: core.Config{
				Candidates:    auction.LinearGrid(10, 100, 10),
				EpochSize:     4,
				BidsPerPeriod: 8,
				MinBid:        1,
			},
			Seed: 7,
		}
		jm, _, err := journal.OpenFile(cfg, path)
		if err != nil {
			t.Fatal(err)
		}
		defer jm.Close()
		s := NewServer(jm)
		if instrument {
			s.WithTelemetry(obs.NewTelemetry())
		}
		c := pipeClient(t, s)

		ctx := context.Background()
		if wantTrace != "" {
			ctx = obs.WithRequestID(ctx, wantTrace)
		}
		if err := c.RegisterSeller(ctx, "s"); err != nil {
			t.Fatal(err)
		}
		jm.Close()

		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		events, _, _, err := journal.Recover(f)
		if err != nil {
			t.Fatal(err)
		}
		// The journal opens with a genesis record; the command's event
		// follows it.
		var got *journal.Event
		for i := range events {
			if events[i].Op == "register_seller" {
				got = &events[i]
			}
		}
		if got == nil {
			t.Fatalf("no register_seller event among %d journal events", len(events))
		}
		if got.Trace != wantTrace {
			t.Fatalf("journaled trace %q, want %q", got.Trace, wantTrace)
		}
	}
	t.Run("instrumented", func(t *testing.T) { run(t, true, "req-client-77") })
	t.Run("uninstrumented", func(t *testing.T) { run(t, false, "") })
}
