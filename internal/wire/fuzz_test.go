package wire

import (
	"context"
	"encoding/binary"
	"testing"

	"github.com/datamarket/shield/internal/apierr"
	"github.com/datamarket/shield/internal/command"
)

// validCodes is the closed set of error codes a wire response may
// carry; FuzzWireDecode pins that no input invents a new one.
var validCodes = map[string]bool{
	apierr.CodeDuplicateID:     true,
	apierr.CodeUnknownBuyer:    true,
	apierr.CodeUnknownSeller:   true,
	apierr.CodeUnknownDataset:  true,
	apierr.CodeBadBid:          true,
	apierr.CodeBidTooSoon:      true,
	apierr.CodeBlockedUntil:    true,
	apierr.CodeAlreadyAcquired: true,
	apierr.CodeDatasetInUse:    true,
	apierr.CodeEmptyID:         true,
	apierr.CodeUnauthorized:    true,
	apierr.CodeBadRequest:      true,
	apierr.CodeInternal:        true,
}

// FuzzWireDecode throws arbitrary request payloads at the server's
// frame handler and pins its safety contract: it never panics, always
// produces a parseable response envelope, and every error envelope
// carries a code from the closed apierr set. Seeds cover each request
// kind, every query opcode, and each command opcode so mutation starts
// from structurally valid frames.
func FuzzWireDecode(f *testing.F) {
	seed := func(parts ...[]byte) {
		var p []byte
		for _, b := range parts {
			p = append(p, b...)
		}
		f.Add(p)
	}
	reqID := binary.AppendUvarint(nil, 9)

	// Every query opcode, with and without plausible arguments.
	for op := byte(0); op <= qTransactions+1; op++ {
		seed(reqID, []byte{kindQuery, op})
		seed(reqID, []byte{kindQuery, op}, appendString(nil, "d"))
		seed(reqID, []byte{kindQuery, op}, appendString(nil, "b"), appendString(nil, "d"))
	}

	// Every command through the real encoder.
	for _, cmd := range []command.Command{
		command.RegisterBuyer{Buyer: "b"},
		command.RegisterSeller{Seller: "s"},
		command.UploadDataset{Seller: "s", Dataset: "d"},
		command.ComposeDataset{Dataset: "c", Constituents: []command.DatasetID{"d"}},
		command.WithdrawDataset{Seller: "s", Dataset: "d"},
		command.SubmitBid{Buyer: "b", Dataset: "d", Amount: 42},
		command.BidBatch{Bids: []command.SubmitBid{{Buyer: "b", Dataset: "d", Amount: 1}}},
		command.Tick{},
		command.Settle{Buyer: "b", Dataset: "d", Amount: 1},
	} {
		enc, err := command.EncodeBinary(cmd)
		if err != nil {
			f.Fatal(err)
		}
		seed(reqID, []byte{kindCommand}, enc)
	}

	// Degenerate headers.
	seed(nil)
	seed([]byte{0x80}) // unterminated uvarint
	seed(reqID, []byte{0xFF})

	m := testMarket(f)
	if err := m.RegisterSeller("s"); err != nil {
		f.Fatal(err)
	}
	if err := m.UploadDataset("s", "d"); err != nil {
		f.Fatal(err)
	}
	if err := m.RegisterBuyer("b"); err != nil {
		f.Fatal(err)
	}
	s := NewServer(m)
	ctx := context.Background()

	f.Fuzz(func(t *testing.T, payload []byte) {
		resp, _ := s.handle(ctx, payload, nil, Version, 0)
		r := &payloadReader{data: resp}
		r.uvarint() // request id (possibly 0 when the header was garbage)
		status := r.byte()
		if r.err != nil {
			t.Fatalf("unparseable response envelope for %x", payload)
		}
		switch status {
		case statusOK:
		case statusErr:
			code := r.str()
			r.str() // message
			if r.err != nil {
				t.Fatalf("unparseable error envelope for %x", payload)
			}
			if !validCodes[code] {
				t.Fatalf("error code %q outside the closed set (payload %x)", code, payload)
			}
		default:
			t.Fatalf("response status %d for %x", status, payload)
		}
	})
}
