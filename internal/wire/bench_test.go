package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"testing"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/httpapi"
	"github.com/datamarket/shield/internal/market"
)

// The transport benchmarks drive the same workload — one bid, one tick,
// repeat — through the wire protocol and the HTTP/JSON API over real
// loopback TCP, so the delta is pure transport overhead: framing,
// header parsing, and JSON against length prefixes and binary fields.
// BENCH_6.json records both (make bench-save).

func benchMarket(tb testing.TB) *market.Market {
	tb.Helper()
	m, err := market.New(market.Config{
		Engine: core.Config{
			Candidates:    auction.LinearGrid(10, 100, 10),
			EpochSize:     8,
			BidsPerPeriod: 1000,
			MinBid:        1,
		},
		Seed:   42,
		Shards: 8,
	})
	if err != nil {
		tb.Fatal(err)
	}
	for _, err := range []error{
		m.RegisterSeller("s"), m.UploadDataset("s", "d"), m.RegisterBuyer("b"),
	} {
		if err != nil {
			tb.Fatal(err)
		}
	}
	return m
}

// Bid amount 5 sits below every candidate price on the 10..100 grid, so
// the bid loop never wins (a win would end with already_acquired); this
// mirrors the in-process losing-bid benchmark. A Time-Shield wait still
// blocks some periods, so on error the loop ticks and retries, exactly
// like the in-process runBids helper.

func BenchmarkTransportWireBid(b *testing.B) {
	m := benchMarket(b)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	s := NewServer(m)
	go func() { _ = s.Serve(l) }()
	c, err := Dial(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for {
			if _, err := c.SubmitBid(ctx, "b", "d", 5); err == nil {
				break
			}
			if _, err := c.Tick(ctx); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := c.Tick(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransportHTTPBid(b *testing.B) {
	m := benchMarket(b)
	srv := httptest.NewServer(httpapi.NewServer(m).Routes())
	defer srv.Close()
	client := srv.Client()

	post := func(path string, body []byte) error {
		resp, err := client.Post(srv.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 400 {
			return fmt.Errorf("%s: status %d", path, resp.StatusCode)
		}
		var sink json.RawMessage
		return json.NewDecoder(resp.Body).Decode(&sink)
	}

	b.ReportAllocs()
	b.ResetTimer()
	bid := []byte(`{"buyer":"b","dataset":"d","amount":5}`)
	for i := 0; i < b.N; i++ {
		for {
			if err := post("/v1/bids", bid); err == nil {
				break
			}
			if err := post("/v1/tick", []byte("{}")); err != nil {
				b.Fatal(err)
			}
		}
		if err := post("/v1/tick", []byte("{}")); err != nil {
			b.Fatal(err)
		}
	}
}

// The batch variants amortize transport framing over 64 bids per frame
// (or HTTP request), measuring the per-bid floor of each transport.
func benchBatchMarket(tb testing.TB, buyers int) (*market.Market, []market.BidRequest) {
	tb.Helper()
	m := benchMarket(tb)
	reqs := make([]market.BidRequest, buyers)
	for i := range reqs {
		id := market.BuyerID(fmt.Sprintf("batch-%d", i))
		if err := m.RegisterBuyer(id); err != nil {
			tb.Fatal(err)
		}
		reqs[i] = market.BidRequest{Buyer: id, Dataset: "d", Amount: 5}
	}
	return m, reqs
}

func BenchmarkTransportWireBatch(b *testing.B) {
	const buyers = 64
	m, reqs := benchBatchMarket(b, buyers)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	go func() { _ = NewServer(m).Serve(l) }()
	c, err := Dial(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.SubmitBids(ctx, reqs); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Tick(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(buyers), "bids/op")
}

func BenchmarkTransportHTTPBatch(b *testing.B) {
	const buyers = 64
	m, reqs := benchBatchMarket(b, buyers)
	srv := httptest.NewServer(httpapi.NewServer(m).Routes())
	defer srv.Close()
	client := srv.Client()

	type entry struct {
		Buyer   string  `json:"buyer"`
		Dataset string  `json:"dataset"`
		Amount  float64 `json:"amount"`
	}
	entries := make([]entry, len(reqs))
	for i, r := range reqs {
		entries[i] = entry{Buyer: string(r.Buyer), Dataset: string(r.Dataset), Amount: r.Amount}
	}
	body, err := json.Marshal(map[string]any{"bids": entries})
	if err != nil {
		b.Fatal(err)
	}

	post := func(path string, body []byte) error {
		resp, err := client.Post(srv.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 400 {
			return fmt.Errorf("%s: status %d", path, resp.StatusCode)
		}
		var sink json.RawMessage
		return json.NewDecoder(resp.Body).Decode(&sink)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := post("/v1/bids/batch", body); err != nil {
			b.Fatal(err)
		}
		if err := post("/v1/tick", []byte("{}")); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(buyers), "bids/op")
}
