package wire

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/command"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/httpapi"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/obs"
)

// The transport benchmarks drive the same workload — one bid, one tick,
// repeat — through the wire protocol and the HTTP/JSON API over real
// loopback TCP, so the delta is pure transport overhead: framing,
// header parsing, and JSON against length prefixes and binary fields.
// BENCH_6.json records both (make bench-save).

func benchMarket(tb testing.TB) *market.Market {
	tb.Helper()
	m, err := market.New(market.Config{
		Engine: core.Config{
			Candidates:    auction.LinearGrid(10, 100, 10),
			EpochSize:     8,
			BidsPerPeriod: 1000,
			MinBid:        1,
		},
		Seed:   42,
		Shards: 8,
	})
	if err != nil {
		tb.Fatal(err)
	}
	for _, err := range []error{
		m.RegisterSeller("s"), m.UploadDataset("s", "d"), m.RegisterBuyer("b"),
	} {
		if err != nil {
			tb.Fatal(err)
		}
	}
	return m
}

// Bid amount 5 sits below every candidate price on the 10..100 grid, so
// the bid loop never wins (a win would end with already_acquired); this
// mirrors the in-process losing-bid benchmark. A Time-Shield wait still
// blocks some periods, so on error the loop ticks and retries, exactly
// like the in-process runBids helper.

func BenchmarkTransportWireBid(b *testing.B) {
	m := benchMarket(b)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	s := NewServer(m)
	go func() { _ = s.Serve(l) }()
	c, err := Dial(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	b.ReportAllocs()
	b.ResetTimer()
	requests := 0
	for i := 0; i < b.N; i++ {
		for {
			requests++
			if _, err := c.SubmitBid(ctx, "b", "d", 5); err == nil {
				break
			}
			requests++
			if _, err := c.Tick(ctx); err != nil {
				b.Fatal(err)
			}
		}
		requests++
		if _, err := c.Tick(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(requests)/float64(b.N), "requests/op")
}

// BenchmarkTransportWireBidInstrumented is BenchmarkTransportWireBid
// against a metrics-instrumented server with tracing disabled (sampling
// 0) — the shape the server had before full-pipeline tracing landed.
// Request/stage histograms are hot; no request records spans, stamps
// exemplars or carries trace context. This is the baseline the tracing
// overhead in BENCH_8.json is measured against.
func BenchmarkTransportWireBidInstrumented(b *testing.B) {
	m := benchMarket(b)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	tel := &obs.Telemetry{Registry: obs.NewRegistry(), Tracer: obs.NewTracer(256, 0, 0)}
	m.Instrument(tel)
	s := NewServer(m).WithTelemetry(tel)
	go func() { _ = s.Serve(l) }()
	c, err := Dial(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	b.ReportAllocs()
	b.ResetTimer()
	requests := 0
	for i := 0; i < b.N; i++ {
		for {
			requests++
			if _, err := c.SubmitBid(ctx, "b", "d", 5); err == nil {
				break
			}
			requests++
			if _, err := c.Tick(ctx); err != nil {
				b.Fatal(err)
			}
		}
		requests++
		if _, err := c.Tick(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(requests)/float64(b.N), "requests/op")
}

// BenchmarkTransportWireBidTraced is BenchmarkTransportWireBidInstrumented
// with the full tracing path hot: sampling 1, so every request records
// spans, stage histogram exemplars, and commits a trace to the ring,
// and a client context propagating a sampled trace in every frame. The
// delta against BenchmarkTransportWireBidInstrumented is the cost of
// tracing itself (the metrics instrumentation is hot in both); benchsave
// records it in BENCH_8.json against the budget.
func BenchmarkTransportWireBidTraced(b *testing.B) {
	m := benchMarket(b)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	tel := obs.NewTelemetry()
	m.Instrument(tel)
	s := NewServer(m).WithTelemetry(tel)
	go func() { _ = s.Serve(l) }()
	c, err := Dial(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	clientTel := obs.NewTelemetry()

	b.ReportAllocs()
	b.ResetTimer()
	requests := 0
	for i := 0; i < b.N; i++ {
		id := clientTel.Tracer.NewRequestID()
		tr := clientTel.Tracer.Begin(id, "bench.bid")
		ctx := obs.WithRequestTrace(context.Background(), id, tr)
		for {
			requests++
			if _, err := c.SubmitBid(ctx, "b", "d", 5); err == nil {
				break
			}
			requests++
			if _, err := c.Tick(ctx); err != nil {
				b.Fatal(err)
			}
		}
		requests++
		if _, err := c.Tick(ctx); err != nil {
			b.Fatal(err)
		}
		clientTel.Tracer.Finish(tr)
	}
	b.ReportMetric(float64(requests)/float64(b.N), "requests/op")
}

// encodePayload builds one request payload (the bytes handle consumes:
// uvarint request id, kind byte, optional v2 trace field, command
// body) exactly as the client encodes it.
func encodePayload(tb testing.TB, reqID uint64, cmd command.Command, traceID string) []byte {
	tb.Helper()
	p := binary.AppendUvarint(nil, reqID)
	if traceID == "" {
		p = append(p, kindCommand)
	} else {
		p = append(p, kindCommand|kindTraceFlag)
		p = appendString(p, traceID)
		p = append(p, 1) // sampled
	}
	enc, err := command.EncodeBinary(cmd)
	if err != nil {
		tb.Fatal(err)
	}
	return append(p, enc...)
}

// benchBidPath measures the server-side wire bid path — handle() on
// pre-encoded bid and tick frames, exactly what ServeConn executes per
// request — without the loopback socket. Subtracting two socket-bound
// measurements to estimate a sub-microsecond tracing delta drowns the
// signal in scheduler noise; dropping the term that is identical in
// both variants (the socket) is the fair fix. The traced payloads
// carry the v2 trace field with the sampled bit, so the server adopts
// and records a trace per request, exactly as with a propagating
// client.
func benchBidPath(b *testing.B, sample int, traceID string) {
	m := benchMarket(b)
	tel := &obs.Telemetry{Registry: obs.NewRegistry(), Tracer: obs.NewTracer(256, sample, 0)}
	m.Instrument(tel)
	s := NewServer(m).WithTelemetry(tel)

	bid := encodePayload(b, 1, command.SubmitBid{Buyer: "b", Dataset: "d", Amount: 5}, traceID)
	tick := encodePayload(b, 2, command.Tick{}, traceID)
	ctx := context.Background()
	const readDur = time.Microsecond
	var resp []byte

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var tr *obs.Trace
		resp, tr = s.handle(ctx, bid, resp[:0], Version, readDur)
		tel.Tracer.Finish(tr)
		resp, tr = s.handle(ctx, tick, resp[:0], Version, readDur)
		tel.Tracer.Finish(tr)
	}
	b.ReportMetric(2, "requests/op")
}

// BenchmarkWireBidPathInstrumented is the PR-7 shape of the server-side
// bid path: metrics hot, tracing disabled, no trace field on the wire.
func BenchmarkWireBidPathInstrumented(b *testing.B) { benchBidPath(b, 0, "") }

// BenchmarkWireBidPathTraced is the same path with full tracing: every
// request carries a sampled trace field, so the server adopts the
// trace, records the span breakdown, stamps exemplars, and commits to
// the ring. The delta against BenchmarkWireBidPathInstrumented is the
// tracing overhead benchsave records in BENCH_8.json.
func BenchmarkWireBidPathTraced(b *testing.B) { benchBidPath(b, 1, "req-bench001") }

func BenchmarkTransportHTTPBid(b *testing.B) {
	m := benchMarket(b)
	srv := httptest.NewServer(httpapi.NewServer(m).Routes())
	defer srv.Close()
	client := srv.Client()

	post := func(path string, body []byte) error {
		resp, err := client.Post(srv.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 400 {
			return fmt.Errorf("%s: status %d", path, resp.StatusCode)
		}
		var sink json.RawMessage
		return json.NewDecoder(resp.Body).Decode(&sink)
	}

	b.ReportAllocs()
	b.ResetTimer()
	bid := []byte(`{"buyer":"b","dataset":"d","amount":5}`)
	for i := 0; i < b.N; i++ {
		for {
			if err := post("/v1/bids", bid); err == nil {
				break
			}
			if err := post("/v1/tick", []byte("{}")); err != nil {
				b.Fatal(err)
			}
		}
		if err := post("/v1/tick", []byte("{}")); err != nil {
			b.Fatal(err)
		}
	}
}

// The batch variants amortize transport framing over 64 bids per frame
// (or HTTP request), measuring the per-bid floor of each transport.
func benchBatchMarket(tb testing.TB, buyers int) (*market.Market, []market.BidRequest) {
	tb.Helper()
	m := benchMarket(tb)
	reqs := make([]market.BidRequest, buyers)
	for i := range reqs {
		id := market.BuyerID(fmt.Sprintf("batch-%d", i))
		if err := m.RegisterBuyer(id); err != nil {
			tb.Fatal(err)
		}
		reqs[i] = market.BidRequest{Buyer: id, Dataset: "d", Amount: 5}
	}
	return m, reqs
}

func BenchmarkTransportWireBatch(b *testing.B) {
	const buyers = 64
	m, reqs := benchBatchMarket(b, buyers)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	go func() { _ = NewServer(m).Serve(l) }()
	c, err := Dial(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.SubmitBids(ctx, reqs); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Tick(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(buyers), "bids/op")
}

func BenchmarkTransportHTTPBatch(b *testing.B) {
	const buyers = 64
	m, reqs := benchBatchMarket(b, buyers)
	srv := httptest.NewServer(httpapi.NewServer(m).Routes())
	defer srv.Close()
	client := srv.Client()

	type entry struct {
		Buyer   string  `json:"buyer"`
		Dataset string  `json:"dataset"`
		Amount  float64 `json:"amount"`
	}
	entries := make([]entry, len(reqs))
	for i, r := range reqs {
		entries[i] = entry{Buyer: string(r.Buyer), Dataset: string(r.Dataset), Amount: r.Amount}
	}
	body, err := json.Marshal(map[string]any{"bids": entries})
	if err != nil {
		b.Fatal(err)
	}

	post := func(path string, body []byte) error {
		resp, err := client.Post(srv.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 400 {
			return fmt.Errorf("%s: status %d", path, resp.StatusCode)
		}
		var sink json.RawMessage
		return json.NewDecoder(resp.Body).Decode(&sink)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := post("/v1/bids/batch", body); err != nil {
			b.Fatal(err)
		}
		if err := post("/v1/tick", []byte("{}")); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(buyers), "bids/op")
}
