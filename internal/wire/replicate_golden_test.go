package wire

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"flag"
	"io"
	"net"
	"os"
	"testing"
	"time"

	"github.com/datamarket/shield/internal/command"
)

var updateReplGolden = flag.Bool("update-replicate", false, "regenerate the replication wire fixtures")

// The byte-pinned replication session fixtures: everything the client
// sends (hello + subscribe request) and everything the server sends
// (hello + response + the first record frames) for a fixed workload.
// They freeze the v3 replication grammar on the wire — if either file
// needs regenerating, the protocol changed and every deployed follower
// needs a story.
const (
	goldenReplClientPath = "testdata/replicate_v3.client.bin"
	goldenReplServerPath = "testdata/replicate_v3.server.bin"
)

// goldenReplCommands is the fixed command stream behind the fixture:
// one of each early-lifecycle kind, encoded with command.EncodeBinary
// exactly as the leader journals them.
func goldenReplCommands() []command.Command {
	return []command.Command{
		command.RegisterSeller{Seller: "acme"},
		command.RegisterBuyer{Buyer: "alice"},
		command.UploadDataset{Seller: "acme", Dataset: "weather"},
		command.SubmitBid{Buyer: "alice", Dataset: "weather", Amount: 55},
	}
}

// scriptedSource is a ReplicationSource serving a fixed pre-encoded
// record stream — the golden session must not depend on journal or
// feed internals, only on the wire grammar.
type scriptedSource struct{ recs []RepRecord }

func (s scriptedSource) Subscribe(afterSeq int64) (Subscription, error) {
	ch := make(chan RepRecord, len(s.recs))
	for _, r := range s.recs {
		if r.Seq > afterSeq {
			ch <- r
		}
	}
	return Subscription{StartSeq: afterSeq, Records: ch, Cancel: func() {}}, nil
}

func (s scriptedSource) LeaderSeq() int64 { return s.recs[len(s.recs)-1].Seq }

// recordConn tees both directions of the server's end of the pipe:
// Reads capture client-to-server bytes, Writes server-to-client.
type recordConn struct {
	net.Conn
	c2s, s2c bytes.Buffer
}

func (c *recordConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.c2s.Write(p[:n])
	return n, err
}

func (c *recordConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.s2c.Write(p[:n])
	return n, err
}

// captureReplicationSession runs the golden session — handshake,
// subscribe from seq 0, stream the scripted records — against the real
// server and client and returns the raw bytes each side sent. The
// heartbeat interval is pinned high so no timer-driven frame can land
// in the capture.
func captureReplicationSession(t *testing.T) (c2s, s2c []byte) {
	t.Helper()
	var recs []RepRecord
	for i, cmd := range goldenReplCommands() {
		enc, err := command.EncodeBinary(cmd)
		if err != nil {
			t.Fatal(err)
		}
		seq := int64(i + 1)
		recs = append(recs, RepRecord{Seq: seq, Payload: AppendRecordFrame(nil, seq, enc)})
	}

	srvConn, cliConn := net.Pipe()
	rec := &recordConn{Conn: srvConn}
	srv := NewServer(testMarket(t)).
		WithReplication(scriptedSource{recs: recs}).
		WithHeartbeatInterval(time.Hour)
	done := make(chan struct{})
	go func() { _ = srv.ServeConn(rec); close(done) }()

	conn, err := NewConn(cliConn)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	st, err := conn.OpenReplication(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Snapshot != nil || st.StartSeq != 0 {
		t.Fatalf("golden session changed shape: snapshot=%v startSeq=%d", st.Snapshot != nil, st.StartSeq)
	}
	for i := range recs {
		fr, err := st.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if fr.Heartbeat || fr.Seq != int64(i+1) {
			t.Fatalf("golden record %d decoded as %+v", i+1, fr)
		}
	}
	conn.Close()
	<-done
	return rec.c2s.Bytes(), rec.s2c.Bytes()
}

// splitFrames parses a captured byte stream into its 4-byte handshake
// and the payloads of each length-prefixed frame.
func splitFrames(t *testing.T, raw []byte) (hello []byte, payloads [][]byte) {
	t.Helper()
	if len(raw) < 4 {
		t.Fatalf("stream too short for a handshake: %x", raw)
	}
	hello, raw = raw[:4], raw[4:]
	for len(raw) > 0 {
		if len(raw) < 4 {
			t.Fatalf("trailing bytes do not frame: %x", raw)
		}
		n := binary.LittleEndian.Uint32(raw[:4])
		raw = raw[4:]
		if uint32(len(raw)) < n {
			t.Fatalf("truncated frame: want %d bytes, have %d", n, len(raw))
		}
		payloads = append(payloads, raw[:n])
		raw = raw[n:]
	}
	return hello, payloads
}

// TestGoldenReplicationSession pins the replication handshake and first
// frames byte for byte. The checked-in fixtures are what a v3 leader
// and follower exchanged for the golden workload; the current code must
// still emit exactly those bytes (regenerate deliberately with
// -update-replicate), and the checked-in server stream must still
// decode record by record — which is the back-compat guarantee for
// followers reading a stream written by an older leader.
func TestGoldenReplicationSession(t *testing.T) {
	c2s, s2c := captureReplicationSession(t)
	if *updateReplGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenReplClientPath, c2s, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenReplServerPath, s2c, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("replication fixtures regenerated")
	}

	wantC2S, err := os.ReadFile(goldenReplClientPath)
	if err != nil {
		t.Fatal(err)
	}
	wantS2C, err := os.ReadFile(goldenReplServerPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c2s, wantC2S) {
		t.Errorf("client bytes drifted from the pinned session:\n got %x\nwant %x", c2s, wantC2S)
	}
	if !bytes.Equal(s2c, wantS2C) {
		t.Errorf("server bytes drifted from the pinned session:\n got %x\nwant %x", s2c, wantS2C)
	}

	// The client fixture: v3 hello, then exactly one subscribe request
	// (id 1, kindReplicate, afterSeq 0).
	hello, reqs := splitFrames(t, wantC2S)
	if !bytes.Equal(hello, []byte{'S', 'H', 'W', 3}) {
		t.Errorf("client hello %x, want SHW v3", hello)
	}
	if len(reqs) != 1 || !bytes.Equal(reqs[0], []byte{1, kindReplicate, 0}) {
		t.Errorf("subscribe request frames %x, want [01 03 00]", reqs)
	}

	// The server fixture: v3 hello, the tail-mode subscribe response,
	// then the golden records — each of which must still decode through
	// the current decoder to the command that produced it.
	hello, frames := splitFrames(t, wantS2C)
	if !bytes.Equal(hello, []byte{'S', 'H', 'W', 3}) {
		t.Errorf("server hello %x, want SHW v3", hello)
	}
	cmds := goldenReplCommands()
	if len(frames) != 1+len(cmds) {
		t.Fatalf("server stream carries %d frames, want %d", len(frames), 1+len(cmds))
	}
	if !bytes.Equal(frames[0], []byte{1, statusOK, 0, 0}) {
		t.Errorf("subscribe response %x, want [01 00 00 00] (id 1, ok, tail mode, startSeq 0)", frames[0])
	}
	lastSeq := int64(0)
	for i, payload := range frames[1:] {
		fr, err := DecodeReplicationFrame(payload, lastSeq)
		if err != nil {
			t.Fatalf("pinned record %d no longer decodes: %v", i+1, err)
		}
		lastSeq = fr.Seq
		want, err := command.EncodeBinary(cmds[i])
		if err != nil {
			t.Fatal(err)
		}
		got, err := command.EncodeBinary(fr.Cmd)
		if err != nil {
			t.Fatal(err)
		}
		if fr.Seq != int64(i+1) || !bytes.Equal(got, want) {
			t.Errorf("pinned record %d decoded to seq %d cmd %x, want seq %d cmd %x",
				i+1, fr.Seq, got, i+1, want)
		}
	}
}

// TestReplicateRejectedOnV2 pins downgrade behavior: a v2 client still
// handshakes against a replication-enabled v3 server, but a replicate
// request on the negotiated v2 connection is an ordinary bad-request
// error — never a stream — because v2 peers cannot speak the grammar.
func TestReplicateRejectedOnV2(t *testing.T) {
	srvConn, cliConn := net.Pipe()
	srv := NewServer(testMarket(t)).
		WithReplication(scriptedSource{recs: []RepRecord{{Seq: 1}}}).
		WithHeartbeatInterval(time.Hour)
	go func() { _ = srv.ServeConn(srvConn) }()
	defer cliConn.Close()

	bw := bufio.NewWriter(cliConn)
	br := bufio.NewReader(cliConn)
	if _, err := bw.Write([]byte{'S', 'H', 'W', 2}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	var answer [4]byte
	if _, err := io.ReadFull(br, answer[:]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(answer[:], []byte{'S', 'H', 'W', 2}) {
		t.Fatalf("v2 hello answered %x, want SHW v2", answer)
	}

	if err := writeFrame(bw, []byte{1, kindReplicate, 0}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	payload, err := readFrame(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := &payloadReader{data: payload}
	if id := r.uvarint(); id != 1 {
		t.Fatalf("response id %d, want 1", id)
	}
	if status := r.byte(); status != statusErr {
		t.Fatalf("v2 replicate request got status %d, want an error envelope", status)
	}
	if code := r.str(); code != "bad_request" {
		t.Fatalf("v2 replicate request refused with code %q, want bad_request", code)
	}
}
