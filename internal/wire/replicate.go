package wire

// Replication stream (protocol version 3).
//
// A follower opens an ordinary connection, handshakes, and sends one
// kindReplicate request:
//
//	request id (uvarint) | kindReplicate (1 byte) | afterSeq (uvarint)
//
// where afterSeq is the journal sequence number the follower has
// applied through (0 for an empty follower). The response decides the
// catch-up mode:
//
//	request id | statusOK | mode (1 byte) | startSeq (uvarint) | [snapshot]
//
// mode 1 (snapshot catch-up): the body carries the leader's canonical
// market snapshot (command.Snapshot JSON) representing the state after
// startSeq; the follower restores it and resumes from there. This is
// the one frame in the protocol allowed past MaxFrame, bounded by
// MaxSnapshotFrame. mode 0 (tail catch-up): no snapshot; startSeq
// echoes afterSeq and the missed records stream as ordinary record
// frames. A statusErr envelope (closed apierr code set) means the
// subscription was refused — replication not enabled, or the follower
// claims a seq ahead of the leader.
//
// After the response the stream is one-way, server to client, framed
// exactly like every other frame:
//
//	record:    repRecord (1 byte)    | seq (uvarint) | command.EncodeBinary bytes
//	heartbeat: repHeartbeat (1 byte) | leader seq (uvarint)
//
// Records carry strictly consecutive sequence numbers starting at
// startSeq+1 — the follower rejects anything else (ErrReplicaSeq)
// rather than guessing, because a gap or repeat means the stream can
// no longer prove state equality. Heartbeats flow during write silence
// so the follower can measure staleness against the leader's seq even
// when no commands commit. The subscriber sends nothing after the
// request; any client frame on an established stream is a protocol
// error and closes the connection. A follower that falls too far
// behind the source's buffer is dropped (its channel closes) and is
// expected to redial and catch up from a fresh snapshot.

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/datamarket/shield/internal/apierr"
	"github.com/datamarket/shield/internal/command"
)

// Replication stream frame types.
const (
	repRecord    byte = 1
	repHeartbeat byte = 2
)

// DefaultHeartbeat is how often an idle replication stream emits a
// leader-seq heartbeat unless the server overrides it.
const DefaultHeartbeat = 250 * time.Millisecond

// Closed decode error set for replication frames. Every failure of
// DecodeReplicationFrame wraps exactly one of these.
var (
	// ErrReplicaPayload reports a malformed replication frame: unknown
	// frame type, truncated header, or an undecodable command body.
	ErrReplicaPayload = errors.New("wire: malformed replication frame")
	// ErrReplicaSeq reports a sequencing violation: a record whose seq
	// is not exactly the follower's last applied seq + 1 (duplicates and
	// reorders both land here), or a heartbeat claiming the leader is
	// behind the follower.
	ErrReplicaSeq = errors.New("wire: replication sequence violation")
)

// RepRecord is one pre-encoded record a ReplicationSource hands the
// server: Payload is the complete record frame payload (repRecord type
// byte, seq, command bytes), encoded once and fanned out to every
// subscriber.
type RepRecord struct {
	Seq     int64
	Payload []byte
}

// RepFrame is one decoded replication stream frame. For records, Seq
// is the record's journal sequence number and Cmd its command; for
// heartbeats, Seq is the leader's current sequence number and Cmd nil.
type RepFrame struct {
	Heartbeat bool
	Seq       int64
	Cmd       command.Command
}

// Subscription is an attached replication consumer. Snapshot (nil in
// tail mode) is the leader's canonical state through StartSeq; Records
// delivers every record after StartSeq in order until Cancel is called
// or the source drops the subscriber (channel close) for falling
// behind.
type Subscription struct {
	Snapshot []byte
	StartSeq int64
	Records  <-chan RepRecord
	Cancel   func()
}

// ReplicationSource is the leader-side feed the wire server streams
// from; internal/replica.Feed implements it over the journal's commit
// hook.
type ReplicationSource interface {
	// Subscribe attaches a consumer that has applied the log through
	// afterSeq. The source decides tail versus snapshot catch-up; it
	// must refuse (error) an afterSeq ahead of its own history.
	Subscribe(afterSeq int64) (Subscription, error)
	// LeaderSeq is the newest committed sequence number, for heartbeats.
	LeaderSeq() int64
}

// AppendRecordFrame appends a record frame payload: cmd must be a
// command.EncodeBinary encoding.
func AppendRecordFrame(b []byte, seq int64, cmd []byte) []byte {
	b = append(b, repRecord)
	b = binary.AppendUvarint(b, uint64(seq))
	return append(b, cmd...)
}

// AppendHeartbeatFrame appends a heartbeat frame payload.
func AppendHeartbeatFrame(b []byte, leaderSeq int64) []byte {
	b = append(b, repHeartbeat)
	return binary.AppendUvarint(b, uint64(leaderSeq))
}

// DecodeReplicationFrame decodes one replication stream frame payload
// against the follower's last applied sequence number. It never
// panics, and every rejection wraps one of the closed error set:
// ErrReplicaPayload for malformed bytes, ErrReplicaSeq for records
// that are not exactly lastSeq+1 (out-of-order, duplicate, or gapped)
// and for heartbeats placing the leader behind the follower.
func DecodeReplicationFrame(payload []byte, lastSeq int64) (RepFrame, error) {
	r := &payloadReader{data: payload}
	switch t := r.byte(); {
	case r.err != nil:
		return RepFrame{}, fmt.Errorf("%w: empty frame", ErrReplicaPayload)
	case t == repRecord:
		seq := r.uvarint()
		if r.err != nil {
			return RepFrame{}, fmt.Errorf("%w: truncated record header", ErrReplicaPayload)
		}
		if seq > math.MaxInt64 {
			return RepFrame{}, fmt.Errorf("%w: sequence number overflows int64", ErrReplicaPayload)
		}
		cmd, err := command.DecodeBinary(r.rest())
		if err != nil {
			return RepFrame{}, fmt.Errorf("%w: record %d: %v", ErrReplicaPayload, seq, err)
		}
		if int64(seq) != lastSeq+1 {
			return RepFrame{}, fmt.Errorf("%w: got record seq %d, want %d", ErrReplicaSeq, seq, lastSeq+1)
		}
		return RepFrame{Seq: int64(seq), Cmd: cmd}, nil
	case t == repHeartbeat:
		seq := r.uvarint()
		if r.err != nil || !r.done() {
			return RepFrame{}, fmt.Errorf("%w: malformed heartbeat", ErrReplicaPayload)
		}
		if seq > math.MaxInt64 {
			return RepFrame{}, fmt.Errorf("%w: sequence number overflows int64", ErrReplicaPayload)
		}
		if int64(seq) < lastSeq {
			return RepFrame{}, fmt.Errorf("%w: heartbeat places leader at %d behind follower at %d", ErrReplicaSeq, seq, lastSeq)
		}
		return RepFrame{Heartbeat: true, Seq: int64(seq)}, nil
	default:
		return RepFrame{}, fmt.Errorf("%w: unknown frame type %d", ErrReplicaPayload, t)
	}
}

// WithReplication enables the kindReplicate request on this server,
// streaming from src. Must be called before the server accepts
// connections.
func (s *Server) WithReplication(src ReplicationSource) *Server {
	s.repl = src
	return s
}

// WithHeartbeatInterval overrides how often idle replication streams
// heartbeat (default DefaultHeartbeat). Tests pin it high to capture
// deterministic streams.
func (s *Server) WithHeartbeatInterval(d time.Duration) *Server {
	if d > 0 {
		s.heartbeat = d
	}
	return s
}

// serveReplication converts an established connection into a one-way
// replication stream, after ServeConn recognized a kindReplicate
// request. r is positioned after the kind byte; the reader goroutine
// keeps draining the socket so a peer close (or a protocol-violating
// client frame) surfaces through frames and ends the stream. Any
// return closes the connection — replication failures are never
// per-request errors, the follower redials.
func (s *Server) serveReplication(bw *bufio.Writer, frames <-chan frame, id uint64, r *payloadReader) error {
	refuse := func(code, msg string) error {
		resp := appendError(binary.AppendUvarint(nil, id), code, msg)
		if err := writeFrame(bw, resp); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		return fmt.Errorf("wire: replication refused: %s", msg)
	}
	after := r.uvarint()
	if r.err != nil || !r.done() || after > math.MaxInt64 {
		return refuse(apierr.CodeBadRequest, "malformed replicate request")
	}
	if s.repl == nil {
		return refuse(apierr.CodeBadRequest, "replication not enabled on this server")
	}
	sub, err := s.repl.Subscribe(int64(after))
	if err != nil {
		code, _ := apierr.Classify(err)
		return refuse(code, err.Error())
	}
	defer sub.Cancel()

	resp := binary.AppendUvarint(nil, id)
	resp = append(resp, statusOK)
	if sub.Snapshot != nil {
		resp = append(resp, 1)
	} else {
		resp = append(resp, 0)
	}
	resp = binary.AppendUvarint(resp, uint64(sub.StartSeq))
	resp = append(resp, sub.Snapshot...)
	if err := writeFrameLimit(bw, resp, MaxSnapshotFrame); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	hb := s.heartbeat
	if hb <= 0 {
		hb = DefaultHeartbeat
	}
	ticker := time.NewTicker(hb)
	defer ticker.Stop()
	var scratch []byte
	for {
		select {
		case rec, ok := <-sub.Records:
			if !ok {
				return errors.New("wire: replication subscriber fell behind and was dropped")
			}
			if err := writeFrame(bw, rec.Payload); err != nil {
				return err
			}
			// Drain the already-queued burst before paying for a flush.
			for n := len(sub.Records); n > 0; n-- {
				rec, ok = <-sub.Records
				if !ok {
					return errors.New("wire: replication subscriber fell behind and was dropped")
				}
				if err := writeFrame(bw, rec.Payload); err != nil {
					return err
				}
			}
			if err := bw.Flush(); err != nil {
				return err
			}
		case <-ticker.C:
			scratch = AppendHeartbeatFrame(scratch[:0], s.repl.LeaderSeq())
			if err := writeFrame(bw, scratch); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
		case f, ok := <-frames:
			if !ok {
				return nil // peer closed; clean end of stream
			}
			if f.err != nil {
				return f.err
			}
			return errors.New("wire: unexpected frame from replication subscriber")
		}
	}
}

// ReplicationStream is the client end of a replication subscription.
// After OpenReplication succeeds the connection belongs to the stream:
// no other Conn method may be called on it, and the only way to stop
// consuming is to close the connection.
type ReplicationStream struct {
	c *Conn
	// Snapshot, when non-nil, is the leader's canonical state through
	// StartSeq; the follower must restore it before applying records.
	Snapshot []byte
	// StartSeq is the stream's base: the first record frame carries
	// StartSeq+1.
	StartSeq int64
	lastSeq  int64
	buf      []byte
}

// OpenReplication subscribes this connection to the leader's
// replication stream from afterSeq — the newest journal sequence
// number the caller has applied, 0 for a fresh follower. The server
// chooses tail or snapshot catch-up; see the stream grammar at the top
// of this file. The context bounds only the subscribe round trip.
func (c *Conn) OpenReplication(ctx context.Context, afterSeq int64) (*ReplicationStream, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken != nil {
		return nil, c.broken
	}
	if c.version < 3 {
		return nil, fmt.Errorf("%w: server negotiated v%d, replication needs v3", ErrHandshake, c.version)
	}
	if afterSeq < 0 {
		return nil, fmt.Errorf("wire: negative afterSeq %d", afterSeq)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if deadline, ok := ctx.Deadline(); ok {
		if err := c.nc.SetDeadline(deadline); err != nil {
			return nil, c.fail(ctx, err)
		}
		defer c.nc.SetDeadline(time.Time{})
	}

	c.nextID++
	id := c.nextID
	req := binary.AppendUvarint(c.req[:0], id)
	req = append(req, kindReplicate)
	c.req = binary.AppendUvarint(req, uint64(afterSeq))
	if err := writeFrame(c.bw, c.req); err != nil {
		return nil, c.fail(ctx, err)
	}
	if err := c.bw.Flush(); err != nil {
		return nil, c.fail(ctx, err)
	}

	// A fresh buffer, not the scratch one: the snapshot escapes to the
	// caller and may be large.
	payload, err := readFrameLimit(c.br, nil, MaxSnapshotFrame)
	if err != nil {
		return nil, c.fail(ctx, err)
	}
	r := &payloadReader{data: payload}
	gotID := r.uvarint()
	status := r.byte()
	if r.err != nil {
		return nil, c.fail(ctx, errors.New("wire: malformed response envelope"))
	}
	if gotID != id {
		return nil, c.fail(ctx, fmt.Errorf("wire: response id %d for request %d", gotID, id))
	}
	switch status {
	case statusOK:
		mode := r.byte()
		start := r.uvarint()
		if r.err != nil || mode > 1 || start > math.MaxInt64 {
			return nil, c.fail(ctx, errors.New("wire: malformed replicate response"))
		}
		st := &ReplicationStream{c: c, StartSeq: int64(start), lastSeq: int64(start)}
		if mode == 1 {
			st.Snapshot = r.rest()
		} else if !r.done() {
			return nil, c.fail(ctx, errors.New("wire: unexpected body on tail-mode response"))
		}
		return st, nil
	case statusErr:
		code := r.str()
		msg := r.str()
		if r.err != nil {
			return nil, c.fail(ctx, errors.New("wire: malformed error envelope"))
		}
		return nil, &apierr.APIError{Code: code, Message: msg}
	default:
		return nil, c.fail(ctx, fmt.Errorf("wire: unknown response status %d", status))
	}
}

// Next blocks for the next stream frame, decoding and sequence-checking
// it (DecodeReplicationFrame). A context deadline bounds the wait;
// closing the connection from another goroutine unblocks it. Any error
// — transport, ErrReplicaPayload, ErrReplicaSeq — ends the stream; the
// caller closes the connection and redials to resubscribe.
func (st *ReplicationStream) Next(ctx context.Context) (RepFrame, error) {
	c := st.c
	if err := ctx.Err(); err != nil {
		return RepFrame{}, err
	}
	if deadline, ok := ctx.Deadline(); ok {
		if err := c.nc.SetDeadline(deadline); err != nil {
			return RepFrame{}, err
		}
		defer c.nc.SetDeadline(time.Time{})
	}
	payload, err := readFrame(c.br, st.buf)
	if err != nil {
		return RepFrame{}, err
	}
	st.buf = payload
	f, err := DecodeReplicationFrame(payload, st.lastSeq)
	if err != nil {
		return RepFrame{}, err
	}
	if !f.Heartbeat {
		st.lastSeq = f.Seq
	}
	return f, nil
}
