package wire_test

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"github.com/datamarket/shield/internal/command"
	"github.com/datamarket/shield/internal/torture"
	"github.com/datamarket/shield/internal/wire"
)

// FuzzReplicateDecode pins the replication stream decoder's safety
// contract: DecodeReplicationFrame never panics, accepts only records
// carrying exactly lastSeq+1 and heartbeats at or ahead of lastSeq, and
// every rejection wraps exactly one of the closed error set —
// ErrReplicaPayload for malformed bytes, ErrReplicaSeq for duplicates,
// reorders, gaps, and regressing heartbeats. Seeds cover realistic
// record frames built from the torture generator's command corpus plus
// the interesting sequencing violations, so mutation starts from
// structurally valid frames.
func FuzzReplicateDecode(f *testing.F) {
	corpus, err := torture.CommandCorpus(1, 200)
	if err != nil {
		f.Fatal(err)
	}
	seq := int64(0)
	for _, enc := range corpus {
		// The corpus mixes JSON and binary encodings; record frames
		// carry binary only, but both make useful seed bodies.
		if _, err := command.DecodeBinary(enc); err == nil {
			seq++
			f.Add(wire.AppendRecordFrame(nil, seq, enc), seq-1) // in order: accepted
			f.Add(wire.AppendRecordFrame(nil, seq, enc), seq)   // duplicate: ErrReplicaSeq
			f.Add(wire.AppendRecordFrame(nil, seq, enc), seq-2) // gap: ErrReplicaSeq
		} else {
			f.Add(wire.AppendRecordFrame(nil, 1, enc), int64(0)) // undecodable body
		}
	}
	f.Add(wire.AppendHeartbeatFrame(nil, 7), int64(7))               // current
	f.Add(wire.AppendHeartbeatFrame(nil, 9), int64(7))               // ahead
	f.Add(wire.AppendHeartbeatFrame(nil, 3), int64(7))               // regressing: ErrReplicaSeq
	f.Add([]byte(nil), int64(0))                                     // empty
	f.Add([]byte{0x7F}, int64(0))                                    // unknown frame type
	f.Add([]byte{1, 0x80}, int64(0))                                 // unterminated seq uvarint
	f.Add([]byte{2, 0x80}, int64(5))                                 // unterminated heartbeat
	f.Add(binary.AppendUvarint([]byte{1}, math.MaxUint64), int64(0)) // seq overflows int64

	f.Fuzz(func(t *testing.T, payload []byte, lastSeq int64) {
		fr, err := wire.DecodeReplicationFrame(payload, lastSeq)
		if err != nil {
			pay := errors.Is(err, wire.ErrReplicaPayload)
			seqv := errors.Is(err, wire.ErrReplicaSeq)
			if pay == seqv {
				t.Fatalf("error outside the closed set (payload=%t seq=%t): %v for %x", pay, seqv, err, payload)
			}
			return
		}
		if fr.Heartbeat {
			if fr.Cmd != nil {
				t.Fatalf("heartbeat carries a command: %+v for %x", fr, payload)
			}
			if fr.Seq < lastSeq {
				t.Fatalf("accepted heartbeat regressing the leader to %d behind %d for %x", fr.Seq, lastSeq, payload)
			}
			return
		}
		if fr.Cmd == nil {
			t.Fatalf("accepted record without a command: %+v for %x", fr, payload)
		}
		if fr.Seq != lastSeq+1 {
			t.Fatalf("accepted record seq %d after %d (only +1 is legal) for %x", fr.Seq, lastSeq, payload)
		}
	})
}
