// Package wire is the market's binary transport: length-prefixed,
// version-stamped frames over one persistent connection, carrying the
// command core's canonical binary encodings (command.EncodeBinary)
// straight into Market.Apply with none of HTTP's per-request framing,
// header parsing, or JSON marshalling.
//
// # Protocol
//
// A connection opens with a 4-byte handshake in each direction: the
// client sends the 3-byte magic "SHW" plus the highest protocol version
// it speaks; the server answers with the same magic plus the version
// the connection will use — the smaller of the two sides' versions — or
// version 0 (followed by close) if it cannot serve the client at all.
// A v1 client therefore still connects to a v2 server (the connection
// runs v1), and a v2 client accepts a v1 server's answer.
//
// After the handshake the stream is a sequence of frames in each
// direction. A frame is a uint32 little-endian payload length (at least
// 1, at most MaxFrame) followed by that many payload bytes.
//
// A request payload is:
//
//	request id (uvarint) | kind (1 byte) | [trace] | body
//
// where kind's low bits are kindCommand (1, body is one
// command.EncodeBinary encoding) or kindQuery (2, body is a query
// opcode byte followed by its arguments). On a version >= 2 connection
// the kind byte may carry the kindTraceFlag bit (0x80): the optional
// trace field then sits between kind and body —
//
//	trace id (uvarint-length string) | sampled (1 byte, 0 or 1)
//
// — propagating the caller's request ID and sampling decision so the
// server journals the same trace ID the client logged and continues a
// sampled trace across the process boundary. Requests without a trace
// context omit the field entirely, byte-identical to v1. A response
// payload is:
//
//	request id (uvarint, echoed) | status (1 byte) | body
//
// with status statusOK (0, body is the result whose shape the request
// kind determines) or statusErr (1, body is an error envelope: code
// then message, both uvarint-length-prefixed strings, the code drawn
// from the same closed set internal/apierr defines for the HTTP API and
// the root package re-exports as shield.ErrCode*).
//
// Version 3 adds one request kind, kindReplicate (3), which converts
// the connection into a one-way replication stream; see replicate.go
// for the stream grammar, catch-up semantics, and the follower-facing
// client API.
//
// Scalars reuse the command codec's conventions: strings are uvarint
// length + bytes, floats are little-endian IEEE-754 bits, money is the
// int64 micro count as little-endian uint64, counters are uvarints.
//
// # Pipelining
//
// Requests on one connection execute strictly in order and responses
// are written in the same order, so a client may stream any number of
// frames before reading the first response; request ids exist so a
// pipelining client can match responses without counting. The server
// decouples reading from execution and batches response flushes, so a
// deep pipeline pays for one syscall per burst, not per frame.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Version is the highest protocol version this package speaks. The
// handshake negotiates down to the smaller of the two sides' versions:
// v1 framing is a strict subset of v2 (v2 adds only the optional trace
// field, flagged on the kind byte), and v3 adds only the kindReplicate
// request, so either side can run the older grammar unchanged.
const Version byte = 3

// MaxFrame bounds a frame's payload length in both directions. It
// comfortably exceeds the largest legitimate frame (a multi-thousand-bid
// batch or a long transaction log) while keeping a hostile length prefix
// from provoking a giant allocation.
const MaxFrame = 1 << 20

// MaxSnapshotFrame bounds the one oversized frame in the protocol: the
// replication subscribe response, which may embed a full market
// snapshot. Only that single response frame gets this limit; every
// other frame in both directions stays under MaxFrame.
const MaxSnapshotFrame = 64 << 20

// magic opens the handshake in both directions.
var magic = [3]byte{'S', 'H', 'W'}

// Request kinds. The high bit of the kind byte is the version >= 2
// trace flag; the low bits select the kind.
const (
	kindCommand byte = 1
	kindQuery   byte = 2
	// kindReplicate (version >= 3) converts the connection into a
	// replication stream; its body is the subscriber's last applied
	// sequence number as a uvarint. See replicate.go.
	kindReplicate byte = 3

	// kindTraceFlag marks a request carrying the optional trace field
	// (trace id + sampled bit) between the kind byte and the body.
	kindTraceFlag byte = 0x80
)

// Response statuses.
const (
	statusOK  byte = 0
	statusErr byte = 1
)

// Query opcodes. Queries are reads: they bypass the command codec (reads
// are not commands and are never journaled) and address the market's
// lock-free views directly.
const (
	qPing         byte = 1
	qPeriod       byte = 2
	qDatasets     byte = 3
	qStats        byte = 4
	qBalance      byte = 5
	qWait         byte = 6
	qTransactions byte = 7
)

// ErrFrameTooLarge reports a frame whose length prefix exceeds MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// ErrConnClosed reports a client connection whose stream has failed —
// the server closed it (shutdown, crash, mid-pipeline hangup), an I/O
// deadline expired, or the response stream desynchronized. Every call
// on the connection from the first failure on, including calls already
// queued behind the failing one, returns an error wrapping this
// sentinel (and, when a context deadline or cancellation caused the
// failure, that context's error too): the connection must be closed
// and redialed.
var ErrConnClosed = errors.New("wire: connection unusable")

// ErrHandshake reports a malformed or version-incompatible handshake.
var ErrHandshake = errors.New("wire: handshake failed")

// writeFrame writes one length-prefixed frame. The caller flushes.
func writeFrame(w *bufio.Writer, payload []byte) error {
	return writeFrameLimit(w, payload, MaxFrame)
}

// writeFrameLimit is writeFrame with an explicit payload bound — the
// replication subscribe response is the one frame allowed past
// MaxFrame (up to MaxSnapshotFrame).
func writeFrameLimit(w *bufio.Writer, payload []byte, limit int) error {
	if len(payload) == 0 || len(payload) > limit {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame's payload, appending into buf (sliced to
// zero length) so a long-lived connection reuses one buffer. A zero or
// oversized length prefix is a protocol error that poisons the stream;
// the caller must close the connection.
func readFrame(r *bufio.Reader, buf []byte) ([]byte, error) {
	return readFrameLimit(r, buf, MaxFrame)
}

// readFrameLimit is readFrame with an explicit payload bound; see
// writeFrameLimit.
func readFrameLimit(r *bufio.Reader, buf []byte, limit int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > uint32(limit) {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// --- scalar codec (the command binary codec's conventions) ---

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendFloat(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

func appendInt64(b []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(v))
}

// errTruncated is the closed parse error for wire payloads.
var errTruncated = errors.New("wire: truncated payload")

// payloadReader cursors over one frame payload. Every read is bounded
// by the remaining input, mirroring the command codec's binReader: a
// corrupted length never provokes a large allocation, and the first
// failure sticks.
type payloadReader struct {
	data []byte
	err  error
}

func (r *payloadReader) fail() {
	if r.err == nil {
		r.err = errTruncated
	}
}

func (r *payloadReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *payloadReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.data) < 1 {
		r.fail()
		return 0
	}
	b := r.data[0]
	r.data = r.data[1:]
	return b
}

func (r *payloadReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.data)) {
		r.fail()
		return ""
	}
	s := string(r.data[:n])
	r.data = r.data[n:]
	return s
}

func (r *payloadReader) float() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.data) < 8 {
		r.fail()
		return 0
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(r.data))
	r.data = r.data[8:]
	return f
}

func (r *payloadReader) int64() int64 {
	if r.err != nil {
		return 0
	}
	if len(r.data) < 8 {
		r.fail()
		return 0
	}
	v := int64(binary.LittleEndian.Uint64(r.data))
	r.data = r.data[8:]
	return v
}

// rest returns the unconsumed remainder of the payload.
func (r *payloadReader) rest() []byte { return r.data }

// done reports whether the payload parsed cleanly to its end.
func (r *payloadReader) done() bool { return r.err == nil && len(r.data) == 0 }
