package wire

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"testing"

	"github.com/datamarket/shield/internal/apierr"
	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/command"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/obs"
)

func testMarket(t testing.TB) *market.Market {
	t.Helper()
	m, err := market.New(market.Config{
		Engine: core.Config{
			Candidates:    auction.LinearGrid(10, 100, 10),
			EpochSize:     4,
			BidsPerPeriod: 8,
			MinBid:        1,
		},
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// pipeClient starts a server over b on one end of a net.Pipe and
// returns a client Conn on the other.
func pipeClient(t testing.TB, s *Server) *Conn {
	t.Helper()
	clientEnd, serverEnd := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.ServeConn(serverEnd)
	}()
	c, err := NewConn(clientEnd)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		<-done
	})
	return c
}

func TestRoundTrip(t *testing.T) {
	m := testMarket(t)
	c := pipeClient(t, NewServer(m))
	ctx := context.Background()

	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if err := c.RegisterSeller(ctx, "s"); err != nil {
		t.Fatal(err)
	}
	if err := c.UploadDataset(ctx, "s", "d1"); err != nil {
		t.Fatal(err)
	}
	if err := c.UploadDataset(ctx, "s", "d2"); err != nil {
		t.Fatal(err)
	}
	if err := c.ComposeDataset(ctx, "combo", "d1", "d2"); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterBuyer(ctx, "b"); err != nil {
		t.Fatal(err)
	}

	d, err := c.SubmitBid(ctx, "b", "d1", 55)
	if err != nil {
		t.Fatal(err)
	}

	p, err := c.Tick(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Period(); got != p {
		t.Fatalf("tick returned %d, market at %d", p, got)
	}

	ids, err := c.Datasets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("datasets = %v, want 3", ids)
	}

	st, err := c.Stats(ctx, "d1")
	if err != nil {
		t.Fatal(err)
	}
	mst, _ := m.Stats("d1")
	if st != mst {
		t.Fatalf("stats over wire %+v != in-process %+v", st, mst)
	}

	bal, err := c.SellerBalance(ctx, "s")
	if err != nil {
		t.Fatal(err)
	}
	mbal, _ := m.SellerBalance("s")
	if bal != mbal {
		t.Fatalf("balance over wire %v != in-process %v", bal, mbal)
	}

	wait, err := c.WaitRemaining(ctx, "b", "d1")
	if err != nil {
		t.Fatal(err)
	}
	mwait, _ := m.WaitRemaining("b", "d1")
	if wait != mwait {
		t.Fatalf("wait over wire %d != in-process %d", wait, mwait)
	}

	txs, err := c.Transactions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	mtxs := m.Transactions()
	if len(txs) != len(mtxs) {
		t.Fatalf("transactions over wire %v != in-process %v", txs, mtxs)
	}
	for i := range txs {
		if txs[i] != mtxs[i] {
			t.Fatalf("tx %d over wire %+v != in-process %+v", i, txs[i], mtxs[i])
		}
	}
	if !d.Allocated && d.WaitPeriods == 0 {
		t.Fatalf("losing decision with no wait: %+v", d)
	}
}

// TestErrorsMirrorInProcess pins the error contract: a failed operation
// over the wire yields an *apierr.APIError whose code matches Classify
// and whose Error() is byte-identical to the in-process error string.
func TestErrorsMirrorInProcess(t *testing.T) {
	m := testMarket(t)
	twin := testMarket(t)
	c := pipeClient(t, NewServer(m))
	ctx := context.Background()

	for _, setup := range []func() error{
		func() error { return m.RegisterSeller("s") },
		func() error { return twin.RegisterSeller("s") },
		func() error { return m.UploadDataset("s", "d") },
		func() error { return twin.UploadDataset("s", "d") },
		func() error { return m.RegisterBuyer("b") },
		func() error { return twin.RegisterBuyer("b") },
	} {
		if err := setup(); err != nil {
			t.Fatal(err)
		}
	}

	cases := []struct {
		name     string
		wire     func() error
		local    func() error
		wantCode string
	}{
		{"unknown buyer",
			func() error { _, err := c.SubmitBid(ctx, "ghost", "d", 5); return err },
			func() error { _, err := twin.SubmitBid("ghost", "d", 5); return err },
			apierr.CodeUnknownBuyer},
		{"unknown dataset",
			func() error { _, err := c.SubmitBid(ctx, "b", "ghost", 5); return err },
			func() error { _, err := twin.SubmitBid("b", "ghost", 5); return err },
			apierr.CodeUnknownDataset},
		{"bad bid",
			func() error { _, err := c.SubmitBid(ctx, "b", "d", -1); return err },
			func() error { _, err := twin.SubmitBid("b", "d", -1); return err },
			apierr.CodeBadBid},
		{"duplicate seller",
			func() error { return c.RegisterSeller(ctx, "s") },
			func() error { return twin.RegisterSeller("s") },
			apierr.CodeDuplicateID},
		{"unknown stats",
			func() error { _, err := c.Stats(ctx, "ghost"); return err },
			func() error { _, err := twin.Stats("ghost"); return err },
			apierr.CodeUnknownDataset},
	}
	for _, tc := range cases {
		werr := tc.wire()
		lerr := tc.local()
		if werr == nil || lerr == nil {
			t.Fatalf("%s: wire err %v, local err %v", tc.name, werr, lerr)
		}
		var api *apierr.APIError
		if !errors.As(werr, &api) {
			t.Fatalf("%s: wire error is %T, want *apierr.APIError", tc.name, werr)
		}
		if api.Code != tc.wantCode {
			t.Fatalf("%s: code %q, want %q", tc.name, api.Code, tc.wantCode)
		}
		if werr.Error() != lerr.Error() {
			t.Fatalf("%s: wire message %q != in-process %q", tc.name, werr.Error(), lerr.Error())
		}
	}

	// Settle is in the codec but not a market command.
	if err := c.applyVoid(ctx, command.Settle{Buyer: "b", Dataset: "d", Amount: 5}); err == nil {
		t.Fatal("settle over wire succeeded, want error")
	} else {
		var api *apierr.APIError
		if !errors.As(err, &api) || api.Code != apierr.CodeBadRequest {
			t.Fatalf("settle error %v, want bad_request envelope", err)
		}
	}
}

func TestBatchPerEntryEnvelopes(t *testing.T) {
	m := testMarket(t)
	c := pipeClient(t, NewServer(m))
	ctx := context.Background()

	for _, err := range []error{
		m.RegisterSeller("s"), m.UploadDataset("s", "d"), m.RegisterBuyer("b"),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.SubmitBids(ctx, []market.BidRequest{
		{Buyer: "b", Dataset: "d", Amount: 50},
		{Buyer: "ghost", Dataset: "d", Amount: 50},
		{Buyer: "b", Dataset: "d", Amount: 50}, // same period: bid_too_soon
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(res))
	}
	if res[0].Err != nil {
		t.Fatalf("entry 0 failed: %v", res[0].Err)
	}
	var api *apierr.APIError
	if !errors.As(res[1].Err, &api) || api.Code != apierr.CodeUnknownBuyer {
		t.Fatalf("entry 1 error %v, want unknown_buyer", res[1].Err)
	}
	if !errors.As(res[2].Err, &api) || api.Code != apierr.CodeBidTooSoon {
		t.Fatalf("entry 2 error %v, want bid_too_soon", res[2].Err)
	}
}

// TestPipelining streams a burst of raw frames before reading any
// response and checks every response comes back, in order, with the
// matching request id.
func TestPipelining(t *testing.T) {
	m := testMarket(t)
	if err := m.RegisterSeller("s"); err != nil {
		t.Fatal(err)
	}
	if err := m.UploadDataset("s", "d"); err != nil {
		t.Fatal(err)
	}
	s := NewServer(m)
	clientEnd, serverEnd := net.Pipe()
	go func() { _ = s.ServeConn(serverEnd) }()
	defer clientEnd.Close()

	bw := bufio.NewWriter(clientEnd)
	br := bufio.NewReader(clientEnd)
	hello := [4]byte{'S', 'H', 'W', Version}
	if _, err := bw.Write(hello[:]); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	var answer [4]byte
	if _, err := io.ReadFull(br, answer[:]); err != nil {
		t.Fatal(err)
	}

	const depth = 40
	var wrote sync.WaitGroup
	wrote.Add(1)
	go func() {
		defer wrote.Done()
		for i := 1; i <= depth; i++ {
			enc, err := command.EncodeBinary(command.RegisterBuyer{Buyer: market.BuyerID(string(rune('A' + i)))})
			if err != nil {
				t.Error(err)
				return
			}
			payload := binary.AppendUvarint(nil, uint64(i))
			payload = append(payload, kindCommand)
			payload = append(payload, enc...)
			if err := writeFrame(bw, payload); err != nil {
				t.Error(err)
				return
			}
		}
		if err := bw.Flush(); err != nil {
			t.Error(err)
		}
	}()

	for i := 1; i <= depth; i++ {
		payload, err := readFrame(br, nil)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		r := &payloadReader{data: payload}
		id := r.uvarint()
		status := r.byte()
		if r.err != nil {
			t.Fatalf("response %d: malformed", i)
		}
		if id != uint64(i) {
			t.Fatalf("response %d carries id %d", i, id)
		}
		if status != statusOK {
			t.Fatalf("response %d: status %d", i, status)
		}
	}
	wrote.Wait()
}

func TestHandshakeRejectsOldVersion(t *testing.T) {
	s := NewServer(testMarket(t))
	clientEnd, serverEnd := net.Pipe()
	errc := make(chan error, 1)
	go func() { errc <- s.ServeConn(serverEnd) }()
	defer clientEnd.Close()

	hello := [4]byte{'S', 'H', 'W', 0}
	if _, err := clientEnd.Write(hello[:]); err != nil {
		t.Fatal(err)
	}
	var answer [4]byte
	if _, err := io.ReadFull(clientEnd, answer[:]); err != nil {
		t.Fatal(err)
	}
	if answer[3] != 0 {
		t.Fatalf("server accepted version 0 with %d", answer[3])
	}
	if err := <-errc; !errors.Is(err, ErrHandshake) {
		t.Fatalf("server returned %v, want ErrHandshake", err)
	}
}

func TestHandshakeRejectsBadMagic(t *testing.T) {
	s := NewServer(testMarket(t))
	clientEnd, serverEnd := net.Pipe()
	errc := make(chan error, 1)
	go func() { errc <- s.ServeConn(serverEnd) }()
	defer clientEnd.Close()

	if _, err := clientEnd.Write([]byte("GET ")); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; !errors.Is(err, ErrHandshake) {
		t.Fatalf("server returned %v, want ErrHandshake", err)
	}
}

// TestMalformedFrameKeepsConnection sends a garbage request payload and
// checks the connection survives: the bad frame earns an error envelope
// and the next request still works.
func TestMalformedFrameKeepsConnection(t *testing.T) {
	m := testMarket(t)
	c := pipeClient(t, NewServer(m))
	ctx := context.Background()

	if err := c.roundTrip(ctx, 0xFF, func(req []byte) []byte {
		return append(req, 0xDE, 0xAD)
	}, nil); err == nil {
		t.Fatal("garbage request succeeded")
	} else {
		var api *apierr.APIError
		if !errors.As(err, &api) || api.Code != apierr.CodeBadRequest {
			t.Fatalf("garbage request error %v, want bad_request", err)
		}
	}
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("connection dead after malformed frame: %v", err)
	}
}

func TestOversizedFrameClosesConnection(t *testing.T) {
	s := NewServer(testMarket(t))
	clientEnd, serverEnd := net.Pipe()
	errc := make(chan error, 1)
	go func() { errc <- s.ServeConn(serverEnd) }()
	defer clientEnd.Close()

	hello := [4]byte{'S', 'H', 'W', Version}
	if _, err := clientEnd.Write(hello[:]); err != nil {
		t.Fatal(err)
	}
	var answer [4]byte
	if _, err := io.ReadFull(clientEnd, answer[:]); err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := clientEnd.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("server returned %v, want ErrFrameTooLarge", err)
	}
}

// TestConcurrentClients drives one server from many goroutines sharing
// one Conn plus several private Conns, under the race detector.
func TestConcurrentClients(t *testing.T) {
	m := testMarket(t)
	if err := m.RegisterSeller("s"); err != nil {
		t.Fatal(err)
	}
	if err := m.UploadDataset("s", "d"); err != nil {
		t.Fatal(err)
	}
	s := NewServer(m).WithTelemetry(obs.NewTelemetry())

	shared := pipeClient(t, s)
	conns := []*Conn{shared, pipeClient(t, s), shared, pipeClient(t, s)}
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < len(conns); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := conns[g]
			buyer := market.BuyerID(string(rune('a' + g)))
			if err := c.RegisterBuyer(ctx, buyer); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 20; i++ {
				if _, err := c.SubmitBid(ctx, buyer, "d", 30); err != nil {
					var api *apierr.APIError
					if !errors.As(err, &api) {
						t.Errorf("bid: %v", err)
						return
					}
				}
				if _, err := c.Period(ctx); err != nil {
					t.Errorf("period: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
