package wire

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"github.com/datamarket/shield/internal/apierr"
	"github.com/datamarket/shield/internal/command"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/obs"
)

// Backend is the market surface the wire server drives. Both
// *market.Market and *journal.Market satisfy it: commands flow through
// ApplyCtx (journaled on a journaled backend), batches through
// SubmitBidsCtx (per-entry results, journaled successes), and queries
// through the lock-free read views.
type Backend interface {
	ApplyCtx(ctx context.Context, cmd command.Command) ([]command.Event, error)
	SubmitBidsCtx(ctx context.Context, reqs []market.BidRequest) []market.BidResult

	Period() int
	Datasets() []market.DatasetID
	Stats(dataset market.DatasetID) (market.DatasetStats, error)
	SellerBalance(id market.SellerID) (market.Money, error)
	WaitRemaining(buyer market.BuyerID, dataset market.DatasetID) (int, error)
	Transactions() []market.Transaction
}

// Server serves the wire protocol over persistent connections.
type Server struct {
	b Backend

	bufSize int

	// repl, when set (WithReplication), serves kindReplicate requests;
	// heartbeat overrides the idle stream heartbeat interval.
	repl      ReplicationSource
	heartbeat time.Duration

	tel     *obs.Telemetry
	latency *obs.Vec[*obs.Histogram]
	conns   *obs.Gauge

	// latencyBy pre-binds the latency series for the closed op/status
	// set, so the per-request lookup is one map read instead of a label
	// join through the Vec.
	latencyBy map[opStatus]*obs.Histogram

	// Pre-bound shield_stage_seconds series for the wire stages of the
	// durable-bid pipeline; nil on an uninstrumented server.
	stageRead   *obs.Histogram // wire.read: frame payload off the socket
	stageDecode *obs.Histogram // decode: binary command decode
	stageFlush  *obs.Histogram // ack.flush: response buffer to the socket
}

// NewServer returns a wire server over b.
func NewServer(b Backend) *Server {
	return &Server{b: b, bufSize: DefaultBufferSize}
}

// WithBufferSize sets the per-connection read and write buffer size in
// bytes (default DefaultBufferSize). Rigs holding thousands of
// connections in one process shrink it — two 64KiB buffers per
// connection is 128MiB at 1k connections before a single frame flows.
// Sizes below one frame header still work; bufio grows reads as needed
// and large frames bypass the write buffer. Must be called before the
// server accepts connections.
func (s *Server) WithBufferSize(n int) *Server {
	if n > 0 {
		s.bufSize = n
	}
	return s
}

// WithTelemetry instruments the server on t: per-request latency by
// operation and status (tail buckets carry the last sampled request's
// ID as an exemplar), the wire stages of the durable-bid pipeline
// (wire.read, decode, ack.flush on shield_stage_seconds), and the live
// connection count. It also turns on request IDs and tracing — a frame
// carrying the v2 trace field executes under the client's propagated
// ID (continuing its trace when the sampled bit is set), any other
// frame under a freshly minted, locally sampled ID — and a journaled
// backend records that ID as the entry's trace, closing the gap where
// wire-journaled commands had no trace at all. Must be called before
// the server accepts connections; an uninstrumented server adds
// nothing to the request context, so its journal entries carry no
// trace ids (the torture harness relies on this to keep wire-driven
// journals byte-identical to in-process ones).
func (s *Server) WithTelemetry(t *obs.Telemetry) *Server {
	s.tel = t
	s.latency = t.Registry.HistogramVec("shield_wire_request_seconds",
		"Wire request latency by operation and status.",
		obs.LatencyBuckets(), "op", "status")
	s.conns = t.Registry.Gauge("shield_wire_connections",
		"Open wire-protocol connections.")
	s.stageRead = t.Stage("wire.read")
	s.stageDecode = t.Stage("decode")
	s.stageFlush = t.Stage("ack.flush")
	s.latencyBy = map[opStatus]*obs.Histogram{}
	for op := range traceNames {
		for _, status := range []string{"ok", "error"} {
			s.latencyBy[opStatus{op, status}] = s.latency.With(op, status)
		}
	}
	return s
}

// opStatus keys the pre-bound latency series.
type opStatus struct{ op, status string }

// latencyFor returns the latency series for op/status without the
// per-request Vec label join; an op outside the closed set (there are
// none today) falls through to the Vec.
func (s *Server) latencyFor(op, status string) *obs.Histogram {
	if h, ok := s.latencyBy[opStatus{op, status}]; ok {
		return h
	}
	return s.latency.With(op, status)
}

// frame is one decoded length-prefixed frame crossing from a
// connection's reader goroutine to its execution loop.
type frame struct {
	payload []byte
	readDur time.Duration // payload transfer time (0 when untimed)
	err     error
}

// Serve accepts connections on l until it closes, running each
// connection on its own goroutine. It always returns a non-nil error
// (net.ErrClosed after a clean shutdown).
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func() { _ = s.ServeConn(conn) }()
	}
}

// ServeConn serves one connection to completion: handshake, then frames
// until the peer closes or the stream turns malformed. It closes conn
// before returning and reports why the connection ended (nil for a
// clean peer close).
//
// Execution is pipelined: a reader goroutine decodes frames while this
// goroutine executes them strictly in order, and responses are flushed
// only when the pipeline drains — a burst of N requests costs one write
// syscall, not N.
func (s *Server) ServeConn(conn net.Conn) error {
	defer conn.Close()
	if s.conns != nil {
		s.conns.Add(1)
		defer s.conns.Add(-1)
	}
	bufSize := s.bufSize
	if bufSize <= 0 {
		bufSize = DefaultBufferSize
	}
	br := bufio.NewReaderSize(conn, bufSize)
	bw := bufio.NewWriterSize(conn, bufSize)

	version, err := s.handshake(br, bw)
	if err != nil {
		return err
	}

	// The channel depth bounds how far the reader runs ahead of
	// execution; beyond it, backpressure propagates to the client
	// through TCP flow control.
	frames := make(chan frame, 64)
	timed := s.tel != nil
	go func() {
		defer close(frames)
		for {
			// Payload buffers cross a channel, so each frame needs its
			// own; the reader cannot reuse one. The length header is read
			// untimed — the wait for it is idle time between requests, not
			// part of any request — and only the payload transfer is
			// charged to the wire.read stage.
			var hdr [4]byte
			if _, err := io.ReadFull(br, hdr[:]); err != nil {
				if !errors.Is(err, io.EOF) {
					frames <- frame{err: err}
				}
				return
			}
			n := binary.LittleEndian.Uint32(hdr[:])
			if n == 0 || n > MaxFrame {
				frames <- frame{err: fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)}
				return
			}
			var start time.Time
			if timed {
				start = time.Now()
			}
			p := make([]byte, n)
			if _, err := io.ReadFull(br, p); err != nil {
				frames <- frame{err: err}
				return
			}
			var d time.Duration
			if timed {
				d = time.Since(start)
			}
			frames <- frame{payload: p, readDur: d}
		}
	}()

	ctx := context.Background()
	var resp []byte
	for f := range frames {
		if f.err != nil {
			return f.err
		}
		// A v3 replicate request converts the connection into a one-way
		// replication stream; it never returns to the request loop.
		if version >= 3 {
			r := &payloadReader{data: f.payload}
			id := r.uvarint()
			if kind := r.byte(); r.err == nil && kind == kindReplicate {
				return s.serveReplication(bw, frames, id, r)
			}
		}
		var tr *obs.Trace
		resp, tr = s.handle(ctx, f.payload, resp[:0], version, f.readDur)
		err := writeFrame(bw, resp)
		if err == nil && len(frames) == 0 {
			// The pipeline drained: this flush is the write that makes
			// the acknowledgment visible to the client, so it is charged
			// to the request as the ack.flush stage.
			start := time.Now()
			err = bw.Flush()
			if s.tel != nil {
				d := time.Since(start)
				tr.AddSpan("ack.flush", start, d)
				s.stageFlush.ObserveTrace(d.Seconds(), exemplarOf(tr))
			}
		}
		if s.tel != nil {
			s.tel.Tracer.Finish(tr)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// handshake validates the client hello and answers it with the
// negotiated version — the smaller of the client's and this package's —
// so older clients keep connecting to newer servers. On an unusable
// hello (version 0) the server answers version 0 and reports
// ErrHandshake; on a bad magic it answers nothing (the peer is not
// speaking this protocol).
func (s *Server) handshake(br *bufio.Reader, bw *bufio.Writer) (byte, error) {
	var hello [4]byte
	if _, err := io.ReadFull(br, hello[:]); err != nil {
		return 0, err
	}
	if [3]byte(hello[:3]) != magic {
		return 0, ErrHandshake
	}
	version := hello[3]
	if version > Version {
		version = Version
	}
	answer := [4]byte{magic[0], magic[1], magic[2], version}
	if _, err := bw.Write(answer[:]); err != nil {
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	if version == 0 {
		return 0, ErrHandshake
	}
	return version, nil
}

// exemplarOf returns the trace's ID when the request is sampled (tr
// non-nil) — the exemplar stamped onto wire histograms.
func exemplarOf(tr *obs.Trace) string {
	if tr == nil {
		return ""
	}
	return tr.ID
}

// traceNames precomputes "wire."+op for the closed op set so the
// per-request trace rename doesn't allocate; an op outside the set
// (there are none today) falls back to the concatenation.
var traceNames = func() map[string]string {
	m := map[string]string{}
	for _, op := range []string{
		"register_buyer", "register_seller", "upload", "compose",
		"withdraw", "bid", "bid_batch", "tick", "settle",
		"ping", "period", "datasets", "stats", "balance",
		"wait", "transactions",
		"unknown", "bad_command", "bad_query",
	} {
		m[op] = "wire." + op
	}
	return m
}()

func traceName(op string) string {
	if n, ok := traceNames[op]; ok {
		return n
	}
	return "wire." + op
}

// handle executes one request payload and appends the response payload
// to resp, returning the request's trace (nil when unsampled or
// uninstrumented) so ServeConn can attach the ack.flush stage before
// finishing it. handle never panics on malformed input and never closes
// the connection: every per-request failure becomes an error envelope
// whose code is drawn from the closed apierr set, leaving the stream
// usable for the requests pipelined behind it.
func (s *Server) handle(ctx context.Context, payload, resp []byte, version byte, readDur time.Duration) ([]byte, *obs.Trace) {
	r := &payloadReader{data: payload}
	reqID := r.uvarint()
	kind := r.byte()
	if r.err != nil {
		// The request id itself was unreadable; echo id 0 so the
		// envelope still parses as a response.
		return appendError(binary.AppendUvarint(resp, reqID),
			apierr.CodeBadRequest, "malformed request header"), nil
	}

	// The v2 trace field sits between the kind byte and the body,
	// flagged on the kind byte. A v1 connection has no such flag: the
	// bit falls through to the unknown-kind envelope below.
	traceID, sampled := "", false
	if version >= 2 && kind&kindTraceFlag != 0 {
		kind &^= kindTraceFlag
		traceID = r.str()
		sampled = r.byte() == 1
		if r.err != nil {
			return appendError(binary.AppendUvarint(resp, reqID),
				apierr.CodeBadRequest, "malformed trace field"), nil
		}
	}

	op := "unknown"
	start := time.Time{}
	var tr *obs.Trace
	if s.tel != nil {
		// Backdate the request to when its payload began arriving, so
		// the trace covers the read and the latency histogram charges
		// transfer time to the request that caused it.
		start = time.Now().Add(-readDur)
		id := traceID
		if id == "" {
			// No propagated context: mint a local ID and let the local
			// sampler decide.
			id = s.tel.Tracer.NewRequestID()
			tr = s.tel.Tracer.BeginAt(id, "wire", start)
		} else if sampled {
			// The client sampled this request; continue its trace here
			// regardless of the local sampling rate.
			tr = s.tel.Tracer.Adopt(id, "wire", start)
		}
		ctx = obs.WithRequestTrace(ctx, id, tr)
		if tr != nil {
			tr.AddSpan("wire.read", start, readDur)
		}
		s.stageRead.ObserveTrace(readDur.Seconds(), exemplarOf(tr))
	}

	resp = binary.AppendUvarint(resp, reqID)
	switch kind {
	case kindCommand:
		op, resp = s.handleCommand(ctx, r.rest(), resp)
	case kindQuery:
		op, resp = s.handleQuery(r, resp)
	default:
		resp = appendError(resp, apierr.CodeBadRequest, "unknown request kind")
	}

	if s.tel != nil {
		tr.SetName(traceName(op))
		status := "ok"
		// The status byte follows the uvarint request id; scanning from
		// the front of this response is cheaper than threading a flag
		// through every arm above.
		if _, n := binary.Uvarint(resp); n > 0 && n < len(resp) && resp[n] == statusErr {
			status = "error"
		}
		s.latencyFor(op, status).ObserveTrace(time.Since(start).Seconds(), exemplarOf(tr))
	}
	return resp, tr
}

// handleCommand decodes and executes one binary command, returning its
// op name (for telemetry) and the response.
func (s *Server) handleCommand(ctx context.Context, body, resp []byte) (string, []byte) {
	endDecode := obs.StageTimer(ctx, s.stageDecode, "decode")
	cmd, err := command.DecodeBinary(body)
	endDecode.End()
	if err != nil {
		return "bad_command", appendError(resp, apierr.CodeBadRequest, err.Error())
	}
	op := string(cmd.Op())

	// Batches take the per-entry path: one failed bid must not abort the
	// rest, and each entry gets its own envelope, exactly like the HTTP
	// batch endpoint and the in-process SubmitBids.
	if batch, ok := cmd.(command.BidBatch); ok {
		reqs := make([]market.BidRequest, len(batch.Bids))
		for i, b := range batch.Bids {
			reqs[i] = market.BidRequest{Buyer: b.Buyer, Dataset: b.Dataset, Amount: b.Amount}
		}
		results := s.b.SubmitBidsCtx(ctx, reqs)
		resp = append(resp, statusOK)
		resp = binary.AppendUvarint(resp, uint64(len(results)))
		for _, res := range results {
			if res.Err != nil {
				resp = append(resp, statusErr)
				code, _ := apierr.Classify(res.Err)
				resp = appendString(resp, code)
				resp = appendString(resp, res.Err.Error())
				continue
			}
			resp = append(resp, statusOK)
			resp = appendDecision(resp, res.Decision)
		}
		return op, resp
	}

	evs, err := s.b.ApplyCtx(ctx, cmd)
	if err != nil {
		code, _ := apierr.Classify(err)
		return op, appendError(resp, code, err.Error())
	}
	resp = append(resp, statusOK)
	switch cmd.(type) {
	case command.SubmitBid:
		ev := evs[0]
		resp = appendDecision(resp, market.Decision{
			Allocated:   ev.Decision.Allocated,
			PricePaid:   ev.Decision.PricePaid,
			WaitPeriods: ev.Decision.WaitPeriods,
		})
	case command.Tick:
		resp = binary.AppendUvarint(resp, uint64(evs[0].Period))
	}
	return op, resp
}

// handleQuery executes one read. Queries bypass the command codec and
// read the market's lock-free views; they are never journaled.
func (s *Server) handleQuery(r *payloadReader, resp []byte) (string, []byte) {
	opByte := r.byte()
	if r.err != nil {
		return "bad_query", appendError(resp, apierr.CodeBadRequest, "missing query opcode")
	}
	switch opByte {
	case qPing:
		if !r.done() {
			return "ping", appendError(resp, apierr.CodeBadRequest, "trailing bytes")
		}
		return "ping", append(resp, statusOK)

	case qPeriod:
		if !r.done() {
			return "period", appendError(resp, apierr.CodeBadRequest, "trailing bytes")
		}
		resp = append(resp, statusOK)
		return "period", binary.AppendUvarint(resp, uint64(s.b.Period()))

	case qDatasets:
		if !r.done() {
			return "datasets", appendError(resp, apierr.CodeBadRequest, "trailing bytes")
		}
		ids := s.b.Datasets()
		resp = append(resp, statusOK)
		resp = binary.AppendUvarint(resp, uint64(len(ids)))
		for _, id := range ids {
			resp = appendString(resp, string(id))
		}
		return "datasets", resp

	case qStats:
		ds := r.str()
		if !r.done() {
			return "stats", appendError(resp, apierr.CodeBadRequest, "malformed stats query")
		}
		st, err := s.b.Stats(market.DatasetID(ds))
		if err != nil {
			code, _ := apierr.Classify(err)
			return "stats", appendError(resp, code, err.Error())
		}
		resp = append(resp, statusOK)
		resp = appendString(resp, string(st.Dataset))
		resp = binary.AppendUvarint(resp, uint64(st.Bids))
		resp = binary.AppendUvarint(resp, uint64(st.Allocations))
		resp = binary.AppendUvarint(resp, uint64(st.Epochs))
		resp = appendFloat(resp, st.Revenue)
		resp = appendFloat(resp, st.PostingPrice)
		resp = appendFloat(resp, st.MostLikelyPrice)
		return "stats", resp

	case qBalance:
		seller := r.str()
		if !r.done() {
			return "balance", appendError(resp, apierr.CodeBadRequest, "malformed balance query")
		}
		bal, err := s.b.SellerBalance(market.SellerID(seller))
		if err != nil {
			code, _ := apierr.Classify(err)
			return "balance", appendError(resp, code, err.Error())
		}
		resp = append(resp, statusOK)
		return "balance", appendInt64(resp, int64(bal))

	case qWait:
		buyer := r.str()
		ds := r.str()
		if !r.done() {
			return "wait", appendError(resp, apierr.CodeBadRequest, "malformed wait query")
		}
		periods, err := s.b.WaitRemaining(market.BuyerID(buyer), market.DatasetID(ds))
		if err != nil {
			code, _ := apierr.Classify(err)
			return "wait", appendError(resp, code, err.Error())
		}
		resp = append(resp, statusOK)
		return "wait", binary.AppendUvarint(resp, uint64(periods))

	case qTransactions:
		if !r.done() {
			return "transactions", appendError(resp, apierr.CodeBadRequest, "trailing bytes")
		}
		txs := s.b.Transactions()
		resp = append(resp, statusOK)
		resp = binary.AppendUvarint(resp, uint64(len(txs)))
		for _, tx := range txs {
			resp = binary.AppendUvarint(resp, uint64(tx.Seq))
			resp = appendString(resp, string(tx.Buyer))
			resp = appendString(resp, string(tx.Dataset))
			resp = appendInt64(resp, int64(tx.Price))
			resp = binary.AppendUvarint(resp, uint64(tx.Period))
		}
		return "transactions", resp

	default:
		return "bad_query", appendError(resp, apierr.CodeBadRequest, "unknown query opcode")
	}
}

// appendError appends a statusErr envelope.
func appendError(resp []byte, code, msg string) []byte {
	resp = append(resp, statusErr)
	resp = appendString(resp, code)
	return appendString(resp, msg)
}

// appendDecision appends a bid decision result body.
func appendDecision(resp []byte, d market.Decision) []byte {
	if d.Allocated {
		resp = append(resp, 1)
	} else {
		resp = append(resp, 0)
	}
	resp = appendInt64(resp, int64(d.PricePaid))
	return binary.AppendUvarint(resp, uint64(d.WaitPeriods))
}
