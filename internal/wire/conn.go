package wire

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"github.com/datamarket/shield/internal/apierr"
	"github.com/datamarket/shield/internal/command"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/obs"
)

// Conn is a client connection speaking the wire protocol. All methods
// are safe for concurrent use; concurrent calls serialize on the
// connection (one request-response round trip at a time). A Conn whose
// underlying stream fails is dead — every later call returns the same
// sticky error, which wraps ErrConnClosed — and should be closed and
// redialed. Calls respect their context: a deadline bounds the round
// trip via the socket's I/O deadline, and cancellation of a
// deadline-less context interrupts an in-flight call promptly.
type Conn struct {
	mu      sync.Mutex
	nc      net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	version byte // negotiated protocol version
	nextID  uint64
	req     []byte // scratch request payload
	resp    []byte // scratch response payload
	broken  error  // sticky stream failure
}

// DefaultBufferSize is the per-direction buffered-I/O size a connection
// uses unless overridden: generous enough to absorb a deep pipeline or
// a large batch in one syscall.
const DefaultBufferSize = 64 << 10

// Dial connects to a wire server at addr ("host:port") and performs the
// handshake.
func Dial(addr string) (*Conn, error) {
	return DialSize(addr, DefaultBufferSize)
}

// DialSize is Dial with an explicit per-direction buffer size. Rigs
// holding thousands of mostly idle connections in one process shrink
// the buffers to keep memory linear in connections, not in
// connections × DefaultBufferSize.
func DialSize(addr string, bufSize int) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := NewConnSize(nc, bufSize)
	if err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

// NewConn wraps an established stream (a TCP connection, a net.Pipe
// end) as a client connection, performing the handshake.
func NewConn(nc net.Conn) (*Conn, error) {
	return NewConnSize(nc, DefaultBufferSize)
}

// NewConnSize is NewConn with an explicit per-direction buffer size.
func NewConnSize(nc net.Conn, bufSize int) (*Conn, error) {
	if bufSize <= 0 {
		bufSize = DefaultBufferSize
	}
	c := &Conn{
		nc: nc,
		br: bufio.NewReaderSize(nc, bufSize),
		bw: bufio.NewWriterSize(nc, bufSize),
	}
	hello := [4]byte{magic[0], magic[1], magic[2], Version}
	if _, err := c.bw.Write(hello[:]); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	var answer [4]byte
	if _, err := io.ReadFull(c.br, answer[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	if [3]byte(answer[:3]) != magic || answer[3] == 0 || answer[3] > Version {
		return nil, ErrHandshake
	}
	c.version = answer[3]
	return c, nil
}

// ProtocolVersion returns the version the handshake negotiated for this
// connection (at most Version; lower against an older server).
func (c *Conn) ProtocolVersion() byte { return c.version }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }

// roundTrip sends one request payload of the given kind (body appends
// the payload after the header) and, on a statusOK response, decodes
// the result body with decode while still holding the connection lock —
// the body aliases the connection's scratch buffer, which the next
// round trip overwrites. On a version >= 2 connection, a context
// carrying an obs request ID gets the trace field: the server journals
// and logs under the caller's ID, and a sampled trace continues
// server-side. A statusErr envelope comes back as an *apierr.APIError,
// whose Error() is the server-side error's exact message; decode never
// runs for it. A nil decode requires an empty result body.
func (c *Conn) roundTrip(ctx context.Context, kind byte, body func(req []byte) []byte, decode func(r *payloadReader) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken != nil {
		return c.broken
	}

	// A context that was dead before anything hit the stream costs
	// nothing: the connection stays usable.
	if err := ctx.Err(); err != nil {
		return err
	}
	deadline, hasDeadline := ctx.Deadline()
	if hasDeadline {
		// The I/O deadline alone bounds every blocking call below, so no
		// watcher goroutine is needed on this, the common timeout path.
		if err := c.nc.SetDeadline(deadline); err != nil {
			return c.fail(ctx, err)
		}
		defer c.nc.SetDeadline(time.Time{})
	} else if done := ctx.Done(); done != nil {
		// Cancelable but unbounded: a watcher expires the I/O deadline
		// the moment the context dies, so an in-flight call against a
		// stalled or half-closed server returns promptly instead of
		// blocking forever. The watcher always exits before roundTrip
		// returns — it cannot leak or poke a later round trip.
		stop := make(chan struct{})
		watched := make(chan struct{})
		go func() {
			defer close(watched)
			select {
			case <-done:
				c.nc.SetDeadline(time.Unix(1, 0))
			case <-stop:
			}
		}()
		defer func() {
			close(stop)
			<-watched
			c.nc.SetDeadline(time.Time{})
		}()
	}

	c.nextID++
	id := c.nextID
	req := binary.AppendUvarint(c.req[:0], id)
	traceID := ""
	if c.version >= 2 {
		traceID = obs.RequestIDFrom(ctx)
	}
	if traceID == "" {
		req = append(req, kind)
	} else {
		req = append(req, kind|kindTraceFlag)
		req = appendString(req, traceID)
		if obs.TraceFrom(ctx) != nil {
			req = append(req, 1)
		} else {
			req = append(req, 0)
		}
	}
	c.req = body(req)
	if err := writeFrame(c.bw, c.req); err != nil {
		return c.fail(ctx, err)
	}
	if err := c.bw.Flush(); err != nil {
		return c.fail(ctx, err)
	}

	var err error
	c.resp, err = readFrame(c.br, c.resp)
	if err != nil {
		return c.fail(ctx, err)
	}
	r := &payloadReader{data: c.resp}
	gotID := r.uvarint()
	status := r.byte()
	if r.err != nil {
		return c.fail(ctx, fmt.Errorf("wire: malformed response envelope"))
	}
	if gotID != id {
		// Responses come back in request order on a serialized
		// connection; a mismatch means the stream is desynchronized.
		return c.fail(ctx, fmt.Errorf("wire: response id %d for request %d", gotID, id))
	}
	switch status {
	case statusOK:
		if decode == nil {
			if len(r.rest()) != 0 {
				return c.fail(ctx, fmt.Errorf("wire: unexpected result body"))
			}
			return nil
		}
		if err := decode(r); err != nil {
			return c.fail(ctx, err)
		}
		if !r.done() {
			return c.fail(ctx, fmt.Errorf("wire: malformed result body"))
		}
		return nil
	case statusErr:
		code := r.str()
		msg := r.str()
		if r.err != nil {
			return c.fail(ctx, fmt.Errorf("wire: malformed error envelope"))
		}
		return &apierr.APIError{Code: code, Message: msg}
	default:
		return c.fail(ctx, fmt.Errorf("wire: unknown response status %d", status))
	}
}

// fail marks the connection dead with a sticky error wrapping
// ErrConnClosed and returns it. When the context expired or was
// canceled — the deadline broke the blocking I/O, or the watcher did —
// the context's error is recorded as the cause, so callers can
// distinguish their own timeout from a server hangup with errors.Is.
// Every caller from now on, including the ones already queued on the
// connection mutex mid-pipeline, observes the same typed error.
func (c *Conn) fail(ctx context.Context, err error) error {
	if c.broken == nil {
		if cerr := ctx.Err(); cerr != nil {
			err = fmt.Errorf("%v: %w", err, cerr)
		} else if _, ok := ctx.Deadline(); ok && errors.Is(err, os.ErrDeadlineExceeded) {
			// The socket deadline was armed from the context's deadline,
			// and the net poller can observe it a beat before the
			// context's own timer flips ctx.Err() — the timeout is the
			// context's either way.
			err = fmt.Errorf("%v: %w", err, context.DeadlineExceeded)
		}
		c.broken = fmt.Errorf("%w: %w", ErrConnClosed, err)
	}
	return c.broken
}

// apply sends one command, decoding any result body with decode.
func (c *Conn) apply(ctx context.Context, cmd command.Command, decode func(r *payloadReader) error) error {
	enc, err := command.EncodeBinary(cmd)
	if err != nil {
		return err
	}
	return c.roundTrip(ctx, kindCommand, func(req []byte) []byte {
		return append(req, enc...)
	}, decode)
}

// applyVoid sends one command whose success carries no result body.
func (c *Conn) applyVoid(ctx context.Context, cmd command.Command) error {
	return c.apply(ctx, cmd, nil)
}

// RegisterBuyer registers a buyer account.
func (c *Conn) RegisterBuyer(ctx context.Context, id market.BuyerID) error {
	return c.applyVoid(ctx, command.RegisterBuyer{Buyer: id})
}

// RegisterSeller registers a seller account.
func (c *Conn) RegisterSeller(ctx context.Context, id market.SellerID) error {
	return c.applyVoid(ctx, command.RegisterSeller{Seller: id})
}

// UploadDataset registers a base dataset for seller.
func (c *Conn) UploadDataset(ctx context.Context, seller market.SellerID, id market.DatasetID) error {
	return c.applyVoid(ctx, command.UploadDataset{Seller: seller, Dataset: id})
}

// ComposeDataset registers a derived dataset.
func (c *Conn) ComposeDataset(ctx context.Context, id market.DatasetID, constituents ...market.DatasetID) error {
	return c.applyVoid(ctx, command.ComposeDataset{Dataset: id, Constituents: constituents})
}

// WithdrawDataset removes a base dataset.
func (c *Conn) WithdrawDataset(ctx context.Context, seller market.SellerID, id market.DatasetID) error {
	return c.applyVoid(ctx, command.WithdrawDataset{Seller: seller, Dataset: id})
}

// SubmitBid places one bid and returns the market's decision.
func (c *Conn) SubmitBid(ctx context.Context, buyer market.BuyerID, dataset market.DatasetID, amount float64) (market.Decision, error) {
	var d market.Decision
	err := c.apply(ctx, command.SubmitBid{Buyer: buyer, Dataset: dataset, Amount: amount},
		func(r *payloadReader) error {
			var ok bool
			if d, ok = readDecision(r); !ok {
				return fmt.Errorf("wire: malformed decision body")
			}
			return nil
		})
	if err != nil {
		return market.Decision{}, err
	}
	return d, nil
}

// SubmitBids places a batch of bids in one frame and returns per-entry
// results in request order, exactly like market.SubmitBids: one failed
// bid never aborts the rest.
func (c *Conn) SubmitBids(ctx context.Context, reqs []market.BidRequest) ([]market.BidResult, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	bids := make([]command.SubmitBid, len(reqs))
	for i, r := range reqs {
		bids[i] = command.SubmitBid{Buyer: r.Buyer, Dataset: r.Dataset, Amount: r.Amount}
	}
	var out []market.BidResult
	err := c.apply(ctx, command.BidBatch{Bids: bids}, func(r *payloadReader) error {
		n := r.uvarint()
		if r.err != nil || n != uint64(len(reqs)) {
			return fmt.Errorf("wire: malformed batch body")
		}
		out = make([]market.BidResult, len(reqs))
		for i := range out {
			switch r.byte() {
			case statusOK:
				d, ok := readDecision(r)
				if !ok {
					return fmt.Errorf("wire: malformed batch entry")
				}
				out[i].Decision = d
			case statusErr:
				code := r.str()
				msg := r.str()
				if r.err != nil {
					return fmt.Errorf("wire: malformed batch entry")
				}
				out[i].Err = &apierr.APIError{Code: code, Message: msg}
			default:
				return fmt.Errorf("wire: malformed batch entry")
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Tick advances the market period and returns the new period.
func (c *Conn) Tick(ctx context.Context) (int, error) {
	var p uint64
	err := c.apply(ctx, command.Tick{}, func(r *payloadReader) error {
		p = r.uvarint()
		return r.err
	})
	if err != nil {
		return 0, err
	}
	return int(p), nil
}

// query sends one query frame, decoding the result body with decode.
func (c *Conn) query(ctx context.Context, op byte, args func(req []byte) []byte, decode func(r *payloadReader) error) error {
	return c.roundTrip(ctx, kindQuery, func(req []byte) []byte {
		req = append(req, op)
		if args != nil {
			req = args(req)
		}
		return req
	}, decode)
}

// Ping round-trips an empty query, verifying the connection is alive.
func (c *Conn) Ping(ctx context.Context) error {
	return c.query(ctx, qPing, nil, nil)
}

// Period returns the current market period.
func (c *Conn) Period(ctx context.Context) (int, error) {
	var p uint64
	err := c.query(ctx, qPeriod, nil, func(r *payloadReader) error {
		p = r.uvarint()
		return r.err
	})
	if err != nil {
		return 0, err
	}
	return int(p), nil
}

// Datasets returns the ids of all priced datasets.
func (c *Conn) Datasets(ctx context.Context) ([]market.DatasetID, error) {
	var out []market.DatasetID
	err := c.query(ctx, qDatasets, nil, func(r *payloadReader) error {
		n := r.uvarint()
		if r.err != nil || n > uint64(len(r.rest())) {
			return fmt.Errorf("wire: malformed datasets body")
		}
		out = make([]market.DatasetID, 0, n)
		for i := uint64(0); i < n; i++ {
			out = append(out, market.DatasetID(r.str()))
		}
		return r.err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Stats returns one dataset's diagnostic snapshot (operator-facing; see
// market.DatasetStats).
func (c *Conn) Stats(ctx context.Context, dataset market.DatasetID) (market.DatasetStats, error) {
	var st market.DatasetStats
	err := c.query(ctx, qStats, func(req []byte) []byte {
		return appendString(req, string(dataset))
	}, func(r *payloadReader) error {
		st.Dataset = market.DatasetID(r.str())
		st.Bids = int(r.uvarint())
		st.Allocations = int(r.uvarint())
		st.Epochs = int(r.uvarint())
		st.Revenue = r.float()
		st.PostingPrice = r.float()
		st.MostLikelyPrice = r.float()
		return r.err
	})
	if err != nil {
		return market.DatasetStats{}, err
	}
	return st, nil
}

// SellerBalance returns a seller's accumulated revenue.
func (c *Conn) SellerBalance(ctx context.Context, id market.SellerID) (market.Money, error) {
	var bal market.Money
	err := c.query(ctx, qBalance, func(req []byte) []byte {
		return appendString(req, string(id))
	}, func(r *payloadReader) error {
		bal = market.Money(r.int64())
		return r.err
	})
	if err != nil {
		return 0, err
	}
	return bal, nil
}

// WaitRemaining returns how many periods of a Time-Shield wait remain
// for buyer on dataset (zero when the buyer may bid).
func (c *Conn) WaitRemaining(ctx context.Context, buyer market.BuyerID, dataset market.DatasetID) (int, error) {
	var periods uint64
	err := c.query(ctx, qWait, func(req []byte) []byte {
		req = appendString(req, string(buyer))
		return appendString(req, string(dataset))
	}, func(r *payloadReader) error {
		periods = r.uvarint()
		return r.err
	})
	if err != nil {
		return 0, err
	}
	return int(periods), nil
}

// Transactions returns the completed-sale log in sequence order.
func (c *Conn) Transactions(ctx context.Context) ([]market.Transaction, error) {
	var out []market.Transaction
	err := c.query(ctx, qTransactions, nil, func(r *payloadReader) error {
		n := r.uvarint()
		if r.err != nil || n > uint64(len(r.rest())) {
			return fmt.Errorf("wire: malformed transactions body")
		}
		out = make([]market.Transaction, 0, n)
		for i := uint64(0); i < n; i++ {
			out = append(out, market.Transaction{
				Seq:     int(r.uvarint()),
				Buyer:   market.BuyerID(r.str()),
				Dataset: market.DatasetID(r.str()),
				Price:   market.Money(r.int64()),
				Period:  int(r.uvarint()),
			})
		}
		return r.err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// readDecision decodes a decision result body.
func readDecision(r *payloadReader) (market.Decision, bool) {
	allocated := r.byte()
	price := r.int64()
	wait := r.uvarint()
	if r.err != nil || allocated > 1 {
		return market.Decision{}, false
	}
	return market.Decision{
		Allocated:   allocated == 1,
		PricePaid:   market.Money(price),
		WaitPeriods: int(wait),
	}, true
}
