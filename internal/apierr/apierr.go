// Package apierr is the serving surface's stable error vocabulary,
// shared by every transport (HTTP/JSON in internal/httpapi, the binary
// wire protocol in internal/wire). Each failed request carries exactly
// one machine-readable code from the closed set below; clients branch
// on the code, never on the message text. The codes are part of the v1
// API contract and are re-exported from the shield facade.
package apierr

import (
	"errors"
	"net/http"

	"github.com/datamarket/shield/internal/auth"
	"github.com/datamarket/shield/internal/command"
	"github.com/datamarket/shield/internal/market"
)

// Stable machine-readable error codes.
const (
	CodeDuplicateID     = "duplicate_id"
	CodeUnknownBuyer    = "unknown_buyer"
	CodeUnknownSeller   = "unknown_seller"
	CodeUnknownDataset  = "unknown_dataset"
	CodeBadBid          = "bad_bid"
	CodeBidTooSoon      = "bid_too_soon"
	CodeBlockedUntil    = "blocked_until"
	CodeAlreadyAcquired = "already_acquired"
	CodeDatasetInUse    = "dataset_in_use"
	CodeEmptyID         = "empty_id"
	CodeUnauthorized    = "unauthorized"
	CodeBadRequest      = "bad_request"
	CodeInternal        = "internal"
	// CodeReadOnlyReplica rejects a mutating request sent to a read
	// replica: the write path lives on the leader.
	CodeReadOnlyReplica = "read_only_replica"
	// CodeReplicaUnavailable rejects a read on a replica that has not
	// completed its first catch-up (or has diverged) and so has no
	// state to serve.
	CodeReplicaUnavailable = "replica_unavailable"
)

// Replica-serving sentinels; transports classify them like any market
// error.
var (
	// ErrReadOnlyReplica is returned for every mutating operation on a
	// read replica.
	ErrReadOnlyReplica = errors.New("read-only replica: send writes to the leader")
	// ErrReplicaUnavailable is returned for reads before a replica's
	// first catch-up completes.
	ErrReplicaUnavailable = errors.New("replica has no state yet: first catch-up pending")
)

// APIError is one request's failure as the serving surface reports it:
// a stable code plus the originating error's message. Over HTTP it is
// the body of the {"error":{...}} envelope; over the wire protocol it
// is the payload of an error frame.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error returns the message exactly as the server-side error produced
// it — no code prefix, no decoration — so a client that round-trips an
// operation through a transport observes the same error string an
// in-process caller would (the torture harness pins this).
func (e *APIError) Error() string { return e.Message }

// Classify maps an error to its stable code and the HTTP status the
// JSON transport uses for it (the wire transport carries the code
// alone).
func Classify(err error) (code string, status int) {
	switch {
	case errors.Is(err, market.ErrUnknownBuyer), errors.Is(err, auth.ErrUnknownBuyer):
		return CodeUnknownBuyer, http.StatusNotFound
	case errors.Is(err, market.ErrUnknownSeller):
		return CodeUnknownSeller, http.StatusNotFound
	case errors.Is(err, market.ErrUnknownDataset):
		return CodeUnknownDataset, http.StatusNotFound
	case errors.Is(err, market.ErrDuplicateID), errors.Is(err, auth.ErrDuplicate):
		return CodeDuplicateID, http.StatusConflict
	case errors.Is(err, market.ErrAlreadyAcquired):
		return CodeAlreadyAcquired, http.StatusConflict
	case errors.Is(err, market.ErrDatasetInUse):
		return CodeDatasetInUse, http.StatusConflict
	case errors.Is(err, market.ErrBadBid):
		return CodeBadBid, http.StatusBadRequest
	case errors.Is(err, market.ErrEmptyID), errors.Is(err, auth.ErrEmptyID):
		return CodeEmptyID, http.StatusBadRequest
	case errors.Is(err, market.ErrBidTooSoon):
		return CodeBidTooSoon, http.StatusTooManyRequests
	case errors.Is(err, market.ErrWaitActive):
		return CodeBlockedUntil, http.StatusTooManyRequests
	case errors.Is(err, auth.ErrBadSignature), errors.Is(err, auth.ErrReplay):
		return CodeUnauthorized, http.StatusUnauthorized
	case errors.Is(err, ErrReadOnlyReplica):
		// 403, not 405: the route exists and the method is right — this
		// process simply never accepts writes.
		return CodeReadOnlyReplica, http.StatusForbidden
	case errors.Is(err, ErrReplicaUnavailable):
		return CodeReplicaUnavailable, http.StatusServiceUnavailable
	case errors.Is(err, command.ErrNotMarket), errors.Is(err, command.ErrMalformed), errors.Is(err, command.ErrUnknownOp):
		// Codec-level rejections and commands that do not target market
		// state (Settle) are client mistakes, not server faults.
		return CodeBadRequest, http.StatusBadRequest
	default:
		return CodeInternal, http.StatusInternalServerError
	}
}
