// Package dp implements the differential-privacy alternative to
// Epoch-Shield and Uncertainty-Shield sketched in Section 6.3: the arbiter
// computes the epoch's revenue-optimal posting price and releases it
// through the Laplace mechanism, so that by the DP guarantee no single bid
// changes the price distribution by more than a factor e^epsilon.
//
// The mechanism needs a priori knowledge of the bid range to bound the
// sensitivity S(a) = max(b) - min(b) — exactly the extra requirement the
// paper cites when arguing the MW-based algorithm is simpler to deploy.
// The package exists to support that ablation (experiment X1).
package dp

import (
	"errors"
	"fmt"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/rng"
)

// Config configures a LaplacePricer.
type Config struct {
	// Epsilon is the privacy/protection parameter: lower is more
	// protected. Required, > 0.
	Epsilon float64
	// MinBid and MaxBid bound the bids the market accepts; the Laplace
	// scale is (MaxBid-MinBid)/Epsilon. Required, MaxBid > MinBid >= 0.
	MinBid, MaxBid float64
	// EpochSize is the number of bids per price update. Required, >= 1.
	EpochSize int
	// InitialPrice is in force until the first epoch completes.
	InitialPrice float64
	// Seed seeds the mechanism's noise stream.
	Seed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if !(c.Epsilon > 0) {
		return fmt.Errorf("dp: epsilon %v must be > 0", c.Epsilon)
	}
	if c.MinBid < 0 || c.MaxBid <= c.MinBid {
		return errors.New("dp: need 0 <= MinBid < MaxBid")
	}
	if c.EpochSize < 1 {
		return errors.New("dp: epoch size must be >= 1")
	}
	if c.InitialPrice < 0 {
		return errors.New("dp: initial price must be >= 0")
	}
	return nil
}

// Sensitivity returns S(a) = MaxBid - MinBid, the L1 sensitivity of the
// optimal-posting-price update algorithm over one bid (Section 6.3).
func (c Config) Sensitivity() float64 { return c.MaxBid - c.MinBid }

// LaplacePricer releases an epsilon-DP posting price once per epoch:
// price = a(bids) + Y, Y ~ Lap(S(a)/epsilon), clamped to the valid bid
// range so the market never posts a negative price. It implements the
// same StreamPricer shape as the baselines in internal/auction.
type LaplacePricer struct {
	cfg   Config
	rand  *rng.RNG
	price float64
	epoch []float64
}

// New builds a LaplacePricer from cfg.
func New(cfg Config) (*LaplacePricer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &LaplacePricer{
		cfg:   cfg,
		rand:  rng.New(cfg.Seed),
		price: cfg.InitialPrice,
		epoch: make([]float64, 0, cfg.EpochSize),
	}, nil
}

// MustNew is New for static configurations; it panics on config errors.
func MustNew(cfg Config) *LaplacePricer {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// PostingPrice implements auction.StreamPricer.
func (p *LaplacePricer) PostingPrice() float64 { return p.price }

// ObserveBid implements auction.StreamPricer. Bids outside the configured
// range are clamped before entering the epoch: the sensitivity bound is
// only valid over the declared range.
func (p *LaplacePricer) ObserveBid(b float64) {
	if b < p.cfg.MinBid {
		b = p.cfg.MinBid
	}
	if b > p.cfg.MaxBid {
		b = p.cfg.MaxBid
	}
	p.epoch = append(p.epoch, b)
	if len(p.epoch) < p.cfg.EpochSize {
		return
	}
	base, _ := auction.OptimalPrice(p.epoch)
	noise := p.rand.Laplace(0, p.cfg.Sensitivity()/p.cfg.Epsilon)
	price := base + noise
	// Clamp into the valid range: a negative posting price would allocate
	// for free, and one above MaxBid can never sell.
	if price < p.cfg.MinBid {
		price = p.cfg.MinBid
	}
	if price > p.cfg.MaxBid {
		price = p.cfg.MaxBid
	}
	p.price = price
	p.epoch = p.epoch[:0]
}

// Reset implements auction.StreamPricer, replaying the same noise stream
// from the configured seed.
func (p *LaplacePricer) Reset() {
	p.rand = rng.New(p.cfg.Seed)
	p.price = p.cfg.InitialPrice
	p.epoch = p.epoch[:0]
}
