package dp

import (
	"math"
	"testing"

	"github.com/datamarket/shield/internal/rng"
)

func testConfig() Config {
	return Config{
		Epsilon:      1.0,
		MinBid:       0,
		MaxBid:       100,
		EpochSize:    8,
		InitialPrice: 50,
		Seed:         1,
	}
}

func TestValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Epsilon: 0, MaxBid: 1, EpochSize: 1},
		{Epsilon: 1, MinBid: 5, MaxBid: 5, EpochSize: 1},
		{Epsilon: 1, MinBid: -1, MaxBid: 5, EpochSize: 1},
		{Epsilon: 1, MaxBid: 1, EpochSize: 0},
		{Epsilon: 1, MaxBid: 1, EpochSize: 1, InitialPrice: -2},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted zero config")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(Config{})
}

func TestSensitivity(t *testing.T) {
	cfg := testConfig()
	if s := cfg.Sensitivity(); s != 100 {
		t.Fatalf("Sensitivity = %v", s)
	}
}

func TestPriceUpdatesPerEpochAndStaysInRange(t *testing.T) {
	p := MustNew(testConfig())
	if p.PostingPrice() != 50 {
		t.Fatalf("initial price = %v", p.PostingPrice())
	}
	for i := 0; i < 7; i++ {
		p.ObserveBid(60)
		if p.PostingPrice() != 50 {
			t.Fatal("price moved mid-epoch")
		}
	}
	p.ObserveBid(60)
	price := p.PostingPrice()
	if price < 0 || price > 100 {
		t.Fatalf("price %v outside bid range", price)
	}
	for i := 0; i < 500; i++ {
		p.ObserveBid(60)
		if pr := p.PostingPrice(); pr < 0 || pr > 100 {
			t.Fatalf("price %v escaped clamp", pr)
		}
	}
}

func TestNoiseScaleShrinksWithEpsilon(t *testing.T) {
	// With a large epsilon the released price must hug the epoch optimum;
	// with a tiny epsilon it should wander much more.
	spread := func(eps float64) float64 {
		cfg := testConfig()
		cfg.Epsilon = eps
		p := MustNew(cfg)
		var devs []float64
		for i := 0; i < 400; i++ {
			p.ObserveBid(60) // epoch optimum is always 60
			if i%cfg.EpochSize == cfg.EpochSize-1 {
				devs = append(devs, math.Abs(p.PostingPrice()-60))
			}
		}
		var sum float64
		for _, d := range devs {
			sum += d
		}
		return sum / float64(len(devs))
	}
	tight := spread(100)
	loose := spread(0.5)
	if tight >= loose {
		t.Fatalf("mean |price-60|: eps=100 gives %v, eps=0.5 gives %v", tight, loose)
	}
	if tight > 5 {
		t.Fatalf("eps=100 spread %v too large", tight)
	}
}

func TestBidsClampedToRange(t *testing.T) {
	cfg := testConfig()
	cfg.EpochSize = 2
	cfg.Epsilon = 1000 // nearly noiseless
	p := MustNew(cfg)
	// Outrageous bids clamp to 100, so the epoch optimum is at most 100.
	p.ObserveBid(1e9)
	p.ObserveBid(1e9)
	if price := p.PostingPrice(); price > 100 {
		t.Fatalf("price %v from clamped bids", price)
	}
	p.ObserveBid(-50)
	p.ObserveBid(-50)
	if price := p.PostingPrice(); price < 0 {
		t.Fatalf("negative price %v", price)
	}
}

func TestResetReplaysNoise(t *testing.T) {
	p := MustNew(testConfig())
	r := rng.New(9)
	bids := make([]float64, 200)
	for i := range bids {
		bids[i] = r.Uniform(0, 100)
	}
	var first []float64
	for _, b := range bids {
		p.ObserveBid(b)
		first = append(first, p.PostingPrice())
	}
	p.Reset()
	if p.PostingPrice() != 50 {
		t.Fatal("Reset did not restore initial price")
	}
	for i, b := range bids {
		p.ObserveBid(b)
		if p.PostingPrice() != first[i] {
			t.Fatalf("noise stream diverged at %d", i)
		}
	}
}

func TestEpsilonControlsSingleBidInfluence(t *testing.T) {
	// Empirical DP-flavored check: two epochs differing in one bid should
	// yield price distributions whose high-level statistics are close
	// when epsilon is small (strong protection), and far when epsilon is
	// huge (no protection). We measure the shift in the mean released
	// price across many noise draws.
	meanPrice := func(eps float64, lowBid float64, seed uint64) float64 {
		cfg := testConfig()
		cfg.Epsilon = eps
		cfg.EpochSize = 4
		cfg.Seed = seed
		var sum float64
		const rounds = 2000
		for i := 0; i < rounds; i++ {
			p := MustNew(Config{
				Epsilon: eps, MinBid: 0, MaxBid: 100, EpochSize: 4,
				InitialPrice: 50, Seed: seed + uint64(i),
			})
			p.ObserveBid(60)
			p.ObserveBid(60)
			p.ObserveBid(60)
			p.ObserveBid(lowBid)
			sum += p.PostingPrice()
		}
		return sum / rounds
	}
	// Huge epsilon: the low bid visibly moves the released price?
	// Optimal price of {60,60,60,60} is 60 and of {60,60,60,0} is 60 too
	// (3*60 > 4*0), so use a low bid that changes the optimum: bid 90.
	// {60,60,60,90}: optimum max(4*60, 1*90)=240 -> 60. Use {90,90,90,x}:
	// x=90 -> opt 90; x=0 -> 3*90=270 -> price 90. Still same. Instead
	// compare {60,60,60,60} vs {20,20,20,20}: price 60 vs 20.
	shiftBig := math.Abs(meanPrice(1000, 60, 1) - func() float64 {
		cfg := testConfig()
		cfg.Epsilon = 1000
		var sum float64
		const rounds = 2000
		for i := 0; i < rounds; i++ {
			p := MustNew(Config{
				Epsilon: 1000, MinBid: 0, MaxBid: 100, EpochSize: 4,
				InitialPrice: 50, Seed: 1 + uint64(i),
			})
			for j := 0; j < 4; j++ {
				p.ObserveBid(20)
			}
			sum += p.PostingPrice()
		}
		return sum / rounds
	}())
	if shiftBig < 30 {
		t.Fatalf("eps=1000 shift %v, want ~40 (no protection)", shiftBig)
	}
	// Tiny epsilon: prices are dominated by clamped noise; the same two
	// epochs release nearly identical (clamp-flattened) distributions.
	shiftSmall := math.Abs(meanPrice(0.05, 60, 7) - func() float64 {
		var sum float64
		const rounds = 2000
		for i := 0; i < rounds; i++ {
			p := MustNew(Config{
				Epsilon: 0.05, MinBid: 0, MaxBid: 100, EpochSize: 4,
				InitialPrice: 50, Seed: 7 + uint64(i),
			})
			for j := 0; j < 4; j++ {
				p.ObserveBid(20)
			}
			sum += p.PostingPrice()
		}
		return sum / rounds
	}())
	if shiftSmall > 10 {
		t.Fatalf("eps=0.05 shift %v, want small (strong protection)", shiftSmall)
	}
}
