package faultfs

import (
	"bytes"
	"errors"
	"testing"
)

func TestTruncateDropsSilently(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Truncate, 5)
	n, err := w.Write([]byte("hello world"))
	if err != nil || n != 11 {
		t.Fatalf("faulting write reported (%d, %v), want silent success", n, err)
	}
	if got := buf.String(); got != "hello" {
		t.Fatalf("durable bytes %q, want %q", got, "hello")
	}
	if !w.Tripped() {
		t.Fatal("writer not tripped")
	}
	// Later writes keep vanishing.
	if n, err := w.Write([]byte("more")); err != nil || n != 4 {
		t.Fatalf("post-fault write reported (%d, %v)", n, err)
	}
	if buf.Len() != 5 {
		t.Fatalf("bytes leaked past the fault: %q", buf.String())
	}
	// But the loss surfaces on sync.
	if err := w.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Sync after silent truncation = %v, want ErrInjected", err)
	}
}

func TestTearWritesPartialThenFails(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Tear, 3)
	n, err := w.Write([]byte("abcdef"))
	if !errors.Is(err, ErrInjected) || n != 3 {
		t.Fatalf("torn write reported (%d, %v), want (3, ErrInjected)", n, err)
	}
	if got := buf.String(); got != "abc" {
		t.Fatalf("durable bytes %q, want %q", got, "abc")
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-fault write = %v, want ErrInjected", err)
	}
}

func TestErrFailsWithoutPartial(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Err, 4)
	if _, err := w.Write([]byte("ab")); err != nil {
		t.Fatalf("pre-fault write failed: %v", err)
	}
	n, err := w.Write([]byte("cdef"))
	if !errors.Is(err, ErrInjected) || n != 0 {
		t.Fatalf("faulting write reported (%d, %v), want (0, ErrInjected)", n, err)
	}
	if got := buf.String(); got != "ab" {
		t.Fatalf("durable bytes %q, want %q", got, "ab")
	}
}

func TestExactBoundaryIsNotAFault(t *testing.T) {
	// A write that ends exactly at the fault offset succeeds in full;
	// the fault hits the first byte after it.
	var buf bytes.Buffer
	w := NewWriter(&buf, Tear, 4)
	if n, err := w.Write([]byte("abcd")); err != nil || n != 4 {
		t.Fatalf("boundary write reported (%d, %v)", n, err)
	}
	if w.Tripped() {
		t.Fatal("tripped before any byte past the offset")
	}
	if n, err := w.Write([]byte("e")); !errors.Is(err, ErrInjected) || n != 0 {
		t.Fatalf("first post-boundary write reported (%d, %v)", n, err)
	}
}

func TestSeededIsDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		var b1, b2 bytes.Buffer
		w1 := NewSeeded(&b1, seed, 100)
		w2 := NewSeeded(&b2, seed, 100)
		if w1.Kind() != w2.Kind() || w1.remaining != w2.remaining {
			t.Fatalf("seed %d: (%v, %d) vs (%v, %d)",
				seed, w1.Kind(), w1.remaining, w2.Kind(), w2.remaining)
		}
		if w1.remaining < 0 || w1.remaining > 100 {
			t.Fatalf("seed %d: offset %d out of range", seed, w1.remaining)
		}
	}
}
