// Package faultfs provides deterministic fault injection for io.Writer
// streams, simulating the ways a process or machine crash mangles an
// append-only log file: writes that silently never reach disk
// (Truncate), writes torn mid-record at a byte boundary (Tear), and
// writes that fail outright (Err).
//
// A Writer passes bytes through to its destination until a configured
// byte offset, then injects its fault and stays tripped: everything
// after the fault point behaves as if the process had died there. The
// fault point can be chosen exactly (a record boundary, an offset
// inside a record) or drawn from a seed, so crash tests are fully
// reproducible.
package faultfs

import (
	"errors"
	"io"

	"github.com/datamarket/shield/internal/rng"
)

// Kind selects how the fault manifests at the fault point.
type Kind int

const (
	// Truncate drops every byte from the fault point on while still
	// reporting success to the caller — the write lands in a volatile
	// cache that is lost before it reaches disk. This is what a crash
	// without fsync looks like to the process.
	Truncate Kind = iota
	// Tear writes the bytes before the fault point, drops the rest of
	// the faulting write, and returns ErrInjected: a record torn at an
	// arbitrary byte offset, as when power fails mid-write.
	Tear
	// Err fails the faulting write without writing any of it, and every
	// write after it: the device went away.
	Err
)

// String names the kind for test labels.
func (k Kind) String() string {
	switch k {
	case Truncate:
		return "truncate"
	case Tear:
		return "tear"
	case Err:
		return "err"
	default:
		return "unknown"
	}
}

// ErrInjected is returned by writes (and syncs) that hit the fault.
var ErrInjected = errors.New("faultfs: injected fault")

// Writer passes writes through to Dst until Offset bytes have been
// written, then injects Kind and stays tripped. It is not safe for
// concurrent use; the journal serializes appends already.
type Writer struct {
	dst       io.Writer
	kind      Kind
	remaining int64
	tripped   bool
}

// NewWriter wraps dst with a fault of the given kind at the given byte
// offset (counted across all writes). An offset at a record boundary
// kills the stream exactly between records; an offset inside a record
// tears it.
func NewWriter(dst io.Writer, kind Kind, offset int64) *Writer {
	if offset < 0 {
		offset = 0
	}
	return &Writer{dst: dst, kind: kind, remaining: offset}
}

// NewSeeded derives the fault kind and offset (in [0, maxOffset]) from
// seed, so a failing crash test reproduces from its seed alone.
func NewSeeded(dst io.Writer, seed uint64, maxOffset int64) *Writer {
	r := rng.New(seed)
	kind := Kind(r.Intn(3))
	var off int64
	if maxOffset > 0 {
		off = int64(r.Intn(int(maxOffset + 1)))
	}
	return NewWriter(dst, kind, off)
}

// Write implements io.Writer with the configured fault.
func (w *Writer) Write(p []byte) (int, error) {
	if w.tripped {
		// The process is "dead": Truncate keeps absorbing bytes
		// silently, the erroring kinds keep failing.
		if w.kind == Truncate {
			return len(p), nil
		}
		return 0, ErrInjected
	}
	if int64(len(p)) <= w.remaining {
		n, err := w.dst.Write(p)
		w.remaining -= int64(n)
		return n, err
	}
	keep := int(w.remaining)
	w.tripped = true
	switch w.kind {
	case Truncate:
		if _, err := w.dst.Write(p[:keep]); err != nil {
			return 0, err
		}
		return len(p), nil
	case Tear:
		if _, err := w.dst.Write(p[:keep]); err != nil {
			return 0, err
		}
		return keep, ErrInjected
	default: // Err
		return 0, ErrInjected
	}
}

// Sync mimics (*os.File).Sync: it passes through to Dst when Dst can
// sync, and fails once the fault has tripped — a lost write surfaces at
// the latest when the journal fsyncs.
func (w *Writer) Sync() error {
	if w.tripped {
		return ErrInjected
	}
	if s, ok := w.dst.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}

// Tripped reports whether the fault point has been reached.
func (w *Writer) Tripped() bool { return w.tripped }

// Kind returns the configured fault kind.
func (w *Writer) Kind() Kind { return w.kind }
