// The segmented-store twin: a torture replica whose journal is a
// directory of rotated segment files with snapshot checkpoints, plus
// the crash-cut recovery drills and the disk-ceiling gate that make
// rotation, checkpointing and compaction part of every differential
// run instead of a storage-layer detail.
package torture

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"github.com/datamarket/shield/internal/journal"
	"github.com/datamarket/shield/internal/market"
)

// newStoreReplica opens the store twin under cfg.StoreDir/leader.
func newStoreReplica(cfg Config, shards int) (*replica, error) {
	dir := filepath.Join(cfg.StoreDir, "leader")
	jm, _, err := journal.OpenStore(
		market.Config{Engine: cfg.Engine, Seed: cfg.Seed, Shards: shards}, dir, cfg.Store)
	if err != nil {
		return nil, fmt.Errorf("torture: store replica: %w", err)
	}
	if cfg.canaryPerturb != nil {
		jm.Market.TestPerturbPrices(cfg.canaryPerturb)
	}
	return &replica{
		name:   fmt.Sprintf("store shards=%d", shards),
		shards: shards,
		jm:     jm,
		dir:    dir,
		close:  func() { _ = jm.Close() },
	}, nil
}

// storeCrashCut is one mid-run recovery drill. The twin's directory is
// copied twice: the uncut copy must recover to exactly the live state,
// and a copy whose active segment is torn at a seeded offset must
// recover to a durable prefix no older than the newest checkpoint.
// Between ops the store is quiescent except for a possibly in-flight
// checkpoint temp file, which recovery must ignore.
func (h *harness) storeCrashCut(opIdx int) *Failure {
	op := Op{Kind: OpTick}
	r := h.storeRep
	liveSeq := r.jm.LastSeq()

	scratch, err := os.MkdirTemp(h.cfg.StoreDir, "cut-*")
	if err != nil {
		return h.fail(opIdx, op, "store crash-cut scratch: %v", err)
	}
	defer os.RemoveAll(scratch)

	// Uncut copy: recovery must rebuild the live state bit for bit.
	whole := filepath.Join(scratch, "whole")
	if err := copyDir(r.dir, whole); err != nil {
		return h.fail(opIdx, op, "store crash-cut copy: %v", err)
	}
	rm, rseq, _, err := journal.RecoverDir(whole)
	if err != nil {
		return h.fail(opIdx, op, "store uncut recovery: %v", err)
	}
	if rseq != liveSeq {
		return h.fail(opIdx, op, "store uncut recovery reached seq %d, live at %d", rseq, liveSeq)
	}
	liveSnap := r.jm.Snapshot()
	if d := rm.Snapshot().Diff(liveSnap); d != "" {
		return h.fail(opIdx, op, "store uncut recovery diverges from live state in sections %v", d)
	}

	// Torn copy: cut the active segment at a seeded offset. Anything
	// from an empty file to a half-written record must recover to a
	// durable prefix at or past the newest checkpoint.
	torn := filepath.Join(scratch, "torn")
	if err := copyDir(r.dir, torn); err != nil {
		return h.fail(opIdx, op, "store crash-cut copy: %v", err)
	}
	inv, err := journal.InspectDir(torn)
	if err != nil {
		return h.fail(opIdx, op, "store crash-cut inventory: %v", err)
	}
	if len(inv.Segments) == 0 {
		return h.fail(opIdx, op, "store crash-cut copy holds no segments")
	}
	last := inv.Segments[len(inv.Segments)-1]
	final := filepath.Join(torn, last.Name)
	cut := int64(0)
	if last.Bytes > 0 {
		cut = int64(h.cutRNG.Intn(int(last.Bytes)))
	}
	if err := os.Truncate(final, cut); err != nil {
		return h.fail(opIdx, op, "store crash-cut truncate: %v", err)
	}
	tm, tseq, _, err := journal.RecoverDir(torn)
	if err != nil {
		return h.fail(opIdx, op, "store torn recovery (cut %s at %d): %v", last.Name, cut, err)
	}
	lastCkpt := inv.LastCheckpoint
	if tseq < lastCkpt || tseq > liveSeq {
		return h.fail(opIdx, op, "store torn recovery reached seq %d, want within [%d, %d]", tseq, lastCkpt, liveSeq)
	}
	if tseq == liveSeq {
		if d := tm.Snapshot().Diff(liveSnap); d != "" {
			return h.fail(opIdx, op, "store torn recovery at live seq diverges in sections %v", d)
		}
	}
	return nil
}

// checkStoreDisk enforces the disk ceiling at checkpoints and tracks
// the peak footprint for the report.
func (h *harness) checkStoreDisk(opIdx int) *Failure {
	if h.storeRep == nil {
		return nil
	}
	n, err := h.storeRep.jm.Store().DiskBytes()
	if err != nil {
		return h.fail(opIdx, Op{Kind: OpTick}, "store disk accounting: %v", err)
	}
	if n > h.report.StoreDiskPeak {
		h.report.StoreDiskPeak = n
	}
	if c := h.cfg.StoreDiskCeilingBytes; c > 0 && n > c {
		return h.fail(opIdx, Op{Kind: OpTick},
			"store twin uses %d bytes on disk, over the %d-byte ceiling (compaction is not keeping up)", n, c)
	}
	return nil
}

// storeFinalChecks verifies the store twin's durable chain at the end
// of a run: recovery from disk rebuilds the live state, and — when
// compaction is off, so the whole history is still on disk — the
// concatenated segment bodies equal the flat replicas' journal tail
// byte for byte.
func (h *harness) storeFinalChecks(flatTail []byte) *Failure {
	op := Op{Kind: OpTick}
	r := h.storeRep
	rm, rseq, _, err := journal.RecoverDir(r.dir)
	if err != nil {
		return h.fail(h.cfg.Ops-1, op, "store twin recovery: %v", err)
	}
	if rseq != r.jm.LastSeq() {
		return h.fail(h.cfg.Ops-1, op, "store twin recovery reached seq %d, live at %d", rseq, r.jm.LastSeq())
	}
	if d := rm.Snapshot().Diff(r.jm.Snapshot()); d != "" {
		return h.fail(h.cfg.Ops-1, op, "store twin recovery diverges from live state in sections %v", d)
	}
	if h.cfg.Store.RetainSegments < 0 {
		body, err := storeBodyBytes(r.dir)
		if err != nil {
			return h.fail(h.cfg.Ops-1, op, "store twin body: %v", err)
		}
		// The first record is the genesis head, which carries the
		// (shard-count-bearing) config exactly like a flat journal's.
		idx := bytes.IndexByte(body, '\n')
		if idx < 0 {
			return h.fail(h.cfg.Ops-1, op, "store twin has no genesis record")
		}
		if !bytes.Equal(body[idx+1:], flatTail) {
			return h.fail(h.cfg.Ops-1, op, "store twin segment bodies diverge from %s journal tail",
				h.replicas[0].name)
		}
	}
	return nil
}

// storeBodyBytes concatenates every segment's records (the seghead
// metadata line of each segment is dropped) — with nothing compacted,
// the result is the flat journal, byte for byte.
func storeBodyBytes(dir string) ([]byte, error) {
	names, err := segmentNames(dir)
	if err != nil {
		return nil, err
	}
	var body []byte
	for _, name := range names {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		idx := bytes.IndexByte(b, '\n')
		if idx < 0 {
			continue // torn seghead, nothing durable in this segment
		}
		body = append(body, b[idx+1:]...)
	}
	return body, nil
}

// segmentNames lists a store directory's segment files in index order
// (zero-padded fixed-width names sort lexically).
func segmentNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, ent := range ents {
		if filepath.Ext(ent.Name()) == ".seg" {
			names = append(names, ent.Name())
		}
	}
	return names, nil
}

// copyDir clones a store directory (flat, no subdirectories). A
// background checkpoint may compact a segment away between the listing
// and the read; the clone is retried rather than failed, because a
// vanishing covered segment is legal behaviour, not damage.
func copyDir(src, dst string) error {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if err = copyDirOnce(src, dst); err == nil || !os.IsNotExist(err) {
			return err
		}
		_ = os.RemoveAll(dst)
	}
	return err
}

func copyDirOnce(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, ent := range ents {
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}
