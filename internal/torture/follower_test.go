package torture

import (
	"strings"
	"testing"
	"time"
)

// TestFollowerTwinConvergesThroughKills is the replication torture
// acceptance: the default run kills the follower twin at seeded points
// mid-stream (one connection drop, one cold restart) and every
// checkpoint still pins its snapshot byte-identical to the leader's.
func TestFollowerTwinConvergesThroughKills(t *testing.T) {
	rep, err := Run(small(11, 3000))
	if err != nil {
		t.Fatal(err)
	}
	if rep.FollowerKills != 2 {
		t.Errorf("expected 2 seeded follower kills, got %d", rep.FollowerKills)
	}
	if rep.Checkpoints < 4 {
		t.Errorf("expected >= 4 follower-gated checkpoints, got %d", rep.Checkpoints)
	}
}

// TestFollowerKillsSeeded pins that the chaos schedule is a pure
// function of the seed: the same run repeated must inject the same
// kills and land on the same report.
func TestFollowerKillsSeeded(t *testing.T) {
	cfg := small(13, 2000)
	cfg.FollowerKills = 4
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FollowerKills != 4 || b.FollowerKills != 4 {
		t.Fatalf("kill counts %d / %d, want 4", a.FollowerKills, b.FollowerKills)
	}
}

// TestFollowerDropCanary proves the snapshot differential catches a
// follower that skips exactly one replicated command: the twin
// acknowledges the seq without applying it, and the next checkpoint
// must report the divergence by name with a repro line.
func TestFollowerDropCanary(t *testing.T) {
	cfg := small(1, 2000)
	cfg.FollowerKills = -1 // a cold restart would heal the canary
	cfg.canaryFollowerDrop = 200
	cfg.followerConverge = 2 * time.Second

	_, err := Run(cfg)
	if err == nil {
		t.Fatal("skipped replicated command was not detected")
	}
	var f *Failure
	if !asFailure(err, &f) {
		t.Fatalf("expected *Failure, got %T: %v", err, err)
	}
	if !strings.Contains(err.Error(), "follower twin snapshot diverges") {
		t.Errorf("failure does not name the snapshot diff: %v", err)
	}
	if !strings.Contains(err.Error(), "repro: shieldstorm -seed 1 -ops 2000") {
		t.Errorf("failure lacks repro line: %v", err)
	}
}

// TestFollowerStallCanary proves the lag gate trips by name when the
// follower's apply loop freezes mid-stream.
func TestFollowerStallCanary(t *testing.T) {
	cfg := small(2, 2000)
	cfg.FollowerKills = -1
	cfg.canaryFollowerStall = true
	cfg.followerConverge = 300 * time.Millisecond

	_, err := Run(cfg)
	if err == nil {
		t.Fatal("stalled follower was not detected")
	}
	var f *Failure
	if !asFailure(err, &f) {
		t.Fatalf("expected *Failure, got %T: %v", err, err)
	}
	if !strings.Contains(err.Error(), "replication lag gate tripped") {
		t.Errorf("failure does not name the lag gate: %v", err)
	}
	if !strings.Contains(err.Error(), "repro: shieldstorm -seed 2 -ops 2000") {
		t.Errorf("failure lacks repro line: %v", err)
	}
}
