package torture

import (
	"strings"
	"testing"

	"github.com/datamarket/shield/internal/journal"
)

// storeSmall is small() plus a segmented-store twin with aggressive
// rotation, checkpointing and compaction.
func storeSmall(t *testing.T, seed uint64, ops int) Config {
	cfg := small(seed, ops)
	cfg.StoreDir = t.TempDir()
	cfg.Store = journal.StoreConfig{SegmentRecords: 64, CheckpointEvery: 150}
	return cfg
}

// TestStoreTwinDifferential: the store twin rides a full differential
// run — rotation, checkpoints, compaction and two seeded crash-cut
// recovery drills, all while matching the reference on every op.
func TestStoreTwinDifferential(t *testing.T) {
	rep, err := Run(storeSmall(t, 3, 4000))
	if err != nil {
		t.Fatal(err)
	}
	if rep.StoreSegments == 0 || rep.StoreCheckpoints == 0 {
		t.Fatalf("store twin inventory empty: %d segments, %d checkpoints",
			rep.StoreSegments, rep.StoreCheckpoints)
	}
	if rep.StoreCrashCuts != 2 {
		t.Fatalf("crash-cut drills ran %d times, want 2", rep.StoreCrashCuts)
	}
	if rep.StoreDiskPeak == 0 {
		t.Fatal("store disk peak never measured")
	}
}

// TestStoreTwinByteEquivalence: with compaction off the twin's
// concatenated segment bodies must be byte-identical to the flat
// replicas' journal tail.
func TestStoreTwinByteEquivalence(t *testing.T) {
	cfg := storeSmall(t, 11, 2500)
	cfg.Store.RetainSegments = -1
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestStoreTwinDiskCeiling: compaction must hold a generous ceiling;
// an absurdly small one must trip the gate with a named reason.
func TestStoreTwinDiskCeiling(t *testing.T) {
	cfg := storeSmall(t, 5, 2500)
	cfg.StoreDiskCeilingBytes = 64 << 20
	if _, err := Run(cfg); err != nil {
		t.Fatalf("64 MiB ceiling tripped on a tiny run: %v", err)
	}

	cfg = storeSmall(t, 5, 2500)
	cfg.StoreDiskCeilingBytes = 512 // nothing fits in half a KiB
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("absurd disk ceiling not enforced")
	}
	if !strings.Contains(err.Error(), "ceiling") {
		t.Fatalf("ceiling failure reason unclear: %v", err)
	}
}

// TestStoreTwinMutationCanary: perturbing only the live replicas'
// prices must still be caught with the store twin in the fleet.
func TestStoreTwinMutationCanary(t *testing.T) {
	cfg := storeSmall(t, 9, 2000)
	cfg.canaryPerturb = func(p float64) float64 { return p + 1 }
	if _, err := Run(cfg); err == nil {
		t.Fatal("price perturbation not caught with store twin attached")
	}
}
