package torture

import (
	"github.com/datamarket/shield/internal/command"
	"github.com/datamarket/shield/internal/market"
)

// The reference model is the deterministic command core itself
// (internal/command), run single-threaded with none of the real
// system's sharding, locking, journaling, or telemetry. Before the
// command-core refactor this file hand-mirrored the market semantics in
// ~560 lines of duplicated rules; now "the reference agrees with the
// live market on the rules" is structural — both are the same Apply —
// and what the differential actually tests is everything the live
// market layers on top: shard serialization, lock ordering, the
// lock-free read views, journaling, and replay. The mutation canary
// (TestMutationCanary) keeps the harness honest by perturbing only the
// live replicas' engines and asserting the differential still trips.
//
// The reference deliberately receives no canary perturbation: that hook
// exists so a test can break the real replicas' pricing and prove this
// model catches it.

// refMarket is the sequential reference arbiter: one command.State and
// an Apply loop.
type refMarket struct {
	st *command.State
}

// newRefMarket builds the reference arbiter. cfg.Shards is forced to
// zero: shard count is a parallelism knob that must never affect state,
// and zeroing it here matches the normalization the harness applies to
// real snapshots before comparison.
func newRefMarket(cfg market.Config) *refMarket {
	cfg.Shards = 0
	return &refMarket{st: command.MustNewState(cfg)}
}

func (r *refMarket) registerBuyer(id market.BuyerID) error {
	_, err := command.Apply(r.st, command.RegisterBuyer{Buyer: id})
	return err
}

func (r *refMarket) registerSeller(id market.SellerID) error {
	_, err := command.Apply(r.st, command.RegisterSeller{Seller: id})
	return err
}

func (r *refMarket) uploadDataset(seller market.SellerID, id market.DatasetID) error {
	_, err := command.Apply(r.st, command.UploadDataset{Seller: seller, Dataset: id})
	return err
}

func (r *refMarket) composeDataset(id market.DatasetID, constituents ...market.DatasetID) error {
	_, err := command.Apply(r.st, command.ComposeDataset{Dataset: id, Constituents: constituents})
	return err
}

func (r *refMarket) withdrawDataset(seller market.SellerID, id market.DatasetID) error {
	_, err := command.Apply(r.st, command.WithdrawDataset{Seller: seller, Dataset: id})
	return err
}

func (r *refMarket) tick() int {
	evs, _ := command.Apply(r.st, command.Tick{})
	return evs[0].Period
}

func (r *refMarket) submitBid(buyer market.BuyerID, dataset market.DatasetID, amount float64) (market.Decision, error) {
	evs, err := command.Apply(r.st, command.SubmitBid{Buyer: buyer, Dataset: dataset, Amount: amount})
	if err != nil {
		return market.Decision{}, err
	}
	return evs[0].Decision, nil
}

// submitBids mirrors the journaled market's batch semantics: strictly
// sequential application in request order.
func (r *refMarket) submitBids(reqs []market.BidRequest) []market.BidResult {
	out := make([]market.BidResult, len(reqs))
	for i, q := range reqs {
		out[i].Decision, out[i].Err = r.submitBid(q.Buyer, q.Dataset, q.Amount)
	}
	return out
}

func (r *refMarket) stats(dataset market.DatasetID) (market.DatasetStats, error) {
	return r.st.Stats(dataset)
}

// totals mirrors Market.Totals for the conservation invariant.
func (r *refMarket) totals() (revenue, spent, balances market.Money) {
	return r.st.Totals()
}

// snapshot builds the market.Snapshot the real arbiter would produce in
// this state (modulo Config.Shards, already zero here).
func (r *refMarket) snapshot() market.Snapshot {
	return r.st.Snapshot()
}
