package torture

import (
	"fmt"
	"hash/fnv"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/mw"
	"github.com/datamarket/shield/internal/provenance"
	"github.com/datamarket/shield/internal/rng"
)

// The reference model is a deliberately simple, single-goroutine
// re-implementation of the market semantics the paper specifies: one
// refEngine per dataset running Algorithm 1, and a refMarket enforcing
// bid cadence, Time-Shield waits, provenance revenue splits and the
// ledger. It shares the low-level substrate with the real
// implementation — mw.Learner, rng.RNG, auction revenue math,
// provenance.Graph, market.Money — because those are the paper's
// primitives, but it re-implements all orchestration (epoch handling,
// price draws, wait replay, account bookkeeping) without any of the
// real system's sharding, locking, journaling or telemetry. Every
// generated history replays against both; any divergence in decisions,
// errors, or canonical snapshots is a bug in one of them.
//
// The reference deliberately does NOT consult core.TestPerturbPrice:
// that hook exists so a test can break the real engine's price update
// and prove this model catches it.

// refEngine mirrors core.Engine for the non-regridding configurations
// the harness accepts (RegridEvery is rejected up front: mirroring the
// adaptive grid would duplicate the very code under test).
type refEngine struct {
	cfg            core.Config
	learner        *mw.Learner
	rand           *rng.RNG
	minCandidate   float64
	origCandidates []float64

	price float64
	epoch []float64

	revenue     float64
	bids        int
	allocations int
	epochs      int
}

func newRefEngine(cfg core.Config) *refEngine {
	// Mirror core's default application exactly: the engine snapshot
	// embeds the defaulted config, so the reference must embed the same.
	if cfg.Eta == 0 {
		cfg.Eta = mw.DefaultEta
	}
	if cfg.BidsPerPeriod == 0 {
		cfg.BidsPerPeriod = 1
	}
	if cfg.MaxWaitEpochs == 0 {
		cfg.MaxWaitEpochs = 64
	}
	if cfg.AdHocNeighborhood == 0 {
		cfg.AdHocNeighborhood = 1
	}
	cands := append([]float64(nil), cfg.Candidates...)
	cfg.Candidates = cands
	minCand := cands[0]
	for _, c := range cands[1:] {
		if c < minCand {
			minCand = c
		}
	}
	e := &refEngine{
		cfg:            cfg,
		learner:        mw.NewLearner(cands, cfg.Eta),
		rand:           rng.New(cfg.Seed),
		minCandidate:   minCand,
		origCandidates: append([]float64(nil), cands...),
		epoch:          make([]float64, 0, cfg.EpochSize),
	}
	if cfg.ShareFraction > 0 {
		e.learner.SetShare(cfg.ShareFraction)
	}
	e.price = e.drawPrice()
	return e
}

func (e *refEngine) drawPrice() float64 {
	switch e.cfg.Rule {
	case core.DrawMWMax:
		return e.cfg.Candidates[e.learner.ArgMax()]
	case core.DrawAdHoc:
		k := e.cfg.AdHocNeighborhood
		center := e.learner.ArgMax()
		lo, hi := center-k, center+k
		if lo < 0 {
			lo = 0
		}
		if hi > len(e.cfg.Candidates)-1 {
			hi = len(e.cfg.Candidates) - 1
		}
		return e.cfg.Candidates[lo+e.rand.Intn(hi-lo+1)]
	case core.DrawRandom:
		return e.cfg.Candidates[e.rand.Intn(len(e.cfg.Candidates))]
	default: // DrawMW
		return e.learner.DrawValue(e.rand)
	}
}

func (e *refEngine) submitBid(b float64) core.Decision {
	e.bids++
	e.epoch = append(e.epoch, b)
	d := core.Decision{Price: e.price}
	if b >= e.price && e.price > 0 {
		d.Allocated = true
		e.allocations++
		e.revenue += e.price
	} else if !e.cfg.DisableWaitPeriods {
		d.Wait = e.computeWaitPeriod(b)
	}
	e.maybeUpdatePrice()
	return d
}

func (e *refEngine) observe(b float64) {
	e.epoch = append(e.epoch, b)
	e.maybeUpdatePrice()
}

func (e *refEngine) maybeUpdatePrice() {
	if len(e.epoch) != e.cfg.EpochSize {
		return
	}
	e.epochs++
	optR := auction.OptimalRevenue(e.epoch)
	if optR > 0 {
		revenue := auction.Revenue(e.epoch, e.price)
		costs := make([]float64, e.learner.Len())
		for i, p := range e.learner.Values() {
			costs[i] = (revenue - auction.Revenue(e.epoch, p)) / optR
		}
		e.learner.Update(costs, 0)
	}
	e.epoch = e.epoch[:0]
	e.price = e.drawPrice()
}

func (e *refEngine) computeWaitPeriod(b float64) int {
	sim := e.learner.Clone()
	synthetic := e.cfg.MinBid
	if e.cfg.Wait == core.WaitStable {
		synthetic = b
	} else if synthetic < e.minCandidate {
		synthetic = e.minCandidate
	}

	likely := e.cfg.Candidates[sim.ArgMax()]
	if b >= likely {
		remaining := e.cfg.EpochSize - len(e.epoch)
		return ceilDiv(remaining, e.cfg.BidsPerPeriod)
	}
	if b < e.minCandidate {
		remaining := e.cfg.EpochSize - len(e.epoch)
		return ceilDiv(remaining+e.cfg.MaxWaitEpochs*e.cfg.EpochSize, e.cfg.BidsPerPeriod)
	}

	epochBids := make([]float64, len(e.epoch), e.cfg.EpochSize)
	copy(epochBids, e.epoch)
	simulated := 0
	for len(epochBids) < e.cfg.EpochSize {
		epochBids = append(epochBids, synthetic)
		simulated++
	}

	chosen := e.price
	for round := 0; round < e.cfg.MaxWaitEpochs; round++ {
		refApplyEpoch(sim, epochBids, chosen)
		likely = e.cfg.Candidates[sim.ArgMax()]
		if b >= likely {
			return ceilDiv(simulated, e.cfg.BidsPerPeriod)
		}
		if len(epochBids) != e.cfg.EpochSize || epochBids[0] != synthetic {
			epochBids = epochBids[:0]
			for i := 0; i < e.cfg.EpochSize; i++ {
				epochBids = append(epochBids, synthetic)
			}
		}
		chosen = likely
		simulated += e.cfg.EpochSize
	}
	return ceilDiv(simulated, e.cfg.BidsPerPeriod)
}

func refApplyEpoch(l *mw.Learner, epoch []float64, chosen float64) {
	optR := auction.OptimalRevenue(epoch)
	if optR <= 0 {
		return
	}
	revenue := auction.Revenue(epoch, chosen)
	costs := make([]float64, l.Len())
	for i, p := range l.Values() {
		costs[i] = (revenue - auction.Revenue(epoch, p)) / optR
	}
	l.Update(costs, 0)
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

func (e *refEngine) mostLikelyPrice() float64 {
	return e.cfg.Candidates[e.learner.ArgMax()]
}

// snapshot builds the same core.Snapshot the real engine would produce
// in the same state (non-nil empty slices included: Canonical compares
// JSON bytes, and nil encodes as null while empty encodes as []).
func (e *refEngine) snapshot() core.Snapshot {
	s := core.Snapshot{
		Config:         e.cfg,
		OrigCandidates: make([]float64, len(e.origCandidates)),
		Learner:        e.learner.Snapshot(),
		Rand:           e.rand.Snapshot(),
		Price:          e.price,
		Epoch:          make([]float64, len(e.epoch)),
		Revenue:        e.revenue,
		Bids:           e.bids,
		Allocations:    e.allocations,
		Epochs:         e.epochs,
	}
	cands := make([]float64, len(e.cfg.Candidates))
	copy(cands, e.cfg.Candidates)
	s.Config.Candidates = cands
	copy(s.OrigCandidates, e.origCandidates)
	copy(s.Epoch, e.epoch)
	return s
}

// refBuyer and refSeller mirror the market's per-participant books.
type refBuyer struct {
	lastBid      map[market.DatasetID]int
	blockedUntil map[market.DatasetID]int
	acquired     map[market.DatasetID]bool
	spent        market.Money
}

type refSeller struct {
	balance  market.Money
	datasets []market.DatasetID
}

// refMarket is the sequential reference arbiter. Its error messages
// reproduce the real market's wrap formats exactly, so the harness can
// compare failures by full string, not just sentinel class.
type refMarket struct {
	cfg     market.Config
	clock   int
	graph   *provenance.Graph
	engines map[market.DatasetID]*refEngine
	owners  map[market.DatasetID]market.SellerID
	buyers  map[market.BuyerID]*refBuyer
	sellers map[market.SellerID]*refSeller
	txs     []market.Transaction
	revenue market.Money
}

// newRefMarket builds the reference arbiter. cfg.Shards is forced to
// zero: shard count is a parallelism knob that must never affect state,
// and zeroing it here matches the normalization the harness applies to
// real snapshots before comparison.
func newRefMarket(cfg market.Config) *refMarket {
	cfg.Shards = 0
	return &refMarket{
		cfg:     cfg,
		graph:   provenance.NewGraph(),
		engines: make(map[market.DatasetID]*refEngine),
		owners:  make(map[market.DatasetID]market.SellerID),
		buyers:  make(map[market.BuyerID]*refBuyer),
		sellers: make(map[market.SellerID]*refSeller),
	}
}

func (r *refMarket) newEngine(id market.DatasetID) *refEngine {
	cfg := r.cfg.Engine
	h := fnv.New64a()
	h.Write([]byte(id))
	cfg.Seed = r.cfg.Seed ^ h.Sum64()
	return newRefEngine(cfg)
}

func (r *refMarket) registerBuyer(id market.BuyerID) error {
	if id == "" {
		return market.ErrEmptyID
	}
	if _, ok := r.buyers[id]; ok {
		return fmt.Errorf("%w: buyer %s", market.ErrDuplicateID, id)
	}
	r.buyers[id] = &refBuyer{
		lastBid:      make(map[market.DatasetID]int),
		blockedUntil: make(map[market.DatasetID]int),
		acquired:     make(map[market.DatasetID]bool),
	}
	return nil
}

func (r *refMarket) registerSeller(id market.SellerID) error {
	if id == "" {
		return market.ErrEmptyID
	}
	if _, ok := r.sellers[id]; ok {
		return fmt.Errorf("%w: seller %s", market.ErrDuplicateID, id)
	}
	r.sellers[id] = &refSeller{}
	return nil
}

func (r *refMarket) uploadDataset(seller market.SellerID, id market.DatasetID) error {
	if id == "" {
		return market.ErrEmptyID
	}
	acct, ok := r.sellers[seller]
	if !ok {
		return fmt.Errorf("%w: %s", market.ErrUnknownSeller, seller)
	}
	if err := r.graph.AddBase(string(id)); err != nil {
		return fmt.Errorf("%w: dataset %s", market.ErrDuplicateID, id)
	}
	r.engines[id] = r.newEngine(id)
	r.owners[id] = seller
	acct.datasets = append(acct.datasets, id)
	return nil
}

func (r *refMarket) composeDataset(id market.DatasetID, constituents ...market.DatasetID) error {
	if id == "" {
		return market.ErrEmptyID
	}
	parts := make([]string, len(constituents))
	for i, c := range constituents {
		parts[i] = string(c)
	}
	if err := r.graph.AddDerived(string(id), parts...); err != nil {
		switch {
		case isErr(err, provenance.ErrExists):
			return fmt.Errorf("%w: dataset %s", market.ErrDuplicateID, id)
		case isErr(err, provenance.ErrUnknown):
			return fmt.Errorf("%w: %v", market.ErrUnknownDataset, err)
		default:
			return err
		}
	}
	r.engines[id] = r.newEngine(id)
	return nil
}

func (r *refMarket) withdrawDataset(seller market.SellerID, id market.DatasetID) error {
	acct, ok := r.sellers[seller]
	if !ok {
		return fmt.Errorf("%w: %s", market.ErrUnknownSeller, seller)
	}
	owner, ok := r.owners[id]
	if !ok {
		return fmt.Errorf("%w: %s is not a base dataset", market.ErrUnknownDataset, id)
	}
	if owner != seller {
		return fmt.Errorf("%w: %s does not own %s", market.ErrUnknownSeller, seller, id)
	}
	deps, err := r.graph.Dependents(string(id))
	if err != nil {
		return err
	}
	for _, d := range deps {
		if d != string(id) {
			return fmt.Errorf("%w: %s is still part of %s", market.ErrDatasetInUse, id, d)
		}
	}
	if err := r.graph.Remove(string(id)); err != nil {
		return err
	}
	delete(r.engines, id)
	delete(r.owners, id)
	for i, d := range acct.datasets {
		if d == id {
			acct.datasets = append(acct.datasets[:i], acct.datasets[i+1:]...)
			break
		}
	}
	return nil
}

func (r *refMarket) tick() int {
	r.clock++
	return r.clock
}

func (r *refMarket) submitBid(buyer market.BuyerID, dataset market.DatasetID, amount float64) (market.Decision, error) {
	if !(amount > 0) {
		return market.Decision{}, market.ErrBadBid
	}
	acct, ok := r.buyers[buyer]
	if !ok {
		return market.Decision{}, fmt.Errorf("%w: %s", market.ErrUnknownBuyer, buyer)
	}
	eng, ok := r.engines[dataset]
	if !ok {
		return market.Decision{}, fmt.Errorf("%w: %s", market.ErrUnknownDataset, dataset)
	}
	var leaves []string
	if parts, ok := r.graph.Constituents(string(dataset)); ok && len(parts) > 0 {
		leaves, _ = r.graph.Leaves(string(dataset))
	}

	if acct.acquired[dataset] {
		return market.Decision{}, fmt.Errorf("%w: %s", market.ErrAlreadyAcquired, dataset)
	}
	if last, ok := acct.lastBid[dataset]; ok && last == r.clock {
		return market.Decision{}, fmt.Errorf("%w: period %d", market.ErrBidTooSoon, r.clock)
	}
	if until := acct.blockedUntil[dataset]; r.clock < until {
		return market.Decision{}, fmt.Errorf("%w: %d periods remain", market.ErrWaitActive, until-r.clock)
	}
	acct.lastBid[dataset] = r.clock

	d := eng.submitBid(amount)
	for _, leaf := range leaves {
		if le, ok := r.engines[market.DatasetID(leaf)]; ok {
			le.observe(amount)
		}
	}

	if !d.Allocated {
		// The real market records blockedUntil unconditionally for losing
		// bids, including a Wait of zero — the map entry is state the
		// snapshot comparison sees, so the reference records it too.
		acct.blockedUntil[dataset] = r.clock + d.Wait
		return market.Decision{WaitPeriods: d.Wait}, nil
	}

	price := market.FromFloat(d.Price)
	acct.acquired[dataset] = true
	acct.spent += price
	r.revenue += price
	r.paySellers(dataset, leaves, price)
	r.txs = append(r.txs, market.Transaction{
		Seq:     len(r.txs) + 1,
		Buyer:   buyer,
		Dataset: dataset,
		Price:   price,
		Period:  r.clock,
	})
	return market.Decision{Allocated: true, PricePaid: price}, nil
}

func (r *refMarket) submitBids(reqs []market.BidRequest) []market.BidResult {
	out := make([]market.BidResult, len(reqs))
	for i, q := range reqs {
		out[i].Decision, out[i].Err = r.submitBid(q.Buyer, q.Dataset, q.Amount)
	}
	return out
}

func (r *refMarket) paySellers(dataset market.DatasetID, leaves []string, price market.Money) {
	if leaves == nil {
		var err error
		leaves, err = r.graph.Leaves(string(dataset))
		if err != nil {
			return
		}
	}
	if len(leaves) == 0 {
		return
	}
	parts := price.Split(len(leaves))
	for i, leaf := range leaves {
		owner, ok := r.owners[market.DatasetID(leaf)]
		if !ok {
			continue
		}
		if acct, ok := r.sellers[owner]; ok {
			acct.balance += parts[i]
		}
	}
}

func (r *refMarket) stats(dataset market.DatasetID) (market.DatasetStats, error) {
	eng, ok := r.engines[dataset]
	if !ok {
		return market.DatasetStats{}, fmt.Errorf("%w: %s", market.ErrUnknownDataset, dataset)
	}
	return market.DatasetStats{
		Dataset:         dataset,
		Bids:            eng.bids,
		Allocations:     eng.allocations,
		Epochs:          eng.epochs,
		Revenue:         eng.revenue,
		PostingPrice:    eng.price,
		MostLikelyPrice: eng.mostLikelyPrice(),
	}, nil
}

// totals mirrors Market.Totals for the conservation invariant.
func (r *refMarket) totals() (revenue, spent, balances market.Money) {
	for _, acct := range r.buyers {
		spent += acct.spent
	}
	for _, acct := range r.sellers {
		balances += acct.balance
	}
	return r.revenue, spent, balances
}

// snapshot builds the market.Snapshot the real arbiter would produce in
// this state (modulo Config.Shards, already zero here).
func (r *refMarket) snapshot() market.Snapshot {
	s := market.Snapshot{
		Config:       r.cfg,
		Clock:        r.clock,
		Graph:        r.graph.Snapshot(),
		Engines:      make(map[market.DatasetID]core.Snapshot),
		Owners:       make(map[market.DatasetID]market.SellerID, len(r.owners)),
		Buyers:       make(map[market.BuyerID]market.BuyerSnapshot, len(r.buyers)),
		Sellers:      make(map[market.SellerID]market.SellerSnapshot, len(r.sellers)),
		Transactions: make([]market.Transaction, len(r.txs)),
		Revenue:      r.revenue,
	}
	for id, eng := range r.engines {
		s.Engines[id] = eng.snapshot()
	}
	for id, owner := range r.owners {
		s.Owners[id] = owner
	}
	for id, acct := range r.buyers {
		bs := market.BuyerSnapshot{
			LastBid:      make(map[market.DatasetID]int, len(acct.lastBid)),
			BlockedUntil: make(map[market.DatasetID]int, len(acct.blockedUntil)),
			Acquired:     make(map[market.DatasetID]bool, len(acct.acquired)),
			Spent:        acct.spent,
		}
		for k, v := range acct.lastBid {
			bs.LastBid[k] = v
		}
		for k, v := range acct.blockedUntil {
			bs.BlockedUntil[k] = v
		}
		for k, v := range acct.acquired {
			bs.Acquired[k] = v
		}
		s.Buyers[id] = bs
	}
	for id, acct := range r.sellers {
		ss := market.SellerSnapshot{Balance: acct.balance, Datasets: make([]market.DatasetID, len(acct.datasets))}
		copy(ss.Datasets, acct.datasets)
		s.Sellers[id] = ss
	}
	copy(s.Transactions, r.txs)
	return s
}
