// Package torture is a deterministic model-based torture harness for
// the data market. A seeded workload generator produces a reproducible
// stream of market operations (bids, batches, ticks, dataset churn,
// price queries, ex-post settlements) driven by the buyer personas of
// internal/buyers and AR(1) valuation series from internal/timeseries.
// Every history is applied simultaneously to a single-goroutine
// reference model (reference.go) and to real journaled markets at
// several shard counts, plus a telemetry-instrumented twin; decisions,
// errors, canonical snapshots, journals, and ledger invariants must all
// agree at every step. Any failure reports a one-line reproduction
// command: shieldstorm -seed N -ops M.
package torture

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sort"
	"time"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/expost"
	"github.com/datamarket/shield/internal/journal"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/obs"
	"github.com/datamarket/shield/internal/rng"
	"github.com/datamarket/shield/internal/wire"
)

// Config configures one torture run.
type Config struct {
	// Seed drives every random choice in the run; the same Seed and Ops
	// reproduce the identical history, byte for byte.
	Seed uint64
	// Ops is the number of operations to generate (default 10_000).
	Ops int
	// Shards lists the shard counts to run real replicas at
	// (default 1, 4, 16). State must be bit-identical across all of them.
	Shards []int
	// CheckEvery is the interval, in ops, between full-state checkpoints
	// (default Ops/16, at least 512). Cheap per-op invariants run on
	// every op regardless.
	CheckEvery int
	// Engine is the pricing-engine template (default: a 12-candidate
	// linear grid with small epochs, tuned so a run exercises many epoch
	// boundaries). RegridEvery must be zero: the reference model does
	// not mirror adaptive regridding.
	Engine core.Config
	// Gen configures the workload generator.
	Gen GenConfig
	// FollowerKills is how many times the replication follower twin is
	// killed mid-stream at seeded points: even-numbered events drop the
	// connection (tail catch-up from the follower's applied seq), odd
	// ones cold-restart the follower from nothing (snapshot catch-up).
	// Zero means the default of 2; negative disables chaos (the twin
	// still runs and is still gated at every checkpoint).
	FollowerKills int
	// StoreDir, when non-empty, adds a segmented-store twin: a replica
	// journaling into rotated segment files with snapshot checkpoints
	// and background compaction under this directory. The twin is
	// differentially gated like every other replica, its on-disk chain
	// is crash-cut and recovered at seeded points (StoreCrashCuts), its
	// recovered state must match its live state at the end of the run,
	// and with compaction disabled (Store.RetainSegments < 0) its
	// concatenated segment bodies must be byte-identical to the flat
	// replicas' journal tails.
	StoreDir string
	// Store tunes the store twin (zero values take journal defaults).
	// The harness shrinks nothing: pass small SegmentRecords /
	// CheckpointEvery to force rotation and checkpoint traffic.
	Store journal.StoreConfig
	// StoreCrashCuts is how many times the store twin's directory is
	// copied, torn at a seeded offset in its active segment, and
	// recovered mid-run (default 2 when StoreDir is set; negative
	// disables). Each event also recovers an uncut copy, which must
	// rebuild the live state exactly.
	StoreCrashCuts int
	// StoreDiskCeilingBytes fails the run if the store twin's on-disk
	// footprint (segments + checkpoints + temp files) ever exceeds this
	// at a checkpoint — the bound compaction is supposed to hold. Zero
	// disables the gate.
	StoreDiskCeilingBytes int64
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)

	// canaryPerturb, when non-nil, is installed as a price perturbation
	// on the LIVE replicas only — never the reference. It exists for the
	// mutation-canary test, which seeds a deliberate mispricing and
	// asserts the differential catches it.
	canaryPerturb func(price float64) float64

	// canaryFollowerDrop makes the follower twin acknowledge one
	// replicated seq without applying it; the checkpoint snapshot diff
	// must catch the divergence. canaryFollowerStall freezes the twin's
	// apply loop; the checkpoint lag gate must trip. Both are in-package
	// test hooks, like canaryPerturb.
	canaryFollowerDrop  int64
	canaryFollowerStall bool
	// followerConverge bounds the checkpoint wait for the follower twin
	// to reach the leader's seq (default 10s; the canary tests shrink it
	// so a deliberately stalled twin fails fast).
	followerConverge time.Duration
}

// DefaultEngine is the engine template used when Config.Engine is zero.
func DefaultEngine() core.Config {
	return core.Config{
		Candidates:    auction.LinearGrid(10, 200, 12),
		EpochSize:     8,
		Rule:          core.DrawMW,
		Wait:          core.WaitBound,
		MinBid:        5,
		BidsPerPeriod: 4,
		MaxWaitEpochs: 12,
	}
}

func (c *Config) applyDefaults() {
	if c.Ops == 0 {
		c.Ops = 10_000
	}
	if len(c.Shards) == 0 {
		c.Shards = []int{1, 4, 16}
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = c.Ops / 16
		if c.CheckEvery < 512 {
			c.CheckEvery = 512
		}
	}
	if len(c.Engine.Candidates) == 0 {
		c.Engine = DefaultEngine()
	}
	if c.FollowerKills == 0 {
		c.FollowerKills = 2
	}
	if c.FollowerKills < 0 {
		c.FollowerKills = 0
	}
	if c.followerConverge == 0 {
		c.followerConverge = 10 * time.Second
	}
	if c.StoreDir != "" && c.StoreCrashCuts == 0 {
		c.StoreCrashCuts = 2
	}
	if c.StoreCrashCuts < 0 {
		c.StoreCrashCuts = 0
	}
}

// Report summarizes a passing run.
type Report struct {
	Seed        uint64
	Ops         int
	OpCounts    map[string]int
	Rejections  int
	Allocations int
	Revenue     market.Money
	Checkpoints int
	// FollowerKills counts the chaos events injected into the
	// replication follower twin (connection drops + cold restarts).
	FollowerKills int
	// Store twin accounting (zero when Config.StoreDir was empty):
	// segments and checkpoints on disk at the end of the run, the peak
	// on-disk footprint observed at any checkpoint, and how many
	// crash-cut recoveries ran.
	StoreSegments    int
	StoreCheckpoints int
	StoreDiskPeak    int64
	StoreCrashCuts   int
}

// Failure is a torture-harness failure. Error() includes a one-line
// reproduction command.
type Failure struct {
	Seed    uint64
	Ops     int
	OpIndex int
	OpDesc  string
	Reason  string
}

// Error implements error.
func (f *Failure) Error() string {
	return fmt.Sprintf("torture failure at op %d (%s): %s\nrepro: shieldstorm -seed %d -ops %d",
		f.OpIndex, f.OpDesc, f.Reason, f.Seed, f.Ops)
}

// opResult is the outcome of one op against one implementation.
type opResult struct {
	err   error
	dec   market.Decision
	tick  int
	batch []market.BidResult
	stats market.DatasetStats
}

// replica is one real journaled market under test. When conn is set,
// every op reaches the market through the binary wire protocol instead
// of direct method calls — the codec round trip must be invisible.
type replica struct {
	name   string
	shards int
	jm     *journal.Market
	buf    *bytes.Buffer // flat journal bytes; nil for the store twin
	dir    string        // segmented-store directory; "" for flat replicas
	conn   *wire.Conn
	close  func()
}

func (r *replica) apply(op Op) opResult {
	if r.conn != nil {
		return r.applyWire(op)
	}
	switch op.Kind {
	case OpRegisterBuyer:
		return opResult{err: r.jm.RegisterBuyer(op.Buyer)}
	case OpRegisterSeller:
		return opResult{err: r.jm.RegisterSeller(op.Seller)}
	case OpUpload:
		return opResult{err: r.jm.UploadDataset(op.Seller, op.Dataset)}
	case OpCompose:
		return opResult{err: r.jm.ComposeDataset(op.Dataset, op.Constituents...)}
	case OpWithdraw:
		return opResult{err: r.jm.WithdrawDataset(op.Seller, op.Dataset)}
	case OpTick:
		n, err := r.jm.Tick()
		return opResult{tick: n, err: err}
	case OpBid:
		d, err := r.jm.SubmitBid(op.Buyer, op.Dataset, op.Amount)
		return opResult{dec: d, err: err}
	case OpBatch:
		return opResult{batch: r.jm.SubmitBids(bidRequests(op))}
	case OpQuery:
		s, err := r.jm.Stats(op.Dataset)
		return opResult{stats: s, err: err}
	default:
		return opResult{}
	}
}

// applyWire drives one op through the replica's wire connection. The
// wire transport reports failures as *apierr.APIError whose Error() is
// the server-side message verbatim, so errString comparison against the
// reference still holds exactly.
func (r *replica) applyWire(op Op) opResult {
	ctx := context.Background()
	switch op.Kind {
	case OpRegisterBuyer:
		return opResult{err: r.conn.RegisterBuyer(ctx, op.Buyer)}
	case OpRegisterSeller:
		return opResult{err: r.conn.RegisterSeller(ctx, op.Seller)}
	case OpUpload:
		return opResult{err: r.conn.UploadDataset(ctx, op.Seller, op.Dataset)}
	case OpCompose:
		return opResult{err: r.conn.ComposeDataset(ctx, op.Dataset, op.Constituents...)}
	case OpWithdraw:
		return opResult{err: r.conn.WithdrawDataset(ctx, op.Seller, op.Dataset)}
	case OpTick:
		n, err := r.conn.Tick(ctx)
		return opResult{tick: n, err: err}
	case OpBid:
		d, err := r.conn.SubmitBid(ctx, op.Buyer, op.Dataset, op.Amount)
		return opResult{dec: d, err: err}
	case OpBatch:
		batch, err := r.conn.SubmitBids(ctx, bidRequests(op))
		return opResult{batch: batch, err: err}
	case OpQuery:
		s, err := r.conn.Stats(ctx, op.Dataset)
		return opResult{stats: s, err: err}
	default:
		return opResult{}
	}
}

func applyRef(r *refMarket, op Op) opResult {
	switch op.Kind {
	case OpRegisterBuyer:
		return opResult{err: r.registerBuyer(op.Buyer)}
	case OpRegisterSeller:
		return opResult{err: r.registerSeller(op.Seller)}
	case OpUpload:
		return opResult{err: r.uploadDataset(op.Seller, op.Dataset)}
	case OpCompose:
		return opResult{err: r.composeDataset(op.Dataset, op.Constituents...)}
	case OpWithdraw:
		return opResult{err: r.withdrawDataset(op.Seller, op.Dataset)}
	case OpTick:
		return opResult{tick: r.tick()}
	case OpBid:
		d, err := r.submitBid(op.Buyer, op.Dataset, op.Amount)
		return opResult{dec: d, err: err}
	case OpBatch:
		return opResult{batch: r.submitBids(bidRequests(op))}
	case OpQuery:
		s, err := r.stats(op.Dataset)
		return opResult{stats: s, err: err}
	default:
		return opResult{}
	}
}

func bidRequests(op Op) []market.BidRequest {
	reqs := make([]market.BidRequest, len(op.Bids))
	for i, b := range op.Bids {
		reqs[i] = market.BidRequest{Buyer: b.Buyer, Dataset: b.Dataset, Amount: b.Amount}
	}
	return reqs
}

// harness holds the full differential state for one run.
type harness struct {
	cfg      Config
	gen      *generator
	ref      *refMarket
	replicas []*replica

	// twin is the replication follower streaming replicas[0]'s command
	// log; killAt holds the seeded op indexes where chaos strikes it.
	twin   *followerTwin
	killAt []int

	// storeRep is the segmented-store twin (also in replicas); cutAt
	// holds the seeded op indexes of its crash-cut recovery drills.
	storeRep *replica
	cutAt    []int
	cutRNG   *rng.RNG

	// maxWait bounds any legal Time-Shield wait, derived from the
	// defaults-applied engine template.
	maxWait int

	// txSum tracks the running sum of reference transaction prices for
	// the per-op conservation check without rescanning the ledger.
	txSum   market.Money
	txCount int

	twinA, twinB      *expost.Arbiter
	lastExpostRevenue market.Money

	report Report
}

// Run executes one torture run and returns its report, or a *Failure
// describing the first divergence or invariant violation.
func Run(cfg Config) (*Report, error) {
	cfg.applyDefaults()
	if err := cfg.Engine.Validate(); err != nil {
		return nil, fmt.Errorf("torture: engine config: %w", err)
	}
	if cfg.Engine.RegridEvery > 0 {
		return nil, fmt.Errorf("torture: RegridEvery is not supported: the reference model does not mirror adaptive regridding")
	}

	// Mirror core's defaulting to size the wait bound.
	eng := cfg.Engine
	if eng.BidsPerPeriod == 0 {
		eng.BidsPerPeriod = 1
	}
	if eng.MaxWaitEpochs == 0 {
		eng.MaxWaitEpochs = 64
	}
	minBid := eng.MinBid
	if minBid <= 0 {
		minBid = 1
	}

	gen, err := newGenerator(cfg.Gen, cfg.Seed, minBid)
	if err != nil {
		return nil, err
	}

	h := &harness{
		cfg:     cfg,
		gen:     gen,
		ref:     newRefMarket(market.Config{Engine: cfg.Engine, Seed: cfg.Seed}),
		maxWait: ceilDiv(eng.EpochSize*(1+eng.MaxWaitEpochs), eng.BidsPerPeriod),
		report:  Report{Seed: cfg.Seed, Ops: cfg.Ops, OpCounts: make(map[string]int)},
	}

	for _, shardCount := range cfg.Shards {
		r, err := newReplica(fmt.Sprintf("shards=%d", shardCount), cfg, shardCount, false)
		if err != nil {
			return nil, err
		}
		h.replicas = append(h.replicas, r)
	}
	// The instrumented twin runs at the highest shard count with live
	// telemetry: metrics and tracing must never perturb market state.
	twin, err := newReplica(fmt.Sprintf("telemetry shards=%d", cfg.Shards[len(cfg.Shards)-1]),
		cfg, cfg.Shards[len(cfg.Shards)-1], true)
	if err != nil {
		return nil, err
	}
	h.replicas = append(h.replicas, twin)
	// The wire twin reaches its journaled market only through the binary
	// wire protocol: every decision, error string, journal record and
	// snapshot must still match the in-process replicas byte for byte.
	wt, err := newWireReplica(cfg, cfg.Shards[0])
	if err != nil {
		return nil, err
	}
	h.replicas = append(h.replicas, wt)
	if cfg.StoreDir != "" {
		// The segmented-store twin journals into rotated segments with
		// checkpoints; its crash-cut drills run at seeded op indexes,
		// spread over the middle half like the follower kills.
		sr, err := newStoreReplica(cfg, cfg.Shards[0])
		if err != nil {
			return nil, err
		}
		h.storeRep = sr
		h.replicas = append(h.replicas, sr)
		if cfg.StoreCrashCuts > 0 && cfg.Ops >= 4 {
			h.cutRNG = rng.New(cfg.Seed).Fork("store-cuts")
			for k := 0; k < cfg.StoreCrashCuts; k++ {
				h.cutAt = append(h.cutAt, cfg.Ops/4+h.cutRNG.Intn(cfg.Ops/2))
			}
			sort.Ints(h.cutAt)
		}
	}
	defer func() {
		for _, r := range h.replicas {
			if r.close != nil {
				r.close()
			}
		}
	}()
	// The replication follower twin streams replicas[0]'s committed
	// command log over the real wire protocol; the feed attaches before
	// the first op so no commit slips past it. Kill points are seeded,
	// spread over the middle half of the run, and consumed in the op
	// loop — reports stay deterministic per (seed, ops).
	h.twin, err = newFollowerTwin(cfg, h.replicas[0])
	if err != nil {
		return nil, fmt.Errorf("torture: follower twin: %w", err)
	}
	defer h.twin.close()
	if cfg.FollowerKills > 0 && cfg.Ops >= 4 {
		chaos := rng.New(cfg.Seed).Fork("follower-chaos")
		for k := 0; k < cfg.FollowerKills; k++ {
			h.killAt = append(h.killAt, cfg.Ops/4+chaos.Intn(cfg.Ops/2))
		}
		sort.Ints(h.killAt)
	}

	// Two identically-seeded ex-post arbiters: the settle stream must be
	// bit-for-bit deterministic across instances.
	for _, a := range []**expost.Arbiter{&h.twinA, &h.twinB} {
		*a, err = expost.New(expost.Config{Engine: cfg.Engine, Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("torture: ex-post arbiter: %w", err)
		}
	}

	for i := 0; i < cfg.Ops; i++ {
		for len(h.killAt) > 0 && h.killAt[0] <= i {
			h.killAt = h.killAt[1:]
			if err := h.twin.chaos(cfg.Logf); err != nil {
				return nil, fmt.Errorf("torture: follower chaos: %w", err)
			}
			h.report.FollowerKills++
		}
		for len(h.cutAt) > 0 && h.cutAt[0] <= i {
			h.cutAt = h.cutAt[1:]
			if f := h.storeCrashCut(i); f != nil {
				return nil, f
			}
			h.report.StoreCrashCuts++
		}
		op := gen.Next()
		if f := h.step(i, op); f != nil {
			return nil, f
		}
		if cfg.Logf != nil && (i+1)%cfg.CheckEvery == 0 {
			rev, _, _ := h.ref.totals()
			cfg.Logf("op %d/%d: clock=%d datasets=%d revenue=%s",
				i+1, cfg.Ops, h.gen.clock, h.ref.st.NumDatasets(), rev)
		}
	}
	if f := h.checkpoint(cfg.Ops - 1); f != nil {
		return nil, f
	}
	if f := h.finalChecks(); f != nil {
		return nil, f
	}

	rev, _, _ := h.ref.totals()
	h.report.Revenue = rev
	h.report.Allocations = h.ref.st.TxCount()
	if h.storeRep != nil {
		inv := h.storeRep.jm.Store().Inventory()
		h.report.StoreSegments = len(inv.Segments)
		h.report.StoreCheckpoints = len(inv.Checkpoints)
	}
	return &h.report, nil
}

// ceilDiv mirrors core's wait-bound arithmetic for sizing maxWait.
func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

func newReplica(name string, cfg Config, shards int, instrument bool) (*replica, error) {
	buf := &bytes.Buffer{}
	jm, err := journal.NewMarket(market.Config{Engine: cfg.Engine, Seed: cfg.Seed, Shards: shards}, buf)
	if err != nil {
		return nil, fmt.Errorf("torture: replica %s: %w", name, err)
	}
	if instrument {
		jm.Market.Instrument(obs.NewTelemetry())
	}
	if cfg.canaryPerturb != nil {
		// Mutation canary: only live replicas are perturbed, never the
		// reference — the differential must notice.
		jm.Market.TestPerturbPrices(cfg.canaryPerturb)
	}
	return &replica{name: name, shards: shards, jm: jm, buf: buf}, nil
}

// newWireReplica builds a journaled replica reached exclusively through
// the wire protocol: a wire client over an in-memory pipe to an
// uninstrumented wire server backed by the journaled market. The server
// mints no request IDs, so journaled events carry empty traces exactly
// like the direct-call replicas and the tails stay comparable.
func newWireReplica(cfg Config, shards int) (*replica, error) {
	buf := &bytes.Buffer{}
	jm, err := journal.NewMarket(market.Config{Engine: cfg.Engine, Seed: cfg.Seed, Shards: shards}, buf)
	if err != nil {
		return nil, fmt.Errorf("torture: wire replica: %w", err)
	}
	if cfg.canaryPerturb != nil {
		jm.Market.TestPerturbPrices(cfg.canaryPerturb)
	}
	srvConn, cliConn := net.Pipe()
	go func() { _ = wire.NewServer(jm).ServeConn(srvConn) }()
	conn, err := wire.NewConn(cliConn)
	if err != nil {
		srvConn.Close()
		return nil, fmt.Errorf("torture: wire replica handshake: %w", err)
	}
	return &replica{
		name:   fmt.Sprintf("wire shards=%d", shards),
		shards: shards,
		jm:     jm,
		buf:    buf,
		conn:   conn,
		close:  func() { _ = conn.Close() },
	}, nil
}

func (h *harness) fail(opIdx int, op Op, format string, args ...any) *Failure {
	return &Failure{
		Seed:    h.cfg.Seed,
		Ops:     h.cfg.Ops,
		OpIndex: opIdx,
		OpDesc:  op.String(),
		Reason:  fmt.Sprintf(format, args...),
	}
}

// step applies one op everywhere and runs the per-op invariants.
func (h *harness) step(i int, op Op) *Failure {
	h.report.OpCounts[op.Kind.String()]++

	if op.Kind == OpSettle {
		if reason := h.applySettle(op); reason != "" {
			return h.fail(i, op, "%s", reason)
		}
		h.gen.Observe(op, opResult{})
		if (i+1)%h.cfg.CheckEvery == 0 {
			return h.checkpoint(i)
		}
		return nil
	}

	refRes := applyRef(h.ref, op)
	if refRes.err != nil {
		h.report.Rejections++
	}
	if op.chaos && refRes.err == nil && op.Kind != OpBatch {
		// Chaos ops are constructed to be rejected; acceptance means the
		// generator's state mirror (and likely the reference) is wrong.
		return h.fail(i, op, "chaos op unexpectedly accepted by reference")
	}
	for _, r := range h.replicas {
		res := r.apply(op)
		if reason := diffResults(op, refRes, res); reason != "" {
			return h.fail(i, op, "replica %s disagrees with reference: %s", r.name, reason)
		}
	}
	if reason := h.checkBidInvariants(op, refRes); reason != "" {
		return h.fail(i, op, "%s", reason)
	}
	if reason := h.checkConservation(); reason != "" {
		return h.fail(i, op, "%s", reason)
	}

	// Mirror market membership into the ex-post twins so settles have
	// participants to act on.
	switch {
	case op.Kind == OpRegisterBuyer && refRes.err == nil:
		if e1, e2 := h.twinA.RegisterBuyer(string(op.Buyer)), h.twinB.RegisterBuyer(string(op.Buyer)); e1 != nil || e2 != nil {
			return h.fail(i, op, "ex-post twin registration: %v / %v", e1, e2)
		}
	case op.Kind == OpUpload && refRes.err == nil:
		if e1, e2 := h.twinA.AddDataset(string(op.Dataset)), h.twinB.AddDataset(string(op.Dataset)); e1 != nil || e2 != nil {
			return h.fail(i, op, "ex-post twin dataset: %v / %v", e1, e2)
		}
	case op.Kind == OpTick:
		h.twinA.Tick()
		h.twinB.Tick()
	}

	h.gen.Observe(op, refRes)

	if (i+1)%h.cfg.CheckEvery == 0 {
		return h.checkpoint(i)
	}
	return nil
}

// applySettle drives the ex-post arbiter twins and returns a non-empty
// reason on any divergence between them.
func (h *harness) applySettle(op Op) string {
	buyer, dataset := string(op.Buyer), string(op.Dataset)
	if op.Exante {
		ra, ea := h.twinA.Bid(buyer, dataset, op.Amount)
		rb, eb := h.twinB.Bid(buyer, dataset, op.Amount)
		if ra != rb || errString(ea) != errString(eb) {
			return fmt.Sprintf("ex-post twins diverge on bid: %+v (%v) vs %+v (%v)", ra, ea, rb, eb)
		}
	} else {
		ga, ea := h.twinA.Request(buyer, dataset)
		gb, eb := h.twinB.Request(buyer, dataset)
		if ga != gb || errString(ea) != errString(eb) {
			return fmt.Sprintf("ex-post twins diverge on request: %d (%v) vs %d (%v)", ga, ea, gb, eb)
		}
		if ea == nil {
			pa, e1 := h.twinA.Pay(ga, op.Amount)
			pb, e2 := h.twinB.Pay(gb, op.Amount)
			if pa != pb || errString(e1) != errString(e2) {
				return fmt.Sprintf("ex-post twins diverge on pay: %+v (%v) vs %+v (%v)", pa, e1, pb, e2)
			}
		}
	}
	revA, revB := h.twinA.Revenue(), h.twinB.Revenue()
	if revA != revB {
		return fmt.Sprintf("ex-post twin revenues diverge: %s vs %s", revA, revB)
	}
	if revA < h.lastExpostRevenue {
		return fmt.Sprintf("ex-post revenue decreased: %s -> %s", h.lastExpostRevenue, revA)
	}
	h.lastExpostRevenue = revA
	return ""
}

// checkpoint runs the expensive whole-state invariants.
func (h *harness) checkpoint(opIdx int) *Failure {
	h.report.Checkpoints++
	op := Op{Kind: OpTick} // placeholder desc for state-level failures
	want := h.ref.snapshot()
	wantBytes, err := want.Canonical()
	if err != nil {
		return h.fail(opIdx, op, "reference snapshot: %v", err)
	}
	for _, r := range h.replicas {
		got := r.jm.Snapshot()
		got.Config.Shards = 0 // parallelism knob, not market state
		gotBytes, err := got.Canonical()
		if err != nil {
			return h.fail(opIdx, op, "replica %s snapshot: %v", r.name, err)
		}
		if !bytes.Equal(gotBytes, wantBytes) {
			return h.fail(opIdx, op, "replica %s snapshot diverges from reference in sections %v",
				r.name, want.Diff(got))
		}
	}
	if reason := h.checkConservationFull(); reason != "" {
		return h.fail(opIdx, op, "%s", reason)
	}
	if reason := h.checkTotals(); reason != "" {
		return h.fail(opIdx, op, "%s", reason)
	}
	if reason := h.checkWaitMonotone(); reason != "" {
		return h.fail(opIdx, op, "%s", reason)
	}
	if f := h.checkFollower(opIdx); f != nil {
		return f
	}
	if f := h.checkStoreDisk(opIdx); f != nil {
		return f
	}
	return nil
}

// finalChecks verifies journal equivalence: the journal tails (everything
// after the config-bearing genesis record) must be byte-identical across
// shard counts, and replaying any journal must rebuild the exact live
// state.
func (h *harness) finalChecks() *Failure {
	op := Op{Kind: OpTick}
	var tail []byte
	for i, r := range h.replicas {
		if r.buf == nil {
			// The store twin's durable chain is checked against the flat
			// tail (and recovered from disk) in storeFinalChecks below.
			continue
		}
		b := r.buf.Bytes()
		idx := bytes.IndexByte(b, '\n')
		if idx < 0 {
			return h.fail(h.cfg.Ops-1, op, "replica %s journal has no genesis record", r.name)
		}
		t := b[idx+1:]
		if i == 0 {
			tail = t
		} else if !bytes.Equal(tail, t) {
			return h.fail(h.cfg.Ops-1, op, "journal tails diverge between %s and %s",
				h.replicas[0].name, r.name)
		}

		restored, err := journal.Restore(bytes.NewReader(b))
		if err != nil {
			return h.fail(h.cfg.Ops-1, op, "replica %s journal replay: %v", r.name, err)
		}
		liveBytes, err := r.jm.Snapshot().Canonical()
		if err != nil {
			return h.fail(h.cfg.Ops-1, op, "replica %s live snapshot: %v", r.name, err)
		}
		restoredBytes, err := restored.Snapshot().Canonical()
		if err != nil {
			return h.fail(h.cfg.Ops-1, op, "replica %s restored snapshot: %v", r.name, err)
		}
		if !bytes.Equal(liveBytes, restoredBytes) {
			return h.fail(h.cfg.Ops-1, op, "replica %s: journal replay does not rebuild live state", r.name)
		}
	}
	if h.storeRep != nil {
		if f := h.storeFinalChecks(tail); f != nil {
			return f
		}
	}
	return nil
}
