package torture

import (
	"fmt"

	"github.com/datamarket/shield/internal/command"
	"github.com/datamarket/shield/internal/market"
)

// commandFromOp converts one generated workload op into its typed
// command. Query ops are reads — they have no command form — so ok is
// false for them. Settle ops convert even though Apply rejects them
// against market state: they exercise the codec's ninth opcode.
func commandFromOp(op Op) (command.Command, bool) {
	switch op.Kind {
	case OpRegisterBuyer:
		return command.RegisterBuyer{Buyer: op.Buyer}, true
	case OpRegisterSeller:
		return command.RegisterSeller{Seller: op.Seller}, true
	case OpUpload:
		return command.UploadDataset{Seller: op.Seller, Dataset: op.Dataset}, true
	case OpCompose:
		return command.ComposeDataset{Dataset: op.Dataset, Constituents: op.Constituents}, true
	case OpWithdraw:
		return command.WithdrawDataset{Seller: op.Seller, Dataset: op.Dataset}, true
	case OpTick:
		return command.Tick{}, true
	case OpBid:
		return command.SubmitBid{Buyer: op.Buyer, Dataset: op.Dataset, Amount: op.Amount}, true
	case OpBatch:
		bids := make([]command.SubmitBid, len(op.Bids))
		for i, b := range op.Bids {
			bids[i] = command.SubmitBid{Buyer: b.Buyer, Dataset: b.Dataset, Amount: b.Amount}
		}
		return command.BidBatch{Bids: bids}, true
	case OpSettle:
		return command.Settle{Buyer: op.Buyer, Dataset: op.Dataset, Amount: op.Amount, Exante: op.Exante}, true
	default:
		return nil, false
	}
}

// CommandCorpus replays the seeded workload generator for ops
// operations against the sequential reference model and returns the
// canonical JSON and binary encodings of every command in the stream —
// registrations, dataset churn, realistic persona-driven bids and
// batches, ticks, settles, and the chaos ops' deliberately hostile
// amounts and identifiers. It exists to seed FuzzCommandDecode with
// encodings shaped like real traffic rather than hand-picked examples;
// determinism makes the corpus stable across runs of the same seed.
func CommandCorpus(seed uint64, ops int) ([][]byte, error) {
	cfg := Config{Seed: seed, Ops: ops}
	cfg.applyDefaults()
	minBid := cfg.Engine.MinBid
	if minBid <= 0 {
		minBid = 1
	}
	gen, err := newGenerator(cfg.Gen, seed, minBid)
	if err != nil {
		return nil, err
	}
	ref := newRefMarket(market.Config{Engine: cfg.Engine, Seed: seed})

	var out [][]byte
	for i := 0; i < ops; i++ {
		op := gen.Next()
		if cmd, ok := commandFromOp(op); ok {
			j, err := command.EncodeJSON(cmd)
			if err != nil {
				return nil, fmt.Errorf("torture: corpus op %d (%s): json: %w", i, op, err)
			}
			b, err := command.EncodeBinary(cmd)
			if err != nil {
				return nil, fmt.Errorf("torture: corpus op %d (%s): binary: %w", i, op, err)
			}
			out = append(out, j, b)
		}
		// Settles never touch market state; everything else feeds the
		// reference so the generator's books keep evolving realistically.
		if op.Kind == OpSettle {
			gen.Observe(op, opResult{})
			continue
		}
		gen.Observe(op, applyRef(ref, op))
	}
	return out, nil
}
