package torture

import (
	"fmt"
	"sort"

	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/market"
)

// errString is the comparison key for errors. The reference model
// reproduces the real market's wrap formats exactly, so full-string
// equality is both achievable and the strictest check available.
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// diffResults compares one op's outcome between the reference and a
// replica, returning "" when they agree.
func diffResults(op Op, ref, got opResult) string {
	if errString(ref.err) != errString(got.err) {
		return fmt.Sprintf("error %q vs reference %q", errString(got.err), errString(ref.err))
	}
	switch op.Kind {
	case OpTick:
		if ref.tick != got.tick {
			return fmt.Sprintf("clock %d vs reference %d", got.tick, ref.tick)
		}
	case OpBid:
		if ref.dec != got.dec {
			return fmt.Sprintf("decision %+v vs reference %+v", got.dec, ref.dec)
		}
	case OpBatch:
		if len(ref.batch) != len(got.batch) {
			return fmt.Sprintf("batch result length %d vs reference %d", len(got.batch), len(ref.batch))
		}
		for i := range ref.batch {
			if ref.batch[i].Decision != got.batch[i].Decision {
				return fmt.Sprintf("batch entry %d decision %+v vs reference %+v",
					i, got.batch[i].Decision, ref.batch[i].Decision)
			}
			if errString(ref.batch[i].Err) != errString(got.batch[i].Err) {
				return fmt.Sprintf("batch entry %d error %q vs reference %q",
					i, errString(got.batch[i].Err), errString(ref.batch[i].Err))
			}
		}
	case OpQuery:
		if ref.stats != got.stats {
			return fmt.Sprintf("stats %+v vs reference %+v", got.stats, ref.stats)
		}
	}
	return ""
}

// checkBidInvariants validates the paper's per-decision guarantees on
// the reference outcome: winners pay a posting price (positive, at most
// their bid, inside the candidate range), losers receive a bounded
// non-negative Time-Shield wait.
func (h *harness) checkBidInvariants(op Op, res opResult) string {
	check := func(amount float64, dec market.Decision, err error) string {
		if err != nil {
			return ""
		}
		if dec.Allocated {
			paid := dec.PricePaid
			if paid <= 0 {
				return fmt.Sprintf("winning bid paid non-positive price %s", paid)
			}
			if paid > market.FromFloat(amount) {
				return fmt.Sprintf("winner paid %s above its bid %v", paid, amount)
			}
			lo, hi := candidateRange(h.cfg.Engine.Candidates)
			if paid < market.FromFloat(lo) || paid > market.FromFloat(hi) {
				return fmt.Sprintf("price paid %s outside candidate range [%v, %v]", paid, lo, hi)
			}
			if dec.WaitPeriods != 0 {
				return fmt.Sprintf("winner assigned wait %d", dec.WaitPeriods)
			}
			return ""
		}
		if dec.WaitPeriods < 0 || dec.WaitPeriods > h.maxWait {
			return fmt.Sprintf("loser wait %d outside [0, %d]", dec.WaitPeriods, h.maxWait)
		}
		return ""
	}
	switch op.Kind {
	case OpBid:
		return check(op.Amount, res.dec, res.err)
	case OpBatch:
		for i, spec := range op.Bids {
			if i >= len(res.batch) {
				break
			}
			if reason := check(spec.Amount, res.batch[i].Decision, res.batch[i].Err); reason != "" {
				return fmt.Sprintf("batch entry %d: %s", i, reason)
			}
		}
	}
	return ""
}

func candidateRange(cands []float64) (lo, hi float64) {
	lo, hi = cands[0], cands[0]
	for _, c := range cands[1:] {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	return lo, hi
}

// checkConservation enforces ledger-level money conservation on the
// reference books after every op: market revenue must equal the running
// sum of transaction prices. The whole-books sweep over buyer and
// seller accounts is checkConservationFull, run at checkpoints — churn
// personas grow the account population with the run, so an every-op
// O(accounts) sweep would make 10⁷-op storms quadratic in ops.
func (h *harness) checkConservation() string {
	revenue := h.ref.st.Revenue()
	for n := h.ref.st.TxCount(); h.txCount < n; h.txCount++ {
		h.txSum += h.ref.st.TxAt(h.txCount).Price
	}
	if revenue != h.txSum {
		return fmt.Sprintf("money not conserved: revenue=%s txsum=%s", revenue, h.txSum)
	}
	return ""
}

// checkConservationFull is the whole-books sweep: market revenue equals
// total buyer spend, equals total seller balances (provenance splits
// are exact in Money), equals the sum of ledger transaction prices.
func (h *harness) checkConservationFull() string {
	revenue, spent, balances := h.ref.totals()
	if revenue != spent || revenue != balances || revenue != h.txSum {
		return fmt.Sprintf("money not conserved: revenue=%s spent=%s balances=%s txsum=%s",
			revenue, spent, balances, h.txSum)
	}
	return ""
}

// checkTotals cross-checks the real replicas' ledger totals against the
// reference at checkpoints.
func (h *harness) checkTotals() string {
	wantRev, wantSpent, wantBal := h.ref.totals()
	for _, r := range h.replicas {
		rev, spent, bal := r.jm.Totals()
		if rev != wantRev || spent != wantSpent || bal != wantBal {
			return fmt.Sprintf("replica %s totals (%s, %s, %s) != reference (%s, %s, %s)",
				r.name, rev, spent, bal, wantRev, wantSpent, wantBal)
		}
	}
	return ""
}

// checkWaitMonotone probes the Time-Shield guarantee on every reference
// engine: under the Bound replay strategy, a higher bid must never be
// assigned a longer wait (Claim 3's optimism is monotone in the bid).
// The probe is side-effect-free — computeWaitPeriod forks the learner
// and consumes no randomness. WaitStable replays the bid itself as the
// synthetic future, which carries no cross-bid ordering guarantee, so
// the probe only runs under WaitBound.
func (h *harness) checkWaitMonotone() string {
	if h.cfg.Engine.DisableWaitPeriods || h.cfg.Engine.Wait != core.WaitBound {
		return ""
	}
	// Deterministic engine order: DatasetIDs is sorted.
	ids := h.ref.st.DatasetIDs()

	lo, hi := candidateRange(h.cfg.Engine.Candidates)
	ladder := append([]float64{lo / 2}, h.cfg.Engine.Candidates...)
	sort.Float64s(ladder)
	ladder = append(ladder, hi+1)

	for _, id := range ids {
		prev := -1
		prevBid := 0.0
		for i, b := range ladder {
			w, err := h.ref.st.ComputeWait(id, b)
			if err != nil {
				return fmt.Sprintf("dataset %s: wait probe: %v", id, err)
			}
			if w < 0 || w > h.maxWait {
				return fmt.Sprintf("dataset %s: probe wait %d for bid %v outside [0, %d]", id, w, b, h.maxWait)
			}
			if i > 0 && w > prev {
				return fmt.Sprintf("dataset %s: wait not monotone: bid %v waits %d but higher bid %v waits %d",
					id, prevBid, prev, b, w)
			}
			prev, prevBid = w, b
		}
	}
	return ""
}
