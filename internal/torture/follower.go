package torture

import (
	"bytes"
	"net"
	"time"

	replication "github.com/datamarket/shield/internal/replica"
	"github.com/datamarket/shield/internal/wire"
)

// followerTwin is the replication twin of a torture run: a
// replica.Follower streaming the lead replica's committed command log
// over the real wire protocol (net.Pipe transport), killed and
// restarted at seeded points mid-stream. At every checkpoint it must
// converge to the leader's newest committed seq within a bounded wait
// (the lag gate) and its canonical snapshot must be byte-identical to
// the leader's (the divergence gate) — a follower that skips,
// duplicates, or misapplies one replicated command fails one of the
// two, with the usual shieldstorm repro line.
type followerTwin struct {
	feed *replication.Feed
	f    *replication.Follower
	rcfg replication.Config
	// kills counts injected chaos events; even events drop the
	// connection (state retained, tail catch-up), odd events
	// cold-restart the follower from nothing (snapshot catch-up).
	kills int
}

// newFollowerTwin attaches a replication feed to the lead replica and
// boots the follower. Must run before the first op so the feed's
// commit hook never misses a record.
func newFollowerTwin(cfg Config, leader *replica) (*followerTwin, error) {
	feed, err := replication.NewFeed(leader.jm, 0)
	if err != nil {
		return nil, err
	}
	ws := wire.NewServer(leader.jm).WithReplication(feed).
		WithHeartbeatInterval(10 * time.Millisecond)
	rcfg := replication.Config{
		Dial: func() (net.Conn, error) {
			srv, cli := net.Pipe()
			go func() { _ = ws.ServeConn(srv) }()
			return cli, nil
		},
		Name:       "torture-follower",
		BackoffMin: time.Millisecond,
		BackoffMax: 20 * time.Millisecond,
	}
	f, err := replication.Start(rcfg)
	if err != nil {
		return nil, err
	}
	if cfg.canaryFollowerDrop > 0 {
		f.TestDropSeq(cfg.canaryFollowerDrop)
	}
	if cfg.canaryFollowerStall {
		f.TestStall()
	}
	return &followerTwin{feed: feed, f: f, rcfg: rcfg}, nil
}

// chaos injects one seeded kill: alternately a connection drop (the
// follower redials and tail-catches-up from its applied seq) and a cold
// restart (a fresh follower with no state, forcing snapshot catch-up).
func (t *followerTwin) chaos(logf func(string, ...any)) error {
	defer func() { t.kills++ }()
	if t.kills%2 == 0 {
		if logf != nil {
			logf("follower chaos %d: dropping replication connection", t.kills)
		}
		t.f.Kill()
		return nil
	}
	if logf != nil {
		logf("follower chaos %d: cold-restarting follower", t.kills)
	}
	t.f.Close()
	f, err := replication.Start(t.rcfg)
	if err != nil {
		return err
	}
	t.f = f
	return nil
}

func (t *followerTwin) close() {
	t.f.Close()
}

// checkFollower is the checkpoint gate for the replication twin: wait
// (bounded) for the follower to reach the leader's newest committed
// seq, then pin its snapshot byte-identical to the leader's.
func (h *harness) checkFollower(opIdx int) *Failure {
	if h.twin == nil {
		return nil
	}
	op := Op{Kind: OpTick}
	want := h.twin.feed.LeaderSeq()
	deadline := time.Now().Add(h.cfg.followerConverge)
	for h.twin.f.Applied() < want {
		if time.Now().After(deadline) {
			applied, leader, lag, connected := h.twin.f.Staleness()
			return h.fail(opIdx, op,
				"follower twin: replication lag gate tripped: applied %d < leader %d after %s (observed leader %d, lag %.2fs, connected %v)",
				applied, want, h.cfg.followerConverge, leader, lag, connected)
		}
		time.Sleep(time.Millisecond)
	}
	fm := h.twin.f.Market()
	if fm == nil {
		return h.fail(opIdx, op, "follower twin converged to seq %d with no state", want)
	}
	wantBytes, err := h.replicas[0].jm.Snapshot().Canonical()
	if err != nil {
		return h.fail(opIdx, op, "leader snapshot: %v", err)
	}
	gotBytes, err := fm.Snapshot().Canonical()
	if err != nil {
		return h.fail(opIdx, op, "follower twin snapshot: %v", err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		return h.fail(opIdx, op,
			"follower twin snapshot diverges from leader at seq %d (%d vs %d bytes)",
			want, len(gotBytes), len(wantBytes))
	}
	return nil
}
