package torture

import (
	"fmt"
	"strings"

	"github.com/datamarket/shield/internal/buyers"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/rng"
	"github.com/datamarket/shield/internal/timeseries"
	"github.com/datamarket/shield/internal/userstudy"
)

// OpKind enumerates the operations the workload generator emits.
type OpKind int

const (
	OpRegisterBuyer OpKind = iota
	OpRegisterSeller
	OpUpload
	OpCompose
	OpWithdraw
	OpTick
	OpBid
	OpBatch
	OpQuery
	OpSettle
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpRegisterBuyer:
		return "register_buyer"
	case OpRegisterSeller:
		return "register_seller"
	case OpUpload:
		return "upload"
	case OpCompose:
		return "compose"
	case OpWithdraw:
		return "withdraw"
	case OpTick:
		return "tick"
	case OpBid:
		return "bid"
	case OpBatch:
		return "batch"
	case OpQuery:
		return "query"
	case OpSettle:
		return "settle"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// BidSpec is one entry of a batch op.
type BidSpec struct {
	Buyer   market.BuyerID
	Dataset market.DatasetID
	Amount  float64
}

// Op is one generated operation. Exactly the fields relevant to Kind are
// set. Chaos ops are deliberately invalid requests (bad amounts, unknown
// participants, rule violations) that every implementation must reject
// identically; they are constructed so that they cannot succeed against
// the current state, which keeps the generator's book mirror exact.
type Op struct {
	Kind         OpKind
	Buyer        market.BuyerID
	Seller       market.SellerID
	Dataset      market.DatasetID
	Constituents []market.DatasetID
	Amount       float64
	Bids         []BidSpec
	// Exante selects the ex-ante bid path for settle ops; otherwise the
	// op runs the ex-post request/pay protocol.
	Exante bool

	chaos bool
}

// String renders a compact human-readable description for failure
// reports.
func (o Op) String() string {
	var b strings.Builder
	b.WriteString(o.Kind.String())
	if o.chaos {
		b.WriteString("!")
	}
	switch o.Kind {
	case OpRegisterBuyer:
		fmt.Fprintf(&b, " %s", o.Buyer)
	case OpRegisterSeller:
		fmt.Fprintf(&b, " %s", o.Seller)
	case OpUpload:
		fmt.Fprintf(&b, " %s by %s", o.Dataset, o.Seller)
	case OpCompose:
		fmt.Fprintf(&b, " %s from %v", o.Dataset, o.Constituents)
	case OpWithdraw:
		fmt.Fprintf(&b, " %s by %s", o.Dataset, o.Seller)
	case OpBid:
		fmt.Fprintf(&b, " %s on %s at %.4f", o.Buyer, o.Dataset, o.Amount)
	case OpBatch:
		fmt.Fprintf(&b, " of %d", len(o.Bids))
	case OpQuery:
		fmt.Fprintf(&b, " %s", o.Dataset)
	case OpSettle:
		mode := "expost"
		if o.Exante {
			mode = "exante"
		}
		fmt.Fprintf(&b, " %s %s on %s pay %.4f", mode, o.Buyer, o.Dataset, o.Amount)
	}
	return b.String()
}

// MixWeights are the relative frequencies of the steady-state op kinds.
type MixWeights struct {
	Bid      int
	Batch    int
	Tick     int
	Upload   int
	Compose  int
	Withdraw int
	Query    int
	Settle   int
}

// DefaultMix is a bid-heavy mix with enough churn to keep registration,
// composition and withdrawal paths hot.
func DefaultMix() MixWeights {
	return MixWeights{Bid: 50, Batch: 12, Tick: 14, Upload: 3, Compose: 3, Withdraw: 2, Query: 8, Settle: 8}
}

// GenConfig configures the workload generator. Zero values select the
// defaults noted on each field.
type GenConfig struct {
	// Buyers is the number of buyer accounts (default 24). Buyer bidding
	// personas are drawn from the user-study panel distribution.
	Buyers int
	// Sellers is the number of seller accounts (default 4).
	Sellers int
	// InitialDatasets is the number of base datasets uploaded during the
	// setup prologue (default 12).
	InitialDatasets int
	// MaxDatasets caps alive base datasets (default 64).
	MaxDatasets int
	// MaxDerived caps alive derived datasets (default 12).
	MaxDerived int
	// MaxBatch is the maximum entries per batch op (default 6).
	MaxBatch int
	// Horizon is the maximum campaign deadline span in periods
	// (default 12).
	Horizon int
	// SeriesLen is the length of each dataset's AR(1) valuation series
	// (default 256).
	SeriesLen int
	// Chaos is the probability that a steady-state op is replaced by a
	// deliberately invalid request (default 0.05). Negative disables.
	Chaos float64
	// Mix sets the op-kind frequencies; the zero value selects
	// DefaultMix.
	Mix MixWeights
}

func (c *GenConfig) applyDefaults() {
	if c.Buyers == 0 {
		c.Buyers = 24
	}
	if c.Sellers == 0 {
		c.Sellers = 4
	}
	if c.InitialDatasets == 0 {
		c.InitialDatasets = 12
	}
	if c.MaxDatasets == 0 {
		c.MaxDatasets = 64
	}
	if c.MaxDerived == 0 {
		c.MaxDerived = 12
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 6
	}
	if c.Horizon == 0 {
		c.Horizon = 12
	}
	if c.SeriesLen == 0 {
		c.SeriesLen = 256
	}
	if c.Chaos == 0 {
		c.Chaos = 0.05
	}
	if c.Chaos < 0 {
		c.Chaos = 0
	}
	if c.Mix == (MixWeights{}) {
		c.Mix = DefaultMix()
	}
}

// campaign is one buyer's ongoing attempt to acquire one dataset: a
// strategy instance from internal/buyers plus a deadline. Campaigns renew
// with a fresh valuation draw when the deadline passes without a win.
type campaign struct {
	strat    buyers.Strategy
	deadline int
}

// genBuyer is the generator's mirror of one buyer account plus its
// behavioural persona. The book fields (lastBid, blockedUntil, acquired)
// shadow the market's own rules so the generator can keep most traffic
// valid; they are updated only from reference-model outcomes.
type genBuyer struct {
	id     market.BuyerID
	rand   *rng.RNG
	anchor float64
	kind   int

	camps        map[market.DatasetID]*campaign
	lastBid      map[market.DatasetID]int
	blockedUntil map[market.DatasetID]int
	acquired     map[market.DatasetID]bool
}

// genDataset is the generator's view of one dataset.
type genDataset struct {
	id      market.DatasetID
	seller  market.SellerID
	derived bool
	parts   []market.DatasetID
	series  []float64
}

// generator produces the op stream. All randomness flows from named
// forks of a single root RNG, so the stream is a pure function of the
// seed and the reference model's outcomes (which are themselves
// deterministic).
type generator struct {
	cfg       GenConfig
	minBid    float64
	opRand    *rng.RNG
	chaosRand *rng.RNG
	root      *rng.RNG

	clock   int
	buyers  []*genBuyer
	sellers []market.SellerID

	datasets     map[market.DatasetID]*genDataset
	aliveBase    []market.DatasetID
	aliveDerived []market.DatasetID
	withdrawn    []market.DatasetID
	// expostDatasets lists every base dataset ever uploaded successfully:
	// the ex-post arbiter twins never remove datasets.
	expostDatasets []market.DatasetID

	// lastPrice is the most recent winning price per dataset, leaked to
	// LeakReactive buyers (-1 when no sale has happened yet).
	lastPrice map[market.DatasetID]float64

	nextBase    int
	nextDerived int

	pending []Op
}

// newGenerator builds a generator. minBid is the market's bid floor
// (strategy floors are pinned to it so generated amounts stay positive
// and mostly plausible).
func newGenerator(cfg GenConfig, seed uint64, minBid float64) (*generator, error) {
	cfg.applyDefaults()
	if minBid <= 0 {
		minBid = 1
	}
	root := rng.New(seed)
	g := &generator{
		cfg:       cfg,
		minBid:    minBid,
		root:      root,
		opRand:    root.Fork("ops"),
		chaosRand: root.Fork("chaos"),
		datasets:  make(map[market.DatasetID]*genDataset),
		lastPrice: make(map[market.DatasetID]float64),
	}

	// Buyer aggressiveness anchors come from the paper's user-study
	// panel: RQ1 bids for a valuation of 100 give each simulated
	// participant's bid-to-valuation ratio.
	panel := userstudy.NewPanel(cfg.Buyers, root.Fork("panel").Uint64())
	ratios, err := panel.RQ1(100)
	if err != nil {
		return nil, fmt.Errorf("torture: user-study panel: %w", err)
	}

	for i := 0; i < cfg.Sellers; i++ {
		id := market.SellerID(fmt.Sprintf("s%d", i))
		g.sellers = append(g.sellers, id)
		g.pending = append(g.pending, Op{Kind: OpRegisterSeller, Seller: id})
	}
	for i := 0; i < cfg.Buyers; i++ {
		id := market.BuyerID(fmt.Sprintf("b%02d", i))
		br := root.Fork("buyer/" + string(id))
		anchor := ratios[i] / 100
		if anchor < 0.05 {
			anchor = 0.05
		}
		g.buyers = append(g.buyers, &genBuyer{
			id:           id,
			rand:         br,
			anchor:       anchor,
			kind:         br.Intn(6),
			camps:        make(map[market.DatasetID]*campaign),
			lastBid:      make(map[market.DatasetID]int),
			blockedUntil: make(map[market.DatasetID]int),
			acquired:     make(map[market.DatasetID]bool),
		})
		g.pending = append(g.pending, Op{Kind: OpRegisterBuyer, Buyer: id})
	}
	for i := 0; i < cfg.InitialDatasets; i++ {
		g.pending = append(g.pending, g.makeUploadOp())
	}
	return g, nil
}

// makeUploadOp mints a fresh base dataset (IDs are monotonic and never
// reused, so an upload of a fresh ID always succeeds) and records it in
// the generator's books immediately.
func (g *generator) makeUploadOp() Op {
	id := market.DatasetID(fmt.Sprintf("d%03d", g.nextBase))
	g.nextBase++
	seller := g.sellers[g.opRand.Intn(len(g.sellers))]
	g.datasets[id] = &genDataset{id: id, seller: seller, series: g.makeSeries(id)}
	g.aliveBase = append(g.aliveBase, id)
	g.expostDatasets = append(g.expostDatasets, id)
	return Op{Kind: OpUpload, Seller: seller, Dataset: id}
}

// makeSeries draws a per-dataset AR(1) valuation series using the
// paper's AR grid; each dataset has its own named RNG fork so the series
// does not depend on creation order.
func (g *generator) makeSeries(id market.DatasetID) []float64 {
	r := g.root.Fork("dataset/" + string(id))
	grid := timeseries.PaperARGrid()
	pick := grid[r.Intn(len(grid))]
	mean := 60 + 80*r.Float64()
	series, err := timeseries.GenerateValuations(timeseries.ARConfig{
		AR:    pick[0],
		Sigma: pick[1],
		Mean:  mean,
		Floor: mean * 0.05,
		N:     g.cfg.SeriesLen,
	}, r)
	if err != nil {
		// The config above is static and valid; a failure here is a
		// generator bug, not an input condition.
		panic(fmt.Sprintf("torture: valuation series for %s: %v", id, err))
	}
	return series
}

// Next returns the next op. The setup prologue drains first; afterwards
// ops are drawn from the configured mix, with a chaos roll that may
// replace the draw with a deliberately invalid request.
func (g *generator) Next() Op {
	if len(g.pending) > 0 {
		op := g.pending[0]
		g.pending = g.pending[1:]
		return op
	}
	if g.cfg.Chaos > 0 && g.chaosRand.Bool(g.cfg.Chaos) {
		return g.makeChaosOp()
	}

	m := g.cfg.Mix
	weights := []int{m.Bid, m.Batch, m.Tick, m.Upload, m.Compose, m.Withdraw, m.Query, m.Settle}
	kinds := []OpKind{OpBid, OpBatch, OpTick, OpUpload, OpCompose, OpWithdraw, OpQuery, OpSettle}
	total := 0
	for _, w := range weights {
		total += w
	}
	roll := g.opRand.Intn(total)
	var kind OpKind
	for i, w := range weights {
		if roll < w {
			kind = kinds[i]
			break
		}
		roll -= w
	}

	switch kind {
	case OpBid:
		if op, ok := g.makeBidOp(); ok {
			return op
		}
	case OpBatch:
		if op, ok := g.makeBatchOp(); ok {
			return op
		}
	case OpUpload:
		if len(g.aliveBase) < g.cfg.MaxDatasets {
			return g.makeUploadOp()
		}
	case OpCompose:
		if op, ok := g.makeComposeOp(); ok {
			return op
		}
	case OpWithdraw:
		if op, ok := g.makeWithdrawOp(); ok {
			return op
		}
	case OpQuery:
		if ds, ok := g.pickAliveDataset(); ok {
			return Op{Kind: OpQuery, Dataset: ds}
		}
	case OpSettle:
		if op, ok := g.makeSettleOp(); ok {
			return op
		}
	}
	// Infeasible draw (everyone blocked, caps reached, ...): advance time
	// instead, which is exactly what unblocks most of those states.
	return Op{Kind: OpTick}
}

func (g *generator) aliveAll() []market.DatasetID {
	out := make([]market.DatasetID, 0, len(g.aliveBase)+len(g.aliveDerived))
	out = append(out, g.aliveBase...)
	out = append(out, g.aliveDerived...)
	return out
}

func (g *generator) pickAliveDataset() (market.DatasetID, bool) {
	all := g.aliveAll()
	if len(all) == 0 {
		return "", false
	}
	return all[g.opRand.Intn(len(all))], true
}

// bidFor asks the buyer's campaign strategy for the next bid on ds,
// creating or renewing the campaign as needed. ok is false when the
// persona declines to bid right now (snipers lurking, strategics sitting
// out a wait).
func (g *generator) bidFor(b *genBuyer, ds *genDataset) (float64, bool) {
	camp := b.camps[ds.id]
	if camp == nil || g.clock > camp.deadline {
		v := ds.series[g.clock%len(ds.series)] * b.anchor
		if v < g.minBid {
			v = g.minBid
		}
		camp = &campaign{
			strat:    g.makeStrategy(b, v),
			deadline: g.clock + 1 + b.rand.Intn(g.cfg.Horizon),
		}
		b.camps[ds.id] = camp
	}
	leak, ok := g.lastPrice[ds.id]
	if !ok {
		leak = -1
	}
	return camp.strat.NextBid(buyers.Context{
		Period:      g.clock,
		Deadline:    camp.deadline,
		LeakedPrice: leak,
	})
}

func (g *generator) makeStrategy(b *genBuyer, v float64) buyers.Strategy {
	floor := g.minBid
	switch b.kind {
	case 1:
		return buyers.NewStrategic(v, 0.3+0.3*b.rand.Float64(), floor, false)
	case 2:
		return buyers.NewStrategic(v, 0.3+0.3*b.rand.Float64(), floor, true)
	case 3:
		return buyers.NewLeakReactive(v, 0.5+0.4*b.rand.Float64(), 0.05)
	case 4:
		return buyers.NewSniper(v, 1+b.rand.Intn(3))
	case 5:
		return buyers.NewNoisy(v, 0.05*v+0.05, floor, b.rand)
	default:
		return buyers.NewTruthful(v)
	}
}

// eligible reports whether the buyer may bid on the dataset right now
// under the market's cadence rules, as mirrored in the generator's
// books.
func (g *generator) eligible(b *genBuyer, ds market.DatasetID) bool {
	if b.acquired[ds] {
		return false
	}
	if last, ok := b.lastBid[ds]; ok && last == g.clock {
		return false
	}
	return g.clock >= b.blockedUntil[ds]
}

func (g *generator) makeBidOp() (Op, bool) {
	all := g.aliveAll()
	if len(all) == 0 || len(g.buyers) == 0 {
		return Op{}, false
	}
	for attempt := 0; attempt < 8; attempt++ {
		b := g.buyers[g.opRand.Intn(len(g.buyers))]
		ds := all[g.opRand.Intn(len(all))]
		if !g.eligible(b, ds) {
			continue
		}
		amount, ok := g.bidFor(b, g.datasets[ds])
		if !ok {
			continue
		}
		return Op{Kind: OpBid, Buyer: b.id, Dataset: ds, Amount: amount}, true
	}
	return Op{}, false
}

func (g *generator) makeBatchOp() (Op, bool) {
	all := g.aliveAll()
	if len(all) == 0 || g.cfg.MaxBatch < 2 {
		return Op{}, false
	}
	want := 2 + g.opRand.Intn(g.cfg.MaxBatch-1)
	used := make(map[string]bool)
	var specs []BidSpec
	for attempt := 0; attempt < 4*want && len(specs) < want; attempt++ {
		b := g.buyers[g.opRand.Intn(len(g.buyers))]
		ds := all[g.opRand.Intn(len(all))]
		key := string(b.id) + "\x00" + string(ds)
		if used[key] || !g.eligible(b, ds) {
			continue
		}
		amount, ok := g.bidFor(b, g.datasets[ds])
		if !ok {
			continue
		}
		used[key] = true
		specs = append(specs, BidSpec{Buyer: b.id, Dataset: ds, Amount: amount})
	}
	if len(specs) < 2 {
		return Op{}, false
	}
	return Op{Kind: OpBatch, Bids: specs}, true
}

func (g *generator) makeComposeOp() (Op, bool) {
	if len(g.aliveDerived) >= g.cfg.MaxDerived || len(g.aliveBase) < 2 {
		return Op{}, false
	}
	n := 2 + g.opRand.Intn(2)
	if n > len(g.aliveBase) {
		n = len(g.aliveBase)
	}
	perm := g.opRand.Perm(len(g.aliveBase))
	parts := make([]market.DatasetID, n)
	for i := 0; i < n; i++ {
		parts[i] = g.aliveBase[perm[i]]
	}
	id := market.DatasetID(fmt.Sprintf("c%03d", g.nextDerived))
	g.nextDerived++
	g.datasets[id] = &genDataset{id: id, derived: true, parts: parts, series: g.makeSeries(id)}
	g.aliveDerived = append(g.aliveDerived, id)
	return Op{Kind: OpCompose, Dataset: id, Constituents: parts}, true
}

// lockedBases returns the set of base datasets referenced by any alive
// derived dataset; the market refuses to withdraw those.
func (g *generator) lockedBases() map[market.DatasetID]bool {
	locked := make(map[market.DatasetID]bool)
	for _, did := range g.aliveDerived {
		for _, p := range g.datasets[did].parts {
			locked[p] = true
		}
	}
	return locked
}

func (g *generator) makeWithdrawOp() (Op, bool) {
	const keepAlive = 4
	if len(g.aliveBase) <= keepAlive {
		return Op{}, false
	}
	locked := g.lockedBases()
	var free []market.DatasetID
	for _, id := range g.aliveBase {
		if !locked[id] {
			free = append(free, id)
		}
	}
	if len(free) == 0 {
		return Op{}, false
	}
	id := free[g.opRand.Intn(len(free))]
	ds := g.datasets[id]
	for i, a := range g.aliveBase {
		if a == id {
			g.aliveBase = append(g.aliveBase[:i], g.aliveBase[i+1:]...)
			break
		}
	}
	g.withdrawn = append(g.withdrawn, id)
	// Drop campaigns aimed at the dead dataset so personas don't keep
	// asking to bid on it.
	for _, b := range g.buyers {
		delete(b.camps, id)
	}
	return Op{Kind: OpWithdraw, Seller: ds.seller, Dataset: id}, true
}

func (g *generator) makeSettleOp() (Op, bool) {
	if len(g.expostDatasets) == 0 {
		return Op{}, false
	}
	ds := g.expostDatasets[g.opRand.Intn(len(g.expostDatasets))]
	b := g.buyers[g.opRand.Intn(len(g.buyers))]
	series := g.datasets[ds].series
	amount := series[g.clock%len(series)] * g.opRand.Uniform(0.3, 1.2)
	return Op{
		Kind:    OpSettle,
		Buyer:   b.id,
		Dataset: ds,
		Amount:  amount,
		Exante:  g.opRand.Bool(0.4),
	}, true
}

// makeChaosOp emits a request that is guaranteed to be rejected given the
// current state. The chaos RNG is independent of the op RNG so enabling
// or tuning chaos does not reshuffle the valid traffic.
func (g *generator) makeChaosOp() Op {
	all := g.aliveAll()
	anyBuyer := func() market.BuyerID {
		return g.buyers[g.chaosRand.Intn(len(g.buyers))].id
	}
	// Each case returns (op, ok); infeasible cases fall through to the
	// always-available bad-amount bid.
	for attempt := 0; attempt < 4; attempt++ {
		switch g.chaosRand.Intn(10) {
		case 0: // non-positive bid amount
			if len(all) > 0 {
				amounts := []float64{0, -1, -1e300}
				return Op{Kind: OpBid, chaos: true, Buyer: anyBuyer(),
					Dataset: all[g.chaosRand.Intn(len(all))],
					Amount:  amounts[g.chaosRand.Intn(len(amounts))]}
			}
		case 1: // unknown buyer
			if len(all) > 0 {
				return Op{Kind: OpBid, chaos: true, Buyer: "ghost-buyer",
					Dataset: all[g.chaosRand.Intn(len(all))], Amount: 10}
			}
		case 2: // unknown or withdrawn dataset
			ds := market.DatasetID("ghost-dataset")
			if len(g.withdrawn) > 0 && g.chaosRand.Bool(0.5) {
				ds = g.withdrawn[g.chaosRand.Intn(len(g.withdrawn))]
			}
			return Op{Kind: OpBid, chaos: true, Buyer: anyBuyer(), Dataset: ds, Amount: 10}
		case 3: // duplicate upload of an alive dataset by its owner
			if len(g.aliveBase) > 0 {
				id := g.aliveBase[g.chaosRand.Intn(len(g.aliveBase))]
				return Op{Kind: OpUpload, chaos: true, Seller: g.datasets[id].seller, Dataset: id}
			}
		case 4: // upload by an unknown seller (fresh id: must fail before touching the graph)
			return Op{Kind: OpUpload, chaos: true, Seller: "ghost-seller",
				Dataset: market.DatasetID(fmt.Sprintf("x%03d", g.chaosRand.Intn(1000)))}
		case 5: // duplicate registration
			if g.chaosRand.Bool(0.5) {
				return Op{Kind: OpRegisterBuyer, chaos: true, Buyer: anyBuyer()}
			}
			return Op{Kind: OpRegisterSeller, chaos: true,
				Seller: g.sellers[g.chaosRand.Intn(len(g.sellers))]}
		case 6: // withdraw by a non-owner
			if len(g.aliveBase) > 0 && len(g.sellers) > 1 {
				id := g.aliveBase[g.chaosRand.Intn(len(g.aliveBase))]
				owner := g.datasets[id].seller
				for _, s := range g.sellers {
					if s != owner {
						return Op{Kind: OpWithdraw, chaos: true, Seller: s, Dataset: id}
					}
				}
			}
		case 7: // withdraw a base dataset locked by a derived one
			locked := g.lockedBases()
			for _, id := range g.aliveBase {
				if locked[id] {
					return Op{Kind: OpWithdraw, chaos: true, Seller: g.datasets[id].seller, Dataset: id}
				}
			}
		case 8: // compose with an unknown constituent
			return Op{Kind: OpCompose, chaos: true,
				Dataset:      market.DatasetID(fmt.Sprintf("y%03d", g.chaosRand.Intn(1000))),
				Constituents: []market.DatasetID{"ghost-dataset"}}
		case 9: // rebid in the same period / bid during a wait / bid on acquired
			if op, ok := g.makeRuleViolationBid(); ok {
				return op
			}
		}
	}
	if len(all) > 0 {
		return Op{Kind: OpBid, chaos: true, Buyer: anyBuyer(),
			Dataset: all[g.chaosRand.Intn(len(all))], Amount: -1}
	}
	return Op{Kind: OpRegisterBuyer, chaos: true, Buyer: anyBuyer()}
}

// makeRuleViolationBid finds a (buyer, dataset) pair that the market's
// cadence rules currently forbid and bids on it. Iteration is over
// ordered slices only — map iteration order must never influence the
// stream.
func (g *generator) makeRuleViolationBid() (Op, bool) {
	all := g.aliveAll()
	type pair struct {
		b  market.BuyerID
		ds market.DatasetID
	}
	var candidates []pair
	for _, b := range g.buyers {
		for _, ds := range all {
			if b.acquired[ds] {
				candidates = append(candidates, pair{b.id, ds})
				continue
			}
			if last, ok := b.lastBid[ds]; ok && last == g.clock {
				candidates = append(candidates, pair{b.id, ds})
				continue
			}
			if g.clock < b.blockedUntil[ds] {
				candidates = append(candidates, pair{b.id, ds})
			}
		}
	}
	if len(candidates) == 0 {
		return Op{}, false
	}
	p := candidates[g.chaosRand.Intn(len(candidates))]
	return Op{Kind: OpBid, chaos: true, Buyer: p.b, Dataset: p.ds, Amount: 10}, true
}

// Observe feeds the reference model's outcome for op back into the
// generator's books. Chaos ops are guaranteed rejections and never touch
// the books.
func (g *generator) Observe(op Op, res opResult) {
	switch op.Kind {
	case OpTick:
		g.clock++
	case OpBid:
		if op.chaos {
			return
		}
		g.observeBid(op.Buyer, op.Dataset, op.Amount, res.dec, res.err)
	case OpBatch:
		for i, spec := range op.Bids {
			if i < len(res.batch) {
				g.observeBid(spec.Buyer, spec.Dataset, spec.Amount, res.batch[i].Decision, res.batch[i].Err)
			}
		}
	}
}

func (g *generator) buyerByID(id market.BuyerID) *genBuyer {
	for _, b := range g.buyers {
		if b.id == id {
			return b
		}
	}
	return nil
}

func (g *generator) observeBid(buyer market.BuyerID, ds market.DatasetID, amount float64, dec market.Decision, err error) {
	b := g.buyerByID(buyer)
	if b == nil || err != nil {
		return
	}
	b.lastBid[ds] = g.clock
	if dec.Allocated {
		b.acquired[ds] = true
		delete(b.camps, ds)
		g.lastPrice[ds] = dec.PricePaid.Float()
	} else {
		b.blockedUntil[ds] = g.clock + dec.WaitPeriods
	}
	if camp := b.camps[ds]; camp != nil {
		camp.strat.Observe(buyers.Outcome{
			Period:    g.clock,
			Bid:       true,
			Won:       dec.Allocated,
			PricePaid: dec.PricePaid.Float(),
			Wait:      dec.WaitPeriods,
		})
	}
}
