package torture

import (
	"reflect"
	"strings"
	"testing"

	"github.com/datamarket/shield/internal/core"
)

// small returns a config sized for unit tests: enough ops to cross many
// epoch boundaries, checkpoints frequent enough to exercise the
// whole-state comparisons several times.
func small(seed uint64, ops int) Config {
	return Config{Seed: seed, Ops: ops, CheckEvery: ops / 4}
}

func TestDifferentialSmallRun(t *testing.T) {
	rep, err := Run(small(1, 4000))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checkpoints < 4 {
		t.Errorf("expected >= 4 checkpoints, got %d", rep.Checkpoints)
	}
	if rep.Allocations == 0 {
		t.Error("no allocations: workload never sold anything")
	}
	if rep.Revenue <= 0 {
		t.Errorf("revenue %s, want positive", rep.Revenue)
	}
	if rep.Rejections == 0 {
		t.Error("no rejections: chaos ops never exercised the error paths")
	}
	// Every steady-state op kind must appear in a run this long.
	for _, kind := range []OpKind{OpBid, OpBatch, OpTick, OpUpload, OpCompose, OpWithdraw, OpQuery, OpSettle} {
		if rep.OpCounts[kind.String()] == 0 {
			t.Errorf("op kind %s never generated", kind)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(small(7, 2500))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(small(7, 2500))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed produced different reports:\n%+v\n%+v", a, b)
	}
}

func TestSeedsDiverge(t *testing.T) {
	a, err := Run(small(1, 1500))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(small(2, 1500))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.OpCounts, b.OpCounts) && a.Revenue == b.Revenue {
		t.Error("different seeds produced identical histories")
	}
}

func TestWaitStableStrategy(t *testing.T) {
	cfg := small(3, 2000)
	cfg.Engine = DefaultEngine()
	cfg.Engine.Wait = core.WaitStable
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestMutationCanary proves the differential actually discriminates
// now that the reference shares Apply with the live market: a
// deliberately broken price update seeded into the LIVE replicas'
// engines only (the reference stays clean) must be caught, with a
// reproduction line in the failure.
func TestMutationCanary(t *testing.T) {
	cfg := small(1, 2000)
	cfg.canaryPerturb = func(p float64) float64 { return p * 1.02 }

	_, err := Run(cfg)
	if err == nil {
		t.Fatal("perturbed engine prices were not detected")
	}
	var f *Failure
	if !asFailure(err, &f) {
		t.Fatalf("expected *Failure, got %T: %v", err, err)
	}
	if !strings.Contains(err.Error(), "repro: shieldstorm -seed 1 -ops 2000") {
		t.Errorf("failure lacks repro line: %v", err)
	}
}

func asFailure(err error, out **Failure) bool {
	f, ok := err.(*Failure)
	if ok {
		*out = f
	}
	return ok
}

func TestFailureReproLine(t *testing.T) {
	f := &Failure{Seed: 42, Ops: 100000, OpIndex: 7, OpDesc: "bid b01 on d002 at 12.0000", Reason: "boom"}
	got := f.Error()
	for _, want := range []string{
		"torture failure at op 7 (bid b01 on d002 at 12.0000): boom",
		"repro: shieldstorm -seed 42 -ops 100000",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("failure message %q missing %q", got, want)
		}
	}
}

func TestRegridRejected(t *testing.T) {
	cfg := small(1, 100)
	cfg.Engine = DefaultEngine()
	cfg.Engine.RegridEvery = 4
	if _, err := Run(cfg); err == nil {
		t.Fatal("RegridEvery accepted; the reference cannot mirror it")
	}
}
