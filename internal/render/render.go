// Package render presents experiment results as ASCII tables, box-plot
// strips, and heat maps, and exports CSV for external replotting. The
// paper's figures are matplotlib plots; the claims they carry (who wins,
// where revenue collapses, where crossovers sit) survive in these text
// renderings, and the CSV emitters preserve the raw numbers.
package render

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"

	"github.com/datamarket/shield/internal/stats"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: strings pass through,
// float64 render with %.4g, ints with %d, anything else with %v.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.4g", v))
		case int:
			row = append(row, fmt.Sprintf("%d", v))
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(row...)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) error {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
		return err
	}
	if err := line(t.header); err != nil {
		return err
	}
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Render(&sb)
	return sb.String()
}

// BoxStrip renders a stats.Summary as a one-line box plot over [lo, hi]
// using width characters: '|' whiskers at P1/P99, '[' and ']' at P25/P75,
// and 'M' at the median.
func BoxStrip(s stats.Summary, lo, hi float64, width int) string {
	if width < 10 {
		width = 10
	}
	cells := []byte(strings.Repeat(" ", width))
	pos := func(v float64) int {
		if math.IsNaN(v) || hi <= lo {
			return 0
		}
		p := int(float64(width-1) * (v - lo) / (hi - lo))
		if p < 0 {
			p = 0
		}
		if p > width-1 {
			p = width - 1
		}
		return p
	}
	p1, p25, med, p75, p99 := pos(s.P1), pos(s.P25), pos(s.Median), pos(s.P75), pos(s.P99)
	for i := p1; i <= p99 && i < width; i++ {
		cells[i] = '-'
	}
	cells[p1] = '|'
	cells[p99] = '|'
	for i := p25; i <= p75 && i < width; i++ {
		cells[i] = '='
	}
	cells[p25] = '['
	cells[p75] = ']'
	cells[med] = 'M'
	return string(cells)
}

// Heatmap renders a matrix of values in [0, 1] as shaded cells plus the
// numeric value, with row and column labels — the Figure 5b/5c format.
type Heatmap struct {
	RowLabel, ColLabel string
	Rows, Cols         []string
	// Values[r][c] in [0, 1]; NaN renders as blanks.
	Values [][]float64
}

var shades = []rune(" .:-=+*#%@")

// Render writes the heat map to w.
func (h *Heatmap) Render(w io.Writer) error {
	if len(h.Values) != len(h.Rows) {
		return fmt.Errorf("render: %d value rows for %d labels", len(h.Values), len(h.Rows))
	}
	t := NewTable(append([]string{h.RowLabel + "\\" + h.ColLabel}, h.Cols...)...)
	for r, label := range h.Rows {
		if len(h.Values[r]) != len(h.Cols) {
			return fmt.Errorf("render: row %d has %d values for %d columns", r, len(h.Values[r]), len(h.Cols))
		}
		cells := []string{label}
		for _, v := range h.Values[r] {
			if math.IsNaN(v) {
				cells = append(cells, "  -")
				continue
			}
			clamped := v
			if clamped < 0 {
				clamped = 0
			}
			if clamped > 1 {
				clamped = 1
			}
			idx := int(clamped * float64(len(shades)-1))
			cells = append(cells, fmt.Sprintf("%c %.2f", shades[idx], v))
		}
		t.AddRow(cells...)
	}
	return t.Render(w)
}

// WriteCSV writes a header and numeric rows as CSV.
func WriteCSV(w io.Writer, header []string, rows [][]float64) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, 0, len(header))
	for _, row := range rows {
		rec = rec[:0]
		for _, v := range row {
			rec = append(rec, fmt.Sprintf("%g", v))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
