package render

import (
	"math"
	"strings"
	"testing"

	"github.com/datamarket/shield/internal/stats"
)

func TestTableAlignment(t *testing.T) {
	tab := NewTable("name", "value")
	tab.AddRow("a", "1")
	tab.AddRow("longer-name", "2.5")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("separator = %q", lines[1])
	}
	if !strings.Contains(lines[3], "longer-name") || !strings.Contains(lines[3], "2.5") {
		t.Fatalf("row = %q", lines[3])
	}
}

func TestTablePadsShortRows(t *testing.T) {
	tab := NewTable("a", "b", "c")
	tab.AddRow("x")
	out := tab.String()
	if !strings.Contains(out, "x") {
		t.Fatal("short row lost")
	}
}

func TestAddRowf(t *testing.T) {
	tab := NewTable("s", "f", "i", "other")
	tab.AddRowf("str", 1.23456, 42, true)
	out := tab.String()
	for _, want := range []string{"str", "1.235", "42", "true"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBoxStrip(t *testing.T) {
	s := stats.Summary{P1: 0.1, P25: 0.25, Median: 0.5, P75: 0.75, P99: 0.9}
	strip := BoxStrip(s, 0, 1, 40)
	if len(strip) != 40 {
		t.Fatalf("strip length = %d", len(strip))
	}
	for _, ch := range []string{"|", "[", "]", "M"} {
		if !strings.Contains(strip, ch) {
			t.Errorf("strip missing %q: %q", ch, strip)
		}
	}
	// Median position roughly in the middle.
	mi := strings.Index(strip, "M")
	if mi < 15 || mi > 25 {
		t.Errorf("median at %d: %q", mi, strip)
	}
	// Degenerate inputs must not panic.
	_ = BoxStrip(stats.Summary{}, 0, 0, 5)
	_ = BoxStrip(stats.Summary{Median: math.NaN()}, 0, 1, 12)
}

func TestHeatmapRender(t *testing.T) {
	h := &Heatmap{
		RowLabel: "H",
		ColLabel: "beta",
		Rows:     []string{"1", "2"},
		Cols:     []string{"min", "0.5"},
		Values:   [][]float64{{0.1, 0.9}, {math.NaN(), 1.0}},
	}
	var sb strings.Builder
	if err := h.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "H\\beta") {
		t.Errorf("missing corner label:\n%s", out)
	}
	if !strings.Contains(out, "0.10") || !strings.Contains(out, "0.90") {
		t.Errorf("missing values:\n%s", out)
	}
	if !strings.Contains(out, "@ 1.00") {
		t.Errorf("max shade missing:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Errorf("NaN cell missing:\n%s", out)
	}
}

func TestHeatmapShapeErrors(t *testing.T) {
	h := &Heatmap{Rows: []string{"a"}, Cols: []string{"x"}, Values: nil}
	if err := h.Render(&strings.Builder{}); err == nil {
		t.Fatal("row mismatch accepted")
	}
	h = &Heatmap{Rows: []string{"a"}, Cols: []string{"x", "y"}, Values: [][]float64{{1}}}
	if err := h.Render(&strings.Builder{}); err == nil {
		t.Fatal("column mismatch accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	err := WriteCSV(&sb, []string{"a", "b"}, [][]float64{{1, 2.5}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2.5\n3,4\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}
