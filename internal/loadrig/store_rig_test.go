package loadrig

import (
	"strings"
	"testing"

	"github.com/datamarket/shield/internal/journal"
)

// TestStoreRigSmoke drives a run against a rig backed by the segmented
// journal store with an aggressive checkpoint/compaction cadence: the
// commit path rotates segments and compacts under live load, the SLO
// stays evaluable, and the post-run invariant check recovers the store
// from disk (checkpoint + tail segments) byte-identical to live state.
func TestStoreRigSmoke(t *testing.T) {
	rig := startTestRig(t, RigConfig{
		Datasets: 8,
		Buyers:   64,
		Store:    true,
		StoreConfig: journal.StoreConfig{
			SegmentRecords:  128,
			CheckpointEvery: 300,
		},
	})
	if rig.JournalDir == "" || rig.JournalPath != "" {
		t.Fatalf("store rig misconfigured: dir=%q path=%q", rig.JournalDir, rig.JournalPath)
	}

	rep, err := Run(rig, Scenario{
		Transport: TransportBoth,
		Clients:   64,
		Rate:      4000,
		Ops:       3000,
		TickEvery: 200,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d transport errors in a local store-mode run:\n%s", rep.Errors, rep)
	}

	inv, err := rig.CheckInvariants()
	if err != nil {
		t.Fatalf("invariants after store-mode run: %v", err)
	}
	if !strings.Contains(inv, "checkpointed recovery rebuilds live state") {
		t.Fatalf("invariant summary lacks the store recovery check: %q", inv)
	}

	// The cadence above must actually have exercised rotation and
	// checkpointing during the run, or the test proves nothing.
	sinv := rig.Market.Store().Inventory()
	if len(sinv.Checkpoints) == 0 {
		t.Fatal("no checkpoints written under load")
	}
	if sinv.LastCheckpoint == 0 {
		t.Fatal("checkpoint inventory has no newest seq")
	}

	slo, err := ParseSLO("bid.p99<10s,error_rate<0.1%")
	if err != nil {
		t.Fatal(err)
	}
	if v := slo.Evaluate(rep); len(v) != 0 {
		t.Fatalf("generous SLO violated in store mode:\n%s\n%v", rep, v)
	}
}
