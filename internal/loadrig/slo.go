package loadrig

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// An SLO is a parsed service-level objective spec: an AND of clauses,
// each bounding one measured quantity. The textual form is a
// comma-separated list like
//
//	bid.p99<5ms,query.p999<20ms,error_rate<0.1%
//
// Each clause is METRIC OP VALUE. Metrics:
//
//	CLASS.p50 | CLASS.p99 | CLASS.p999 | CLASS.max   latency percentile
//	                                                 for one op class
//	                                                 (Go durations: 5ms)
//	error_rate | CLASS.error_rate                    transport/server
//	                                                 error fraction
//	                                                 (0.001 or 0.1%)
//	throughput                                       achieved ops/sec
//	replica.lag                                      worst replication
//	                                                 staleness any
//	                                                 follower showed
//	                                                 during the run
//
// CLASS is a client op class (bid, query, tick) or a server-side stage
// class from StageClasses — bid.fsync.p99<2ms bounds the p99 of the
// group-commit fsync stage as the server measured it, not the
// client-observed round trip. Stage classes support p50/p99/p999 only.
//
// Ops are <, <=, >, >= — latency and error-rate clauses use < or <=,
// throughput floors use > or >=, but any pairing parses.
type SLO struct {
	Clauses []SLOClause
	// Spec is the original text, kept for reports.
	Spec string
}

// SLOClause is one bound in an SLO.
type SLOClause struct {
	// Class is the op class the clause scopes to; empty means run-wide
	// (error_rate, throughput).
	Class string
	// Metric is "p50", "p99", "p999", "max", "error_rate", or
	// "throughput".
	Metric string
	// Op is "<", "<=", ">", or ">=".
	Op string
	// Bound is the threshold: seconds for latency metrics, a fraction
	// for error_rate, ops/sec for throughput.
	Bound float64
	// Text is the clause as written, for violation messages.
	Text string
}

// ParseSLO parses a comma-separated SLO spec. The empty string parses
// to an SLO with no clauses (always satisfied).
func ParseSLO(spec string) (SLO, error) {
	slo := SLO{Spec: spec}
	if strings.TrimSpace(spec) == "" {
		return slo, nil
	}
	for _, raw := range strings.Split(spec, ",") {
		text := strings.TrimSpace(raw)
		if text == "" {
			continue
		}
		c, err := parseClause(text)
		if err != nil {
			return SLO{}, err
		}
		slo.Clauses = append(slo.Clauses, c)
	}
	return slo, nil
}

// parseClause parses one METRIC OP VALUE term.
func parseClause(text string) (SLOClause, error) {
	// Longest operators first so "<=" is not read as "<" + "=5ms".
	var op string
	var idx int
	for _, cand := range []string{"<=", ">=", "<", ">"} {
		if i := strings.Index(text, cand); i >= 0 {
			op, idx = cand, i
			break
		}
	}
	if op == "" {
		return SLOClause{}, fmt.Errorf("loadrig: SLO clause %q has no comparator (<, <=, >, >=)", text)
	}
	metric := strings.TrimSpace(text[:idx])
	value := strings.TrimSpace(text[idx+len(op):])
	if metric == "" || value == "" {
		return SLOClause{}, fmt.Errorf("loadrig: SLO clause %q is missing a metric or a bound", text)
	}

	c := SLOClause{Op: op, Text: text}
	if dot := strings.LastIndex(metric, "."); dot >= 0 {
		c.Class, c.Metric = metric[:dot], metric[dot+1:]
		if c.Class == "" {
			return SLOClause{}, fmt.Errorf("loadrig: SLO clause %q has an empty op class", text)
		}
	} else {
		c.Metric = metric
	}

	switch c.Metric {
	case "lag":
		if c.Class != ClassReplica {
			return SLOClause{}, fmt.Errorf("loadrig: SLO clause %q: lag is a replica metric (write replica.lag)", text)
		}
		d, err := time.ParseDuration(value)
		if err != nil {
			return SLOClause{}, fmt.Errorf("loadrig: SLO clause %q: bad duration %q: %v", text, value, err)
		}
		c.Bound = d.Seconds()
	case "p50", "p99", "p999", "max":
		if c.Class == "" {
			return SLOClause{}, fmt.Errorf("loadrig: SLO clause %q: latency metrics need an op class (e.g. bid.%s)", text, c.Metric)
		}
		d, err := time.ParseDuration(value)
		if err != nil {
			return SLOClause{}, fmt.Errorf("loadrig: SLO clause %q: bad duration %q: %v", text, value, err)
		}
		c.Bound = d.Seconds()
	case "error_rate":
		f, err := parseFraction(value)
		if err != nil {
			return SLOClause{}, fmt.Errorf("loadrig: SLO clause %q: %v", text, err)
		}
		c.Bound = f
	case "throughput":
		if c.Class != "" {
			return SLOClause{}, fmt.Errorf("loadrig: SLO clause %q: throughput is run-wide, drop the op class", text)
		}
		f, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return SLOClause{}, fmt.Errorf("loadrig: SLO clause %q: bad throughput %q", text, value)
		}
		c.Bound = f
	default:
		return SLOClause{}, fmt.Errorf("loadrig: SLO clause %q: unknown metric %q (want p50, p99, p999, max, error_rate, throughput, or lag)", text, c.Metric)
	}
	return c, nil
}

// parseFraction parses "0.001" or "0.1%" into a fraction.
func parseFraction(s string) (float64, error) {
	pct := false
	if t, ok := strings.CutSuffix(s, "%"); ok {
		s, pct = t, true
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad rate %q", s)
	}
	if pct {
		f /= 100
	}
	if f < 0 {
		return 0, fmt.Errorf("negative rate %q", s)
	}
	return f, nil
}

// A Violation is one SLO clause the measured run failed, with both
// sides of the comparison rendered for the report.
type Violation struct {
	Clause   SLOClause
	Measured float64
}

// String renders the violation with the clause as written, e.g.
// "bid.p99<5ms violated: measured 12.4ms".
func (v Violation) String() string {
	measured := formatMeasured(v.Clause.Metric, v.Measured)
	return fmt.Sprintf("%s violated: measured %s", v.Clause.Text, measured)
}

func formatMeasured(metric string, val float64) string {
	switch metric {
	case "p50", "p99", "p999", "max", "lag":
		return time.Duration(val * float64(time.Second)).Round(time.Microsecond).String()
	case "error_rate":
		return fmt.Sprintf("%.4g%%", val*100)
	default:
		return fmt.Sprintf("%.6g", val)
	}
}

// Evaluate checks the report against every clause and returns the
// violations in clause order (empty means the SLO holds). Clauses over
// an op class the run never exercised are violations too — an SLO on a
// class that produced zero samples is a misconfigured gate, and a gate
// that silently passes is worse than one that fails loudly.
func (s SLO) Evaluate(r *Report) []Violation {
	var out []Violation
	for _, c := range s.Clauses {
		measured, ok := r.metric(c.Class, c.Metric)
		if !ok {
			out = append(out, Violation{Clause: c, Measured: measured})
			continue
		}
		if !compare(measured, c.Op, c.Bound) {
			out = append(out, Violation{Clause: c, Measured: measured})
		}
	}
	return out
}

func compare(measured float64, op string, bound float64) bool {
	switch op {
	case "<":
		return measured < bound
	case "<=":
		return measured <= bound
	case ">":
		return measured > bound
	case ">=":
		return measured >= bound
	}
	return false
}
