package loadrig

import (
	"strings"
	"testing"
	"time"
)

func TestParseSLO(t *testing.T) {
	slo, err := ParseSLO("bid.p99<5ms, query.p999<=20ms ,error_rate<0.1%,throughput>=500,bid.error_rate<0.002")
	if err != nil {
		t.Fatal(err)
	}
	want := []SLOClause{
		{Class: "bid", Metric: "p99", Op: "<", Bound: 0.005, Text: "bid.p99<5ms"},
		{Class: "query", Metric: "p999", Op: "<=", Bound: 0.020, Text: "query.p999<=20ms"},
		{Metric: "error_rate", Op: "<", Bound: 0.001, Text: "error_rate<0.1%"},
		{Metric: "throughput", Op: ">=", Bound: 500, Text: "throughput>=500"},
		{Class: "bid", Metric: "error_rate", Op: "<", Bound: 0.002, Text: "bid.error_rate<0.002"},
	}
	if len(slo.Clauses) != len(want) {
		t.Fatalf("parsed %d clauses, want %d", len(slo.Clauses), len(want))
	}
	for i, w := range want {
		g := slo.Clauses[i]
		if g.Class != w.Class || g.Metric != w.Metric || g.Op != w.Op || g.Text != w.Text {
			t.Errorf("clause %d = %+v, want %+v", i, g, w)
		}
		if diff := g.Bound - w.Bound; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("clause %d bound = %v, want %v", i, g.Bound, w.Bound)
		}
	}
}

func TestParseSLOEmpty(t *testing.T) {
	slo, err := ParseSLO("  ")
	if err != nil || len(slo.Clauses) != 0 {
		t.Fatalf("empty spec: %v, %d clauses", err, len(slo.Clauses))
	}
	if v := slo.Evaluate(&Report{}); len(v) != 0 {
		t.Fatalf("empty SLO produced violations: %v", v)
	}
}

func TestParseSLORejectsMalformed(t *testing.T) {
	for _, spec := range []string{
		"bid.p99=5ms",       // no comparator
		"p99<5ms",           // latency without a class
		"bid.p99<fast",      // bad duration
		"bid.p42<5ms",       // unknown metric
		"error_rate<-1%",    // negative rate
		"bid.throughput>10", // throughput is run-wide
		"<5ms",              // no metric
		"bid.p99<",          // no bound
		".p99<5ms",          // empty class
	} {
		if _, err := ParseSLO(spec); err == nil {
			t.Errorf("ParseSLO(%q) accepted a malformed spec", spec)
		}
	}
}

func testReport() *Report {
	return &Report{
		Classes: map[string]*ClassStats{
			ClassBid:   {Count: 1000, Errors: 2, P50: 1 * time.Millisecond, P99: 4 * time.Millisecond, P999: 9 * time.Millisecond, Max: 12 * time.Millisecond},
			ClassQuery: {Count: 500, P50: 200 * time.Microsecond, P99: 1 * time.Millisecond, P999: 2 * time.Millisecond, Max: 3 * time.Millisecond},
		},
		Ops:        1500,
		Errors:     2,
		Duration:   2 * time.Second,
		Throughput: 750,
	}
}

func TestEvaluatePassesAndFails(t *testing.T) {
	r := testReport()

	mustParse := func(spec string) SLO {
		t.Helper()
		s, err := ParseSLO(spec)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	if v := mustParse("bid.p99<5ms,query.p999<=2ms,error_rate<0.5%,throughput>=500").Evaluate(r); len(v) != 0 {
		t.Fatalf("satisfied SLO reported violations: %v", v)
	}

	v := mustParse("bid.p99<2ms,error_rate<0.1%,throughput>=1000").Evaluate(r)
	if len(v) != 3 {
		t.Fatalf("got %d violations, want 3: %v", len(v), v)
	}
	if v[0].Clause.Text != "bid.p99<2ms" || v[0].Measured != 0.004 {
		t.Errorf("violation 0 = %v", v[0])
	}
	if !strings.Contains(v[0].String(), "bid.p99<2ms violated") {
		t.Errorf("violation string %q does not name the clause", v[0].String())
	}
	if !strings.Contains(v[1].String(), "error_rate<0.1%") {
		t.Errorf("violation 1 = %q", v[1].String())
	}
}

func TestEvaluateBoundaryComparators(t *testing.T) {
	r := testReport() // bid.p99 is exactly 4ms
	for spec, wantViolations := range map[string]int{
		"bid.p99<4ms":  1, // strict: equal fails
		"bid.p99<=4ms": 0, // inclusive: equal passes
	} {
		slo, err := ParseSLO(spec)
		if err != nil {
			t.Fatal(err)
		}
		if v := slo.Evaluate(r); len(v) != wantViolations {
			t.Errorf("%s: %d violations, want %d", spec, len(v), wantViolations)
		}
	}
}

func TestEvaluateUnmeasuredClassIsViolation(t *testing.T) {
	r := testReport()
	slo, err := ParseSLO("tick.p99<50ms")
	if err != nil {
		t.Fatal(err)
	}
	if v := slo.Evaluate(r); len(v) != 1 {
		t.Fatalf("SLO over an unexercised class passed silently: %v", v)
	}
}
