package loadrig

import (
	"testing"
	"time"
)

// fakeClock advances only when slept on, so pacer arithmetic is tested
// without wall-clock time.
type fakeClock struct {
	t time.Time
}

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) sleep(d time.Duration)   { c.t = c.t.Add(d) }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestPacerScheduleIsFixedMultiples(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	p, err := newPacerClock(1000, clk.now, clk.sleep) // 1ms interval
	if err != nil {
		t.Fatal(err)
	}
	start := clk.t
	for i := 0; i < 50; i++ {
		due := p.Next()
		want := start.Add(time.Duration(i) * time.Millisecond)
		if !due.Equal(want) {
			t.Fatalf("slot %d due %v, want %v", i, due, want)
		}
		if clk.t.Before(due) {
			t.Fatalf("slot %d returned before its due time", i)
		}
	}
}

// TestPacerDoesNotShiftWhenBehind is the coordinated-omission guard: a
// dispatcher that stalls (a long GC pause, a slow channel) gets the
// ORIGINAL scheduled times back, in the past, with no sleeping — the
// schedule never slides to absorb the stall, so latency measured from
// the returned times includes it.
func TestPacerDoesNotShiftWhenBehind(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	slept := 0
	p, err := newPacerClock(1000, clk.now, func(d time.Duration) { slept++; clk.sleep(d) })
	if err != nil {
		t.Fatal(err)
	}
	start := clk.t
	p.Next() // slot 0 anchors the schedule

	// The dispatcher stalls for 10ms — ten full slots.
	clk.advance(10 * time.Millisecond)
	sleptBefore := slept
	for i := 1; i <= 10; i++ {
		due := p.Next()
		want := start.Add(time.Duration(i) * time.Millisecond)
		if !due.Equal(want) {
			t.Fatalf("slot %d after stall due %v, want the unshifted %v", i, due, want)
		}
		if due.After(clk.t) {
			t.Fatalf("slot %d is in the future after a stall", i)
		}
	}
	if slept != sleptBefore {
		t.Fatalf("pacer slept %d times while behind schedule", slept-sleptBefore)
	}
	// Latency accounted from the scheduled time sees the stall:
	// slot 1 was due 9ms before the clock now reads.
	if lag := clk.t.Sub(start.Add(1 * time.Millisecond)); lag != 9*time.Millisecond {
		t.Fatalf("slot-1 lag %v, want 9ms", lag)
	}
	// Once caught up, pacing resumes on the original grid.
	due := p.Next()
	if want := start.Add(11 * time.Millisecond); !due.Equal(want) {
		t.Fatalf("post-stall slot due %v, want %v", due, want)
	}
}

// TestPacerHoldsTargetRate drives a real-clock pacer and checks the
// elapsed time brackets the scheduled duration: never faster than the
// schedule allows, and (generously, for loaded CI machines) not wildly
// slower.
func TestPacerHoldsTargetRate(t *testing.T) {
	const rate, slots = 2000.0, 200 // 100ms of schedule
	p, err := NewPacer(rate)
	if err != nil {
		t.Fatal(err)
	}
	begin := time.Now()
	var last time.Time
	for i := 0; i < slots; i++ {
		last = p.Next()
	}
	elapsed := time.Since(begin)
	scheduled := time.Duration(slots-1) * p.Interval()
	if elapsed < scheduled {
		t.Fatalf("finished %d slots in %v, faster than the %v schedule", slots, elapsed, scheduled)
	}
	if elapsed > scheduled+5*time.Second {
		t.Fatalf("finished %d slots in %v, want near %v", slots, elapsed, scheduled)
	}
	if got := last.Sub(p.start); got != scheduled {
		t.Fatalf("final slot scheduled at +%v, want +%v", got, scheduled)
	}
}

func TestPacerRejectsNonPositiveRate(t *testing.T) {
	for _, r := range []float64{0, -5} {
		if _, err := NewPacer(r); err == nil {
			t.Errorf("NewPacer(%v) accepted a non-positive rate", r)
		}
	}
}
