package loadrig

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Op classes the rig drives and reports on. Every operation the driver
// issues is exactly one class; SLO clauses scope to these names.
const (
	ClassBid     = "bid"     // SubmitBid
	ClassQuery   = "query"   // read-side ops: Datasets, WaitRemaining, SellerBalance, Period
	ClassTick    = "tick"    // period advances
	ClassReplica = "replica" // read-side ops served by a read replica's HTTP listener
)

// sample is one completed operation, latency measured from its
// open-loop scheduled send time.
type sample struct {
	class   string
	latency time.Duration
	err     bool // transport/server error (not a business rejection)
	reject  bool // business rejection: wait active, bid too soon, already acquired
	won     bool // bid accepted
}

// recorder accumulates samples for one worker; workers each own one so
// the hot path takes no locks, and Run merges them afterwards.
type recorder struct {
	samples []sample
}

func (r *recorder) record(s sample) { r.samples = append(r.samples, s) }

// ClassStats is the per-op-class slice of a Report.
type ClassStats struct {
	Count   int // operations issued
	Errors  int // transport/server errors
	Rejects int // business rejections (shield waits, duplicate bids)
	Won     int // bids accepted (ClassBid only)
	Lost    int // bids priced out (ClassBid only)

	P50, P99, P999, Max time.Duration
}

// ErrorRate is Errors/Count (0 for an empty class).
func (c ClassStats) ErrorRate() float64 {
	if c.Count == 0 {
		return 0
	}
	return float64(c.Errors) / float64(c.Count)
}

// Report is the measured outcome of one rig run.
type Report struct {
	Classes  map[string]*ClassStats
	Ops      int           // total operations issued
	Errors   int           // total transport/server errors
	Duration time.Duration // first scheduled send to last completion
	// Throughput is completed operations per second of wall time.
	Throughput float64

	// ServerQuantiles maps "histogram{labels} pXX" descriptions to the
	// server-side histogram estimate in seconds, for cross-checking the
	// client-side percentiles above. Populated by Run when the rig's
	// telemetry carries the matching series.
	ServerQuantiles map[string]float64

	// ServerStages is the server-side decomposition of the durable bid
	// path, keyed by stage class (see StageClasses): where a bid's
	// latency went — queue wait vs fsync vs apply — next to the
	// client-side percentiles above. Populated by Run from the rig's
	// shield_stage_seconds histograms; stages the run never exercised
	// (e.g. group-commit stages without GroupCommit) are absent. SLO
	// clauses can bound these directly: bid.fsync.p99<2ms.
	ServerStages map[string]StageStats

	// ReplicaMaxLag is the worst replication staleness (seconds) any
	// follower reported while the run's 25ms lag poll sampled it —
	// including any follower-kill reconnect windows. The replica.lag SLO
	// clause bounds it. ReplicaLagSamples counts the polls; zero means
	// lag was never measured (no followers), which fails any lag clause.
	ReplicaMaxLag     float64
	ReplicaLagSamples int

	// Invariants holds the post-run invariant summary (money
	// conservation, journal replay, replica convergence); empty until
	// CheckInvariants runs.
	Invariants string
}

// StageStats summarizes one server-side write-path stage from its
// shield_stage_seconds histogram. Quantiles are histogram estimates in
// seconds (bucket-edge interpolated, so up to one doubling above the
// true value — same error bar as ServerQuantiles).
type StageStats struct {
	// Stage is the shield_stage_seconds label the class maps to, e.g.
	// "group_commit.fsync".
	Stage string `json:"stage"`
	// Count is the number of operations the stage observed.
	Count uint64 `json:"count"`
	// P50, P99, P999 are quantile estimates in seconds.
	P50  float64 `json:"p50_sec"`
	P99  float64 `json:"p99_sec"`
	P999 float64 `json:"p999_sec"`
}

// StageClasses maps the SLO-visible stage class names to the
// shield_stage_seconds stage labels they read. An SLO clause like
// "bid.fsync.p99<2ms" bounds the server-side fsync stage of the bid
// path the same way "bid.p99<5ms" bounds the client-observed whole.
var StageClasses = map[string]string{
	"bid.queue_wait": "group_commit.queue_wait",
	"bid.append":     "group_commit.append",
	"bid.fsync":      "group_commit.fsync",
	"bid.apply":      "apply",
	"bid.publish":    "publish",
}

// buildReport merges per-worker recorders into a Report.
func buildReport(recs []*recorder, duration time.Duration) *Report {
	byClass := map[string][]time.Duration{}
	rep := &Report{Classes: map[string]*ClassStats{}, Duration: duration}
	for _, rec := range recs {
		for _, s := range rec.samples {
			st := rep.Classes[s.class]
			if st == nil {
				st = &ClassStats{}
				rep.Classes[s.class] = st
			}
			st.Count++
			rep.Ops++
			switch {
			case s.err:
				st.Errors++
				rep.Errors++
			case s.reject:
				st.Rejects++
			case s.class == ClassBid && s.won:
				st.Won++
			case s.class == ClassBid:
				st.Lost++
			}
			byClass[s.class] = append(byClass[s.class], s.latency)
		}
	}
	for class, lats := range byClass {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		st := rep.Classes[class]
		st.P50 = percentile(lats, 0.50)
		st.P99 = percentile(lats, 0.99)
		st.P999 = percentile(lats, 0.999)
		st.Max = lats[len(lats)-1]
	}
	if duration > 0 {
		rep.Throughput = float64(rep.Ops) / duration.Seconds()
	}
	return rep
}

// percentile returns the nearest-rank percentile of sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// metric resolves one SLO clause target against the report. The bool
// is false when the metric cannot be measured (unknown class, empty
// class, unknown metric) — Evaluate treats that as a violation.
func (r *Report) metric(class, metric string) (float64, bool) {
	if class == "" {
		switch metric {
		case "error_rate":
			if r.Ops == 0 {
				return 0, false
			}
			return float64(r.Errors) / float64(r.Ops), true
		case "throughput":
			return r.Throughput, r.Ops > 0
		}
		return 0, false
	}
	// replica.lag resolves against the run's staleness sampling, not
	// client latency samples; a run that never measured lag fails the
	// clause rather than passing it silently.
	if metric == "lag" {
		if class != ClassReplica || r.ReplicaLagSamples == 0 {
			return 0, false
		}
		return r.ReplicaMaxLag, true
	}
	// Stage classes (bid.fsync, bid.apply, ...) resolve against the
	// server-side stage breakdown instead of client samples.
	if sg, ok := r.ServerStages[class]; ok {
		if sg.Count == 0 {
			return 0, false
		}
		switch metric {
		case "p50":
			return sg.P50, true
		case "p99":
			return sg.P99, true
		case "p999":
			return sg.P999, true
		}
		return 0, false
	}
	st := r.Classes[class]
	if st == nil || st.Count == 0 {
		return 0, false
	}
	switch metric {
	case "p50":
		return st.P50.Seconds(), true
	case "p99":
		return st.P99.Seconds(), true
	case "p999":
		return st.P999.Seconds(), true
	case "max":
		return st.Max.Seconds(), true
	case "error_rate":
		return st.ErrorRate(), true
	}
	return 0, false
}

// String renders the report as an aligned operator-facing table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %8s %7s %7s %6s %6s %10s %10s %10s %10s\n",
		"class", "count", "errors", "rejects", "won", "lost", "p50", "p99", "p999", "max")
	classes := make([]string, 0, len(r.Classes))
	for c := range r.Classes {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		st := r.Classes[c]
		fmt.Fprintf(&b, "%-6s %8d %7d %7d %6d %6d %10s %10s %10s %10s\n",
			c, st.Count, st.Errors, st.Rejects, st.Won, st.Lost,
			roundLat(st.P50), roundLat(st.P99), roundLat(st.P999), roundLat(st.Max))
	}
	fmt.Fprintf(&b, "total: %d ops in %s (%.0f ops/sec), %d errors\n",
		r.Ops, r.Duration.Round(time.Millisecond), r.Throughput, r.Errors)
	if r.ReplicaLagSamples > 0 {
		fmt.Fprintf(&b, "replica max lag: %s over %d staleness samples\n",
			secLat(r.ReplicaMaxLag), r.ReplicaLagSamples)
	}
	if len(r.ServerQuantiles) > 0 {
		keys := make([]string, 0, len(r.ServerQuantiles))
		for k := range r.ServerQuantiles {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "server %s = %s\n", k,
				time.Duration(r.ServerQuantiles[k]*float64(time.Second)).Round(time.Microsecond))
		}
	}
	if len(r.ServerStages) > 0 {
		fmt.Fprintf(&b, "server stage breakdown (where the bid path's time went):\n")
		fmt.Fprintf(&b, "  %-15s %-24s %9s %10s %10s %10s\n",
			"class", "stage", "count", "p50", "p99", "p999")
		classes := make([]string, 0, len(r.ServerStages))
		for c := range r.ServerStages {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, c := range classes {
			sg := r.ServerStages[c]
			fmt.Fprintf(&b, "  %-15s %-24s %9d %10s %10s %10s\n",
				c, sg.Stage, sg.Count,
				secLat(sg.P50), secLat(sg.P99), secLat(sg.P999))
		}
	}
	return b.String()
}

func roundLat(d time.Duration) time.Duration {
	return d.Round(10 * time.Microsecond)
}

// secLat renders a seconds-valued histogram estimate as a duration.
func secLat(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second)).Round(time.Microsecond)
}
