package loadrig

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"testing"
	"time"

	"github.com/datamarket/shield/internal/obs"
)

// TestTraceExemplarLookupE2E is the acceptance path for full-pipeline
// causal tracing: boot a traced, durable (group-commit + fsync) rig,
// drive wire bids through it, scrape /metrics, take the trace ID riding
// a shield_stage_seconds bucket exemplar for the group_commit.fsync
// stage, resolve that ID via /debug/traces?id=, and see the op's full
// stage breakdown — including the fsync the exemplar pointed at. This
// is the operator's debugging loop (tail bucket → exemplar → trace)
// exercised end to end over real sockets.
func TestTraceExemplarLookupE2E(t *testing.T) {
	rig, err := StartRig(RigConfig{
		Datasets:    8,
		Buyers:      32,
		GroupCommit: true,
		Fsync:       true,
		TraceSample: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := rig.Close(); err != nil {
			t.Errorf("rig close: %v", err)
		}
	}()

	// 200 scheduled ops (plus warm-up pings) stay under the tracer's
	// 256-slot ring, so the trace behind any exemplar is still
	// resolvable when the run ends.
	rep, err := Run(rig, Scenario{
		Transport: TransportWire,
		Clients:   16,
		Rate:      2000,
		Ops:       200,
		Seed:      21,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The server-side stage breakdown made it into the report and onto
	// the SLO surface.
	fsync, ok := rep.ServerStages["bid.fsync"]
	if !ok || fsync.Count == 0 {
		t.Fatalf("report has no bid.fsync stage breakdown: %+v", rep.ServerStages)
	}
	slo, err := ParseSLO("bid.fsync.p99<10s,bid.apply.p99<10s")
	if err != nil {
		t.Fatal(err)
	}
	if v := slo.Evaluate(rep); len(v) != 0 {
		t.Fatalf("generous stage SLO violated:\n%s\n%v", rep, v)
	}

	// Scrape /metrics and pull the exemplar off a group_commit.fsync
	// bucket — the "why is my tail bucket populated" entry point.
	resp, err := http.Get(rig.HTTPAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	exposition := string(raw)
	if problems := obs.LintExposition(exposition); len(problems) != 0 {
		t.Fatalf("/metrics exposition fails lint under load: %v", problems)
	}
	re := regexp.MustCompile(`shield_stage_seconds_bucket\{stage="group_commit\.fsync",le="[^"]+"\} \d+ # \{trace_id="([^"]+)"\}`)
	m := re.FindStringSubmatch(exposition)
	if m == nil {
		t.Fatalf("no exemplar on any group_commit.fsync bucket in:\n%s", exposition)
	}
	traceID := m[1]

	// Resolve the exemplar's trace ID to its stage breakdown. The
	// server finishes a trace just after flushing the response, so give
	// the last op's ring insertion a moment.
	var out struct {
		Trace struct {
			ID    string `json:"id"`
			Spans []struct {
				Name string `json:"name"`
			} `json:"spans"`
		} `json:"trace"`
	}
	found := false
	for i := 0; i < 100 && !found; i++ {
		resp, err := http.Get(rig.HTTPAddr + "/debug/traces?id=" + traceID)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
			found = true
		}
		resp.Body.Close()
		if !found {
			time.Sleep(time.Millisecond)
		}
	}
	if !found {
		t.Fatalf("exemplar trace %s not resolvable via /debug/traces", traceID)
	}
	if out.Trace.ID != traceID {
		t.Fatalf("lookup returned trace %q, want %q", out.Trace.ID, traceID)
	}
	spans := map[string]bool{}
	for _, s := range out.Trace.Spans {
		spans[s.Name] = true
	}
	for _, want := range []string{"wire.read", "group_commit.fsync"} {
		if !spans[want] {
			t.Fatalf("exemplar trace spans %v missing %q — not a full stage breakdown", out.Trace.Spans, want)
		}
	}
}
