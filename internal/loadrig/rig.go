package loadrig

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/httpapi"
	"github.com/datamarket/shield/internal/journal"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/obs"
	"github.com/datamarket/shield/internal/replica"
	"github.com/datamarket/shield/internal/wire"
)

// RigConfig sizes the in-process cluster a rig boots.
type RigConfig struct {
	// Datasets is the catalog size to seed (default 16).
	Datasets int
	// Buyers is the number of buyer accounts to register (default 64);
	// scenarios map workers onto these accounts.
	Buyers int
	// Seed derives the market's pricing randomness and the seeded
	// catalog (default 2022).
	Seed uint64
	// GroupCommit turns on journal group commit, the production
	// configuration for concurrent load.
	GroupCommit bool
	// Fsync makes the journal fsync every flush, the durable production
	// configuration. Off by default: most rig runs measure the software
	// stack, not the disk.
	Fsync bool
	// TraceSample is the rig tracer's sampling interval: 1 traces every
	// request, N every Nth, 0 (the default) disables tracing so the
	// measured path stays unperturbed. Turn it on to exercise the
	// /metrics exemplar → /debug/traces lookup under load.
	TraceSample int
	// JournalPath is the journal file to create; empty means a
	// temporary directory the rig owns and removes on Close.
	JournalPath string
	// Store backs the rig with a segmented journal store — a directory
	// of rotated segment files with snapshot checkpoints and background
	// compaction, the marketd -journal-dir configuration — instead of a
	// flat journal file. JournalPath is ignored in store mode; the rig
	// owns a temporary directory.
	Store bool
	// StoreConfig tunes the segmented store (zero values take the
	// store's defaults). CheckpointEvery is the compaction cadence:
	// every N committed records the store snapshots the market and
	// deletes the segments the checkpoint covers. Only read when Store
	// is set.
	StoreConfig journal.StoreConfig
	// WireBufferSize overrides the wire server's per-connection buffer
	// (bytes). Rigs default to 4KiB so a thousand connections do not
	// cost 128MiB of idle buffers.
	WireBufferSize int
	// Followers boots this many read replicas beside the leader, each a
	// replica.Follower streaming from the wire listener plus its own
	// read-only HTTP listener (see Rig.FollowerAddrs). StartRig waits for
	// every follower's first catch-up before returning.
	Followers int
	// FollowerMaxLag is each follower's readiness staleness bound
	// (default replica.DefaultMaxLag).
	FollowerMaxLag time.Duration
}

// Rig is a marketd-equivalent server running entirely in-process: one
// journaled, group-commit market behind both transports — an HTTP API
// listener and a wire-protocol listener on 127.0.0.1 — sharing one
// telemetry registry, exactly the production topology minus the network
// between machines. Tests and cmd/shieldload boot one, point thousands
// of clients at the two addresses, and interrogate the same registry
// the /metrics endpoint serves.
type Rig struct {
	// Market is the journaled market both listeners share.
	Market *journal.Market
	// Tel is the process-wide telemetry; server histograms
	// (shield_http_request_seconds, shield_wire_request_seconds) live
	// in Tel.Registry.
	Tel *obs.Telemetry
	// HTTPAddr is the HTTP transport's dial target ("http://127.0.0.1:port").
	HTTPAddr string
	// WireAddr is the wire transport's dial target ("host:port").
	WireAddr string
	// Datasets is the seeded catalog.
	Datasets []market.DatasetID
	// Buyers is the registered buyer accounts.
	Buyers []market.BuyerID
	// JournalPath is the journal file backing Market; empty in store
	// mode, where JournalDir is the segmented store directory instead.
	JournalPath string
	// JournalDir is the segmented store directory backing Market,
	// non-empty only when the rig runs in store mode (RigConfig.Store).
	JournalDir string
	// Feed is the leader's replication feed, non-nil when the rig runs
	// followers.
	Feed *replica.Feed
	// Followers are the read replicas, in boot order; FollowerAddrs are
	// their read-only HTTP dial targets ("http://127.0.0.1:port").
	Followers     []*replica.Follower
	FollowerAddrs []string

	httpSrv      *http.Server
	httpLn       net.Listener
	wireLn       net.Listener
	followerSrvs []*http.Server
	followerLns  []net.Listener
	tmpDir       string // non-empty when the rig owns the journal's directory
}

// Seller is the account owning every seeded dataset.
const Seller = market.SellerID("rig-seller")

// StartRig boots the in-process cluster: journaled market (group commit
// per rc), HTTP and wire listeners on ephemeral localhost ports, shared
// telemetry, and a seeded catalog of rc.Datasets datasets and rc.Buyers
// registered buyers. Callers must Close the rig.
func StartRig(rc RigConfig) (*Rig, error) {
	if rc.Datasets <= 0 {
		rc.Datasets = 16
	}
	if rc.Buyers <= 0 {
		rc.Buyers = 64
	}
	if rc.Seed == 0 {
		rc.Seed = 2022
	}
	if rc.WireBufferSize == 0 {
		rc.WireBufferSize = 4 << 10
	}

	r := &Rig{JournalPath: rc.JournalPath}
	if rc.Store {
		dir, err := os.MkdirTemp("", "shieldload-")
		if err != nil {
			return nil, fmt.Errorf("loadrig: store dir: %w", err)
		}
		r.tmpDir = dir
		r.JournalPath = ""
		r.JournalDir = filepath.Join(dir, "store")
	} else if r.JournalPath == "" {
		dir, err := os.MkdirTemp("", "shieldload-")
		if err != nil {
			return nil, fmt.Errorf("loadrig: journal dir: %w", err)
		}
		r.tmpDir = dir
		r.JournalPath = filepath.Join(dir, "rig.journal")
	}

	// The engine configuration mirrors marketd's defaults: a linear
	// candidate grid spanning the personas' bid range, so lowball bids
	// shield and aggressive bids allocate.
	cfg := market.Config{
		Engine: core.Config{
			Candidates:    auction.LinearGrid(1, 200, 40),
			EpochSize:     8,
			BidsPerPeriod: 1,
			MinBid:        1,
		},
		Seed:   rc.Seed,
		Shards: market.DefaultShards,
	}

	// Tracing defaults off (every=0): the rig measures, it does not
	// sample. RigConfig.TraceSample opts in for runs that verify the
	// tracing pipeline itself.
	r.Tel = &obs.Telemetry{
		Registry: obs.NewRegistry(),
		Tracer:   obs.NewTracer(256, rc.TraceSample, rc.Seed),
	}

	opts := []journal.Option{journal.WithTelemetry(r.Tel)}
	if rc.GroupCommit {
		opts = append(opts, journal.WithGroupCommit(0))
	}
	if rc.Fsync {
		opts = append(opts, journal.WithFsync())
	}
	var jm *journal.Market
	var err error
	if rc.Store {
		jm, _, err = journal.OpenStore(cfg, r.JournalDir, rc.StoreConfig, opts...)
	} else {
		jm, _, err = journal.OpenFile(cfg, r.JournalPath, opts...)
	}
	if err != nil {
		r.cleanupTmp()
		return nil, fmt.Errorf("loadrig: opening journal: %w", err)
	}
	r.Market = jm

	if err := r.seed(rc); err != nil {
		_ = jm.Close()
		r.cleanupTmp()
		return nil, err
	}

	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = jm.Close()
		r.cleanupTmp()
		return nil, fmt.Errorf("loadrig: http listener: %w", err)
	}
	wireLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = httpLn.Close()
		_ = jm.Close()
		r.cleanupTmp()
		return nil, fmt.Errorf("loadrig: wire listener: %w", err)
	}
	r.httpLn, r.wireLn = httpLn, wireLn
	r.HTTPAddr = "http://" + httpLn.Addr().String()
	r.WireAddr = wireLn.Addr().String()

	api := httpapi.NewJournaled(jm).WithTelemetry(r.Tel)
	r.httpSrv = &http.Server{Handler: api.Routes()}
	go func() { _ = r.httpSrv.Serve(httpLn) }()

	ws := wire.NewServer(jm).WithTelemetry(r.Tel).WithBufferSize(rc.WireBufferSize)
	if rc.Followers > 0 {
		// The feed must attach before the listener serves so no commit
		// can slip between its shadow snapshot and the first subscriber.
		feed, err := replica.NewFeed(jm, 0)
		if err != nil {
			_ = r.Close()
			return nil, fmt.Errorf("loadrig: replication feed: %w", err)
		}
		r.Feed = feed
		ws = ws.WithReplication(feed)
	}
	go func() { _ = ws.Serve(wireLn) }()

	if err := r.startFollowers(rc); err != nil {
		_ = r.Close()
		return nil, err
	}
	return r, nil
}

// startFollowers boots rc.Followers read replicas — each a follower
// streaming from the rig's wire listener plus a read-only HTTP listener
// — and waits for their first catch-up, so runs never measure the boot
// transient as replica read errors.
func (r *Rig) startFollowers(rc RigConfig) error {
	for i := 0; i < rc.Followers; i++ {
		// One registry per follower: the shield_replica_* families refuse
		// double registration by design.
		ftel := obs.NewTelemetry()
		f, err := replica.Start(replica.Config{
			Dial:       func() (net.Conn, error) { return net.Dial("tcp", r.WireAddr) },
			Name:       fmt.Sprintf("follower-%d", i),
			MaxLag:     rc.FollowerMaxLag,
			BackoffMin: 5 * time.Millisecond,
			BackoffMax: 250 * time.Millisecond,
			BufSize:    rc.WireBufferSize,
			Telemetry:  ftel,
		})
		if err != nil {
			return fmt.Errorf("loadrig: starting follower %d: %w", i, err)
		}
		r.Followers = append(r.Followers, f)

		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("loadrig: follower %d listener: %w", i, err)
		}
		srv := &http.Server{Handler: httpapi.NewReplica(f).WithTelemetry(ftel).Routes()}
		go func() { _ = srv.Serve(ln) }()
		r.followerLns = append(r.followerLns, ln)
		r.followerSrvs = append(r.followerSrvs, srv)
		r.FollowerAddrs = append(r.FollowerAddrs, "http://"+ln.Addr().String())
	}

	deadline := time.Now().Add(10 * time.Second)
	for _, f := range r.Followers {
		for f.Ready() != nil {
			if time.Now().After(deadline) {
				return fmt.Errorf("loadrig: follower never caught up: %v", f.Ready())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	return nil
}

// KillFollower drops follower i's replication connection mid-run; the
// follower redials with backoff and catches up from its applied seq.
func (r *Rig) KillFollower(i int) {
	if i >= 0 && i < len(r.Followers) {
		r.Followers[i].Kill()
	}
}

// seed registers the seller, catalog and buyer accounts directly on the
// journaled market, so every run starts from the same journaled state.
func (r *Rig) seed(rc RigConfig) error {
	if err := r.Market.RegisterSeller(Seller); err != nil {
		return fmt.Errorf("loadrig: seeding seller: %w", err)
	}
	r.Datasets = make([]market.DatasetID, rc.Datasets)
	for i := range r.Datasets {
		id := market.DatasetID(fmt.Sprintf("ds-%03d", i))
		if err := r.Market.UploadDataset(Seller, id); err != nil {
			return fmt.Errorf("loadrig: seeding dataset %s: %w", id, err)
		}
		r.Datasets[i] = id
	}
	r.Buyers = make([]market.BuyerID, rc.Buyers)
	for i := range r.Buyers {
		id := market.BuyerID(fmt.Sprintf("buyer-%04d", i))
		if err := r.Market.RegisterBuyer(id); err != nil {
			return fmt.Errorf("loadrig: seeding buyer %s: %w", id, err)
		}
		r.Buyers[i] = id
	}
	return nil
}

// Close stops both listeners, closes the journal (final sync), and
// removes the rig-owned journal directory.
func (r *Rig) Close() error {
	var errs []error
	for _, srv := range r.followerSrvs {
		errs = append(errs, srv.Close())
	}
	for _, f := range r.Followers {
		f.Close()
	}
	if r.httpSrv != nil {
		errs = append(errs, r.httpSrv.Close())
	}
	if r.wireLn != nil {
		errs = append(errs, r.wireLn.Close())
	}
	if r.Market != nil {
		errs = append(errs, r.Market.Close())
	}
	r.cleanupTmp()
	// Listener-close races with in-flight accepts surface as
	// net.ErrClosed; a rig teardown is not a failure.
	var real []error
	for _, err := range errs {
		if err != nil && !errors.Is(err, net.ErrClosed) {
			real = append(real, err)
		}
	}
	return errors.Join(real...)
}

func (r *Rig) cleanupTmp() {
	if r.tmpDir != "" {
		_ = os.RemoveAll(r.tmpDir)
	}
}

// CheckInvariants verifies the two whole-system invariants after a run,
// while the rig is still serving:
//
//  1. Money conservation — market revenue equals total buyer spend,
//     equals total seller balances, equals the sum of transaction-log
//     prices. A lost or double-counted sale under concurrent load
//     breaks at least one equality.
//  2. Journal replay — restoring the on-disk journal rebuilds a market
//     whose canonical snapshot is byte-identical to the live one, so
//     everything the rig acknowledged is durably reconstructible.
//  3. Replica convergence (when the rig runs followers) — every
//     follower catches up to the leader's newest committed seq within a
//     bounded wait and its canonical snapshot is byte-identical to the
//     leader's. A follower that skipped, duplicated, or misapplied one
//     replicated command fails the byte comparison.
//
// It returns a human-readable summary for the report, or an error
// naming the violated invariant.
func (r *Rig) CheckInvariants() (string, error) {
	revenue, spent, balances := r.Market.Totals()
	var txSum market.Money
	txs := r.Market.Transactions()
	for _, tx := range txs {
		txSum += tx.Price
	}
	if revenue != spent || revenue != balances || revenue != txSum {
		return "", fmt.Errorf("loadrig: money not conserved: revenue=%v spent=%v balances=%v txsum=%v",
			revenue, spent, balances, txSum)
	}

	// The journal's group-commit writer acknowledges only written
	// records, so the state read back here covers every operation the
	// clients saw succeed. In store mode the replay is checkpoint +
	// tail-segment recovery — the same bounded-tail path a restarted
	// marketd -journal-dir takes.
	liveBytes, err := r.Market.Snapshot().Canonical()
	if err != nil {
		return "", fmt.Errorf("loadrig: live snapshot: %w", err)
	}
	var replaySummary string
	if r.JournalDir != "" {
		restored, rseq, _, err := journal.RecoverDir(r.JournalDir)
		if err != nil {
			return "", fmt.Errorf("loadrig: store recovery: %w", err)
		}
		if want := r.Market.LastSeq(); rseq != want {
			return "", fmt.Errorf("loadrig: store recovery reached seq %d, live at %d", rseq, want)
		}
		restoredBytes, err := restored.Snapshot().Canonical()
		if err != nil {
			return "", fmt.Errorf("loadrig: restored snapshot: %w", err)
		}
		if !bytes.Equal(liveBytes, restoredBytes) {
			return "", errors.New("loadrig: store recovery does not rebuild live state")
		}
		inv := r.Market.Store().Inventory()
		replaySummary = fmt.Sprintf("checkpointed recovery rebuilds live state (%d segments, %d checkpoints, %d bytes on disk)",
			len(inv.Segments), len(inv.Checkpoints), inv.TotalBytes)
	} else {
		raw, err := os.ReadFile(r.JournalPath)
		if err != nil {
			return "", fmt.Errorf("loadrig: reading journal: %w", err)
		}
		restored, err := journal.Restore(bytes.NewReader(raw))
		if err != nil {
			return "", fmt.Errorf("loadrig: journal replay: %w", err)
		}
		restoredBytes, err := restored.Snapshot().Canonical()
		if err != nil {
			return "", fmt.Errorf("loadrig: restored snapshot: %w", err)
		}
		if !bytes.Equal(liveBytes, restoredBytes) {
			return "", errors.New("loadrig: journal replay does not rebuild live state")
		}
		replaySummary = fmt.Sprintf("journal replay rebuilds live state (%d bytes)", len(raw))
	}

	summary := fmt.Sprintf("money conserved (revenue=%v over %d transactions); %s",
		revenue, len(txs), replaySummary)
	if len(r.Followers) > 0 {
		if err := r.checkReplicaConvergence(); err != nil {
			return "", err
		}
		summary += fmt.Sprintf("; %d replicas converged byte-identical to the leader", len(r.Followers))
	}
	return summary, nil
}

// checkReplicaConvergence waits (bounded) for every follower to apply
// the leader's newest seq, then pins each follower snapshot
// byte-identical to the leader's canonical snapshot.
func (r *Rig) checkReplicaConvergence() error {
	want := r.Feed.LeaderSeq()
	deadline := time.Now().Add(10 * time.Second)
	for i, f := range r.Followers {
		for f.Applied() < want {
			if time.Now().After(deadline) {
				applied, leader, lag, connected := f.Staleness()
				return fmt.Errorf("loadrig: follower %d never converged: applied %d, leader %d (feed %d), lag %.2fs, connected %v",
					i, applied, leader, want, lag, connected)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	leaderBytes, err := r.Market.Snapshot().Canonical()
	if err != nil {
		return fmt.Errorf("loadrig: leader snapshot: %w", err)
	}
	for i, f := range r.Followers {
		fm := f.Market()
		if fm == nil {
			return fmt.Errorf("loadrig: follower %d has no state", i)
		}
		got, err := fm.Snapshot().Canonical()
		if err != nil {
			return fmt.Errorf("loadrig: follower %d snapshot: %w", i, err)
		}
		if !bytes.Equal(got, leaderBytes) {
			return fmt.Errorf("loadrig: follower %d snapshot diverges from leader (%d vs %d bytes)",
				i, len(got), len(leaderBytes))
		}
	}
	return nil
}
