package loadrig

import (
	"strings"
	"testing"
)

// TestRunWithReplicas is the acceptance scenario in-process: a leader
// with two followers, a share of reads served by the replicas, one
// follower killed at the schedule's midpoint, and an SLO spec with a
// replica.lag clause — all of which must hold, along with the post-run
// replica-convergence invariant (byte-identical snapshots).
func TestRunWithReplicas(t *testing.T) {
	rig := startTestRig(t, RigConfig{Datasets: 8, Buyers: 64, Followers: 2})
	sc := Scenario{
		Transport:       TransportBoth,
		Clients:         64,
		Rate:            4000,
		Ops:             3000,
		TickEvery:       200,
		Seed:            7,
		ReplicaFraction: 0.1,
		KillFollower:    true,
	}
	rep, err := Run(rig, sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d transport errors in a local replica run:\n%s", rep.Errors, rep)
	}
	reads := rep.Classes[ClassReplica]
	if reads == nil || reads.Count == 0 {
		t.Fatalf("no replica reads recorded:\n%s", rep)
	}
	if rep.ReplicaLagSamples == 0 {
		t.Fatal("replica lag was never sampled")
	}

	inv, err := rig.CheckInvariants()
	if err != nil {
		t.Fatalf("invariants after replica run: %v", err)
	}
	if !strings.Contains(inv, "replicas converged byte-identical") {
		t.Fatalf("invariant summary lacks replica convergence: %q", inv)
	}

	// The kill happens mid-run, so the lag bound must absorb one redial
	// and catch-up; 10s is generous for a local pipe yet still proves
	// the clause is measured, not vacuous.
	slo, err := ParseSLO("bid.p99<10s,replica.p99<10s,replica.lag<10s,error_rate<0.1%")
	if err != nil {
		t.Fatal(err)
	}
	if v := slo.Evaluate(rep); len(v) != 0 {
		t.Fatalf("replica SLO violated:\n%s\n%v", rep, v)
	}
}

// TestReplicaLagClauseFailsWithoutFollowers pins the misconfigured-gate
// behavior: a replica.lag clause over a run that never measured lag is
// a violation, not a silent pass.
func TestReplicaLagClauseFailsWithoutFollowers(t *testing.T) {
	rig := startTestRig(t, RigConfig{Datasets: 4, Buyers: 16})
	rep, err := Run(rig, Scenario{
		Transport: TransportWire,
		Clients:   16,
		Rate:      4000,
		Ops:       400,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	slo, err := ParseSLO("replica.lag<1s")
	if err != nil {
		t.Fatal(err)
	}
	v := slo.Evaluate(rep)
	if len(v) != 1 || !strings.Contains(v[0].String(), "replica.lag<1s violated") {
		t.Fatalf("unmeasured lag clause evaluated to %v, want one violation naming it", v)
	}
}

// TestReplicaStallTripsLagClause is the replication twin of the
// mutation canary: freeze one follower's apply loop mid-run and assert
// the replica.lag clause trips by name while the others hold.
func TestReplicaStallTripsLagClause(t *testing.T) {
	rig := startTestRig(t, RigConfig{Datasets: 4, Buyers: 32, Followers: 1})
	rig.Followers[0].TestStall()
	rep, err := Run(rig, Scenario{
		Transport:       TransportWire,
		Clients:         32,
		Rate:            2000,
		Ops:             2000, // ≥1s of schedule, so the stalled lag clearly exceeds 500ms
		Seed:            5,
		ReplicaFraction: 0, // reads on a stalled follower would be errors; lag is the gate here
	})
	if err != nil {
		t.Fatal(err)
	}
	slo, err := ParseSLO("bid.p99<10s,replica.lag<500ms")
	if err != nil {
		t.Fatal(err)
	}
	v := slo.Evaluate(rep)
	if len(v) != 1 {
		t.Fatalf("stalled follower produced %d violations, want exactly 1 (replica.lag): %v", len(v), v)
	}
	if !strings.Contains(v[0].String(), "replica.lag<500ms violated") {
		t.Fatalf("violation %q does not name the lag clause", v[0])
	}
	// Release the stall so rig teardown (and any convergence waits) do
	// not hang on a frozen apply loop.
	rig.Followers[0].TestResume()
}
