package loadrig

import (
	"strings"
	"testing"
	"time"
)

// startTestRig boots a small group-commit rig and registers cleanup.
func startTestRig(t *testing.T, rc RigConfig) *Rig {
	t.Helper()
	rc.GroupCommit = true
	rig, err := StartRig(rc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := rig.Close(); err != nil {
			t.Errorf("rig close: %v", err)
		}
	})
	return rig
}

// TestRunSmoke drives a small mixed-transport run end to end: every
// scheduled op completes, no transport errors, the persona mix produces
// wins, losses and shield rejections, and both post-run invariants
// hold.
func TestRunSmoke(t *testing.T) {
	rig := startTestRig(t, RigConfig{Datasets: 8, Buyers: 64})
	sc := Scenario{
		Transport: TransportBoth,
		Clients:   64,
		Rate:      4000,
		Ops:       3000,
		TickEvery: 200,
		Seed:      7,
	}
	rep, err := Run(rig, sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != sc.Ops {
		t.Fatalf("recorded %d ops, scheduled %d", rep.Ops, sc.Ops)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d transport errors in a local smoke run:\n%s", rep.Errors, rep)
	}
	bids := rep.Classes[ClassBid]
	if bids == nil || bids.Count == 0 {
		t.Fatalf("no bids recorded:\n%s", rep)
	}
	if bids.Won == 0 || bids.Lost+bids.Rejects == 0 {
		t.Fatalf("persona mix produced no contention (won=%d lost=%d rejects=%d)",
			bids.Won, bids.Lost, bids.Rejects)
	}
	if rep.Classes[ClassQuery] == nil || rep.Classes[ClassTick] == nil {
		t.Fatalf("missing op classes:\n%s", rep)
	}
	if bids.P99 <= 0 || bids.Max < bids.P99 || bids.P99 < bids.P50 {
		t.Fatalf("incoherent latency stats: p50=%v p99=%v max=%v", bids.P50, bids.P99, bids.Max)
	}

	inv, err := rig.CheckInvariants()
	if err != nil {
		t.Fatalf("invariants after run: %v", err)
	}
	if !strings.Contains(inv, "money conserved") {
		t.Fatalf("invariant summary %q", inv)
	}

	slo, err := ParseSLO("bid.p99<10s,query.p99<10s,error_rate<0.1%")
	if err != nil {
		t.Fatal(err)
	}
	if v := slo.Evaluate(rep); len(v) != 0 {
		t.Fatalf("generous SLO violated:\n%s\n%v", rep, v)
	}
}

// TestMutationCanary is the gate's self-test: inject a 10x artificial
// latency into exactly one op class and assert the SLO evaluation trips
// on that class, by name, while the untouched class still passes. A
// load rig whose gate cannot fail is a rubber stamp.
func TestMutationCanary(t *testing.T) {
	rig := startTestRig(t, RigConfig{Datasets: 4, Buyers: 32})
	sc := Scenario{
		Transport: TransportWire,
		Clients:   32,
		Rate:      4000,
		Ops:       1200,
		Seed:      11,
		// The uninjected p99 of a local wire round trip is far below
		// 250ms; 10x of it stays far below too. Injecting a flat 2.5s
		// into the bid class pushes bid.p99 over any such bound by
		// construction, regardless of machine speed.
		InjectLatency: map[string]time.Duration{ClassBid: 2500 * time.Millisecond},
	}
	rep, err := Run(rig, sc)
	if err != nil {
		t.Fatal(err)
	}
	slo, err := ParseSLO("bid.p99<250ms,query.p99<250ms")
	if err != nil {
		t.Fatal(err)
	}
	v := slo.Evaluate(rep)
	if len(v) != 1 {
		t.Fatalf("injected bid latency produced %d violations, want exactly 1 (bid.p99): %v", len(v), v)
	}
	if !strings.Contains(v[0].String(), "bid.p99<250ms violated") {
		t.Fatalf("violation %q does not name the injected class's clause", v[0])
	}
}

// TestServerQuantileCrossCheck compares the client-side percentiles
// (measured from scheduled send times) against the server-side
// histogram estimates from the same run — the regression-proofing for
// the latency accounting itself. Server-observed time is a component of
// client-observed time, so the server estimate must be positive and
// must not exceed the client-side maximum by more than the histogram's
// bucket-edge overestimate.
func TestServerQuantileCrossCheck(t *testing.T) {
	rig := startTestRig(t, RigConfig{Datasets: 8, Buyers: 64})
	rep, err := Run(rig, Scenario{
		Transport: TransportBoth,
		Clients:   64,
		Rate:      4000,
		Ops:       2400,
		Seed:      13,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantSeries := []string{
		`shield_http_request_seconds{route="POST /v1/bids",status="200"} p99`,
		`shield_wire_request_seconds{op="bid",status="ok"} p99`,
	}
	clientMax := rep.Classes[ClassBid].Max.Seconds()
	for _, name := range wantSeries {
		got, ok := rep.ServerQuantiles[name]
		if !ok {
			t.Fatalf("missing server quantile %s (have %v)", name, rep.ServerQuantiles)
		}
		if got <= 0 {
			t.Errorf("server quantile %s = %v, want > 0", name, got)
		}
		// Quantile interpolates up to its bucket's upper edge; latency
		// buckets double, so the estimate is at most 2x the true value.
		if got > 2*clientMax+0.001 {
			t.Errorf("server quantile %s = %vs exceeds client-side max %vs beyond bucket error",
				name, got, clientMax)
		}
	}
}
