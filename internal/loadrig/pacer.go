// Package loadrig is the cluster-in-process load rig: it boots a real
// marketd-equivalent server (HTTP and wire transports over one
// journaled, group-committed market with telemetry), seeds a catalog,
// and drives thousands of concurrent persona-driven client connections
// at an open-loop target rate, measuring end-to-end latency per
// operation class and gating the run on a declarative SLO spec.
//
// # Open loop, not closed loop
//
// The rig dispatches operations on a fixed schedule computed up front
// from the target rate, regardless of how fast the server answers.
// Latency is measured from each operation's scheduled send time — not
// from the moment a worker got around to sending it — so a server
// slowdown shows up as queueing delay in the tail percentiles instead
// of silently reducing the offered load. This is the standard defense
// against coordinated omission: a closed-loop driver that waits for
// each response before sending the next request self-throttles around a
// stall and reports flattering tails.
//
// # SLO gates
//
// A scenario carries a spec like "bid.p99<5ms,error_rate<0.1%"; after
// the run (and the post-run money-conservation and journal-replay
// invariant checks) the spec is evaluated against the measured report
// and violations are returned by name, so cmd/shieldload can exit
// nonzero and fail CI on a latency regression.
package loadrig

import (
	"fmt"
	"time"
)

// Pacer emits an open-loop schedule: slot i is due at start + i/rate,
// where start is fixed when the first slot is taken. Next blocks until
// the next slot is due and returns its scheduled time; when the caller
// has fallen behind, Next returns immediately with the original
// scheduled time, which is in the past — the schedule never shifts to
// absorb delay, so latency measured from the returned time includes
// every queued microsecond. A Pacer is not safe for concurrent use:
// one dispatcher owns it.
type Pacer struct {
	interval time.Duration
	start    time.Time
	n        int64

	// Injected clock, so the schedule arithmetic is testable without
	// real sleeping. Production pacers use the real clock.
	now   func() time.Time
	sleep func(d time.Duration)
}

// NewPacer returns a pacer for the target rate in operations per
// second. Rates must be positive: an open-loop rig has no "as fast as
// possible" mode — that is a closed loop by another name.
func NewPacer(rate float64) (*Pacer, error) {
	return newPacerClock(rate, time.Now, time.Sleep)
}

// newPacerClock is NewPacer with an injected clock (tests).
func newPacerClock(rate float64, now func() time.Time, sleep func(time.Duration)) (*Pacer, error) {
	if !(rate > 0) {
		return nil, fmt.Errorf("loadrig: open-loop rate must be positive, got %v", rate)
	}
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = 1 // sub-nanosecond rates degenerate to back-to-back slots
	}
	return &Pacer{interval: interval, now: now, sleep: sleep}, nil
}

// Next blocks until the next schedule slot is due and returns the
// slot's scheduled time. The first call anchors the schedule at the
// current clock reading.
func (p *Pacer) Next() time.Time {
	if p.start.IsZero() {
		p.start = p.now()
	}
	due := p.start.Add(time.Duration(p.n) * p.interval)
	p.n++
	if d := due.Sub(p.now()); d > 0 {
		p.sleep(d)
	}
	return due
}

// Interval returns the schedule spacing (1/rate).
func (p *Pacer) Interval() time.Duration { return p.interval }
